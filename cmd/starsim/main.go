// Command starsim runs one simulation or one rho sweep of the priority
// STAR reproduction and prints the measured statistics.
//
// Examples:
//
//	starsim -shape 8x8 -scheme priority-star -rho 0.8
//	starsim -shape 4x4x8 -scheme separate-fcfs -frac 0.5 -sweep 0.5,0.7,0.9
//	starsim -shape 8x8 -scheme fcfs-direct -rho 0.9 -len geom:4 -csv
package main

import (
	"flag"
	"fmt"
	"os"

	"prioritystar"
	"prioritystar/internal/cli"
	"prioritystar/internal/spec"
)

func main() {
	var (
		shapeFlag  = flag.String("shape", "8x8", "torus shape, e.g. 8x8 or 4x4x8")
		schemeFlag = flag.String("scheme", "priority-star", "routing scheme: "+cli.SchemeNames())
		rhoFlag    = flag.Float64("rho", 0.8, "throughput factor for a single run")
		sweepFlag  = flag.String("sweep", "", "comma-separated rho grid (overrides -rho)")
		fracFlag   = flag.Float64("frac", 1, "fraction of transmission load from broadcasts")
		lenFlag    = flag.String("len", "fixed:1", "packet lengths: fixed:N or geom:MEAN")
		seedFlag   = flag.Uint64("seed", 1, "base RNG seed")
		warmupFlag = flag.Int64("warmup", 3000, "warm-up slots")
		measure    = flag.Int64("measure", 10000, "measurement slots")
		drainFlag  = flag.Int64("drain", 4000, "drain slots")
		repsFlag   = flag.Int("reps", 3, "replications per sweep point")
		floorFlag  = flag.Bool("floor", false, "use the paper's floor(n/4) distance model")
		csvFlag    = flag.Bool("csv", false, "emit CSV instead of tables")
		specFlag   = flag.String("spec", "", "run a JSON experiment spec file (overrides workload flags)")
		dumpFlag   = flag.Bool("dump-spec", false, "print the experiment as a JSON spec instead of running")
	)
	flag.Parse()
	if *specFlag != "" {
		if err := runSpec(*specFlag, *csvFlag, *dumpFlag); err != nil {
			fmt.Fprintln(os.Stderr, "starsim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*shapeFlag, *schemeFlag, *rhoFlag, *sweepFlag, *fracFlag, *lenFlag,
		*seedFlag, *warmupFlag, *measure, *drainFlag, *repsFlag, *floorFlag, *csvFlag, *dumpFlag); err != nil {
		fmt.Fprintln(os.Stderr, "starsim:", err)
		os.Exit(1)
	}
}

// runSpec loads and executes a JSON experiment spec file.
func runSpec(path string, csv, dump bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	exp, err := spec.Load(f)
	if err != nil {
		return err
	}
	if dump {
		return spec.Save(os.Stdout, exp)
	}
	return render(exp, exp.BroadcastFrac, csv)
}

func run(shapeStr, schemeStr string, rho float64, sweepStr string, frac float64, lenStr string,
	seed uint64, warmup, measure, drain int64, reps int, floor, csv, dump bool) error {
	dims, err := cli.ParseShape(shapeStr)
	if err != nil {
		return err
	}
	schemeSpec, err := cli.SchemeByName(schemeStr)
	if err != nil {
		return err
	}
	length, err := cli.ParseLength(lenStr)
	if err != nil {
		return err
	}
	model := prioritystar.ExactDistance
	if floor {
		model = prioritystar.PaperFloorDistance
	}

	rhos := []float64{rho}
	if sweepStr != "" {
		if rhos, err = cli.ParseRhos(sweepStr); err != nil {
			return err
		}
	}
	exp := &prioritystar.Experiment{
		ID:    "cli",
		Title: fmt.Sprintf("starsim %s on %s", schemeStr, shapeStr),
		Dims:  dims, Rhos: rhos, BroadcastFrac: frac,
		Schemes: []prioritystar.SchemeSpec{schemeSpec},
		Length:  length, Model: model,
		Warmup: warmup, Measure: measure, Drain: drain,
		Reps: reps, BaseSeed: seed,
	}
	if dump {
		return spec.Save(os.Stdout, exp)
	}
	return render(exp, frac, csv)
}

// render runs the experiment and prints the requested output format.
func render(exp *prioritystar.Experiment, frac float64, csv bool) error {
	res, err := exp.Run()
	if err != nil {
		return err
	}
	metrics := []prioritystar.Metric{
		prioritystar.MetricReception, prioritystar.MetricBroadcast,
	}
	if frac < 1 {
		metrics = append(metrics, prioritystar.MetricUnicast)
	}
	metrics = append(metrics, prioritystar.MetricAvgUtil, prioritystar.MetricMaxDimUtil,
		prioritystar.MetricHighWait, prioritystar.MetricLowWait)
	for _, m := range metrics {
		if csv {
			fmt.Printf("# %s\n%s", m, res.CSV(m))
		} else {
			fmt.Println(res.Table(m))
		}
	}
	fmt.Printf("elapsed: %s\n", res.Elapsed.Round(1e7))
	return nil
}
