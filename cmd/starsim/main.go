// Command starsim runs one simulation or one rho sweep of the priority
// STAR reproduction and prints the measured statistics.
//
// Examples:
//
//	starsim -shape 8x8 -scheme priority-star -rho 0.8
//	starsim -shape 4x4x8 -scheme separate-fcfs -frac 0.5 -sweep 0.5,0.7,0.9
//	starsim -shape 8x8 -scheme fcfs-direct -rho 0.9 -len geom:4 -csv
//	starsim -shape 8x8 -rho 0.8 -metrics-json run.json   # instrumented run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"prioritystar"
	"prioritystar/internal/balance"
	"prioritystar/internal/cli"
	"prioritystar/internal/obs"
	"prioritystar/internal/sim"
	"prioritystar/internal/spec"
	"prioritystar/internal/sweep"
	"prioritystar/internal/traffic"
)

// options collects the workload flags shared by the sweep and the
// instrumented-run paths.
type options struct {
	shape, scheme, sweepStr, lenStr string
	rho, frac                       float64
	seed                            uint64
	warmup, measure, drain          int64
	reps                            int
	floor, csv, dump, dimReport     bool
	metricsJSON                     string

	faultsStr  string
	timeout    time.Duration
	watchdog   bool
	checkpoint string
	resume     bool
}

// robustness resolves the fault/guard/checkpoint flags against a shape and
// applies them to the experiment.
func (o *options) robustness(exp *prioritystar.Experiment) error {
	faults, err := cli.ParseFaults(o.faultsStr)
	if err != nil {
		return err
	}
	if faults != nil {
		exp.Faults = faults
	}
	if o.watchdog {
		shape, err := prioritystar.NewTorus(exp.Dims...)
		if err != nil {
			return err
		}
		exp.Guard = sim.DefaultGuard(shape)
	}
	if o.timeout > 0 {
		exp.Guard.Timeout = o.timeout
	}
	exp.Checkpoint = o.checkpoint
	exp.Resume = o.resume
	if o.resume && o.checkpoint == "" {
		return fmt.Errorf("-resume needs -checkpoint FILE")
	}
	return nil
}

func main() {
	var o options
	flag.StringVar(&o.shape, "shape", "8x8", "torus shape, e.g. 8x8 or 4x4x8")
	flag.StringVar(&o.scheme, "scheme", "priority-star", "routing scheme: "+cli.SchemeNames())
	flag.Float64Var(&o.rho, "rho", 0.8, "throughput factor for a single run")
	flag.StringVar(&o.sweepStr, "sweep", "", "comma-separated rho grid (overrides -rho)")
	flag.Float64Var(&o.frac, "frac", 1, "fraction of transmission load from broadcasts")
	flag.StringVar(&o.lenStr, "len", "fixed:1", "packet lengths: fixed:N or geom:MEAN")
	flag.Uint64Var(&o.seed, "seed", 1, "base RNG seed")
	flag.Int64Var(&o.warmup, "warmup", 3000, "warm-up slots")
	flag.Int64Var(&o.measure, "measure", 10000, "measurement slots")
	flag.Int64Var(&o.drain, "drain", 4000, "drain slots")
	flag.IntVar(&o.reps, "reps", 3, "replications per sweep point")
	flag.BoolVar(&o.floor, "floor", false, "use the paper's floor(n/4) distance model")
	flag.BoolVar(&o.csv, "csv", false, "emit CSV instead of tables")
	flag.BoolVar(&o.dimReport, "dim-report", false, "print the per-dimension link-utilization report")
	flag.StringVar(&o.metricsJSON, "metrics-json", "",
		"run one probe-instrumented simulation at -rho and write its metrics report (JSON) here, plus a .manifest.json sidecar")
	flag.StringVar(&o.faultsStr, "faults", "",
		"fault schedule, e.g. perm:2,link:5,node:3,trans:500/50,seed:7")
	flag.DurationVar(&o.timeout, "timeout", 0, "wall-clock limit per simulation run (e.g. 30s)")
	flag.BoolVar(&o.watchdog, "watchdog", false,
		"arm the divergence watchdog so saturated points terminate early")
	flag.StringVar(&o.checkpoint, "checkpoint", "",
		"journal completed sweep replications to this JSONL file")
	flag.BoolVar(&o.resume, "resume", false,
		"replay the -checkpoint journal and run only what it is missing")
	specFlag := flag.String("spec", "", "run a JSON experiment spec file (overrides workload flags)")
	dumpFlag := flag.Bool("dump-spec", false, "print the experiment as a JSON spec instead of running")
	flag.Parse()
	o.dump = *dumpFlag
	if *specFlag != "" {
		if err := runSpec(*specFlag, o); err != nil {
			fmt.Fprintln(os.Stderr, "starsim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "starsim:", err)
		os.Exit(1)
	}
}

// runSpec loads and executes a JSON experiment spec file.
func runSpec(path string, o options) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	exp, err := spec.Load(f)
	if err != nil {
		return err
	}
	if err := o.robustness(exp); err != nil {
		return err
	}
	if o.dump {
		return spec.Save(os.Stdout, exp)
	}
	return render(exp, exp.BroadcastFrac, o)
}

func run(o options) error {
	dims, err := cli.ParseShape(o.shape)
	if err != nil {
		return err
	}
	schemeSpec, err := cli.SchemeByName(o.scheme)
	if err != nil {
		return err
	}
	length, err := cli.ParseLength(o.lenStr)
	if err != nil {
		return err
	}
	model := prioritystar.ExactDistance
	if o.floor {
		model = prioritystar.PaperFloorDistance
	}

	if o.metricsJSON != "" {
		if o.sweepStr != "" {
			return fmt.Errorf("-metrics-json instruments a single run; drop -sweep")
		}
		return runMetrics(dims, schemeSpec, length, model, o)
	}

	rhos := []float64{o.rho}
	if o.sweepStr != "" {
		if rhos, err = cli.ParseRhos(o.sweepStr); err != nil {
			return err
		}
	}
	exp := &prioritystar.Experiment{
		ID:    "cli",
		Title: fmt.Sprintf("starsim %s on %s", o.scheme, o.shape),
		Dims:  dims, Rhos: rhos, BroadcastFrac: o.frac,
		Schemes: []prioritystar.SchemeSpec{schemeSpec},
		Length:  length, Model: model,
		Warmup: o.warmup, Measure: o.measure, Drain: o.drain,
		Reps: o.reps, BaseSeed: o.seed,
	}
	if err := o.robustness(exp); err != nil {
		return err
	}
	if o.dump {
		return spec.Save(os.Stdout, exp)
	}
	return render(exp, o.frac, o)
}

// runMetrics executes one probe-instrumented simulation and writes the
// metrics report plus its run manifest.
func runMetrics(dims []int, schemeSpec sweep.SchemeSpec, length traffic.LengthDist,
	model balance.DistanceModel, o options) error {
	shape, err := prioritystar.NewTorus(dims...)
	if err != nil {
		return err
	}
	rates, err := traffic.RatesForRho(shape, o.rho, o.frac, length.Mean(), model)
	if err != nil {
		return err
	}
	sch, err := schemeSpec.Build(shape, rates, model)
	if err != nil {
		return err
	}
	faults, err := cli.ParseFaults(o.faultsStr)
	if err != nil {
		return err
	}
	var guard sim.Guard
	if o.watchdog {
		guard = sim.DefaultGuard(shape)
	}
	guard.Timeout = o.timeout
	std := obs.NewStandard(shape, o.warmup, o.measure)
	res, err := sim.Run(sim.Config{
		Shape: shape, Scheme: sch, Rates: rates, Length: length, Seed: o.seed,
		Warmup: o.warmup, Measure: o.measure, Drain: o.drain,
		Probe: std, Faults: faults, Guard: guard,
	})
	if err != nil {
		return err
	}
	if res.Status != sim.StatusOK {
		fmt.Fprintf(os.Stderr, "starsim: run ended with status %s\n", res.Status)
	}

	m := obs.NewManifest(dims, schemeSpec.Name, o.seed, rates.LambdaB, rates.LambdaR,
		o.warmup, o.measure, o.drain)
	m.Rho = o.rho
	m.Length = o.lenStr
	m.CreatedAt = time.Now().UTC().Format(time.RFC3339)

	rep := std.Report(m)
	rep.Result = map[string]float64{
		"reception_mean":      res.Reception.Mean(),
		"broadcast_mean":      res.Broadcast.Mean(),
		"unicast_mean":        res.Unicast.Mean(),
		"avg_utilization":     res.AvgUtilization,
		"max_dim_utilization": res.MaxDimUtilization,
		"generated_tasks":     float64(res.GeneratedBroadcasts + res.GeneratedUnicasts),
	}
	if res.Stable(shape) {
		rep.Result["stable"] = 1
	} else {
		rep.Result["stable"] = 0
	}
	if faults != nil {
		rep.Result["lost_copies"] = float64(res.LostCopies)
		rep.Result["degraded_tasks"] = float64(res.DegradedTasks)
		rep.Result["reachability_mean"] = res.Reachability.Mean()
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if o.metricsJSON == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(o.metricsJSON, data, 0o644); err != nil {
			return err
		}
		if err := m.Save(obs.ManifestPath(o.metricsJSON)); err != nil {
			return err
		}
		fmt.Printf("wrote %s and %s\n", o.metricsJSON, obs.ManifestPath(o.metricsJSON))
	}
	for _, dl := range rep.DimLoad {
		fmt.Printf("dim %d: %d links, %d services, utilization %.4f\n",
			dl.Dim, dl.Links, dl.Services, dl.Utilization)
	}
	fmt.Printf("reception delay %.3f, backlog p99 %d, queue-depth p99 %d\n",
		res.Reception.Mean(), rep.Backlog.P99, rep.QueueDepth.P99)
	return nil
}

// render runs the experiment and prints the requested output format.
func render(exp *prioritystar.Experiment, frac float64, o options) error {
	res, err := exp.Run()
	if err != nil {
		return err
	}
	metrics := []prioritystar.Metric{
		prioritystar.MetricReception, prioritystar.MetricBroadcast,
	}
	if frac < 1 {
		metrics = append(metrics, prioritystar.MetricUnicast)
	}
	metrics = append(metrics, prioritystar.MetricAvgUtil, prioritystar.MetricMaxDimUtil,
		prioritystar.MetricHighWait, prioritystar.MetricLowWait)
	for _, m := range metrics {
		if o.csv {
			fmt.Printf("# %s\n%s", m, res.CSV(m))
		} else {
			fmt.Println(res.Table(m))
		}
	}
	if o.dimReport {
		fmt.Println(res.DimLoadReport())
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.FailedReps > 0 {
				fmt.Fprintf(os.Stderr, "starsim: %s rho %.3f: %d failed replications (%s)\n",
					s.Scheme.Name, p.Rho, p.FailedReps, p.Error)
			}
		}
	}
	fmt.Printf("elapsed: %s\n", res.Elapsed.Round(1e7))
	return nil
}
