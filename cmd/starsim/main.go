// Command starsim runs one simulation or one rho sweep of the priority
// STAR reproduction and prints the measured statistics.
//
// Examples:
//
//	starsim -shape 8x8 -scheme priority-star -rho 0.8
//	starsim -shape 4x4x8 -scheme separate-fcfs -frac 0.5 -sweep 0.5,0.7,0.9
//	starsim -shape 8x8 -scheme fcfs-direct -rho 0.9 -len geom:4 -csv
//	starsim -shape 8x8 -rho 0.8 -metrics-json run.json   # instrumented run
//
// Exit status: 0 on a clean run, 3 when the sweep completed but some
// replications failed or were terminated by the divergence watchdog (the
// printed aggregates are partial), 1 on hard errors.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"prioritystar"
	"prioritystar/internal/cli"
	"prioritystar/internal/obs"
	"prioritystar/internal/sim"
	"prioritystar/internal/spec"
	"prioritystar/internal/traffic"
)

// errPartial marks a sweep that finished but lost replications to errors or
// the divergence watchdog; main maps it to exit status 3 so scripted sweeps
// (and make smoke targets) can tell "partial data" from "no data".
var errPartial = errors.New("some replications failed or diverged; aggregates are partial")

// options collects the flags shared by the sweep and the instrumented-run
// paths: the workload itself plus robustness and output knobs.
type options struct {
	w                    cli.Workload
	csv, dump, dimReport bool
	metricsJSON          string

	faultsStr  string
	timeout    time.Duration
	watchdog   bool
	checkpoint string
	resume     bool
}

// robustness resolves the fault/guard/checkpoint flags against a shape and
// applies them to the experiment.
func (o *options) robustness(exp *prioritystar.Experiment) error {
	faults, err := cli.ParseFaults(o.faultsStr)
	if err != nil {
		return err
	}
	if faults != nil {
		exp.Faults = faults
	}
	if o.watchdog {
		shape, err := prioritystar.NewTorus(exp.Dims...)
		if err != nil {
			return err
		}
		exp.Guard = sim.DefaultGuard(shape)
	}
	if o.timeout > 0 {
		exp.Guard.Timeout = o.timeout
	}
	exp.Checkpoint = o.checkpoint
	exp.Resume = o.resume
	if o.resume && o.checkpoint == "" {
		return fmt.Errorf("-resume needs -checkpoint FILE")
	}
	return nil
}

func main() {
	var o options
	o.w.Register(flag.CommandLine)
	flag.BoolVar(&o.csv, "csv", false, "emit CSV instead of tables")
	flag.BoolVar(&o.dimReport, "dim-report", false, "print the per-dimension link-utilization report")
	flag.StringVar(&o.metricsJSON, "metrics-json", "",
		"run one probe-instrumented simulation at -rho and write its metrics report (JSON) here, plus a .manifest.json sidecar")
	flag.StringVar(&o.faultsStr, "faults", "",
		"fault schedule, e.g. perm:2,link:5,node:3,trans:500/50,seed:7")
	flag.DurationVar(&o.timeout, "timeout", 0, "wall-clock limit per simulation run (e.g. 30s)")
	flag.BoolVar(&o.watchdog, "watchdog", false,
		"arm the divergence watchdog so saturated points terminate early")
	flag.StringVar(&o.checkpoint, "checkpoint", "",
		"journal completed sweep replications to this JSONL file")
	flag.BoolVar(&o.resume, "resume", false,
		"replay the -checkpoint journal and run only what it is missing")
	specFlag := flag.String("spec", "", "run a JSON experiment spec file (overrides workload flags)")
	dumpFlag := flag.Bool("dump-spec", false, "print the experiment as a JSON spec instead of running")
	pprofFlag := flag.String("pprof", "",
		"profile prefix: write PREFIX.cpu.pprof and PREFIX.mem.pprof for the run")
	flag.Parse()
	o.dump = *dumpFlag
	stopProf, err := startProfiles(*pprofFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "starsim:", err)
		os.Exit(1)
	}
	err = func() error {
		if *specFlag != "" {
			return runSpec(*specFlag, o)
		}
		return run(o)
	}()
	stopProf()
	if err != nil {
		fmt.Fprintln(os.Stderr, "starsim:", err)
		if errors.Is(err, errPartial) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

// startProfiles arms CPU and heap profiling when prefix is non-empty. The
// returned stop function finalizes both files; it is safe to call when
// profiling was never started.
func startProfiles(prefix string) (stop func(), err error) {
	if prefix == "" {
		return func() {}, nil
	}
	cf, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cf); err != nil {
		cf.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		cf.Close()
		mf, err := os.Create(prefix + ".mem.pprof")
		if err != nil {
			fmt.Fprintln(os.Stderr, "starsim:", err)
			return
		}
		defer mf.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			fmt.Fprintln(os.Stderr, "starsim:", err)
		}
	}, nil
}

// runSpec loads and executes a JSON experiment spec file.
func runSpec(path string, o options) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	exp, err := spec.Load(f)
	if err != nil {
		return err
	}
	if err := o.robustness(exp); err != nil {
		return err
	}
	if err := spec.Stamp(exp); err != nil {
		return err
	}
	if o.dump {
		return spec.Save(os.Stdout, exp)
	}
	return render(exp, exp.BroadcastFrac, o)
}

func run(o options) error {
	if o.metricsJSON != "" {
		if o.w.Sweep != "" {
			return fmt.Errorf("-metrics-json instruments a single run; drop -sweep")
		}
		return runMetrics(o)
	}
	exp, err := o.w.Experiment("cli", fmt.Sprintf("starsim %s on %s", o.w.Scheme, o.w.Shape))
	if err != nil {
		return err
	}
	if err := o.robustness(exp); err != nil {
		return err
	}
	if err := spec.Stamp(exp); err != nil {
		return err
	}
	if o.dump {
		return spec.Save(os.Stdout, exp)
	}
	return render(exp, o.w.Frac, o)
}

// runMetrics executes one probe-instrumented simulation and writes the
// metrics report plus its run manifest.
func runMetrics(o options) error {
	dims, err := cli.ParseShape(o.w.Shape)
	if err != nil {
		return err
	}
	schemeSpec, err := cli.SchemeByName(o.w.Scheme)
	if err != nil {
		return err
	}
	length, err := cli.ParseLength(o.w.Len)
	if err != nil {
		return err
	}
	model := prioritystar.ExactDistance
	if o.w.Floor {
		model = prioritystar.PaperFloorDistance
	}
	shape, err := prioritystar.NewTorus(dims...)
	if err != nil {
		return err
	}
	rates, err := traffic.RatesForRho(shape, o.w.Rho, o.w.Frac, length.Mean(), model)
	if err != nil {
		return err
	}
	sch, err := schemeSpec.Build(shape, rates, model)
	if err != nil {
		return err
	}
	faults, err := cli.ParseFaults(o.faultsStr)
	if err != nil {
		return err
	}
	var guard sim.Guard
	if o.watchdog {
		guard = sim.DefaultGuard(shape)
	}
	guard.Timeout = o.timeout
	std := obs.NewStandard(shape, o.w.Warmup, o.w.Measure)
	res, err := sim.Run(sim.Config{
		Shape: shape, Scheme: sch, Rates: rates, Length: length, Seed: o.w.Seed,
		Warmup: o.w.Warmup, Measure: o.w.Measure, Drain: o.w.Drain,
		Probe: std, Faults: faults, Guard: guard,
	})
	if err != nil {
		return err
	}
	if res.Status != sim.StatusOK {
		fmt.Fprintf(os.Stderr, "starsim: run ended with status %s\n", res.Status)
	}

	m := obs.NewManifest(dims, schemeSpec.Name, o.w.Seed, rates.LambdaB, rates.LambdaR,
		o.w.Warmup, o.w.Measure, o.w.Drain)
	m.Rho = o.w.Rho
	m.Length = o.w.Len
	m.CreatedAt = time.Now().UTC().Format(time.RFC3339)

	rep := std.Report(m)
	rep.Result = map[string]float64{
		"reception_mean":      res.Reception.Mean(),
		"broadcast_mean":      res.Broadcast.Mean(),
		"unicast_mean":        res.Unicast.Mean(),
		"avg_utilization":     res.AvgUtilization,
		"max_dim_utilization": res.MaxDimUtilization,
		"generated_tasks":     float64(res.GeneratedBroadcasts + res.GeneratedUnicasts),
	}
	if res.Stable(shape) {
		rep.Result["stable"] = 1
	} else {
		rep.Result["stable"] = 0
	}
	if faults != nil {
		rep.Result["lost_copies"] = float64(res.LostCopies)
		rep.Result["degraded_tasks"] = float64(res.DegradedTasks)
		rep.Result["reachability_mean"] = res.Reachability.Mean()
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if o.metricsJSON == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(o.metricsJSON, data, 0o644); err != nil {
			return err
		}
		if err := m.Save(obs.ManifestPath(o.metricsJSON)); err != nil {
			return err
		}
		fmt.Printf("wrote %s and %s\n", o.metricsJSON, obs.ManifestPath(o.metricsJSON))
	}
	for _, dl := range rep.DimLoad {
		fmt.Printf("dim %d: %d links, %d services, utilization %.4f\n",
			dl.Dim, dl.Links, dl.Services, dl.Utilization)
	}
	fmt.Printf("reception delay %.3f, backlog p99 %d, queue-depth p99 %d\n",
		res.Reception.Mean(), rep.Backlog.P99, rep.QueueDepth.P99)
	return nil
}

// render runs the experiment and prints the requested output format. A
// completed sweep with failed or watchdog-terminated replications returns
// errPartial after printing, so the caller can exit with status 3.
func render(exp *prioritystar.Experiment, frac float64, o options) error {
	res, err := exp.Run()
	if err != nil {
		return err
	}
	metrics := []prioritystar.Metric{
		prioritystar.MetricReception, prioritystar.MetricBroadcast,
	}
	if frac < 1 {
		metrics = append(metrics, prioritystar.MetricUnicast)
	}
	metrics = append(metrics, prioritystar.MetricAvgUtil, prioritystar.MetricMaxDimUtil,
		prioritystar.MetricHighWait, prioritystar.MetricLowWait)
	for _, m := range metrics {
		if o.csv {
			fmt.Printf("# %s\n%s", m, res.CSV(m))
		} else {
			fmt.Println(res.Table(m))
		}
	}
	if o.dimReport {
		fmt.Println(res.DimLoadReport())
	}
	partial := false
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.FailedReps > 0 {
				partial = true
				fmt.Fprintf(os.Stderr, "starsim: %s rho %.3f: %d failed replications (%s)\n",
					s.Scheme.Name, p.Rho, p.FailedReps, p.Error)
			}
			if p.DivergedReps > 0 {
				partial = true
				fmt.Fprintf(os.Stderr, "starsim: %s rho %.3f: %d replications terminated by the divergence watchdog\n",
					s.Scheme.Name, p.Rho, p.DivergedReps)
			}
		}
	}
	fmt.Printf("elapsed: %s\n", res.Elapsed.Round(1e7))
	if partial {
		return errPartial
	}
	return nil
}
