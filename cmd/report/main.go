// Command report reproduces the auxiliary (non-figure) experiments of
// EXPERIMENTS.md in one run: the static communication tasks, the
// finite-buffer virtual-channel deadlock study, the delay-capped and
// maximum-stable throughput searches, and the queueing-model validation.
//
//	report            # everything
//	report -only static|deadlock|capped|queueing
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"prioritystar"
	"prioritystar/internal/analysis"
	"prioritystar/internal/mdqueue"
)

func main() {
	only := flag.String("only", "", "run a single section: static, deadlock, capped, queueing")
	flag.Parse()
	sections := map[string]func() error{
		"static":   staticSection,
		"deadlock": deadlockSection,
		"capped":   cappedSection,
		"queueing": queueingSection,
	}
	order := []string{"static", "deadlock", "capped", "queueing"}
	if *only != "" {
		fn, ok := sections[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "report: unknown section %q\n", *only)
			os.Exit(1)
		}
		if err := fn(); err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		return
	}
	for _, name := range order {
		if err := sections[name](); err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func staticSection() error {
	fmt.Println("=== static communication tasks (paper Section 1) ===")
	for _, dims := range [][]int{{8, 8}, {4, 8}, {4, 4, 4}} {
		shape, err := prioritystar.NewTorus(dims...)
		if err != nil {
			return err
		}
		scheme, err := prioritystar.PrioritySTAR(shape, prioritystar.Rates{LambdaB: 1}, prioritystar.ExactDistance)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", shape)
		for _, task := range []prioritystar.StaticTask{
			prioritystar.SingleBroadcast, prioritystar.MultinodeBroadcast, prioritystar.TotalExchange,
		} {
			res, err := prioritystar.RunStatic(shape, scheme, task, 21)
			if err != nil {
				return err
			}
			fmt.Printf("  %-20s makespan %5d   bound %5d   efficiency %.2f\n",
				res.Task, res.Makespan, res.LowerBound, res.Efficiency)
		}
	}
	return nil
}

func deadlockSection() error {
	fmt.Println("=== finite buffers and virtual channels (paper Section 3.1) ===")
	fmt.Printf("%8s %6s %10s %12s %12s %10s\n", "shape", "VCs", "capacity", "injected", "delivered", "deadlock")
	for _, dims := range [][]int{{6}, {6, 6}} {
		shape, err := prioritystar.NewTorus(dims...)
		if err != nil {
			return err
		}
		for _, vcs := range []int{1, 2} {
			res, err := prioritystar.SimulateFinite(prioritystar.FiniteConfig{
				Shape: shape, VCs: vcs, Capacity: 1, LambdaR: 0.35, Seed: 5,
				Slots: 30000, StopInjection: 20000,
			})
			if err != nil {
				return err
			}
			fmt.Printf("%8s %6d %10d %12d %12d %10v\n",
				shape, vcs, 1, res.Injected, res.Delivered, res.Deadlocked)
		}
	}
	fmt.Println("(2 VCs implement the paper's VC1/VC2 dateline rule; 1 VC wedges)")
	return nil
}

func cappedSection() error {
	fmt.Println("=== throughput searches (paper Sections 1 and 3.2) ===")
	fmt.Println("max stable rho (bisection, 4x8 torus, broadcast-only):")
	for _, spec := range []prioritystar.SchemeSpec{
		prioritystar.PrioritySTARSpec, prioritystar.FCFSDirectSpec, prioritystar.DimOrderSpec,
	} {
		rho, err := prioritystar.StabilitySearch([]int{4, 8}, spec, 1,
			prioritystar.ExactDistance, 4000, 2, 31, 0.3, 1.05, 0.02)
		if err != nil {
			return err
		}
		fmt.Printf("  %-16s %.2f\n", spec.Name, rho)
	}
	fmt.Println("delay-capped rho (8x8 torus, reception delay <= 6.5 slots):")
	for _, spec := range []prioritystar.SchemeSpec{
		prioritystar.PrioritySTARSpec, prioritystar.FCFSDirectSpec,
	} {
		rho, err := prioritystar.DelayCappedThroughput([]int{8, 8}, spec, 1,
			prioritystar.ExactDistance, prioritystar.CapReception, 6.5, 3000, 31, 0.2, 1.0, 0.02)
		if err != nil {
			return err
		}
		fmt.Printf("  %-16s %.2f\n", spec.Name, rho)
	}
	return nil
}

func queueingSection() error {
	fmt.Println("=== queueing-model validation (paper Section 3.2) ===")
	fmt.Printf("%8s %14s %14s %10s\n", "rho", "simulated W", "G/D/1 formula", "rel err")
	for _, rho := range []float64{0.3, 0.6, 0.9} {
		res, err := mdqueue.Run(mdqueue.Config{
			Lambda: []float64{rho}, Seed: 3, Warmup: 20000, Measure: 400000,
		})
		if err != nil {
			return err
		}
		want := analysis.MD1Wait(rho)
		got := res.All.Mean()
		fmt.Printf("%8.2f %14.4f %14.4f %9.1f%%\n", rho, got, want, 100*math.Abs(got-want)/want)
	}
	const n = 8
	res, err := mdqueue.Run(mdqueue.Config{
		Lambda: []float64{0.9 / n, 0.9 * (n - 1) / n},
		Seed:   4, Warmup: 20000, Measure: 400000,
	})
	if err != nil {
		return err
	}
	fmt.Printf("2-class priority at rho=0.9, rho_H = rho/%d: W_H = %.3f (bound %.3f), W_L = %.3f\n",
		n, res.Wait[0].Mean(), analysis.HighPriorityWaitBound(0.9, n), res.Wait[1].Mean())
	return nil
}
