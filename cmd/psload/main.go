// Command psload is the service-level load harness for starsimd: it drives
// a deterministic fleet of synthetic clients against a live daemon (or an
// in-process one with -boot), records per-endpoint latency quantiles, and
// maintains the BENCH_serve.json trajectory with a regression gate.
//
//	psload -boot -clients 200 -duration 10s -mix mixed -out BENCH_serve.json
//	psload -addr 127.0.0.1:7077 -mix overload -duration 30s
//	psload -boot -gate -out BENCH_serve.json            # fail on p95/p99/throughput regression
//	psload -boot -gate -gate-speedup 2 -duration 5s     # self-test: gate must trip
//
// The gate compares the fresh run's p95/p99 per op class and its overall
// throughput against the baseline (the last record in -out, or -compare
// FILE), allowing -gate-tol fractional slack. -gate-speedup doctors the
// baseline as if it came from a machine N-times faster — with no baseline
// file it doctors the fresh record itself, making a self-contained proof
// that the gate actually fails on regressions.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"prioritystar/internal/cluster"
	"prioritystar/internal/loadgen"
	"prioritystar/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "", "daemon address (host:port); empty requires -boot")
		boot     = flag.Bool("boot", false, "boot a dedicated in-process daemon for the run")
		workers  = flag.Int("boot-workers", 4, "worker pool size for -boot")
		fleetN   = flag.Int("workers", 0, "with -boot: back the daemon with N fleet worker daemons (0: single-node)")
		queueCap = flag.Int("boot-queue", 16, "queue capacity for -boot (modest, so overload bursts draw 429s)")
		clients  = flag.Int("clients", 200, "concurrent synthetic clients")
		duration = flag.Duration("duration", 10*time.Second, "load duration (after warmup)")
		mixFlag  = flag.String("mix", "mixed", "workload mix: a name or hit=N,miss=N,... weights")
		seed     = flag.Uint64("seed", 1, "fleet seed; same seed+mix+clients replays the same op sequences")
		rate     = flag.Float64("rate", 0, "per-client target ops/sec (0: closed loop)")
		out      = flag.String("out", "", "append the run to this BENCH_serve.json trajectory")
		gate     = flag.Bool("gate", false, "compare against the baseline and exit 1 on regression")
		gateTol  = flag.Float64("gate-tol", 0.75, "gate tolerance (0.75 allows 1.75x the baseline)")
		speedup  = flag.Float64("gate-speedup", 0, "doctor the baseline N-times faster (gate self-test)")
		compare  = flag.String("compare", "", "gate against the last record of this file instead of -out")
		quiet    = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "psload: ", 0)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	if *addr == "" && !*boot {
		logger.Fatalf("need -addr or -boot (known mixes: %v)", loadgen.MixNames())
	}
	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		logger.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	target := *addr
	if *boot {
		cfg := serve.Config{
			Addr:        "127.0.0.1:0",
			Workers:     *workers,
			QueueCap:    *queueCap,
			SlotsPerJob: 1,
		}
		// -workers N swaps the execution engine for a fleet: a coordinator
		// scattering sub-jobs to N in-process worker daemons, so the
		// trajectory can record fleet-backed service numbers.
		var coord *cluster.Coordinator
		if *fleetN > 0 {
			var err error
			coord, err = cluster.NewCoordinator(cluster.CoordinatorConfig{
				Heartbeat: 200 * time.Millisecond,
			})
			if err != nil {
				logger.Fatal(err)
			}
			defer coord.Close()
			cfg.RunJob = coord.RunJob
		}
		s, err := serve.New(cfg)
		if err != nil {
			logger.Fatal(err)
		}
		if coord != nil {
			coord.Mount(s)
		}
		bound, err := s.Start()
		if err != nil {
			logger.Fatal(err)
		}
		defer func() {
			shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = s.Shutdown(shCtx)
		}()
		for i := 0; i < *fleetN; i++ {
			w := cluster.NewWorker(cluster.WorkerConfig{Slots: 2, SlotsPerSubjob: 1})
			mux := http.NewServeMux()
			w.Mount(mux)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				logger.Fatal(err)
			}
			hs := &http.Server{Handler: mux}
			go hs.Serve(ln)
			defer hs.Close()
			agent := cluster.StartAgent(cluster.AgentConfig{
				Coordinator: bound,
				Advertise:   ln.Addr().String(),
				Name:        fmt.Sprintf("loadgen-w%d", i),
				Slots:       2,
				Depth:       w.Depth,
			})
			defer agent.Stop()
		}
		target = bound
		if *fleetN > 0 {
			logf("booted dedicated daemon on %s (coordinator + %d fleet workers, queue %d)", bound, *fleetN, *queueCap)
		} else {
			logf("booted dedicated daemon on %s (%d workers, queue %d)", bound, *workers, *queueCap)
		}
	}

	// Read the baseline before appending, so a -gate run never compares a
	// record against itself.
	baseline, err := loadBaseline(*compare, *out)
	if err != nil {
		logger.Fatal(err)
	}

	rep, err := loadgen.Run(ctx, loadgen.Config{
		Addr:     target,
		Clients:  *clients,
		Duration: *duration,
		Mix:      mix,
		Seed:     *seed,
		Rate:     *rate,
		Logf:     logf,
	})
	if err != nil {
		logger.Fatal(err)
	}
	if *boot {
		rep.Record.Workers = *fleetN
	}
	printRecord(&rep.Record)

	exitCode := 0
	if len(rep.Failures) > 0 {
		fmt.Println("\nFAILURES:")
		for _, f := range rep.Failures {
			fmt.Printf("  %s\n", f)
		}
		exitCode = 1
	}

	if *out != "" {
		if err := loadgen.AppendRecord(*out, rep.Record); err != nil {
			logger.Fatal(err)
		}
		logf("appended run to %s", *out)
	}

	if *gate {
		if *speedup > 0 {
			if baseline == nil {
				baseline = &rep.Record
			}
			baseline = loadgen.DoctorBaseline(baseline, *speedup)
			logf("gate: baseline doctored %gx faster (self-test mode)", *speedup)
		}
		switch {
		case baseline == nil:
			logf("gate: no baseline yet; this run seeds the trajectory")
		default:
			if fails := loadgen.Gate(&rep.Record, baseline, *gateTol); len(fails) > 0 {
				fmt.Println("\nGATE FAILED:")
				for _, f := range fails {
					fmt.Printf("  %s\n", f)
				}
				exitCode = 1
			} else {
				fmt.Printf("\ngate passed (tolerance %.0f%%)\n", *gateTol*100)
			}
		}
	}
	os.Exit(exitCode)
}

// loadBaseline resolves the gate baseline: the last record of comparePath
// when given, else the last record of outPath; nil when neither exists yet.
func loadBaseline(comparePath, outPath string) (*loadgen.Record, error) {
	path := comparePath
	if path == "" {
		path = outPath
	}
	if path == "" {
		return nil, nil
	}
	t, err := loadgen.ReadTrajectory(path)
	if err != nil {
		if comparePath == "" && errors.Is(err, os.ErrNotExist) {
			return nil, nil // first run against -out seeds the file
		}
		return nil, err
	}
	return t.Last(), nil
}

// printRecord renders the run summary.
func printRecord(r *loadgen.Record) {
	fmt.Printf("run: %d clients, mix %s, %.1fs, seed %d", r.Clients, r.Mix, r.DurationSec, r.Seed)
	if r.Race {
		fmt.Printf(" (race detector on)")
	}
	fmt.Println()
	keys := make([]string, 0, len(r.Ops))
	for k := range r.Ops {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("%-16s %8s %6s %10s %10s %10s %10s\n", "op", "count", "errs", "p50", "p95", "p99", "max")
	for _, k := range keys {
		op := r.Ops[k]
		fmt.Printf("%-16s %8d %6d %10s %10s %10s %10s\n", k, op.Count, op.Errors,
			us(op.P50us), us(op.P95us), us(op.P99us), us(op.MaxUs))
	}
	fmt.Printf("throughput %.1f ops/s | errors %.2f%% | 429s %d | deduped %d | cache hits %d | approx hits %d | retries %d | reconnects %d\n",
		r.ThroughputOps, r.ErrorRate*100, r.Rejected429, r.Deduped, r.CacheHits, r.ApproxHits, r.Retries, r.Reconnects)
}

// us renders a microsecond latency human-readably.
func us(v int64) string {
	d := time.Duration(v) * time.Microsecond
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dus", v)
	}
}
