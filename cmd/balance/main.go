// Command balance prints the STAR ending-dimension probability vector for a
// torus and traffic mix (the paper's Eq. 2 / Eq. 4), the predicted
// per-dimension link utilizations, and the resulting maximum throughput
// factor.
//
//	balance -shape 4x4x8
//	balance -shape 4x4x8 -lambdaB 0.01 -lambdaR 0.3
//	balance -shape 4x4x8 -frac 0.5 -rho 0.9
package main

import (
	"flag"
	"fmt"
	"os"

	"prioritystar"
	"prioritystar/internal/cli"
)

func main() {
	var (
		shapeFlag = flag.String("shape", "4x4x8", "torus shape, e.g. 4x4x8")
		lambdaB   = flag.Float64("lambdaB", 0, "broadcast tasks per node per slot")
		lambdaR   = flag.Float64("lambdaR", 0, "unicast tasks per node per slot")
		rhoFlag   = flag.Float64("rho", 0, "derive rates from a throughput factor (with -frac)")
		fracFlag  = flag.Float64("frac", 1, "broadcast fraction of the load when using -rho")
		floorFlag = flag.Bool("floor", false, "use the paper's floor(n/4) distance model")
	)
	flag.Parse()
	if err := run(*shapeFlag, *lambdaB, *lambdaR, *rhoFlag, *fracFlag, *floorFlag); err != nil {
		fmt.Fprintln(os.Stderr, "balance:", err)
		os.Exit(1)
	}
}

func run(shapeStr string, lambdaB, lambdaR, rho, frac float64, floor bool) error {
	dims, err := cli.ParseShape(shapeStr)
	if err != nil {
		return err
	}
	shape, err := prioritystar.NewTorus(dims...)
	if err != nil {
		return err
	}
	model := prioritystar.ExactDistance
	if floor {
		model = prioritystar.PaperFloorDistance
	}
	if rho > 0 {
		rates, err := prioritystar.RatesForRho(shape, rho, frac, 1, model)
		if err != nil {
			return err
		}
		lambdaB, lambdaR = rates.LambdaB, rates.LambdaR
	}
	if lambdaB == 0 && lambdaR == 0 {
		lambdaB = 1 // broadcast-only Eq. 2 by default
	}
	v, err := prioritystar.BalanceHeterogeneous(shape, lambdaB, lambdaR, model)
	if err != nil {
		return err
	}
	fmt.Printf("shape:        %s (N=%d, degree=%d, diameter=%d)\n",
		shape, shape.Size(), shape.Degree(), shape.Diameter())
	fmt.Printf("rates:        lambdaB=%.6g lambdaR=%.6g (model: %s)\n",
		lambdaB, lambdaR, modelName(floor))
	fmt.Printf("feasible:     %v\n", v.Feasible)
	for i, x := range v.X {
		fmt.Printf("  x[%d] (ending dim %d, n=%d): %.6f\n", i, i, shape.Dim(i), x)
	}
	fmt.Printf("max throughput with this vector:    %.4f\n",
		prioritystar.MaxThroughput(shape, v.X, lambdaB, lambdaR, model))
	if lambdaR > 0 {
		sep, err := prioritystar.BalanceBroadcastOnly(shape)
		if err != nil {
			return err
		}
		fmt.Printf("max throughput if balanced separately (Eq. 2 only): %.4f\n",
			prioritystar.MaxThroughput(shape, sep.X, lambdaB, lambdaR, model))
	}
	return nil
}

func modelName(floor bool) string {
	if floor {
		return "paper floor(n/4)"
	}
	return "exact"
}
