// Command figures regenerates every figure of the paper's evaluation
// section from the predefined experiment registry and prints the data
// series as text tables (and optionally CSV files under -out).
//
//	figures -scale standard            # all figures
//	figures -scale quick -id fig2+5    # one figure, smoke-sized
//	figures -scale full -out results/  # also write CSV series
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"prioritystar"
	"prioritystar/internal/cli"
)

// metricsFor maps each experiment to the metrics its paper figures plot.
func metricsFor(id string) []struct {
	m     prioritystar.Metric
	label string
} {
	type mm = struct {
		m     prioritystar.Metric
		label string
	}
	switch id {
	case "fig2+5":
		return []mm{{prioritystar.MetricReception, "Fig. 2"}, {prioritystar.MetricBroadcast, "Fig. 5"}}
	case "fig3+6":
		return []mm{{prioritystar.MetricReception, "Fig. 3"}, {prioritystar.MetricBroadcast, "Fig. 6"}}
	case "fig4+7":
		return []mm{{prioritystar.MetricReception, "Fig. 4"}, {prioritystar.MetricBroadcast, "Fig. 7"}}
	case "fig8-hetero-delay":
		return []mm{
			{prioritystar.MetricUnicast, "Fig. 8 / Sec. 4 (unicast delay)"},
			{prioritystar.MetricReception, "Fig. 8 / Sec. 4 (reception delay)"},
		}
	case "fig8-balance":
		return []mm{
			{prioritystar.MetricMaxDimUtil, "Sec. 1/4 (max dimension utilization)"},
			{prioritystar.MetricUnicast, "Sec. 1/4 (unicast delay)"},
		}
	default:
		return []mm{{prioritystar.MetricReception, id}, {prioritystar.MetricAvgUtil, id + " (utilization)"}}
	}
}

func main() {
	var (
		scaleFlag    = flag.String("scale", "standard", "quick, standard, or full")
		idFlag       = flag.String("id", "", "run a single experiment (default: all)")
		outFlag      = flag.String("out", "", "directory for CSV series (optional)")
		progressFlag = flag.Bool("progress", true, "report live sweep progress on stderr")
		ckptFlag     = flag.String("checkpoint", "",
			"directory for per-figure JSONL checkpoint journals")
		resumeFlag = flag.Bool("resume", false,
			"replay existing checkpoint journals and run only missing replications")
	)
	flag.Parse()
	if err := run(*scaleFlag, *idFlag, *outFlag, *progressFlag, *ckptFlag, *resumeFlag); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(scaleStr, id, out string, progress bool, ckptDir string, resume bool) error {
	scale, err := cli.ParseScale(scaleStr)
	if err != nil {
		return err
	}
	ids := prioritystar.FigureIDs()
	if id != "" {
		ids = []string{id}
	}
	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
	}
	if resume && ckptDir == "" {
		return fmt.Errorf("-resume needs -checkpoint DIR")
	}
	if ckptDir != "" {
		if err := os.MkdirAll(ckptDir, 0o755); err != nil {
			return err
		}
	}
	for _, fid := range ids {
		exp, err := prioritystar.Figure(fid, scale)
		if err != nil {
			return err
		}
		if ckptDir != "" {
			exp.Checkpoint = filepath.Join(ckptDir, fmt.Sprintf("%s_%s.jsonl", fid, scaleStr))
			exp.Resume = resume
		}
		fmt.Printf("=== %s: %s ===\n%s\n\n", exp.ID, exp.Title, exp.Notes)
		if progress {
			// The sweep collector invokes this serially, so a bare \r
			// rewrite is safe; the final newline lands before the tables.
			exp.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d runs", exp.ID, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		res, err := exp.Run()
		if err != nil {
			return err
		}
		for _, mm := range metricsFor(fid) {
			fmt.Printf("--- %s ---\n%s\n", mm.label, res.Table(mm.m))
			if len(exp.Rhos) > 3 {
				fmt.Println(res.Plot(mm.m))
			}
			if out != "" {
				name := fmt.Sprintf("%s_%s.csv", fid, sanitize(mm.m.String()))
				if err := os.WriteFile(filepath.Join(out, name), []byte(res.CSV(mm.m)), 0o644); err != nil {
					return err
				}
			}
		}
		fmt.Printf("(elapsed %s)\n\n", res.Elapsed.Round(1e7))
	}
	return nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r == ' ' || r == '-':
			return '_'
		default:
			return -1
		}
	}, strings.ToLower(s))
}
