// Command trace records and inspects binary event traces of the simulator.
//
// Record one instrumented run (writes the trace plus a .manifest.json
// sidecar, then replays the trace to verify it reproduces the live run):
//
//	trace -record run.trace -shape 8x8 -scheme priority-star -rho 0.8
//
// Inspect a recorded trace (prints the embedded manifest and the replayed
// event summary; -events N additionally dumps the first N records):
//
//	trace -inspect run.trace
//	trace -inspect run.trace -events 20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"prioritystar"
	"prioritystar/internal/cli"
	"prioritystar/internal/obs"
	"prioritystar/internal/sim"
	"prioritystar/internal/traffic"
)

func main() {
	var (
		record  = flag.String("record", "", "run one simulation and record its event trace to this path")
		inspect = flag.String("inspect", "", "replay a recorded trace and print its summary")
		events  = flag.Int("events", 0, "with -inspect, also dump the first N decoded events")

		shape   = flag.String("shape", "8x8", "torus shape, e.g. 8x8 or 4x4x8")
		scheme  = flag.String("scheme", "priority-star", "routing scheme: "+cli.SchemeNames())
		rho     = flag.Float64("rho", 0.8, "throughput factor")
		frac    = flag.Float64("frac", 1, "fraction of transmission load from broadcasts")
		lenStr  = flag.String("len", "fixed:1", "packet lengths: fixed:N or geom:MEAN")
		seed    = flag.Uint64("seed", 1, "RNG seed")
		warmup  = flag.Int64("warmup", 1000, "warm-up slots")
		measure = flag.Int64("measure", 5000, "measurement slots")
		drain   = flag.Int64("drain", 2000, "drain slots")
	)
	flag.Parse()

	var err error
	switch {
	case *record != "" && *inspect != "":
		err = fmt.Errorf("-record and -inspect are mutually exclusive")
	case *record != "":
		err = runRecord(*record, *shape, *scheme, *lenStr, *rho, *frac, *seed, *warmup, *measure, *drain)
	case *inspect != "":
		err = runInspect(*inspect, *events)
	default:
		err = fmt.Errorf("pass -record PATH or -inspect PATH")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}

// runRecord executes one instrumented simulation, streams its events to
// path, writes the manifest sidecar, and then replays the freshly written
// trace to verify it reproduces the live run's delivery counts.
func runRecord(path, shapeStr, schemeStr, lenStr string, rho, frac float64,
	seed uint64, warmup, measure, drain int64) error {
	dims, err := cli.ParseShape(shapeStr)
	if err != nil {
		return err
	}
	schemeSpec, err := cli.SchemeByName(schemeStr)
	if err != nil {
		return err
	}
	length, err := cli.ParseLength(lenStr)
	if err != nil {
		return err
	}
	shape, err := prioritystar.NewTorus(dims...)
	if err != nil {
		return err
	}
	rates, err := traffic.RatesForRho(shape, rho, frac, length.Mean(), prioritystar.ExactDistance)
	if err != nil {
		return err
	}
	sch, err := schemeSpec.Build(shape, rates, prioritystar.ExactDistance)
	if err != nil {
		return err
	}

	m := obs.NewManifest(dims, schemeSpec.Name, seed, rates.LambdaB, rates.LambdaR,
		warmup, measure, drain)
	m.Rho = rho
	m.Length = lenStr
	m.CreatedAt = time.Now().UTC().Format(time.RFC3339)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tw, err := obs.NewTraceWriter(f, m)
	if err != nil {
		f.Close()
		return err
	}
	cnt := &obs.Counters{}
	res, err := sim.Run(sim.Config{
		Shape: shape, Scheme: sch, Rates: rates, Length: length, Seed: seed,
		Warmup: warmup, Measure: measure, Drain: drain,
		Probe: obs.Multi{tw, cnt},
	})
	if err != nil {
		f.Close()
		return err
	}
	if err := tw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := m.Save(obs.ManifestPath(path)); err != nil {
		return err
	}

	// Replay verification: the recorded stream must reproduce the live run.
	sum, err := summarizeFile(path)
	if err != nil {
		return fmt.Errorf("replaying %s: %w", path, err)
	}
	if sum.Delivers != cnt.Delivers || sum.Finals != cnt.Finals || sum.Services != cnt.Services {
		return fmt.Errorf("replay mismatch: trace has %d delivers / %d finals / %d services, live run had %d / %d / %d",
			sum.Delivers, sum.Finals, sum.Services, cnt.Delivers, cnt.Finals, cnt.Services)
	}

	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d events, %d bytes, %.1f B/event) and %s\n",
		path, sum.Events, st.Size(), float64(st.Size())/float64(sum.Events), obs.ManifestPath(path))
	fmt.Printf("replay verified: %d deliveries (%d final), %d services over %d slots\n",
		sum.Delivers, sum.Finals, sum.Services, sum.Slots)
	fmt.Printf("live run: reception delay %.3f, avg utilization %.4f\n",
		res.Reception.Mean(), res.AvgUtilization)
	return nil
}

// runInspect prints a recorded trace's manifest and replayed summary.
func runInspect(path string, events int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := obs.NewTraceReader(f)
	if err != nil {
		return err
	}

	mj, err := json.MarshalIndent(r.Manifest(), "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("manifest:\n%s\n", mj)

	for i := 0; i < events; i++ {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		fmt.Printf("event %4d: %s\n", i, formatEvent(ev))
	}

	sum, err := obs.Summarize(r)
	if err != nil {
		return err
	}
	if events > 0 {
		// Summarize consumed only the remaining records; refold the dumped
		// prefix by replaying from the start for an accurate total.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		r2, err := obs.NewTraceReader(f)
		if err != nil {
			return err
		}
		if sum, err = obs.Summarize(r2); err != nil {
			return err
		}
	}
	sj, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("summary:\n%s\n", sj)
	return nil
}

func summarizeFile(path string) (obs.TraceSummary, error) {
	f, err := os.Open(path)
	if err != nil {
		return obs.TraceSummary{}, err
	}
	defer f.Close()
	r, err := obs.NewTraceReader(f)
	if err != nil {
		return obs.TraceSummary{}, err
	}
	return obs.Summarize(r)
}

func formatEvent(ev obs.Event) string {
	switch ev.Type {
	case obs.EvEnqueue:
		return fmt.Sprintf("slot %6d enqueue  link %d dim %d class %d depth %d",
			ev.Slot, ev.Link, ev.Dim, ev.Class, ev.Depth)
	case obs.EvService:
		return fmt.Sprintf("slot %6d service  link %d dim %d class %d len %d wait %d",
			ev.Slot, ev.Link, ev.Dim, ev.Class, ev.Length, ev.Wait)
	case obs.EvDeliver:
		return fmt.Sprintf("slot %6d deliver  node %d broadcast=%t final=%t delay %d",
			ev.Slot, ev.Node, ev.Broadcast, ev.Final, ev.Delay)
	case obs.EvSpawn:
		return fmt.Sprintf("slot %6d spawn    broadcast=%t measured=%t",
			ev.Slot, ev.Broadcast, ev.Measured)
	case obs.EvSlotEnd:
		return fmt.Sprintf("slot %6d slot-end backlog %d", ev.Slot, ev.Backlog)
	case obs.EvFault:
		return fmt.Sprintf("slot %6d fault    link %d permanent=%t lost %d",
			ev.Slot, ev.Link, ev.Permanent, ev.Lost)
	default:
		return fmt.Sprintf("slot %6d unknown type %d", ev.Slot, ev.Type)
	}
}
