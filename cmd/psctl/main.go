// Command psctl is the command-line client for a starsimd daemon.
//
//	psctl submit -shape 8x8 -scheme priority-star -sweep 0.5,0.7 -watch
//	psctl submit -shape 8x8 -rho 0.3 -approx        # surrogate fast path
//	psctl submit -spec experiment.json
//	psctl ls
//	psctl get j000001
//	psctl watch j000001
//	psctl result j000001 > result.json
//	psctl cancel j000001
//	psctl metrics
//
// The daemon address comes from -addr, the PSCTL_ADDR environment
// variable, or the default 127.0.0.1:7077, in that order.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"prioritystar/internal/cli"
	"prioritystar/internal/cluster"
	"prioritystar/internal/obs"
	"prioritystar/internal/serve"
	"prioritystar/internal/spec"
)

const defaultAddr = "127.0.0.1:7077"

func usage() {
	fmt.Fprintf(os.Stderr, `usage: psctl [-addr HOST:PORT] COMMAND [ARGS]

commands:
  submit   submit a job from -spec FILE or workload flags; -watch follows it
  ls       list jobs in submission order
  get ID   print one job's status
  watch ID follow a job's progress to completion
  result ID  print a finished job's result document (verbatim cached bytes)
  cancel ID  request cancellation (best effort)
  metrics  print the daemon's metric snapshot
  workers  print a coordinator's fleet roster

run "psctl COMMAND -h" for command flags
`)
}

func main() {
	addr := flag.String("addr", "", "daemon address (default $PSCTL_ADDR or "+defaultAddr+")")
	flag.Usage = usage
	flag.Parse()
	if *addr == "" {
		*addr = os.Getenv("PSCTL_ADDR")
	}
	if *addr == "" {
		*addr = defaultAddr
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	c := serve.NewClient(*addr)
	c.Metrics = &obs.MetricSet{} // counts client-side retries/reconnects
	ctx := context.Background()
	var err error
	switch cmd := args[0]; cmd {
	case "submit":
		err = cmdSubmit(ctx, c, args[1:])
	case "ls":
		err = cmdList(ctx, c)
	case "get":
		err = withID(cmd, args[1:], func(id string) error {
			st, err := c.Get(ctx, id)
			if err != nil {
				return err
			}
			return printJSON(st)
		})
	case "watch":
		err = withID(cmd, args[1:], func(id string) error {
			return watch(ctx, c, id)
		})
	case "result":
		err = withID(cmd, args[1:], func(id string) error {
			body, err := c.Result(ctx, id)
			if err != nil {
				return err
			}
			os.Stdout.Write(body)
			fmt.Println()
			return nil
		})
	case "cancel":
		err = withID(cmd, args[1:], func(id string) error {
			st, err := c.Cancel(ctx, id)
			if err != nil {
				return err
			}
			return printJSON(st)
		})
	case "metrics":
		var snap obs.Snapshot
		snap, err = c.MetricsSnapshot(ctx)
		if err == nil {
			// Fold the client's own counters (retries, reconnects) into the
			// daemon snapshot so one document shows both ends.
			snap.Merge(c.Metrics.Snapshot())
			err = printJSON(snap)
		}
	case "workers":
		err = cmdWorkers(ctx, *addr)
	default:
		fmt.Fprintf(os.Stderr, "psctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "psctl:", err)
		os.Exit(1)
	}
}

// withID runs fn with the single ID argument commands like get/watch take.
func withID(cmd string, args []string, fn func(id string) error) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: psctl %s JOB-ID", cmd)
	}
	return fn(args[0])
}

func printJSON(v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

// cmdSubmit builds a spec — from a file or from the shared workload flags —
// and submits it; -watch then follows the job and -out saves its result.
func cmdSubmit(ctx context.Context, c *serve.Client, args []string) error {
	fs := flag.NewFlagSet("psctl submit", flag.ExitOnError)
	var w cli.Workload
	w.Register(fs)
	specFile := fs.String("spec", "", "submit this JSON experiment spec file instead of the workload flags")
	id := fs.String("id", "psctl", "spec id label (workload flags only)")
	approx := fs.Bool("approx", false, "accept an approximate answer from the daemon's analytic surrogate (workload flags only; spec files set \"mode\": \"approx\" themselves)")
	approxTol := fs.Float64("approx-tol", 0, "relative error tolerance for -approx answers (0: daemon default)")
	follow := fs.Bool("watch", false, "follow the job to completion")
	out := fs.String("out", "", "with -watch: write the result document here when the job succeeds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out != "" && !*follow {
		return fmt.Errorf("-out needs -watch")
	}

	var (
		st  *serve.JobStatus
		err error
	)
	if *specFile != "" {
		data, rerr := os.ReadFile(*specFile)
		if rerr != nil {
			return rerr
		}
		st, err = c.SubmitJSON(ctx, data)
	} else {
		exp, berr := w.Experiment(*id, "")
		if berr != nil {
			return berr
		}
		exp.Approx = *approx
		exp.ApproxTol = *approxTol
		st, err = c.Submit(ctx, spec.FromSweep(exp))
	}
	if err != nil {
		if serve.IsQueueFull(err) {
			return fmt.Errorf("%v (daemon queue is full; retry shortly)", err)
		}
		return err
	}
	how := "queued"
	switch {
	case st.Cached:
		how = "served from cache"
	case st.Approx:
		how = "answered by the analytic surrogate (result carries error bounds)"
	case st.Deduped:
		how = "joined identical in-flight job"
	}
	fmt.Fprintf(os.Stderr, "job %s %s (fingerprint %s)\n", st.ID, how, st.Fingerprint)
	if !*follow {
		return printJSON(st)
	}
	if err := watch(ctx, c, st.ID); err != nil {
		return err
	}
	if *out != "" {
		body, err := c.Result(ctx, st.ID)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(body, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	return nil
}

// watch follows a job over SSE (falling back to polling) and prints its
// progress; the terminal status decides the message and the error.
func watch(ctx context.Context, c *serve.Client, id string) error {
	last := ""
	st, err := c.Watch(ctx, id, func(ev serve.JobStatus) {
		line := fmt.Sprintf("%s %s", ev.ID, ev.State)
		if ev.Total > 0 {
			line = fmt.Sprintf("%s %d/%d replications", line, ev.Done, ev.Total)
		}
		if line != last {
			fmt.Fprintln(os.Stderr, line)
			last = line
		}
	})
	if err != nil {
		return err
	}
	switch st.State {
	case serve.StateDone:
		if st.Partial {
			fmt.Fprintf(os.Stderr, "job %s done (partial: some replications failed or diverged)\n", st.ID)
		}
		if st.ResumedReps > 0 {
			fmt.Fprintf(os.Stderr, "job %s resumed %d checkpointed replication(s)\n", st.ID, st.ResumedReps)
		}
		return nil
	case serve.StateCanceled:
		return fmt.Errorf("job %s was canceled", st.ID)
	case serve.StateQuarantined:
		return fmt.Errorf("job %s was quarantined after %d attempt(s): %s", st.ID, st.Attempt, st.Error)
	default:
		return fmt.Errorf("job %s failed: %s", st.ID, st.Error)
	}
}

// cmdWorkers prints a coordinator's fleet roster.
func cmdWorkers(ctx context.Context, addr string) error {
	ws, err := cluster.NewClient(addr).Workers(ctx)
	if err != nil {
		return err
	}
	if len(ws) == 0 {
		fmt.Println("no workers registered")
		return nil
	}
	fmt.Printf("%-7s %-16s %-22s %-6s %-6s %-7s %-6s %-9s %-5s %-8s %s\n",
		"ID", "NAME", "ADDR", "SLOTS", "DEPTH", "LEASES", "ALIVE", "BREAKER", "FAILS", "EWMA", "LAST-SEEN")
	for _, w := range ws {
		alive := "yes"
		if !w.Alive {
			alive = "NO"
		}
		breaker := w.Breaker
		if breaker == "" {
			breaker = "closed"
		}
		ewma := "-"
		if w.LatencyEWMAMillis > 0 {
			ewma = fmt.Sprintf("%.1fms", w.LatencyEWMAMillis)
		}
		fmt.Printf("%-7s %-16s %-22s %-6d %-6d %-7d %-6s %-9s %-5d %-8s %dms ago\n",
			w.ID, w.Name, w.Addr, w.Slots, w.Depth, w.Leases, alive, breaker, w.BreakerFails, ewma, w.LastSeenMillisAgo)
	}
	return nil
}

// cmdList prints a compact table of the daemon's jobs.
func cmdList(ctx context.Context, c *serve.Client) error {
	jobs, err := c.List(ctx)
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		fmt.Println("no jobs")
		return nil
	}
	fmt.Printf("%-10s %-12s %-12s %-7s %s\n", "ID", "STATE", "PROGRESS", "CACHED", "FINGERPRINT")
	for _, j := range jobs {
		prog := "-"
		if j.Total > 0 {
			prog = fmt.Sprintf("%d/%d", j.Done, j.Total)
		}
		cached := "-"
		if j.Cached {
			cached = "yes"
		}
		fmt.Printf("%-10s %-12s %-12s %-7s %s\n", j.ID, j.State, prog, cached, j.Fingerprint)
	}
	return nil
}
