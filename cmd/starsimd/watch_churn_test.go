package main

// SSE watcher churn under repeated daemon crashes: a fleet of concurrent
// watchers follows one long job over /events while the daemon is SIGKILLed
// and rebound twice mid-sweep. The Last-Event-ID reconnect contract says
// every watcher rides through both restarts and observes the terminal
// event exactly once — no watcher errors out, none double-counts, none
// hangs.

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prioritystar/internal/serve"
)

// TestWatcherFleetRidesThroughDoubleCrash boots the real daemon binary,
// attaches 20 SSE watchers to a slow checkpointing sweep, kills and
// restarts the daemon twice (same address, WAL recovery in between), and
// asserts the exactly-once terminal contract for every watcher.
func TestWatcherFleetRidesThroughDoubleCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	const watchers = 20
	bin := buildDaemon(t)
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()

	// Budget for two mid-sweep crashes plus slack.
	d := startDaemon(t, bin, dir, "", "-retry-budget", "5")
	c := patientClient(d.addr)

	// One long, serialized sweep: 30 replications checkpointing one at a
	// time leave a wide window to kill the daemon mid-job — twice.
	slowSpec := []byte(`{
		"id": "churn-slow", "dims": [8, 8], "rhos": [0.3],
		"broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}],
		"warmup": 100, "measure": 20000, "drain": 100,
		"reps": 30, "seed": 11
	}`)
	st, err := c.SubmitJSON(ctx, slowSpec)
	if err != nil {
		t.Fatal(err)
	}

	// The watcher fleet: each counts terminal events it is shown and
	// reports the status Watch returned.
	type outcome struct {
		final     *serve.JobStatus
		err       error
		terminals int64
		events    int64
	}
	outcomes := make([]outcome, watchers)
	var wg sync.WaitGroup
	for i := 0; i < watchers; i++ {
		wg.Add(1)
		go func(o *outcome) {
			defer wg.Done()
			var terminals, events atomic.Int64
			o.final, o.err = c.Watch(ctx, st.ID, func(ev serve.JobStatus) {
				events.Add(1)
				if ev.Terminal() {
					terminals.Add(1)
				}
			})
			o.terminals = terminals.Load()
			o.events = events.Load()
		}(&outcomes[i])
	}

	// Crash the daemon twice, each time after the sweep has durably
	// checkpointed further progress, so both kills land mid-job.
	ckpt := filepath.Join(dir, "jobs.wal.d", st.Fingerprint+".jsonl")
	progress := 0
	for round := 1; round <= 2; round++ {
		target := progress + 3
		deadline := time.Now().Add(90 * time.Second)
		for len(readCheckpointQuiet(ckpt)) < target {
			if time.Now().After(deadline) {
				out, _ := os.ReadFile(d.log)
				t.Fatalf("round %d: sweep never checkpointed %d replications; log:\n%s",
					round, target, out)
			}
			time.Sleep(20 * time.Millisecond)
		}
		progress = len(readCheckpointQuiet(ckpt))
		d.sigkill(t)
		d = startDaemon(t, bin, dir, d.addr, "-retry-budget", "5")
	}

	// Every watcher must come home: Watch returns done, and the terminal
	// event was delivered to its callback exactly once.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		t.Fatal("watcher fleet never finished after two restarts")
	}
	for i := range outcomes {
		o := &outcomes[i]
		if o.err != nil {
			out, _ := os.ReadFile(d.log)
			t.Fatalf("watcher %d broke: %v\nlog:\n%s", i, o.err, out)
		}
		if o.final.State != serve.StateDone {
			t.Errorf("watcher %d: job ended %q (err %q), want done", i, o.final.State, o.final.Error)
		}
		if o.terminals != 1 {
			t.Errorf("watcher %d saw the terminal event %d times, want exactly once", i, o.terminals)
		}
		if o.events < 1 {
			t.Errorf("watcher %d saw no events at all", i)
		}
		if o.final.ID != st.ID {
			t.Errorf("watcher %d finished on job %s, want %s", i, o.final.ID, st.ID)
		}
	}

	// The job really did cross both crashes: its finishing attempt is the
	// third (two recoveries), and it resumed checkpointed replications
	// instead of starting over.
	final, err := c.Get(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Attempt != 3 {
		t.Errorf("job finished on attempt %d, want 3 (one per daemon incarnation)", final.Attempt)
	}
	if final.ResumedReps < 3 {
		t.Errorf("resumedReps = %d, want >= 3 (checkpoints survived the crashes)", final.ResumedReps)
	}

	snap, err := c.MetricsSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["jobs_recovered"]; got != 1 {
		t.Errorf("jobs_recovered = %d, want 1 (the watched job, second recovery)", got)
	}
	d.sigterm(t)
}
