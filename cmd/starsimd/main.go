// Command starsimd is the simulation-as-a-service daemon: it accepts
// experiment specs over HTTP (the internal/spec JSON format), runs them on
// a bounded worker pool, and answers repeated submissions from a
// content-addressed result cache keyed by the spec fingerprint.
//
//	starsimd -addr 127.0.0.1:7077 -workers 4 -cache results.jsonl -wal jobs.wal
//
// SIGINT/SIGTERM drain the daemon: intake stops, accepted jobs finish and
// land in the cache, then the process exits. A second signal aborts
// in-flight jobs. With -wal, even a SIGKILL is survivable: the restarted
// daemon replays the WAL, re-enqueues unfinished jobs under their original
// IDs, and resumes their sweeps from checkpoints so completed points are
// not re-simulated. See internal/serve for the HTTP API and cmd/psctl for
// the client.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"prioritystar/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7077", "HTTP listen address (use :0 for a free port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using :0)")
		workers  = flag.Int("workers", 2, "concurrently running jobs")
		queueCap = flag.Int("queue", 16, "queued-but-unstarted job capacity; a full queue answers 429")
		slots    = flag.Int("slots-per-job", 0, "per-job sweep parallelism cap (0: sweep default, GOMAXPROCS)")
		cache    = flag.String("cache", "", "persist the result cache to this JSONL journal")
		wal      = flag.String("wal", "", "persist the job WAL here; a restarted daemon recovers and resumes unfinished jobs")
		budget   = flag.Int("retry-budget", 2, "retries before a failing job is quarantined (0: no retries, jobs fail outright)")
		backoff  = flag.Duration("retry-backoff", 0, "delay before a job's first retry, doubling per attempt (default 250ms)")
		jobTO    = flag.Duration("job-timeout", 0, "wall-clock guard for jobs that do not set their own (e.g. 5m)")
		drainTO  = flag.Duration("drain-timeout", 0, "cap on graceful drain at shutdown; 0 waits for every accepted job")
		quiet    = flag.Bool("quiet", false, "suppress per-job logging (load harnesses submit thousands of jobs)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "starsimd: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = nil
	}
	retryBudget := *budget
	if retryBudget <= 0 {
		retryBudget = -1 // flag 0 means "no retries", not the config default
	}
	s, err := serve.New(serve.Config{
		Addr:         *addr,
		Workers:      *workers,
		QueueCap:     *queueCap,
		SlotsPerJob:  *slots,
		CachePath:    *cache,
		WALPath:      *wal,
		RetryBudget:  retryBudget,
		RetryBackoff: *backoff,
		JobTimeout:   *jobTO,
		Logf:         logf,
	})
	if err != nil {
		logger.Fatal(err)
	}
	bound, err := s.Start()
	if err != nil {
		logger.Fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			logger.Fatal(err)
		}
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigs
	logger.Printf("received %s; draining (accepted jobs finish, intake stops)", sig)

	ctx, cancel := context.WithCancel(context.Background())
	if *drainTO > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), *drainTO)
	}
	defer cancel()
	go func() {
		<-sigs
		logger.Printf("second signal; aborting in-flight jobs")
		cancel()
	}()

	if err := s.Shutdown(ctx); err != nil &&
		err != context.Canceled && err != context.DeadlineExceeded {
		logger.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	logger.Printf("drained; bye")
}
