// Command starsimd is the simulation-as-a-service daemon: it accepts
// experiment specs over HTTP (the internal/spec JSON format), runs them on
// a bounded worker pool, and answers repeated submissions from a
// content-addressed result cache keyed by the spec fingerprint.
//
//	starsimd -addr 127.0.0.1:7077 -workers 4 -cache results.jsonl -wal jobs.wal
//
// Submissions with "mode": "approx" may be answered by the analytic
// surrogate — the closed-form model plus interpolation over the cached
// exact results — with explicit error bounds and zero simulation runs;
// -no-approx turns the fast path off and -forecast-admission turns on
// predictive shedding driven by the queue-depth forecast.
//
// SIGINT/SIGTERM drain the daemon: intake stops, accepted jobs finish and
// land in the cache, then the process exits. A second signal aborts
// in-flight jobs. With -wal, even a SIGKILL is survivable: the restarted
// daemon replays the WAL, re-enqueues unfinished jobs under their original
// IDs, and resumes their sweeps from checkpoints so completed points are
// not re-simulated. See internal/serve for the HTTP API and cmd/psctl for
// the client.
//
// The daemon also speaks the fleet protocol (internal/cluster):
//
//	starsimd -coordinator -fleet-wal leases.jsonl ...   # scatter jobs to workers
//	starsimd -worker -join 127.0.0.1:7077 ...           # execute sub-jobs for one
//
// A coordinator decomposes every accepted job into replication-level
// sub-jobs and scatters them across registered workers under journaled
// leases; crashed workers are re-dispatched around, and a restarted
// coordinator re-adopts its in-flight leases. The merged result is
// byte-identical to a single-node run. "psctl workers" prints the roster.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"prioritystar/internal/cluster"
	"prioritystar/internal/obs"
	"prioritystar/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7077", "HTTP listen address (use :0 for a free port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using :0)")
		workers  = flag.Int("workers", 2, "concurrently running jobs (or sub-jobs in -worker mode)")
		queueCap = flag.Int("queue", 16, "queued-but-unstarted job capacity; a full queue answers 429")
		slots    = flag.Int("slots-per-job", 0, "per-job sweep parallelism cap (0: sweep default, GOMAXPROCS)")
		cache    = flag.String("cache", "", "persist the result cache to this JSONL journal")
		wal      = flag.String("wal", "", "persist the job WAL here; a restarted daemon recovers and resumes unfinished jobs")
		budget   = flag.Int("retry-budget", 2, "retries before a failing job is quarantined (0: no retries, jobs fail outright)")
		backoff  = flag.Duration("retry-backoff", 0, "delay before a job's first retry, doubling per attempt (default 250ms)")
		jobTO    = flag.Duration("job-timeout", 0, "wall-clock guard for jobs that do not set their own (e.g. 5m)")
		drainTO  = flag.Duration("drain-timeout", 0, "cap on graceful drain at shutdown; 0 waits for every accepted job")
		quiet    = flag.Bool("quiet", false, "suppress per-job logging (load harnesses submit thousands of jobs)")

		noApprox  = flag.Bool("no-approx", false, "ignore approx mode: every submission runs the real simulation")
		approxTol = flag.Float64("approx-tol", 0, "default relative error tolerance for surrogate answers (0: built-in 5%)")
		forecast  = flag.Bool("forecast-admission", false, "shed work the queue-depth forecast says will overflow, before the queue is full")

		coordMode = flag.Bool("coordinator", false, "scatter accepted jobs across registered fleet workers")
		fleetWAL  = flag.String("fleet-wal", "", "persist the coordinator's sub-job lease journal here (re-adopted on restart)")
		leaseTTL  = flag.Duration("lease-ttl", 0, "re-dispatch a sub-job after this long without a result (default 30s)")
		heartbeat = flag.Duration("heartbeat", 0, "worker heartbeat cadence the coordinator dictates (default 2s)")
		sjRetries = flag.Int("subjob-retries", 0, "dispatch attempts per sub-job before the job attempt fails (default 3)")
		sjTimeout = flag.Duration("subjob-timeout", 0, "hard deadline on one sub-job call to a worker; must be >= -heartbeat (default 20x lease TTL)")
		degradeTO = flag.Duration("degrade-after", 0, "run sub-jobs locally after this long with no eligible worker (default max(2x worker expiry, 5s))")
		noHedge   = flag.Bool("no-hedge", false, "disable speculative re-dispatch of straggler sub-jobs")
		hedgeQ    = flag.Float64("hedge-quantile", 0, "observed sub-job latency quantile that triggers a hedged dispatch (default 0.95)")
		brkThresh = flag.Int("breaker-threshold", 0, "consecutive failures that open a worker's circuit breaker (default 3)")
		brkCool   = flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (default 5s)")

		workerMode = flag.Bool("worker", false, "serve fleet sub-jobs (implied by -join)")
		join       = flag.String("join", "", "coordinator address to register with")
		advertise  = flag.String("advertise", "", "address the coordinator dials this worker at (default: the bound address)")
		name       = flag.String("name", "", "worker name on the fleet roster (default: hostname)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "starsimd: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = nil
	}
	retryBudget := *budget
	if retryBudget <= 0 {
		retryBudget = -1 // flag 0 means "no retries", not the config default
	}

	// One metric set spans the daemon and its fleet role, so /metrics shows
	// queue, lease, and worker counters side by side.
	metrics := &obs.MetricSet{}
	var coord *cluster.Coordinator
	if *coordMode {
		var err error
		coord, err = cluster.NewCoordinator(cluster.CoordinatorConfig{
			LeaseTTL:         *leaseTTL,
			Heartbeat:        *heartbeat,
			SubjobRetries:    *sjRetries,
			SubjobTimeout:    *sjTimeout,
			DegradeAfter:     *degradeTO,
			HedgeDisabled:    *noHedge,
			HedgeQuantile:    *hedgeQ,
			BreakerThreshold: *brkThresh,
			BreakerCooldown:  *brkCool,
			JournalPath:      *fleetWAL,
			Metrics:          metrics,
			Logf:             logf,
		})
		if err != nil {
			logger.Fatal(err)
		}
		defer coord.Close()
	}

	cfg := serve.Config{
		Addr:         *addr,
		Workers:      *workers,
		QueueCap:     *queueCap,
		SlotsPerJob:  *slots,
		CachePath:    *cache,
		WALPath:      *wal,
		RetryBudget:  retryBudget,
		RetryBackoff: *backoff,
		JobTimeout:   *jobTO,
		NoApprox:     *noApprox,
		ApproxTol:    *approxTol,

		ForecastAdmission: *forecast,

		Metrics: metrics,
		Logf:    logf,
	}
	if coord != nil {
		cfg.RunJob = coord.RunJob
		cfg.Degraded = coord.Degraded
	}
	s, err := serve.New(cfg)
	if err != nil {
		logger.Fatal(err)
	}
	if coord != nil {
		coord.Mount(s)
	}
	var wrk *cluster.Worker
	if *workerMode || *join != "" {
		wrk = cluster.NewWorker(cluster.WorkerConfig{
			Slots:          *workers,
			SlotsPerSubjob: *slots,
			Metrics:        metrics,
			Logf:           logf,
		})
		wrk.Mount(s)
	}

	bound, err := s.Start()
	if err != nil {
		logger.Fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			logger.Fatal(err)
		}
	}

	var agent *cluster.Agent
	if *join != "" {
		adv := *advertise
		if adv == "" {
			adv = bound
		}
		label := *name
		if label == "" {
			label, _ = os.Hostname()
		}
		agent = cluster.StartAgent(cluster.AgentConfig{
			Coordinator: *join,
			Advertise:   adv,
			Name:        label,
			Slots:       *workers,
			Depth:       wrk.Depth,
			Logf:        logf,
		})
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigs
	logger.Printf("received %s; draining (accepted jobs finish, intake stops)", sig)
	if agent != nil {
		agent.Stop() // go silent; the coordinator expires this worker
	}

	ctx, cancel := context.WithCancel(context.Background())
	if *drainTO > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), *drainTO)
	}
	defer cancel()
	go func() {
		<-sigs
		logger.Printf("second signal; aborting in-flight jobs")
		cancel()
	}()

	if err := s.Shutdown(ctx); err != nil &&
		err != context.Canceled && err != context.DeadlineExceeded {
		logger.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	logger.Printf("drained; bye")
}
