// Command starsimd is the simulation-as-a-service daemon: it accepts
// experiment specs over HTTP (the internal/spec JSON format), runs them on
// a bounded worker pool, and answers repeated submissions from a
// content-addressed result cache keyed by the spec fingerprint.
//
//	starsimd -addr 127.0.0.1:7077 -workers 4 -cache results.jsonl
//
// SIGINT/SIGTERM drain the daemon: intake stops, accepted jobs finish and
// land in the cache, then the process exits. A second signal aborts
// in-flight jobs. See internal/serve for the HTTP API and cmd/psctl for
// the client.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"prioritystar/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7077", "HTTP listen address (use :0 for a free port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using :0)")
		workers  = flag.Int("workers", 2, "concurrently running jobs")
		queueCap = flag.Int("queue", 16, "queued-but-unstarted job capacity; a full queue answers 429")
		slots    = flag.Int("slots-per-job", 0, "per-job sweep parallelism cap (0: sweep default, GOMAXPROCS)")
		cache    = flag.String("cache", "", "persist the result cache to this JSONL journal")
		jobTO    = flag.Duration("job-timeout", 0, "wall-clock guard for jobs that do not set their own (e.g. 5m)")
		drainTO  = flag.Duration("drain-timeout", 0, "cap on graceful drain at shutdown; 0 waits for every accepted job")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "starsimd: ", log.LstdFlags)
	s, err := serve.New(serve.Config{
		Addr:        *addr,
		Workers:     *workers,
		QueueCap:    *queueCap,
		SlotsPerJob: *slots,
		CachePath:   *cache,
		JobTimeout:  *jobTO,
		Logf:        logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}
	bound, err := s.Start()
	if err != nil {
		logger.Fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			logger.Fatal(err)
		}
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigs
	logger.Printf("received %s; draining (accepted jobs finish, intake stops)", sig)

	ctx, cancel := context.WithCancel(context.Background())
	if *drainTO > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), *drainTO)
	}
	defer cancel()
	go func() {
		<-sigs
		logger.Printf("second signal; aborting in-flight jobs")
		cancel()
	}()

	if err := s.Shutdown(ctx); err != nil &&
		err != context.Canceled && err != context.DeadlineExceeded {
		logger.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	logger.Printf("drained; bye")
}
