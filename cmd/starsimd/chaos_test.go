package main

// Subprocess chaos suite: boots the real daemon binary, SIGKILLs it
// mid-job, corrupts what the crash left on disk (torn WAL and cache
// tails), restarts on the same address, and asserts the durability
// contract end to end: every accepted job reaches a terminal state, the
// resumed sweep re-runs zero already-checkpointed replications, cached
// results stay byte-identical, and a client watching over SSE across the
// crash never notices.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"prioritystar/internal/serve"
)

// buildDaemon compiles starsimd once per test binary.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "starsimd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building starsimd: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running starsimd subprocess.
type daemon struct {
	cmd  *exec.Cmd
	addr string
	log  string
}

// startDaemon boots the binary and waits for it to bind. addr "" asks for
// a free port; pass a previous daemon's address to rebind it.
func startDaemon(t *testing.T, bin, dir, addr string, extra ...string) *daemon {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	addrFile := filepath.Join(dir, fmt.Sprintf("addr.%d", time.Now().UnixNano()))
	logPath := filepath.Join(dir, fmt.Sprintf("daemon.%d.log", time.Now().UnixNano()))
	logF, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer logF.Close()
	args := append([]string{
		"-addr", addr, "-addr-file", addrFile,
		"-workers", "1", "-slots-per-job", "1",
		"-wal", filepath.Join(dir, "jobs.wal"),
		"-cache", filepath.Join(dir, "cache.jsonl"),
		"-retry-backoff", "50ms",
	}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = logF
	cmd.Stdout = logF
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting daemon: %v", err)
	}
	d := &daemon{cmd: cmd, log: logPath}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil && len(bytes.TrimSpace(b)) > 0 {
			d.addr = string(bytes.TrimSpace(b))
			return d
		}
		time.Sleep(20 * time.Millisecond)
	}
	out, _ := os.ReadFile(logPath)
	t.Fatalf("daemon never bound an address; log:\n%s", out)
	return nil
}

// sigkill slams the daemon dead — no drain, no cleanup.
func (d *daemon) sigkill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()
}

// sigterm asks for a graceful drain and waits for a clean exit.
func (d *daemon) sigterm(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		out, _ := os.ReadFile(d.log)
		t.Fatalf("daemon did not exit cleanly after SIGTERM: %v\nlog:\n%s", err, out)
	}
}

// patientClient tolerates the restart gap between kill and rebind.
func patientClient(addr string) *serve.Client {
	c := serve.NewClient(addr)
	c.Retry = serve.RetryPolicy{MaxRetries: 30, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	return c
}

// slowSweepSpec is a ~20-replication sweep, serialized by -slots-per-job 1
// so checkpoint records land one at a time — plenty of window to SIGKILL
// mid-job.
func slowSweepSpec() []byte {
	return []byte(`{
		"id": "chaos-slow", "dims": [8, 8], "rhos": [0.3],
		"broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}],
		"warmup": 100, "measure": 20000, "drain": 100,
		"reps": 20, "seed": 7
	}`)
}

func quickSpec(seed int) []byte {
	return []byte(fmt.Sprintf(`{
		"id": "chaos-quick", "dims": [4, 4], "rhos": [0.3],
		"broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}],
		"warmup": 50, "measure": 400, "drain": 100,
		"reps": 2, "seed": %d
	}`, seed))
}

// readCheckpoint parses a sweep checkpoint journal, ignoring the header and
// any torn final line, and returns the (scheme,rho,rep) key of every intact
// record.
func readCheckpoint(t *testing.T, path string) []string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading checkpoint: %v", err)
	}
	var keys []string
	for i, line := range strings.Split(string(b), "\n") {
		if i == 0 || strings.TrimSpace(line) == "" {
			continue // header / trailing newline
		}
		var rec struct {
			S   int `json:"s"`
			R   int `json:"r"`
			Rep int `json:"rep"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			continue // torn tail from the kill
		}
		keys = append(keys, fmt.Sprintf("%d/%d/%d", rec.S, rec.R, rec.Rep))
	}
	return keys
}

// appendGarbage simulates a torn write at the very end of a journal.
func appendGarbage(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("tearing %s: %v", path, err)
	}
	if _, err := f.WriteString(`{"truncated`); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// TestCrashRecoveryEndToEnd is the full chaos walk: submit a long job and
// two queued ones, SIGKILL the daemon mid-sweep, tear the WAL and cache
// tails, restart on the same port, and require every job to finish — the
// long one resuming from its checkpoint without re-simulating a single
// completed replication — while a Watch started before the crash rides
// straight through it.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	d1 := startDaemon(t, bin, dir, "")
	c := patientClient(d1.addr)

	// One slow job (starts immediately on the single worker) and two quick
	// ones stuck behind it in the queue.
	slow, err := c.SubmitJSON(ctx, slowSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	q1, err := c.SubmitJSON(ctx, quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	q2, err := c.SubmitJSON(ctx, quickSpec(2))
	if err != nil {
		t.Fatal(err)
	}

	// Watch a queued job over SSE, across the crash, from a goroutine.
	type watchOut struct {
		st  *serve.JobStatus
		err error
	}
	watched := make(chan watchOut, 1)
	go func() {
		st, err := c.Watch(ctx, q1.ID, nil)
		watched <- watchOut{st, err}
	}()

	// Wait until the slow sweep has durably checkpointed a few
	// replications, then SIGKILL mid-job.
	ckpt := filepath.Join(dir, "jobs.wal.d", slow.Fingerprint+".jsonl")
	deadline := time.Now().Add(60 * time.Second)
	for len(readCheckpointQuiet(ckpt)) < 3 {
		if time.Now().After(deadline) {
			out, _ := os.ReadFile(d1.log)
			t.Fatalf("sweep never checkpointed 3 replications; log:\n%s", out)
		}
		time.Sleep(20 * time.Millisecond)
	}
	d1.sigkill(t)

	// What the crash left behind: the intact checkpoint prefix is exactly
	// the set of replications the resumed job must NOT re-simulate.
	doneAtCrash := readCheckpoint(t, ckpt)
	seen := map[string]bool{}
	for _, k := range doneAtCrash {
		if seen[k] {
			t.Fatalf("checkpoint recorded replication %s twice", k)
		}
		seen[k] = true
	}

	// Corrupt the journals the way a dying machine would: torn tails.
	appendGarbage(t, filepath.Join(dir, "jobs.wal"))
	appendGarbage(t, filepath.Join(dir, "cache.jsonl"))

	// Restart on the same address; the watcher's retry loop bridges the gap.
	d2 := startDaemon(t, bin, dir, d1.addr)

	// Every accepted job must reach done, under its pre-crash ID.
	for _, id := range []string{slow.ID, q1.ID, q2.ID} {
		st, err := c.Watch(ctx, id, nil)
		if err != nil {
			out, _ := os.ReadFile(d2.log)
			t.Fatalf("watch %s after restart: %v\nlog:\n%s", id, err, out)
		}
		if st.State != serve.StateDone {
			t.Fatalf("job %s ended %q (err %q), want done", id, st.State, st.Error)
		}
	}

	// The pre-crash watcher rode through the restart.
	select {
	case w := <-watched:
		if w.err != nil {
			t.Fatalf("pre-crash watch broke: %v", w.err)
		}
		if w.st.State != serve.StateDone {
			t.Fatalf("pre-crash watch ended %q", w.st.State)
		}
	case <-ctx.Done():
		t.Fatal("pre-crash watch never finished")
	}

	// The resumed sweep replayed every checkpointed replication instead of
	// re-simulating it.
	slowFinal, err := c.Get(ctx, slow.ID)
	if err != nil {
		t.Fatal(err)
	}
	if slowFinal.ResumedReps != len(doneAtCrash) {
		t.Fatalf("resumedReps = %d, want %d (the checkpointed replications at crash time)",
			slowFinal.ResumedReps, len(doneAtCrash))
	}
	if slowFinal.ResumedReps < 3 {
		t.Fatalf("resumedReps = %d, want >= 3", slowFinal.ResumedReps)
	}

	// Recovery is visible in the metrics.
	snap, err := c.MetricsSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["jobs_recovered"]; got != 3 {
		t.Fatalf("jobs_recovered = %d, want 3", got)
	}

	// Resubmitting the slow spec hits the cache, byte-identically.
	body1, err := c.Result(ctx, slow.ID)
	if err != nil {
		t.Fatal(err)
	}
	re, err := c.SubmitJSON(ctx, slowSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !re.Cached {
		t.Fatalf("resubmission after recovery not cached: %+v", re)
	}
	body2, err := c.Result(ctx, re.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("recovered result is not byte-identical to its cache hit")
	}

	// And the survivor still drains cleanly.
	d2.sigterm(t)
}

// TestPoisonJobQuarantinedAcrossRestarts: a job that fails every attempt is
// quarantined rather than crash-looping, and a restarted daemon keeps it
// quarantined instead of retrying it forever.
func TestPoisonJobQuarantinedAcrossRestarts(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	d1 := startDaemon(t, bin, dir, "", "-retry-budget", "1")
	c := patientClient(d1.addr)

	// More random link faults than a 4x4 torus has links: fails in the
	// sweep on every attempt.
	poison := []byte(`{
		"id": "chaos-poison", "dims": [4, 4], "rhos": [0.3],
		"broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}],
		"warmup": 10, "measure": 100, "drain": 10,
		"reps": 1, "seed": 3,
		"faults": "perm:999"
	}`)
	st, err := c.SubmitJSON(ctx, poison)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Watch(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateQuarantined {
		t.Fatalf("poison job ended %q, want quarantined", final.State)
	}

	// Restart: the quarantined terminal state must not come back to life.
	d1.sigkill(t)
	d2 := startDaemon(t, bin, dir, d1.addr, "-retry-budget", "1")
	jobs, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.ID == st.ID {
			t.Fatalf("quarantined job %s resurrected as %q after restart", j.ID, j.State)
		}
	}
	snap, err := c.MetricsSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["jobs_recovered"]; got != 0 {
		t.Fatalf("jobs_recovered = %d, want 0 (only a terminal job was in the WAL)", got)
	}
	d2.sigterm(t)
}

// readCheckpointQuiet is readCheckpoint without the test dependency, for
// polling before the file exists.
func readCheckpointQuiet(path string) []string {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var keys []string
	for i, line := range strings.Split(string(b), "\n") {
		if i == 0 || strings.TrimSpace(line) == "" {
			continue
		}
		var rec struct {
			S   int `json:"s"`
			R   int `json:"r"`
			Rep int `json:"rep"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			continue
		}
		keys = append(keys, fmt.Sprintf("%d/%d/%d", rec.S, rec.R, rec.Rep))
	}
	return keys
}
