package main

// Fleet chaos suite: boots a real coordinator daemon plus three worker
// daemons as subprocesses, SIGKILLs workers and the coordinator itself
// mid-sweep, tears the journals the crash left behind, and asserts the
// fabric's contract end to end: every accepted job reaches a terminal
// state, the restarted coordinator resumes from its checkpoint without
// re-simulating a single checkpointed replication, and the fleet-merged
// result is byte-identical to a single-node run of the same spec.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"prioritystar/internal/serve"
)

// clusterSweepSpec is a 32-replication sweep that decomposes into four
// 8-rep sub-jobs — enough rounds on a damaged fleet that there is always a
// mid-sweep window between the first checkpointed sub-job and the last.
func clusterSweepSpec() []byte {
	return []byte(`{
		"id": "chaos-fleet", "dims": [8, 8], "rhos": [0.3],
		"broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}],
		"warmup": 100, "measure": 40000, "drain": 100,
		"reps": 32, "seed": 17
	}`)
}

const clusterTotalReps = 32

// workerSimulated reads one worker daemon's simulated-replication counter.
func workerSimulated(ctx context.Context, t *testing.T, addr string) int64 {
	t.Helper()
	snap, err := serve.NewClient(addr).MetricsSnapshot(ctx)
	if err != nil {
		t.Fatalf("reading worker %s metrics: %v", addr, err)
	}
	return snap.Counters["cluster_reps_simulated"]
}

// TestClusterChaosEndToEnd is the fleet chaos walk: a coordinator scatters
// a sweep over three workers; one worker is SIGKILLed mid-sweep, then the
// coordinator itself is SIGKILLed and its journals torn; the restarted
// coordinator re-adopts its leases, resumes from the checkpoint, finishes
// on the surviving workers (one of which is also killed), and produces a
// result byte-identical to a single-node daemon's.
func TestClusterChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	bin := buildDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), 240*time.Second)
	defer cancel()

	coordDir := t.TempDir()
	fleetWAL := filepath.Join(coordDir, "leases.jsonl")
	coordFlags := []string{
		"-coordinator", "-fleet-wal", fleetWAL,
		"-heartbeat", "100ms", "-lease-ttl", "20s", "-subjob-retries", "8",
	}
	coord1 := startDaemon(t, bin, coordDir, "", coordFlags...)

	workers := make([]*daemon, 3)
	for i := range workers {
		workers[i] = startDaemon(t, bin, t.TempDir(), "",
			"-worker", "-join", coord1.addr, "-name", fmt.Sprintf("w%d", i))
	}

	// The quick job runs to completion first: the daemon's single-slot pool
	// would otherwise queue it behind the sweep, and its replications must
	// all be simulated before the crash window opens so the post-crash
	// accounting below sees only sweep work. Its terminal record still
	// rides through the WAL tear and the restart below.
	c := patientClient(coord1.addr)
	quick, err := c.SubmitJSON(ctx, quickSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c.Watch(ctx, quick.ID, nil); err != nil || st.State != serve.StateDone {
		t.Fatalf("quick job before crash: state %v, err %v", st, err)
	}
	slow, err := c.SubmitJSON(ctx, clusterSweepSpec())
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1 — kill a worker while the sweep is in flight. Its in-flight
	// sub-job dies with it; the coordinator re-dispatches to the survivors.
	ckpt := filepath.Join(coordDir, "jobs.wal.d", slow.Fingerprint+".jsonl")
	waitRunning := time.Now().Add(60 * time.Second)
	for {
		st, err := c.Get(ctx, slow.ID)
		if err == nil && st.State == serve.StateRunning {
			break
		}
		if time.Now().After(waitRunning) {
			out, _ := os.ReadFile(coord1.log)
			t.Fatalf("sweep never started running; log:\n%s", out)
		}
		time.Sleep(10 * time.Millisecond)
	}
	workers[0].sigkill(t)

	// Phase 2 — once at least one sub-job is durably checkpointed (but the
	// sweep is not necessarily finished), SIGKILL the coordinator and tear
	// the tails of both its journals. The kill comes first: with the
	// coordinator dead the checkpoint is frozen, so the simulated-counter
	// snapshot and the checkpointed set are consistent with each other (a
	// sub-job delivered between a pre-kill snapshot and the checkpoint read
	// would count against the outstanding budget twice).
	waitCkpt := time.Now().Add(120 * time.Second)
	for len(readCheckpointQuiet(ckpt)) < 8 {
		if time.Now().After(waitCkpt) {
			out, _ := os.ReadFile(coord1.log)
			t.Fatalf("no sub-job ever checkpointed; log:\n%s", out)
		}
		time.Sleep(10 * time.Millisecond)
	}
	coord1.sigkill(t)
	simulatedBefore := workerSimulated(ctx, t, workers[2].addr)
	doneAtCrash := readCheckpoint(t, ckpt)
	appendGarbage(t, filepath.Join(coordDir, "jobs.wal"))
	appendGarbage(t, fleetWAL)
	// A benign record after the garbage makes the corruption interior:
	// torn tails are silently truncated, interior damage must be counted.
	f, err := os.OpenFile(fleetWAL, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\n{\"op\":\"done\",\"fp\":\"ps1-none\",\"key\":\"s0r0@0\"}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Phase 3 — restart the coordinator on the same address. The WAL
	// replays both jobs, the checkpoint replays the finished replications,
	// the lease journal re-adopts what was in flight, and the worker agents
	// rejoin on their own. Kill a second worker while it finishes.
	coord2 := startDaemon(t, bin, coordDir, coord1.addr, coordFlags...)
	workers[1].sigkill(t)

	slowSt, err := c.Watch(ctx, slow.ID, nil)
	if err != nil {
		out, _ := os.ReadFile(coord2.log)
		t.Fatalf("watch %s after restart: %v\nlog:\n%s", slow.ID, err, out)
	}
	if slowSt.State != serve.StateDone {
		t.Fatalf("job %s ended %q (err %q), want done", slow.ID, slowSt.State, slowSt.Error)
	}

	// The quick job finished before the crash, so WAL compaction dropped its
	// records (terminal jobs live on in the result cache, not the WAL): a
	// resubmission of the same spec must be a cache hit, not a re-run.
	requick, err := c.SubmitJSON(ctx, quickSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	if !requick.Cached {
		t.Fatalf("pre-crash quick job not served from cache after restart: %+v", requick)
	}

	// Every checkpointed replication was replayed, not re-simulated: the
	// resumed job accounts for all of them, and the last surviving worker
	// simulated no more than the non-checkpointed remainder. (Sub-jobs it
	// finished after the crash but before the kill of worker 1 are covered
	// by the same budget: they were outstanding at crash time, and the
	// worker's sub-job cache plus lease adoption keep re-dispatches from
	// simulating them twice.)
	slowFinal, err := c.Get(ctx, slow.ID)
	if err != nil {
		t.Fatal(err)
	}
	if slowFinal.ResumedReps != len(doneAtCrash) {
		t.Fatalf("resumedReps = %d, want %d (the checkpointed replications at crash time)",
			slowFinal.ResumedReps, len(doneAtCrash))
	}
	delta := workerSimulated(ctx, t, workers[2].addr) - simulatedBefore
	if remaining := int64(clusterTotalReps - len(doneAtCrash)); delta > remaining {
		t.Fatalf("surviving workers re-simulated checkpointed work: %d reps simulated after the crash, only %d were outstanding",
			delta, remaining)
	}

	// The torn journal tails were skipped leniently, and visibly.
	snap, err := c.MetricsSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["journal_records_skipped"]; got < 1 {
		t.Fatalf("journal_records_skipped = %d, want >= 1 (interior lease-journal corruption)", got)
	}

	fleetBody, err := c.Result(ctx, slow.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Differential: a plain single-node daemon folds the same spec to the
	// same bytes.
	single := startDaemon(t, bin, t.TempDir(), "")
	sc := patientClient(single.addr)
	st, err := sc.SubmitJSON(ctx, clusterSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := sc.Watch(ctx, st.ID, nil); err != nil || fin.State != serve.StateDone {
		t.Fatalf("single-node run: state %v, err %v", fin, err)
	}
	singleBody, err := sc.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fleetBody, singleBody) {
		t.Fatalf("fleet result is not byte-identical to the single-node run\nfleet:  %.200s\nsingle: %.200s",
			fleetBody, singleBody)
	}

	// The survivors still drain cleanly.
	coord2.sigterm(t)
	workers[2].sigterm(t)
	single.sigterm(t)
}
