package main

// Network chaos suite: real coordinator and worker daemons with chaosnet
// TCP proxies spliced into the coordinator->worker dispatch path, so the
// test can cut and heal links from outside both processes. Heartbeats flow
// directly worker->coordinator, which makes a proxy partition exactly the
// nasty one-way shape: the roster says the fleet is alive while every
// dispatch dies. The fabric's contract under that storm: the accepted job
// completes through local degradation, byte-identical to an un-faulted
// single-node run, without re-simulating a single checkpointed
// replication; /healthz surfaces "degraded" during the storm and "ok"
// after the heal; and a straggling link triggers hedged dispatch whose
// losing duplicate is discarded, never double-folded.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"prioritystar/internal/chaosnet"
	"prioritystar/internal/obs"
	"prioritystar/internal/serve"
)

// reservePort grabs a free localhost port and releases it for a daemon to
// bind, so the chaos proxy can be built before the worker it fronts.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// proxiedWorker is a worker daemon reachable (by the coordinator) only
// through its chaos proxy.
type proxiedWorker struct {
	d     *daemon
	proxy *chaosnet.Proxy
}

// startProxiedWorker boots a worker on a reserved port, fronted by a chaos
// proxy the worker advertises to the coordinator as its dispatch address.
func startProxiedWorker(t *testing.T, bin, coordAddr, name string) *proxiedWorker {
	t.Helper()
	waddr := reservePort(t)
	proxy, err := chaosnet.NewProxy(waddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	d := startDaemon(t, bin, t.TempDir(), waddr,
		"-worker", "-join", coordAddr, "-advertise", proxy.Addr(), "-name", name)
	return &proxiedWorker{d: d, proxy: proxy}
}

func healthzBody(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return strings.TrimSpace(string(b))
}

func waitHealthz(t *testing.T, addr, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if healthzBody(t, addr) == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("/healthz never reported %q (last: %q)", want, healthzBody(t, addr))
}

func coordSnapshot(ctx context.Context, t *testing.T, c *serve.Client) obs.Snapshot {
	t.Helper()
	snap, err := c.MetricsSnapshot(ctx)
	if err != nil {
		t.Fatalf("reading coordinator metrics: %v", err)
	}
	return snap
}

// chaosNetSpec is a 32-replication sweep decomposing into four 8-rep
// sub-jobs: enough rounds that a partition lands mid-sweep, with
// checkpointed sub-jobs behind it and undispatched ones ahead of it.
func chaosNetSpec() []byte {
	return []byte(`{
		"id": "chaos-net", "dims": [8, 8], "rhos": [0.3],
		"broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}],
		"warmup": 100, "measure": 20000, "drain": 100,
		"reps": 32, "seed": 21
	}`)
}

const chaosNetTotalReps = 32

// TestChaosNetPartitionStorm cuts every coordinator->worker link mid-sweep
// and asserts the full degradation ladder: breakers open, the job drains
// locally, the result matches a single-node run byte for byte, no
// checkpointed replication is re-simulated, /healthz tells the story, and
// a healed fleet takes traffic again without local fallback.
func TestChaosNetPartitionStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	bin := buildDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), 240*time.Second)
	defer cancel()

	coordDir := t.TempDir()
	coord := startDaemon(t, bin, coordDir, "",
		"-coordinator", "-fleet-wal", filepath.Join(coordDir, "leases.jsonl"),
		"-heartbeat", "100ms", "-lease-ttl", "20s", "-subjob-retries", "4",
		"-degrade-after", "1s", "-breaker-threshold", "2", "-breaker-cooldown", "3s")
	workers := []*proxiedWorker{
		startProxiedWorker(t, bin, coord.addr, "w0"),
		startProxiedWorker(t, bin, coord.addr, "w1"),
	}

	c := patientClient(coord.addr)
	if body := healthzBody(t, coord.addr); body != "ok" {
		t.Fatalf("healthy fleet /healthz = %q, want ok", body)
	}
	slow, err := c.SubmitJSON(ctx, chaosNetSpec())
	if err != nil {
		t.Fatal(err)
	}

	// Partition once at least one sub-job is durably checkpointed but the
	// sweep is not done: that leaves checkpointed work behind the cut and
	// undispatched work ahead of it.
	ckpt := filepath.Join(coordDir, "jobs.wal.d", slow.Fingerprint+".jsonl")
	waitCkpt := time.Now().Add(120 * time.Second)
	for len(readCheckpointQuiet(ckpt)) < 8 {
		if time.Now().After(waitCkpt) {
			out, _ := os.ReadFile(coord.log)
			t.Fatalf("no sub-job ever checkpointed; log:\n%s", out)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, w := range workers {
		w.proxy.Partition()
	}
	// With every dispatch path dead and in-flight responses severed, the
	// checkpoint is frozen; the short grace lets a response that fully
	// landed just before the cut flush its checkpoint record.
	time.Sleep(300 * time.Millisecond)
	frozen := readCheckpoint(t, ckpt)
	if len(frozen) == 0 || len(frozen) >= chaosNetTotalReps {
		t.Fatalf("partition missed the mid-sweep window: %d/%d reps checkpointed", len(frozen), chaosNetTotalReps)
	}

	// The storm is operator-visible while it lasts.
	waitHealthz(t, coord.addr, "degraded", 30*time.Second)

	st, err := c.Watch(ctx, slow.ID, nil)
	if err != nil {
		out, _ := os.ReadFile(coord.log)
		t.Fatalf("watch %s through the storm: %v\nlog:\n%s", slow.ID, err, out)
	}
	if st.State != serve.StateDone {
		out, _ := os.ReadFile(coord.log)
		t.Fatalf("job ended %q (err %q), want done\nlog:\n%s", st.State, st.Error, out)
	}

	snap := coordSnapshot(ctx, t, c)
	if snap.Counters["subjobs_local"] < 1 {
		t.Fatal("storm job completed without local degradation")
	}
	if snap.Counters["breaker_open_total"] < 1 {
		t.Fatal("no breaker opened under a full partition")
	}
	// Zero checkpointed replications re-simulated: local execution covers
	// at most the non-checkpointed remainder (partitioned workers cannot
	// run anything), and the fold accounting balances.
	remainder := int64(chaosNetTotalReps - len(frozen))
	if got := snap.Counters["cluster_reps_local"]; got > remainder {
		t.Fatalf("local execution re-simulated checkpointed work: %d reps local, only %d were outstanding", got, remainder)
	}
	if folded, expected := snap.Counters["cluster_reps_folded"], snap.Counters["cluster_reps_expected"]; folded != expected {
		t.Fatalf("fold accounting under the storm: folded %d, expected %d", folded, expected)
	}
	if got := snap.Gauges["fleet_degraded"]; got != 1 {
		t.Fatalf("fleet_degraded gauge = %v during the storm, want 1", got)
	}

	// Differential: a plain single-node daemon folds the same spec to the
	// same bytes — degradation changed where the work ran, not the answer.
	stormBody, err := c.Result(ctx, slow.ID)
	if err != nil {
		t.Fatal(err)
	}
	single := startDaemon(t, bin, t.TempDir(), "")
	sc := patientClient(single.addr)
	sj, err := sc.SubmitJSON(ctx, chaosNetSpec())
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := sc.Watch(ctx, sj.ID, nil); err != nil || fin.State != serve.StateDone {
		t.Fatalf("single-node run: state %v, err %v", fin, err)
	}
	singleBody, err := sc.Result(ctx, sj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stormBody, singleBody) {
		t.Fatalf("degraded result is not byte-identical to the single-node run\nstorm:  %.200s\nsingle: %.200s",
			stormBody, singleBody)
	}

	// Heal. The breakers' cooldown admits probes; the next job must be
	// served by workers again, with no further local fallback.
	for _, w := range workers {
		w.proxy.Heal()
	}
	waitHealthz(t, coord.addr, "ok", 30*time.Second)
	localBefore := snap.Counters["subjobs_local"]
	probe, err := c.SubmitJSON(ctx, quickSpec(23))
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := c.Watch(ctx, probe.ID, nil); err != nil || fin.State != serve.StateDone {
		t.Fatalf("post-heal job: state %v, err %v", fin, err)
	}
	after := coordSnapshot(ctx, t, c)
	if got := after.Counters["subjobs_local"]; got != localBefore {
		t.Fatalf("healed fleet still ran %d sub-job(s) locally", got-localBefore)
	}
	if got := after.Gauges["fleet_degraded"]; got != 0 {
		t.Fatalf("fleet_degraded gauge = %v after heal, want 0", got)
	}

	coord.sigterm(t)
	for _, w := range workers {
		w.d.sigterm(t)
	}
	single.sigterm(t)
}

// hedgeSpec is a fast 32-replication sweep (four sub-jobs) for straggler
// scenarios: per-rep cost is tiny, so observed healthy latency sits far
// under the injected link delay.
func hedgeSpec(seed int) []byte {
	return []byte(fmt.Sprintf(`{
		"id": "chaos-hedge", "dims": [4, 4], "rhos": [0.3],
		"broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}],
		"warmup": 50, "measure": 300, "drain": 50,
		"reps": 32, "seed": %d
	}`, seed))
}

// TestChaosNetStragglerHedging turns one worker's link into a straggler
// (600ms connection setup) and asserts hedged dispatch: a speculative copy
// fires at the observed latency quantile, the fast copy wins, the loser is
// discarded as a duplicate, and the rep accounting shows no double-fold.
func TestChaosNetStragglerHedging(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	bin := buildDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	coordDir := t.TempDir()
	coord := startDaemon(t, bin, coordDir, "",
		"-coordinator", "-fleet-wal", filepath.Join(coordDir, "leases.jsonl"),
		"-heartbeat", "100ms", "-lease-ttl", "20s")
	fast := startProxiedWorker(t, bin, coord.addr, "fast")
	slow := startProxiedWorker(t, bin, coord.addr, "slow")

	c := patientClient(coord.addr)
	// Warm the coordinator's latency ring past the hedge sample floor.
	for seed := 100; seed < 103; seed++ {
		st, err := c.SubmitJSON(ctx, hedgeSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		if fin, err := c.Watch(ctx, st.ID, nil); err != nil || fin.State != serve.StateDone {
			t.Fatalf("warm job: state %v, err %v", fin, err)
		}
	}

	// Delay applies at connection setup, so sever the coordinator's pooled
	// keep-alive connections first: every new dial to the slow worker now
	// pays 600ms before the request even reaches it.
	slow.proxy.SetDelay(600 * time.Millisecond)
	slow.proxy.Partition()
	slow.proxy.Heal()

	for seed := 103; seed < 109; seed++ {
		st, err := c.SubmitJSON(ctx, hedgeSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		if fin, err := c.Watch(ctx, st.ID, nil); err != nil || fin.State != serve.StateDone {
			t.Fatalf("straggler job: state %v, err %v", fin, err)
		}
		if coordSnapshot(ctx, t, c).Counters["chaos_hedges_total"] >= 1 {
			break
		}
	}
	snap := coordSnapshot(ctx, t, c)
	if snap.Counters["chaos_hedges_total"] < 1 {
		out, _ := os.ReadFile(coord.log)
		t.Fatalf("no hedge fired against a 600ms straggler link\nlog:\n%s", out)
	}
	// The loser's late result lands as a discarded duplicate (give its
	// delayed connection time to finish draining).
	deadline := time.Now().Add(15 * time.Second)
	for coordSnapshot(ctx, t, c).Counters["subjob_duplicates"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("hedge fired but no losing duplicate was ever discarded")
		}
		time.Sleep(50 * time.Millisecond)
	}
	final := coordSnapshot(ctx, t, c)
	if folded, expected := final.Counters["cluster_reps_folded"], final.Counters["cluster_reps_expected"]; folded != expected {
		t.Fatalf("hedging double-folded: folded %d reps, expected %d", folded, expected)
	}

	coord.sigterm(t)
	fast.d.sigterm(t)
	slow.d.sigterm(t)
}
