// Command bench runs the figure-class simulator benchmarks outside `go
// test` and writes a machine-readable BENCH_sim.json, so the performance
// trajectory of the engine (ns/op, allocs/op, simulated slots per second)
// can be tracked across changes.
//
//	bench -out BENCH_sim.json                     # measure current tree
//	bench -baseline old.json -out BENCH_sim.json  # also embed before/after speedups
//	bench -quick                                  # smoke-sized (CI)
//	bench -quick -gate BENCH_sim.json             # fail on >10% slots/s regression
//	bench -pprof bench                            # bench.cpu.pprof + bench.mem.pprof
//
// With -baseline, each benchmark that also appears in the baseline file
// reports the baseline's slots/sec as "before" alongside the fresh
// measurement, plus the resulting speedup factor.
//
// The file schema is prioritystar-bench/v2: v2 adds per-measurement mode
// ("sequential" or "batched"), replication counts, and aggregate slots per
// second for batched multi-replication workloads. v1 files (no batched
// series) are still accepted by -baseline and -gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"

	"prioritystar"
)

// workload is one benchmark: a topology and operating point, simulated for
// a fixed number of slots per iteration. Reps > 0 marks a batched workload:
// each iteration runs Reps replications through one SimulateBatch call.
type workload struct {
	Name string
	Dims []int
	Rho  float64
	Frac float64 // fraction of transmission load from broadcasts
	Mean float64 // packet length mean (1 = unit lengths)
	Reps int     // 0 = one sequential replication per iteration

	Warmup, Measure, Drain int64
}

func (w workload) slots() int64 { return w.Warmup + w.Measure + w.Drain }

// reps returns the replications per iteration (1 for sequential workloads).
func (w workload) reps() int {
	if w.Reps > 0 {
		return w.Reps
	}
	return 1
}

// workloads mirrors the figure benchmarks of bench_test.go, plus the
// low-rho operating points (rho <= 0.5) where the event-driven engine's
// advantage over a full link scan is largest — the regime the paper's
// delay analysis targets — plus the engine-batched/* series measuring the
// batched multi-replication path at the standard 8x8 workloads.
func workloads(quick bool, mode string) []workload {
	scale := int64(1)
	if quick {
		scale = 4
	}
	mk := func(name string, dims []int, rho, frac float64, warm, meas, drain int64) workload {
		return workload{Name: name, Dims: dims, Rho: rho, Frac: frac, Mean: 1,
			Warmup: warm / scale, Measure: meas / scale, Drain: drain / scale}
	}
	mkBatch := func(name string, dims []int, rho float64, reps int, meas int64) workload {
		w := mk(name, dims, rho, 1, 0, meas, 0)
		w.Reps = reps
		return w
	}
	seq := []workload{
		mk("engine/8x8/rho0.2", []int{8, 8}, 0.2, 1, 0, 2000, 0),
		mk("engine/8x8/rho0.9", []int{8, 8}, 0.9, 1, 0, 2000, 0),
		mk("fig2/reception/8x8/rho0.3", []int{8, 8}, 0.3, 1, 600, 2500, 1200),
		mk("fig2/reception/8x8/rho0.8", []int{8, 8}, 0.8, 1, 600, 2500, 1200),
		mk("fig3/reception/16x16/rho0.1", []int{16, 16}, 0.1, 1, 600, 2500, 1200),
		mk("fig3/reception/16x16/rho0.3", []int{16, 16}, 0.3, 1, 600, 2500, 1200),
		mk("fig4/reception/8x8x8/rho0.2", []int{8, 8, 8}, 0.2, 1, 300, 1200, 600),
		mk("fig4/reception/8x8x8/rho0.5", []int{8, 8, 8}, 0.5, 1, 300, 1200, 600),
		mk("fig8/hetero/4x4x8/rho0.5", []int{4, 4, 8}, 0.5, 0.5, 600, 2500, 1200),
		mk("hypercube8/rho0.5", []int{2, 2, 2, 2, 2, 2, 2, 2}, 0.5, 1, 300, 1200, 600),
	}
	batched := []workload{
		mkBatch("engine-batched/8x8/rho0.2", []int{8, 8}, 0.2, 8, 2000),
		mkBatch("engine-batched/8x8/rho0.9", []int{8, 8}, 0.9, 8, 2000),
		mkBatch("engine-batched/16x16/rho0.3", []int{16, 16}, 0.3, 8, 2000),
	}
	switch mode {
	case "sequential":
		return seq
	case "batched":
		return batched
	default:
		return append(seq, batched...)
	}
}

// Measurement is one benchmark's recorded numbers.
type Measurement struct {
	Name         string  `json:"name"`
	Mode         string  `json:"mode,omitempty"` // "sequential" | "batched" (v2)
	Reps         int     `json:"reps,omitempty"` // replications per iteration (v2)
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	SlotsPerSec  float64 `json:"slots_per_sec"`
	SlotsPerIter int64   `json:"slots_per_iter"`
	// AggregateSlotsPerSec is total simulated slots per wall-clock second
	// summed over every replication an iteration advances: for a batched
	// workload this is Reps * slots / time, the sweep-facing throughput;
	// for a sequential one it equals SlotsPerSec. (v2)
	AggregateSlotsPerSec float64 `json:"aggregate_slots_per_sec,omitempty"`

	// Before/after comparison, present only when -baseline matched.
	BaselineSlotsPerSec float64 `json:"baseline_slots_per_sec,omitempty"`
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsPerOp int64   `json:"baseline_allocs_per_op,omitempty"`
	Speedup             float64 `json:"speedup,omitempty"`

	// Probe-attached variant, present only with -probe: the same workload
	// measured with the standard observability bundle attached, and the
	// fractional slowdown it causes ((plain - probed) / plain).
	ProbeSlotsPerSec float64 `json:"probe_slots_per_sec,omitempty"`
	ProbeOverhead    float64 `json:"probe_overhead,omitempty"`
}

// File is the BENCH_sim.json document.
type File struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Quick      bool          `json:"quick,omitempty"`
	Benchmarks []Measurement `json:"benchmarks"`
}

// schemaV1 and schemaV2 are the accepted file schemas; v2 is written.
const (
	schemaV1 = "prioritystar-bench/v1"
	schemaV2 = "prioritystar-bench/v2"
)

// loadFile reads and validates a bench JSON document, accepting both the
// current v2 schema and legacy v1 files.
func loadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	if f.Schema != schemaV1 && f.Schema != schemaV2 {
		return nil, fmt.Errorf("%s: unknown schema %q (want %s or %s)", path, f.Schema, schemaV1, schemaV2)
	}
	return &f, nil
}

func run(w workload, probe bool) (Measurement, error) {
	shape, err := prioritystar.NewTorus(w.Dims...)
	if err != nil {
		return Measurement{}, err
	}
	rates, err := prioritystar.RatesForRho(shape, w.Rho, w.Frac, w.Mean, prioritystar.ExactDistance)
	if err != nil {
		return Measurement{}, err
	}
	scheme, err := prioritystar.PrioritySTAR(shape, rates, prioritystar.ExactDistance)
	if err != nil {
		return Measurement{}, err
	}
	base := prioritystar.SimConfig{
		Shape: shape, Scheme: scheme, Rates: rates,
		Warmup: w.Warmup, Measure: w.Measure, Drain: w.Drain,
	}
	// br persists across testing.Benchmark's sizing rounds so the measured
	// (final) round runs on warm engines — the same steady state the
	// sequential path gets from the package-level runner pool.
	var br prioritystar.SimBatchRunner
	measure := func(attach bool) (testing.BenchmarkResult, error) {
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			if w.Reps > 0 {
				// Batched: each iteration advances Reps replications
				// through one SimulateBatch call, reusing the runner's
				// engines across iterations like a sweep worker would.
				seeds := make([]uint64, w.Reps)
				for i := 0; i < b.N; i++ {
					for r := range seeds {
						seeds[r] = uint64(i*w.Reps+r) + 1
					}
					out, err := br.Run(prioritystar.SimBatch{Base: base, Seeds: seeds})
					if err != nil {
						benchErr = err
						b.FailNow()
					}
					for _, rr := range out {
						if rr.Err != nil {
							benchErr = rr.Err
							b.FailNow()
						}
					}
				}
				return
			}
			for i := 0; i < b.N; i++ {
				cfg := base
				cfg.Seed = uint64(i + 1)
				if attach {
					cfg.Probe = prioritystar.NewStandardProbes(shape, w.Warmup, w.Measure)
				}
				if _, err := prioritystar.Simulate(cfg); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		return r, benchErr
	}
	r, err := measure(false)
	if err != nil {
		return Measurement{}, err
	}
	aggSlots := float64(w.slots()) * float64(w.reps())
	m := Measurement{
		Name:                 w.Name,
		Mode:                 "sequential",
		Reps:                 w.reps(),
		Iterations:           r.N,
		NsPerOp:              float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:           r.AllocedBytesPerOp(),
		AllocsPerOp:          r.AllocsPerOp(),
		SlotsPerSec:          float64(w.slots()) * float64(r.N) / r.T.Seconds(),
		SlotsPerIter:         w.slots(),
		AggregateSlotsPerSec: aggSlots * float64(r.N) / r.T.Seconds(),
	}
	if w.Reps > 0 {
		m.Mode = "batched"
		// For a batched workload the headline slots/s is the aggregate:
		// total simulated slots across all replications per wall second.
		m.SlotsPerSec = m.AggregateSlotsPerSec
		m.SlotsPerIter = w.slots() * int64(w.Reps)
	}
	if probe && w.Reps == 0 {
		pr, err := measure(true)
		if err != nil {
			return Measurement{}, err
		}
		m.ProbeSlotsPerSec = float64(w.slots()) * float64(pr.N) / pr.T.Seconds()
		m.ProbeOverhead = (m.SlotsPerSec - m.ProbeSlotsPerSec) / m.SlotsPerSec
	}
	return m, nil
}

// gateCheck compares fresh measurements against the committed floor file:
// any workload present in both whose fresh slots/s fall more than tol below
// the committed number is a regression.
func gateCheck(fresh []Measurement, committed *File, tol float64) []string {
	floor := make(map[string]Measurement, len(committed.Benchmarks))
	for _, m := range committed.Benchmarks {
		floor[m.Name] = m
	}
	var failures []string
	for _, m := range fresh {
		c, ok := floor[m.Name]
		if !ok || c.SlotsPerSec <= 0 {
			continue
		}
		if m.SlotsPerSec < (1-tol)*c.SlotsPerSec {
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f slots/s is %.1f%% below committed %.0f (tolerance %.0f%%)",
				m.Name, m.SlotsPerSec, 100*(1-m.SlotsPerSec/c.SlotsPerSec), c.SlotsPerSec, 100*tol))
		}
	}
	return failures
}

func main() {
	out := flag.String("out", "BENCH_sim.json", "output JSON path ('-' for stdout)")
	baseline := flag.String("baseline", "", "previous BENCH_sim.json to embed as the 'before' numbers")
	quick := flag.Bool("quick", false, "smoke-sized workloads (4x fewer slots)")
	probe := flag.Bool("probe", false, "also measure each workload with the standard probe bundle attached")
	mode := flag.String("mode", "both", "which series to run: sequential, batched, or both")
	gate := flag.String("gate", "", "committed BENCH_sim.json to regression-gate against (exit 1 on regression; skips -out)")
	gateTol := flag.Float64("gate-tol", 0.10, "fractional slots/s regression tolerated by -gate")
	pprofOut := flag.String("pprof", "", "profile prefix: writes PREFIX.cpu.pprof and PREFIX.mem.pprof")
	flag.Parse()

	switch *mode {
	case "sequential", "batched", "both":
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown -mode %q (want sequential, batched, or both)\n", *mode)
		os.Exit(2)
	}

	var before map[string]Measurement
	if *baseline != "" {
		f, err := loadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		before = make(map[string]Measurement, len(f.Benchmarks))
		for _, m := range f.Benchmarks {
			before[m.Name] = m
		}
	}
	var gateFloor *File
	if *gate != "" {
		f, err := loadFile(*gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		gateFloor = f
	}

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut + ".cpu.pprof")
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			mf, err := os.Create(*pprofOut + ".mem.pprof")
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				return
			}
			defer mf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
			}
		}()
	}

	file := File{
		Schema:    schemaV2,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Quick:     *quick,
	}
	for _, w := range workloads(*quick, *mode) {
		m, err := run(w, *probe)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", w.Name, err)
			os.Exit(1)
		}
		if b, ok := before[m.Name]; ok && b.SlotsPerSec > 0 {
			m.BaselineSlotsPerSec = b.SlotsPerSec
			m.BaselineNsPerOp = b.NsPerOp
			m.BaselineAllocsPerOp = b.AllocsPerOp
			m.Speedup = m.SlotsPerSec / b.SlotsPerSec
		}
		file.Benchmarks = append(file.Benchmarks, m)
		switch {
		case m.Speedup > 0:
			fmt.Printf("%-32s %12.0f slots/s  %8d allocs/op  (%.2fx vs baseline)\n",
				m.Name, m.SlotsPerSec, m.AllocsPerOp, m.Speedup)
		case m.ProbeSlotsPerSec > 0:
			fmt.Printf("%-32s %12.0f slots/s  %8d allocs/op  (probed %.0f slots/s, %+.1f%% overhead)\n",
				m.Name, m.SlotsPerSec, m.AllocsPerOp, m.ProbeSlotsPerSec, 100*m.ProbeOverhead)
		default:
			fmt.Printf("%-32s %12.0f slots/s  %8d allocs/op\n", m.Name, m.SlotsPerSec, m.AllocsPerOp)
		}
	}

	if gateFloor != nil {
		failures := gateCheck(file.Benchmarks, gateFloor, *gateTol)
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "bench: REGRESSION:", f)
			}
			os.Exit(1)
		}
		fmt.Printf("bench: gate passed (%d workloads within %.0f%% of %s)\n",
			len(file.Benchmarks), 100**gateTol, *gate)
		return
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
