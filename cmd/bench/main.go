// Command bench runs the figure-class simulator benchmarks outside `go
// test` and writes a machine-readable BENCH_sim.json, so the performance
// trajectory of the engine (ns/op, allocs/op, simulated slots per second)
// can be tracked across changes.
//
//	bench -out BENCH_sim.json                     # measure current tree
//	bench -baseline old.json -out BENCH_sim.json  # also embed before/after speedups
//	bench -quick                                  # smoke-sized (CI)
//
// With -baseline, each benchmark that also appears in the baseline file
// reports the baseline's slots/sec as "before" alongside the fresh
// measurement, plus the resulting speedup factor.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"prioritystar"
)

// workload is one benchmark: a topology and operating point, simulated for
// a fixed number of slots per iteration.
type workload struct {
	Name string
	Dims []int
	Rho  float64
	Frac float64 // fraction of transmission load from broadcasts
	Mean float64 // packet length mean (1 = unit lengths)

	Warmup, Measure, Drain int64
}

func (w workload) slots() int64 { return w.Warmup + w.Measure + w.Drain }

// workloads mirrors the figure benchmarks of bench_test.go, plus the
// low-rho operating points (rho <= 0.5) where the event-driven engine's
// advantage over a full link scan is largest — the regime the paper's
// delay analysis targets.
func workloads(quick bool) []workload {
	scale := int64(1)
	if quick {
		scale = 4
	}
	mk := func(name string, dims []int, rho, frac float64, warm, meas, drain int64) workload {
		return workload{Name: name, Dims: dims, Rho: rho, Frac: frac, Mean: 1,
			Warmup: warm / scale, Measure: meas / scale, Drain: drain / scale}
	}
	return []workload{
		mk("engine/8x8/rho0.2", []int{8, 8}, 0.2, 1, 0, 2000, 0),
		mk("engine/8x8/rho0.9", []int{8, 8}, 0.9, 1, 0, 2000, 0),
		mk("fig2/reception/8x8/rho0.3", []int{8, 8}, 0.3, 1, 600, 2500, 1200),
		mk("fig2/reception/8x8/rho0.8", []int{8, 8}, 0.8, 1, 600, 2500, 1200),
		mk("fig3/reception/16x16/rho0.1", []int{16, 16}, 0.1, 1, 600, 2500, 1200),
		mk("fig3/reception/16x16/rho0.3", []int{16, 16}, 0.3, 1, 600, 2500, 1200),
		mk("fig4/reception/8x8x8/rho0.2", []int{8, 8, 8}, 0.2, 1, 300, 1200, 600),
		mk("fig4/reception/8x8x8/rho0.5", []int{8, 8, 8}, 0.5, 1, 300, 1200, 600),
		mk("fig8/hetero/4x4x8/rho0.5", []int{4, 4, 8}, 0.5, 0.5, 600, 2500, 1200),
		mk("hypercube8/rho0.5", []int{2, 2, 2, 2, 2, 2, 2, 2}, 0.5, 1, 300, 1200, 600),
	}
}

// Measurement is one benchmark's recorded numbers.
type Measurement struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	SlotsPerSec  float64 `json:"slots_per_sec"`
	SlotsPerIter int64   `json:"slots_per_iter"`

	// Before/after comparison, present only when -baseline matched.
	BaselineSlotsPerSec float64 `json:"baseline_slots_per_sec,omitempty"`
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsPerOp int64   `json:"baseline_allocs_per_op,omitempty"`
	Speedup             float64 `json:"speedup,omitempty"`

	// Probe-attached variant, present only with -probe: the same workload
	// measured with the standard observability bundle attached, and the
	// fractional slowdown it causes ((plain - probed) / plain).
	ProbeSlotsPerSec float64 `json:"probe_slots_per_sec,omitempty"`
	ProbeOverhead    float64 `json:"probe_overhead,omitempty"`
}

// File is the BENCH_sim.json document.
type File struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Quick      bool          `json:"quick,omitempty"`
	Benchmarks []Measurement `json:"benchmarks"`
}

func run(w workload, probe bool) (Measurement, error) {
	shape, err := prioritystar.NewTorus(w.Dims...)
	if err != nil {
		return Measurement{}, err
	}
	rates, err := prioritystar.RatesForRho(shape, w.Rho, w.Frac, w.Mean, prioritystar.ExactDistance)
	if err != nil {
		return Measurement{}, err
	}
	scheme, err := prioritystar.PrioritySTAR(shape, rates, prioritystar.ExactDistance)
	if err != nil {
		return Measurement{}, err
	}
	measure := func(attach bool) (testing.BenchmarkResult, error) {
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var p prioritystar.Probe
				if attach {
					p = prioritystar.NewStandardProbes(shape, w.Warmup, w.Measure)
				}
				if _, err := prioritystar.Simulate(prioritystar.SimConfig{
					Shape: shape, Scheme: scheme, Rates: rates, Seed: uint64(i + 1),
					Warmup: w.Warmup, Measure: w.Measure, Drain: w.Drain,
					Probe: p,
				}); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		return r, benchErr
	}
	r, err := measure(false)
	if err != nil {
		return Measurement{}, err
	}
	m := Measurement{
		Name:         w.Name,
		Iterations:   r.N,
		NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:   r.AllocedBytesPerOp(),
		AllocsPerOp:  r.AllocsPerOp(),
		SlotsPerSec:  float64(w.slots()) * float64(r.N) / r.T.Seconds(),
		SlotsPerIter: w.slots(),
	}
	if probe {
		pr, err := measure(true)
		if err != nil {
			return Measurement{}, err
		}
		m.ProbeSlotsPerSec = float64(w.slots()) * float64(pr.N) / pr.T.Seconds()
		m.ProbeOverhead = (m.SlotsPerSec - m.ProbeSlotsPerSec) / m.SlotsPerSec
	}
	return m, nil
}

func main() {
	out := flag.String("out", "BENCH_sim.json", "output JSON path ('-' for stdout)")
	baseline := flag.String("baseline", "", "previous BENCH_sim.json to embed as the 'before' numbers")
	quick := flag.Bool("quick", false, "smoke-sized workloads (4x fewer slots)")
	probe := flag.Bool("probe", false, "also measure each workload with the standard probe bundle attached")
	flag.Parse()

	var before map[string]Measurement
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		var f File
		if err := json.Unmarshal(data, &f); err != nil {
			fmt.Fprintf(os.Stderr, "bench: parsing %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		before = make(map[string]Measurement, len(f.Benchmarks))
		for _, m := range f.Benchmarks {
			before[m.Name] = m
		}
	}

	file := File{
		Schema:    "prioritystar-bench/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Quick:     *quick,
	}
	for _, w := range workloads(*quick) {
		m, err := run(w, *probe)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", w.Name, err)
			os.Exit(1)
		}
		if b, ok := before[m.Name]; ok && b.SlotsPerSec > 0 {
			m.BaselineSlotsPerSec = b.SlotsPerSec
			m.BaselineNsPerOp = b.NsPerOp
			m.BaselineAllocsPerOp = b.AllocsPerOp
			m.Speedup = m.SlotsPerSec / b.SlotsPerSec
		}
		file.Benchmarks = append(file.Benchmarks, m)
		switch {
		case m.Speedup > 0:
			fmt.Printf("%-32s %12.0f slots/s  %8d allocs/op  (%.2fx vs baseline)\n",
				m.Name, m.SlotsPerSec, m.AllocsPerOp, m.Speedup)
		case m.ProbeSlotsPerSec > 0:
			fmt.Printf("%-32s %12.0f slots/s  %8d allocs/op  (probed %.0f slots/s, %+.1f%% overhead)\n",
				m.Name, m.SlotsPerSec, m.AllocsPerOp, m.ProbeSlotsPerSec, 100*m.ProbeOverhead)
		default:
			fmt.Printf("%-32s %12.0f slots/s  %8d allocs/op\n", m.Name, m.SlotsPerSec, m.AllocsPerOp)
		}
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
