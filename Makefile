GO ?= go

.PHONY: all help build vet test race bench bench-json cover figures figures-quick report examples clean

all: build vet test race

help:
	@echo "Targets:"
	@echo "  all           build + vet + test + race (the full gate)"
	@echo "  build         go build ./..."
	@echo "  vet           go vet ./..."
	@echo "  test          go test ./..."
	@echo "  race          race detector over the shared-state packages"
	@echo "  bench         go test -bench over every figure benchmark"
	@echo "  bench-json    engine benchmarks -> BENCH_sim.json"
	@echo "                (make bench-json BENCH_BASELINE=old.json for speedups)"
	@echo "  cover         go test -cover ./..."
	@echo "  figures       regenerate every paper figure into results/"
	@echo "  figures-quick smoke-sized figures"
	@echo "  report        reproduction report"
	@echo "  examples      run every example program"
	@echo "  clean         remove generated outputs"

# The race detector over the packages with shared state (parallel sweeps,
# lazy per-shape link tables, pooled runners).
race:
	$(GO) test -race ./internal/sim ./internal/queue ./internal/torus ./internal/sweep

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Per-figure benchmark harness (also reports the reproduced metrics).
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable engine benchmarks -> BENCH_sim.json. To embed before/after
# speedups, measure the old tree first and pass it as the baseline:
#   make bench-json BENCH_BASELINE=old.json
BENCH_BASELINE ?=
bench-json:
	$(GO) run ./cmd/bench -out BENCH_sim.json \
		$(if $(BENCH_BASELINE),-baseline $(BENCH_BASELINE))

cover:
	$(GO) test -cover ./...

# Regenerate every paper figure (tables + ASCII charts + CSV under results/).
figures:
	$(GO) run ./cmd/figures -scale standard -out results

figures-quick:
	$(GO) run ./cmd/figures -scale quick

report:
	$(GO) run ./cmd/report

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/treeviz
	$(GO) run ./examples/hetero
	$(GO) run ./examples/hypercube
	$(GO) run ./examples/varlen
	$(GO) run ./examples/deadlock
	$(GO) run ./examples/staticcomm
	$(GO) run ./examples/delaybudget

clean:
	rm -rf results test_output.txt bench_output.txt
