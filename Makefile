GO ?= go

.PHONY: all build vet test bench cover figures figures-quick report examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Per-figure benchmark harness (also reports the reproduced metrics).
bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./...

# Regenerate every paper figure (tables + ASCII charts + CSV under results/).
figures:
	$(GO) run ./cmd/figures -scale standard -out results

figures-quick:
	$(GO) run ./cmd/figures -scale quick

report:
	$(GO) run ./cmd/report

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/treeviz
	$(GO) run ./examples/hetero
	$(GO) run ./examples/hypercube
	$(GO) run ./examples/varlen
	$(GO) run ./examples/deadlock
	$(GO) run ./examples/staticcomm
	$(GO) run ./examples/delaybudget

clean:
	rm -rf results test_output.txt bench_output.txt
