GO ?= go

.PHONY: all help check build vet test race chaos chaos-cluster chaos-net lint smoke-faults smoke-serve smoke-approx load load-smoke load-gate fuzz bench bench-json bench-gate cover figures figures-quick report examples clean

all: build vet test race

# The tier-1 gate: exactly what CI must keep green, plus a faulted smoke
# sweep proving the robustness path stays wired end to end, a daemon smoke
# proving submit/cache/drain work over a real socket, the chaos suite
# proving crash recovery (SIGKILL + torn journals) under the race detector,
# and the service-level load smoke (200 concurrent clients against a live
# daemon, also under -race). BENCH_GATE=1 additionally reruns the short
# engine bench and fails on a slots/s regression against the committed
# BENCH_sim.json; LOAD_GATE=1 does the same for service latency/throughput
# against BENCH_serve.json (both off by default so the gate never flakes a
# loaded box).
check: vet build test smoke-faults smoke-serve smoke-approx chaos chaos-cluster chaos-net load-smoke
ifneq ($(BENCH_GATE),)
check: bench-gate
endif
ifneq ($(LOAD_GATE),)
check: load-gate
endif

help:
	@echo "Targets:"
	@echo "  all           build + vet + test + race (the full gate)"
	@echo "  check         vet + build + test (the tier-1 CI gate)"
	@echo "  build         go build ./..."
	@echo "  vet           go vet ./..."
	@echo "  test          go test ./..."
	@echo "  race          race detector over the shared-state packages"
	@echo "  chaos         crash-recovery suite under -race: WAL replay, torn"
	@echo "                journals, quarantine, client retries, SIGKILL+restart"
	@echo "  chaos-cluster fleet chaos under -race: scatter/gather byte-identity,"
	@echo "                lease expiry, worker+coordinator SIGKILL mid-sweep"
	@echo "  chaos-net     network chaos under -race: partitions, one-way drops,"
	@echo "                truncation, breakers, hedging, local degradation"
	@echo "  lint          go vet + staticcheck (skipped gracefully if absent)"
	@echo "  smoke-faults  watchdogged 4x4 sweep with injected faults"
	@echo "  smoke-serve   starsimd daemon round trip: submit, cache hit, drain"
	@echo "  smoke-approx  surrogate round trip: exact anchor sweep, then an"
	@echo "                approx submit answered without simulating"
	@echo "  load          psload: 200-client mixed workload against an"
	@echo "                in-process daemon -> append to BENCH_serve.json"
	@echo "  load-smoke    5s, 200-client load acceptance run under -race:"
	@echo "                scenarios, counter cross-checks, non-zero quantiles"
	@echo "  load-gate     psload vs committed BENCH_serve.json; fails on a"
	@echo "                p95/p99/throughput regression (LOAD_GATE=1 wires"
	@echo "                it into 'check')"
	@echo "  fuzz          fuzz the FIFO ring buffer, the trace reader, the"
	@echo "                latency sketch codec, the BENCH_serve reader, and"
	@echo "                the fleet wire protocol (FUZZTIME=30s to change)"
	@echo "  bench         go test -bench over every figure benchmark"
	@echo "  bench-json    engine benchmarks -> BENCH_sim.json"
	@echo "                (make bench-json BENCH_BASELINE=old.json for speedups)"
	@echo "  bench-gate    short bench vs committed BENCH_sim.json; fails on"
	@echo "                regression (BENCH_GATE=1 wires it into 'check')"
	@echo "  cover         go test -cover ./..."
	@echo "  figures       regenerate every paper figure into results/"
	@echo "  figures-quick smoke-sized figures"
	@echo "  report        reproduction report"
	@echo "  examples      run every example program"
	@echo "  clean         remove generated outputs"

# The race detector over the packages with shared state (parallel sweeps,
# lazy per-shape link tables, pooled runners, fault timelines, the daemon's
# worker pool, cache, and journals).
race:
	$(GO) test -race ./internal/sim ./internal/queue ./internal/torus ./internal/sweep ./internal/obs ./internal/fault ./internal/serve ./internal/journal ./internal/loadgen ./internal/cluster ./internal/chaosnet ./internal/surrogate ./internal/forecast

# The chaos harness under the race detector: lenient journal loading, WAL
# replay and quarantine, client retry/backoff, and the subprocess suite
# that SIGKILLs a real daemon mid-job, tears its journals, and restarts it.
chaos:
	$(GO) test -race -run 'Chaos|Crash|Torn|Quarantine|Recovery|Retry|Lenient|WAL|Poison|SetSync|Cache|Race' \
		./internal/journal ./internal/serve ./cmd/starsimd

# The fleet chaos harness under the race detector: the in-process fabric
# suite (byte-identical scatter/gather, lease expiry + duplicate discard,
# hung-worker re-dispatch, lease adoption) plus the subprocess suite that
# SIGKILLs workers and the coordinator mid-sweep, tears the lease journal,
# and requires zero re-simulated checkpointed replications and a final
# result byte-identical to a single-node run.
chaos-cluster:
	$(GO) test -race ./internal/cluster
	$(GO) test -race -run 'ClusterChaos' ./cmd/starsimd

# The network chaos harness under the race detector: the chaosnet fault
# transport and proxy themselves, the in-process chaos matrix (partition
# storm -> local degradation, truncated/corrupt responses retried not
# folded, hedged dispatch discarding its loser, jittered rejoin backoff),
# the loadgen partition-storm scenario, and the subprocess suite that cuts
# real coordinator->worker links mid-sweep and requires a byte-identical
# result with zero re-simulated checkpointed replications.
chaos-net:
	$(GO) test -race ./internal/chaosnet
	$(GO) test -race -run 'PartitionStorm|Truncated|CorruptResponse|OneWayPartition|HedgedDispatch|Breaker|AgentJitter|SubjobTimeout|WireDecode' ./internal/cluster
	$(GO) test -race -run 'TestLoadPartitionStorm' -count=1 ./internal/loadgen
	$(GO) test -race -run 'TestChaosNet' ./cmd/starsimd

# Static analysis: vet always; staticcheck only when installed (the build
# image does not ship it — skip with a note rather than fail).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi

# Smoke test of the robustness stack: a faulted, watchdogged 4x4 sweep with
# a checkpoint journal, resumed once to prove replay works. starsim exits 3
# when the watchdog truncated replications — partial data is fine here, the
# smoke only guards against hard failures (exit 1).
smoke-faults:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/starsim ./cmd/starsim || exit 1; \
	$$tmp/starsim -shape 4x4 -sweep 0.3,0.8 -reps 1 \
		-warmup 200 -measure 1000 -drain 500 \
		-faults perm:1,trans:800/40,seed:7 -watchdog -timeout 60s \
		-checkpoint $$tmp/smoke.jsonl >/dev/null; rc=$$?; \
	[ $$rc -eq 0 ] || [ $$rc -eq 3 ] || exit 1; \
	$$tmp/starsim -shape 4x4 -sweep 0.3,0.8 -reps 1 \
		-warmup 200 -measure 1000 -drain 500 \
		-faults perm:1,trans:800/40,seed:7 -watchdog -timeout 60s \
		-checkpoint $$tmp/smoke.jsonl -resume >/dev/null; rc=$$?; \
	[ $$rc -eq 0 ] || [ $$rc -eq 3 ] || exit 1; \
	rm -rf $$tmp; echo "smoke-faults: ok"

# Smoke test of the service layer: boot starsimd on a free port, submit a
# tiny sweep with psctl and watch it finish, resubmit the identical spec and
# require a cache hit, then SIGTERM and require a clean drain.
smoke-serve:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/ ./cmd/starsimd ./cmd/psctl || exit 1; \
	$$tmp/starsimd -addr 127.0.0.1:0 -addr-file $$tmp/addr \
		-cache $$tmp/cache.jsonl 2>$$tmp/daemon.log & \
	pid=$$!; \
	i=0; while [ ! -s $$tmp/addr ] && [ $$i -lt 100 ]; do sleep 0.1; i=$$((i+1)); done; \
	[ -s $$tmp/addr ] || { cat $$tmp/daemon.log; kill $$pid 2>/dev/null; exit 1; }; \
	addr=$$(cat $$tmp/addr); \
	$$tmp/psctl -addr $$addr submit -shape 4x4 -rho 0.2 -reps 1 \
		-warmup 100 -measure 400 -drain 100 -watch >/dev/null 2>&1 \
		|| { cat $$tmp/daemon.log; kill $$pid 2>/dev/null; exit 1; }; \
	$$tmp/psctl -addr $$addr submit -shape 4x4 -rho 0.2 -reps 1 \
		-warmup 100 -measure 400 -drain 100 2>/dev/null \
		| grep -q '"cached": true' \
		|| { echo "smoke-serve: resubmission was not served from cache"; \
		     kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid; wait $$pid \
		|| { echo "smoke-serve: daemon did not drain cleanly"; exit 1; }; \
	rm -rf $$tmp; echo "smoke-serve: ok"

# Smoke test of the surrogate fast path over a real socket: anchor a family
# with an exact two-rho sweep, then submit an approx query between the
# anchors and require a surrogate answer — terminal immediately, marked
# approx, with the anchor interval recorded in the result document.
smoke-approx:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/ ./cmd/starsimd ./cmd/psctl || exit 1; \
	$$tmp/starsimd -addr 127.0.0.1:0 -addr-file $$tmp/addr \
		-cache $$tmp/cache.jsonl 2>$$tmp/daemon.log & \
	pid=$$!; \
	i=0; while [ ! -s $$tmp/addr ] && [ $$i -lt 100 ]; do sleep 0.1; i=$$((i+1)); done; \
	[ -s $$tmp/addr ] || { cat $$tmp/daemon.log; kill $$pid 2>/dev/null; exit 1; }; \
	addr=$$(cat $$tmp/addr); \
	$$tmp/psctl -addr $$addr submit -shape 4x4 -sweep 0.2,0.4 -reps 1 \
		-warmup 100 -measure 400 -drain 100 -watch >/dev/null 2>&1 \
		|| { cat $$tmp/daemon.log; kill $$pid 2>/dev/null; exit 1; }; \
	$$tmp/psctl -addr $$addr submit -shape 4x4 -rho 0.3 -reps 1 \
		-warmup 100 -measure 400 -drain 100 -approx -approx-tol 2 2>/dev/null \
		| grep -q '"approx": true' \
		|| { echo "smoke-approx: approx submit was not surrogate-answered"; \
		     cat $$tmp/daemon.log; kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid; wait $$pid \
		|| { echo "smoke-approx: daemon did not drain cleanly"; exit 1; }; \
	rm -rf $$tmp; echo "smoke-approx: ok"

# Coverage-guided fuzzing of the queue's power-of-two ring arithmetic and the
# binary trace decoder; the seeded corpora also run on every plain `go test`
# (tier-1).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz FuzzFIFO -fuzztime $(FUZZTIME) ./internal/queue
	$(GO) test -fuzz FuzzTraceReader -fuzztime $(FUZZTIME) ./internal/obs
	$(GO) test -fuzz FuzzSketchDecode -fuzztime $(FUZZTIME) ./internal/loadgen
	$(GO) test -fuzz FuzzTrajectoryReader -fuzztime $(FUZZTIME) ./internal/loadgen
	$(GO) test -fuzz FuzzSurrogateTable -fuzztime $(FUZZTIME) ./internal/surrogate
	$(GO) test -fuzz FuzzWireDecode -fuzztime $(FUZZTIME) ./internal/cluster

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Per-figure benchmark harness (also reports the reproduced metrics).
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable engine benchmarks -> BENCH_sim.json. To embed before/after
# speedups, measure the old tree first and pass it as the baseline:
#   make bench-json BENCH_BASELINE=old.json
BENCH_BASELINE ?=
bench-json:
	$(GO) run ./cmd/bench -out BENCH_sim.json \
		$(if $(BENCH_BASELINE),-baseline $(BENCH_BASELINE))

# Perf regression gate: rerun the short bench and fail if any workload's
# slots/s fall more than BENCH_GATE_TOL below the committed BENCH_sim.json.
# Quick-sized runs amortize per-run setup over 4x fewer slots and share the
# box with whatever else is running, so the default tolerance is looser than
# the full-size 10% bar; run `bench -gate BENCH_sim.json` (full size) for a
# tight check on a quiet machine. Opt into `make check` with BENCH_GATE=1.
BENCH_GATE_TOL ?= 0.25
bench-gate:
	$(GO) run ./cmd/bench -quick -gate BENCH_sim.json -gate-tol $(BENCH_GATE_TOL)

# Service-level load harness -> BENCH_serve.json: a 200-client fleet over
# the full mixed workload (cache hits, fresh misses, dedup storms, 429
# bursts, SSE watches) against a dedicated in-process daemon. Latencies are
# wall-clock sensitive, so records note go version/arch and whether -race
# was on; compare like with like.
load:
	$(GO) run ./cmd/psload -boot -clients 200 -duration 10s -mix mixed \
		-seed 1 -out BENCH_serve.json

# The 5-second load acceptance run wired into `check`: 200 concurrent
# clients under the race detector, with scenario assertions (hits, dedup,
# 429 pushback), exact client-vs-daemon counter reconciliation, and the
# gate self-test against a doctored 2x-faster baseline.
load-smoke:
	$(GO) test -race -run TestLoadSmoke -count=1 ./internal/loadgen

# Service perf regression gate: a fresh psload run vs the committed
# BENCH_serve.json trajectory. Latency quantiles on a shared box are noisy,
# so the default tolerance is loose; the throughput floor is the sturdier
# signal. Opt into `make check` with LOAD_GATE=1.
LOAD_GATE_TOL ?= 0.75
load-gate:
	$(GO) run ./cmd/psload -boot -clients 200 -duration 10s -mix mixed \
		-seed 1 -gate -gate-tol $(LOAD_GATE_TOL) -compare BENCH_serve.json

cover:
	$(GO) test -cover ./...

# Regenerate every paper figure (tables + ASCII charts + CSV under results/).
figures:
	$(GO) run ./cmd/figures -scale standard -out results

figures-quick:
	$(GO) run ./cmd/figures -scale quick

report:
	$(GO) run ./cmd/report

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/treeviz
	$(GO) run ./examples/hetero
	$(GO) run ./examples/hypercube
	$(GO) run ./examples/varlen
	$(GO) run ./examples/deadlock
	$(GO) run ./examples/staticcomm
	$(GO) run ./examples/delaybudget

clean:
	rm -rf results test_output.txt bench_output.txt
