package linsolve

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func matFromRows(rows [][]float64) *Matrix {
	m := NewMatrix(len(rows), len(rows[0]))
	for r, row := range rows {
		for c, v := range row {
			m.Set(r, c, v)
		}
	}
	return m
}

func TestSolveIdentity(t *testing.T) {
	m := matFromRows([][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}})
	b := []float64{3, -1, 7}
	x, err := Solve(m, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if x[i] != b[i] {
			t.Errorf("x[%d] = %g, want %g", i, x[i], b[i])
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 => x = 1, y = 3.
	m := matFromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(m, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	m := matFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(m, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	m := matFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(m, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("want ErrSingular, got %v", err)
	}
}

func TestSolveDimensionErrors(t *testing.T) {
	if _, err := Solve(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Error("non-square matrix should fail")
	}
	if _, err := Solve(NewMatrix(2, 2), []float64{1}); err == nil {
		t.Error("wrong rhs length should fail")
	}
}

func TestSolveLeavesInputsUntouched(t *testing.T) {
	m := matFromRows([][]float64{{4, 1}, {2, 3}})
	orig := m.Clone()
	b := []float64{1, 2}
	if _, err := Solve(m, b); err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		if m.Data[i] != orig.Data[i] {
			t.Fatal("Solve modified the matrix")
		}
	}
	if b[0] != 1 || b[1] != 2 {
		t.Fatal("Solve modified the rhs")
	}
}

func TestMulVec(t *testing.T) {
	m := matFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y, err := m.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("MulVec = %v", y)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestResidual(t *testing.T) {
	m := matFromRows([][]float64{{2, 0}, {0, 2}})
	r, err := Residual(m, []float64{1, 1}, []float64{2, 2})
	if err != nil || r != 0 {
		t.Errorf("residual = %g, err %v", r, err)
	}
	r, err = Residual(m, []float64{1, 1}, []float64{2, 3})
	if err != nil || r != 1 {
		t.Errorf("residual = %g, err %v, want 1", r, err)
	}
	if _, err := Residual(m, []float64{1}, []float64{2, 2}); err == nil {
		t.Error("bad x length should fail")
	}
	if _, err := Residual(m, []float64{1, 1}, []float64{2}); err == nil {
		t.Error("bad b length should fail")
	}
}

func TestAtSetClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(1, 0, 5)
	if m.At(1, 0) != 5 {
		t.Error("At/Set failed")
	}
	c := m.Clone()
	c.Set(1, 0, 9)
	if m.At(1, 0) != 5 {
		t.Error("Clone is shallow")
	}
}

// TestQuickRandomSystems verifies Solve on random well-conditioned systems
// by checking the residual.
func TestQuickRandomSystems(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 1 + rng.IntN(8)
		m := NewMatrix(n, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				m.Set(r, c, rng.Float64()*2-1)
			}
			// Diagonal dominance keeps the system well conditioned.
			m.Set(r, r, m.At(r, r)+float64(n)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		x, err := Solve(m, b)
		if err != nil {
			return false
		}
		res, err := Residual(m, x, b)
		return err == nil && res < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
