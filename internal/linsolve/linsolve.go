// Package linsolve provides a small dense linear-system solver used to
// compute the STAR ending-dimension probability vectors (paper Eq. 2 and
// Eq. 4). The systems are d x d where d is the torus dimensionality, so a
// straightforward Gaussian elimination with partial pivoting is both exact
// enough and fast.
package linsolve

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the coefficient matrix is (numerically)
// singular.
var ErrSingular = errors.New("linsolve: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[r*Cols+c]
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	n := NewMatrix(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// MulVec returns m * x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("linsolve: vector length %d != cols %d", len(x), m.Cols)
	}
	y := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		sum := 0.0
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, v := range row {
			sum += v * x[c]
		}
		y[r] = sum
	}
	return y, nil
}

// Solve solves the square system a*x = b by Gaussian elimination with
// partial pivoting. a and b are left unmodified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linsolve: matrix is %dx%d, need square", a.Rows, a.Cols)
	}
	n := a.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linsolve: rhs length %d != %d", len(b), n)
	}
	// Augmented working copy.
	m := a.Clone()
	rhs := make([]float64, n)
	copy(rhs, b)

	for col := 0; col < n; col++ {
		// Partial pivot: largest |value| in this column at or below the
		// diagonal.
		pivot := col
		maxAbs := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(m.At(r, col)); abs > maxAbs {
				maxAbs, pivot = abs, r
			}
		}
		if maxAbs < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(m, pivot, col)
			rhs[pivot], rhs[col] = rhs[col], rhs[pivot]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m.Set(r, c, m.At(r, c)-f*m.At(col, c))
			}
			rhs[r] -= f * rhs[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := rhs[r]
		for c := r + 1; c < n; c++ {
			sum -= m.At(r, c) * x[c]
		}
		x[r] = sum / m.At(r, r)
	}
	return x, nil
}

func swapRows(m *Matrix, r1, r2 int) {
	a := m.Data[r1*m.Cols : (r1+1)*m.Cols]
	b := m.Data[r2*m.Cols : (r2+1)*m.Cols]
	for i := range a {
		a[i], b[i] = b[i], a[i]
	}
}

// Residual returns the max-norm of a*x - b, a cheap a-posteriori check that
// callers use to validate solutions of the balance systems.
func Residual(a *Matrix, x, b []float64) (float64, error) {
	y, err := a.MulVec(x)
	if err != nil {
		return 0, err
	}
	if len(b) != len(y) {
		return 0, fmt.Errorf("linsolve: rhs length %d != rows %d", len(b), len(y))
	}
	max := 0.0
	for i := range y {
		if r := math.Abs(y[i] - b[i]); r > max {
			max = r
		}
	}
	return max, nil
}
