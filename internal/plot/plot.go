// Package plot renders small ASCII line charts so the figure-regeneration
// command can show the paper's curves directly in a terminal or a text
// file, alongside the numeric tables. Charts are deliberately simple:
// linear axes, one mark per series, nearest-cell rasterization.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a configurable ASCII chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot-area columns (default 56)
	Height int // plot-area rows (default 16)
	series []Series
	// YMax caps the vertical axis (0 = auto). Useful when saturated points
	// dwarf the interesting region.
	YMax float64
}

// marks are assigned to series in order.
var marks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Add appends a series; X and Y must have equal length. Non-finite values
// are skipped at render time.
func (c *Chart) Add(s Series) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
	}
	c.series = append(c.series, s)
	return nil
}

func (c *Chart) dims() (w, h int) {
	w, h = c.Width, c.Height
	if w <= 0 {
		w = 56
	}
	if h <= 0 {
		h = 16
	}
	return w, h
}

func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64, ok bool) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if !finite(x) || !finite(y) {
				continue
			}
			if c.YMax > 0 && y > c.YMax {
				y = c.YMax
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
			ok = true
		}
	}
	if !ok {
		return 0, 0, 0, 0, false
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Anchor the y axis near zero when the data starts low.
	if ymin > 0 && ymin < ymax/2 {
		ymin = 0
	}
	return xmin, xmax, ymin, ymax, true
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Render draws the chart as a multi-line string.
func (c *Chart) Render() string {
	w, h := c.dims()
	xmin, xmax, ymin, ymax, ok := c.bounds()
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if !ok {
		b.WriteString("  (no data)\n")
		return b.String()
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if !finite(x) || !finite(y) {
				continue
			}
			clipped := false
			if c.YMax > 0 && y > c.YMax {
				y, clipped = c.YMax, true
			}
			col := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
			row := h - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(h-1)))
			if col < 0 || col >= w || row < 0 || row >= h {
				continue
			}
			if clipped {
				grid[row][col] = '^'
			} else if grid[row][col] == ' ' || grid[row][col] == mark {
				grid[row][col] = mark
			} else {
				grid[row][col] = '!' // collision between series
			}
		}
	}

	yLab := c.YLabel
	if yLab != "" {
		fmt.Fprintf(&b, "  %s\n", yLab)
	}
	for r := 0; r < h; r++ {
		yVal := ymax - (ymax-ymin)*float64(r)/float64(h-1)
		fmt.Fprintf(&b, "%9.2f |%s\n", yVal, string(grid[r]))
	}
	fmt.Fprintf(&b, "%9s +%s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%9s  %-*.3g%*.3g\n", "", w/2, xmin, w-w/2, xmax)
	if c.XLabel != "" {
		fmt.Fprintf(&b, "%9s  %s\n", "", center(c.XLabel, w))
	}
	for si, s := range c.series {
		fmt.Fprintf(&b, "%9s  %c = %s\n", "", marks[si%len(marks)], s.Name)
	}
	return b.String()
}

func center(s string, w int) string {
	if len(s) >= w {
		return s
	}
	pad := (w - len(s)) / 2
	return strings.Repeat(" ", pad) + s
}
