package plot

import (
	"math"
	"strings"
	"testing"
)

func TestAddLengthMismatch(t *testing.T) {
	var c Chart
	if err := c.Add(Series{Name: "bad", X: []float64{1, 2}, Y: []float64{1}}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestRenderEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	out := c.Render()
	if !strings.Contains(out, "empty") || !strings.Contains(out, "no data") {
		t.Errorf("empty render = %q", out)
	}
}

func TestRenderAllNonFinite(t *testing.T) {
	var c Chart
	if err := c.Add(Series{Name: "nan", X: []float64{1}, Y: []float64{math.NaN()}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Render(), "no data") {
		t.Error("all-NaN series should render as no data")
	}
}

func TestRenderBasicShape(t *testing.T) {
	c := Chart{Title: "delay vs rho", XLabel: "rho", YLabel: "slots", Width: 40, Height: 10}
	if err := c.Add(Series{
		Name: "prio",
		X:    []float64{0.1, 0.5, 0.9},
		Y:    []float64{4, 5, 11},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(Series{
		Name: "fcfs",
		X:    []float64{0.1, 0.5, 0.9},
		Y:    []float64{4.2, 5.5, 16},
	}); err != nil {
		t.Fatal(err)
	}
	out := c.Render()
	for _, want := range []string{"delay vs rho", "rho", "slots", "* = prio", "o = fcfs", "+--"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Marks for both series appear.
	if !strings.ContainsRune(out, '*') || !strings.ContainsRune(out, 'o') {
		t.Errorf("marks missing:\n%s", out)
	}
	// The plot area has exactly Height rows with the axis character.
	if got := strings.Count(out, "|"); got != 10 {
		t.Errorf("plot rows = %d, want 10:\n%s", got, out)
	}
}

func TestRenderMonotoneCurvePlacement(t *testing.T) {
	// A strictly increasing curve: the highest y lands on the top row,
	// the lowest near the bottom.
	c := Chart{Width: 20, Height: 8}
	if err := c.Add(Series{Name: "s", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(c.Render(), "\n"), "\n")
	var rows []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			rows = append(rows, l[strings.Index(l, "|")+1:])
		}
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	if !strings.Contains(rows[0], "*") {
		t.Error("max point should be on the top row")
	}
	if !strings.Contains(rows[len(rows)-1], "*") {
		t.Error("min point should be on the bottom row")
	}
	// Columns increase left to right.
	first := strings.Index(rows[len(rows)-1], "*")
	last := strings.Index(rows[0], "*")
	if first >= last {
		t.Errorf("curve not increasing: bottom col %d, top col %d", first, last)
	}
}

func TestRenderYMaxClips(t *testing.T) {
	c := Chart{Width: 20, Height: 6, YMax: 10}
	if err := c.Add(Series{Name: "s", X: []float64{0, 1}, Y: []float64{5, 1000}}); err != nil {
		t.Fatal(err)
	}
	out := c.Render()
	if !strings.Contains(out, "^") {
		t.Errorf("clipped point should render as ^:\n%s", out)
	}
	if strings.Contains(out, "1000") {
		t.Errorf("axis should be capped at YMax:\n%s", out)
	}
}

func TestRenderCollisionMark(t *testing.T) {
	c := Chart{Width: 10, Height: 4}
	_ = c.Add(Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}})
	_ = c.Add(Series{Name: "b", X: []float64{0, 1}, Y: []float64{0, 1}})
	out := c.Render()
	if !strings.Contains(out, "!") {
		t.Errorf("overlapping series should render !:\n%s", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	c := Chart{Width: 10, Height: 4}
	_ = c.Add(Series{Name: "flat", X: []float64{2, 2}, Y: []float64{3, 3}})
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Errorf("constant series should still render:\n%s", out)
	}
}
