package journal

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

type rec struct {
	N int    `json:"n"`
	S string `json:"s"`
}

// collect replays path and returns the decoded records.
func collect(t *testing.T, path, magic, want string) ([]rec, int64, bool) {
	t.Helper()
	var out []rec
	validLen, found, err := Load(path, magic, want, func(line []byte) error {
		var r rec
		if err := json.Unmarshal(line, &r); err != nil {
			return err
		}
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return out, validLen, found
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path, "m1", "fp1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(rec{N: i, S: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, validLen, found := collect(t, path, "m1", "fp1")
	if !found || len(recs) != 3 || recs[2].N != 2 {
		t.Fatalf("replay = %v found=%v", recs, found)
	}
	st, _ := os.Stat(path)
	if validLen != st.Size() {
		t.Fatalf("validLen %d != file size %d", validLen, st.Size())
	}
}

func TestMissingAndEmpty(t *testing.T) {
	dir := t.TempDir()
	if _, found, err := Load(filepath.Join(dir, "absent"), "m", "", nil); err != nil || found {
		t.Fatalf("missing file: found=%v err=%v", found, err)
	}
	empty := filepath.Join(dir, "empty")
	os.WriteFile(empty, nil, 0o644)
	if _, found, err := Load(empty, "m", "", nil); err != nil || found {
		t.Fatalf("empty file: found=%v err=%v", found, err)
	}
}

func TestBadMagicAndFingerprint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, _ := Create(path, "m1", "fp1")
	w.Append(rec{N: 1})
	w.Close()
	if _, _, err := Load(path, "other", "", func([]byte) error { return nil }); err == nil {
		t.Fatal("wrong magic accepted")
	}
	_, _, err := Load(path, "m1", "fp2", func([]byte) error { return nil })
	var fp *ErrFingerprint
	if !errors.As(err, &fp) || fp.Got != "fp1" {
		t.Fatalf("want ErrFingerprint with got=fp1, have %v", err)
	}
	// Empty want skips the check.
	if recs, _, _ := collect(t, path, "m1", ""); len(recs) != 1 {
		t.Fatalf("want 1 record, got %v", recs)
	}
}

func TestTornTailTrimmedOnAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, _ := Create(path, "m1", "fp")
	w.Append(rec{N: 1})
	w.Append(rec{N: 2})
	w.Close()

	// Simulate a crash mid-write: chop the final line in half.
	b, _ := os.ReadFile(path)
	os.WriteFile(path, b[:len(b)-5], 0o644)

	recs, validLen, found := collect(t, path, "m1", "fp")
	if !found || len(recs) != 1 || recs[0].N != 1 {
		t.Fatalf("torn replay = %v", recs)
	}

	// Appending after OpenAppend(validLen) must yield a clean journal.
	w2, err := OpenAppend(path, validLen)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(rec{N: 3}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	recs, _, _ = collect(t, path, "m1", "fp")
	if len(recs) != 2 || recs[1].N != 3 {
		t.Fatalf("post-trim replay = %v", recs)
	}
}

// collectLenient replays path with LoadLenient, rejecting undecodable lines.
func collectLenient(t *testing.T, path, magic, want string) (out []rec, validLen int64, skipped int) {
	t.Helper()
	validLen, _, skipped, err := LoadLenient(path, magic, want, func(line []byte) error {
		var r rec
		if err := json.Unmarshal(line, &r); err != nil {
			return err
		}
		if r.S == "bad" {
			return errors.New("rejected by each")
		}
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatalf("LoadLenient: %v", err)
	}
	return out, validLen, skipped
}

// TestLoadLenientSkipsInteriorCorruption: a corrupt record in the middle of
// the file is skipped and counted, while every record around it — including
// ones after it — is kept. validLen covers the whole intact file so a later
// append never overwrites good records.
func TestLoadLenientSkipsInteriorCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, _ := Create(path, "m1", "fp")
	w.Append(rec{N: 1})
	w.Append(rec{N: 2, S: "bad"}) // decodes, but the callback rejects it
	w.Append(rec{N: 3})
	w.Close()
	// A second flavor of corruption: garbage bytes on their own line.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString("{{{ not json\n")
	f.Close()
	w2, err := OpenAppend(path, fileSize(t, path))
	if err != nil {
		t.Fatal(err)
	}
	w2.Append(rec{N: 4})
	w2.Close()

	recs, validLen, skipped := collectLenient(t, path, "m1", "fp")
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2", skipped)
	}
	if len(recs) != 3 || recs[0].N != 1 || recs[1].N != 3 || recs[2].N != 4 {
		t.Fatalf("lenient replay = %v", recs)
	}
	if validLen != fileSize(t, path) {
		t.Fatalf("validLen %d != file size %d (interior corruption must stay inside the valid prefix)", validLen, fileSize(t, path))
	}

	// strict Load on the same file stops at the first undecodable line and
	// never sees the record appended after it.
	strict, _, _ := collect(t, path, "m1", "fp")
	if len(strict) != 3 || strict[2].N != 3 {
		t.Fatalf("strict replay = %v, want to stop before record 4", strict)
	}
}

// TestLoadLenientTrimsTornTail: a rejected run at the very end of the file
// is the torn tail of a crashed append, not interior corruption — it is not
// counted as skipped and sits past validLen so OpenAppend trims it.
func TestLoadLenientTrimsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, _ := Create(path, "m1", "fp")
	w.Append(rec{N: 1})
	w.Append(rec{N: 2})
	w.Close()
	b, _ := os.ReadFile(path)
	os.WriteFile(path, b[:len(b)-5], 0o644)

	recs, validLen, skipped := collectLenient(t, path, "m1", "fp")
	if skipped != 0 {
		t.Fatalf("skipped = %d, want 0 (a torn tail is not interior corruption)", skipped)
	}
	if len(recs) != 1 || recs[0].N != 1 {
		t.Fatalf("torn lenient replay = %v", recs)
	}
	w2, err := OpenAppend(path, validLen)
	if err != nil {
		t.Fatal(err)
	}
	w2.Append(rec{N: 3})
	w2.Close()
	recs, _, skipped = collectLenient(t, path, "m1", "fp")
	if skipped != 0 || len(recs) != 2 || recs[1].N != 3 {
		t.Fatalf("post-trim lenient replay = %v skipped=%d", recs, skipped)
	}
}

// TestSetSync: fsync-per-append must not change what is written, only when
// it reaches the disk (which a unit test cannot observe — this pins the
// read-back equivalence and that the toggle does not error).
func TestSetSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path, "m1", "fp")
	if err != nil {
		t.Fatal(err)
	}
	w.SetSync(true)
	for i := 0; i < 3; i++ {
		if err := w.Append(rec{N: i}); err != nil {
			t.Fatalf("synced append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, found := collect(t, path, "m1", "fp")
	if !found || len(recs) != 3 {
		t.Fatalf("synced journal replay = %v found=%v", recs, found)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}
