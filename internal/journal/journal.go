// Package journal is the JSONL checkpoint-journal machinery shared by the
// sweep checkpoints (internal/sweep) and the daemon's result cache and job
// WAL (internal/serve). A journal is a line-oriented JSON file: a header
// line carrying a magic string and a fingerprint of whatever the journal
// belongs to, then one JSON record per line. Writers flush per record so a
// killed process loses at most the line in flight; readers tolerate a torn
// final line and report the byte length of the intact prefix so appenders
// can trim the tear before writing anything after it.
//
// # Durability
//
// By default Append flushes to the operating system (a crashed *process*
// loses at most the record in flight) but does not fsync, so a machine
// crash or power loss can lose recently flushed records still in the page
// cache. SetSync(true) adds an fsync per Append: every acknowledged record
// survives power loss, at the cost of a disk round trip per record —
// roughly three orders of magnitude slower on spinning media, and still
// substantial on SSDs. High-volume journals whose records are cheap to
// recompute (sweep checkpoints, the result cache) keep the default;
// low-volume journals whose records are promises to a client (the daemon's
// job WAL) turn fsync on.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// header is the first line of every journal.
type header struct {
	Magic       string `json:"journal"`
	Fingerprint string `json:"fingerprint"`
}

// Writer appends JSON records to a journal file, flushing per record.
type Writer struct {
	f    *os.File
	w    *bufio.Writer
	sync bool
}

// SetSync toggles fsync-per-Append (off by default). See the package
// comment for the durability trade-off.
func (j *Writer) SetSync(on bool) { j.sync = on }

// Create truncates (or creates) path and writes the header line.
func Create(path, magic, fingerprint string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("journal: creating %s: %w", path, err)
	}
	j := &Writer{f: f, w: bufio.NewWriter(f)}
	if err := j.Append(header{Magic: magic, Fingerprint: fingerprint}); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// OpenAppend opens an existing journal for appending new records, first
// truncating it to validLen (as reported by Load) so a torn final line from
// a crash does not swallow the next record written after it.
func OpenAppend(path string, validLen int64) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: trimming torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: seeking %s: %w", path, err)
	}
	return &Writer{f: f, w: bufio.NewWriter(f)}, nil
}

// Append marshals v onto its own line and flushes, so a crash loses at most
// the record in flight.
func (j *Writer) Append(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: encoding record: %w", err)
	}
	if _, err := j.w.Write(b); err != nil {
		return err
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if j.sync {
		return j.f.Sync()
	}
	return nil
}

// Close flushes and closes the underlying file.
func (j *Writer) Close() error {
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// ErrFingerprint reports a journal whose header fingerprint does not match
// the caller's expectation; callers wrap it with domain-specific advice.
type ErrFingerprint struct {
	Path string
	Got  string
}

// Error implements error.
func (e *ErrFingerprint) Error() string {
	return fmt.Sprintf("journal: %s has a mismatched fingerprint", e.Path)
}

// Load replays a journal. It verifies the header magic (and, when want is
// non-empty, the header fingerprint), then calls each for every record line
// in order. A line each fails to accept (returns an error for) is treated as
// the torn tail of a crashed write: replay stops there, silently, keeping
// everything before it. validLen is the byte length of the intact prefix —
// callers pass it to OpenAppend so the tear can never corrupt the next
// record. A missing or empty file is not an error: found is false and the
// caller starts from scratch.
func Load(path, magic, want string, each func(line []byte) error) (validLen int64, found bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		return 0, false, nil // empty file: treat as absent
	}
	var hdr header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Magic != magic {
		return 0, false, fmt.Errorf("journal: %s is not a %s journal", path, magic)
	}
	if want != "" && hdr.Fingerprint != want {
		return 0, false, &ErrFingerprint{Path: path, Got: hdr.Fingerprint}
	}
	validLen = int64(len(sc.Bytes())) + 1
	for sc.Scan() {
		if err := each(sc.Bytes()); err != nil {
			break // torn tail from a crash: keep what we have
		}
		validLen += int64(len(sc.Bytes())) + 1
	}
	if err := sc.Err(); err != nil {
		return 0, false, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	return validLen, true, nil
}

// LoadLenient replays a journal like Load, but a record line each rejects
// does not stop the replay: the line is skipped and scanning continues.
// skipped counts rejected lines that were followed by at least one accepted
// record — true mid-file corruption (a torn disk write, a flipped bit) as
// opposed to the torn tail of a crashed append, which trails the last good
// record and is excluded from both skipped and validLen. validLen is the
// byte offset just past the last accepted record (interior corrupt lines
// are inside it, so appending never overwrites good records; the torn tail
// is past it, so OpenAppend trims the tear as usual).
func LoadLenient(path, magic, want string, each func(line []byte) error) (validLen int64, found bool, skipped int, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, false, 0, nil
	}
	if err != nil {
		return 0, false, 0, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		return 0, false, 0, nil // empty file: treat as absent
	}
	var hdr header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Magic != magic {
		return 0, false, 0, fmt.Errorf("journal: %s is not a %s journal", path, magic)
	}
	if want != "" && hdr.Fingerprint != want {
		return 0, false, 0, &ErrFingerprint{Path: path, Got: hdr.Fingerprint}
	}
	validLen = int64(len(sc.Bytes())) + 1
	var badLines int   // rejected lines not yet known to be interior
	var badBytes int64 // their byte length, including newlines
	for sc.Scan() {
		n := int64(len(sc.Bytes())) + 1
		if err := each(sc.Bytes()); err != nil {
			badLines++
			badBytes += n
			continue
		}
		// A good record after bad lines proves they were interior
		// corruption, not the torn tail: keep them inside the valid prefix.
		skipped += badLines
		validLen += badBytes + n
		badLines, badBytes = 0, 0
	}
	if err := sc.Err(); err != nil {
		return 0, false, 0, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	return validLen, true, skipped, nil
}
