// Package cluster is the fault-tolerant distributed sweep fabric: a
// coordinator that decomposes an experiment into point/replication-level
// sub-jobs (the same maxBatchReps-sized chunks the local engine batches),
// scatters them across registered worker daemons under time-bounded leases,
// and folds the gathered records in strict (scheme, rho, rep) index order so
// the merged sweep.Result is byte-identical to a sequential single-node run.
//
// Robustness model:
//
//   - Workers register (join) and heartbeat; a missed heartbeat window marks
//     the worker dead and its sub-jobs are re-dispatched to healthy peers.
//   - Every sub-job is leased for a bounded time and the lease journaled
//     ("psfleet1"); an expired lease re-dispatches WITHOUT canceling the
//     in-flight call — if the slow worker eventually answers, the gather's
//     first-terminal-write-wins rule keeps exactly one result and counts the
//     duplicate.
//   - Dispatch is least-loaded power-of-two-choices over reported queue
//     depth plus outstanding leases — the same balanced-allocation principle
//     the paper's routing scheme applies to broadcast channels.
//   - A restarted coordinator replays its lease journal and re-adopts
//     in-flight leases: pending sub-jobs are re-dispatched preferentially to
//     the worker that already held them, whose content-addressed sub-job
//     cache answers without re-simulating.
//   - Per-sub-job retry budgets bound the damage of a poisoned point: an
//     exhausted budget fails the job attempt, feeding the serve layer's
//     existing retry/quarantine machinery.
//   - Per-worker circuit breakers (breaker.go) score dispatch health by
//     consecutive failures and a latency EWMA; an open breaker takes the
//     worker out of the pick pool until a half-open probe succeeds, so a
//     partitioned or trickling worker stops absorbing retry budget.
//   - Hedged dispatch: when a sub-job call outlives the straggler quantile
//     of observed sub-job latency, a second copy is speculatively dispatched
//     to a different worker; whichever answers first wins the fold and the
//     loser is discarded by the same first-terminal-write-wins rule that
//     already handles expired-lease duplicates.
//   - Graceful degradation: when no live worker's breaker admits traffic
//     (partition storm, empty roster), the coordinator runs sub-jobs locally
//     through sweep.RunSubjob — an accepted job can never fail because the
//     fleet vanished. The condition surfaces as /healthz "degraded" and a
//     fleet_degraded gauge, and clears when a remote dispatch succeeds.
//
// The coordinator plugs into the daemon as serve.Config.RunJob; everything
// above it (queueing, dedup, the WAL, the result cache, checkpoints) is
// unchanged.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"prioritystar/internal/obs"
	"prioritystar/internal/sim"
	"prioritystar/internal/spec"
	"prioritystar/internal/sweep"
)

// CoordinatorConfig tunes the fabric.
type CoordinatorConfig struct {
	// LeaseTTL is how long a dispatched sub-job may run before it is
	// re-dispatched to another worker. Default 30s. The original call is
	// never canceled: a lease that expires because the sub-job is simply
	// slow still completes via the duplicate-discard path.
	LeaseTTL time.Duration
	// Heartbeat is the cadence workers are told to report at. Default 2s.
	Heartbeat time.Duration
	// WorkerExpiry marks a worker dead after this much heartbeat silence.
	// Default 3x Heartbeat.
	WorkerExpiry time.Duration
	// SubjobRetries is how many dispatch attempts each sub-job gets before
	// the job attempt fails (and the serve layer's retry/quarantine budget
	// takes over). Default 3.
	SubjobRetries int
	// MaxInflight bounds concurrently leased sub-jobs. Default 16.
	MaxInflight int
	// SubjobTimeout is the hard deadline on one sub-job HTTP call — the
	// backstop that reclaims goroutines stuck on a partitioned worker whose
	// connection neither answers nor resets. Default 20x LeaseTTL (a lease
	// expiry re-dispatches long before this fires; the late original may
	// still fold via duplicate-discard). Must be at least Heartbeat: a call
	// timeout shorter than the liveness cadence would declare every worker
	// broken before it could ever prove otherwise.
	SubjobTimeout time.Duration
	// DegradeAfter is how long pickWorker waits for an eligible worker (live
	// and breaker-admitted) before the coordinator gives up on the fleet and
	// runs the sub-job locally. Default max(2x WorkerExpiry, 5s) — generous
	// enough to ride out a coordinator restart's rejoin window without
	// spuriously degrading. Once degraded, further picks fail fast so the
	// job drains locally instead of waiting DegradeAfter per sub-job.
	DegradeAfter time.Duration
	// HedgeQuantile is the straggler quantile of observed sub-job call
	// latency at which a second, hedged copy of an outstanding sub-job is
	// dispatched to a different worker. Default 0.95. Hedging waits for at
	// least hedgeMinSamples observations and never fires below hedgeMinDelay
	// or at/above LeaseTTL (lease expiry already covers that regime).
	HedgeQuantile float64
	// HedgeDisabled turns speculative re-dispatch off.
	HedgeDisabled bool
	// BreakerThreshold is the consecutive hard-failure (or slow-strike)
	// count that opens a worker's circuit breaker. Default 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker blocks dispatch before
	// admitting one half-open probe. Default 5s.
	BreakerCooldown time.Duration
	// JournalPath persists the lease journal; empty disables lease
	// re-adoption across coordinator restarts (leases live in memory only).
	JournalPath string
	// Metrics receives the fleet counters and gauges; a fresh set is
	// allocated when nil. Sharing the daemon's set puts workers_alive,
	// leases_expired, etc. on the same /metrics endpoint.
	Metrics *obs.MetricSet
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)

	// engine versions the lease journal; fixed to sim.EngineVersion,
	// overridable only by tests.
	engine string
	// now is the clock, overridable only by tests.
	now func() time.Time
	// transport replaces the sub-job HTTP transport; only tests set it (the
	// chaosnet fault injector plugs in here).
	transport http.RoundTripper
}

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	id    string
	name  string
	addr  string
	slots int

	mu       sync.Mutex
	depth    int // backlog reported by the last heartbeat
	leases   int // sub-jobs currently leased to this worker
	lastSeen time.Time
}

// load is the balanced-allocation signal: reported backlog plus the leases
// granted since that report.
func (w *workerState) load() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.depth + w.leases
}

// Coordinator owns the worker roster, the lease journal, and the
// scatter/gather engine behind RunJob.
type Coordinator struct {
	cfg CoordinatorConfig
	hc  *http.Client
	jnl *fleetJournal

	mu       sync.Mutex
	seq      int
	workers  map[string]*workerState // by id
	adopted  map[string]string       // leaseKey -> worker addr, from journal replay
	rnd      *rand.Rand
	breakers map[string]*breaker // by worker addr — survives re-registration
	degraded bool                // fleet abandoned; sub-jobs run locally

	// latMu guards the ring of recent successful sub-job call latencies
	// (milliseconds) that hedged dispatch derives its straggler quantile
	// from.
	latMu sync.Mutex
	lat   [latRingSize]float64
	latN  int
}

const (
	// latRingSize bounds the latency observations kept for the hedge
	// quantile.
	latRingSize = 128
	// hedgeMinSamples is how many observations hedging needs before it
	// trusts the quantile.
	hedgeMinSamples = 8
	// hedgeMinDelay floors the hedge delay: hedging sub-millisecond calls
	// would double traffic for no tail to cut.
	hedgeMinDelay = 25 * time.Millisecond
)

// NewCoordinator opens (and replays) the lease journal and builds the
// coordinator. Close releases the journal.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Second
	}
	if cfg.WorkerExpiry <= 0 {
		cfg.WorkerExpiry = 3 * cfg.Heartbeat
	}
	if cfg.SubjobRetries <= 0 {
		cfg.SubjobRetries = 3
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 16
	}
	if cfg.SubjobTimeout == 0 {
		cfg.SubjobTimeout = 20 * cfg.LeaseTTL
	}
	if cfg.SubjobTimeout < cfg.Heartbeat {
		return nil, fmt.Errorf("cluster: subjob timeout %v below heartbeat interval %v", cfg.SubjobTimeout, cfg.Heartbeat)
	}
	if cfg.DegradeAfter <= 0 {
		cfg.DegradeAfter = 2 * cfg.WorkerExpiry
		if cfg.DegradeAfter < 5*time.Second {
			cfg.DegradeAfter = 5 * time.Second
		}
	}
	if cfg.HedgeQuantile <= 0 || cfg.HedgeQuantile >= 1 {
		cfg.HedgeQuantile = 0.95
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &obs.MetricSet{}
	}
	if cfg.engine == "" {
		cfg.engine = sim.EngineVersion
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	// Register the chaos/robustness counters at zero so harnesses (psload
	// reconciliation, smoke scripts) can read them unconditionally.
	for _, name := range []string{
		"chaos_hedges_total", "hedge_wins", "breaker_open_total",
		"subjobs_local", "cluster_reps_local",
		"cluster_reps_folded", "cluster_reps_expected",
		"subjob_duplicates",
	} {
		cfg.Metrics.Add(name, 0)
	}
	cfg.Metrics.Set("fleet_degraded", 0)
	c := &Coordinator{
		cfg:      cfg,
		hc:       &http.Client{Transport: cfg.transport}, // per-request timeouts via context
		workers:  make(map[string]*workerState),
		adopted:  make(map[string]string),
		rnd:      rand.New(rand.NewSource(cfg.now().UnixNano())),
		breakers: make(map[string]*breaker),
	}
	if cfg.JournalPath != "" {
		jnl, adopted, skipped, err := openFleetJournal(cfg.JournalPath, cfg.engine, cfg.Logf)
		if err != nil {
			return nil, fmt.Errorf("cluster: opening lease journal: %w", err)
		}
		c.jnl = jnl
		c.adopted = adopted
		cfg.Metrics.Add("journal_records_skipped", int64(skipped))
		cfg.Metrics.Add("leases_adopted", int64(len(adopted)))
		if len(adopted) > 0 && cfg.Logf != nil {
			cfg.Logf("cluster: re-adopted %d in-flight lease(s) from %s", len(adopted), cfg.JournalPath)
		}
	}
	return c, nil
}

// Close releases the lease journal.
func (c *Coordinator) Close() error { return c.jnl.close() }

// Metrics returns the coordinator's metric set.
func (c *Coordinator) Metrics() *obs.MetricSet { return c.cfg.Metrics }

// Mount registers the coordinator's endpoints on the daemon's mux (before
// Start).
func (c *Coordinator) Mount(m Mux) {
	m.HandleFunc("POST /v1/cluster/join", c.handleJoin)
	m.HandleFunc("POST /v1/cluster/heartbeat", c.handleHeartbeat)
	m.HandleFunc("GET /v1/cluster/workers", c.handleWorkers)
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := decodeBody(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	if req.Addr == "" {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "join without an advertised address"})
		return
	}
	if req.Slots <= 0 {
		req.Slots = 1
	}
	c.mu.Lock()
	// A rejoin from the same address replaces the stale registration: the
	// old ID dies with the old process (or the old coordinator's roster).
	for id, ws := range c.workers {
		if ws.addr == req.Addr {
			delete(c.workers, id)
		}
	}
	c.seq++
	ws := &workerState{
		id:    fmt.Sprintf("w%04d", c.seq),
		name:  req.Name,
		addr:  req.Addr,
		slots: req.Slots,
	}
	ws.lastSeen = c.cfg.now()
	c.workers[ws.id] = ws
	alive := c.aliveLocked()
	c.mu.Unlock()
	c.cfg.Metrics.Add("workers_joined", 1)
	c.cfg.Metrics.Set("workers_alive", float64(alive))
	c.logf("cluster: worker %s (%s) joined from %s, %d slot(s)", ws.id, ws.name, ws.addr, ws.slots)
	writeJSON(w, http.StatusOK, JoinResponse{
		ID:              ws.id,
		HeartbeatMillis: c.cfg.Heartbeat.Milliseconds(),
		LeaseTTLMillis:  c.cfg.LeaseTTL.Milliseconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := decodeBody(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	c.mu.Lock()
	ws, ok := c.workers[req.ID]
	if ok {
		ws.mu.Lock()
		ws.depth = req.Depth
		ws.lastSeen = c.cfg.now()
		ws.mu.Unlock()
	}
	alive := c.aliveLocked()
	c.mu.Unlock()
	c.cfg.Metrics.Set("workers_alive", float64(alive))
	if !ok {
		// This coordinator does not know the ID (it restarted): the worker
		// rejoins and gets a fresh one.
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown worker; rejoin"})
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	now := c.cfg.now()
	c.mu.Lock()
	infos := make([]WorkerInfo, 0, len(c.workers))
	for _, ws := range c.workers {
		state, fails, ewmaMs := c.breakerLocked(ws.addr).view()
		ws.mu.Lock()
		infos = append(infos, WorkerInfo{
			ID: ws.id, Name: ws.name, Addr: ws.addr, Slots: ws.slots,
			Depth: ws.depth, Leases: ws.leases,
			Alive:             now.Sub(ws.lastSeen) <= c.cfg.WorkerExpiry,
			LastSeenMillisAgo: now.Sub(ws.lastSeen).Milliseconds(),
			Breaker:           state,
			BreakerFails:      fails,
			LatencyEWMAMillis: ewmaMs,
		})
		ws.mu.Unlock()
	}
	c.mu.Unlock()
	// Stable roster order for operators and tests.
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].ID < infos[j-1].ID; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
	writeJSON(w, http.StatusOK, WorkersResponse{Workers: infos})
}

// aliveLocked counts workers within the heartbeat window; c.mu held.
func (c *Coordinator) aliveLocked() int {
	now := c.cfg.now()
	n := 0
	for _, ws := range c.workers {
		ws.mu.Lock()
		if now.Sub(ws.lastSeen) <= c.cfg.WorkerExpiry {
			n++
		}
		ws.mu.Unlock()
	}
	return n
}

// errNoEligible reports that no live worker's breaker admits traffic and
// the DegradeAfter grace has elapsed: the caller should run the sub-job
// locally instead of failing the job.
var errNoEligible = errors.New("cluster: no eligible workers; degrading to local execution")

// breakerLocked returns (creating on first use) the breaker for a worker
// address. c.mu must be held.
func (c *Coordinator) breakerLocked(addr string) *breaker {
	b := c.breakers[addr]
	if b == nil {
		b = newBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown)
		c.breakers[addr] = b
	}
	return b
}

// pickLocked chooses a worker among the live, breaker-admitted roster by
// power-of-two-choices over load (reported depth + outstanding leases),
// granting it one lease; nil when none is eligible. c.mu must be held.
//
// Workers with closed breakers are preferred; half-open workers are probed
// only when no closed-breaker worker exists (a probe carries a real
// sub-job, so routing one there when healthy peers exist trades latency for
// nothing). prefer pins the adopted worker for a recovered lease; avoid
// skips the worker whose attempt just failed (honored only when an
// alternative exists) — with strict set, avoid is absolute, which is what a
// hedge needs: a hedge to the straggler itself is not a hedge.
func (c *Coordinator) pickLocked(prefer, avoid string, strict bool) *workerState {
	now := c.cfg.now()
	var closed, probes []*workerState
	for _, ws := range c.workers {
		ws.mu.Lock()
		alive := now.Sub(ws.lastSeen) <= c.cfg.WorkerExpiry
		ws.mu.Unlock()
		if !alive || (strict && ws.addr == avoid) {
			continue
		}
		switch c.breakerLocked(ws.addr).gate(now) {
		case gateClosed:
			closed = append(closed, ws)
		case gateProbe:
			probes = append(probes, ws)
		}
	}
	var pick *workerState
	probe := false
	// Pin to the adopted worker when it is still eligible.
	if prefer != "" {
		for _, ws := range closed {
			if ws.addr == prefer {
				pick = ws
			}
		}
		if pick == nil {
			for _, ws := range probes {
				if ws.addr == prefer {
					pick, probe = ws, true
				}
			}
		}
	}
	if pick == nil {
		candidates := closed
		if avoid != "" && !strict && len(candidates) > 1 {
			trimmed := make([]*workerState, 0, len(candidates)-1)
			for _, ws := range candidates {
				if ws.addr != avoid {
					trimmed = append(trimmed, ws)
				}
			}
			if len(trimmed) > 0 {
				candidates = trimmed
			}
		}
		if len(candidates) == 0 && len(probes) > 0 {
			candidates, probe = probes, true
		}
		if len(candidates) == 0 {
			return nil
		}
		// Two choices, keep the less loaded: exponentially better balance
		// than one choice, no global scan contention.
		pick = candidates[c.rnd.Intn(len(candidates))]
		if len(candidates) > 1 {
			other := candidates[c.rnd.Intn(len(candidates))]
			if other.load() < pick.load() {
				pick = other
			}
		}
	}
	if probe {
		c.breakerLocked(pick.addr).beginProbe()
	}
	pick.mu.Lock()
	pick.leases++
	pick.mu.Unlock()
	return pick
}

// pickWorker waits for an eligible worker (live, breaker-admitted), up to
// the DegradeAfter grace, then reports errNoEligible so the caller falls
// back to local execution. Once the coordinator is degraded, picks that
// find no eligible worker fail fast: the first sub-job paid the grace; the
// rest of the job drains locally without re-paying it.
func (c *Coordinator) pickWorker(ctx context.Context, prefer, avoid string) (*workerState, error) {
	deadline := c.cfg.now().Add(c.cfg.DegradeAfter)
	for {
		c.mu.Lock()
		pick := c.pickLocked(prefer, avoid, false)
		degraded := c.degraded
		c.mu.Unlock()
		if pick != nil {
			return pick, nil
		}
		if degraded || !c.cfg.now().Before(deadline) {
			return nil, errNoEligible
		}
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return nil, fmt.Errorf("cluster: no live workers: %w", ctx.Err())
		}
	}
}

// tryPickWorker is the non-blocking pick a hedge uses: an eligible worker
// other than strictAvoid right now, or nil.
func (c *Coordinator) tryPickWorker(strictAvoid string) *workerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pickLocked("", strictAvoid, true)
}

// noteSuccess records a successful sub-job call: breaker credit, a latency
// observation for the hedge quantile, and — because a remote dispatch just
// worked — the end of any degradation.
func (c *Coordinator) noteSuccess(ws *workerState, took time.Duration) {
	now := c.cfg.now()
	c.mu.Lock()
	c.breakerLocked(ws.addr).success(now, took)
	wasDegraded := c.degraded
	c.degraded = false
	c.mu.Unlock()
	if wasDegraded {
		c.cfg.Metrics.Set("fleet_degraded", 0)
		c.logf("cluster: fleet healed; sub-job served remotely by %s", ws.addr)
	}
	c.latMu.Lock()
	c.lat[c.latN%latRingSize] = float64(took) / float64(time.Millisecond)
	c.latN++
	c.latMu.Unlock()
}

// noteFailure records a hard failure against a worker's breaker.
func (c *Coordinator) noteFailure(ws *workerState) {
	now := c.cfg.now()
	c.mu.Lock()
	opened := c.breakerLocked(ws.addr).failure(now)
	c.mu.Unlock()
	if opened {
		c.cfg.Metrics.Add("breaker_open_total", 1)
		c.logf("cluster: breaker opened for worker %s", ws.addr)
	}
}

// anyEligibleLocked reports whether any live worker's breaker admits at
// least a probe. c.mu must be held.
func (c *Coordinator) anyEligibleLocked(now time.Time) bool {
	for _, ws := range c.workers {
		ws.mu.Lock()
		alive := now.Sub(ws.lastSeen) <= c.cfg.WorkerExpiry
		ws.mu.Unlock()
		if alive && c.breakerLocked(ws.addr).gate(now) != gateBlocked {
			return true
		}
	}
	return false
}

// Degraded reports whether the coordinator is running sub-jobs locally with
// still no eligible worker in sight — the /healthz "degraded" condition. A
// live worker whose breaker admits at least a probe counts as eligible, so
// a healing fleet un-degrades without waiting for traffic.
func (c *Coordinator) Degraded() bool {
	now := c.cfg.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded && !c.anyEligibleLocked(now)
}

// hedgeDelay derives the straggler threshold from observed successful call
// latencies: the configured quantile over the ring, floored at
// hedgeMinDelay. Zero disables hedging for this dispatch (too few samples,
// or the quantile has grown into lease-expiry territory, which already
// re-dispatches).
func (c *Coordinator) hedgeDelay() time.Duration {
	c.latMu.Lock()
	n := c.latN
	if n > latRingSize {
		n = latRingSize
	}
	if c.latN < hedgeMinSamples {
		c.latMu.Unlock()
		return 0
	}
	obs := make([]float64, n)
	copy(obs, c.lat[:n])
	c.latMu.Unlock()
	sort.Float64s(obs)
	idx := int(c.cfg.HedgeQuantile * float64(n))
	if idx >= n {
		idx = n - 1
	}
	d := time.Duration(obs[idx] * float64(time.Millisecond))
	if d < hedgeMinDelay {
		d = hedgeMinDelay
	}
	if d >= c.cfg.LeaseTTL {
		return 0
	}
	return d
}

// releaseLease returns a lease granted by pickWorker.
func (c *Coordinator) releaseLease(ws *workerState) {
	ws.mu.Lock()
	ws.leases--
	ws.mu.Unlock()
}

// gather collects sub-job results under first-terminal-write-wins: the
// first complete record set delivered for a sub-job key is folded in
// (journaled, checkpointed, counted into progress); anything after it —
// typically a slow worker answering after its lease expired and the sub-job
// was re-dispatched — is discarded and counted as a duplicate.
type gather struct {
	c     *Coordinator
	exp   *sweep.Experiment
	fp    string
	ckpt  *sweep.CheckpointWriter
	total int

	mu      sync.Mutex
	records map[sweep.RepKey]sweep.RepRecord
	done    map[string]bool // sub-job key -> folded
	reps    int
	ckptErr error
}

// expectedKeys builds the record keys a sub-job must deliver.
func expectedKeys(sj sweep.Subjob) map[sweep.RepKey]bool {
	want := make(map[sweep.RepKey]bool, len(sj.Reps))
	for _, rep := range sj.Reps {
		want[sweep.RepKey{Scheme: sj.Scheme, Rho: sj.Rho, Rep: rep}] = true
	}
	return want
}

// recordsMatch reports whether recs is exactly the record set sj must
// deliver: one record per replication, no extras, no strays. This is the
// fold's last line of defense against corrupt-but-decodable responses, so
// it is fuzzed (FuzzWireDecode) alongside the wire decoding itself.
func recordsMatch(sj sweep.Subjob, recs []sweep.RepRecord) bool {
	want := expectedKeys(sj)
	if len(recs) != len(want) {
		return false
	}
	for _, rec := range recs {
		if !want[rec.Key()] {
			return false
		}
		delete(want, rec.Key())
	}
	return true
}

// deliver folds one sub-job's records. It reports whether this delivery won
// (false for duplicates and malformed record sets).
func (g *gather) deliver(sj sweep.Subjob, key string, recs []sweep.RepRecord, cached bool) bool {
	if !recordsMatch(sj, recs) {
		return false
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.done[key] {
		g.c.cfg.Metrics.Add("subjob_duplicates", 1)
		return false
	}
	g.done[key] = true
	if cached {
		g.c.cfg.Metrics.Add("subjob_cache_hits", 1)
	}
	for _, rec := range recs {
		g.records[rec.Key()] = rec
		if g.ckpt != nil && g.ckptErr == nil {
			g.ckptErr = g.ckpt.Append(rec)
		}
		g.reps++
		if g.exp.Progress != nil {
			g.exp.Progress(g.reps, g.total)
		}
	}
	g.c.journalLease(fleetRecord{Op: fleetOpDone, FP: g.fp, Key: key})
	return true
}

// isDone reports whether a sub-job has already been folded.
func (g *gather) isDone(key string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.done[key]
}

// journalLease appends to the lease journal, logging (not failing) on
// error: a full disk must degrade re-adoption, not wedge the fleet.
func (c *Coordinator) journalLease(rec fleetRecord) {
	rec.Time = c.cfg.now().UTC().Format(time.RFC3339)
	if err := c.jnl.append(rec); err != nil {
		c.logf("cluster: journaling lease %s/%s: %v", rec.Op, rec.Key, err)
	}
}

// adoptedAddr consumes the re-adopted worker address for a sub-job, if any.
func (c *Coordinator) adoptedAddr(fp, key string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	addr := c.adopted[leaseKey(fp, key)]
	delete(c.adopted, leaseKey(fp, key))
	return addr
}

// RunJob executes an experiment across the fleet: decompose into sub-jobs
// (skipping replications already in the checkpoint journal), scatter under
// leases, gather with first-terminal-write-wins, and assemble in index
// order. It honors the experiment's Checkpoint/Resume fields exactly like
// sweep.Experiment.Run, so the serve layer's crash recovery — WAL replay
// re-running the job, checkpoint replay skipping finished replications —
// works unchanged when the execution engine is the fleet. The returned
// Result is byte-identical (through serve's deterministic encoding) to a
// single-node run of the same experiment.
func (c *Coordinator) RunJob(exp *sweep.Experiment) (*sweep.Result, error) {
	if err := exp.Validate(); err != nil {
		return nil, err
	}
	if exp.Fingerprint == "" {
		// Workers re-derive the canonical fingerprint from the spec and
		// refuse mismatches, so the coordinator must fold under the same
		// canonical identity even when the caller did not stamp one.
		if err := spec.Stamp(exp); err != nil {
			return nil, fmt.Errorf("cluster: stamping spec: %w", err)
		}
	}
	ctx := exp.Context
	if ctx == nil {
		ctx = context.Background()
	}
	fp := exp.JournalFingerprint()
	specJSON, err := spec.Canonical(exp)
	if err != nil {
		return nil, fmt.Errorf("cluster: canonicalizing spec: %w", err)
	}
	start := time.Now()

	// Checkpoint replay/create, mirroring sweep.Run.
	records := make(map[sweep.RepKey]sweep.RepRecord)
	var ckpt *sweep.CheckpointWriter
	if exp.Checkpoint != "" {
		if exp.Resume {
			resumed, validLen, found, err := sweep.LoadCheckpoint(exp.Checkpoint, fp)
			if err != nil {
				return nil, err
			}
			if found {
				records = resumed
				ckpt, err = sweep.OpenCheckpointAppend(exp.Checkpoint, validLen)
			} else {
				ckpt, err = sweep.CreateCheckpoint(exp.Checkpoint, fp)
			}
			if err != nil {
				return nil, err
			}
		} else {
			if ckpt, err = sweep.CreateCheckpoint(exp.Checkpoint, fp); err != nil {
				return nil, err
			}
		}
		defer ckpt.Close()
	}
	resumed := len(records)

	subjobs, err := exp.Subjobs(func(k sweep.RepKey) bool {
		_, ok := records[k]
		return ok
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, sj := range subjobs {
		total += len(sj.Reps)
	}

	g := &gather{
		c: c, exp: exp, fp: fp, ckpt: ckpt, total: total,
		records: records,
		done:    make(map[string]bool),
	}

	sem := make(chan struct{}, c.cfg.MaxInflight)
	var wg sync.WaitGroup
	var failMu sync.Mutex
	var failErr error
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	fail := func(err error) {
		failMu.Lock()
		if failErr == nil {
			failErr = err
			cancelRun() // one dead sub-job fails the attempt; stop the rest
		}
		failMu.Unlock()
	}

	for _, sj := range subjobs {
		wg.Add(1)
		go func(sj sweep.Subjob) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-runCtx.Done():
				return
			}
			if err := c.superviseSubjob(runCtx, g, specJSON, sj); err != nil {
				fail(err)
			}
		}(sj)
	}
	wg.Wait()
	if failErr != nil {
		return nil, failErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g.mu.Lock()
	ckptErr := g.ckptErr
	folded := g.reps
	g.mu.Unlock()
	if ckptErr != nil {
		return nil, fmt.Errorf("cluster: writing checkpoint: %w", ckptErr)
	}
	// Fold accounting for the load harness: folded must equal expected on
	// every completed job, or a duplicate slipped past first-write-wins
	// (double-fold) or a record set went missing.
	c.cfg.Metrics.Add("cluster_reps_folded", int64(folded))
	c.cfg.Metrics.Add("cluster_reps_expected", int64(total))
	return exp.Assemble(records, resumed, time.Since(start)), nil
}

// callOutcome is one sub-job call's result.
type callOutcome struct {
	ws    *workerState
	resp  SubjobResponse
	err   error
	took  time.Duration
	hedge bool
}

// startCall posts one sub-job to a worker in the background under the
// configured SubjobTimeout, reporting on ch. The returned cancel releases
// the call's context resources (and aborts the call if still in flight); a
// lease expiry deliberately does not call it, so a slow-but-alive worker
// still completes the sub-job and folds via duplicate-discard.
func (c *Coordinator) startCall(fp string, specJSON []byte, sj sweep.Subjob, key string, ws *workerState, hedge bool, ch chan<- callOutcome) context.CancelFunc {
	callCtx, cancel := context.WithTimeout(context.Background(), c.cfg.SubjobTimeout)
	go func() {
		start := time.Now()
		var resp SubjobResponse
		err := postJSON(callCtx, c.hc, baseURL(ws.addr)+"/v1/cluster/subjob", SubjobRequest{
			Fingerprint: fp, Spec: specJSON, Key: key, Subjob: sj,
		}, &resp)
		ch <- callOutcome{ws: ws, resp: resp, err: err, took: time.Since(start), hedge: hedge}
	}()
	return cancel
}

// drainCalls consumes outstanding call results in the background after the
// supervisor has moved on (a sibling won, the lease expired, the job was
// torn down): leases are returned, a late success still folds via
// duplicate-discard, and breaker accounting still happens — a partitioned
// worker's eventual timeout must open its breaker even when the sub-job
// already completed elsewhere. abort cancels the calls up front (job
// teardown); otherwise they run to their own SubjobTimeout.
func (c *Coordinator) drainCalls(g *gather, sj sweep.Subjob, key string, ch <-chan callOutcome, pending int, cancels []context.CancelFunc, abort bool) {
	if abort {
		for _, cancel := range cancels {
			cancel()
		}
	}
	if pending <= 0 {
		for _, cancel := range cancels {
			cancel()
		}
		return
	}
	go func() {
		for i := 0; i < pending; i++ {
			res := <-ch
			c.releaseLease(res.ws)
			switch {
			case res.err == nil:
				c.noteSuccess(res.ws, res.took)
				if g.deliver(sj, key, res.resp.Records, res.resp.Cached) && res.hedge {
					c.cfg.Metrics.Add("hedge_wins", 1)
				}
			case errors.Is(res.err, context.Canceled):
				// our own teardown, not the worker's fault
			default:
				c.noteFailure(res.ws)
			}
		}
		for _, cancel := range cancels {
			cancel()
		}
	}()
}

// superviseSubjob drives one sub-job to completion: lease a worker, post
// the call, hedge it to a second worker if it outlives the straggler
// quantile, and either fold a result or — on lease expiry or worker
// failure — re-dispatch to a different worker while earlier calls keep
// running (their late results hit the duplicate-discard path). When no
// eligible worker remains, the sub-job runs locally: the job outlives the
// fleet.
func (c *Coordinator) superviseSubjob(ctx context.Context, g *gather, specJSON []byte, sj sweep.Subjob) error {
	key := sj.Key()
	prefer := c.adoptedAddr(g.fp, key)
	avoid := ""
	var lastErr error
	for attempt := 1; attempt <= c.cfg.SubjobRetries; attempt++ {
		if g.isDone(key) {
			return nil // a late delivery from an expired lease beat us to it
		}
		ws, err := c.pickWorker(ctx, prefer, avoid)
		prefer = ""
		if errors.Is(err, errNoEligible) {
			return c.runLocal(ctx, g, specJSON, sj, key)
		}
		if err != nil {
			return err
		}
		c.journalLease(fleetRecord{Op: fleetOpGrant, FP: g.fp, Key: key, Addr: ws.addr, Attempt: attempt})
		c.cfg.Metrics.Add("subjobs_dispatched", 1)

		resCh := make(chan callOutcome, 2)
		cancels := []context.CancelFunc{c.startCall(g.fp, specJSON, sj, key, ws, false, resCh)}
		pending := 1
		var hedgeTimer *time.Timer
		var hedgeC <-chan time.Time
		if !c.cfg.HedgeDisabled {
			if d := c.hedgeDelay(); d > 0 {
				hedgeTimer = time.NewTimer(d)
				hedgeC = hedgeTimer.C
			}
		}
		lease := time.NewTimer(c.cfg.LeaseTTL)
		stopTimers := func() {
			lease.Stop()
			if hedgeTimer != nil {
				hedgeTimer.Stop()
			}
		}

		next := false // this attempt is spent; re-dispatch
		for !next {
			select {
			case res := <-resCh:
				pending--
				c.releaseLease(res.ws)
				if res.err == nil {
					won := g.deliver(sj, key, res.resp.Records, res.resp.Cached)
					if won || g.isDone(key) {
						c.noteSuccess(res.ws, res.took)
						if won && res.hedge {
							c.cfg.Metrics.Add("hedge_wins", 1)
						}
						stopTimers()
						c.drainCalls(g, sj, key, resCh, pending, cancels, false)
						return nil
					}
					// Decodable but wrong record set: a corrupt response
					// that survived JSON framing. Score it as a failure.
					res.err = fmt.Errorf("cluster: worker %s returned a malformed record set for %s", res.ws.addr, key)
				}
				c.noteFailure(res.ws)
				lastErr = res.err
				avoid = res.ws.addr
				c.logf("cluster: sub-job %s attempt %d on %s failed: %v", key, attempt, res.ws.addr, res.err)
				if pending > 0 {
					continue // a hedge (or the primary) is still in flight; give it its chance
				}
				stopTimers()
				c.journalLease(fleetRecord{Op: fleetOpExpire, FP: g.fp, Key: key, Attempt: attempt})
				c.cfg.Metrics.Add("subjobs_redispatched", 1)
				next = true

			case <-hedgeC:
				hedgeC = nil
				hws := c.tryPickWorker(ws.addr)
				if hws == nil {
					continue // nobody to hedge to; the lease still guards us
				}
				c.cfg.Metrics.Add("chaos_hedges_total", 1)
				c.journalLease(fleetRecord{Op: fleetOpGrant, FP: g.fp, Key: key, Addr: hws.addr, Attempt: attempt})
				c.logf("cluster: hedging sub-job %s to %s (straggler on %s)", key, hws.addr, ws.addr)
				cancels = append(cancels, c.startCall(g.fp, specJSON, sj, key, hws, true, resCh))
				pending++

			case <-lease.C:
				// Lease expired: journal it, leave the calls running, and
				// hand the sub-job to another worker. Whichever result lands
				// first wins; losers are discarded and counted.
				stopTimers()
				c.journalLease(fleetRecord{Op: fleetOpExpire, FP: g.fp, Key: key, Attempt: attempt})
				c.cfg.Metrics.Add("leases_expired", 1)
				c.cfg.Metrics.Add("subjobs_redispatched", 1)
				c.logf("cluster: lease on sub-job %s expired at %s (attempt %d); re-dispatching", key, ws.addr, attempt)
				c.drainCalls(g, sj, key, resCh, pending, cancels, false)
				lastErr = fmt.Errorf("cluster: lease expired on %s", ws.addr)
				avoid = ws.addr
				next = true

			case <-ctx.Done():
				stopTimers()
				c.drainCalls(g, sj, key, resCh, pending, cancels, true)
				return ctx.Err()
			}
		}
	}
	if g.isDone(key) {
		return nil
	}
	// An exhausted dispatch budget usually means the failures were the
	// fleet's, not this sub-job's: a partition storm eats retries faster
	// than breakers open, so an instant eligibility snapshot here can still
	// see a worker one failure short of its threshold. Give the breakers
	// the same DegradeAfter grace pickWorker grants, and degrade to local
	// execution the moment the fleet goes fully ineligible instead of
	// failing an accepted job.
	deadline := c.cfg.now().Add(c.cfg.DegradeAfter)
	for {
		if g.isDone(key) {
			return nil
		}
		c.mu.Lock()
		degraded := c.degraded
		eligible := c.anyEligibleLocked(c.cfg.now())
		c.mu.Unlock()
		if degraded || !eligible {
			return c.runLocal(ctx, g, specJSON, sj, key)
		}
		if !c.cfg.now().Before(deadline) {
			break
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
	return fmt.Errorf("cluster: sub-job %s failed %d dispatch attempt(s): %w", key, c.cfg.SubjobRetries, lastErr)
}

// runLocal executes a sub-job on the coordinator itself — the bottom of the
// degradation ladder, reached when every breaker is open or the roster is
// empty. The accepted job's contract survives the fleet vanishing: the
// records are identical to a worker's because both sides decode the same
// canonical spec and run the same sweep.RunSubjob.
func (c *Coordinator) runLocal(ctx context.Context, g *gather, specJSON []byte, sj sweep.Subjob, key string) error {
	if g.isDone(key) {
		return nil
	}
	c.mu.Lock()
	first := !c.degraded
	c.degraded = true
	c.mu.Unlock()
	c.cfg.Metrics.Set("fleet_degraded", 1)
	if first {
		c.logf("cluster: no eligible workers; running sub-jobs locally")
	}
	c.journalLease(fleetRecord{Op: fleetOpGrant, FP: g.fp, Key: key, Addr: "local", Attempt: 1})
	exp, err := spec.Decode(specJSON)
	if err == nil {
		err = spec.Stamp(exp)
	}
	if err != nil {
		return fmt.Errorf("cluster: decoding spec for local run: %w", err)
	}
	exp.Context = ctx
	recs, err := exp.RunSubjob(sj)
	if err != nil {
		return fmt.Errorf("cluster: local sub-job %s: %w", key, err)
	}
	c.cfg.Metrics.Add("subjobs_local", 1)
	c.cfg.Metrics.Add("cluster_reps_local", int64(len(recs)))
	if !g.deliver(sj, key, recs, false) && !g.isDone(key) {
		return fmt.Errorf("cluster: local sub-job %s produced a malformed record set", key)
	}
	return nil
}

// maxWireBody bounds any single wire-protocol request body: large enough
// for the biggest legitimate sub-job payload by orders of magnitude, small
// enough that a corrupt length or hostile peer cannot balloon memory.
const maxWireBody = 64 << 20

// decodeBody decodes a JSON request body, bounded at maxWireBody.
func decodeBody(r *http.Request, v any) error {
	if err := json.NewDecoder(io.LimitReader(r.Body, maxWireBody)).Decode(v); err != nil {
		return fmt.Errorf("decoding request: %v", err)
	}
	return nil
}
