// Package cluster is the fault-tolerant distributed sweep fabric: a
// coordinator that decomposes an experiment into point/replication-level
// sub-jobs (the same maxBatchReps-sized chunks the local engine batches),
// scatters them across registered worker daemons under time-bounded leases,
// and folds the gathered records in strict (scheme, rho, rep) index order so
// the merged sweep.Result is byte-identical to a sequential single-node run.
//
// Robustness model:
//
//   - Workers register (join) and heartbeat; a missed heartbeat window marks
//     the worker dead and its sub-jobs are re-dispatched to healthy peers.
//   - Every sub-job is leased for a bounded time and the lease journaled
//     ("psfleet1"); an expired lease re-dispatches WITHOUT canceling the
//     in-flight call — if the slow worker eventually answers, the gather's
//     first-terminal-write-wins rule keeps exactly one result and counts the
//     duplicate.
//   - Dispatch is least-loaded power-of-two-choices over reported queue
//     depth plus outstanding leases — the same balanced-allocation principle
//     the paper's routing scheme applies to broadcast channels.
//   - A restarted coordinator replays its lease journal and re-adopts
//     in-flight leases: pending sub-jobs are re-dispatched preferentially to
//     the worker that already held them, whose content-addressed sub-job
//     cache answers without re-simulating.
//   - Per-sub-job retry budgets bound the damage of a poisoned point: an
//     exhausted budget fails the job attempt, feeding the serve layer's
//     existing retry/quarantine machinery.
//
// The coordinator plugs into the daemon as serve.Config.RunJob; everything
// above it (queueing, dedup, the WAL, the result cache, checkpoints) is
// unchanged.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"prioritystar/internal/obs"
	"prioritystar/internal/sim"
	"prioritystar/internal/spec"
	"prioritystar/internal/sweep"
)

// CoordinatorConfig tunes the fabric.
type CoordinatorConfig struct {
	// LeaseTTL is how long a dispatched sub-job may run before it is
	// re-dispatched to another worker. Default 30s. The original call is
	// never canceled: a lease that expires because the sub-job is simply
	// slow still completes via the duplicate-discard path.
	LeaseTTL time.Duration
	// Heartbeat is the cadence workers are told to report at. Default 2s.
	Heartbeat time.Duration
	// WorkerExpiry marks a worker dead after this much heartbeat silence.
	// Default 3x Heartbeat.
	WorkerExpiry time.Duration
	// SubjobRetries is how many dispatch attempts each sub-job gets before
	// the job attempt fails (and the serve layer's retry/quarantine budget
	// takes over). Default 3.
	SubjobRetries int
	// MaxInflight bounds concurrently leased sub-jobs. Default 16.
	MaxInflight int
	// JournalPath persists the lease journal; empty disables lease
	// re-adoption across coordinator restarts (leases live in memory only).
	JournalPath string
	// Metrics receives the fleet counters and gauges; a fresh set is
	// allocated when nil. Sharing the daemon's set puts workers_alive,
	// leases_expired, etc. on the same /metrics endpoint.
	Metrics *obs.MetricSet
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)

	// engine versions the lease journal; fixed to sim.EngineVersion,
	// overridable only by tests.
	engine string
	// now is the clock, overridable only by tests.
	now func() time.Time
}

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	id    string
	name  string
	addr  string
	slots int

	mu       sync.Mutex
	depth    int // backlog reported by the last heartbeat
	leases   int // sub-jobs currently leased to this worker
	lastSeen time.Time
}

// load is the balanced-allocation signal: reported backlog plus the leases
// granted since that report.
func (w *workerState) load() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.depth + w.leases
}

// Coordinator owns the worker roster, the lease journal, and the
// scatter/gather engine behind RunJob.
type Coordinator struct {
	cfg CoordinatorConfig
	hc  *http.Client
	jnl *fleetJournal

	mu      sync.Mutex
	seq     int
	workers map[string]*workerState // by id
	adopted map[string]string       // leaseKey -> worker addr, from journal replay
	rnd     *rand.Rand
}

// NewCoordinator opens (and replays) the lease journal and builds the
// coordinator. Close releases the journal.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Second
	}
	if cfg.WorkerExpiry <= 0 {
		cfg.WorkerExpiry = 3 * cfg.Heartbeat
	}
	if cfg.SubjobRetries <= 0 {
		cfg.SubjobRetries = 3
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 16
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &obs.MetricSet{}
	}
	if cfg.engine == "" {
		cfg.engine = sim.EngineVersion
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	c := &Coordinator{
		cfg:     cfg,
		hc:      &http.Client{}, // per-request timeouts via context
		workers: make(map[string]*workerState),
		adopted: make(map[string]string),
		rnd:     rand.New(rand.NewSource(cfg.now().UnixNano())),
	}
	if cfg.JournalPath != "" {
		jnl, adopted, skipped, err := openFleetJournal(cfg.JournalPath, cfg.engine, cfg.Logf)
		if err != nil {
			return nil, fmt.Errorf("cluster: opening lease journal: %w", err)
		}
		c.jnl = jnl
		c.adopted = adopted
		cfg.Metrics.Add("journal_records_skipped", int64(skipped))
		cfg.Metrics.Add("leases_adopted", int64(len(adopted)))
		if len(adopted) > 0 && cfg.Logf != nil {
			cfg.Logf("cluster: re-adopted %d in-flight lease(s) from %s", len(adopted), cfg.JournalPath)
		}
	}
	return c, nil
}

// Close releases the lease journal.
func (c *Coordinator) Close() error { return c.jnl.close() }

// Metrics returns the coordinator's metric set.
func (c *Coordinator) Metrics() *obs.MetricSet { return c.cfg.Metrics }

// Mount registers the coordinator's endpoints on the daemon's mux (before
// Start).
func (c *Coordinator) Mount(m Mux) {
	m.HandleFunc("POST /v1/cluster/join", c.handleJoin)
	m.HandleFunc("POST /v1/cluster/heartbeat", c.handleHeartbeat)
	m.HandleFunc("GET /v1/cluster/workers", c.handleWorkers)
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := decodeBody(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	if req.Addr == "" {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "join without an advertised address"})
		return
	}
	if req.Slots <= 0 {
		req.Slots = 1
	}
	c.mu.Lock()
	// A rejoin from the same address replaces the stale registration: the
	// old ID dies with the old process (or the old coordinator's roster).
	for id, ws := range c.workers {
		if ws.addr == req.Addr {
			delete(c.workers, id)
		}
	}
	c.seq++
	ws := &workerState{
		id:    fmt.Sprintf("w%04d", c.seq),
		name:  req.Name,
		addr:  req.Addr,
		slots: req.Slots,
	}
	ws.lastSeen = c.cfg.now()
	c.workers[ws.id] = ws
	alive := c.aliveLocked()
	c.mu.Unlock()
	c.cfg.Metrics.Add("workers_joined", 1)
	c.cfg.Metrics.Set("workers_alive", float64(alive))
	c.logf("cluster: worker %s (%s) joined from %s, %d slot(s)", ws.id, ws.name, ws.addr, ws.slots)
	writeJSON(w, http.StatusOK, JoinResponse{
		ID:              ws.id,
		HeartbeatMillis: c.cfg.Heartbeat.Milliseconds(),
		LeaseTTLMillis:  c.cfg.LeaseTTL.Milliseconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := decodeBody(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	c.mu.Lock()
	ws, ok := c.workers[req.ID]
	if ok {
		ws.mu.Lock()
		ws.depth = req.Depth
		ws.lastSeen = c.cfg.now()
		ws.mu.Unlock()
	}
	alive := c.aliveLocked()
	c.mu.Unlock()
	c.cfg.Metrics.Set("workers_alive", float64(alive))
	if !ok {
		// This coordinator does not know the ID (it restarted): the worker
		// rejoins and gets a fresh one.
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown worker; rejoin"})
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	now := c.cfg.now()
	c.mu.Lock()
	infos := make([]WorkerInfo, 0, len(c.workers))
	for _, ws := range c.workers {
		ws.mu.Lock()
		infos = append(infos, WorkerInfo{
			ID: ws.id, Name: ws.name, Addr: ws.addr, Slots: ws.slots,
			Depth: ws.depth, Leases: ws.leases,
			Alive:             now.Sub(ws.lastSeen) <= c.cfg.WorkerExpiry,
			LastSeenMillisAgo: now.Sub(ws.lastSeen).Milliseconds(),
		})
		ws.mu.Unlock()
	}
	c.mu.Unlock()
	// Stable roster order for operators and tests.
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].ID < infos[j-1].ID; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
	writeJSON(w, http.StatusOK, WorkersResponse{Workers: infos})
}

// aliveLocked counts workers within the heartbeat window; c.mu held.
func (c *Coordinator) aliveLocked() int {
	now := c.cfg.now()
	n := 0
	for _, ws := range c.workers {
		ws.mu.Lock()
		if now.Sub(ws.lastSeen) <= c.cfg.WorkerExpiry {
			n++
		}
		ws.mu.Unlock()
	}
	return n
}

// pickWorker chooses a live worker by power-of-two-choices over load
// (reported depth + outstanding leases), granting it one lease. prefer, when
// non-empty, names the adopted worker address to pin the first re-dispatch
// of a recovered lease to; avoid is the address of the worker whose attempt
// just failed or expired (honored only when an alternative exists). Blocks
// while the roster has no live workers, until ctx is done.
func (c *Coordinator) pickWorker(ctx context.Context, prefer, avoid string) (*workerState, error) {
	for {
		now := c.cfg.now()
		c.mu.Lock()
		var alive []*workerState
		for _, ws := range c.workers {
			ws.mu.Lock()
			ok := now.Sub(ws.lastSeen) <= c.cfg.WorkerExpiry
			ws.mu.Unlock()
			if ok {
				alive = append(alive, ws)
			}
		}
		var pick *workerState
		if len(alive) > 0 {
			// Pin to the adopted worker when it is still alive.
			for _, ws := range alive {
				if prefer != "" && ws.addr == prefer {
					pick = ws
					break
				}
			}
			if pick == nil {
				candidates := alive
				if avoid != "" && len(alive) > 1 {
					candidates = make([]*workerState, 0, len(alive)-1)
					for _, ws := range alive {
						if ws.addr != avoid {
							candidates = append(candidates, ws)
						}
					}
					if len(candidates) == 0 {
						candidates = alive
					}
				}
				// Two choices, keep the less loaded: exponentially better
				// balance than one choice, no global scan contention.
				pick = candidates[c.rnd.Intn(len(candidates))]
				if len(candidates) > 1 {
					other := candidates[c.rnd.Intn(len(candidates))]
					if other.load() < pick.load() {
						pick = other
					}
				}
			}
			pick.mu.Lock()
			pick.leases++
			pick.mu.Unlock()
		}
		c.mu.Unlock()
		if pick != nil {
			return pick, nil
		}
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return nil, fmt.Errorf("cluster: no live workers: %w", ctx.Err())
		}
	}
}

// releaseLease returns a lease granted by pickWorker.
func (c *Coordinator) releaseLease(ws *workerState) {
	ws.mu.Lock()
	ws.leases--
	ws.mu.Unlock()
}

// gather collects sub-job results under first-terminal-write-wins: the
// first complete record set delivered for a sub-job key is folded in
// (journaled, checkpointed, counted into progress); anything after it —
// typically a slow worker answering after its lease expired and the sub-job
// was re-dispatched — is discarded and counted as a duplicate.
type gather struct {
	c     *Coordinator
	exp   *sweep.Experiment
	fp    string
	ckpt  *sweep.CheckpointWriter
	total int

	mu      sync.Mutex
	records map[sweep.RepKey]sweep.RepRecord
	done    map[string]bool // sub-job key -> folded
	reps    int
	ckptErr error
}

// expectedKeys builds the record keys a sub-job must deliver.
func expectedKeys(sj sweep.Subjob) map[sweep.RepKey]bool {
	want := make(map[sweep.RepKey]bool, len(sj.Reps))
	for _, rep := range sj.Reps {
		want[sweep.RepKey{Scheme: sj.Scheme, Rho: sj.Rho, Rep: rep}] = true
	}
	return want
}

// deliver folds one sub-job's records. It reports whether this delivery won
// (false for duplicates and malformed record sets).
func (g *gather) deliver(sj sweep.Subjob, key string, recs []sweep.RepRecord, cached bool) bool {
	want := expectedKeys(sj)
	if len(recs) != len(want) {
		return false
	}
	for _, rec := range recs {
		if !want[rec.Key()] {
			return false
		}
		delete(want, rec.Key())
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.done[key] {
		g.c.cfg.Metrics.Add("subjob_duplicates", 1)
		return false
	}
	g.done[key] = true
	if cached {
		g.c.cfg.Metrics.Add("subjob_cache_hits", 1)
	}
	for _, rec := range recs {
		g.records[rec.Key()] = rec
		if g.ckpt != nil && g.ckptErr == nil {
			g.ckptErr = g.ckpt.Append(rec)
		}
		g.reps++
		if g.exp.Progress != nil {
			g.exp.Progress(g.reps, g.total)
		}
	}
	g.c.journalLease(fleetRecord{Op: fleetOpDone, FP: g.fp, Key: key})
	return true
}

// isDone reports whether a sub-job has already been folded.
func (g *gather) isDone(key string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.done[key]
}

// journalLease appends to the lease journal, logging (not failing) on
// error: a full disk must degrade re-adoption, not wedge the fleet.
func (c *Coordinator) journalLease(rec fleetRecord) {
	rec.Time = c.cfg.now().UTC().Format(time.RFC3339)
	if err := c.jnl.append(rec); err != nil {
		c.logf("cluster: journaling lease %s/%s: %v", rec.Op, rec.Key, err)
	}
}

// adoptedAddr consumes the re-adopted worker address for a sub-job, if any.
func (c *Coordinator) adoptedAddr(fp, key string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	addr := c.adopted[leaseKey(fp, key)]
	delete(c.adopted, leaseKey(fp, key))
	return addr
}

// RunJob executes an experiment across the fleet: decompose into sub-jobs
// (skipping replications already in the checkpoint journal), scatter under
// leases, gather with first-terminal-write-wins, and assemble in index
// order. It honors the experiment's Checkpoint/Resume fields exactly like
// sweep.Experiment.Run, so the serve layer's crash recovery — WAL replay
// re-running the job, checkpoint replay skipping finished replications —
// works unchanged when the execution engine is the fleet. The returned
// Result is byte-identical (through serve's deterministic encoding) to a
// single-node run of the same experiment.
func (c *Coordinator) RunJob(exp *sweep.Experiment) (*sweep.Result, error) {
	if err := exp.Validate(); err != nil {
		return nil, err
	}
	if exp.Fingerprint == "" {
		// Workers re-derive the canonical fingerprint from the spec and
		// refuse mismatches, so the coordinator must fold under the same
		// canonical identity even when the caller did not stamp one.
		if err := spec.Stamp(exp); err != nil {
			return nil, fmt.Errorf("cluster: stamping spec: %w", err)
		}
	}
	ctx := exp.Context
	if ctx == nil {
		ctx = context.Background()
	}
	fp := exp.JournalFingerprint()
	specJSON, err := spec.Canonical(exp)
	if err != nil {
		return nil, fmt.Errorf("cluster: canonicalizing spec: %w", err)
	}
	start := time.Now()

	// Checkpoint replay/create, mirroring sweep.Run.
	records := make(map[sweep.RepKey]sweep.RepRecord)
	var ckpt *sweep.CheckpointWriter
	if exp.Checkpoint != "" {
		if exp.Resume {
			resumed, validLen, found, err := sweep.LoadCheckpoint(exp.Checkpoint, fp)
			if err != nil {
				return nil, err
			}
			if found {
				records = resumed
				ckpt, err = sweep.OpenCheckpointAppend(exp.Checkpoint, validLen)
			} else {
				ckpt, err = sweep.CreateCheckpoint(exp.Checkpoint, fp)
			}
			if err != nil {
				return nil, err
			}
		} else {
			if ckpt, err = sweep.CreateCheckpoint(exp.Checkpoint, fp); err != nil {
				return nil, err
			}
		}
		defer ckpt.Close()
	}
	resumed := len(records)

	subjobs, err := exp.Subjobs(func(k sweep.RepKey) bool {
		_, ok := records[k]
		return ok
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, sj := range subjobs {
		total += len(sj.Reps)
	}

	g := &gather{
		c: c, exp: exp, fp: fp, ckpt: ckpt, total: total,
		records: records,
		done:    make(map[string]bool),
	}

	sem := make(chan struct{}, c.cfg.MaxInflight)
	var wg sync.WaitGroup
	var failMu sync.Mutex
	var failErr error
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	fail := func(err error) {
		failMu.Lock()
		if failErr == nil {
			failErr = err
			cancelRun() // one dead sub-job fails the attempt; stop the rest
		}
		failMu.Unlock()
	}

	for _, sj := range subjobs {
		wg.Add(1)
		go func(sj sweep.Subjob) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-runCtx.Done():
				return
			}
			if err := c.superviseSubjob(runCtx, g, specJSON, sj); err != nil {
				fail(err)
			}
		}(sj)
	}
	wg.Wait()
	if failErr != nil {
		return nil, failErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g.mu.Lock()
	ckptErr := g.ckptErr
	g.mu.Unlock()
	if ckptErr != nil {
		return nil, fmt.Errorf("cluster: writing checkpoint: %w", ckptErr)
	}
	return exp.Assemble(records, resumed, time.Since(start)), nil
}

// postResult is one sub-job call's outcome.
type postResult struct {
	resp SubjobResponse
	err  error
}

// superviseSubjob drives one sub-job to completion: lease a worker, post
// the call, and either fold the result or — on lease expiry or worker
// failure — re-dispatch to a different worker while the original call keeps
// running (its late result, if any, hits the duplicate-discard path).
func (c *Coordinator) superviseSubjob(ctx context.Context, g *gather, specJSON []byte, sj sweep.Subjob) error {
	key := sj.Key()
	prefer := c.adoptedAddr(g.fp, key)
	avoid := ""
	var lastErr error
	for attempt := 1; attempt <= c.cfg.SubjobRetries; attempt++ {
		if g.isDone(key) {
			return nil // a late delivery from an expired lease beat us to it
		}
		ws, err := c.pickWorker(ctx, prefer, avoid)
		prefer = ""
		if err != nil {
			return err
		}
		c.journalLease(fleetRecord{Op: fleetOpGrant, FP: g.fp, Key: key, Addr: ws.addr, Attempt: attempt})
		c.cfg.Metrics.Add("subjobs_dispatched", 1)

		// The call gets its own generous deadline, far past the lease: a
		// lease expiry re-dispatches but deliberately does not abort the
		// call, so a slow-but-alive worker still completes the sub-job.
		callCtx, cancelCall := context.WithTimeout(context.Background(), 20*c.cfg.LeaseTTL)
		resCh := make(chan postResult, 1)
		go func() {
			var resp SubjobResponse
			err := postJSON(callCtx, c.hc, baseURL(ws.addr)+"/v1/cluster/subjob", SubjobRequest{
				Fingerprint: g.fp, Spec: specJSON, Key: key, Subjob: sj,
			}, &resp)
			resCh <- postResult{resp: resp, err: err}
		}()

		lease := time.NewTimer(c.cfg.LeaseTTL)
		select {
		case res := <-resCh:
			lease.Stop()
			cancelCall()
			c.releaseLease(ws)
			if res.err == nil {
				if g.deliver(sj, key, res.resp.Records, res.resp.Cached) || g.isDone(key) {
					return nil
				}
				res.err = fmt.Errorf("cluster: worker %s returned a malformed record set for %s", ws.addr, key)
			}
			c.journalLease(fleetRecord{Op: fleetOpExpire, FP: g.fp, Key: key, Attempt: attempt})
			lastErr = res.err
			avoid = ws.addr
			c.cfg.Metrics.Add("subjobs_redispatched", 1)
			c.logf("cluster: sub-job %s attempt %d on %s failed: %v", key, attempt, ws.addr, res.err)

		case <-lease.C:
			// Lease expired: journal it, leave the call running, and hand
			// the sub-job to another worker. Whichever result lands first
			// wins; the loser is discarded and counted.
			c.journalLease(fleetRecord{Op: fleetOpExpire, FP: g.fp, Key: key, Attempt: attempt})
			c.cfg.Metrics.Add("leases_expired", 1)
			c.cfg.Metrics.Add("subjobs_redispatched", 1)
			c.logf("cluster: lease on sub-job %s expired at %s (attempt %d); re-dispatching", key, ws.addr, attempt)
			go func() {
				res := <-resCh
				cancelCall()
				c.releaseLease(ws)
				if res.err == nil {
					g.deliver(sj, key, res.resp.Records, res.resp.Cached)
				}
			}()
			lastErr = fmt.Errorf("cluster: lease expired on %s", ws.addr)
			avoid = ws.addr

		case <-ctx.Done():
			lease.Stop()
			cancelCall()
			c.releaseLease(ws)
			return ctx.Err()
		}
	}
	if g.isDone(key) {
		return nil
	}
	return fmt.Errorf("cluster: sub-job %s failed %d dispatch attempt(s): %w", key, c.cfg.SubjobRetries, lastErr)
}

// decodeBody decodes a JSON request body.
func decodeBody(r *http.Request, v any) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return fmt.Errorf("decoding request: %v", err)
	}
	return nil
}
