package cluster

// FuzzWireDecode hammers the fleet wire protocol's decode path with
// adversarial bytes: every inbound body the coordinator or a worker parses
// must decode or error cleanly — never panic — with allocation bounded by
// maxWireBody, and whatever survives decoding must flow through the
// gather-side validation (recordsMatch) without blowing up.

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"prioritystar/internal/sweep"
)

func FuzzWireDecode(f *testing.F) {
	// Valid documents for every wire shape, so mutations start near the
	// interesting surface.
	f.Add([]byte(`{"name":"w0","addr":"127.0.0.1:9","slots":2}`))
	f.Add([]byte(`{"id":"w0001","depth":3}`))
	f.Add([]byte(`{"fingerprint":"abc","spec":{"id":"x"},"key":"s0r0@1.2.3","subjob":{"s":0,"r":1,"reps":[0,1],"seeds":[7,9]}}`))
	f.Add([]byte(`{"records":[{"s":0,"r":1,"rep":0,"rcp":1.5,"bc":2,"uni":3,"hw":4,"lw":5,"au":0.5,"mdu":0.9,"du":[0.1,0.2]}],"cached":true}`))
	f.Add([]byte(`{"workers":[{"id":"w1","addr":"a:1","breaker":"open","breakerFails":2,"latencyEwmaMillis":12.5}]}`))
	// A truncated sub-job response — the exact shape a torn TCP stream or
	// chaosnet Truncate fault produces.
	f.Add([]byte(`{"records":[{"s":0,"r":1,"rep":0,"rc`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("\x00\xff\xfe garbage"))

	ref := sweep.Subjob{Scheme: 0, Rho: 1, Reps: []int{0, 1}, Seeds: []uint64{7, 9}}

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, dst := range []any{
			new(JoinRequest), new(HeartbeatRequest), new(SubjobRequest),
			new(SubjobResponse), new(WorkersResponse),
		} {
			r := httptest.NewRequest("POST", "/v1/cluster/subjob", bytes.NewReader(data))
			if err := decodeBody(r, dst); err != nil {
				continue
			}
			// Re-encoding whatever decoded must round-trip without panicking
			// (the coordinator journals and forwards these shapes).
			if _, err := json.Marshal(dst); err != nil {
				t.Fatalf("decoded value does not re-encode: %v", err)
			}
		}
		// Adversarial record sets through the fold validation: any mismatch
		// must be reported, never folded or panicked on.
		var resp SubjobResponse
		if json.Unmarshal(data, &resp) == nil {
			recordsMatch(ref, resp.Records)
		}
	})
}

// TestWireDecodeBounded pins the allocation bound: a body longer than
// maxWireBody decodes only its prefix, so a hostile Content-Length or an
// endless stream cannot balloon coordinator memory.
func TestWireDecodeBounded(t *testing.T) {
	// An endless stream of JSON that never terminates the document.
	r := httptest.NewRequest("POST", "/", &endlessBody{})
	var resp SubjobResponse
	if err := decodeBody(r, &resp); err == nil {
		t.Fatal("decodeBody accepted an unbounded body")
	}
}

// endlessBody yields valid-looking JSON forever.
type endlessBody struct{ n int64 }

func (e *endlessBody) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = ' '
	}
	if e.n == 0 && len(p) > 0 {
		p[0] = '['
	}
	e.n += int64(len(p))
	return len(p), nil
}
