package cluster

// The in-process chaos matrix: the chaosnet fault injector plugged into the
// coordinator's sub-job transport, driving the breaker / hedging / local-
// degradation machinery through partitions, one-way drops, truncation, and
// stragglers. The subprocess flavor (cmd/starsimd chaos_net_test.go) covers
// the same faults across real process boundaries.

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"prioritystar/internal/chaosnet"
	"prioritystar/internal/obs"
	"prioritystar/internal/sweep"
)

// tinySpec is a one-sub-job experiment: 1 scheme x 1 rho x 2 reps.
func tinySpec(seed int) []byte {
	return []byte(fmt.Sprintf(`{
		"id": "t-tiny", "dims": [4, 4], "rhos": [0.3],
		"broadcastFrac": 1, "schemes": [{"name": "priority-star"}],
		"warmup": 50, "measure": 300, "drain": 50, "reps": 2, "seed": %d
	}`, seed))
}

// foldedReps sums the replications visible in a result.
func foldedReps(res *sweep.Result) int {
	n := 0
	for _, s := range res.Series {
		for _, p := range s.Points {
			n += p.Reception.N() + p.FailedReps
		}
	}
	return n
}

// TestPartitionStormDegradesToLocal is the tentpole scenario in-process:
// every worker partitioned, the accepted job must complete through local
// execution with a result byte-identical to a single-node run, surface the
// degraded condition, and heal once the partition lifts.
func TestPartitionStormDegradesToLocal(t *testing.T) {
	local := decodeSpec(t, faultedSpec(61))
	res, err := local.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := resultSignature(t, res)

	metrics := &obs.MetricSet{}
	tr := chaosnet.New(1, nil)
	c, srv := startCoordinator(t, CoordinatorConfig{
		Heartbeat: 50 * time.Millisecond, LeaseTTL: 30 * time.Second,
		SubjobRetries: 3, DegradeAfter: 400 * time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: 3 * time.Second,
		Metrics: metrics, transport: tr,
	})
	workers := []*testWorker{startWorker(t, 1, nil), startWorker(t, 1, nil)}
	for i, tw := range workers {
		joinWorker(t, srv.URL, tw, fmt.Sprintf("w%d", i))
	}
	waitAlive(t, srv.URL, 2)

	// Cut the coordinator->worker path to every worker. Heartbeats use the
	// agents' own clients, so the roster keeps showing the workers alive —
	// exactly the one-way partition shape that used to wedge dispatch.
	for _, tw := range workers {
		tr.Partition(tw.addr)
	}

	fleetRes, err := c.RunJob(decodeSpec(t, faultedSpec(61)))
	if err != nil {
		t.Fatalf("partition storm failed the job instead of degrading: %v", err)
	}
	if got := resultSignature(t, fleetRes); got != want {
		t.Fatalf("degraded result diverges from single-node run:\n%s\nvs\n%s", got, want)
	}
	totalReps := int64(2 * 2 * 3)
	if got := metrics.Counter("cluster_reps_local"); got != totalReps {
		t.Fatalf("cluster_reps_local = %d, want %d", got, totalReps)
	}
	if metrics.Counter("subjobs_local") == 0 {
		t.Fatal("no sub-job ran locally")
	}
	for _, tw := range workers {
		if got := tw.w.Metrics().Counter("cluster_reps_simulated"); got != 0 {
			t.Fatalf("partitioned worker simulated %d reps", got)
		}
	}
	if got := metrics.Gauge("fleet_degraded"); got != 1 {
		t.Fatalf("fleet_degraded gauge = %v, want 1", got)
	}
	if !c.Degraded() {
		t.Fatal("coordinator does not report degraded during the storm")
	}
	if metrics.Counter("breaker_open_total") == 0 {
		t.Fatal("no breaker opened under a full partition")
	}
	// The roster surfaces the breaker state operators see via psctl.
	ws, err := NewClient(srv.URL).Workers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	openSeen := false
	for _, w := range ws {
		if w.Breaker == "open" {
			openSeen = true
		}
	}
	if !openSeen {
		t.Fatalf("roster shows no open breaker: %+v", ws)
	}
	if got, wantF := metrics.Counter("cluster_reps_folded"), metrics.Counter("cluster_reps_expected"); got != wantF {
		t.Fatalf("fold accounting: folded %d, expected %d", got, wantF)
	}

	// Heal. Once a breaker's cooldown admits a probe the coordinator stops
	// reporting degraded, and the next sub-job closes the circuit for real.
	for _, tw := range workers {
		tr.Heal(tw.addr)
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.Degraded() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if c.Degraded() {
		t.Fatal("coordinator still degraded after heal + cooldown")
	}
	localBefore := metrics.Counter("subjobs_local")
	if _, err := c.RunJob(decodeSpec(t, tinySpec(62))); err != nil {
		t.Fatal(err)
	}
	if got := metrics.Counter("subjobs_local"); got != localBefore {
		t.Fatalf("healed fleet still ran %d sub-job(s) locally", got-localBefore)
	}
	if got := metrics.Gauge("fleet_degraded"); got != 0 {
		t.Fatalf("fleet_degraded gauge = %v after heal, want 0", got)
	}
}

// TestTruncatedResponseRetriedNotFolded pins the corrupt-wire rule: a
// sub-job response torn mid-body must be retried, never folded, and the
// final result stays byte-identical.
func TestTruncatedResponseRetriedNotFolded(t *testing.T) {
	local := decodeSpec(t, tinySpec(71))
	res, err := local.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := resultSignature(t, res)

	metrics := &obs.MetricSet{}
	tr := chaosnet.New(3, nil)
	c, srv := startCoordinator(t, CoordinatorConfig{
		Heartbeat: 50 * time.Millisecond, LeaseTTL: 30 * time.Second,
		SubjobRetries: 4, Metrics: metrics, transport: tr,
	})
	tw := startWorker(t, 1, nil)
	joinWorker(t, srv.URL, tw, "torn")
	waitAlive(t, srv.URL, 1)

	tr.Set(tw.addr, chaosnet.Faults{Truncate: 1, Times: 1})
	fleetRes, err := c.RunJob(decodeSpec(t, tinySpec(71)))
	if err != nil {
		t.Fatal(err)
	}
	if got := resultSignature(t, fleetRes); got != want {
		t.Fatal("result after truncated response diverges from single-node run")
	}
	if got := foldedReps(fleetRes); got != 2 {
		t.Fatalf("folded %d reps, want exactly 2", got)
	}
	if got := metrics.Counter("subjobs_redispatched"); got < 1 {
		t.Fatalf("subjobs_redispatched = %d, want >= 1 (truncated call must retry)", got)
	}
	// The retry hits the worker's sub-job cache: the work happened once.
	if got := tw.w.Metrics().Counter("cluster_reps_simulated"); got != 2 {
		t.Fatalf("worker simulated %d reps, want 2", got)
	}
}

// TestCorruptResponseRetriedNotFolded: a bit-flipped body either fails JSON
// decoding or survives it as a malformed record set; both paths must score
// the attempt failed and retry, never fold garbage.
func TestCorruptResponseRetriedNotFolded(t *testing.T) {
	local := decodeSpec(t, tinySpec(72))
	res, err := local.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := resultSignature(t, res)

	metrics := &obs.MetricSet{}
	tr := chaosnet.New(5, nil)
	c, srv := startCoordinator(t, CoordinatorConfig{
		Heartbeat: 50 * time.Millisecond, LeaseTTL: 30 * time.Second,
		SubjobRetries: 4, Metrics: metrics, transport: tr,
	})
	tw := startWorker(t, 1, nil)
	joinWorker(t, srv.URL, tw, "corrupt")
	waitAlive(t, srv.URL, 1)

	tr.Set(tw.addr, chaosnet.Faults{Corrupt: 1, Times: 1})
	fleetRes, err := c.RunJob(decodeSpec(t, tinySpec(72)))
	if err != nil {
		t.Fatal(err)
	}
	if got := resultSignature(t, fleetRes); got != want {
		t.Fatal("result after corrupt response diverges from single-node run")
	}
	if got := foldedReps(fleetRes); got != 2 {
		t.Fatalf("folded %d reps, want exactly 2", got)
	}
}

// TestOneWayPartitionDuplicateDiscard: the response path drops while the
// request path works — the worker does the work, the coordinator never
// hears. The retry must be answered from the worker's content-addressed
// cache, not re-simulated.
func TestOneWayPartitionDuplicateDiscard(t *testing.T) {
	metrics := &obs.MetricSet{}
	tr := chaosnet.New(7, nil)
	c, srv := startCoordinator(t, CoordinatorConfig{
		Heartbeat: 50 * time.Millisecond, LeaseTTL: 30 * time.Second,
		SubjobRetries: 4, Metrics: metrics, transport: tr,
	})
	tw := startWorker(t, 1, nil)
	joinWorker(t, srv.URL, tw, "oneway")
	waitAlive(t, srv.URL, 1)

	tr.Set(tw.addr, chaosnet.Faults{DropResponse: 1, Times: 1})
	fleetRes, err := c.RunJob(decodeSpec(t, tinySpec(73)))
	if err != nil {
		t.Fatal(err)
	}
	if got := foldedReps(fleetRes); got != 2 {
		t.Fatalf("folded %d reps, want exactly 2", got)
	}
	if got := tw.w.Metrics().Counter("cluster_reps_simulated"); got != 2 {
		t.Fatalf("worker simulated %d reps, want 2 (retry must hit the cache)", got)
	}
	if got := metrics.Counter("subjob_cache_hits"); got != 1 {
		t.Fatalf("coordinator cache-hit responses = %d, want 1", got)
	}
}

// TestHedgedDispatchDiscardsLoser: a worker that turns into a straggler
// gets its outstanding sub-jobs speculatively re-dispatched at the observed
// latency quantile; the fast copy wins the fold, the slow original is
// discarded as a duplicate, and the rep accounting shows no double-fold.
func TestHedgedDispatchDiscardsLoser(t *testing.T) {
	metrics := &obs.MetricSet{}
	var slow atomic.Bool
	fast := startWorker(t, 2, nil)
	straggler := startWorker(t, 2, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if slow.Load() {
				time.Sleep(700 * time.Millisecond)
			}
			h.ServeHTTP(w, r)
		})
	})
	c, srv := startCoordinator(t, CoordinatorConfig{
		Heartbeat: 50 * time.Millisecond, LeaseTTL: 30 * time.Second,
		SubjobRetries: 4, BreakerThreshold: 100, Metrics: metrics,
	})
	joinWorker(t, srv.URL, fast, "fast")
	joinWorker(t, srv.URL, straggler, "strag")
	waitAlive(t, srv.URL, 2)

	// Warm the latency ring past hedgeMinSamples with healthy calls.
	for i := 0; i < 2; i++ {
		if _, err := c.RunJob(decodeSpec(t, faultedSpec(81))); err != nil {
			t.Fatal(err)
		}
	}
	if c.hedgeDelay() == 0 {
		t.Fatal("hedge delay still zero after warm-up jobs")
	}

	slow.Store(true)
	// Two-choice dispatch makes landing at least one primary on the
	// straggler overwhelmingly likely per job; iterate a few seeds to make
	// it certain.
	for seed := 82; seed <= 86 && metrics.Counter("chaos_hedges_total") == 0; seed++ {
		fleetRes, err := c.RunJob(decodeSpec(t, faultedSpec(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if got := foldedReps(fleetRes); got != 12 {
			t.Fatalf("folded %d reps, want exactly 12", got)
		}
	}
	if got := metrics.Counter("chaos_hedges_total"); got == 0 {
		t.Fatal("no hedge fired against a 700ms straggler with a 25ms+ hedge delay")
	}
	waitCounter(t, metrics, "hedge_wins", 1)
	// The stragglers' late results are discarded, not folded twice.
	waitCounter(t, metrics, "subjob_duplicates", 1)
	if got, want := metrics.Counter("cluster_reps_folded"), metrics.Counter("cluster_reps_expected"); got != want {
		t.Fatalf("double-fold: folded %d reps, expected %d", got, want)
	}
}

// TestSubjobTimeoutValidation: the configurable call timeout must not
// undercut the liveness cadence.
func TestSubjobTimeoutValidation(t *testing.T) {
	_, err := NewCoordinator(CoordinatorConfig{
		Heartbeat: 2 * time.Second, SubjobTimeout: time.Second,
	})
	if err == nil {
		t.Fatal("sub-second SubjobTimeout below heartbeat accepted")
	}
	c, err := NewCoordinator(CoordinatorConfig{LeaseTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got, want := c.cfg.SubjobTimeout, 20*30*time.Second; got != want {
		t.Fatalf("default SubjobTimeout = %v, want %v", got, want)
	}
}

// TestAgentJitterBackoff pins the rejoin-stampede fix over an injected
// clock: every retry delay is uniform in [0.5, 1.5) x the exponential base,
// the base caps at joinBackoffCap, and two agents with different seeds do
// not retry in lockstep.
func TestAgentJitterBackoff(t *testing.T) {
	recorded := make(chan time.Duration, 16)
	a := StartAgent(AgentConfig{
		Coordinator: "127.0.0.1:9", // nothing listens here
		Advertise:   "127.0.0.1:10",
		Name:        "jitter", Slots: 1, Logf: t.Logf,
		rnd: rand.New(rand.NewSource(7)),
		sleep: func(ctx context.Context, d time.Duration) bool {
			select {
			case recorded <- d:
				return true // injected clock: "sleep" completes instantly
			case <-ctx.Done():
				return false
			}
		},
	})
	defer a.Stop()

	var got []time.Duration
	base := joinBackoffBase
	for i := 0; i < 6; i++ {
		select {
		case d := <-recorded:
			lo := time.Duration(float64(base) * 0.5)
			hi := time.Duration(float64(base) * 1.5)
			if d < lo || d >= hi {
				t.Fatalf("retry %d delay %v outside jitter window [%v, %v)", i, d, lo, hi)
			}
			got = append(got, d)
		case <-time.After(10 * time.Second):
			t.Fatalf("agent stopped retrying after %d attempts", i)
		}
		if base *= 2; base > joinBackoffCap {
			base = joinBackoffCap
		}
	}

	// Same seed replays the same sequence (the fault schedule is the seed)...
	replay := rand.New(rand.NewSource(7))
	cur := joinBackoffBase
	for i, want := range got {
		d, next := jitteredBackoff(cur, replay)
		if d != want {
			t.Fatalf("retry %d: replay %v, agent %v", i, d, want)
		}
		cur = next
	}
	// ...and a different seed diverges, so healed partitions do not produce
	// synchronized rejoin waves.
	other := rand.New(rand.NewSource(8))
	cur = joinBackoffBase
	same := true
	for _, want := range got {
		d, next := jitteredBackoff(cur, other)
		if d != want {
			same = false
		}
		cur = next
	}
	if same {
		t.Fatal("two seeds produced identical backoff sequences")
	}
}
