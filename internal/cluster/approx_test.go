package cluster

// Approx-mode submissions must never reach the fleet: a surrogate-answered
// job consumes no coordinator lease, no worker slot, and no scatter/fold
// round-trip. The test wires a real coordinator + worker behind a serve
// daemon's RunJob hook and counts how often the hook fires.

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"prioritystar/internal/obs"
	"prioritystar/internal/serve"
	"prioritystar/internal/sweep"
)

// approxFamilySpec is a one-scheme sweep in a fixed interpolation family;
// only the rho grid and the serving mode vary between calls.
func approxFamilySpec(rhos, extra string) []byte {
	return []byte(fmt.Sprintf(`{
		"id": "t-fleet-approx", %s "dims": [4, 4], "rhos": [%s],
		"broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}],
		"warmup": 50, "measure": 400, "drain": 100,
		"reps": 2, "seed": 23
	}`, extra, rhos))
}

func TestApproxBypassesCoordinator(t *testing.T) {
	coord, srv := startCoordinator(t, CoordinatorConfig{
		Heartbeat: 50 * time.Millisecond, LeaseTTL: 30 * time.Second,
	})
	joinWorker(t, srv.URL, startWorker(t, 1, nil), "w0")
	waitAlive(t, srv.URL, 1)

	var scattered atomic.Int64
	metrics := &obs.MetricSet{}
	s, err := serve.New(serve.Config{
		Addr: "127.0.0.1:0", Workers: 2, QueueCap: 8,
		Metrics: metrics, Logf: t.Logf,
		RunJob: func(exp *sweep.Experiment) (*sweep.Result, error) {
			scattered.Add(1)
			return coord.RunJob(exp)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Shutdown(context.Background()) })

	ctx := context.Background()
	cl := serve.NewClient(bound)

	// The anchor sweep is exact work: it must scatter across the fleet.
	st, err := cl.SubmitJSON(ctx, approxFamilySpec("0.2, 0.4", ""))
	if err != nil {
		t.Fatal(err)
	}
	final, err := cl.Watch(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("anchor job ended %q: %s", final.State, final.Error)
	}
	if got := scattered.Load(); got != 1 {
		t.Fatalf("anchor sweep scattered %d times, want 1", got)
	}

	// The approx query inside the anchored neighborhood is answered at
	// admission: terminal immediately, no lease, no scatter.
	st2, err := cl.SubmitJSON(ctx, approxFamilySpec("0.3", `"mode": "approx", "approxTol": 2,`))
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != serve.StateDone || !st2.Approx {
		t.Fatalf("approx submission not surrogate-answered: %+v", st2)
	}
	if got := scattered.Load(); got != 1 {
		t.Errorf("approx submission reached the coordinator: RunJob fired %d times, want 1", got)
	}
	if got := metrics.Counter("surrogate_hits"); got != 1 {
		t.Errorf("surrogate_hits = %d, want 1", got)
	}
	if got := metrics.Counter("fleet_leases_granted"); got != 0 {
		// The coordinator shares no MetricSet with the daemon here, so this
		// guards against the hook being bypassed in the other direction.
		t.Errorf("daemon metric set grew fleet counters: leases %d", got)
	}
}
