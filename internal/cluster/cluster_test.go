package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prioritystar/internal/obs"
	"prioritystar/internal/spec"
	"prioritystar/internal/sweep"
)

// faultedSpec is a small two-scheme, two-rho, faulted sweep: 2 schemes x
// 2 rhos x 3 reps = 12 replications in 4 sub-jobs.
func faultedSpec(seed int) []byte {
	return []byte(fmt.Sprintf(`{
		"id": "t-fleet", "dims": [4, 4], "rhos": [0.3, 0.6],
		"broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}, {"name": "fcfs-direct"}],
		"warmup": 100, "measure": 600, "drain": 100,
		"reps": 3, "seed": %d,
		"faults": "perm:2,seed:7"
	}`, seed))
}

func decodeSpec(t *testing.T, doc []byte) *sweep.Experiment {
	t.Helper()
	exp, err := spec.Decode(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Stamp(exp); err != nil {
		t.Fatal(err)
	}
	return exp
}

// resultSignature renders every externally observable bit of a result —
// the exact float bit patterns of all aggregates plus the counters — so two
// results compare byte-identically without caring about Elapsed.
func resultSignature(t *testing.T, res *sweep.Result) string {
	t.Helper()
	var b strings.Builder
	for _, s := range res.Series {
		fmt.Fprintf(&b, "series %s\n", s.Scheme.Name)
		for _, p := range s.Points {
			fmt.Fprintf(&b, " rho=%x", p.Rho)
			fmt.Fprintf(&b, " rcp=%x/%x", p.Reception.Mean(), p.Reception.HalfWidth95())
			fmt.Fprintf(&b, " bc=%x/%x", p.Broadcast.Mean(), p.Broadcast.HalfWidth95())
			fmt.Fprintf(&b, " uni=%x/%x", p.Unicast.Mean(), p.Unicast.HalfWidth95())
			fmt.Fprintf(&b, " hw=%x/%x", p.HighWait.Mean(), p.HighWait.HalfWidth95())
			fmt.Fprintf(&b, " lw=%x/%x", p.LowWait.Mean(), p.LowWait.HalfWidth95())
			fmt.Fprintf(&b, " au=%x/%x", p.AvgUtil.Mean(), p.AvgUtil.HalfWidth95())
			fmt.Fprintf(&b, " mdu=%x/%x", p.MaxDimUtil.Mean(), p.MaxDimUtil.HalfWidth95())
			for _, du := range p.DimUtil {
				fmt.Fprintf(&b, " du=%x", du.Mean())
			}
			fmt.Fprintf(&b, " gb=%d ib=%d unstable=%d diverged=%d failed=%d err=%q\n",
				p.GeneratedBroadcasts, p.IncompleteBroadcasts,
				p.UnstableReps, p.DivergedReps, p.FailedReps, p.Error)
		}
	}
	return b.String()
}

// testWorker is one in-process worker daemon: executor + HTTP listener.
type testWorker struct {
	w    *Worker
	srv  *httptest.Server
	addr string
}

// startWorker boots a worker on its own listener, optionally wrapping the
// handler (for slow/hanging fault injection).
func startWorker(t *testing.T, slots int, wrap func(http.Handler) http.Handler) *testWorker {
	t.Helper()
	w := NewWorker(WorkerConfig{Slots: slots, Metrics: &obs.MetricSet{}, Logf: t.Logf})
	mux := http.NewServeMux()
	w.Mount(mux)
	var h http.Handler = mux
	if wrap != nil {
		h = wrap(mux)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return &testWorker{w: w, srv: srv, addr: strings.TrimPrefix(srv.URL, "http://")}
}

// startCoordinator boots a coordinator on its own listener.
func startCoordinator(t *testing.T, cfg CoordinatorConfig) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &obs.MetricSet{}
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	mux := http.NewServeMux()
	c.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return c, srv
}

// joinWorker registers a worker with the coordinator via a real agent and
// returns it (stopped at cleanup).
func joinWorker(t *testing.T, coordURL string, tw *testWorker, name string) *Agent {
	t.Helper()
	a := StartAgent(AgentConfig{
		Coordinator: coordURL, Advertise: tw.addr, Name: name,
		Slots: 1, Depth: tw.w.Depth, Logf: t.Logf,
	})
	t.Cleanup(a.Stop)
	return a
}

// waitAlive polls the roster until n workers are alive.
func waitAlive(t *testing.T, coordURL string, n int) {
	t.Helper()
	cl := NewClient(coordURL)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ws, err := cl.Workers(context.Background())
		if err == nil {
			alive := 0
			for _, w := range ws {
				if w.Alive {
					alive++
				}
			}
			if alive >= n {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("never saw %d live workers", n)
}

// waitCounter polls a metric counter until it reaches want.
func waitCounter(t *testing.T, m *obs.MetricSet, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m.Counter(name) >= want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("counter %s stuck at %d, want >= %d", name, m.Counter(name), want)
}

// TestFleetByteIdentical is the differential test behind the fold
// invariant: a faulted sweep scattered over three workers produces a result
// bit-identical to a sequential single-node run, and a second fleet run of
// the same experiment is answered entirely from the worker caches with
// zero re-simulated replications.
func TestFleetByteIdentical(t *testing.T) {
	local := decodeSpec(t, faultedSpec(11))
	res, err := local.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := resultSignature(t, res)

	c, srv := startCoordinator(t, CoordinatorConfig{
		Heartbeat: 50 * time.Millisecond, LeaseTTL: 30 * time.Second,
		JournalPath: filepath.Join(t.TempDir(), "fleet.jsonl"),
	})
	workers := []*testWorker{
		startWorker(t, 1, nil),
		startWorker(t, 1, nil),
		startWorker(t, 1, nil),
	}
	for i, tw := range workers {
		joinWorker(t, srv.URL, tw, fmt.Sprintf("w%d", i))
	}
	waitAlive(t, srv.URL, 3)

	fleetRes, err := c.RunJob(decodeSpec(t, faultedSpec(11)))
	if err != nil {
		t.Fatal(err)
	}
	if got := resultSignature(t, fleetRes); got != want {
		t.Fatalf("fleet result diverges from single-node run:\nfleet:\n%s\nlocal:\n%s", got, want)
	}
	if fleetRes.ResumedReps != 0 {
		t.Fatalf("fresh fleet run claims %d resumed reps", fleetRes.ResumedReps)
	}

	simulated := func() (n int64) {
		for _, tw := range workers {
			n += tw.w.Metrics().Counter("cluster_reps_simulated")
		}
		return n
	}
	served := func() (n int64) {
		for _, tw := range workers {
			n += tw.w.Metrics().Counter("subjobs_served")
		}
		return n
	}
	totalReps := int64(2 * 2 * 3)
	if got := simulated(); got != totalReps {
		t.Fatalf("workers simulated %d reps, want %d", got, totalReps)
	}
	if served() == 0 {
		t.Fatal("no worker served a sub-job")
	}

	// Same experiment again: byte-identical again (a sub-job landing on
	// the worker that already ran it is a cache hit; one landing elsewhere
	// re-simulates to the same bits).
	again, err := c.RunJob(decodeSpec(t, faultedSpec(11)))
	if err != nil {
		t.Fatal(err)
	}
	if got := resultSignature(t, again); got != want {
		t.Fatal("repeated fleet run diverges from single-node run")
	}
}

// TestWorkerCacheAnswersRerun: with a single worker, re-running the same
// experiment is answered entirely from the content-addressed sub-job cache
// — zero re-simulated replications.
func TestWorkerCacheAnswersRerun(t *testing.T) {
	c, srv := startCoordinator(t, CoordinatorConfig{
		Heartbeat: 50 * time.Millisecond, LeaseTTL: 30 * time.Second,
	})
	tw := startWorker(t, 2, nil)
	joinWorker(t, srv.URL, tw, "only")
	waitAlive(t, srv.URL, 1)

	first, err := c.RunJob(decodeSpec(t, faultedSpec(11)))
	if err != nil {
		t.Fatal(err)
	}
	before := tw.w.Metrics().Counter("cluster_reps_simulated")
	again, err := c.RunJob(decodeSpec(t, faultedSpec(11)))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultSignature(t, again), resultSignature(t, first); got != want {
		t.Fatal("cached fleet run diverges from first run")
	}
	if got := tw.w.Metrics().Counter("cluster_reps_simulated"); got != before {
		t.Fatalf("re-run re-simulated %d reps; want pure cache hits", got-before)
	}
	if c.Metrics().Counter("subjob_cache_hits") == 0 {
		t.Fatal("coordinator saw no cache-hit responses")
	}
}

// TestLeaseExpiryLateResult pins the duplicate-discard rule (satellite 3):
// a worker that finishes a sub-job after its lease expired and the sub-job
// was re-dispatched gets its late result discarded — the coordinator folds
// exactly one result per sub-job and counts the duplicate.
func TestLeaseExpiryLateResult(t *testing.T) {
	metrics := &obs.MetricSet{}
	c, srv := startCoordinator(t, CoordinatorConfig{
		Heartbeat: 50 * time.Millisecond, LeaseTTL: 300 * time.Millisecond,
		SubjobRetries: 5, Metrics: metrics,
	})

	// Worker A answers every sub-job, but only after well past the lease.
	slow := startWorker(t, 1, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(1200 * time.Millisecond)
			h.ServeHTTP(w, r)
		})
	})
	joinWorker(t, srv.URL, slow, "slow")
	waitAlive(t, srv.URL, 1)

	// One-sub-job experiment: 1 scheme x 1 rho x 2 reps.
	exp := decodeSpec(t, []byte(`{
		"id": "t-late", "dims": [4, 4], "rhos": [0.3],
		"broadcastFrac": 1, "schemes": [{"name": "priority-star"}],
		"warmup": 50, "measure": 300, "drain": 50, "reps": 2, "seed": 21
	}`))
	totalReps := 2

	done := make(chan error, 1)
	var fleetRes *sweep.Result
	go func() {
		var err error
		fleetRes, err = c.RunJob(exp)
		done <- err
	}()

	// Let the first dispatch land on the slow worker and its lease expire,
	// then bring up a fast worker for the re-dispatch.
	waitCounter(t, metrics, "leases_expired", 1)
	fast := startWorker(t, 1, nil)
	joinWorker(t, srv.URL, fast, "fast")

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	reps := 0
	for _, s := range fleetRes.Series {
		for _, p := range s.Points {
			reps += p.Reception.N() + p.FailedReps
		}
	}
	if reps != totalReps {
		t.Fatalf("folded %d reps, want exactly %d", reps, totalReps)
	}
	if fast.w.Metrics().Counter("subjobs_served") == 0 {
		t.Fatal("fast worker never served the re-dispatched sub-job")
	}

	// The slow worker eventually finishes too; its late result must be
	// discarded and counted, not folded.
	waitCounter(t, metrics, "subjob_duplicates", 1)
	if got := metrics.Counter("subjob_duplicates"); got != 1 {
		t.Fatalf("subjob_duplicates = %d, want 1", got)
	}
	if got := metrics.Counter("leases_expired"); got < 1 {
		t.Fatalf("leases_expired = %d, want >= 1", got)
	}
}

// TestHungWorkerRedispatch: a worker that accepts sub-jobs and never
// answers must not wedge the sweep — leases expire and healthy peers do the
// work.
func TestHungWorkerRedispatch(t *testing.T) {
	c, srv := startCoordinator(t, CoordinatorConfig{
		Heartbeat: 50 * time.Millisecond, LeaseTTL: 250 * time.Millisecond,
		SubjobRetries: 6,
	})
	var hungCalls atomic.Int64
	hang := make(chan struct{})
	var release sync.Once
	t.Cleanup(func() { release.Do(func() { close(hang) }) })
	hungSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hungCalls.Add(1)
		// Drain the body so the server can detect a client disconnect.
		io.Copy(io.Discard, r.Body)
		select {
		case <-hang:
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(hungSrv.Close)
	hungAddr := strings.TrimPrefix(hungSrv.URL, "http://")
	hungAgent := StartAgent(AgentConfig{
		Coordinator: srv.URL, Advertise: hungAddr, Name: "hung", Slots: 1, Logf: t.Logf,
	})
	t.Cleanup(hungAgent.Stop)
	good := startWorker(t, 2, nil)
	joinWorker(t, srv.URL, good, "good")
	waitAlive(t, srv.URL, 2)

	exp := decodeSpec(t, []byte(`{
		"id": "t-hung", "dims": [4, 4], "rhos": [0.3, 0.6],
		"broadcastFrac": 1, "schemes": [{"name": "priority-star"}],
		"warmup": 50, "measure": 300, "drain": 50, "reps": 2, "seed": 33
	}`))
	res, err := c.RunJob(exp)
	release.Do(func() { close(hang) }) // unwedge the stub before cleanup
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.Reception.N()+p.FailedReps != 2 {
				t.Fatalf("rho %g folded %d reps, want 2", p.Rho, p.Reception.N())
			}
		}
	}
	// The good worker did all the work, whatever subset the hung one ate.
	if got := good.w.Metrics().Counter("cluster_reps_simulated"); got != 4 {
		t.Fatalf("good worker simulated %d reps, want 4", got)
	}
}

// TestAdoptedLeasePinsWorker: a restarted coordinator replays its lease
// journal and pins the first re-dispatch of every pending sub-job to the
// worker that already held it — whose cache answers without re-simulating.
func TestAdoptedLeasePinsWorker(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "fleet.jsonl")
	exp := decodeSpec(t, faultedSpec(44))
	fp := exp.JournalFingerprint()
	subjobs, err := exp.Subjobs(func(sweep.RepKey) bool { return false })
	if err != nil {
		t.Fatal(err)
	}

	// A pre-crash coordinator granted every sub-job to worker A.
	workerA := startWorker(t, 1, nil)
	workerB := startWorker(t, 1, nil)
	jnl, _, _, err := openFleetJournal(jpath, "test-engine", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	for _, sj := range subjobs {
		if err := jnl.append(fleetRecord{Op: fleetOpGrant, FP: fp, Key: sj.Key(), Addr: workerA.addr}); err != nil {
			t.Fatal(err)
		}
	}
	if err := jnl.close(); err != nil {
		t.Fatal(err)
	}

	// The restarted coordinator re-adopts the leases...
	metrics := &obs.MetricSet{}
	c, srv := startCoordinator(t, CoordinatorConfig{
		Heartbeat: 50 * time.Millisecond, LeaseTTL: 30 * time.Second,
		JournalPath: jpath, Metrics: metrics, engine: "test-engine",
	})
	if got := metrics.Counter("leases_adopted"); got != int64(len(subjobs)) {
		t.Fatalf("leases_adopted = %d, want %d", got, len(subjobs))
	}
	joinWorker(t, srv.URL, workerA, "a")
	joinWorker(t, srv.URL, workerB, "b")
	waitAlive(t, srv.URL, 2)

	// ...and every sub-job goes back to worker A despite B being idle.
	if _, err := c.RunJob(decodeSpec(t, faultedSpec(44))); err != nil {
		t.Fatal(err)
	}
	if got := workerB.w.Metrics().Counter("subjobs_served"); got != 0 {
		t.Fatalf("worker B served %d sub-jobs; adoption should pin to A", got)
	}
	if got := workerA.w.Metrics().Counter("subjobs_served"); got != int64(len(subjobs)) {
		t.Fatalf("worker A served %d sub-jobs, want %d", got, len(subjobs))
	}
}

// TestFleetJournalReplay exercises the lease journal's replay, lenient
// corruption handling, and compaction.
func TestFleetJournalReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.jsonl")

	jnl, adopted, skipped, err := openFleetJournal(path, "e1", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(adopted) != 0 || skipped != 0 {
		t.Fatalf("fresh journal: adopted=%d skipped=%d", len(adopted), skipped)
	}
	appendRec := func(rec fleetRecord) {
		t.Helper()
		if err := jnl.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	appendRec(fleetRecord{Op: fleetOpGrant, FP: "ps1-x", Key: "s0r0@0.1", Addr: "h1:1"})
	appendRec(fleetRecord{Op: fleetOpGrant, FP: "ps1-x", Key: "s0r1@0.1", Addr: "h2:2"})
	appendRec(fleetRecord{Op: fleetOpGrant, FP: "ps1-x", Key: "s1r0@0.1", Addr: "h1:1"})
	appendRec(fleetRecord{Op: fleetOpDone, FP: "ps1-x", Key: "s0r0@0.1"})
	appendRec(fleetRecord{Op: fleetOpExpire, FP: "ps1-x", Key: "s1r0@0.1"})
	if err := jnl.close(); err != nil {
		t.Fatal(err)
	}

	jnl, adopted, _, err = openFleetJournal(path, "e1", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(adopted) != 1 || adopted[leaseKey("ps1-x", "s0r1@0.1")] != "h2:2" {
		t.Fatalf("replay adopted %v, want only s0r1@0.1 -> h2:2", adopted)
	}
	// Compaction dropped the resolved records: a second replay of the
	// now-compacted file sees the same single grant.
	if err := jnl.close(); err != nil {
		t.Fatal(err)
	}
	jnl, adopted, skipped, err = openFleetJournal(path, "e1", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(adopted) != 1 || skipped != 0 {
		t.Fatalf("compacted replay: adopted=%d skipped=%d", len(adopted), skipped)
	}
	if err := jnl.close(); err != nil {
		t.Fatal(err)
	}

	// A different engine's journal is discarded, not trusted.
	jnl, adopted, _, err = openFleetJournal(path, "e2", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(adopted) != 0 {
		t.Fatalf("cross-engine replay adopted %v, want none", adopted)
	}
	if err := jnl.close(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerRejectsSkew: a worker whose engine derives a different
// fingerprint refuses the sub-job with 409 rather than contributing
// records to a fold it cannot honor.
func TestWorkerRejectsSkew(t *testing.T) {
	tw := startWorker(t, 1, nil)
	exp := decodeSpec(t, faultedSpec(55))
	doc, err := spec.Canonical(exp)
	if err != nil {
		t.Fatal(err)
	}
	subjobs, err := exp.Subjobs(func(sweep.RepKey) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	var resp SubjobResponse
	err = postJSON(context.Background(), &http.Client{}, tw.srv.URL+"/v1/cluster/subjob", SubjobRequest{
		Fingerprint: "ps1-deadbeef", Spec: doc, Key: subjobs[0].Key(), Subjob: subjobs[0],
	}, &resp)
	var se *StatusError
	if !strings.Contains(fmt.Sprint(err), "fingerprint mismatch") {
		t.Fatalf("want fingerprint-mismatch error, got %v", err)
	}
	if !errors.As(err, &se) || se.Code != http.StatusConflict {
		t.Fatalf("want 409, got %v", err)
	}
	if got := tw.w.Metrics().Counter("subjobs_rejected_skew"); got != 1 {
		t.Fatalf("subjobs_rejected_skew = %d, want 1", got)
	}
}
