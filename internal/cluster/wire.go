package cluster

// The fleet wire protocol, all JSON over the daemon's existing HTTP
// listener (mounted via serve.Server.HandleFunc):
//
//	POST /v1/cluster/join      worker -> coordinator: register, get an ID
//	POST /v1/cluster/heartbeat worker -> coordinator: liveness + queue depth
//	GET  /v1/cluster/workers   operator (psctl workers): fleet roster
//	POST /v1/cluster/subjob    coordinator -> worker: execute one sub-job
//
// A sub-job request carries the experiment's canonical spec document plus
// the sub-job's (scheme, rho, reps, seeds) indices. The worker re-derives
// the fingerprint from the spec with its own engine and refuses (409) when
// it disagrees with the coordinator's — a version-skewed worker must never
// contribute records to a fold that claims a fingerprint it cannot honor.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"prioritystar/internal/sweep"
)

// JoinRequest registers a worker with the coordinator.
type JoinRequest struct {
	Name string `json:"name"`
	// Addr is the worker's advertised base address ("host:port") the
	// coordinator dials sub-jobs to.
	Addr string `json:"addr"`
	// Slots is how many sub-jobs the worker runs concurrently.
	Slots int `json:"slots"`
}

// JoinResponse assigns the worker its ID and the fleet cadence.
type JoinResponse struct {
	ID string `json:"id"`
	// HeartbeatMillis is how often the worker must heartbeat.
	HeartbeatMillis int64 `json:"heartbeatMillis"`
	// LeaseTTLMillis is how long the coordinator waits for a sub-job before
	// re-dispatching it (informational for the worker).
	LeaseTTLMillis int64 `json:"leaseTTLMillis"`
}

// HeartbeatRequest reports liveness and load.
type HeartbeatRequest struct {
	ID string `json:"id"`
	// Depth is the worker's current sub-job backlog (queued + running) —
	// the load signal the coordinator's two-choice dispatch samples.
	Depth int `json:"depth"`
}

// WorkerInfo is one roster entry of GET /v1/cluster/workers.
type WorkerInfo struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	Addr  string `json:"addr"`
	Slots int    `json:"slots"`
	Depth int    `json:"depth"`
	// Leases is the coordinator-side count of sub-jobs currently leased to
	// this worker.
	Leases int `json:"leases"`
	Alive  bool `json:"alive"`
	// LastSeenMillisAgo is how long ago the last heartbeat (or join)
	// arrived.
	LastSeenMillisAgo int64 `json:"lastSeenMillisAgo"`
	// Breaker is the dispatch circuit-breaker state for this worker's
	// address: "closed", "open", or "half-open".
	Breaker string `json:"breaker,omitempty"`
	// BreakerFails is the current consecutive hard-failure streak.
	BreakerFails int `json:"breakerFails,omitempty"`
	// LatencyEWMAMillis is the breaker's EWMA of successful sub-job call
	// latency toward this worker, in milliseconds (0 until observed).
	LatencyEWMAMillis float64 `json:"latencyEwmaMillis,omitempty"`
}

// WorkersResponse is the fleet roster.
type WorkersResponse struct {
	Workers []WorkerInfo `json:"workers"`
}

// SubjobRequest asks a worker to execute one sub-job.
type SubjobRequest struct {
	// Fingerprint is the experiment's canonical identity; the worker
	// recomputes it from Spec and must agree.
	Fingerprint string `json:"fingerprint"`
	// Spec is the canonical spec document (spec.Canonical).
	Spec json.RawMessage `json:"spec"`
	// Key is the sub-job's stable name within the experiment
	// (sweep.Subjob.Key), used for worker-side result caching.
	Key    string       `json:"key"`
	Subjob sweep.Subjob `json:"subjob"`
}

// SubjobResponse carries the sub-job's replication records.
type SubjobResponse struct {
	Records []sweep.RepRecord `json:"records"`
	// Cached marks a response served from the worker's content-addressed
	// sub-job cache without re-simulating.
	Cached bool `json:"cached,omitempty"`
}

// errorDoc mirrors the serve layer's JSON error body.
type errorDoc struct {
	Error string `json:"error"`
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// Mux is the route surface the coordinator and worker mount their handlers
// on; *http.ServeMux and serve.Server both satisfy it.
type Mux interface {
	HandleFunc(pattern string, handler func(http.ResponseWriter, *http.Request))
}

// baseURL normalizes "host:port" to "http://host:port".
func baseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}

// postJSON posts a JSON body and decodes a JSON response into out. A non-2xx
// status is returned as an error carrying the server's error document.
func postJSON(ctx context.Context, hc *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var ed errorDoc
		if json.Unmarshal(raw, &ed) == nil && ed.Error != "" {
			return &StatusError{Code: resp.StatusCode, Msg: ed.Error}
		}
		return &StatusError{Code: resp.StatusCode, Msg: strings.TrimSpace(string(raw))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// StatusError is a non-2xx fleet API response.
type StatusError struct {
	Code int
	Msg  string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("cluster: HTTP %d: %s", e.Code, e.Msg)
}

// Client is the operator-facing fleet API client (psctl workers).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the coordinator at addr ("host:port" or a
// base URL).
func NewClient(addr string) *Client {
	return &Client{base: baseURL(addr), hc: &http.Client{Timeout: 10 * time.Second}}
}

// Workers fetches the fleet roster.
func (c *Client) Workers(ctx context.Context) ([]WorkerInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/cluster/workers", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Code: resp.StatusCode, Msg: strings.TrimSpace(string(raw))}
	}
	var wr WorkersResponse
	if err := json.Unmarshal(raw, &wr); err != nil {
		return nil, err
	}
	return wr.Workers, nil
}
