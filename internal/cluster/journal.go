package cluster

// The coordinator's lease journal ("psfleet1"), a sibling of the daemon's
// job WAL built on the same JSONL machinery: every sub-job lease grant,
// completion, and expiry is appended as it happens. Replay on restart
// yields the in-flight leases a crashed coordinator left behind — keyed by
// (experiment fingerprint, sub-job key) and remembering which worker
// address held each lease — so a restarted coordinator re-adopts them: the
// re-dispatch of a pending sub-job prefers the worker that was already
// running it, whose content-addressed sub-job cache answers instantly if
// the work finished while the coordinator was down. That preference is what
// turns a coordinator crash into zero re-simulated replications.
//
// Like the job WAL, the journal is compacted on every replay (temp file +
// rename) down to the still-pending grants, and the header carries the
// engine version: leases journaled by a different engine name work this
// engine would not reproduce, so they are discarded.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"prioritystar/internal/journal"
)

// fleetMagic identifies coordinator lease journals.
const fleetMagic = "psfleet1"

// Lease journal operations.
const (
	fleetOpGrant  = "grant"
	fleetOpDone   = "done"
	fleetOpExpire = "expire"
)

// fleetRecord is one lease-journal line.
type fleetRecord struct {
	Op string `json:"op"`
	// FP and Key content-address the sub-job across coordinator restarts.
	FP  string `json:"fp"`
	Key string `json:"key"`
	// Addr is the advertised address of the worker holding the lease —
	// the stable worker identity (IDs are minted per join and do not
	// survive a coordinator restart).
	Addr    string `json:"addr,omitempty"`
	Attempt int    `json:"n,omitempty"`
	Time    string `json:"time,omitempty"`
}

// leaseKey joins the content address of one sub-job.
func leaseKey(fp, key string) string { return fp + "|" + key }

// fleetJournal serializes appends from the dispatch goroutines.
type fleetJournal struct {
	mu sync.Mutex
	w  *journal.Writer
}

func (f *fleetJournal) append(rec fleetRecord) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.w == nil {
		return nil
	}
	return f.w.Append(rec)
}

func (f *fleetJournal) close() error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.w == nil {
		return nil
	}
	err := f.w.Close()
	f.w = nil
	return err
}

// openFleetJournal replays (leniently) and compacts the lease journal at
// path. adopted maps leaseKey(fp, key) -> worker address for every grant
// that never reached done or expire; skipped counts corrupt records dropped
// by the lenient load.
func openFleetJournal(path, engine string, logf func(string, ...any)) (f *fleetJournal, adopted map[string]string, skipped int, err error) {
	adopted = make(map[string]string)
	_, found, skipped, err := journal.LoadLenient(path, fleetMagic, engine, func(line []byte) error {
		var rec fleetRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return err
		}
		if rec.FP == "" || rec.Key == "" {
			return fmt.Errorf("cluster: lease record without fp/key")
		}
		k := leaseKey(rec.FP, rec.Key)
		switch rec.Op {
		case fleetOpGrant:
			adopted[k] = rec.Addr
		case fleetOpDone, fleetOpExpire:
			delete(adopted, k)
		default:
			return fmt.Errorf("cluster: unknown lease op %q", rec.Op)
		}
		return nil
	})
	var fpErr *journal.ErrFingerprint
	if errors.As(err, &fpErr) {
		if logf != nil {
			logf("cluster: lease journal %s was written by engine %q; starting fresh", path, fpErr.Got)
		}
		adopted = make(map[string]string)
		found = false
		err = nil
	}
	if err != nil {
		return nil, nil, 0, err
	}
	_ = found
	if skipped > 0 && logf != nil {
		logf("cluster: lease journal %s: skipped %d corrupt record(s)", path, skipped)
	}

	// Compact down to the pending grants through a temp file + rename, so a
	// crash mid-compaction keeps the old journal.
	tmp := path + ".tmp"
	jw, err := journal.Create(tmp, fleetMagic, engine)
	if err != nil {
		return nil, nil, 0, err
	}
	for k, addr := range adopted {
		fp, key, ok := splitLeaseKey(k)
		if !ok {
			continue
		}
		if err := jw.Append(fleetRecord{Op: fleetOpGrant, FP: fp, Key: key, Addr: addr}); err != nil {
			jw.Close()
			return nil, nil, 0, err
		}
	}
	if err := jw.Close(); err != nil {
		return nil, nil, 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, nil, 0, fmt.Errorf("cluster: compacting lease journal: %w", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, nil, 0, err
	}
	jw, err = journal.OpenAppend(path, fi.Size())
	if err != nil {
		return nil, nil, 0, err
	}
	return &fleetJournal{w: jw}, adopted, skipped, nil
}

// splitLeaseKey undoes leaseKey at the first separator. Fingerprints are
// "ps1-<hex>" and never contain '|'.
func splitLeaseKey(k string) (fp, key string, ok bool) {
	for i := 0; i < len(k); i++ {
		if k[i] == '|' {
			return k[:i], k[i+1:], true
		}
	}
	return "", "", false
}
