package cluster

// Per-worker circuit breakers. The coordinator keeps one breaker per worker
// *address* (not per registration ID), so a worker that flaps — partitioned,
// killed, rejoined — does not reset its own health score by rejoining: under
// a one-way partition the worker's join/heartbeat path may be perfectly
// healthy while the coordinator->worker dispatch path is dead, and a join
// must not launder that. Recovery goes exclusively through the half-open
// probe: after a cooldown the breaker admits exactly one real sub-job, and
// only that sub-job's success closes the circuit.
//
// State machine:
//
//	closed ──(threshold consecutive hard failures,
//	          or threshold consecutive pathologically slow calls)──▶ open
//	open ──(cooldown elapsed)──▶ half-open, one probe admitted
//	half-open ──(probe succeeds)──▶ closed
//	half-open ──(probe fails)──▶ open (cooldown restarts)
//
// Health scoring is consecutive-failure plus latency-EWMA driven: the
// breaker keeps an EWMA of successful call latencies, and a success that is
// both absolutely slow (> slowFloor) and far beyond the worker's own EWMA
// (> slowFactor x) counts as a "slow strike" instead of resetting the
// failure streak — a worker on a trickling link fails its way open even
// though every call technically completes.

import (
	"sync"
	"time"
)

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

const (
	// ewmaAlpha weights new latency samples into the EWMA.
	ewmaAlpha = 0.2
	// slowFactor and slowFloor define a pathologically slow success: beyond
	// slowFactor x this worker's own EWMA *and* slower than slowFloor in
	// absolute terms (so a cold 2ms->20ms jump is not a strike).
	slowFactor = 6.0
	slowFloor  = 500 * time.Millisecond
)

// gateResult is a breaker's answer to "may I dispatch to this worker now?".
type gateResult int

const (
	// gateClosed: healthy, dispatch freely.
	gateClosed gateResult = iota
	// gateProbe: dispatch allowed as the single half-open probe; the caller
	// must call beginProbe if it actually dispatches.
	gateProbe
	// gateBlocked: no dispatch.
	gateBlocked
)

// breaker is one worker address's dispatch health. Zero value is not
// usable; build with newBreaker.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	fails    int  // consecutive hard failures
	slow     int  // consecutive slow-strike successes
	probing  bool // a half-open probe is in flight
	openedAt time.Time
	ewmaMs   float64 // EWMA of successful call latency, milliseconds
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// gate reports whether a dispatch may go to this worker right now. It never
// mutates state: a caller that surveys several workers and picks one must
// confirm a gateProbe pick with beginProbe.
func (b *breaker) gate(now time.Time) gateResult {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			return gateProbe
		}
		return gateBlocked
	case breakerHalfOpen:
		if b.probing {
			return gateBlocked
		}
		return gateProbe
	default:
		return gateClosed
	}
}

// beginProbe consumes the half-open probe slot; call only after gate
// returned gateProbe and the dispatch is really happening.
func (b *breaker) beginProbe() {
	b.mu.Lock()
	b.state = breakerHalfOpen
	b.probing = true
	b.mu.Unlock()
}

// success records a completed call and its latency. It returns the circuit
// to closed unless the call was a slow strike that tripped the threshold.
func (b *breaker) success(now time.Time, latency time.Duration) {
	ms := float64(latency) / float64(time.Millisecond)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if b.ewmaMs > 0 && ms > slowFactor*b.ewmaMs && latency > slowFloor {
		// A slow strike stays out of the EWMA: folding it in would raise
		// the worker's own bar by 20% per strike, and with slowFactor 6 a
		// steadily trickling link could never accumulate a second
		// consecutive strike. The EWMA tracks healthy latency only.
		b.fails = 0
		b.slow++
		if b.slow >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.slow = 0
		}
		return
	}
	if b.ewmaMs == 0 {
		b.ewmaMs = ms
	} else {
		b.ewmaMs = (1-ewmaAlpha)*b.ewmaMs + ewmaAlpha*ms
	}
	b.state = breakerClosed
	b.fails = 0
	b.slow = 0
}

// failure records a hard failure (error, malformed response, timeout) and
// reports whether this call opened the circuit. A half-open probe failure
// reopens immediately; a closed breaker opens at the consecutive-failure
// threshold.
func (b *breaker) failure(now time.Time) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wasProbe := b.probing
	b.probing = false
	b.fails++
	b.slow = 0
	if b.state == breakerOpen {
		b.openedAt = now // failed while technically open (late in-flight); restart cooldown
		return false
	}
	if wasProbe || b.state == breakerHalfOpen || b.fails >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
		return true
	}
	return false
}

// view returns a display snapshot for the roster and /metrics.
func (b *breaker) view() (state string, fails int, ewmaMs float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.fails, b.ewmaMs
}
