package cluster

import (
	"testing"
	"time"
)

func TestBreakerOpensAtThreshold(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, 5*time.Second)
	if got := b.gate(now); got != gateClosed {
		t.Fatalf("fresh breaker gate = %v, want closed", got)
	}
	for i := 0; i < 2; i++ {
		if b.failure(now) {
			t.Fatalf("breaker opened after %d failure(s), threshold 3", i+1)
		}
	}
	if !b.failure(now) {
		t.Fatal("third consecutive failure did not open the breaker")
	}
	if got := b.gate(now); got != gateBlocked {
		t.Fatalf("open breaker gate = %v, want blocked", got)
	}
	state, _, _ := b.view()
	if state != "open" {
		t.Fatalf("view state = %q, want open", state)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, 5*time.Second)
	b.failure(now)
	b.failure(now)
	b.success(now, 10*time.Millisecond)
	// The streak restarted: two more failures must not open it.
	b.failure(now)
	if b.failure(now) {
		t.Fatal("failure streak survived an interleaved success")
	}
}

func TestBreakerHalfOpenProbeCycle(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(1, 5*time.Second)
	b.failure(now)
	if got := b.gate(now.Add(time.Second)); got != gateBlocked {
		t.Fatalf("gate during cooldown = %v, want blocked", got)
	}
	after := now.Add(5 * time.Second)
	if got := b.gate(after); got != gateProbe {
		t.Fatalf("gate after cooldown = %v, want probe", got)
	}
	// gate never mutates: asking twice still offers the probe.
	if got := b.gate(after); got != gateProbe {
		t.Fatal("second gate call lost the probe slot without beginProbe")
	}
	b.beginProbe()
	if got := b.gate(after); got != gateBlocked {
		t.Fatalf("gate with probe in flight = %v, want blocked", got)
	}
	// A failed probe reopens and restarts the cooldown.
	if !b.failure(after) {
		t.Fatal("failed probe did not reopen the breaker")
	}
	if got := b.gate(after.Add(time.Second)); got != gateBlocked {
		t.Fatal("cooldown did not restart after a failed probe")
	}
	// A successful probe closes.
	reopenProbe := after.Add(5 * time.Second)
	if got := b.gate(reopenProbe); got != gateProbe {
		t.Fatal("no probe offered after the second cooldown")
	}
	b.beginProbe()
	b.success(reopenProbe, 10*time.Millisecond)
	if got := b.gate(reopenProbe); got != gateClosed {
		t.Fatal("successful probe did not close the breaker")
	}
}

// TestBreakerSlowStrikes: successes that are both absolutely slow and far
// beyond the worker's own EWMA count toward opening — a worker on a
// trickling link fails its way open even though every call completes.
func TestBreakerSlowStrikes(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(2, 5*time.Second)
	for i := 0; i < 8; i++ {
		b.success(now, 20*time.Millisecond) // settle the EWMA around 20ms
	}
	b.success(now, 2*time.Second) // > 6x EWMA and > 500ms: strike one
	if got := b.gate(now); got != gateClosed {
		t.Fatal("one slow strike should not open the breaker at threshold 2")
	}
	b.success(now, 2*time.Second) // strike two
	if got := b.gate(now); got != gateBlocked {
		t.Fatal("two consecutive slow strikes did not open the breaker")
	}
}

// TestBreakerSlowFloor: a relative jump that stays absolutely fast is not a
// strike — a cold 2ms->40ms wobble must not accumulate toward opening.
func TestBreakerSlowFloor(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(1, 5*time.Second)
	b.success(now, 2*time.Millisecond)
	b.success(now, 40*time.Millisecond) // 20x the EWMA but << slowFloor
	if got := b.gate(now); got != gateClosed {
		t.Fatal("fast-in-absolute-terms success counted as a slow strike")
	}
}

func TestBreakerViewEWMA(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, 5*time.Second)
	b.success(now, 100*time.Millisecond)
	_, _, ewma := b.view()
	if ewma != 100 {
		t.Fatalf("first sample EWMA = %v ms, want 100", ewma)
	}
	b.success(now, 200*time.Millisecond)
	_, _, ewma = b.view()
	if want := 0.8*100 + 0.2*200; ewma != want {
		t.Fatalf("EWMA after second sample = %v, want %v", ewma, want)
	}
	b.failure(now)
	_, fails, _ := b.view()
	if fails != 1 {
		t.Fatalf("view fails = %d, want 1", fails)
	}
}
