package cluster

// The worker half of the fleet: an executor that runs sub-jobs posted by a
// coordinator, and an agent that keeps the worker registered (join with
// retry, periodic heartbeats carrying the queue depth, rejoin when a
// restarted coordinator no longer knows the ID).
//
// The executor keeps a content-addressed sub-job cache keyed by
// (experiment fingerprint, sub-job key): a re-dispatched sub-job — lease
// expired, coordinator restarted, or an overlapping sweep from another
// client — is answered from memory instead of re-simulated. Together with
// the coordinator's first-terminal-write-wins gather this is what makes
// re-dispatch safe to do eagerly: the cost of a spurious duplicate is one
// map lookup, not a re-run.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"prioritystar/internal/obs"
	"prioritystar/internal/sim"
	"prioritystar/internal/spec"
	"prioritystar/internal/sweep"
)

// WorkerConfig tunes a sub-job executor.
type WorkerConfig struct {
	// Slots bounds concurrently executing sub-jobs. Default 1.
	Slots int
	// SlotsPerSubjob caps each sub-job's internal sweep parallelism
	// (sweep.Experiment.Workers); 0 keeps the sweep default (GOMAXPROCS).
	SlotsPerSubjob int
	// Metrics receives the worker's counters; a fresh set is allocated when
	// nil.
	Metrics *obs.MetricSet
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)

	// engine is folded into the fingerprint check; fixed to
	// sim.EngineVersion, overridable only by tests.
	engine string
}

// Worker executes sub-jobs on behalf of a coordinator.
type Worker struct {
	cfg   WorkerConfig
	sem   chan struct{}
	depth atomic.Int64 // queued + running sub-jobs (the heartbeat load signal)

	mu    sync.Mutex
	cache map[string][]sweep.RepRecord // leaseKey(fp, subjob key) -> records
}

// NewWorker builds a sub-job executor.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &obs.MetricSet{}
	}
	if cfg.engine == "" {
		cfg.engine = sim.EngineVersion
	}
	return &Worker{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.Slots),
		cache: make(map[string][]sweep.RepRecord),
	}
}

// Mount registers the worker's endpoint on the daemon's mux (before Start).
func (w *Worker) Mount(m Mux) {
	m.HandleFunc("POST /v1/cluster/subjob", w.handleSubjob)
}

// Metrics returns the worker's metric set.
func (w *Worker) Metrics() *obs.MetricSet { return w.cfg.Metrics }

// Depth reports the current sub-job backlog (queued + running) — the load
// signal heartbeats carry to the coordinator's two-choice dispatch.
func (w *Worker) Depth() int { return int(w.depth.Load()) }

// cached returns the cached records for a sub-job, if present.
func (w *Worker) cachedRecords(k string) ([]sweep.RepRecord, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	recs, ok := w.cache[k]
	return recs, ok
}

func (w *Worker) handleSubjob(rw http.ResponseWriter, r *http.Request) {
	var req SubjobRequest
	if err := decodeBody(r, &req); err != nil {
		writeJSON(rw, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("decoding sub-job: %v", err)})
		return
	}
	if req.Fingerprint == "" || req.Key == "" {
		writeJSON(rw, http.StatusBadRequest, errorDoc{Error: "sub-job without fingerprint or key"})
		return
	}
	ck := leaseKey(req.Fingerprint, req.Key)
	if recs, ok := w.cachedRecords(ck); ok {
		w.cfg.Metrics.Add("subjob_cache_hits", 1)
		w.cfg.Metrics.Add("subjobs_served", 1)
		writeJSON(rw, http.StatusOK, SubjobResponse{Records: recs, Cached: true})
		return
	}

	// Count the request into the backlog before queueing on the slot
	// semaphore, so the depth the coordinator load-balances on includes
	// waiting work, not just running work.
	w.depth.Add(1)
	defer w.depth.Add(-1)
	select {
	case w.sem <- struct{}{}:
		defer func() { <-w.sem }()
	case <-r.Context().Done():
		return
	}

	// The wait may have outlived an identical in-flight run: check again.
	if recs, ok := w.cachedRecords(ck); ok {
		w.cfg.Metrics.Add("subjob_cache_hits", 1)
		w.cfg.Metrics.Add("subjobs_served", 1)
		writeJSON(rw, http.StatusOK, SubjobResponse{Records: recs, Cached: true})
		return
	}

	exp, err := spec.Decode(req.Spec)
	if err == nil {
		err = spec.Stamp(exp)
	}
	if err != nil {
		writeJSON(rw, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("bad sub-job spec: %v", err)})
		return
	}
	// Version-skew defense: this worker must derive the exact fingerprint
	// the coordinator is folding under, or its records would corrupt a
	// result claiming an identity the worker cannot honor.
	if exp.Fingerprint != req.Fingerprint {
		w.cfg.Metrics.Add("subjobs_rejected_skew", 1)
		writeJSON(rw, http.StatusConflict, errorDoc{Error: fmt.Sprintf(
			"fingerprint mismatch: coordinator %s, worker derives %s (engine %s)",
			req.Fingerprint, exp.Fingerprint, w.cfg.engine)})
		return
	}
	if w.cfg.SlotsPerSubjob > 0 {
		exp.Workers = w.cfg.SlotsPerSubjob
	}
	exp.Context = r.Context()

	recs, err := exp.RunSubjob(req.Subjob)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return // caller gone; nothing useful to write
		}
		writeJSON(rw, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	w.mu.Lock()
	w.cache[ck] = recs
	w.mu.Unlock()
	w.cfg.Metrics.Add("cluster_reps_simulated", int64(len(recs)))
	w.cfg.Metrics.Add("subjobs_served", 1)
	writeJSON(rw, http.StatusOK, SubjobResponse{Records: recs})
}

// AgentConfig tunes the registration agent.
type AgentConfig struct {
	// Coordinator is the coordinator's address ("host:port" or base URL).
	Coordinator string
	// Advertise is this worker's reachable address, sent at join.
	Advertise string
	// Name is a human label for the roster.
	Name string
	// Slots is the advertised concurrency (WorkerConfig.Slots).
	Slots int
	// Depth supplies the backlog signal for heartbeats (Worker.Depth).
	Depth func() int
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)

	// sleep waits for a duration or the context, reporting false when the
	// context won; a test hook standing in for the clock.
	sleep func(ctx context.Context, d time.Duration) bool
	// rnd feeds the backoff jitter; seeded per agent, overridable by tests.
	rnd *rand.Rand
}

// Agent keeps a worker registered with its coordinator: join (with retry),
// heartbeat at the cadence the coordinator dictates, rejoin when the
// coordinator restarts and forgets the ID.
type Agent struct {
	cfg    AgentConfig
	hc     *http.Client
	cancel context.CancelFunc
	done   chan struct{}
}

// StartAgent launches the registration loop in the background.
func StartAgent(cfg AgentConfig) *Agent {
	if cfg.sleep == nil {
		cfg.sleep = func(ctx context.Context, d time.Duration) bool {
			select {
			case <-time.After(d):
				return true
			case <-ctx.Done():
				return false
			}
		}
	}
	if cfg.rnd == nil {
		cfg.rnd = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	ctx, cancel := context.WithCancel(context.Background())
	a := &Agent{
		cfg:    cfg,
		hc:     &http.Client{Timeout: 10 * time.Second},
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go a.loop(ctx)
	return a
}

// Stop deregisters the agent (by silence: the coordinator expires the
// worker after missed heartbeats) and waits for the loop to exit.
func (a *Agent) Stop() {
	a.cancel()
	<-a.done
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

// joinBackoffBase and joinBackoffCap bound the join retry cadence.
const (
	joinBackoffBase = 200 * time.Millisecond
	joinBackoffCap  = 2 * time.Second
)

// jitteredBackoff returns the randomized delay for the current backoff step
// and the grown next step: delay uniform in [0.5, 1.5) x cur, growth
// doubling capped at joinBackoffCap. The jitter is what prevents a rejoin
// stampede when a partition heals: every cut-off worker noticed the outage
// within the same heartbeat window, so un-jittered retries would land on
// the coordinator in synchronized waves forever (the backoff grows in
// lockstep too).
func jitteredBackoff(cur time.Duration, rnd *rand.Rand) (delay, next time.Duration) {
	delay = time.Duration(float64(cur) * (0.5 + rnd.Float64()))
	next = cur * 2
	if next > joinBackoffCap {
		next = joinBackoffCap
	}
	return delay, next
}

// loop joins, heartbeats, and rejoins until canceled.
func (a *Agent) loop(ctx context.Context) {
	defer close(a.done)
	base := baseURL(a.cfg.Coordinator)
	backoff := joinBackoffBase
	for ctx.Err() == nil {
		var jr JoinResponse
		err := postJSON(ctx, a.hc, base+"/v1/cluster/join", JoinRequest{
			Name: a.cfg.Name, Addr: a.cfg.Advertise, Slots: a.cfg.Slots,
		}, &jr)
		if err != nil {
			delay, next := jitteredBackoff(backoff, a.cfg.rnd)
			a.logf("cluster: join %s: %v (retrying in %v)", base, err, delay)
			if !a.cfg.sleep(ctx, delay) {
				return
			}
			backoff = next
			continue
		}
		backoff = joinBackoffBase
		a.logf("cluster: joined %s as %s", base, jr.ID)
		every := time.Duration(jr.HeartbeatMillis) * time.Millisecond
		if every <= 0 {
			every = 2 * time.Second
		}
		a.heartbeatUntilLost(ctx, base, jr.ID, every)
	}
}

// heartbeatUntilLost heartbeats at the given cadence until the coordinator
// answers 404 (it restarted: rejoin) or repeated sends fail (it is gone:
// back to join-with-retry).
func (a *Agent) heartbeatUntilLost(ctx context.Context, base, id string, every time.Duration) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	misses := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		depth := 0
		if a.cfg.Depth != nil {
			depth = a.cfg.Depth()
		}
		err := postJSON(ctx, a.hc, base+"/v1/cluster/heartbeat", HeartbeatRequest{ID: id, Depth: depth}, nil)
		switch {
		case err == nil:
			misses = 0
		default:
			var se *StatusError
			if errors.As(err, &se) && se.Code == http.StatusNotFound {
				a.logf("cluster: coordinator forgot %s; rejoining", id)
				return
			}
			if misses++; misses >= 3 {
				a.logf("cluster: %d heartbeats failed (%v); rejoining", misses, err)
				return
			}
		}
	}
}
