// Package stats provides the streaming statistics used by the simulator and
// the experiment harness: Welford mean/variance accumulators, fixed-bin
// histograms with quantile queries, allocation-free streaming log-bucket
// histograms for observability probes, and multi-replication summaries with
// normal-approximation confidence intervals.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Welford is a numerically stable streaming accumulator for count, mean, and
// variance. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// AddN records the same observation value n times.
func (w *Welford) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		w.Add(x)
	}
}

// Merge combines another accumulator into w (parallel Welford merge).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// PopVariance returns the population variance m2/n (0 for n < 1).
func (w *Welford) PopVariance() float64 {
	if w.n < 1 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Sum returns mean * n.
func (w *Welford) Sum() float64 { return w.mean * float64(w.n) }

// String formats the accumulator for logs.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f min=%.4f max=%.4f",
		w.n, w.Mean(), w.StdDev(), w.min, w.max)
}

// Histogram is a fixed-width-bin histogram over [0, binWidth*bins), with an
// overflow bin for larger observations. It answers approximate quantile
// queries (exact to within one bin width).
type Histogram struct {
	binWidth float64
	counts   []int64
	overflow int64
	total    int64
	w        Welford
}

// NewHistogram creates a histogram with the given number of bins of the
// given width.
func NewHistogram(bins int, binWidth float64) *Histogram {
	if bins <= 0 || binWidth <= 0 {
		panic(fmt.Sprintf("stats: invalid histogram shape (%d bins, width %g)", bins, binWidth))
	}
	return &Histogram{binWidth: binWidth, counts: make([]int64, bins)}
}

// Add records one observation. Negative observations land in bin 0.
func (h *Histogram) Add(x float64) {
	h.total++
	h.w.Add(x)
	if x < 0 {
		h.counts[0]++
		return
	}
	bin := int(x / h.binWidth)
	if bin >= len(h.counts) {
		h.overflow++
		return
	}
	h.counts[bin]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the exact mean of all observations (not binned).
func (h *Histogram) Mean() float64 { return h.w.Mean() }

// Overflow returns how many observations exceeded the histogram range.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1), accurate
// to one bin width. Observations in the overflow bin yield +Inf.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	seen := int64(0)
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			return float64(i+1) * h.binWidth
		}
	}
	return math.Inf(1)
}

// LogHistogram is a streaming histogram over nonnegative integers with
// power-of-two buckets: bucket k (k >= 1) covers [2^(k-1), 2^k) and bucket 0
// holds zeros (negative observations are clamped to zero). Unlike Histogram
// it needs no a-priori range, never allocates after creation, and Add is a
// handful of integer operations — cheap enough to sample once per simulated
// slot from an observability probe. The zero value is ready to use.
type LogHistogram struct {
	counts [65]int64
	total  int64
	w      Welford
}

// Add records one observation.
func (h *LogHistogram) Add(v int64) {
	h.total++
	h.w.Add(float64(v))
	if v < 0 {
		v = 0
	}
	h.counts[bits.Len64(uint64(v))]++
}

// Count returns the number of observations.
func (h *LogHistogram) Count() int64 { return h.total }

// Mean returns the exact mean of all observations (not binned).
func (h *LogHistogram) Mean() float64 { return h.w.Mean() }

// Min returns the smallest observation (0 when empty).
func (h *LogHistogram) Min() int64 { return int64(h.w.Min()) }

// Max returns the largest observation (0 when empty).
func (h *LogHistogram) Max() int64 { return int64(h.w.Max()) }

// Merge combines another histogram into h.
func (h *LogHistogram) Merge(o *LogHistogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.w.Merge(o.w)
}

// bucketHi returns the largest value bucket i can hold.
func bucketHi(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return 1<<i - 1
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1): the
// inclusive upper edge of the first bucket whose cumulative count reaches q.
func (h *LogHistogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	seen := int64(0)
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			return bucketHi(i)
		}
	}
	return math.MaxInt64 // unreachable: buckets cover every int64
}

// Counts returns the raw per-bucket counts, trimmed after the last occupied
// bucket (nil when empty). Index k is bucket k as documented on
// LogHistogram; consumers that serialize histograms (obs.MetricSet) merge
// two histograms by adding these slices element-wise.
func (h *LogHistogram) Counts() []int64 {
	hi := -1
	for i, c := range h.counts {
		if c != 0 {
			hi = i
		}
	}
	if hi < 0 {
		return nil
	}
	return append([]int64(nil), h.counts[:hi+1]...)
}

// LogBucket is one occupied bucket of a LogHistogram: the inclusive value
// range [Lo, Hi] and its observation count.
type LogBucket struct {
	Lo, Hi int64
	Count  int64
}

// Buckets returns the occupied buckets in ascending order.
func (h *LogHistogram) Buckets() []LogBucket {
	var out []LogBucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo := int64(0)
		if i >= 1 {
			lo = bucketHi(i-1) + 1
		}
		out = append(out, LogBucket{Lo: lo, Hi: bucketHi(i), Count: c})
	}
	return out
}

// Summary captures a set of per-replication values and reports their mean
// and a normal-approximation confidence interval across replications.
type Summary struct {
	values []float64
}

// AddRep records one replication's value.
func (s *Summary) AddRep(v float64) { s.values = append(s.values, v) }

// N returns the number of replications recorded.
func (s *Summary) N() int { return len(s.values) }

// Mean returns the across-replication mean.
func (s *Summary) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// HalfWidth95 returns the half-width of the 95% confidence interval using
// the normal approximation (1.96 * stderr). Zero for fewer than two reps.
func (s *Summary) HalfWidth95() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	ss := 0.0
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return 1.96 * math.Sqrt(ss/float64(n-1)/float64(n))
}

// Median returns the middle replication value.
func (s *Summary) Median() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// String formats the summary as "mean ± halfwidth (n=reps)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", s.Mean(), s.HalfWidth95(), s.N())
}
