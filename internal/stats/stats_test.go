package stats

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Count() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Error("empty Welford should be all zeros")
	}
	if w.Min() != 0 || w.Max() != 0 || w.Sum() != 0 {
		t.Error("empty Welford min/max/sum should be zero")
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Errorf("count = %d", w.Count())
	}
	if !almost(w.Mean(), 5, 1e-12) {
		t.Errorf("mean = %g, want 5", w.Mean())
	}
	if !almost(w.PopVariance(), 4, 1e-12) {
		t.Errorf("pop variance = %g, want 4", w.PopVariance())
	}
	if !almost(w.Variance(), 32.0/7, 1e-12) {
		t.Errorf("sample variance = %g, want %g", w.Variance(), 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %g/%g", w.Min(), w.Max())
	}
	if !almost(w.Sum(), 40, 1e-9) {
		t.Errorf("sum = %g", w.Sum())
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Variance() != 0 || w.Mean() != 3.5 || w.Min() != 3.5 || w.Max() != 3.5 {
		t.Error("single-observation stats wrong")
	}
}

func TestWelfordAddN(t *testing.T) {
	var w Welford
	w.AddN(2, 3)
	w.AddN(4, 1)
	if w.Count() != 4 || !almost(w.Mean(), 2.5, 1e-12) {
		t.Errorf("AddN: n=%d mean=%g", w.Count(), w.Mean())
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	var all, a, b Welford
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), all.Count())
	}
	if !almost(a.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged mean %g != %g", a.Mean(), all.Mean())
	}
	if !almost(a.Variance(), all.Variance(), 1e-9) {
		t.Errorf("merged variance %g != %g", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Error("merged min/max wrong")
	}
}

func TestWelfordMergeEmptyCases(t *testing.T) {
	var a, b Welford
	a.Merge(b) // empty into empty
	if a.Count() != 0 {
		t.Error("empty merge should stay empty")
	}
	b.Add(5)
	a.Merge(b) // non-empty into empty
	if a.Count() != 1 || a.Mean() != 5 {
		t.Error("merge into empty failed")
	}
	var c Welford
	a.Merge(c) // empty into non-empty
	if a.Count() != 1 {
		t.Error("merging empty should be a no-op")
	}
}

func TestWelfordString(t *testing.T) {
	var w Welford
	w.Add(1)
	if !strings.Contains(w.String(), "n=1") {
		t.Errorf("String = %q", w.String())
	}
}

func TestQuickWelfordMatchesDirect(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, x := range clean {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		ss := 0.0
		for _, x := range clean {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(len(clean)-1)
		return almost(w.Mean(), mean, 1e-6*(1+math.Abs(mean))) &&
			almost(w.Variance(), wantVar, 1e-5*(1+wantVar))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10, 1.0)
	for _, x := range []float64{0.5, 1.5, 1.7, 9.9, 25} {
		h.Add(x)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Overflow() != 1 {
		t.Errorf("overflow = %d", h.Overflow())
	}
	if !almost(h.Mean(), (0.5+1.5+1.7+9.9+25)/5, 1e-12) {
		t.Errorf("mean = %g", h.Mean())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(100, 1.0)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i) - 0.5) // one observation per bin
	}
	if q := h.Quantile(0.5); q != 50 {
		t.Errorf("median = %g, want 50", q)
	}
	if q := h.Quantile(0.99); q != 99 {
		t.Errorf("p99 = %g, want 99", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Errorf("q0 = %g, want 1 (first nonempty bin)", q)
	}
	if q := h.Quantile(-1); q != 1 {
		t.Errorf("q<0 clamps to 0: got %g", q)
	}
	if q := h.Quantile(2); q != 100 {
		t.Errorf("q>1 clamps to 1: got %g", q)
	}
}

func TestHistogramQuantileOverflow(t *testing.T) {
	h := NewHistogram(2, 1.0)
	h.Add(0.5)
	h.Add(100)
	if q := h.Quantile(1.0); !math.IsInf(q, 1) {
		t.Errorf("overflow quantile = %g, want +Inf", q)
	}
}

func TestHistogramNegativeAndEmpty(t *testing.T) {
	h := NewHistogram(4, 1.0)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	h.Add(-3)
	if h.Quantile(1) != 1 {
		t.Error("negative observations should land in bin 0")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram shape should panic")
		}
	}()
	NewHistogram(0, 1)
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.HalfWidth95() != 0 || s.Median() != 0 || s.N() != 0 {
		t.Error("empty summary should be zeros")
	}
	for _, v := range []float64{10, 12, 11, 13, 9} {
		s.AddRep(v)
	}
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
	if !almost(s.Mean(), 11, 1e-12) {
		t.Errorf("mean = %g", s.Mean())
	}
	if s.Median() != 11 {
		t.Errorf("median = %g", s.Median())
	}
	// stddev = sqrt(10/4) = 1.5811; stderr = 0.7071; hw = 1.386.
	if !almost(s.HalfWidth95(), 1.96*math.Sqrt(2.5/5), 1e-9) {
		t.Errorf("half width = %g", s.HalfWidth95())
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummaryEvenMedian(t *testing.T) {
	var s Summary
	s.AddRep(1)
	s.AddRep(3)
	if s.Median() != 2 {
		t.Errorf("even median = %g, want 2", s.Median())
	}
	if s.HalfWidth95() == 0 {
		t.Error("two reps should produce a nonzero interval")
	}
}

func TestSummarySingleRep(t *testing.T) {
	var s Summary
	s.AddRep(7)
	if s.HalfWidth95() != 0 {
		t.Error("single rep has no interval")
	}
	if s.Median() != 7 {
		t.Error("single-rep median")
	}
}

func TestPopVarianceEmpty(t *testing.T) {
	var w Welford
	if w.PopVariance() != 0 {
		t.Error("empty PopVariance should be 0")
	}
	w.Add(4)
	if w.PopVariance() != 0 {
		t.Error("single-observation PopVariance should be 0")
	}
}
