package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestLogHistogramZeroValue(t *testing.T) {
	var h LogHistogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Errorf("zero value not empty: count=%d mean=%v q50=%d", h.Count(), h.Mean(), h.Quantile(0.5))
	}
	if h.Buckets() != nil {
		t.Errorf("zero value has buckets %v", h.Buckets())
	}
}

func TestLogHistogramBuckets(t *testing.T) {
	var h LogHistogram
	for _, v := range []int64{0, 0, 1, 2, 3, 4, 7, 8, 1023, -5} {
		h.Add(v)
	}
	// -5 clamps into the zero bucket.
	want := []LogBucket{
		{0, 0, 3}, {1, 1, 1}, {2, 3, 2}, {4, 7, 2}, {8, 15, 1}, {512, 1023, 1},
	}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("buckets %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d: %v, want %v", i, got[i], want[i])
		}
	}
	if h.Count() != 10 {
		t.Errorf("count %d", h.Count())
	}
	if h.Max() != 1023 || h.Min() != -5 {
		t.Errorf("min/max %d/%d", h.Min(), h.Max())
	}
}

func TestLogHistogramQuantile(t *testing.T) {
	var h LogHistogram
	for i := int64(0); i < 100; i++ {
		h.Add(i)
	}
	// The q-quantile upper bound must be >= the exact quantile and within
	// one power of two of it.
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		exact := q * 99
		got := float64(h.Quantile(q))
		if got < exact {
			t.Errorf("q=%g: bound %g below exact %g", q, got, exact)
		}
		if exact >= 1 && got > 2*exact+1 {
			t.Errorf("q=%g: bound %g too loose for exact %g", q, got, exact)
		}
	}
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("out-of-range quantiles not clamped")
	}
}

func TestLogHistogramMergeMatchesCombined(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	var a, b, both LogHistogram
	for i := 0; i < 500; i++ {
		v := int64(rng.UintN(1 << uint(rng.UintN(20))))
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		both.Add(v)
	}
	a.Merge(&b)
	if a.Count() != both.Count() || a.Max() != both.Max() || a.Min() != both.Min() {
		t.Errorf("merge count/min/max diverged")
	}
	if math.Abs(a.Mean()-both.Mean()) > 1e-9*math.Abs(both.Mean()) {
		t.Errorf("merged mean %v, combined %v", a.Mean(), both.Mean())
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.95} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Errorf("q=%g: merged %d, combined %d", q, a.Quantile(q), both.Quantile(q))
		}
	}
}

func TestLogHistogramLargeValues(t *testing.T) {
	var h LogHistogram
	h.Add(math.MaxInt64)
	h.Add(math.MaxInt64)
	if h.Quantile(1) != math.MaxInt64 {
		t.Errorf("quantile of MaxInt64 observations = %d", h.Quantile(1))
	}
	bs := h.Buckets()
	if len(bs) != 1 || bs[0].Hi != math.MaxInt64 || bs[0].Count != 2 {
		t.Errorf("buckets %v", bs)
	}
}
