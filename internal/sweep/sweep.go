// Package sweep is the experiment harness: it runs replicated simulations
// over a grid of throughput factors for several routing schemes in
// parallel, aggregates the delay and utilization statistics, and renders
// the series that correspond to the paper's figures.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"prioritystar/internal/balance"
	"prioritystar/internal/core"
	"prioritystar/internal/fault"
	"prioritystar/internal/plot"
	"prioritystar/internal/sim"
	"prioritystar/internal/stats"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// SchemeSpec names a routing-scheme configuration under comparison.
type SchemeSpec struct {
	Name       string
	Discipline core.Discipline
	Rotation   core.Rotation
	// SeparateBalance computes the ending-dimension vector ignoring the
	// unicast load (Eq. 2 instead of Eq. 4) — the paper's model of
	// "previous methods" that handle broadcast and unicast separately.
	SeparateBalance bool
}

// The scheme configurations used throughout the paper's evaluation.
var (
	// PrioritySTARSpec is the paper's proposal (balanced rotation,
	// 2-level priority).
	PrioritySTARSpec = SchemeSpec{Name: "priority-STAR", Discipline: core.TwoLevel, Rotation: core.BalancedRotation}
	// PrioritySTAR3Spec is the 3-level heterogeneous variant of Section 4.
	PrioritySTAR3Spec = SchemeSpec{Name: "priority-STAR-3", Discipline: core.ThreeLevel, Rotation: core.BalancedRotation}
	// FCFSDirectSpec is the figures' baseline: the FCFS generalization of
	// the direct scheme in [12] (balanced trees, single service class).
	FCFSDirectSpec = SchemeSpec{Name: "FCFS-direct", Discipline: core.FCFS, Rotation: core.BalancedRotation}
	// DimOrderSpec is classical dimension-ordered broadcast (no rotation).
	DimOrderSpec = SchemeSpec{Name: "dim-order-FCFS", Discipline: core.FCFS, Rotation: core.FixedEnding}
	// SeparateSpec balances broadcast in isolation while unicast follows
	// shortest paths — the Section 1 "previous methods" example.
	SeparateSpec = SchemeSpec{Name: "separate-FCFS", Discipline: core.FCFS, Rotation: core.BalancedRotation, SeparateBalance: true}
	// SeparatePrioSpec is separate balancing with the 2-level priorities.
	SeparatePrioSpec = SchemeSpec{Name: "separate-prio", Discipline: core.TwoLevel, Rotation: core.BalancedRotation, SeparateBalance: true}
	// UniformFCFSSpec rotates uniformly regardless of shape (ablation).
	UniformFCFSSpec = SchemeSpec{Name: "uniform-FCFS", Discipline: core.FCFS, Rotation: core.UniformRotation}
	// UniformPrioSpec is uniform rotation with priorities (ablation).
	UniformPrioSpec = SchemeSpec{Name: "uniform-prio", Discipline: core.TwoLevel, Rotation: core.UniformRotation}
	// DimOrderPrioSpec is fixed ending with priorities (ablation).
	DimOrderPrioSpec = SchemeSpec{Name: "dim-order-prio", Discipline: core.TwoLevel, Rotation: core.FixedEnding}
)

// Build resolves the spec into a core.Scheme for the given shape and
// offered traffic.
func (spec SchemeSpec) Build(s *torus.Shape, rates traffic.Rates, m balance.DistanceModel) (*core.Scheme, error) {
	if spec.SeparateBalance {
		rates.LambdaR = 0
	}
	return core.NewScheme(s, spec.Discipline, spec.Rotation, rates, m)
}

// Execution selects how a sweep dispatches its replications to the engine.
// The two modes produce bit-identical per-replication results (enforced by
// the differential tests in internal/sim) and identical aggregates; the
// knob trades dispatch granularity for cache locality and is therefore
// excluded from spec.Fingerprint.
type Execution int

const (
	// ExecBatched (the default) dispatches each (scheme, rho) cell as
	// sim.Batches of up to maxBatchReps replications: the batch advances
	// through one pass sharing the immutable topology and scheme tables,
	// with per-rep state in a struct-of-arrays layout. Leftover pool
	// parallelism (when the sweep has fewer batches than workers) is
	// pushed inside the batches as rep stripes.
	ExecBatched Execution = iota
	// ExecSequential is the historical path: every replication is its own
	// job on the worker pool, each executed by a sequential sim.Runner.
	ExecSequential
)

// maxBatchReps bounds the replications per dispatched batch. Lockstep
// replications complete together, so the bound caps both how much a crash
// can lose between checkpoint-journal appends and how much per-rep state
// the lockstep pass drags through the cache.
const maxBatchReps = 8

// String names the execution mode.
func (x Execution) String() string {
	if x == ExecSequential {
		return "sequential"
	}
	return "batched"
}

// Experiment describes one sweep: a topology, a traffic mix, a rho grid,
// and the schemes to compare.
type Experiment struct {
	ID    string
	Title string
	// Notes records what the experiment reproduces (figure numbers etc.).
	Notes string

	Dims          []int
	Rhos          []float64
	BroadcastFrac float64 // fraction of transmission load from broadcasts
	Schemes       []SchemeSpec
	Length        traffic.LengthDist
	Model         balance.DistanceModel

	Warmup, Measure, Drain int64
	Reps                   int
	BaseSeed               uint64
	MaxBacklog             int64
	// Workers bounds simulation parallelism; 0 means GOMAXPROCS.
	Workers int

	// Execution selects the dispatch mode: ExecBatched (default) runs each
	// (scheme, rho) cell as one batched multi-replication pass,
	// ExecSequential keeps one job per replication. Results are
	// bit-identical either way, so the knob is outside spec.Fingerprint.
	Execution Execution

	// Approx marks the experiment as willing to accept an approximate
	// answer: the serving layer may answer it from the analytic surrogate
	// (closed-form model plus interpolation over cached exact results)
	// instead of simulating, falling back to a real run when the surrogate
	// is uncertain. Run itself ignores it — an experiment that reaches the
	// engine is always simulated exactly — and like Execution it cannot
	// change simulated results, so it stays outside spec.Fingerprint.
	Approx bool
	// ApproxTol is the relative error tolerance an Approx experiment
	// accepts on the surrogate's reception-delay answers; 0 uses the
	// serving layer's default. Also outside spec.Fingerprint.
	ApproxTol float64

	// Faults applies one deterministic fault schedule (see internal/fault)
	// to every replication. nil or empty keeps runs fault-free.
	Faults *fault.Schedule
	// Guard arms the per-run divergence watchdog and wall-clock timeout on
	// every replication. The zero value leaves runs unguarded.
	Guard sim.Guard
	// Context, when non-nil, cancels the sweep: in-flight simulations stop
	// at their next poll and Run returns the context's error.
	Context context.Context

	// Fingerprint, when non-empty, is the canonical identity of this
	// experiment: it names the checkpoint journal's header and the daemon's
	// result-cache key. spec.Fingerprint computes the canonical value (a
	// hash over the key-order-stable JSON spec plus the engine version);
	// when empty a legacy descriptor string derived from the fields is used
	// for the journal header.
	Fingerprint string

	// Checkpoint, when non-empty, journals each completed replication to
	// this JSONL file so a crashed or killed sweep can be resumed.
	Checkpoint string
	// Resume replays an existing Checkpoint journal before running: intact
	// records are reused and only missing replications are simulated. The
	// aggregated table is identical to an uninterrupted sweep's. Resuming
	// against a journal from a different experiment is an error.
	Resume bool

	// Progress, when non-nil, is called after every completed replication
	// with the number finished so far and the total. Calls come from the
	// single collector goroutine in completion order, so implementations
	// need no locking; long sweeps use it for live progress display.
	Progress func(done, total int)
}

// Validate checks the experiment without running it; Run calls it first.
// The service layer uses it to reject bad submissions at the door instead
// of burning a worker slot on them.
func (e *Experiment) Validate() error { return e.validate() }

func (e *Experiment) validate() error {
	if len(e.Dims) == 0 {
		return fmt.Errorf("sweep %q: no dimensions", e.ID)
	}
	if len(e.Rhos) == 0 {
		return fmt.Errorf("sweep %q: no rho grid", e.ID)
	}
	if len(e.Schemes) == 0 {
		return fmt.Errorf("sweep %q: no schemes", e.ID)
	}
	if e.Reps <= 0 {
		return fmt.Errorf("sweep %q: Reps must be positive", e.ID)
	}
	if e.Measure <= 0 {
		return fmt.Errorf("sweep %q: Measure must be positive", e.ID)
	}
	return nil
}

// Point aggregates the replications of one (scheme, rho) cell.
type Point struct {
	Rho        float64
	Reception  stats.Summary
	Broadcast  stats.Summary
	Unicast    stats.Summary
	HighWait   stats.Summary // queue wait of class 0
	LowWait    stats.Summary // queue wait of the lowest class in use
	AvgUtil    stats.Summary
	MaxDimUtil stats.Summary
	// DimUtil[i] aggregates dimension i's measured link utilization across
	// replications — the per-dimension load the balance equations predict
	// equal for a balanced scheme (see Result.DimLoadReport).
	DimUtil []stats.Summary

	GeneratedBroadcasts  int64
	IncompleteBroadcasts int64
	UnstableReps         int
	// DivergedReps counts replications the divergence watchdog terminated
	// (a subset of UnstableReps).
	DivergedReps int
	// FailedReps counts replications that errored (recovered panics, bad
	// configurations); Error holds the first such message. Failed reps
	// contribute nothing to the aggregates.
	FailedReps int
	Error      string
}

// Series is one scheme's curve over the rho grid.
type Series struct {
	Scheme SchemeSpec
	Points []Point
}

// Result is a completed experiment.
type Result struct {
	Exp     *Experiment
	Series  []Series
	Elapsed time.Duration
	// ResumedReps counts replications replayed from the checkpoint journal
	// instead of simulated — the daemon's crash-recovery path uses it to
	// prove a resumed job re-ran zero already-checkpointed points.
	ResumedReps int
}

// makeRecord flattens one simulation result into the journal/aggregation
// record for (k, res).
func (e *Experiment) makeRecord(shape *torus.Shape, k RepKey, res *sim.Result) RepRecord {
	low := e.Schemes[k.Scheme].Discipline.Classes() - 1
	rec := RepRecord{
		Scheme: k.Scheme, Rho: k.Rho, Rep: k.Rep,
		Reception:  jsonFloat(res.Reception.Mean()),
		Broadcast:  jsonFloat(res.Broadcast.Mean()),
		Unicast:    jsonFloat(res.Unicast.Mean()),
		HighWait:   jsonFloat(res.QueueWait[0].Mean()),
		LowWait:    jsonFloat(res.QueueWait[low].Mean()),
		AvgUtil:    jsonFloat(res.AvgUtilization),
		MaxDimUtil: jsonFloat(res.MaxDimUtilization),

		GeneratedBroadcasts:  res.GeneratedBroadcasts,
		IncompleteBroadcasts: res.IncompleteBroadcasts,
		Stable:               res.Stable(shape),
	}
	for _, u := range res.DimUtilization {
		rec.DimUtil = append(rec.DimUtil, jsonFloat(u))
	}
	if res.Status != sim.StatusOK {
		rec.Status = res.Status.String()
	}
	return rec
}

// runSafe executes one simulation, converting a panic into an error. The
// worker's Runner is re-armed in place (sim.Runner.Recover) so its warm
// buffers survive: one poisoned replication no longer leaves the worker
// re-allocating cold queues and wheels for every point it runs afterwards.
func runSafe(runner **sim.Runner, cfg sim.Config) (res *sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			recoverRunner(runner)
			err = fmt.Errorf("sweep: simulation panicked: %v", r)
		}
	}()
	return (*runner).Run(cfg)
}

// recoverRunner re-arms a panicked worker's Runner, keeping its buffers. If
// Recover itself panics — the buffers are corrupt beyond the structural
// invariants it relies on — the Runner is replaced wholesale as a last
// resort, restoring the historical behavior.
func recoverRunner(runner **sim.Runner) {
	defer func() {
		if recover() != nil {
			*runner = new(sim.Runner)
		}
	}()
	(*runner).Recover()
}

// repSeed derives the deterministic seed of one replication. The derivation
// is load-bearing: checkpoints, the daemon's result cache, and the cluster's
// scatter/gather all assume a (scheme, rho, rep) index names exactly one
// stream of randomness, so it must never change.
func (e *Experiment) repSeed(si, ri, rep int) uint64 {
	return e.BaseSeed ^ (uint64(si)+1)<<40 ^ (uint64(ri)+1)<<20 ^ uint64(rep+1)
}

// cellConfig builds the simulation config template of one (scheme, rho)
// cell — everything but the per-rep seed. Run and RunSubjob share it so a
// replication is configured identically whether it executes locally or on a
// remote worker.
func (e *Experiment) cellConfig(shape *torus.Shape, si, ri int) (sim.Config, error) {
	rates, err := traffic.RatesForRho(shape, e.Rhos[ri], e.BroadcastFrac, e.Length.Mean(), e.Model)
	if err != nil {
		return sim.Config{}, fmt.Errorf("sweep %q: %w", e.ID, err)
	}
	sch, err := e.Schemes[si].Build(shape, rates, e.Model)
	if err != nil {
		return sim.Config{}, fmt.Errorf("sweep %q, scheme %q: %w", e.ID, e.Schemes[si].Name, err)
	}
	return sim.Config{
		Shape: shape, Scheme: sch, Rates: rates,
		Length: e.Length,
		Warmup: e.Warmup, Measure: e.Measure, Drain: e.Drain,
		MaxBacklog: e.MaxBacklog,
		Faults:     e.Faults,
		Guard:      e.Guard,
		Context:    e.Context,
	}, nil
}

// Subjob is the distributable unit of a sweep: up to maxBatchReps
// replications of one (scheme, rho) cell with their deterministic seeds.
// The chunking matches what Run dispatches locally, so a sub-job executed
// on a remote worker covers exactly the replications one local batch would
// have, and a checkpoint written at a sub-job boundary resumes cleanly in
// either mode.
type Subjob struct {
	Scheme int      `json:"s"`
	Rho    int      `json:"r"`
	Reps   []int    `json:"reps"`
	Seeds  []uint64 `json:"seeds"`
}

// Key names the sub-job stably within its experiment: the cell indices plus
// every replication index it covers. Combined with the experiment
// fingerprint it is a content address — two sub-jobs with equal keys under
// equal fingerprints simulate identical work, which is what lets workers
// serve repeats from cache and the coordinator discard duplicate results.
func (sj Subjob) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "s%dr%d@", sj.Scheme, sj.Rho)
	for i, rep := range sj.Reps {
		if i > 0 {
			b.WriteByte('.')
		}
		fmt.Fprintf(&b, "%d", rep)
	}
	return b.String()
}

// Subjobs decomposes the experiment into its distributable sub-jobs in
// deterministic (scheme, rho, rep) order. skip, when non-nil, drops
// replications already covered elsewhere (typically a replayed checkpoint
// journal); remaining reps are chunked at maxBatchReps exactly as Run
// chunks its local batches.
func (e *Experiment) Subjobs(skip func(RepKey) bool) ([]Subjob, error) {
	if err := e.validate(); err != nil {
		return nil, err
	}
	var subjobs []Subjob
	for si := range e.Schemes {
		for ri := range e.Rhos {
			var reps []int
			var seeds []uint64
			for rep := 0; rep < e.Reps; rep++ {
				if skip != nil && skip(RepKey{si, ri, rep}) {
					continue
				}
				reps = append(reps, rep)
				seeds = append(seeds, e.repSeed(si, ri, rep))
			}
			for lo := 0; lo < len(reps); lo += maxBatchReps {
				hi := lo + maxBatchReps
				if hi > len(reps) {
					hi = len(reps)
				}
				subjobs = append(subjobs, Subjob{
					Scheme: si, Rho: ri,
					Reps:  reps[lo:hi],
					Seeds: seeds[lo:hi],
				})
			}
		}
	}
	return subjobs, nil
}

// RunSubjob executes one sub-job locally and returns its replication
// records in rep order. This is what a cluster worker runs on behalf of a
// coordinator: the config template, seed handling, and batched execution
// path are shared with Run, so the records are bit-identical to what the
// same replications would produce in a single-node sweep. Per-rep failures
// (panics, divergence-watchdog kills) come back as records with Err set —
// only context cancellation is a sub-job-level error.
func (e *Experiment) RunSubjob(sj Subjob) ([]RepRecord, error) {
	if err := e.validate(); err != nil {
		return nil, err
	}
	if sj.Scheme < 0 || sj.Scheme >= len(e.Schemes) || sj.Rho < 0 || sj.Rho >= len(e.Rhos) {
		return nil, fmt.Errorf("sweep %q: sub-job cell (%d,%d) outside the grid", e.ID, sj.Scheme, sj.Rho)
	}
	if len(sj.Reps) == 0 || len(sj.Reps) != len(sj.Seeds) {
		return nil, fmt.Errorf("sweep %q: sub-job has %d reps but %d seeds", e.ID, len(sj.Reps), len(sj.Seeds))
	}
	for _, rep := range sj.Reps {
		if rep < 0 || rep >= e.Reps {
			return nil, fmt.Errorf("sweep %q: sub-job rep %d outside 0..%d", e.ID, rep, e.Reps-1)
		}
	}
	shape, err := torus.New(e.Dims...)
	if err != nil {
		return nil, fmt.Errorf("sweep %q: %w", e.ID, err)
	}
	if err := e.Faults.Validate(shape); err != nil {
		return nil, fmt.Errorf("sweep %q: %w", e.ID, err)
	}
	cfg, err := e.cellConfig(shape, sj.Scheme, sj.Rho)
	if err != nil {
		return nil, err
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var br sim.BatchRunner
	outs, err := br.Run(sim.Batch{Base: cfg, Seeds: sj.Seeds, Workers: workers})
	if err != nil {
		outs = make([]sim.RepResult, len(sj.Seeds))
		for i := range outs {
			outs[i] = sim.RepResult{Err: err}
		}
	}
	recs := make([]RepRecord, len(sj.Reps))
	for i, rep := range sj.Reps {
		key := RepKey{sj.Scheme, sj.Rho, rep}
		rr := outs[i]
		switch {
		case rr.Err != nil && (errors.Is(rr.Err, context.Canceled) || errors.Is(rr.Err, context.DeadlineExceeded)):
			return nil, rr.Err
		case rr.Err != nil:
			recs[i] = RepRecord{Scheme: key.Scheme, Rho: key.Rho, Rep: key.Rep, Err: rr.Err.Error()}
		default:
			recs[i] = e.makeRecord(shape, key, rr.Result)
		}
	}
	return recs, nil
}

// Assemble folds replication records into a Result, visiting (scheme, rho,
// rep) in strict index order — never completion or arrival order. That
// ordering is the byte-identity invariant: a Result assembled from any mix
// of journal replay, local batches, and remote sub-job gathers encodes to
// exactly the bytes of an uninterrupted single-node run. Missing records
// are simply absent from the aggregates (their Point carries fewer reps).
func (e *Experiment) Assemble(records map[RepKey]RepRecord, resumed int, elapsed time.Duration) *Result {
	res := &Result{Exp: e, Elapsed: elapsed, ResumedReps: resumed}
	for si, spec := range e.Schemes {
		series := Series{Scheme: spec, Points: make([]Point, len(e.Rhos))}
		for ri := range e.Rhos {
			p := &series.Points[ri]
			p.Rho = e.Rhos[ri]
			for rep := 0; rep < e.Reps; rep++ {
				rec, ok := records[RepKey{si, ri, rep}]
				if !ok {
					continue
				}
				if rec.Err != "" {
					p.FailedReps++
					if p.Error == "" {
						p.Error = rec.Err
					}
					continue
				}
				p.Reception.AddRep(float64(rec.Reception))
				p.Broadcast.AddRep(float64(rec.Broadcast))
				p.Unicast.AddRep(float64(rec.Unicast))
				p.HighWait.AddRep(float64(rec.HighWait))
				p.LowWait.AddRep(float64(rec.LowWait))
				p.AvgUtil.AddRep(float64(rec.AvgUtil))
				p.MaxDimUtil.AddRep(float64(rec.MaxDimUtil))
				if p.DimUtil == nil {
					p.DimUtil = make([]stats.Summary, len(rec.DimUtil))
				}
				for i, u := range rec.DimUtil {
					p.DimUtil[i].AddRep(float64(u))
				}
				p.GeneratedBroadcasts += rec.GeneratedBroadcasts
				p.IncompleteBroadcasts += rec.IncompleteBroadcasts
				if !rec.Stable {
					p.UnstableReps++
				}
				if rec.Status == sim.StatusDiverged.String() {
					p.DivergedReps++
				}
			}
		}
		res.Series = append(res.Series, series)
	}
	return res
}

// Run executes every (scheme, rho, rep) simulation, fanning out across a
// bounded worker pool, and aggregates per-cell summaries. Seeds are derived
// deterministically from BaseSeed and the aggregation visits replications
// in (scheme, rho, rep) order — never completion order — so a Result is
// bit-reproducible regardless of scheduling, and a Resume-d sweep matches an
// uninterrupted one exactly. A replication that panics or errors is recorded
// on its Point (FailedReps/Error) without killing the experiment; only
// context cancellation aborts the whole sweep.
func (e *Experiment) Run() (*Result, error) {
	if err := e.validate(); err != nil {
		return nil, err
	}
	shape, err := torus.New(e.Dims...)
	if err != nil {
		return nil, fmt.Errorf("sweep %q: %w", e.ID, err)
	}
	if err := e.Faults.Validate(shape); err != nil {
		return nil, fmt.Errorf("sweep %q: %w", e.ID, err)
	}

	// Checkpoint replay and journal setup.
	records := make(map[RepKey]RepRecord)
	var jnl *CheckpointWriter
	if e.Checkpoint != "" {
		records, jnl, err = openCheckpoint(e.Checkpoint, e.fingerprint(), e.Resume)
		if err != nil {
			return nil, err
		}
		defer jnl.Close()
	}
	resumed := len(records)

	// A job is one (scheme, rho) cell's outstanding replications. In
	// batched mode the whole cell is dispatched as one sim.Batch; in
	// sequential mode each cell is pre-split into single-rep jobs below, so
	// the worker pool sees the historical per-replication granularity.
	type job struct {
		si, ri int
		cfg    sim.Config // template; Seed substituted per rep
		reps   []int      // replication indices still to run
		seeds  []uint64   // matching seeds (same derivation as ever)
	}
	var jobs []job
	totalReps := 0
	for si := range e.Schemes {
		for ri := range e.Rhos {
			cfg, err := e.cellConfig(shape, si, ri)
			if err != nil {
				return nil, err
			}
			cell := job{si: si, ri: ri, cfg: cfg}
			for rep := 0; rep < e.Reps; rep++ {
				if _, ok := records[RepKey{si, ri, rep}]; ok {
					continue // already journaled by a previous run
				}
				cell.reps = append(cell.reps, rep)
				cell.seeds = append(cell.seeds, e.repSeed(si, ri, rep))
			}
			if len(cell.reps) == 0 {
				continue // cell fully covered by the checkpoint journal
			}
			totalReps += len(cell.reps)
			if e.Execution == ExecSequential {
				for i := range cell.reps {
					jobs = append(jobs, job{
						si: si, ri: ri, cfg: cell.cfg,
						reps:  cell.reps[i : i+1],
						seeds: cell.seeds[i : i+1],
					})
				}
			} else {
				// Chunk big cells: lockstep replications all finish
				// together, so an unbounded batch would journal nothing
				// until the whole cell completed (a crash loses the entire
				// cell) and would drag a reps-sized working set through the
				// cache. Bounded chunks keep checkpoint granularity and
				// cache locality while still sharing the scheme tables and
				// arena across the chunk.
				for lo := 0; lo < len(cell.reps); lo += maxBatchReps {
					hi := lo + maxBatchReps
					if hi > len(cell.reps) {
						hi = len(cell.reps)
					}
					jobs = append(jobs, job{
						si: si, ri: ri, cfg: cell.cfg,
						reps:  cell.reps[lo:hi],
						seeds: cell.seeds[lo:hi],
					})
				}
			}
		}
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	poolWorkers := workers
	if poolWorkers > len(jobs) {
		poolWorkers = len(jobs)
	}
	// When a batched sweep has fewer cells than the worker budget, the
	// leftover parallelism moves inside each batch as rep stripes, so a
	// one-cell many-rep experiment still uses the whole machine.
	batchWorkers := 1
	if e.Execution != ExecSequential && len(jobs) > 0 {
		if batchWorkers = workers / len(jobs); batchWorkers < 1 {
			batchWorkers = 1
		}
	}

	type outcome struct {
		si, ri int
		reps   []int
		outs   []sim.RepResult
	}
	start := time.Now()
	jobCh := make(chan job)
	outCh := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < poolWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns its engines (a BatchRunner or a Runner) so
			// queue/wheel buffers are allocated once and reused across all
			// the cells it processes.
			var br sim.BatchRunner
			runner := new(sim.Runner)
			for j := range jobCh {
				var outs []sim.RepResult
				if e.Execution == ExecSequential {
					outs = make([]sim.RepResult, len(j.seeds))
					for i, seed := range j.seeds {
						cfg := j.cfg
						cfg.Seed = seed
						res, err := runSafe(&runner, cfg)
						outs[i] = sim.RepResult{Result: res, Err: err}
					}
				} else {
					var err error
					outs, err = br.Run(sim.Batch{Base: j.cfg, Seeds: j.seeds, Workers: batchWorkers})
					if err != nil {
						// Up-front validation failure: every rep of the
						// cell fails identically, mirroring what each
						// sequential Runner.Run would have reported.
						outs = make([]sim.RepResult, len(j.seeds))
						for i := range outs {
							outs[i] = sim.RepResult{Err: err}
						}
					}
				}
				outCh <- outcome{si: j.si, ri: j.ri, reps: j.reps, outs: outs}
			}
		}()
	}
	go func() {
		for _, j := range jobs {
			jobCh <- j
		}
		close(jobCh)
		wg.Wait()
		close(outCh)
	}()

	var ctxErr error
	done := 0
	for out := range outCh {
		for i, rep := range out.reps {
			done++
			if e.Progress != nil {
				e.Progress(done, totalReps)
			}
			key := RepKey{out.si, out.ri, rep}
			rr := out.outs[i]
			if rr.Err != nil {
				if errors.Is(rr.Err, context.Canceled) || errors.Is(rr.Err, context.DeadlineExceeded) {
					// Cancellation, not a per-rep failure: abort (after
					// draining outCh so the workers can exit).
					if ctxErr == nil {
						ctxErr = rr.Err
					}
					continue
				}
				records[key] = RepRecord{
					Scheme: key.Scheme, Rho: key.Rho, Rep: key.Rep,
					Err: rr.Err.Error(),
				}
			} else {
				records[key] = e.makeRecord(shape, key, rr.Result)
			}
			if jnl != nil {
				if err := jnl.Append(records[key]); err != nil {
					return nil, fmt.Errorf("sweep: writing checkpoint: %w", err)
				}
			}
		}
	}
	if ctxErr != nil {
		return nil, ctxErr
	}

	// Deterministic aggregation: visit (scheme, rho, rep) in index order so
	// the float summaries are independent of worker scheduling and of how
	// the records were split between journal replay and fresh simulation.
	return e.Assemble(records, resumed, time.Since(start)), nil
}

// Metric selects which aggregate a table or CSV reports.
type Metric int

// Available metrics.
const (
	MetricReception Metric = iota
	MetricBroadcast
	MetricUnicast
	MetricHighWait
	MetricLowWait
	MetricAvgUtil
	MetricMaxDimUtil
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricReception:
		return "avg reception delay"
	case MetricBroadcast:
		return "avg broadcast delay"
	case MetricUnicast:
		return "avg unicast delay"
	case MetricHighWait:
		return "high-priority queue wait"
	case MetricLowWait:
		return "low-priority queue wait"
	case MetricAvgUtil:
		return "avg link utilization"
	case MetricMaxDimUtil:
		return "max dimension utilization"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

func (p *Point) summary(m Metric) *stats.Summary {
	switch m {
	case MetricBroadcast:
		return &p.Broadcast
	case MetricUnicast:
		return &p.Unicast
	case MetricHighWait:
		return &p.HighWait
	case MetricLowWait:
		return &p.LowWait
	case MetricAvgUtil:
		return &p.AvgUtil
	case MetricMaxDimUtil:
		return &p.MaxDimUtil
	default:
		return &p.Reception
	}
}

// Value returns the across-replication mean of the metric at this point.
func (p *Point) Value(m Metric) float64 { return p.summary(m).Mean() }

// Table renders the metric as a fixed-width text table: one row per rho,
// one column per scheme, unstable cells marked with '*'.
func (r *Result) Table(m Metric) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s)\n", r.Exp.Title, m, shapeName(r.Exp.Dims))
	fmt.Fprintf(&b, "%8s", "rho")
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %18s", s.Scheme.Name)
	}
	b.WriteByte('\n')
	for ri, rho := range r.Exp.Rhos {
		fmt.Fprintf(&b, "%8.3f", rho)
		for _, s := range r.Series {
			p := s.Points[ri]
			mark := " "
			if p.UnstableReps > 0 {
				mark = "*"
			}
			v := p.Value(m)
			if math.IsNaN(v) {
				fmt.Fprintf(&b, " %17s%s", "-", mark)
			} else {
				fmt.Fprintf(&b, " %17.3f%s", v, mark)
			}
		}
		b.WriteByte('\n')
	}
	if unstableAnywhere(r) {
		b.WriteString("  (* = backlog grew over the window: at or beyond saturation)\n")
	}
	return b.String()
}

func unstableAnywhere(r *Result) bool {
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.UnstableReps > 0 {
				return true
			}
		}
	}
	return false
}

// Plot renders the metric as an ASCII line chart over the rho grid, the
// textual analogue of the paper's figures. Saturated cells are clipped at
// four times the largest stable value so the pre-saturation region stays
// readable.
func (r *Result) Plot(m Metric) string {
	c := plot.Chart{
		Title:  fmt.Sprintf("%s — %s (%s)", r.Exp.Title, m, shapeName(r.Exp.Dims)),
		XLabel: "throughput factor rho",
		YLabel: m.String(),
	}
	maxStable := 0.0
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.UnstableReps == 0 && p.Value(m) > maxStable {
				maxStable = p.Value(m)
			}
		}
	}
	if maxStable > 0 {
		c.YMax = 4 * maxStable
	}
	for _, s := range r.Series {
		series := plot.Series{Name: s.Scheme.Name}
		for ri, rho := range r.Exp.Rhos {
			v := s.Points[ri].Value(m)
			if math.IsNaN(v) {
				continue
			}
			series.X = append(series.X, rho)
			series.Y = append(series.Y, v)
		}
		if err := c.Add(series); err != nil {
			return fmt.Sprintf("plot error: %v", err)
		}
	}
	return c.Render()
}

// CSV renders the metric as comma-separated values with a header row.
func (r *Result) CSV(m Metric) string {
	var b strings.Builder
	b.WriteString("rho")
	for _, s := range r.Series {
		fmt.Fprintf(&b, ",%s,%s_ci95,%s_unstable", s.Scheme.Name, s.Scheme.Name, s.Scheme.Name)
	}
	b.WriteByte('\n')
	for ri, rho := range r.Exp.Rhos {
		fmt.Fprintf(&b, "%g", rho)
		for _, s := range r.Series {
			p := s.Points[ri]
			fmt.Fprintf(&b, ",%g,%g,%d", p.Value(m), p.summary(m).HalfWidth95(), p.UnstableReps)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DimLoadReport renders the per-dimension link utilization of every
// (scheme, rho) cell, with the spread between the most and least loaded
// dimension. This is the quantity Eq. 2 (and Eq. 4 for mixed traffic)
// predicts equal across dimensions for a balanced scheme; an unbalanced
// baseline shows its throughput loss here as a persistent spread.
func (r *Result) DimLoadReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — per-dimension link utilization (%s)\n", r.Exp.Title, shapeName(r.Exp.Dims))
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%s:\n", s.Scheme.Name)
		for ri, rho := range r.Exp.Rhos {
			p := s.Points[ri]
			fmt.Fprintf(&b, "  rho %5.3f:", rho)
			lo, hi := math.Inf(1), math.Inf(-1)
			for i := range p.DimUtil {
				v := p.DimUtil[i].Mean()
				fmt.Fprintf(&b, "  d%d=%.4f", i, v)
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			if len(p.DimUtil) > 0 {
				fmt.Fprintf(&b, "  spread=%.4f", hi-lo)
			}
			if p.UnstableReps > 0 {
				b.WriteString("  *")
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func shapeName(dims []int) string {
	parts := make([]string, len(dims))
	for i, n := range dims {
		parts[i] = fmt.Sprint(n)
	}
	return strings.Join(parts, "x")
}

// SpeedupAt returns the ratio of scheme b's metric to scheme a's at the
// given rho (how many times larger b's delay is), for headline comparisons.
func (r *Result) SpeedupAt(m Metric, a, b string, rho float64) (float64, error) {
	var sa, sb *Series
	for i := range r.Series {
		switch r.Series[i].Scheme.Name {
		case a:
			sa = &r.Series[i]
		case b:
			sb = &r.Series[i]
		}
	}
	if sa == nil || sb == nil {
		return 0, fmt.Errorf("sweep: schemes %q/%q not in result", a, b)
	}
	for ri, rr := range r.Exp.Rhos {
		if math.Abs(rr-rho) < 1e-9 {
			va := sa.Points[ri].Value(m)
			if va == 0 {
				return 0, fmt.Errorf("sweep: zero baseline at rho=%g", rho)
			}
			return sb.Points[ri].Value(m) / va, nil
		}
	}
	return 0, fmt.Errorf("sweep: rho %g not on the grid", rho)
}

// StabilitySearch estimates the maximum stable throughput factor of a
// scheme by bisection: it runs short probe simulations and tests
// Result.Stable. The probe length trades accuracy for time; tol is the
// final interval width.
func StabilitySearch(dims []int, spec SchemeSpec, broadcastFrac float64, m balance.DistanceModel,
	probeSlots int64, reps int, seed uint64, lo, hi, tol float64) (float64, error) {
	shape, err := torus.New(dims...)
	if err != nil {
		return 0, err
	}
	var runner sim.Runner // probes share buffers across bisection steps
	stable := func(rho float64) (bool, error) {
		rates, err := traffic.RatesForRho(shape, rho, broadcastFrac, 1, m)
		if err != nil {
			return false, err
		}
		sch, err := spec.Build(shape, rates, m)
		if err != nil {
			return false, err
		}
		for rep := 0; rep < reps; rep++ {
			res, err := runner.Run(sim.Config{
				Shape: shape, Scheme: sch, Rates: rates,
				Seed:   seed ^ uint64(rep+1) ^ math.Float64bits(rho),
				Warmup: probeSlots / 4, Measure: probeSlots, Drain: 0,
				MaxBacklog: int64(shape.Links()) * probeSlots / 16,
			})
			if err != nil {
				return false, err
			}
			if !res.Stable(shape) {
				return false, nil
			}
		}
		return true, nil
	}
	if ok, err := stable(lo); err != nil {
		return 0, err
	} else if !ok {
		return lo, nil
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		ok, err := stable(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// SortSeriesByName orders the result's series alphabetically (stable
// rendering for goldens).
func (r *Result) SortSeriesByName() {
	sort.Slice(r.Series, func(i, j int) bool {
		return r.Series[i].Scheme.Name < r.Series[j].Scheme.Name
	})
}
