package sweep

import (
	"testing"

	"prioritystar/internal/balance"
)

func TestDelayCappedThroughputValidation(t *testing.T) {
	if _, err := DelayCappedThroughput([]int{4, 4}, PrioritySTARSpec, 1,
		balance.ExactDistance, CapReception, 0, 1000, 1, 0.1, 0.9, 0.1); err == nil {
		t.Error("zero cap should fail")
	}
	if _, err := DelayCappedThroughput([]int{4, 4}, PrioritySTARSpec, 1,
		balance.ExactDistance, CapUnicast, 10, 1000, 1, 0.1, 0.9, 0.1); err == nil {
		t.Error("unicast cap without unicast traffic should fail")
	}
	if _, err := DelayCappedThroughput([]int{1}, PrioritySTARSpec, 1,
		balance.ExactDistance, CapReception, 10, 1000, 1, 0.1, 0.9, 0.1); err == nil {
		t.Error("bad shape should fail")
	}
}

// TestDelayCappedThroughputPriorityWins quantifies the Section 3.2 remark:
// under a reception-delay budget, priority STAR sustains a strictly higher
// throughput factor than the FCFS baseline.
func TestDelayCappedThroughputPriorityWins(t *testing.T) {
	// Cap at ~1.6x the uncontended delay on a 4x8 torus (avg distance
	// ~2.58 -> cap 4.2 slots).
	const cap = 4.2
	prio, err := DelayCappedThroughput([]int{4, 8}, PrioritySTARSpec, 1,
		balance.ExactDistance, CapReception, cap, 3000, 17, 0.2, 1.0, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	fcfs, err := DelayCappedThroughput([]int{4, 8}, FCFSDirectSpec, 1,
		balance.ExactDistance, CapReception, cap, 3000, 17, 0.2, 1.0, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	if prio <= fcfs {
		t.Errorf("delay-capped throughput: priority %g should exceed FCFS %g", prio, fcfs)
	}
	if prio < 0.4 || prio > 1.0 {
		t.Errorf("priority capped throughput %g implausible", prio)
	}
}

// TestDelayCappedThroughputTightCap: an unattainably tight cap returns lo.
func TestDelayCappedThroughputTightCap(t *testing.T) {
	got, err := DelayCappedThroughput([]int{4, 8}, FCFSDirectSpec, 1,
		balance.ExactDistance, CapReception, 0.5 /* below min distance */, 1500, 3, 0.2, 0.9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.2 {
		t.Errorf("tight cap should return lo, got %g", got)
	}
}

// TestDelayCappedBroadcastMetric exercises the broadcast-delay cap path.
func TestDelayCappedBroadcastMetric(t *testing.T) {
	got, err := DelayCappedThroughput([]int{4, 4}, PrioritySTARSpec, 1,
		balance.ExactDistance, CapBroadcast, 8, 2000, 5, 0.2, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.2 || got > 1.0 {
		t.Errorf("broadcast-capped throughput %g out of range", got)
	}
}

// TestDelayCappedUnicastMetric exercises the unicast-delay cap path with
// mixed traffic.
func TestDelayCappedUnicastMetric(t *testing.T) {
	got, err := DelayCappedThroughput([]int{4, 4}, PrioritySTAR3Spec, 0.5,
		balance.ExactDistance, CapUnicast, 4, 2000, 5, 0.2, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Prioritized unicast stays near distance (~2.1) essentially forever.
	if got < 0.7 {
		t.Errorf("prioritized unicast capped throughput %g, want high", got)
	}
}
