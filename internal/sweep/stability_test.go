package sweep

import (
	"strings"
	"testing"

	"prioritystar/internal/balance"
	"prioritystar/internal/sim"
	"prioritystar/internal/torus"
)

// TestStabilitySearchAllUnstable: when even lo is unstable the search must
// return lo without bisecting (the all-unstable series case).
func TestStabilitySearchAllUnstable(t *testing.T) {
	got, err := StabilitySearch([]int{4, 4}, FCFSDirectSpec, 1,
		balance.ExactDistance, 2000, 1, 11, 2.0, 3.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.0 {
		t.Errorf("all-unstable search returned %g, want lo (2.0)", got)
	}
}

// TestStabilitySearchDegenerateInterval: tol at least as wide as the
// interval means no bisection step runs; a stable lo yields the midpoint.
func TestStabilitySearchDegenerateInterval(t *testing.T) {
	got, err := StabilitySearch([]int{4, 4}, PrioritySTARSpec, 1,
		balance.ExactDistance, 1500, 1, 11, 0.3, 0.4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.35 {
		t.Errorf("degenerate interval returned %g, want midpoint 0.35", got)
	}
}

// TestStabilitySearchBadDims: invalid torus dimensions surface as an error,
// not a panic.
func TestStabilitySearchBadDims(t *testing.T) {
	if _, err := StabilitySearch([]int{0}, PrioritySTARSpec, 1,
		balance.ExactDistance, 1000, 1, 1, 0.5, 1.0, 0.1); err == nil {
		t.Error("zero dimension accepted")
	}
}

// mkResult builds a Result by hand for unstableAnywhere/Table tests.
func mkResult(rhos []float64, points ...[]Point) *Result {
	r := &Result{Exp: &Experiment{ID: "t", Title: "t", Dims: []int{4, 4}, Rhos: rhos}}
	for i, pts := range points {
		r.Series = append(r.Series, Series{Scheme: SchemeSpec{Name: string(rune('A' + i))}, Points: pts})
	}
	return r
}

// TestUnstableAnywhereEdgeCases covers the grid shapes the marker logic has
// to get right: empty results, single-rho grids, all-unstable series, and
// diverged replications (which count as unstable).
func TestUnstableAnywhereEdgeCases(t *testing.T) {
	if unstableAnywhere(&Result{Exp: &Experiment{}}) {
		t.Error("empty result reported unstable")
	}
	single := mkResult([]float64{0.5}, []Point{{Rho: 0.5}})
	if unstableAnywhere(single) {
		t.Error("stable single-rho grid reported unstable")
	}
	single.Series[0].Points[0].UnstableReps = 1
	if !unstableAnywhere(single) {
		t.Error("unstable single-rho grid missed")
	}
	allBad := mkResult([]float64{0.5, 0.9},
		[]Point{{Rho: 0.5, UnstableReps: 2}, {Rho: 0.9, UnstableReps: 2}})
	if !unstableAnywhere(allBad) {
		t.Error("all-unstable series missed")
	}
	// A watchdog-terminated rep is recorded as both diverged and unstable:
	// DivergedReps must never exceed UnstableReps and alone implies marking.
	div := mkResult([]float64{1.2},
		[]Point{{Rho: 1.2, UnstableReps: 1, DivergedReps: 1}})
	if !unstableAnywhere(div) {
		t.Error("diverged rep did not trip the instability check")
	}
}

// TestTableMarkerSynthetic: on hand-built results, the table stars unstable
// cells and appends the footnote only when something is unstable.
func TestTableMarkerSynthetic(t *testing.T) {
	stable := mkResult([]float64{0.5}, []Point{{Rho: 0.5}})
	if s := stable.Table(MetricReception); strings.Contains(s, "*") {
		t.Errorf("stable table contains a marker:\n%s", s)
	}
	marked := mkResult([]float64{0.5}, []Point{{Rho: 0.5, UnstableReps: 1}})
	s := marked.Table(MetricReception)
	if !strings.Contains(s, "*") || !strings.Contains(s, "saturation") {
		t.Errorf("unstable table missing marker or footnote:\n%s", s)
	}
}

// TestDivergedFeedsUnstable: end-to-end check that a sim run terminated by
// the watchdog surfaces through makeRecord into UnstableReps/DivergedReps.
func TestDivergedFeedsUnstable(t *testing.T) {
	shape := torus.MustNew(4, 4)
	res := &sim.Result{Status: sim.StatusDiverged}
	rec := tinyExperiment().makeRecord(shape, RepKey{0, 0, 0}, res)
	if rec.Stable {
		t.Error("diverged result recorded as stable")
	}
	if rec.Status != sim.StatusDiverged.String() {
		t.Errorf("status = %q, want %q", rec.Status, sim.StatusDiverged)
	}
}
