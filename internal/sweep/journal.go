package sweep

// Crash-resilient sweep checkpoints. A journal is a JSONL file: a header
// line carrying a fingerprint of the experiment, then one line per completed
// replication with every per-rep value the aggregation step consumes. A
// sweep run with Checkpoint set appends each replication as it completes
// (flushed per line, so a killed process loses at most the line being
// written); a run with Resume set replays the journal first and only
// simulates the replications it does not cover. Because aggregation is
// order-deterministic over (scheme, rho, rep) — never over completion order
// — a resumed sweep produces the exact table an uninterrupted one would.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
)

// journalMagic identifies sweep checkpoint journals.
const journalMagic = "pssweep1"

// jsonFloat is a float64 whose JSON form maps non-finite values to null
// (encoding/json rejects NaN and the infinities).
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = jsonFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// journalHeader is the first line of a checkpoint journal.
type journalHeader struct {
	Magic       string `json:"journal"`
	Fingerprint string `json:"fingerprint"`
}

// repRecord is one completed replication: everything aggregation needs, so
// a resumed sweep never re-runs the simulation behind it.
type repRecord struct {
	Scheme int `json:"s"`
	Rho    int `json:"r"`
	Rep    int `json:"rep"`

	Reception  jsonFloat   `json:"rcp"`
	Broadcast  jsonFloat   `json:"bc"`
	Unicast    jsonFloat   `json:"uni"`
	HighWait   jsonFloat   `json:"hw"`
	LowWait    jsonFloat   `json:"lw"`
	AvgUtil    jsonFloat   `json:"au"`
	MaxDimUtil jsonFloat   `json:"mdu"`
	DimUtil    []jsonFloat `json:"du"`

	GeneratedBroadcasts  int64 `json:"gb"`
	IncompleteBroadcasts int64 `json:"ib"`

	Stable bool   `json:"st"`
	Status string `json:"status,omitempty"` // sim.Status name when not "ok"
	Err    string `json:"err,omitempty"`    // per-rep failure (panic, bad config)
}

// fingerprint identifies the experiment a journal belongs to: resuming with
// a different grid, scheme list, seed, or fault schedule must error rather
// than silently mix results.
func (e *Experiment) fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "id=%s dims=%v rhos=%v frac=%g reps=%d seed=%d w=%d m=%d d=%d mb=%d len=%g model=%d",
		e.ID, e.Dims, e.Rhos, e.BroadcastFrac, e.Reps, e.BaseSeed,
		e.Warmup, e.Measure, e.Drain, e.MaxBacklog, e.Length.Mean(), e.Model)
	for _, s := range e.Schemes {
		fmt.Fprintf(&b, " scheme=%s/%d/%d/%t", s.Name, s.Discipline, s.Rotation, s.SeparateBalance)
	}
	fmt.Fprintf(&b, " faults=%q guard=%+v", e.Faults.String(), e.Guard)
	return b.String()
}

// journal appends repRecords to a checkpoint file, flushing per record.
type journal struct {
	f *os.File
	w *bufio.Writer
}

// createJournal truncates (or creates) path and writes the header line.
func createJournal(path, fingerprint string) (*journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: creating checkpoint: %w", err)
	}
	j := &journal{f: f, w: bufio.NewWriter(f)}
	if err := j.appendLine(journalHeader{Magic: journalMagic, Fingerprint: fingerprint}); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// openJournalAppend opens an existing journal for appending new records,
// first truncating it to validLen so a torn final line from the crash does
// not swallow the next record written after it.
func openJournalAppend(path string, validLen int64) (*journal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: opening checkpoint: %w", err)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: trimming torn checkpoint tail: %w", err)
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: seeking checkpoint: %w", err)
	}
	return &journal{f: f, w: bufio.NewWriter(f)}, nil
}

func (j *journal) appendLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sweep: encoding checkpoint record: %w", err)
	}
	if _, err := j.w.Write(b); err != nil {
		return err
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return err
	}
	// One flush per record: a crash loses at most the record in flight.
	return j.w.Flush()
}

func (j *journal) append(rec repRecord) error { return j.appendLine(rec) }

func (j *journal) close() error {
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// loadJournal replays a checkpoint file. It verifies the header fingerprint
// against the experiment, returns every intact record keyed by
// (scheme, rho, rep), and tolerates a torn final line (the crash case the
// journal exists for). validLen is the byte length of the intact prefix —
// the caller truncates to it before appending, so a torn tail can never
// corrupt the first record a resumed sweep writes. A missing file is not an
// error: the sweep simply starts from scratch.
func loadJournal(path, fingerprint string) (recs map[repKey]repRecord, validLen int64, found bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("sweep: opening checkpoint: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, 0, false, nil // empty file: treat as absent
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Magic != journalMagic {
		return nil, 0, false, fmt.Errorf("sweep: %s is not a sweep checkpoint journal", path)
	}
	if hdr.Fingerprint != fingerprint {
		return nil, 0, false, fmt.Errorf("sweep: checkpoint %s belongs to a different experiment (fingerprint mismatch); delete it or drop -resume", path)
	}
	validLen = int64(len(sc.Bytes())) + 1
	recs = make(map[repKey]repRecord)
	for sc.Scan() {
		var rec repRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			break // torn tail from a crash: keep what we have
		}
		validLen += int64(len(sc.Bytes())) + 1
		recs[repKey{rec.Scheme, rec.Rho, rec.Rep}] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, 0, false, fmt.Errorf("sweep: reading checkpoint: %w", err)
	}
	return recs, validLen, true, nil
}
