package sweep

// Crash-resilient sweep checkpoints, built on the shared JSONL journal
// machinery in internal/journal: a header line carrying the experiment's
// fingerprint, then one line per completed replication with every per-rep
// value the aggregation step consumes. A sweep run with Checkpoint set
// appends each replication as it completes (flushed per line, so a killed
// process loses at most the line being written); a run with Resume set
// replays the journal first and only simulates the replications it does not
// cover. Because aggregation is order-deterministic over (scheme, rho, rep)
// — never over completion order — a resumed sweep produces the exact table
// an uninterrupted one would.
//
// The checkpoint types are exported because the cluster coordinator
// (internal/cluster) maintains the same journal while scattering sub-jobs
// across a fleet: records gathered from remote workers land in the same
// format, so a distributed sweep resumes (and folds) exactly like a local
// one.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"

	journalpkg "prioritystar/internal/journal"
)

// journalMagic identifies sweep checkpoint journals.
const journalMagic = "pssweep1"

// jsonFloat is a float64 whose JSON form maps non-finite values to null
// (encoding/json rejects NaN and the infinities).
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = jsonFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// RepKey identifies one replication of one (scheme, rho) cell by index.
type RepKey struct{ Scheme, Rho, Rep int }

// RepRecord is one completed replication: everything aggregation needs, so
// a resumed sweep never re-runs the simulation behind it. It is both the
// checkpoint-journal line format and the wire format cluster workers return
// sub-job results in.
type RepRecord struct {
	Scheme int `json:"s"`
	Rho    int `json:"r"`
	Rep    int `json:"rep"`

	Reception  jsonFloat   `json:"rcp"`
	Broadcast  jsonFloat   `json:"bc"`
	Unicast    jsonFloat   `json:"uni"`
	HighWait   jsonFloat   `json:"hw"`
	LowWait    jsonFloat   `json:"lw"`
	AvgUtil    jsonFloat   `json:"au"`
	MaxDimUtil jsonFloat   `json:"mdu"`
	DimUtil    []jsonFloat `json:"du"`

	GeneratedBroadcasts  int64 `json:"gb"`
	IncompleteBroadcasts int64 `json:"ib"`

	Stable bool   `json:"st"`
	Status string `json:"status,omitempty"` // sim.Status name when not "ok"
	Err    string `json:"err,omitempty"`    // per-rep failure (panic, bad config)
}

// Key returns the record's (scheme, rho, rep) index key.
func (r RepRecord) Key() RepKey { return RepKey{r.Scheme, r.Rho, r.Rep} }

// fingerprint identifies the experiment a journal belongs to: resuming with
// a different grid, scheme list, seed, or fault schedule must error rather
// than silently mix results. When the caller stamped a canonical fingerprint
// on the experiment (spec.Fingerprint does; starsim and the daemon stamp
// it), that is used verbatim; otherwise a legacy descriptor string is
// derived from the fields.
func (e *Experiment) fingerprint() string {
	if e.Fingerprint != "" {
		return e.Fingerprint
	}
	var b strings.Builder
	fmt.Fprintf(&b, "id=%s dims=%v rhos=%v frac=%g reps=%d seed=%d w=%d m=%d d=%d mb=%d len=%g model=%d",
		e.ID, e.Dims, e.Rhos, e.BroadcastFrac, e.Reps, e.BaseSeed,
		e.Warmup, e.Measure, e.Drain, e.MaxBacklog, e.Length.Mean(), e.Model)
	for _, s := range e.Schemes {
		fmt.Fprintf(&b, " scheme=%s/%d/%d/%t", s.Name, s.Discipline, s.Rotation, s.SeparateBalance)
	}
	fmt.Fprintf(&b, " faults=%q guard=%+v", e.Faults.String(), e.Guard)
	return b.String()
}

// JournalFingerprint is the identity a checkpoint journal for this
// experiment is keyed by: the stamped canonical fingerprint when present,
// else a legacy descriptor derived from the fields.
func (e *Experiment) JournalFingerprint() string { return e.fingerprint() }

// CheckpointWriter appends replication records to a checkpoint journal.
type CheckpointWriter struct {
	w *journalpkg.Writer
}

// Append journals one completed replication (flushed immediately).
func (c *CheckpointWriter) Append(rec RepRecord) error { return c.w.Append(rec) }

// Close flushes and closes the journal.
func (c *CheckpointWriter) Close() error { return c.w.Close() }

// CreateCheckpoint truncates (or creates) path and writes the header line.
func CreateCheckpoint(path, fingerprint string) (*CheckpointWriter, error) {
	j, err := journalpkg.Create(path, journalMagic, fingerprint)
	if err != nil {
		return nil, fmt.Errorf("sweep: creating checkpoint: %w", err)
	}
	return &CheckpointWriter{w: j}, nil
}

// OpenCheckpointAppend opens an existing journal for appending new records,
// first truncating it to validLen so a torn final line from the crash does
// not swallow the next record written after it.
func OpenCheckpointAppend(path string, validLen int64) (*CheckpointWriter, error) {
	j, err := journalpkg.OpenAppend(path, validLen)
	if err != nil {
		return nil, fmt.Errorf("sweep: opening checkpoint: %w", err)
	}
	return &CheckpointWriter{w: j}, nil
}

// LoadCheckpoint replays a checkpoint file. It verifies the header
// fingerprint, returns every intact record keyed by (scheme, rho, rep), and
// tolerates a torn final line (the crash case the journal exists for).
// validLen is the byte length of the intact prefix — the caller truncates to
// it before appending, so a torn tail can never corrupt the first record a
// resumed sweep writes. A missing file is not an error: the sweep simply
// starts from scratch.
func LoadCheckpoint(path, fingerprint string) (recs map[RepKey]RepRecord, validLen int64, found bool, err error) {
	recs = make(map[RepKey]RepRecord)
	validLen, found, err = journalpkg.Load(path, journalMagic, fingerprint, func(line []byte) error {
		var rec RepRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return err // torn tail from a crash: keep what we have
		}
		recs[rec.Key()] = rec
		return nil
	})
	var fpErr *journalpkg.ErrFingerprint
	if errors.As(err, &fpErr) {
		return nil, 0, false, fmt.Errorf("sweep: checkpoint %s belongs to a different experiment (fingerprint mismatch); delete it or drop -resume", path)
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("sweep: %w", err)
	}
	if !found {
		return nil, 0, false, nil
	}
	return recs, validLen, true, nil
}

// openCheckpoint resolves the replay-or-create dance Run and the cluster
// coordinator both perform: with Resume set, an existing journal is replayed
// (records returned) and reopened for appending past its intact prefix;
// otherwise a fresh journal is created.
func openCheckpoint(path, fingerprint string, resume bool) (map[RepKey]RepRecord, *CheckpointWriter, error) {
	records := make(map[RepKey]RepRecord)
	if resume {
		resumed, validLen, found, err := LoadCheckpoint(path, fingerprint)
		if err != nil {
			return nil, nil, err
		}
		if found {
			w, err := OpenCheckpointAppend(path, validLen)
			if err != nil {
				return nil, nil, err
			}
			return resumed, w, nil
		}
	}
	w, err := CreateCheckpoint(path, fingerprint)
	if err != nil {
		return nil, nil, err
	}
	return records, w, nil
}
