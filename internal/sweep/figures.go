package sweep

import (
	"fmt"
	"sort"

	"prioritystar/internal/balance"
	"prioritystar/internal/traffic"
)

// Scale selects how much simulation effort a predefined experiment spends.
type Scale int

const (
	// Quick is sized for tests and smoke runs: a coarse rho grid and short
	// windows. Shapes are still the paper's.
	Quick Scale = iota
	// Standard reproduces every figure with tight-enough confidence
	// intervals in minutes on a laptop.
	Standard
	// Full uses long windows and more replications for publication-grade
	// curves.
	Full
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Standard:
		return "standard"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

func (s Scale) params() (warmup, measure, drain int64, reps int, rhos []float64) {
	switch s {
	case Quick:
		return 1000, 3000, 1500, 2, []float64{0.1, 0.5, 0.8}
	case Full:
		return 5000, 30000, 10000, 5,
			[]float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95}
	default: // Standard
		return 3000, 10000, 4000, 3,
			[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}
	}
}

// figureBuilders constructs every predefined experiment at a given scale.
// Keys are experiment IDs; the Notes field records which paper figure(s)
// each experiment regenerates.
var figureBuilders = map[string]func(Scale) *Experiment{
	"fig2+5": func(s Scale) *Experiment { return broadcastFigure(s, "fig2+5", "Figs. 2 and 5", []int{8, 8}) },
	"fig3+6": func(s Scale) *Experiment { return broadcastFigure(s, "fig3+6", "Figs. 3 and 6", []int{16, 16}) },
	"fig4+7": func(s Scale) *Experiment { return broadcastFigure(s, "fig4+7", "Figs. 4 and 7", []int{8, 8, 8}) },
	"fig8-hetero-delay": func(s Scale) *Experiment {
		w, m, d, reps, rhos := s.params()
		return &Experiment{
			ID:    "fig8-hetero-delay",
			Title: "Heterogeneous traffic: unicast and reception delay vs rho",
			Notes: "Fig. 8 / Section 4: 50% unicast + 50% broadcast load; priority keeps unicast delay O(d)",
			Dims:  []int{8, 8}, Rhos: rhos, BroadcastFrac: 0.5,
			Schemes: []SchemeSpec{PrioritySTAR3Spec, PrioritySTARSpec, FCFSDirectSpec},
			Model:   balance.ExactDistance,
			Warmup:  w, Measure: m, Drain: d, Reps: reps, BaseSeed: 0xf18b,
		}
	},
	"fig8-balance": func(s Scale) *Experiment {
		w, m, d, reps, _ := s.params()
		return &Experiment{
			ID:    "fig8-balance",
			Title: "Asymmetric torus: joint (Eq. 4) vs separate (Eq. 2) balancing",
			Notes: "Section 1/4 example: 4x4x8 torus, 50/50 traffic; separate balancing saturates its long dimension well before rho = 1",
			Dims:  []int{4, 4, 8}, Rhos: []float64{0.5, 0.6, 0.7, 0.75, 0.78, 0.82, 0.85, 0.9, 0.95},
			BroadcastFrac: 0.5,
			Schemes:       []SchemeSpec{PrioritySTARSpec, SeparatePrioSpec, SeparateSpec},
			Model:         balance.ExactDistance,
			Warmup:        w, Measure: m, Drain: d, Reps: reps, BaseSeed: 0xf18c,
		}
	},
	"ablation-matrix": func(s Scale) *Experiment {
		w, m, d, reps, rhos := s.params()
		return &Experiment{
			ID:    "ablation-matrix",
			Title: "Ablation: rotation policy x priority discipline on an asymmetric torus",
			Notes: "Isolates the two ingredients of priority STAR (balanced rotation, priority) on a 4x8 torus",
			Dims:  []int{4, 8}, Rhos: rhos, BroadcastFrac: 1,
			Schemes: []SchemeSpec{
				PrioritySTARSpec, FCFSDirectSpec,
				UniformPrioSpec, UniformFCFSSpec,
				DimOrderPrioSpec, DimOrderSpec,
			},
			Model:  balance.ExactDistance,
			Warmup: w, Measure: m, Drain: d, Reps: reps, BaseSeed: 0xab1a,
		}
	},
	"ablation-varlen": func(s Scale) *Experiment {
		w, m, d, reps, rhos := s.params()
		return &Experiment{
			ID:    "ablation-varlen",
			Title: "Variable-length broadcast packets (geometric, mean 4)",
			Notes: "Section 3.2 claim: priority STAR applies unmodified to variable-length packets",
			Dims:  []int{8, 8}, Rhos: rhos, BroadcastFrac: 1,
			Schemes: []SchemeSpec{PrioritySTARSpec, FCFSDirectSpec},
			Length:  traffic.GeometricLength(4),
			Model:   balance.ExactDistance,
			Warmup:  w * 2, Measure: m * 2, Drain: d * 2, Reps: reps, BaseSeed: 0xab1b,
		}
	},
	"ablation-hypercube": func(s Scale) *Experiment {
		w, m, d, reps, rhos := s.params()
		return &Experiment{
			ID:    "ablation-hypercube",
			Title: "Hypercube (2-ary 8-cube) random broadcasting",
			Notes: "The companion [21] setting: hypercubes are the n=2 special case of the torus scheme",
			Dims:  []int{2, 2, 2, 2, 2, 2, 2, 2}, Rhos: rhos, BroadcastFrac: 1,
			Schemes: []SchemeSpec{PrioritySTARSpec, FCFSDirectSpec},
			Model:   balance.ExactDistance,
			Warmup:  w, Measure: m, Drain: d, Reps: reps, BaseSeed: 0xab1c,
		}
	},
	"ablation-floor-model": func(s Scale) *Experiment {
		w, m, d, reps, _ := s.params()
		return &Experiment{
			ID:    "ablation-floor-model",
			Title: "Balancing with the paper's floor(n/4) distances instead of exact",
			Notes: "Section 4 approximation: floor distances leave a small residual imbalance on 4x4x8",
			Dims:  []int{4, 4, 8}, Rhos: []float64{0.5, 0.7, 0.85, 0.95}, BroadcastFrac: 0.5,
			Schemes: []SchemeSpec{PrioritySTARSpec},
			Model:   balance.PaperFloorDistance,
			Warmup:  w, Measure: m, Drain: d, Reps: reps, BaseSeed: 0xab1d,
		}
	},
}

// broadcastFigure builds the broadcast-only delay experiments behind
// Figs. 2-7 (each topology yields both the reception-delay and the
// broadcast-delay figure from the same runs).
func broadcastFigure(s Scale, id, notes string, dims []int) *Experiment {
	w, m, d, reps, rhos := s.params()
	return &Experiment{
		ID:    id,
		Title: fmt.Sprintf("Random broadcasting on %s: priority STAR vs FCFS direct", shapeName(dims)),
		Notes: notes + ": reception delay and broadcast delay vs throughput factor",
		Dims:  dims, Rhos: rhos, BroadcastFrac: 1,
		Schemes: []SchemeSpec{PrioritySTARSpec, FCFSDirectSpec},
		Model:   balance.ExactDistance,
		Warmup:  w, Measure: m, Drain: d, Reps: reps, BaseSeed: 0xf125,
	}
}

// FigureIDs lists the predefined experiment IDs in stable order.
func FigureIDs() []string {
	ids := make([]string, 0, len(figureBuilders))
	for id := range figureBuilders {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Figure returns the predefined experiment with the given ID at the given
// scale.
func Figure(id string, scale Scale) (*Experiment, error) {
	b, ok := figureBuilders[id]
	if !ok {
		return nil, fmt.Errorf("sweep: unknown experiment %q (known: %v)", id, FigureIDs())
	}
	return b(scale), nil
}
