package sweep

import (
	"fmt"
	"math"

	"prioritystar/internal/balance"
	"prioritystar/internal/sim"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// CappedMetric selects which delay a DelayCappedThroughput search bounds.
type CappedMetric int

// Delay metrics a throughput search can cap.
const (
	CapReception CappedMetric = iota
	CapBroadcast
	CapUnicast
)

// DelayCappedThroughput estimates, by bisection, the largest throughput
// factor at which a scheme keeps the chosen average delay at or below
// maxDelay. This quantifies the Section 3.2 observation that under a delay
// budget a priority-based scheme sustains strictly higher throughput than
// FCFS. Unstable probes count as exceeding any cap.
func DelayCappedThroughput(dims []int, spec SchemeSpec, broadcastFrac float64,
	m balance.DistanceModel, metric CappedMetric, maxDelay float64,
	probeSlots int64, seed uint64, lo, hi, tol float64) (float64, error) {
	if maxDelay <= 0 {
		return 0, fmt.Errorf("sweep: delay cap must be positive, got %g", maxDelay)
	}
	if metric == CapUnicast && broadcastFrac >= 1 {
		return 0, fmt.Errorf("sweep: unicast cap needs unicast traffic (broadcastFrac < 1)")
	}
	shape, err := torus.New(dims...)
	if err != nil {
		return 0, err
	}
	var runner sim.Runner // probes share buffers across bisection steps
	within := func(rho float64) (bool, error) {
		rates, err := traffic.RatesForRho(shape, rho, broadcastFrac, 1, m)
		if err != nil {
			return false, err
		}
		sch, err := spec.Build(shape, rates, m)
		if err != nil {
			return false, err
		}
		res, err := runner.Run(sim.Config{
			Shape: shape, Scheme: sch, Rates: rates,
			Seed:   seed ^ math.Float64bits(rho),
			Warmup: probeSlots / 4, Measure: probeSlots, Drain: probeSlots / 2,
			MaxBacklog: int64(shape.Links()) * probeSlots / 16,
		})
		if err != nil {
			return false, err
		}
		if !res.Stable(shape) {
			return false, nil
		}
		var d float64
		switch metric {
		case CapBroadcast:
			d = res.Broadcast.Mean()
		case CapUnicast:
			d = res.Unicast.Mean()
		default:
			d = res.Reception.Mean()
		}
		return d <= maxDelay, nil
	}
	ok, err := within(lo)
	if err != nil {
		return 0, err
	}
	if !ok {
		return lo, nil
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		ok, err := within(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
