package sweep

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prioritystar/internal/balance"
	"prioritystar/internal/fault"
	"prioritystar/internal/sim"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// tableFingerprint renders every metric of a result to one string so two
// results can be compared for exact (bit-identical float formatting)
// equality.
func tableFingerprint(r *Result) string {
	var b strings.Builder
	for m := MetricReception; m <= MetricMaxDimUtil; m++ {
		b.WriteString(r.CSV(m))
	}
	return b.String()
}

// TestCheckpointResumeMatchesUninterrupted is the acceptance scenario: a
// sweep is killed partway (simulated by truncating its checkpoint journal to
// a prefix, with a torn final line), resumed, and must produce the exact
// point table of an uninterrupted sweep.
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()

	// Uninterrupted reference (no checkpoint at all).
	ref, err := tinyExperiment().Run()
	if err != nil {
		t.Fatal(err)
	}
	want := tableFingerprint(ref)

	// Full run with a journal.
	full := tinyExperiment()
	full.Checkpoint = filepath.Join(dir, "full.jsonl")
	fres, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := tableFingerprint(fres); got != want {
		t.Fatalf("journaling changed the result:\n%s\nvs\n%s", got, want)
	}

	// Simulate the crash: keep the header, a few intact records, and a torn
	// half-written line.
	data, err := os.ReadFile(full.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 5 {
		t.Fatalf("journal too short to truncate: %d lines", len(lines))
	}
	partial := filepath.Join(dir, "crashed.jsonl")
	torn := strings.Join(lines[:4], "") + lines[4][:len(lines[4])/2]
	if err := os.WriteFile(partial, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume from the crashed journal.
	resumed := tinyExperiment()
	resumed.Checkpoint = partial
	resumed.Resume = true
	ran := 0
	resumed.Progress = func(done, total int) { ran = total }
	rres, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	wholeGrid := len(resumed.Schemes) * len(resumed.Rhos) * resumed.Reps
	if ran == 0 || ran >= wholeGrid {
		t.Errorf("resume ran %d of %d replications; want a proper subset (journal replay skipped the rest)", ran, wholeGrid)
	}
	if got := tableFingerprint(rres); got != want {
		t.Errorf("resumed sweep differs from uninterrupted:\n%s\nvs\n%s", got, want)
	}

	// Resuming the now-complete journal runs nothing and still matches.
	again := tinyExperiment()
	again.Checkpoint = partial
	again.Resume = true
	reran := -1
	again.Progress = func(done, total int) { reran = total }
	ares, err := again.Run()
	if err != nil {
		t.Fatal(err)
	}
	if reran != -1 {
		t.Errorf("second resume re-ran %d replications; journal should cover everything", reran)
	}
	if got := tableFingerprint(ares); got != want {
		t.Errorf("replay-only sweep differs from uninterrupted")
	}
}

// TestResumeRejectsForeignJournal: resuming against a journal written by a
// different experiment must fail loudly, not silently mix data.
func TestResumeRejectsForeignJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.jsonl")
	first := tinyExperiment()
	first.Checkpoint = path
	if _, err := first.Run(); err != nil {
		t.Fatal(err)
	}
	other := tinyExperiment()
	other.BaseSeed++ // different experiment
	other.Checkpoint = path
	other.Resume = true
	if _, err := other.Run(); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("foreign journal accepted (err = %v)", err)
	}
}

// TestResumeWithMissingJournalStartsFresh: -resume on a first run (no file
// yet) must behave like a plain checkpointed run.
func TestResumeWithMissingJournalStartsFresh(t *testing.T) {
	e := tinyExperiment()
	e.Checkpoint = filepath.Join(t.TempDir(), "new.jsonl")
	e.Resume = true
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("got %d series", len(res.Series))
	}
	if _, err := os.Stat(e.Checkpoint); err != nil {
		t.Errorf("journal not created: %v", err)
	}
}

// TestRunSafeRecoversPanics: a panicking simulation becomes an error, the
// worker's Runner is kept (its warm buffers recovered in place, no cold
// reallocation for every later point), and later runs on it are unaffected.
func TestRunSafeRecoversPanics(t *testing.T) {
	shape := torus.MustNew(4, 4)
	rates, err := traffic.RatesForRho(shape, 0.3, 1, 1, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := PrioritySTARSpec.Build(shape, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Shape: shape, Scheme: sch, Rates: rates, Seed: 4,
		Warmup: 10, Measure: 100, Drain: 50,
		OnDeliver: func(sim.DeliverEvent) { panic("boom") },
	}
	runner := new(sim.Runner)
	before := runner
	res, err := runSafe(&runner, cfg)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want recovered panic", err)
	}
	if res != nil {
		t.Error("panicked run returned a result")
	}
	if runner != before {
		t.Error("Runner was replaced instead of recovered in place")
	}
	cfg.OnDeliver = nil
	good, err := runSafe(&runner, cfg)
	if err != nil || good == nil {
		t.Fatalf("recovered runner failed: %v", err)
	}

	// The recovered runner must also still be deterministic: same config on a
	// fresh Runner yields the same result.
	ref, err := new(sim.Runner).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if good.GeneratedBroadcasts != ref.GeneratedBroadcasts || good.Reception.Mean() != ref.Reception.Mean() {
		t.Errorf("recovered runner diverged from fresh runner: %+v vs %+v", good, ref)
	}
}

// TestExecutionModesBitIdentical: the batched dispatch (the default) and the
// historical per-rep sequential dispatch must produce the exact same point
// table — same seeds per rep, same Result fields, same float formatting.
func TestExecutionModesBitIdentical(t *testing.T) {
	seq := tinyExperiment()
	seq.Execution = ExecSequential
	sres, err := seq.Run()
	if err != nil {
		t.Fatal(err)
	}
	bat := tinyExperiment()
	bat.Execution = ExecBatched
	bat.Workers = 3 // uneven split across the 4 cells
	bres, err := bat.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tableFingerprint(bres), tableFingerprint(sres); got != want {
		t.Errorf("batched sweep differs from sequential:\n%s\nvs\n%s", got, want)
	}
}

// TestResumeLandsMidBatch: a crash that journals only some replications of a
// (scheme, rho) cell forces the resumed batched sweep to dispatch a partial
// batch for that cell — only the missing reps, with their original seeds.
func TestResumeLandsMidBatch(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Experiment {
		e := tinyExperiment()
		e.Reps = 4 // big enough cells that a truncation lands inside one
		return e
	}

	ref, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	want := tableFingerprint(ref)

	full := mk()
	full.Checkpoint = filepath.Join(dir, "full.jsonl")
	if _, err := full.Run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the header plus 6 records: cell (0,0) complete (4 reps) and cell
	// (0,1) half done (2 of 4), so the resume must run a 2-rep partial batch
	// for (0,1) and full batches for the untouched cells.
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 8 {
		t.Fatalf("journal too short: %d lines", len(lines))
	}
	partial := filepath.Join(dir, "midbatch.jsonl")
	if err := os.WriteFile(partial, []byte(strings.Join(lines[:7], "")), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := mk()
	resumed.Checkpoint = partial
	resumed.Resume = true
	ran := 0
	resumed.Progress = func(done, total int) { ran = total }
	rres, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	wholeGrid := len(resumed.Schemes) * len(resumed.Rhos) * resumed.Reps
	if missing := wholeGrid - 6; ran != missing {
		t.Errorf("resume ran %d replications, want %d (journal covered 6)", ran, missing)
	}
	if got := tableFingerprint(rres); got != want {
		t.Errorf("mid-batch resume differs from uninterrupted:\n%s\nvs\n%s", got, want)
	}
}

// TestExperimentRecordsPerPointErrors: a fault schedule that fails to
// compile for the shape is rejected up front, but a panic mid-sweep lands in
// Point.FailedReps. Exercised here through the record-aggregation path.
func TestExperimentRecordsPerPointErrors(t *testing.T) {
	e := tinyExperiment()
	e.Faults = &fault.Schedule{Links: []torus.LinkID{99999}}
	if _, err := e.Run(); err == nil {
		t.Error("invalid fault schedule accepted")
	}

	// Error records aggregate into FailedReps without killing the sweep.
	shape := torus.MustNew(4, 4)
	e2 := tinyExperiment()
	recs := map[RepKey]RepRecord{
		{0, 0, 0}: {Scheme: 0, Rho: 0, Rep: 0, Err: "simulated failure"},
	}
	_ = shape
	// Aggregate through the public path: run the sweep, then overlay the
	// failure by rebuilding points from records via a resumed journal.
	dir := t.TempDir()
	path := filepath.Join(dir, "err.jsonl")
	j, err := CreateCheckpoint(path, e2.fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	e2.Checkpoint = path
	e2.Resume = true
	res, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	p := res.Series[0].Points[0]
	if p.FailedReps != 1 || p.Error != "simulated failure" {
		t.Errorf("FailedReps=%d Error=%q; want the journaled failure surfaced", p.FailedReps, p.Error)
	}
	if p.Reception.N() != e2.Reps-1 {
		t.Errorf("failed rep leaked into aggregates: N=%d", p.Reception.N())
	}
}

// TestSweepContextCancellation: a cancelled context aborts the sweep with
// the context's error.
func TestSweepContextCancellation(t *testing.T) {
	e := tinyExperiment()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.Context = ctx
	if _, err := e.Run(); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestSweepWithFaultsAndWatchdog runs a faulted, guarded sweep end to end:
// the rho=1.4 column must be cut short by the watchdog and feed the
// instability marking.
func TestSweepWithFaultsAndWatchdog(t *testing.T) {
	e := tinyExperiment()
	e.Rhos = []float64{0.3, 1.4}
	e.Schemes = []SchemeSpec{PrioritySTARSpec}
	e.Faults = &fault.Schedule{Seed: 3, RandomLinks: 1}
	e.Guard = sim.DefaultGuard(torus.MustNew(e.Dims...))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	if pts[1].DivergedReps != e.Reps {
		t.Errorf("rho=1.4: DivergedReps=%d, want %d", pts[1].DivergedReps, e.Reps)
	}
	if pts[1].UnstableReps != e.Reps {
		t.Errorf("rho=1.4: UnstableReps=%d, want %d (diverged reps are unstable)", pts[1].UnstableReps, e.Reps)
	}
	if pts[0].DivergedReps != 0 {
		t.Errorf("rho=0.3 diverged %d reps under a single link fault", pts[0].DivergedReps)
	}
}
