package sweep

import (
	"math"
	"strings"
	"testing"

	"prioritystar/internal/balance"
	"prioritystar/internal/core"
	"prioritystar/internal/stats"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// tinyExperiment is a fast 4x4 sweep used by most tests.
func tinyExperiment() *Experiment {
	return &Experiment{
		ID: "tiny", Title: "tiny test sweep",
		Dims: []int{4, 4}, Rhos: []float64{0.2, 0.8}, BroadcastFrac: 1,
		Schemes: []SchemeSpec{PrioritySTARSpec, FCFSDirectSpec},
		Model:   balance.ExactDistance,
		Warmup:  500, Measure: 2500, Drain: 1000, Reps: 2, BaseSeed: 99,
	}
}

func TestExperimentValidation(t *testing.T) {
	mutations := []func(*Experiment){
		func(e *Experiment) { e.Dims = nil },
		func(e *Experiment) { e.Rhos = nil },
		func(e *Experiment) { e.Schemes = nil },
		func(e *Experiment) { e.Reps = 0 },
		func(e *Experiment) { e.Measure = 0 },
		func(e *Experiment) { e.Dims = []int{1} }, // invalid shape
	}
	for i, mut := range mutations {
		e := tinyExperiment()
		mut(e)
		if _, err := e.Run(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

func TestRunStructureAndSanity(t *testing.T) {
	e := tinyExperiment()
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("got %d series", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 2 {
			t.Fatalf("scheme %s: %d points", s.Scheme.Name, len(s.Points))
		}
		for pi, p := range s.Points {
			if p.Reception.N() != e.Reps {
				t.Errorf("%s point %d: %d reps", s.Scheme.Name, pi, p.Reception.N())
			}
			if p.Value(MetricReception) < 1 {
				t.Errorf("%s point %d: reception %g < 1", s.Scheme.Name, pi, p.Value(MetricReception))
			}
			if p.GeneratedBroadcasts == 0 {
				t.Errorf("%s point %d: no tasks generated", s.Scheme.Name, pi)
			}
		}
		// Delay must grow with rho.
		if s.Points[1].Value(MetricReception) <= s.Points[0].Value(MetricReception) {
			t.Errorf("%s: delay did not grow with rho", s.Scheme.Name)
		}
		// Measured utilization tracks rho.
		if math.Abs(s.Points[0].Value(MetricAvgUtil)-0.2) > 0.05 {
			t.Errorf("%s: utilization %g at rho 0.2", s.Scheme.Name, s.Points[0].Value(MetricAvgUtil))
		}
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := tinyExperiment().Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tinyExperiment().Run()
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Series {
		for pi := range a.Series[si].Points {
			va := a.Series[si].Points[pi].Value(MetricReception)
			vb := b.Series[si].Points[pi].Value(MetricReception)
			if va != vb {
				t.Fatalf("series %d point %d: %g != %g (non-deterministic)", si, pi, va, vb)
			}
		}
	}
}

func TestRunWorkersBounded(t *testing.T) {
	e := tinyExperiment()
	e.Workers = 1
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e = tinyExperiment()
	e.Workers = 64 // more than jobs; must clamp without deadlock
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTableAndCSV(t *testing.T) {
	res, err := tinyExperiment().Run()
	if err != nil {
		t.Fatal(err)
	}
	table := res.Table(MetricReception)
	for _, want := range []string{"priority-STAR", "FCFS-direct", "0.200", "0.800", "avg reception delay"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := res.CSV(MetricBroadcast)
	if !strings.HasPrefix(csv, "rho,") {
		t.Errorf("csv header wrong: %q", csv[:20])
	}
	if lines := strings.Count(csv, "\n"); lines != 3 { // header + 2 rho rows
		t.Errorf("csv has %d lines, want 3", lines)
	}
}

func TestSpeedupAt(t *testing.T) {
	res, err := tinyExperiment().Run()
	if err != nil {
		t.Fatal(err)
	}
	// FCFS delay relative to priority STAR at rho 0.8 must be >= 1 (the
	// paper's headline).
	sp, err := res.SpeedupAt(MetricReception, "priority-STAR", "FCFS-direct", 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if sp < 1 {
		t.Errorf("FCFS/priority ratio = %g, want >= 1", sp)
	}
	if _, err := res.SpeedupAt(MetricReception, "nope", "FCFS-direct", 0.8); err == nil {
		t.Error("unknown scheme should error")
	}
	if _, err := res.SpeedupAt(MetricReception, "priority-STAR", "FCFS-direct", 0.33); err == nil {
		t.Error("off-grid rho should error")
	}
}

func TestMetricStrings(t *testing.T) {
	metrics := []Metric{MetricReception, MetricBroadcast, MetricUnicast,
		MetricHighWait, MetricLowWait, MetricAvgUtil, MetricMaxDimUtil}
	seen := map[string]bool{}
	for _, m := range metrics {
		name := m.String()
		if name == "" || seen[name] {
			t.Errorf("metric %d: bad or duplicate name %q", int(m), name)
		}
		seen[name] = true
	}
	if Metric(99).String() == "" {
		t.Error("unknown metric should still print")
	}
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Standard.String() != "standard" || Full.String() != "full" {
		t.Error("scale names wrong")
	}
	if Scale(9).String() == "" {
		t.Error("unknown scale should print")
	}
}

func TestFigureRegistry(t *testing.T) {
	ids := FigureIDs()
	if len(ids) < 7 {
		t.Fatalf("only %d predefined experiments", len(ids))
	}
	for _, id := range ids {
		e, err := Figure(id, Quick)
		if err != nil {
			t.Fatalf("Figure(%q): %v", id, err)
		}
		if e.ID != id {
			t.Errorf("Figure(%q).ID = %q", id, e.ID)
		}
		if err := e.validate(); err != nil {
			t.Errorf("Figure(%q) invalid: %v", id, err)
		}
		if e.Notes == "" || e.Title == "" {
			t.Errorf("Figure(%q) missing documentation fields", id)
		}
	}
	if _, err := Figure("fig99", Quick); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestFigureScalesDiffer(t *testing.T) {
	q, _ := Figure("fig2+5", Quick)
	s, _ := Figure("fig2+5", Standard)
	f, _ := Figure("fig2+5", Full)
	if !(q.Measure < s.Measure && s.Measure < f.Measure) {
		t.Error("measure windows should grow with scale")
	}
	if !(len(q.Rhos) < len(s.Rhos)) {
		t.Error("rho grid should refine with scale")
	}
	if !(q.Reps <= s.Reps && s.Reps <= f.Reps) {
		t.Error("reps should grow with scale")
	}
}

// TestSchemeSpecBuildSeparate: SeparateBalance must produce the Eq. 2
// (broadcast-only) vector even when unicast traffic is offered.
func TestSchemeSpecBuildSeparate(t *testing.T) {
	shape := mustShape(t, 4, 8)
	rates := ratesFor(t, shape, 0.8, 0.5)
	joint, err := PrioritySTARSpec.Build(shape, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sep, err := SeparateSpec.Build(shape, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	bcOnly, err := balance.BroadcastOnly(shape)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sep.Vector.X {
		if math.Abs(sep.Vector.X[i]-bcOnly.X[i]) > 1e-9 {
			t.Errorf("separate vector[%d] = %g, want Eq.2 value %g", i, sep.Vector.X[i], bcOnly.X[i])
		}
	}
	// The joint vector must differ (it compensates for unicast imbalance).
	same := true
	for i := range joint.Vector.X {
		if math.Abs(joint.Vector.X[i]-bcOnly.X[i]) > 1e-6 {
			same = false
		}
	}
	if same {
		t.Error("joint vector should differ from the separate one on 4x8 with unicast load")
	}
}

func TestStabilitySearchFindsSaturation(t *testing.T) {
	// Balanced priority STAR on 4x4 should be stable essentially to rho ~ 1.
	got, err := StabilitySearch([]int{4, 4}, PrioritySTARSpec, 1,
		balance.ExactDistance, 3000, 1, 7, 0.5, 1.2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.85 || got > 1.1 {
		t.Errorf("max stable rho = %g, want ~1", got)
	}
	// Starting beyond saturation returns lo immediately.
	got, err = StabilitySearch([]int{4, 4}, FCFSDirectSpec, 1,
		balance.ExactDistance, 3000, 1, 7, 1.3, 1.6, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1.3 {
		t.Errorf("unstable lo should be returned, got %g", got)
	}
}

func TestSortSeriesByName(t *testing.T) {
	res := &Result{Series: []Series{
		{Scheme: SchemeSpec{Name: "zzz"}},
		{Scheme: SchemeSpec{Name: "aaa"}},
	}}
	res.SortSeriesByName()
	if res.Series[0].Scheme.Name != "aaa" {
		t.Error("series not sorted")
	}
}

// TestDimOrderCollapsesEarly reproduces the Section 1 observation on which
// the rotation is motivated: fixed dimension-ordered broadcast saturates at
// a far lower rho than priority STAR on the same torus.
func TestDimOrderCollapsesEarly(t *testing.T) {
	e := &Experiment{
		ID: "dimorder", Title: "dim order collapse",
		Dims: []int{4, 8}, Rhos: []float64{0.8}, BroadcastFrac: 1,
		Schemes: []SchemeSpec{DimOrderSpec, PrioritySTARSpec},
		Model:   balance.ExactDistance,
		Warmup:  500, Measure: 4000, Drain: 0, Reps: 1, BaseSeed: 5,
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	dimOrder, star := res.Series[0].Points[0], res.Series[1].Points[0]
	if dimOrder.UnstableReps == 0 {
		// At rho=0.8 the fixed tree overloads its last dimension:
		// a_{1,1}/2 links carry 28/2 = 14 transmissions per task vs the
		// balanced 15.5/2; utilization ratio 14/7.75 ~ 1.8 > 1/0.8.
		t.Error("dimension-ordered broadcast should be unstable at rho=0.8 on 4x8")
	}
	if star.UnstableReps != 0 {
		t.Error("priority STAR should remain stable at rho=0.8")
	}
}

// TestSchemeMatrixOrdering: on an asymmetric torus at high rho, balanced
// rotation must beat uniform rotation, and priority must beat FCFS.
func TestSchemeMatrixOrdering(t *testing.T) {
	e := &Experiment{
		ID: "matrix", Title: "matrix",
		Dims: []int{4, 8}, Rhos: []float64{0.85}, BroadcastFrac: 1,
		Schemes: []SchemeSpec{PrioritySTARSpec, FCFSDirectSpec, UniformFCFSSpec},
		Model:   balance.ExactDistance,
		Warmup:  2000, Measure: 8000, Drain: 4000, Reps: 2, BaseSeed: 6,
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	star := res.Series[0].Points[0]
	fcfs := res.Series[1].Points[0]
	uniform := res.Series[2].Points[0]
	if star.Value(MetricReception) >= fcfs.Value(MetricReception) {
		t.Errorf("priority %g should beat FCFS %g",
			star.Value(MetricReception), fcfs.Value(MetricReception))
	}
	// Uniform rotation overloads the long dimension: its max dim
	// utilization exceeds the balanced one.
	if uniform.Value(MetricMaxDimUtil) <= fcfs.Value(MetricMaxDimUtil)+0.02 {
		t.Errorf("uniform max-dim util %g should exceed balanced %g",
			uniform.Value(MetricMaxDimUtil), fcfs.Value(MetricMaxDimUtil))
	}
}

func mustShape(t *testing.T, dims ...int) *torus.Shape {
	t.Helper()
	s, err := torus.New(dims...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func ratesFor(t *testing.T, s *torus.Shape, rho, frac float64) traffic.Rates {
	t.Helper()
	r, err := traffic.RatesForRho(s, rho, frac, 1, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

var _ = core.FCFS // document the dependency on core's discipline constants

func TestPlotRendersSeries(t *testing.T) {
	res, err := tinyExperiment().Run()
	if err != nil {
		t.Fatal(err)
	}
	out := res.Plot(MetricReception)
	for _, want := range []string{"priority-STAR", "FCFS-direct", "throughput factor rho"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
}

func TestPointSummaryAllMetrics(t *testing.T) {
	p := &Point{}
	metrics := []Metric{MetricReception, MetricBroadcast, MetricUnicast,
		MetricHighWait, MetricLowWait, MetricAvgUtil, MetricMaxDimUtil}
	seen := map[*stats.Summary]bool{}
	for _, m := range metrics {
		s := p.summary(m)
		if s == nil || seen[s] {
			t.Errorf("metric %v: nil or duplicate summary pointer", m)
		}
		seen[s] = true
	}
	// Unknown metrics fall back to reception.
	if p.summary(Metric(99)) != &p.Reception {
		t.Error("unknown metric should map to reception")
	}
}

func TestTableMarksUnstableCells(t *testing.T) {
	e := &Experiment{
		ID: "unstable", Title: "unstable",
		Dims: []int{4, 4}, Rhos: []float64{1.3}, BroadcastFrac: 1,
		Schemes: []SchemeSpec{FCFSDirectSpec},
		Model:   balance.ExactDistance,
		Warmup:  200, Measure: 4000, Drain: 0, Reps: 1, BaseSeed: 12,
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Series[0].Points[0].UnstableReps == 0 {
		t.Fatal("rho=1.3 must be unstable")
	}
	table := res.Table(MetricReception)
	if !strings.Contains(table, "*") || !strings.Contains(table, "saturation") {
		t.Errorf("unstable cell not marked:\n%s", table)
	}
}

func TestProgressCallbackCoversAllJobs(t *testing.T) {
	e := tinyExperiment()
	var calls []int
	lastTotal := 0
	e.Progress = func(done, total int) {
		calls = append(calls, done)
		lastTotal = total
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	wantJobs := len(e.Schemes) * len(e.Rhos) * e.Reps
	if lastTotal != wantJobs {
		t.Errorf("total %d, want %d", lastTotal, wantJobs)
	}
	if len(calls) != wantJobs {
		t.Fatalf("%d progress calls for %d jobs", len(calls), wantJobs)
	}
	// The collector invokes Progress serially in completion order, so done
	// must count up 1..N.
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("call %d reported done=%d", i, d)
		}
	}
}

func TestDimUtilAggregatedPerPoint(t *testing.T) {
	e := tinyExperiment()
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := torus.MustNew(e.Dims...)
	for _, series := range res.Series {
		for pi, p := range series.Points {
			if len(p.DimUtil) != s.Dims() {
				t.Fatalf("%s point %d: %d dims", series.Scheme.Name, pi, len(p.DimUtil))
			}
			var sum float64
			for _, u := range p.DimUtil {
				if u.N() != e.Reps {
					t.Errorf("%s point %d: dim summary has %d reps", series.Scheme.Name, pi, u.N())
				}
				sum += u.Mean()
			}
			if avg := sum / float64(s.Dims()); math.Abs(avg-p.Value(MetricAvgUtil)) > 1e-9 {
				t.Errorf("%s point %d: dim-util average %g, avg-util metric %g",
					series.Scheme.Name, pi, avg, p.Value(MetricAvgUtil))
			}
		}
	}
	rep := res.DimLoadReport()
	for _, want := range []string{"per-dimension link utilization", "priority-STAR", "rho 0.800", "d0=", "d1=", "spread="} {
		if !strings.Contains(rep, want) {
			t.Errorf("DimLoadReport missing %q:\n%s", want, rep)
		}
	}
}
