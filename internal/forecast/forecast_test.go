package forecast

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic, manually-advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestForecaster(clk *fakeClock) *Forecaster {
	return New(Config{
		HalfLife: time.Second,
		Horizon:  3 * time.Second,
		Now:      clk.now,
	})
}

// TestRatesConverge: a steady event stream converges the EWMA to the true
// rate from both above and below.
func TestRatesConverge(t *testing.T) {
	clk := newFakeClock()
	f := newTestForecaster(clk)
	for i := 0; i < 100; i++ {
		f.ObserveArrival()
		clk.advance(100 * time.Millisecond) // 10 arrivals/sec
	}
	for i := 0; i < 100; i++ {
		f.ObserveCompletion()
		clk.advance(500 * time.Millisecond) // 2 completions/sec
	}
	fc := f.Forecast()
	if fc.ArrivalRate < 9 || fc.ArrivalRate > 11 {
		t.Fatalf("arrival rate = %g, want ~10/s", fc.ArrivalRate)
	}
	if fc.CompletionRate < 1.8 || fc.CompletionRate > 2.2 {
		t.Fatalf("completion rate = %g, want ~2/s", fc.CompletionRate)
	}
}

// TestDepthTrend: a linear depth ramp yields a matching Holt slope and a
// prediction that runs ahead of the current level.
func TestDepthTrend(t *testing.T) {
	clk := newFakeClock()
	f := newTestForecaster(clk)
	// Depth grows 2 jobs/sec, sampled at 10 Hz for 5 seconds.
	for i := 0; i <= 50; i++ {
		f.ObserveDepth(i / 5)
		clk.advance(100 * time.Millisecond)
	}
	fc := f.Forecast()
	if fc.Slope < 1 || fc.Slope > 3 {
		t.Fatalf("slope = %g jobs/s, want ~2", fc.Slope)
	}
	now := f.PredictedDepth(0)
	ahead := f.PredictedDepth(2 * time.Second)
	if ahead <= now {
		t.Fatalf("prediction not ahead of level: now %g, +2s %g", now, ahead)
	}
}

// TestOverloadedPredictsRamp: with the queue half full and growing, the
// horizon projection trips Overloaded before the queue is actually full;
// a flat shallow queue never trips it.
func TestOverloadedPredictsRamp(t *testing.T) {
	clk := newFakeClock()
	f := newTestForecaster(clk)
	const cap = 16
	// Ramp from 0 to 15 over 5s: the lagged level sits past half cap with a
	// ~3 jobs/s slope, so the 3s horizon projects beyond 16.
	for i := 0; i <= 50; i++ {
		f.ObserveDepth(i * 3 / 10)
		clk.advance(100 * time.Millisecond)
	}
	if !f.Overloaded(cap) {
		t.Fatalf("ramp to %g at %g/s did not predict overload of cap %d",
			f.Forecast().Depth, f.Forecast().Slope, cap)
	}

	// A flat queue at depth 3 must never trip, whatever the horizon says.
	clk2 := newFakeClock()
	g := newTestForecaster(clk2)
	for i := 0; i < 50; i++ {
		g.ObserveDepth(3)
		clk2.advance(100 * time.Millisecond)
	}
	if g.Overloaded(cap) {
		t.Fatalf("flat depth 3 predicted overload of cap %d", cap)
	}
}

// TestRetryAfterScalesWithBacklog: deeper backlogs and slower drains give
// longer hints, clamped to [floor, 10s].
func TestRetryAfterScalesWithBacklog(t *testing.T) {
	const cap = 16
	floor := time.Second

	build := func(depth int, arrivalsPerSec, completionsPerSec float64) *Forecaster {
		clk := newFakeClock()
		f := newTestForecaster(clk)
		for i := 0; i < 40; i++ {
			f.ObserveDepth(depth)
			if arrivalsPerSec > 0 {
				f.ObserveArrival()
			}
			if completionsPerSec > 0 {
				f.ObserveCompletion()
			}
			clk.advance(250 * time.Millisecond)
		}
		return f
	}

	// Shallow queue: the static floor.
	if got := build(2, 0, 4).RetryAfter(cap, floor); got != floor {
		t.Fatalf("shallow queue hint = %v, want floor %v", got, floor)
	}
	// Deep queue draining at ~4/s net: (12-8)/4 = ~1s — above floor, below ceiling.
	slow := build(12, 0, 4).RetryAfter(cap, floor)
	if slow < floor || slow > 10*time.Second {
		t.Fatalf("draining-queue hint = %v, want within [1s, 10s]", slow)
	}
	// Deep queue with arrivals outpacing completions: the 10s ceiling.
	if got := build(14, 8, 2).RetryAfter(cap, floor); got != 10*time.Second {
		t.Fatalf("growing-backlog hint = %v, want 10s ceiling", got)
	}
	// Hints must be monotone in backlog depth at a fixed drain rate.
	if a, b := build(10, 0, 2).RetryAfter(cap, floor), build(15, 0, 2).RetryAfter(cap, floor); b < a {
		t.Fatalf("hint shrank as backlog grew: depth 10 -> %v, depth 15 -> %v", a, b)
	}
}

// TestColdStartIsHarmless: a fresh forecaster answers every query without
// dividing by zero and without shedding anything.
func TestColdStartIsHarmless(t *testing.T) {
	f := New(Config{})
	if f.Overloaded(16) {
		t.Fatal("cold forecaster predicted overload")
	}
	if got := f.RetryAfter(16, time.Second); got != time.Second {
		t.Fatalf("cold RetryAfter = %v, want the 1s floor", got)
	}
	if d := f.PredictedDepth(time.Minute); d != 0 {
		t.Fatalf("cold PredictedDepth = %g, want 0", d)
	}
	snap := f.Snapshot()
	for k, v := range snap {
		if v != 0 {
			t.Fatalf("cold snapshot gauge %s = %g, want 0", k, v)
		}
	}
}

// TestConcurrentUse exercises the mutex under the race detector.
func TestConcurrentUse(t *testing.T) {
	f := New(Config{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				f.ObserveArrival()
				f.ObserveCompletion()
				f.ObserveDepth(j % 20)
				f.Overloaded(16)
				f.RetryAfter(16, time.Second)
				f.Snapshot()
			}
		}()
	}
	wg.Wait()
}
