// Package forecast predicts the daemon's queue pressure from its own
// admission stream, so the service layer can shape load proactively
// instead of reacting only after the queue is already full.
//
// The Forecaster ingests three signals the job manager already produces —
// job arrivals (enqueues), job completions, and the queue depth observed at
// each submission — and maintains:
//
//   - exponentially-weighted arrival and completion rates (events/sec),
//     using the classic inter-event estimator: each event contributes its
//     instantaneous rate 1/dt, blended with a decay matched to the gap, so
//     bursts raise the estimate quickly and idle gaps let it relax;
//   - a Holt (level + trend) smoothing of the queue depth, yielding both a
//     denoised current depth and its slope in jobs/sec.
//
// From those it answers two questions the admission path asks on every
// overload decision: Overloaded — will the queue exceed its capacity within
// the look-ahead horizon if nothing changes? — and RetryAfter — how long
// until the backlog drains to a comfortable level, i.e. the Retry-After
// hint a 429 should carry instead of a fixed constant.
//
// All state updates take a timestamp from an injectable clock so tests can
// replay exact trajectories; the zero Config uses wall time.
package forecast

import (
	"math"
	"sync"
	"time"
)

// Config tunes a Forecaster. The zero value is usable.
type Config struct {
	// HalfLife is the smoothing half-life for the rate estimators and the
	// depth level: an observation's weight halves every HalfLife. Default 2s.
	HalfLife time.Duration
	// TrendHalfLife smooths the depth slope; slower than the level so a
	// momentary spike does not read as a sustained ramp. Default 2*HalfLife.
	TrendHalfLife time.Duration
	// Horizon is how far ahead Overloaded projects the queue depth.
	// Default 3s.
	Horizon time.Duration
	// Now supplies timestamps; nil uses time.Now. Tests inject a fake clock
	// to make trajectories exact.
	Now func() time.Time
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.HalfLife <= 0 {
		c.HalfLife = 2 * time.Second
	}
	if c.TrendHalfLife <= 0 {
		c.TrendHalfLife = 2 * c.HalfLife
	}
	if c.Horizon <= 0 {
		c.Horizon = 3 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Forecaster tracks queue-pressure trajectories. Safe for concurrent use.
type Forecaster struct {
	cfg Config

	mu sync.Mutex
	// rate estimators (events/sec)
	arrivalRate, completionRate float64
	lastArrival, lastCompletion time.Time
	// Holt smoothing of queue depth
	level, trend float64 // jobs, jobs/sec
	lastDepth    time.Time
	depthInit    bool
}

// New builds a Forecaster.
func New(cfg Config) *Forecaster {
	return &Forecaster{cfg: cfg.withDefaults()}
}

// decay returns the weight the old estimate keeps after dt under half-life
// hl: 2^(-dt/hl).
func decay(dt, hl time.Duration) float64 {
	if dt <= 0 {
		return 1
	}
	return math.Exp2(-float64(dt) / float64(hl))
}

// observeEvent updates one inter-event rate estimator.
func (f *Forecaster) observeEvent(rate *float64, last *time.Time, now time.Time) {
	if last.IsZero() {
		*last = now
		return // first event: no interval yet
	}
	dt := now.Sub(*last)
	*last = now
	if dt <= 0 {
		dt = time.Microsecond // two events in the same tick: very fast, not infinite
	}
	inst := float64(time.Second) / float64(dt)
	d := decay(dt, f.cfg.HalfLife)
	*rate = d**rate + (1-d)*inst
}

// ObserveArrival records one queue-bound job admission.
func (f *Forecaster) ObserveArrival() {
	now := f.cfg.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.observeEvent(&f.arrivalRate, &f.lastArrival, now)
}

// ObserveCompletion records one job leaving the system (done, failed,
// canceled, or quarantined — anything that frees queue capacity).
func (f *Forecaster) ObserveCompletion() {
	now := f.cfg.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.observeEvent(&f.completionRate, &f.lastCompletion, now)
}

// ObserveDepth records the queue depth seen at an admission decision,
// advancing the Holt level/trend state.
func (f *Forecaster) ObserveDepth(depth int) {
	now := f.cfg.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	d := float64(depth)
	if !f.depthInit {
		f.level, f.trend, f.lastDepth, f.depthInit = d, 0, now, true
		return
	}
	dt := now.Sub(f.lastDepth)
	f.lastDepth = now
	if dt <= 0 {
		dt = time.Microsecond
	}
	dtSec := dt.Seconds()
	prevLevel := f.level
	a := 1 - decay(dt, f.cfg.HalfLife)
	f.level = a*d + (1-a)*(f.level+f.trend*dtSec)
	b := 1 - decay(dt, f.cfg.TrendHalfLife)
	f.trend = b*(f.level-prevLevel)/dtSec + (1-b)*f.trend
}

// Forecast is a point-in-time view of the predictor state.
type Forecast struct {
	Depth          float64 // smoothed queue depth (jobs)
	Slope          float64 // depth trend (jobs/sec; positive means growing)
	ArrivalRate    float64 // admissions/sec
	CompletionRate float64 // completions/sec
}

// Forecast returns the current state.
func (f *Forecaster) Forecast() Forecast {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Forecast{
		Depth:          f.level,
		Slope:          f.trend,
		ArrivalRate:    f.arrivalRate,
		CompletionRate: f.completionRate,
	}
}

// PredictedDepth projects the smoothed depth ahead by horizon along the
// current trend, floored at zero.
func (f *Forecaster) PredictedDepth(horizon time.Duration) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return max(0, f.level+f.trend*horizon.Seconds())
}

// Overloaded reports whether the queue is predicted to be at or beyond
// queueCap within the configured horizon. It never fires while the queue is
// actually shallow (below half capacity): predictive shedding exists to cut
// off ramps before they hit the wall, not to refuse work an idle daemon
// could absorb.
func (f *Forecaster) Overloaded(queueCap int) bool {
	if queueCap <= 0 {
		return false
	}
	f.mu.Lock()
	level, trend := f.level, f.trend
	horizon := f.cfg.Horizon
	f.mu.Unlock()
	if level < float64(queueCap)/2 {
		return false
	}
	return level+trend*horizon.Seconds() >= float64(queueCap)
}

// RetryAfter estimates how long a rejected client should wait before the
// backlog has drained to half of queueCap, from the current depth and the
// net drain rate (completions minus arrivals, falling back to the depth
// trend when the rate estimators are cold). The hint is clamped to
// [floor, 10s]: never below the configured static hint, never so large
// that clients give up on a queue that turns over in seconds.
func (f *Forecaster) RetryAfter(queueCap int, floor time.Duration) time.Duration {
	const ceil = 10 * time.Second
	if floor <= 0 {
		floor = time.Second
	}
	f.mu.Lock()
	level, trend := f.level, f.trend
	arr, comp := f.arrivalRate, f.completionRate
	f.mu.Unlock()

	drain := comp - arr // jobs/sec leaving the backlog
	if comp == 0 && arr == 0 {
		drain = -trend // cold start: the depth slope is the only signal
	}
	excess := level - float64(queueCap)/2
	if excess <= 0 {
		return floor
	}
	if drain <= 0 {
		return ceil // backlog not draining: back off hard
	}
	hint := time.Duration(excess / drain * float64(time.Second))
	return min(max(hint, floor), ceil)
}

// Snapshot exports the predictor state as metric gauges.
func (f *Forecaster) Snapshot() map[string]float64 {
	fc := f.Forecast()
	return map[string]float64{
		"forecast_depth":           fc.Depth,
		"forecast_slope":           fc.Slope,
		"forecast_arrival_rate":    fc.ArrivalRate,
		"forecast_completion_rate": fc.CompletionRate,
	}
}
