// Package spec serializes experiment definitions to and from JSON so
// sweeps can be stored in files, shared, and replayed exactly (the
// `starsim -spec` flag). A spec file mirrors sweep.Experiment with
// human-friendly string encodings for schemes, packet lengths, and the
// distance model.
package spec

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"prioritystar/internal/balance"
	"prioritystar/internal/cli"
	"prioritystar/internal/core"
	"prioritystar/internal/sim"
	"prioritystar/internal/sweep"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// Scheme is the JSON form of a sweep.SchemeSpec: either a predefined name
// ("priority-star", "fcfs-direct", ...) or explicit fields.
type Scheme struct {
	Name       string `json:"name,omitempty"`
	Discipline string `json:"discipline,omitempty"` // fcfs | 2-level | 3-level
	Rotation   string `json:"rotation,omitempty"`   // balanced | uniform | fixed
	Separate   bool   `json:"separate,omitempty"`   // Eq. 2 balancing despite unicast
}

// Experiment is the JSON form of a sweep.Experiment.
type Experiment struct {
	ID            string    `json:"id"`
	Title         string    `json:"title,omitempty"`
	Notes         string    `json:"notes,omitempty"`
	Dims          []int     `json:"dims"`
	Rhos          []float64 `json:"rhos"`
	BroadcastFrac float64   `json:"broadcastFrac"`
	Schemes       []Scheme  `json:"schemes"`
	Length        string    `json:"length,omitempty"` // fixed:N | geom:MEAN
	Model         string    `json:"model,omitempty"`  // exact | floor
	Warmup        int64     `json:"warmup"`
	Measure       int64     `json:"measure"`
	Drain         int64     `json:"drain"`
	Reps          int       `json:"reps"`
	Seed          uint64    `json:"seed"`
	// MaxBacklog truncates a run whose queued-packet total exceeds it (0
	// keeps the engine default). It changes measured results, so it is part
	// of the spec and of Fingerprint.
	MaxBacklog int64 `json:"maxBacklog,omitempty"`

	// Execution selects the dispatch mode: "batched" (default; one
	// multi-replication batch per sweep cell) or "sequential" (one
	// Runner.Run per replication). Both produce bit-identical results, so
	// the field is kept out of Fingerprint — it only tunes how the work is
	// scheduled.
	Execution string `json:"execution,omitempty"`

	// Mode selects how the daemon may answer the submission: "" or "exact"
	// requires a real simulation; "approx" lets the analytic surrogate
	// answer from the closed-form model plus interpolation over cached
	// exact results, falling back to simulation when uncertain. The mode
	// cannot change simulated results, so like Execution it is excluded
	// from Fingerprint — an approx submission shares its cache identity
	// with the exact one.
	Mode string `json:"mode,omitempty"`
	// ApproxTol is the relative reception-delay error tolerance accepted in
	// approx mode (0: the daemon's default). Excluded from Fingerprint.
	ApproxTol float64 `json:"approxTol,omitempty"`

	// Faults is a fault-schedule description in the -faults CLI syntax
	// (e.g. "perm:2,trans:500/50,seed:7"); empty means a fault-free run.
	Faults string `json:"faults,omitempty"`
	// Guard configures the divergence watchdog; nil leaves it disabled.
	Guard *Guard `json:"guard,omitempty"`
}

// Guard is the JSON form of sim.Guard (watchdog thresholds). Zero fields
// keep the engine defaults; Default swaps in sim.DefaultGuard for the
// experiment's shape and lets explicit fields override it.
type Guard struct {
	Default        bool  `json:"default,omitempty"`
	DivergeBacklog int64 `json:"divergeBacklog,omitempty"`
	GrowthWindow   int64 `json:"growthWindow,omitempty"`
	GrowthRuns     int   `json:"growthRuns,omitempty"`
	GrowthSlack    int64 `json:"growthSlack,omitempty"`
}

func parseDiscipline(s string) (core.Discipline, error) {
	switch strings.ToLower(s) {
	case "", "fcfs":
		return core.FCFS, nil
	case "2-level", "two-level":
		return core.TwoLevel, nil
	case "3-level", "three-level":
		return core.ThreeLevel, nil
	default:
		return 0, fmt.Errorf("spec: unknown discipline %q", s)
	}
}

func parseRotation(s string) (core.Rotation, error) {
	switch strings.ToLower(s) {
	case "", "balanced":
		return core.BalancedRotation, nil
	case "uniform":
		return core.UniformRotation, nil
	case "fixed":
		return core.FixedEnding, nil
	default:
		return 0, fmt.Errorf("spec: unknown rotation %q", s)
	}
}

// resolve converts the JSON scheme into a sweep.SchemeSpec.
func (s Scheme) resolve() (sweep.SchemeSpec, error) {
	if s.Name != "" && s.Discipline == "" && s.Rotation == "" {
		return cli.SchemeByName(s.Name)
	}
	d, err := parseDiscipline(s.Discipline)
	if err != nil {
		return sweep.SchemeSpec{}, err
	}
	r, err := parseRotation(s.Rotation)
	if err != nil {
		return sweep.SchemeSpec{}, err
	}
	name := s.Name
	if name == "" {
		name = fmt.Sprintf("%s/%s", d, r)
		if s.Separate {
			name += "/separate"
		}
	}
	return sweep.SchemeSpec{Name: name, Discipline: d, Rotation: r, SeparateBalance: s.Separate}, nil
}

// ToSweep converts a decoded spec into a runnable experiment.
func (e *Experiment) ToSweep() (*sweep.Experiment, error) {
	out := &sweep.Experiment{
		ID: e.ID, Title: e.Title, Notes: e.Notes,
		Dims: e.Dims, Rhos: e.Rhos, BroadcastFrac: e.BroadcastFrac,
		Warmup: e.Warmup, Measure: e.Measure, Drain: e.Drain,
		Reps: e.Reps, BaseSeed: e.Seed, MaxBacklog: e.MaxBacklog,
	}
	for _, s := range e.Schemes {
		spec, err := s.resolve()
		if err != nil {
			return nil, err
		}
		out.Schemes = append(out.Schemes, spec)
	}
	if e.Length != "" {
		l, err := cli.ParseLength(e.Length)
		if err != nil {
			return nil, fmt.Errorf("spec: %v", err)
		}
		out.Length = l
	}
	switch strings.ToLower(e.Model) {
	case "", "exact":
		out.Model = balance.ExactDistance
	case "floor", "paper", "paper-floor":
		out.Model = balance.PaperFloorDistance
	default:
		return nil, fmt.Errorf("spec: unknown distance model %q", e.Model)
	}
	switch strings.ToLower(e.Execution) {
	case "", "batched":
		out.Execution = sweep.ExecBatched
	case "sequential":
		out.Execution = sweep.ExecSequential
	default:
		return nil, fmt.Errorf("spec: unknown execution mode %q", e.Execution)
	}
	switch strings.ToLower(e.Mode) {
	case "", "exact":
	case "approx", "approximate":
		out.Approx = true
	default:
		return nil, fmt.Errorf("spec: unknown mode %q (want \"exact\" or \"approx\")", e.Mode)
	}
	if e.ApproxTol < 0 {
		return nil, fmt.Errorf("spec: negative approxTol %g", e.ApproxTol)
	}
	out.ApproxTol = e.ApproxTol
	if e.Faults != "" {
		f, err := cli.ParseFaults(e.Faults)
		if err != nil {
			return nil, fmt.Errorf("spec: %v", err)
		}
		out.Faults = f
	}
	if e.Guard != nil {
		g := sim.Guard{
			DivergeBacklog: e.Guard.DivergeBacklog,
			GrowthWindow:   e.Guard.GrowthWindow,
			GrowthRuns:     e.Guard.GrowthRuns,
			GrowthSlack:    e.Guard.GrowthSlack,
		}
		if e.Guard.Default {
			shape, err := torus.New(e.Dims...)
			if err != nil {
				return nil, fmt.Errorf("spec: %v", err)
			}
			d := sim.DefaultGuard(shape)
			if g.DivergeBacklog == 0 {
				g.DivergeBacklog = d.DivergeBacklog
			}
			if g.GrowthWindow == 0 {
				g.GrowthWindow = d.GrowthWindow
			}
		}
		out.Guard = g
	}
	return out, nil
}

// Load decodes a JSON experiment spec and converts it.
func Load(r io.Reader) (*sweep.Experiment, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var e Experiment
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("spec: %v", err)
	}
	return e.ToSweep()
}

// Decode is Load over in-memory bytes — the daemon's job WAL stores each
// accepted spec as canonical JSON and rebuilds the experiment from it on
// crash recovery.
func Decode(data []byte) (*sweep.Experiment, error) {
	return Load(strings.NewReader(string(data)))
}

// FromSweep converts a runnable experiment back into its JSON form.
func FromSweep(e *sweep.Experiment) *Experiment {
	out := &Experiment{
		ID: e.ID, Title: e.Title, Notes: e.Notes,
		Dims: e.Dims, Rhos: e.Rhos, BroadcastFrac: e.BroadcastFrac,
		Warmup: e.Warmup, Measure: e.Measure, Drain: e.Drain,
		Reps: e.Reps, Seed: e.BaseSeed, MaxBacklog: e.MaxBacklog,
	}
	for _, s := range e.Schemes {
		out.Schemes = append(out.Schemes, Scheme{
			Name:       s.Name,
			Discipline: s.Discipline.String(),
			Rotation:   s.Rotation.String(),
			Separate:   s.SeparateBalance,
		})
	}
	switch e.Length.Kind() {
	case traffic.KindGeometric:
		out.Length = fmt.Sprintf("geom:%g", e.Length.Mean())
	default:
		out.Length = fmt.Sprintf("fixed:%d", int(e.Length.Mean()))
	}
	if e.Model == balance.PaperFloorDistance {
		out.Model = "floor"
	} else {
		out.Model = "exact"
	}
	if e.Execution == sweep.ExecSequential {
		out.Execution = "sequential"
	}
	if e.Approx {
		out.Mode = "approx"
	}
	out.ApproxTol = e.ApproxTol
	out.Faults = e.Faults.String()
	if e.Guard.DivergeBacklog != 0 || e.Guard.GrowthWindow != 0 ||
		e.Guard.GrowthRuns != 0 || e.Guard.GrowthSlack != 0 {
		out.Guard = &Guard{
			DivergeBacklog: e.Guard.DivergeBacklog,
			GrowthWindow:   e.Guard.GrowthWindow,
			GrowthRuns:     e.Guard.GrowthRuns,
			GrowthSlack:    e.Guard.GrowthSlack,
		}
	}
	return out
}

// Save encodes the experiment as indented JSON.
func Save(w io.Writer, e *sweep.Experiment) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(FromSweep(e))
}
