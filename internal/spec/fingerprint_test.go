package spec

import (
	"strings"
	"testing"

	"prioritystar/internal/sweep"
)

// base returns a representative experiment built from a JSON spec.
func base(t *testing.T, js string) *sweep.Experiment {
	t.Helper()
	e, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return e
}

const specA = `{
	"id": "fp-test", "dims": [4, 4], "rhos": [0.3, 0.6],
	"broadcastFrac": 0.75,
	"schemes": [{"name": "priority-star"}, {"discipline": "fcfs", "rotation": "fixed"}],
	"length": "geom:2", "model": "floor",
	"warmup": 100, "measure": 500, "drain": 200, "reps": 2, "seed": 7,
	"maxBacklog": 5000,
	"faults": "perm:1,seed:3",
	"guard": {"divergeBacklog": 1000}
}`

func TestFingerprintStableAcrossRoundTrip(t *testing.T) {
	e := base(t, specA)
	fp1, err := Fingerprint(e)
	if err != nil {
		t.Fatal(err)
	}
	// Spec -> sweep -> spec -> sweep must not move the fingerprint.
	rt, err := FromSweep(e).ToSweep()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := Fingerprint(rt)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("round trip moved fingerprint: %s -> %s", fp1, fp2)
	}
	if !strings.HasPrefix(fp1, "ps1-") || len(fp1) != len("ps1-")+64 {
		t.Fatalf("unexpected fingerprint shape: %q", fp1)
	}
}

func TestFingerprintKeyOrderAndNamingInsensitive(t *testing.T) {
	// Same experiment with JSON keys in a different order and the scheme
	// spelled out explicitly instead of by CLI name.
	const specB = `{
		"seed": 7, "reps": 2, "drain": 200, "measure": 500, "warmup": 100,
		"model": "paper-floor", "length": "geom:2",
		"schemes": [
			{"discipline": "2-level", "rotation": "balanced", "name": "priority-STAR"},
			{"rotation": "fixed", "discipline": "fcfs"}
		],
		"broadcastFrac": 0.75, "rhos": [0.3, 0.6], "dims": [4, 4],
		"maxBacklog": 5000,
		"guard": {"divergeBacklog": 1000},
		"faults": "perm:1,seed:3",
		"id": "some-other-name", "title": "labels are not content"
	}`
	fpA, err := Fingerprint(base(t, specA))
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := Fingerprint(base(t, specB))
	if err != nil {
		t.Fatal(err)
	}
	if fpA != fpB {
		t.Fatalf("equivalent specs fingerprint differently:\n a=%s\n b=%s", fpA, fpB)
	}
}

func TestFingerprintSeparatesDifferentContent(t *testing.T) {
	e := base(t, specA)
	fp, _ := Fingerprint(e)
	mutations := map[string]func(x *sweep.Experiment){
		"seed":       func(x *sweep.Experiment) { x.BaseSeed++ },
		"rho grid":   func(x *sweep.Experiment) { x.Rhos = append(x.Rhos, 0.9) },
		"dims":       func(x *sweep.Experiment) { x.Dims = []int{8, 8} },
		"reps":       func(x *sweep.Experiment) { x.Reps++ },
		"measure":    func(x *sweep.Experiment) { x.Measure++ },
		"maxBacklog": func(x *sweep.Experiment) { x.MaxBacklog++ },
		"faults":     func(x *sweep.Experiment) { x.Faults = nil },
		"guard":      func(x *sweep.Experiment) { x.Guard.DivergeBacklog++ },
		"scheme":     func(x *sweep.Experiment) { x.Schemes = x.Schemes[:1] },
	}
	for name, mutate := range mutations {
		m := base(t, specA)
		mutate(m)
		got, err := Fingerprint(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got == fp {
			t.Errorf("mutating %s did not change the fingerprint", name)
		}
	}
}

func TestFingerprintIgnoresExecutionKnobs(t *testing.T) {
	e := base(t, specA)
	fp, _ := Fingerprint(e)
	m := base(t, specA)
	m.ID = "renamed"
	m.Title = "different title"
	m.Notes = "different notes"
	m.Workers = 12
	m.Checkpoint = "/tmp/ckpt.jsonl"
	m.Resume = true
	m.Progress = func(done, total int) {}
	m.Execution = sweep.ExecSequential // bit-identical dispatch modes share a fingerprint
	m.Approx = true                    // serving mode: an approx submit must hit the exact cache
	m.ApproxTol = 0.25
	got, err := Fingerprint(m)
	if err != nil {
		t.Fatal(err)
	}
	if got != fp {
		t.Fatalf("execution knobs moved the fingerprint: %s -> %s", fp, got)
	}
}

func TestStampFeedsJournalHeader(t *testing.T) {
	e := base(t, specA)
	if e.Fingerprint != "" {
		t.Fatalf("Load should not pre-stamp, got %q", e.Fingerprint)
	}
	if err := Stamp(e); err != nil {
		t.Fatal(err)
	}
	fp, _ := Fingerprint(e)
	if e.Fingerprint != fp {
		t.Fatalf("Stamp stored %q, want %q", e.Fingerprint, fp)
	}
}

func TestCanonicalIsStableBytes(t *testing.T) {
	a, err := Canonical(base(t, specA))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Canonical(base(t, specA))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("canonical encoding unstable:\n%s\n%s", a, b)
	}
}
