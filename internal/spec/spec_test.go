package spec

import (
	"bytes"
	"strings"
	"testing"

	"prioritystar/internal/balance"
	"prioritystar/internal/core"
	"prioritystar/internal/sim"
	"prioritystar/internal/sweep"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

const sample = `{
  "id": "my-sweep",
  "title": "demo",
  "dims": [4, 8],
  "rhos": [0.2, 0.8],
  "broadcastFrac": 0.5,
  "schemes": [
    {"name": "priority-star"},
    {"discipline": "fcfs", "rotation": "uniform"},
    {"name": "sep", "discipline": "2-level", "rotation": "balanced", "separate": true}
  ],
  "length": "geom:3",
  "model": "floor",
  "warmup": 100,
  "measure": 1000,
  "drain": 200,
  "reps": 2,
  "seed": 42
}`

func TestLoad(t *testing.T) {
	e, err := Load(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "my-sweep" || len(e.Dims) != 2 || e.Dims[1] != 8 {
		t.Errorf("basic fields wrong: %+v", e)
	}
	if len(e.Schemes) != 3 {
		t.Fatalf("got %d schemes", len(e.Schemes))
	}
	if e.Schemes[0].Name != "priority-STAR" || e.Schemes[0].Discipline != core.TwoLevel {
		t.Errorf("named scheme wrong: %+v", e.Schemes[0])
	}
	if e.Schemes[1].Discipline != core.FCFS || e.Schemes[1].Rotation != core.UniformRotation {
		t.Errorf("explicit scheme wrong: %+v", e.Schemes[1])
	}
	if e.Schemes[1].Name == "" {
		t.Error("explicit scheme should get a synthesized name")
	}
	if !e.Schemes[2].SeparateBalance || e.Schemes[2].Name != "sep" {
		t.Errorf("separate scheme wrong: %+v", e.Schemes[2])
	}
	if e.Length.Kind() != traffic.KindGeometric || e.Length.Mean() != 3 {
		t.Errorf("length wrong: %+v", e.Length)
	}
	if e.Model != balance.PaperFloorDistance {
		t.Error("model wrong")
	}
	if e.BaseSeed != 42 || e.Reps != 2 || e.Measure != 1000 {
		t.Error("run parameters wrong")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		`{`, // syntax
		`{"id":"x","dims":[4],"rhos":[0.5],"schemes":[{"name":"nope"}],"measure":10,"reps":1}`,
		`{"id":"x","dims":[4],"rhos":[0.5],"schemes":[{"discipline":"weird"}],"measure":10,"reps":1}`,
		`{"id":"x","dims":[4],"rhos":[0.5],"schemes":[{"rotation":"weird"}],"measure":10,"reps":1}`,
		`{"id":"x","dims":[4],"rhos":[0.5],"schemes":[{"name":"priority-star"}],"length":"geom:0.2","measure":10,"reps":1}`,
		`{"id":"x","dims":[4],"rhos":[0.5],"schemes":[{"name":"priority-star"}],"model":"weird","measure":10,"reps":1}`,
		`{"id":"x","dims":[4],"rhos":[0.5],"schemes":[{"name":"priority-star"}],"execution":"turbo","measure":10,"reps":1}`,
		`{"unknownField": 3}`, // unknown fields rejected
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	orig, err := Load(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, buf.String())
	}
	if back.ID != orig.ID || back.BaseSeed != orig.BaseSeed ||
		len(back.Schemes) != len(orig.Schemes) ||
		back.Model != orig.Model ||
		back.Length.Mean() != orig.Length.Mean() {
		t.Errorf("round trip mismatch:\norig %+v\nback %+v", orig, back)
	}
	for i := range orig.Schemes {
		if back.Schemes[i].Discipline != orig.Schemes[i].Discipline ||
			back.Schemes[i].Rotation != orig.Schemes[i].Rotation ||
			back.Schemes[i].SeparateBalance != orig.Schemes[i].SeparateBalance {
			t.Errorf("scheme %d mismatch: %+v vs %+v", i, orig.Schemes[i], back.Schemes[i])
		}
	}
}

// TestExecutionRoundTrip: the dispatch knob defaults to batched, parses
// either mode, and survives Save/Load (so WAL-replayed daemon jobs keep it).
func TestExecutionRoundTrip(t *testing.T) {
	def, err := Load(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if def.Execution != sweep.ExecBatched {
		t.Errorf("default execution = %v, want batched", def.Execution)
	}
	seq := strings.Replace(sample, `"id": "my-sweep",`, `"id": "my-sweep", "execution": "sequential",`, 1)
	orig, err := Load(strings.NewReader(seq))
	if err != nil {
		t.Fatal(err)
	}
	if orig.Execution != sweep.ExecSequential {
		t.Fatalf("execution = %v, want sequential", orig.Execution)
	}
	var buf bytes.Buffer
	if err := Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Execution != sweep.ExecSequential {
		t.Errorf("execution lost in round trip: %v", back.Execution)
	}
}

// TestModeRoundTrip: the serving mode defaults to exact, parses "approx"
// (with its tolerance), survives Save/Load, and rejects unknown values.
func TestModeRoundTrip(t *testing.T) {
	def, err := Load(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if def.Approx || def.ApproxTol != 0 {
		t.Errorf("default mode = approx=%v tol=%g, want exact", def.Approx, def.ApproxTol)
	}
	ap := strings.Replace(sample, `"id": "my-sweep",`,
		`"id": "my-sweep", "mode": "approx", "approxTol": 0.1,`, 1)
	orig, err := Load(strings.NewReader(ap))
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Approx || orig.ApproxTol != 0.1 {
		t.Fatalf("mode lost in load: approx=%v tol=%g", orig.Approx, orig.ApproxTol)
	}
	var buf bytes.Buffer
	if err := Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Approx || back.ApproxTol != 0.1 {
		t.Errorf("mode lost in round trip: approx=%v tol=%g", back.Approx, back.ApproxTol)
	}
	bad := strings.Replace(sample, `"id": "my-sweep",`, `"id": "my-sweep", "mode": "fuzzy",`, 1)
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Error("unknown mode accepted")
	}
}

const faultedSample = `{
  "id": "faulted",
  "dims": [4, 4],
  "rhos": [0.5],
  "broadcastFrac": 1,
  "schemes": [{"name": "priority-star"}],
  "measure": 1000,
  "reps": 1,
  "seed": 7,
  "faults": "perm:2,link:5,trans:500/50,seed:11",
  "guard": {"default": true, "growthRuns": 6}
}`

func TestLoadFaultsAndGuard(t *testing.T) {
	e, err := Load(strings.NewReader(faultedSample))
	if err != nil {
		t.Fatal(err)
	}
	if e.Faults == nil || e.Faults.RandomLinks != 2 || len(e.Faults.Links) != 1 ||
		e.Faults.MTBF != 500 || e.Faults.MTTR != 50 || e.Faults.Seed != 11 {
		t.Errorf("faults wrong: %+v", e.Faults)
	}
	// default:true fills in shape-derived thresholds; explicit fields win.
	want := sim.DefaultGuard(torus.MustNew(4, 4))
	if e.Guard.DivergeBacklog != want.DivergeBacklog || e.Guard.GrowthWindow != want.GrowthWindow {
		t.Errorf("guard defaults not applied: %+v (want %+v)", e.Guard, want)
	}
	if e.Guard.GrowthRuns != 6 {
		t.Errorf("explicit GrowthRuns lost: %+v", e.Guard)
	}

	// Bad fault syntax and bad dims under default guard surface as errors.
	bad := strings.Replace(faultedSample, `"perm:2,link:5,trans:500/50,seed:11"`, `"perm:x"`, 1)
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Error("bad fault syntax accepted")
	}
}

func TestRoundTripFaultsAndGuard(t *testing.T) {
	orig, err := Load(strings.NewReader(faultedSample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, buf.String())
	}
	if back.Faults.String() != orig.Faults.String() {
		t.Errorf("faults round trip: %q vs %q", orig.Faults.String(), back.Faults.String())
	}
	if back.Guard != orig.Guard {
		t.Errorf("guard round trip: %+v vs %+v", orig.Guard, back.Guard)
	}
}

func TestRoundTripPredefinedFigures(t *testing.T) {
	for _, id := range sweep.FigureIDs() {
		exp, err := sweep.Figure(id, sweep.Quick)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Save(&buf, exp); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: reload: %v\n%s", id, err, buf.String())
		}
		if back.ID != exp.ID || len(back.Schemes) != len(exp.Schemes) {
			t.Errorf("%s: round trip mismatch", id)
		}
	}
}

func TestLoadedExperimentRuns(t *testing.T) {
	e, err := Load(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	e.Rhos = []float64{0.3}
	e.Reps = 1
	e.Measure = 800
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Errorf("loaded experiment produced %d series", len(res.Series))
	}
}
