package spec

// Canonical encoding and fingerprinting of experiment specs. Two
// experiments that mean the same thing — whether built from CLI flags, a
// hand-written spec file with fields in any order, or the library API —
// must produce the same fingerprint, because the fingerprint is the
// identity everything durable hangs off: the daemon's content-addressed
// result cache and the sweep checkpoint-journal header both key on it.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"prioritystar/internal/sim"
	"prioritystar/internal/sweep"
)

// Canonical returns the canonical, key-order-stable JSON encoding of the
// experiment: the spec form produced by FromSweep, marshalled compactly.
// Struct marshalling fixes the key order (declaration order) and FromSweep
// normalizes every field — scheme names resolve to their full
// discipline/rotation encoding, lengths and distance models to their
// canonical strings — so semantically identical experiments byte-match
// regardless of how they were written down.
func Canonical(e *sweep.Experiment) ([]byte, error) {
	b, err := json.Marshal(FromSweep(e))
	if err != nil {
		return nil, fmt.Errorf("spec: canonical encoding: %w", err)
	}
	return b, nil
}

// Fingerprint hashes the canonical encoding together with the engine
// version into the experiment's content address. Identical fingerprints
// mean bit-identical results: every input that can change a measured number
// — topology, rho grid, schemes, traffic, horizon, seeds, fault schedule,
// watchdog thresholds, backlog cap — is inside the canonical encoding, and
// sim.EngineVersion covers changes to the engine itself. Fields that cannot
// change results (worker counts, checkpoint paths, progress callbacks,
// wall-clock timeouts) are deliberately outside it, so a re-run on a bigger
// machine still hits the cache.
func Fingerprint(e *sweep.Experiment) (string, error) {
	doc := FromSweep(e)
	// Human labels don't change results; a renamed experiment must still
	// hit the cache. Neither does the dispatch mode — batched and
	// sequential execution are bit-identical, so a batched re-run of a
	// sequentially-computed experiment hits the cache too. The approx mode
	// and its tolerance are serving-side knobs: an approx submission must
	// share the exact submission's identity, so a cached exact result can
	// answer it and a fallback simulation lands in the exact cache.
	doc.ID, doc.Title, doc.Notes, doc.Execution, doc.Mode = "", "", "", "", ""
	doc.ApproxTol = 0
	b, err := json.Marshal(doc)
	if err != nil {
		return "", fmt.Errorf("spec: canonical encoding: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "ps-spec/1 %s\n", sim.EngineVersion)
	h.Write(b)
	return "ps1-" + hex.EncodeToString(h.Sum(nil)), nil
}

// Stamp computes the experiment's fingerprint and stores it on the
// experiment, where the checkpoint journal and the daemon's cache pick it
// up. Call it after every field that affects results is final.
func Stamp(e *sweep.Experiment) error {
	fp, err := Fingerprint(e)
	if err != nil {
		return err
	}
	e.Fingerprint = fp
	return nil
}
