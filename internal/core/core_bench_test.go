package core

import (
	"math/rand/v2"
	"testing"

	"prioritystar/internal/balance"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

func BenchmarkBroadcastForwardSource(b *testing.B) {
	s := torus.MustNew(8, 8, 8)
	rng := rand.New(rand.NewPCG(1, 2))
	buf := make([]Hop, 0, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = BroadcastForward(s, i%3, -1, torus.Plus, 0, rng, buf[:0])
	}
}

func BenchmarkUnicastNextHop(b *testing.B) {
	s := torus.MustNew(8, 8, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		UnicastNextHop(s, torus.Node(i%s.Size()), torus.Node((i*31)%s.Size()), uint32(i))
	}
}

func BenchmarkSampleEnding(b *testing.B) {
	s := torus.MustNew(4, 4, 8)
	sch, err := PrioritySTAR(s, traffic.Rates{LambdaB: 0.01, LambdaR: 0.1}, balance.ExactDistance)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sch.SampleEnding(rng)
	}
}

func BenchmarkNewSchemeBalanced(b *testing.B) {
	s := torus.MustNew(4, 4, 4, 4, 8)
	rates := traffic.Rates{LambdaB: 0.001, LambdaR: 0.05}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PrioritySTAR(s, rates, balance.ExactDistance); err != nil {
			b.Fatal(err)
		}
	}
}
