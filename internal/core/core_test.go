package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"prioritystar/internal/balance"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

func mustScheme(t *testing.T, s *torus.Shape, d Discipline, r Rotation) *Scheme {
	t.Helper()
	sch, err := NewScheme(s, d, r, traffic.Rates{LambdaB: 1}, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func TestDisciplineClasses(t *testing.T) {
	if FCFS.Classes() != 1 || TwoLevel.Classes() != 2 || ThreeLevel.Classes() != 3 {
		t.Error("Classes wrong")
	}
	if FCFS.String() != "fcfs" || TwoLevel.String() != "2-level" || ThreeLevel.String() != "3-level" {
		t.Error("discipline names wrong")
	}
	if Discipline(99).String() == "" || Rotation(99).String() == "" {
		t.Error("unknown values should still print")
	}
}

func TestDisciplineClassesPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown discipline should panic")
		}
	}()
	Discipline(99).Classes()
}

func TestConstructors(t *testing.T) {
	s := torus.MustNew(8, 8)
	rates := traffic.Rates{LambdaB: 0.01}
	p, err := PrioritySTAR(s, rates, balance.ExactDistance)
	if err != nil || p.Discipline != TwoLevel || p.Rotation != BalancedRotation {
		t.Errorf("PrioritySTAR = %v, %v", p, err)
	}
	p3, err := PrioritySTAR3(s, rates, balance.ExactDistance)
	if err != nil || p3.Discipline != ThreeLevel {
		t.Errorf("PrioritySTAR3 = %v, %v", p3, err)
	}
	f, err := STARFCFS(s, rates, balance.ExactDistance)
	if err != nil || f.Discipline != FCFS || f.Rotation != BalancedRotation {
		t.Errorf("STARFCFS = %v, %v", f, err)
	}
	do, err := DimOrderFCFS(s)
	if err != nil || do.Rotation != FixedEnding {
		t.Errorf("DimOrderFCFS = %v, %v", do, err)
	}
	if do.Vector.X[0] != 0 || do.Vector.X[1] != 1 {
		t.Errorf("DimOrderFCFS vector = %v, want point mass on last dim", do.Vector.X)
	}
	if p.String() == "" || do.String() == "" {
		t.Error("Scheme.String empty")
	}
	if _, err := NewScheme(s, FCFS, Rotation(42), rates, balance.ExactDistance); err == nil {
		t.Error("unknown rotation should error")
	}
}

func TestSchemeVectorSymmetricUniform(t *testing.T) {
	s := torus.MustNew(8, 8)
	sch := mustScheme(t, s, TwoLevel, BalancedRotation)
	for _, x := range sch.Vector.X {
		if math.Abs(x-0.5) > 1e-9 {
			t.Errorf("8x8 balanced vector = %v, want uniform", sch.Vector.X)
		}
	}
}

func TestSampleEndingDistribution(t *testing.T) {
	s := torus.MustNew(4, 8)
	sch := mustScheme(t, s, TwoLevel, BalancedRotation)
	rng := rand.New(rand.NewPCG(21, 22))
	const n = 200000
	counts := make([]int, s.Dims())
	for i := 0; i < n; i++ {
		counts[sch.SampleEnding(rng)]++
	}
	for l, x := range sch.Vector.X {
		got := float64(counts[l]) / n
		if math.Abs(got-x) > 0.01 {
			t.Errorf("ending %d frequency %g, want %g", l, got, x)
		}
	}
}

func TestSampleEndingFixed(t *testing.T) {
	s := torus.MustNew(4, 4, 4)
	sch := mustScheme(t, s, FCFS, FixedEnding)
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 100; i++ {
		if sch.SampleEnding(rng) != 2 {
			t.Fatal("FixedEnding must always pick the last dimension")
		}
	}
}

func TestBroadcastClass(t *testing.T) {
	s := torus.MustNew(4, 4)
	fcfs := mustScheme(t, s, FCFS, UniformRotation)
	two := mustScheme(t, s, TwoLevel, UniformRotation)
	three := mustScheme(t, s, ThreeLevel, UniformRotation)
	if fcfs.BroadcastClass(0, 0) != 0 || fcfs.BroadcastClass(1, 0) != 0 {
		t.Error("FCFS must be single-class")
	}
	if two.BroadcastClass(0, 0) != 1 || two.BroadcastClass(1, 0) != 0 {
		t.Error("TwoLevel: ending dim low, others high")
	}
	if three.BroadcastClass(0, 0) != 2 || three.BroadcastClass(1, 0) != 0 {
		t.Error("ThreeLevel: ending dim lowest, others highest")
	}
	if fcfs.UnicastClass() != 0 || two.UnicastClass() != 0 || three.UnicastClass() != 1 {
		t.Error("unicast classes wrong")
	}
}

func TestVirtualChannel(t *testing.T) {
	// Paper rule (0-indexed): dims after the ending dimension in index
	// order ride VC1; wrapped dims ride VC2.
	if VirtualChannel(2, 1) != 1 || VirtualChannel(3, 1) != 1 {
		t.Error("dims above ending should be VC1")
	}
	if VirtualChannel(0, 1) != 2 || VirtualChannel(1, 1) != 2 {
		t.Error("dims at or below ending should be VC2")
	}
	// With ending = d-1 (dimension order), all dims use VC2.
	for dim := 0; dim <= 3; dim++ {
		if VirtualChannel(dim, 3) != 2 {
			t.Error("ending d-1 should put everything on VC2")
		}
	}
}

func TestRingInitiations(t *testing.T) {
	cases := []struct {
		n         int
		wantTotal int // total nodes served
		wantCount int // number of copies
	}{
		{2, 1, 1}, {3, 2, 2}, {4, 3, 2}, {5, 4, 2}, {8, 7, 2},
	}
	for _, c := range cases {
		inits := RingInitiations(c.n, nil)
		if len(inits) != c.wantCount {
			t.Errorf("n=%d: %d copies, want %d", c.n, len(inits), c.wantCount)
			continue
		}
		total := 0
		for _, in := range inits {
			total += in.HopsLeft + 1
		}
		if total != c.wantTotal {
			t.Errorf("n=%d: serves %d nodes, want %d", c.n, total, c.wantTotal)
		}
	}
	if RingInitiations(1, nil) != nil {
		t.Error("1-ring needs no copies")
	}
}

func TestRingInitiationsDeterministicSplit(t *testing.T) {
	// nil rng: plus direction gets the extra node.
	inits := RingInitiations(4, nil)
	if inits[0].Dir != torus.Plus || inits[0].HopsLeft != 1 {
		t.Errorf("plus copy = %+v, want 2 nodes", inits[0])
	}
	if inits[1].Dir != torus.Minus || inits[1].HopsLeft != 0 {
		t.Errorf("minus copy = %+v, want 1 node", inits[1])
	}
}

func TestRingInitiationsRandomizedBalance(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	plusHeavy := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		inits := RingInitiations(4, rng)
		if inits[0].Dir == torus.Plus && inits[0].HopsLeft == 1 ||
			inits[1].Dir == torus.Plus && inits[1].HopsLeft == 1 {
			plusHeavy++
		}
	}
	if plusHeavy < trials/2-300 || plusHeavy > trials/2+300 {
		t.Errorf("plus-heavy split %d/%d times; want ~1/2", plusHeavy, trials)
	}
	// Odd rings have an even split: randomization must not matter.
	inits := RingInitiations(5, rng)
	if inits[0].HopsLeft != 1 || inits[1].HopsLeft != 1 {
		t.Errorf("5-ring split = %+v", inits)
	}
}

func TestOrderDim(t *testing.T) {
	// ending 1 in 4 dims: order 2,3,0,1.
	want := []int{2, 3, 0, 1}
	for p, w := range want {
		if got := OrderDim(4, 1, p); got != w {
			t.Errorf("OrderDim(4,1,%d) = %d, want %d", p, got, w)
		}
	}
}

func TestBroadcastTreeSpansEveryNode(t *testing.T) {
	for _, dims := range [][]int{{5, 5}, {8, 8}, {4, 4, 8}, {2, 2, 2, 2}, {3}} {
		s := torus.MustNew(dims...)
		sch := mustScheme(t, s, TwoLevel, UniformRotation)
		for ending := 0; ending < s.Dims(); ending++ {
			tree := BroadcastTree(sch, 0, ending, nil)
			for v, tn := range tree {
				if tn.Parent == torus.Node(-1) {
					t.Fatalf("%v ending %d: node %d never received a copy", dims, ending, v)
				}
			}
		}
	}
}

// TestBroadcastTreeDepthIsDistance: the STAR tree delivers every node along
// a shortest path, so uncontended reception delay equals Lee distance.
func TestBroadcastTreeDepthIsDistance(t *testing.T) {
	s := torus.MustNew(5, 4, 3)
	sch := mustScheme(t, s, TwoLevel, UniformRotation)
	src := torus.Node(17)
	for ending := 0; ending < s.Dims(); ending++ {
		tree := BroadcastTree(sch, src, ending, nil)
		for v := torus.Node(0); int(v) < s.Size(); v++ {
			if tree[v].Depth != s.Distance(src, v) {
				t.Errorf("ending %d node %d: depth %d != distance %d",
					ending, v, tree[v].Depth, s.Distance(src, v))
			}
		}
	}
}

// TestBroadcastTreeTransmissionCounts: the per-dimension transmission
// counts of an enumerated tree equal the paper's Eq. (1) coefficients.
func TestBroadcastTreeTransmissionCounts(t *testing.T) {
	for _, dims := range [][]int{{4, 8}, {4, 4, 8}, {5, 5}, {2, 6, 3}} {
		s := torus.MustNew(dims...)
		sch := mustScheme(t, s, TwoLevel, UniformRotation)
		for ending := 0; ending < s.Dims(); ending++ {
			tree := BroadcastTree(sch, 3%torus.Node(s.Size()), ending, nil)
			counts := make([]int, s.Dims())
			for v := range tree {
				if tree[v].Dim >= 0 {
					counts[tree[v].Dim]++
				}
			}
			for i := 0; i < s.Dims(); i++ {
				if counts[i] != balance.Coeff(s, i, ending) {
					t.Errorf("%v ending %d dim %d: %d transmissions, want %d",
						dims, ending, i, counts[i], balance.Coeff(s, i, ending))
				}
			}
		}
	}
}

// TestBroadcastTreePriorityCounts verifies the Section 3.2 accounting: a
// task generates N - N/n_l low-priority (ending-dimension) deliveries and
// N/n_l - 1 high-priority deliveries.
func TestBroadcastTreePriorityCounts(t *testing.T) {
	s := torus.MustNew(8, 8)
	sch := mustScheme(t, s, TwoLevel, UniformRotation)
	for ending := 0; ending < 2; ending++ {
		tree := BroadcastTree(sch, 0, ending, nil)
		low, high := 0, 0
		for v := range tree {
			switch tree[v].Class {
			case 1:
				low++
			case 0:
				high++
			}
		}
		n := s.Dim(ending)
		if low != s.Size()-s.Size()/n {
			t.Errorf("ending %d: %d low-priority deliveries, want %d", ending, low, s.Size()-s.Size()/n)
		}
		if high != s.Size()/n-1 {
			t.Errorf("ending %d: %d high-priority deliveries, want %d", ending, high, s.Size()/n-1)
		}
	}
}

// TestBroadcastTreeLowPrioritySuffix: every root-to-node path consists of
// high-priority hops followed by at most floor(n/2) low-priority hops —
// the structural fact behind the priority STAR delay bound.
func TestBroadcastTreeLowPrioritySuffix(t *testing.T) {
	s := torus.MustNew(8, 8, 8)
	sch := mustScheme(t, s, TwoLevel, UniformRotation)
	ending := 1
	tree := BroadcastTree(sch, 42, ending, nil)
	for v := torus.Node(0); int(v) < s.Size(); v++ {
		// Walking leaf -> root we must see the low-priority suffix first;
		// once a high-priority hop appears, no low-priority hop may follow.
		lowHops := 0
		sawHigh := false
		u := v
		for u != 42 {
			tn := tree[u]
			if tn.Class == 1 {
				if sawHigh {
					t.Fatalf("node %d: low-priority hop above a high-priority hop", v)
				}
				lowHops++
			} else {
				sawHigh = true
			}
			u = tn.Parent
		}
		if lowHops > s.Dim(ending)/2 {
			t.Fatalf("node %d: %d low-priority hops > n/2", v, lowHops)
		}
	}
}

func TestBroadcastTreeRandomizedStillSpans(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		d := 1 + rng.IntN(3)
		dims := make([]int, d)
		for i := range dims {
			dims[i] = 2 + rng.IntN(6)
		}
		s := torus.MustNew(dims...)
		sch, err := NewScheme(s, TwoLevel, UniformRotation, traffic.Rates{LambdaB: 1}, balance.ExactDistance)
		if err != nil {
			return false
		}
		src := torus.Node(rng.IntN(s.Size()))
		ending := rng.IntN(d)
		tree := BroadcastTree(sch, src, ending, rng) // randomized ring splits
		for v := range tree {
			if tree[v].Parent == torus.Node(-1) {
				return false
			}
			if tree[v].Depth != s.Distance(src, torus.Node(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestUnicastNextHopReachesDest(t *testing.T) {
	s := torus.MustNew(4, 5, 2)
	rng := rand.New(rand.NewPCG(8, 8))
	for trial := 0; trial < 2000; trial++ {
		src := torus.Node(rng.IntN(s.Size()))
		dest := traffic.UniformDest(rng, s, src)
		mask := SampleTieMask(rng, s.Dims())
		cur := src
		hops := 0
		for {
			dim, dir, done := UnicastNextHop(s, cur, dest, mask)
			if done {
				break
			}
			cur = s.Neighbor(cur, dim, dir)
			hops++
			if hops > s.Diameter() {
				t.Fatalf("unicast %d->%d exceeded diameter", src, dest)
			}
		}
		if cur != dest {
			t.Fatalf("unicast %d->%d ended at %d", src, dest, cur)
		}
		if hops != s.Distance(src, dest) {
			t.Fatalf("unicast %d->%d took %d hops, distance %d", src, dest, hops, s.Distance(src, dest))
		}
	}
}

func TestUnicastNextHopAtDest(t *testing.T) {
	s := torus.MustNew(4, 4)
	if _, _, done := UnicastNextHop(s, 5, 5, 0); !done {
		t.Error("at destination should report done")
	}
}

func TestUnicastTieMaskControlsDirection(t *testing.T) {
	s := torus.MustNew(8, 8)
	src := s.Node([]int{0, 0})
	dest := s.Node([]int{4, 0}) // offset exactly n/2
	dim, dir, _ := UnicastNextHop(s, src, dest, 0)
	if dim != 0 || dir != torus.Plus {
		t.Errorf("mask 0: (%d, %d)", dim, dir)
	}
	dim, dir, _ = UnicastNextHop(s, src, dest, 1)
	if dim != 0 || dir != torus.Minus {
		t.Errorf("mask 1: (%d, %d)", dim, dir)
	}
	// Either way the path length equals the ring distance.
	for _, mask := range []uint32{0, 1} {
		cur := src
		hops := 0
		for {
			d, dr, done := UnicastNextHop(s, cur, dest, mask)
			if done {
				break
			}
			cur = s.Neighbor(cur, d, dr)
			hops++
		}
		if hops != 4 {
			t.Errorf("mask %d: %d hops, want 4", mask, hops)
		}
	}
}

func TestUnicastTwoRingAlwaysPlus(t *testing.T) {
	s := torus.MustNew(2, 2)
	src := s.Node([]int{0, 0})
	dest := s.Node([]int{1, 1})
	dim, dir, _ := UnicastNextHop(s, src, dest, 0xFFFFFFFF)
	if dir != torus.Plus {
		t.Errorf("2-ring must route Plus, got dim %d dir %d", dim, dir)
	}
}

func TestUnicastShorterDirectionChosen(t *testing.T) {
	s := torus.MustNew(8, 8)
	src := s.Node([]int{0, 0})
	// Offset 3: plus side (3 hops) is shorter than minus (5 hops).
	dim, dir, _ := UnicastNextHop(s, src, s.Node([]int{3, 0}), 0)
	if dim != 0 || dir != torus.Plus {
		t.Error("offset 3 should go Plus")
	}
	// Offset 5: minus side (3 hops) shorter.
	dim, dir, _ = UnicastNextHop(s, src, s.Node([]int{5, 0}), 0)
	if dim != 0 || dir != torus.Minus {
		t.Error("offset 5 should go Minus")
	}
}

func TestSampleTieMaskPanicsOnHugeDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("should panic above 32 dims")
		}
	}()
	SampleTieMask(rand.New(rand.NewPCG(1, 1)), 33)
}

func TestBroadcastForwardSource(t *testing.T) {
	s := torus.MustNew(5, 5)
	// Source (phase -1) initiates both phases: 2 copies per phase.
	hops := BroadcastForward(s, 1, -1, torus.Plus, 0, nil, nil)
	if len(hops) != 4 {
		t.Fatalf("source emits %d copies, want 4", len(hops))
	}
	// Phase 0 covers dim 0 (order 0,1 for ending 1).
	if hops[0].Dim != 0 || hops[2].Dim != 1 {
		t.Errorf("dims = %d, %d", hops[0].Dim, hops[2].Dim)
	}
	total := 0
	for _, h := range hops {
		total += h.HopsLeft + 1
	}
	if total != 8 { // 4 nodes per ring
		t.Errorf("source copies serve %d nodes, want 8", total)
	}
}

func TestBroadcastForwardContinuesRing(t *testing.T) {
	s := torus.MustNew(5, 5)
	// A copy in the last phase with hops remaining: exactly one forward.
	hops := BroadcastForward(s, 1, 1, torus.Minus, 1, nil, nil)
	if len(hops) != 1 {
		t.Fatalf("got %d copies, want 1", len(hops))
	}
	if hops[0].Dir != torus.Minus || hops[0].HopsLeft != 0 || hops[0].Dim != 1 {
		t.Errorf("forward = %+v", hops[0])
	}
	// A copy with no hops left in the last phase: nothing to do.
	if hops := BroadcastForward(s, 1, 1, torus.Minus, 0, nil, nil); len(hops) != 0 {
		t.Errorf("exhausted copy should emit nothing, got %v", hops)
	}
}

func TestBroadcastForwardAppendsToBuf(t *testing.T) {
	s := torus.MustNew(4, 4)
	buf := make([]Hop, 0, 8)
	out := BroadcastForward(s, 0, -1, torus.Plus, 0, nil, buf)
	if len(out) == 0 || cap(out) != 8 {
		t.Error("BroadcastForward should reuse the provided buffer")
	}
}
