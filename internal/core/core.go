// Package core implements the paper's primary contribution: the STAR
// (Single-To-All Rotation) broadcast scheme, its priority discipline
// (priority STAR), and the shortest-path unicast routing that shares the
// network with it (Sections 3 and 4 of the paper).
//
// A STAR broadcast with ending dimension l covers dimensions in the rotated
// order l+1, ..., d-1, 0, ..., l. Covering a dimension means a nested ring
// broadcast: every node that already holds the packet sends it around its
// ring in both directions, one direction covering ceil((n-1)/2) nodes and
// the other floor((n-1)/2). The nonidling all-port variant simulated here
// forwards every copy as soon as its link is free, so a node that receives a
// copy while covering dimension p immediately initiates the ring broadcasts
// of all later dimensions in the order.
//
// Priority STAR assigns low priority to copies that traverse links of the
// ending dimension and high priority to everything else; the heterogeneous
// disciplines of Section 4 add unicast packets at high (2-level) or medium
// (3-level) priority.
package core

import (
	"fmt"
	"math/rand/v2"

	"prioritystar/internal/balance"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// Discipline selects the queueing priority structure at the routers.
type Discipline int

const (
	// FCFS serves all packets in one first-come first-served class; with
	// balanced rotation this models the FCFS generalization of the direct
	// scheme of Stamoulis and Tsitsiklis that the paper's figures compare
	// against.
	FCFS Discipline = iota
	// TwoLevel is the priority STAR discipline: broadcast copies on
	// ending-dimension links are low priority, every other packet
	// (including unicast) is high priority. Section 4's first variant.
	TwoLevel
	// ThreeLevel refines TwoLevel for heterogeneous traffic: non-ending
	// broadcast copies high, unicast medium, ending-dimension copies low.
	// Section 4's second variant.
	ThreeLevel
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case FCFS:
		return "fcfs"
	case TwoLevel:
		return "2-level"
	case ThreeLevel:
		return "3-level"
	default:
		return fmt.Sprintf("discipline(%d)", int(d))
	}
}

// Classes returns the number of priority classes the discipline uses.
func (d Discipline) Classes() int {
	switch d {
	case FCFS:
		return 1
	case TwoLevel:
		return 2
	case ThreeLevel:
		return 3
	default:
		panic(fmt.Sprintf("core: unknown discipline %d", int(d)))
	}
}

// Rotation selects how broadcasts choose their ending dimension.
type Rotation int

const (
	// BalancedRotation draws the ending dimension from the probability
	// vector that balances the offered load (Eq. 2 or Eq. 4).
	BalancedRotation Rotation = iota
	// UniformRotation draws uniformly (1/d); optimal only for symmetric
	// tori, and the paper's model of schemes that ignore unicast load.
	UniformRotation
	// FixedEnding always uses dimension d-1, i.e. classical
	// dimension-ordered broadcast with no rotation; its maximum throughput
	// collapses as Section 1 describes.
	FixedEnding
)

// String names the rotation policy.
func (r Rotation) String() string {
	switch r {
	case BalancedRotation:
		return "balanced"
	case UniformRotation:
		return "uniform"
	case FixedEnding:
		return "fixed"
	default:
		return fmt.Sprintf("rotation(%d)", int(r))
	}
}

// Scheme bundles the routing decisions of one experiment configuration: the
// ending-dimension distribution and the priority discipline.
type Scheme struct {
	Shape      *torus.Shape
	Discipline Discipline
	Rotation   Rotation
	// Vector is the resolved ending-dimension distribution (cumulative
	// sampling uses it directly). For UniformRotation it is 1/d everywhere;
	// for FixedEnding it is a point mass on dimension d-1.
	Vector balance.Vector

	cumulative []float64
}

// NewScheme resolves a scheme for the given traffic mix. The balance vector
// is computed from the rates via Eq. (4) (which reduces to Eq. (2) for
// broadcast-only traffic) using the supplied distance model.
func NewScheme(s *torus.Shape, disc Discipline, rot Rotation, rates traffic.Rates, m balance.DistanceModel) (*Scheme, error) {
	disc.Classes() // validate (panics on unknown values)
	sch := &Scheme{Shape: s, Discipline: disc, Rotation: rot}
	d := s.Dims()
	switch rot {
	case BalancedRotation:
		v, err := balance.Heterogeneous(s, rates.LambdaB, rates.LambdaR, m)
		if err != nil {
			return nil, err
		}
		sch.Vector = v
	case UniformRotation:
		sch.Vector = balance.Uniform(d)
	case FixedEnding:
		x := make([]float64, d)
		x[d-1] = 1
		sch.Vector = balance.Vector{X: x, Feasible: true}
	default:
		return nil, fmt.Errorf("core: unknown rotation %d", int(rot))
	}
	sch.cumulative = make([]float64, d)
	sum := 0.0
	for i, x := range sch.Vector.X {
		sum += x
		sch.cumulative[i] = sum
	}
	sch.cumulative[d-1] = 1 // absorb floating-point slack
	return sch, nil
}

// PrioritySTAR is the paper's proposed scheme: balanced rotation with the
// two-level priority discipline.
func PrioritySTAR(s *torus.Shape, rates traffic.Rates, m balance.DistanceModel) (*Scheme, error) {
	return NewScheme(s, TwoLevel, BalancedRotation, rates, m)
}

// PrioritySTAR3 is priority STAR with the three-level heterogeneous
// discipline of Section 4.
func PrioritySTAR3(s *torus.Shape, rates traffic.Rates, m balance.DistanceModel) (*Scheme, error) {
	return NewScheme(s, ThreeLevel, BalancedRotation, rates, m)
}

// STARFCFS is balanced rotation with FCFS service: the paper's baseline
// (the FCFS generalization of the direct scheme in [12]).
func STARFCFS(s *torus.Shape, rates traffic.Rates, m balance.DistanceModel) (*Scheme, error) {
	return NewScheme(s, FCFS, BalancedRotation, rates, m)
}

// DimOrderFCFS is classical dimension-ordered broadcast with FCFS service
// and no rotation.
func DimOrderFCFS(s *torus.Shape) (*Scheme, error) {
	return NewScheme(s, FCFS, FixedEnding, traffic.Rates{}, balance.ExactDistance)
}

// String describes the scheme.
func (sch *Scheme) String() string {
	return fmt.Sprintf("%s rotation, %s", sch.Rotation, sch.Discipline)
}

// SampleEnding draws an ending dimension from the scheme's vector.
func (sch *Scheme) SampleEnding(rng *rand.Rand) int {
	u := rng.Float64()
	for i, c := range sch.cumulative {
		if u < c {
			return i
		}
	}
	return len(sch.cumulative) - 1
}

// BroadcastClass returns the priority class (0 = highest) of a broadcast
// copy transmitted on a link of dimension dim for a task with the given
// ending dimension.
func (sch *Scheme) BroadcastClass(dim, ending int) int {
	switch sch.Discipline {
	case TwoLevel:
		if dim == ending {
			return 1
		}
		return 0
	case ThreeLevel:
		if dim == ending {
			return 2
		}
		return 0
	default:
		return 0
	}
}

// UnicastClass returns the priority class of unicast packets.
func (sch *Scheme) UnicastClass() int {
	if sch.Discipline == ThreeLevel {
		return 1
	}
	return 0
}

// VirtualChannel returns the SDC virtual-channel label of a broadcast hop:
// dimensions visited before the wraparound of the rotated order (dim >
// ending) ride VC 1 and the rest ride VC 2, the deadlock-freedom rule of
// Section 3.1. Under store-and-forward with unbounded queues the label does
// not affect dynamics; it is exposed for fidelity and tested for
// consistency with the paper's rule.
func VirtualChannel(dim, ending int) uint8 {
	if dim > ending {
		return 1
	}
	return 2
}

// RingInit describes one direction of a ring broadcast initiation: the
// first hop's direction and how many nodes the copy must still serve after
// the first delivery.
type RingInit struct {
	Dir      torus.Dir
	HopsLeft int // further hops after the first delivery (total = HopsLeft+1)
}

// RingInitiations returns the copies a node emits to cover its ring of
// length n (excluding itself): one or two directed copies serving n-1 nodes
// in total, ceil((n-1)/2) one way and floor((n-1)/2) the other. Which
// direction receives the extra node is randomized (rng may be nil for the
// deterministic plus-heavy split) so that opposite links stay balanced for
// even n. For n = 2 a single Plus copy is emitted, matching the hypercube's
// single link per dimension.
func RingInitiations(n int, rng *rand.Rand) []RingInit {
	first, second, count := ringSplit(n, rng)
	switch count {
	case 0:
		return nil
	case 1:
		return []RingInit{first}
	default:
		return []RingInit{first, second}
	}
}

// ringSplit is the allocation-free core of RingInitiations, used directly
// by the simulator's hot path.
func ringSplit(n int, rng *rand.Rand) (first, second RingInit, count int) {
	total := n - 1
	if total <= 0 {
		return RingInit{}, RingInit{}, 0
	}
	a := (total + 1) / 2 // nodes served by the first direction
	b := total / 2
	d1, d2 := torus.Plus, torus.Minus
	if n > 2 && a != b && rng != nil && rng.IntN(2) == 1 {
		d1, d2 = d2, d1
	}
	first = RingInit{Dir: d1, HopsLeft: a - 1}
	if b == 0 {
		return first, RingInit{}, 1
	}
	return first, RingInit{Dir: d2, HopsLeft: b - 1}, 2
}

// Hop is one broadcast copy to transmit: the ring-broadcast phase it
// belongs to (index into the rotated dimension order), its link dimension
// and direction, and the hops remaining after its next delivery.
type Hop struct {
	Phase    int
	Dim      int
	Dir      torus.Dir
	HopsLeft int
}

// BroadcastForward computes the copies a node transmits when it obtains a
// broadcast packet with the given ending dimension:
//
//   - the source calls it with phase = -1 (it initiates every phase);
//   - a node that received the copy during phase p with h hops remaining
//     calls it with (p, h): the ring continues if h > 0, and the node
//     initiates the ring broadcasts of phases p+1, ..., d-1.
//
// dir is the direction the copy was travelling in (ignored for the source).
// The returned hops are appended to buf to avoid allocation in the
// simulator's hot path.
func BroadcastForward(s *torus.Shape, ending, phase int, dir torus.Dir, hopsLeft int, rng *rand.Rand, buf []Hop) []Hop {
	d := s.Dims()
	if phase >= 0 && hopsLeft > 0 {
		buf = append(buf, Hop{
			Phase:    phase,
			Dim:      orderDim(d, ending, phase),
			Dir:      dir,
			HopsLeft: hopsLeft - 1,
		})
	}
	for q := phase + 1; q < d; q++ {
		dim := orderDim(d, ending, q)
		first, second, count := ringSplit(s.Dim(dim), rng)
		if count >= 1 {
			buf = append(buf, Hop{Phase: q, Dim: dim, Dir: first.Dir, HopsLeft: first.HopsLeft})
		}
		if count == 2 {
			buf = append(buf, Hop{Phase: q, Dim: dim, Dir: second.Dir, HopsLeft: second.HopsLeft})
		}
	}
	return buf
}

// orderDim returns the dimension at position p of the rotated order for the
// given ending dimension: (ending+1+p) mod d.
func orderDim(d, ending, p int) int { return (ending + 1 + p) % d }

// OrderDim exposes orderDim for tests and visualization tools.
func OrderDim(d, ending, p int) int { return orderDim(d, ending, p) }

// UnicastNextHop returns the next link a unicast packet takes from cur
// toward dest: the first dimension (in index order) whose coordinates
// differ, traversed in the shorter ring direction. When the offset is
// exactly n/2 both directions are shortest and the packet's tie mask (bit
// per dimension, drawn at generation time) decides, keeping opposite links
// statistically balanced. done is true when cur == dest.
func UnicastNextHop(s *torus.Shape, cur, dest torus.Node, tieMask uint32) (dim int, dir torus.Dir, done bool) {
	for i := 0; i < s.Dims(); i++ {
		off := s.RingOffset(cur, dest, i)
		if off == 0 {
			continue
		}
		n := s.Dim(i)
		switch {
		case n == 2:
			return i, torus.Plus, false
		case 2*off < n:
			return i, torus.Plus, false
		case 2*off > n:
			return i, torus.Minus, false
		case tieMask&(1<<uint(i)) != 0:
			return i, torus.Minus, false
		default:
			return i, torus.Plus, false
		}
	}
	return 0, torus.Plus, true
}

// UnicastNextHopAdaptive is the minimal-adaptive variant of UnicastNextHop
// used when links can fail: it returns the first profitable hop (a dimension
// with a nonzero offset, traversed in a shortest direction) whose link is not
// rejected by down. When the offset is exactly n/2 both directions are
// shortest, so the non-preferred direction is tried before moving to the
// next profitable dimension. When every profitable hop is down, the
// preferred hop is returned with live == false and the caller waits on it
// (packets never take non-minimal detours). done is true when cur == dest.
func UnicastNextHopAdaptive(s *torus.Shape, cur, dest torus.Node, tieMask uint32,
	down func(dim int, dir torus.Dir) bool) (dim int, dir torus.Dir, live, done bool) {
	havePref := false
	var prefDim int
	var prefDir torus.Dir
	for i := 0; i < s.Dims(); i++ {
		off := s.RingOffset(cur, dest, i)
		if off == 0 {
			continue
		}
		n := s.Dim(i)
		d := torus.Plus
		tie := false
		switch {
		case n == 2 || 2*off < n:
		case 2*off > n:
			d = torus.Minus
		case tieMask&(1<<uint(i)) != 0:
			d, tie = torus.Minus, true
		default:
			tie = true
		}
		if !havePref {
			havePref, prefDim, prefDir = true, i, d
		}
		if !down(i, d) {
			return i, d, true, false
		}
		if tie && !down(i, -d) {
			return i, -d, true, false
		}
	}
	if !havePref {
		return 0, torus.Plus, false, true
	}
	return prefDim, prefDir, false, false
}

// SampleTieMask draws one random tie-breaking bit per dimension.
func SampleTieMask(rng *rand.Rand, dims int) uint32 {
	if dims > 32 {
		panic(fmt.Sprintf("core: %d dimensions exceed the 32-bit tie mask", dims))
	}
	return rng.Uint32() & (1<<uint(dims) - 1)
}

// TreeNode is one node's position in an enumerated STAR broadcast tree.
type TreeNode struct {
	Parent torus.Node // parent in the tree (source's parent is itself)
	Depth  int        // hop distance from the source along the tree
	Phase  int        // phase of the ring broadcast that delivered the copy
	Dim    int        // dimension of the delivering link (-1 for the source)
	Class  int        // priority class of the delivering transmission
}

// BroadcastTree enumerates the full spanning tree of a STAR broadcast from
// source with the given ending dimension, using the deterministic
// plus-heavy ring split when rng is nil. It is used by tests (coverage and
// transmission-count invariants) and by the Fig. 1 visualization.
func BroadcastTree(sch *Scheme, source torus.Node, ending int, rng *rand.Rand) []TreeNode {
	s := sch.Shape
	tree := make([]TreeNode, s.Size())
	for i := range tree {
		tree[i].Dim = -1
		tree[i].Parent = torus.Node(-1)
	}
	tree[source] = TreeNode{Parent: source, Depth: 0, Phase: -1, Dim: -1, Class: -1}

	type copyState struct {
		at       torus.Node
		phase    int
		dir      torus.Dir
		hopsLeft int
	}
	var frontier []copyState
	expand := func(at torus.Node, phase, hopsLeft int, dir torus.Dir) {
		for _, h := range BroadcastForward(s, ending, phase, dir, hopsLeft, rng, nil) {
			frontier = append(frontier, copyState{at: at, phase: h.Phase, dir: h.Dir, hopsLeft: h.HopsLeft})
		}
	}
	expand(source, -1, 0, torus.Plus)
	for len(frontier) > 0 {
		c := frontier[0]
		frontier = frontier[1:]
		next := s.Neighbor(c.at, orderDim(s.Dims(), ending, c.phase), c.dir)
		dim := orderDim(s.Dims(), ending, c.phase)
		if tree[next].Parent != torus.Node(-1) {
			panic(fmt.Sprintf("core: node %d received a second copy (tree not a spanning tree)", next))
		}
		tree[next] = TreeNode{
			Parent: c.at,
			Depth:  tree[c.at].Depth + 1,
			Phase:  c.phase,
			Dim:    dim,
			Class:  sch.BroadcastClass(dim, ending),
		}
		expand(next, c.phase, c.hopsLeft, c.dir)
	}
	return tree
}
