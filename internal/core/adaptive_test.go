package core

import (
	"testing"

	"prioritystar/internal/torus"
)

// upAll is a fault oracle for a fully healthy network.
func upAll(int, torus.Dir) bool { return false }

// TestAdaptiveMatchesObliviousWhenHealthy: with no faults the adaptive
// router must make exactly the oblivious choice for every (cur, dest, tie)
// triple — the engine relies on this to keep fault-free behaviour identical.
func TestAdaptiveMatchesObliviousWhenHealthy(t *testing.T) {
	shapes := []*torus.Shape{
		torus.MustNew(4, 4),
		torus.MustNew(5, 3),
		torus.MustNew(2, 2, 2),
		torus.MustNew(6, 2, 4),
	}
	for _, s := range shapes {
		for cur := torus.Node(0); int(cur) < s.Size(); cur++ {
			for dest := torus.Node(0); int(dest) < s.Size(); dest++ {
				for _, tie := range []uint32{0, 0xffffffff, 0b1010} {
					od, odir, odone := UnicastNextHop(s, cur, dest, tie)
					ad, adir, live, adone := UnicastNextHopAdaptive(s, cur, dest, tie, upAll)
					if odone != adone {
						t.Fatalf("%v %d->%d: done mismatch %t vs %t", s, cur, dest, odone, adone)
					}
					if adone {
						continue
					}
					if !live {
						t.Fatalf("%v %d->%d: healthy network reported no live hop", s, cur, dest)
					}
					if od != ad || odir != adir {
						t.Fatalf("%v %d->%d tie=%x: oblivious (%d,%v) vs adaptive (%d,%v)",
							s, cur, dest, tie, od, odir, ad, adir)
					}
				}
			}
		}
	}
}

// TestAdaptiveReroutesToOtherDimension: the preferred dimension's link is
// down but another profitable dimension is up, so the router must switch.
func TestAdaptiveReroutesToOtherDimension(t *testing.T) {
	s := torus.MustNew(4, 4)
	cur, dest := torus.Node(0), s.Node([]int{1, 1}) // profitable: dim0+, dim1+
	pd, pdir, _ := UnicastNextHop(s, cur, dest, 0)
	down := func(dim int, dir torus.Dir) bool { return dim == pd && dir == pdir }
	dim, dir, live, done := UnicastNextHopAdaptive(s, cur, dest, 0, down)
	if done || !live {
		t.Fatalf("done=%t live=%t, want a live alternative hop", done, live)
	}
	if dim == pd {
		t.Errorf("router stayed on failed dimension %d", dim)
	}
	if dir != torus.Plus {
		t.Errorf("alternative hop direction %v is not profitable", dir)
	}
}

// TestAdaptiveTriesTieDirection: at an offset of exactly n/2 both ring
// directions are shortest; with the preferred one down the router must take
// the opposite direction of the SAME dimension before changing dimensions.
func TestAdaptiveTriesTieDirection(t *testing.T) {
	s := torus.MustNew(4, 4)
	cur, dest := torus.Node(0), s.Node([]int{2, 0}) // offset 2 on a 4-ring: tie
	for _, tie := range []uint32{0, 1} {
		pd, pdir, _ := UnicastNextHop(s, cur, dest, tie)
		down := func(dim int, dir torus.Dir) bool { return dim == pd && dir == pdir }
		dim, dir, live, done := UnicastNextHopAdaptive(s, cur, dest, tie, down)
		if done || !live {
			t.Fatalf("tie=%d: done=%t live=%t", tie, done, live)
		}
		if dim != pd || dir != -pdir {
			t.Errorf("tie=%d: got (%d,%v), want opposite direction (%d,%v)", tie, dim, dir, pd, -pdir)
		}
	}
}

// TestAdaptiveWaitsWhenAllProfitableDown: every profitable hop failed — the
// router reports live == false and hands back the preferred hop to wait on.
func TestAdaptiveWaitsWhenAllProfitableDown(t *testing.T) {
	s := torus.MustNew(4, 4)
	cur, dest := torus.Node(0), s.Node([]int{1, 1})
	pd, pdir, _ := UnicastNextHop(s, cur, dest, 0)
	allDown := func(int, torus.Dir) bool { return true }
	dim, dir, live, done := UnicastNextHopAdaptive(s, cur, dest, 0, allDown)
	if done {
		t.Fatal("done at distance 2")
	}
	if live {
		t.Fatal("live hop reported with every link down")
	}
	if dim != pd || dir != pdir {
		t.Errorf("waiting hop (%d,%v), want the preferred (%d,%v)", dim, dir, pd, pdir)
	}
}

// TestAdaptiveDoneAtDestination: no profitable dimension means done,
// regardless of the fault state.
func TestAdaptiveDoneAtDestination(t *testing.T) {
	s := torus.MustNew(3, 3)
	allDown := func(int, torus.Dir) bool { return true }
	if _, _, _, done := UnicastNextHopAdaptive(s, 4, 4, 0, allDown); !done {
		t.Error("cur == dest must report done")
	}
}
