// Package fault provides deterministic, seedable fault schedules for the
// simulator in internal/sim. A Schedule describes which directed links of a
// torus misbehave and how:
//
//   - permanent link failures, either named explicitly (Links), derived from
//     failed nodes (Nodes: every link into or out of the node fails), or
//     drawn uniformly at random from the valid links (RandomLinks, seeded);
//   - transient link faults with geometric up/down holding times (MTBF mean
//     slots between failures, MTTR mean slots to repair), modelling a link
//     that independently fails with probability 1/MTBF per up-slot and
//     recovers with probability 1/MTTR per down-slot.
//
// Compile resolves a Schedule against a concrete shape into the form the
// engine consults before servicing a link. Every source of randomness is
// derived from Schedule.Seed and the link ID alone, so a schedule replays
// the exact same fault timeline on every run regardless of the traffic
// pattern, the engine seed, or the order in which links are queried —
// faulted runs stay as reproducible as fault-free ones.
package fault

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"

	"prioritystar/internal/torus"
)

// Schedule describes the faults of one run. The zero value is the empty
// schedule (no faults). Schedules are plain data: they can be shared across
// runs and goroutines; each Compile produces an independent timeline.
type Schedule struct {
	// Seed derives the random permanent-link selection and every transient
	// timeline. Two compiles of the same schedule on the same shape produce
	// identical fault behaviour.
	Seed uint64

	// Links fail permanently from slot 0.
	Links []torus.LinkID
	// Nodes fail permanently from slot 0: every link into or out of a
	// listed node is treated as permanently failed.
	Nodes []torus.Node
	// RandomLinks additional valid links, chosen uniformly without
	// replacement using Seed, fail permanently from slot 0.
	RandomLinks int

	// MTBF and MTTR enable transient faults on every link when both are
	// positive: up and down periods are geometric with these means (slots).
	MTBF float64
	MTTR float64
}

// Empty reports whether the schedule injects no faults at all.
func (s *Schedule) Empty() bool {
	return s == nil ||
		(len(s.Links) == 0 && len(s.Nodes) == 0 && s.RandomLinks == 0 &&
			!(s.MTBF > 0 && s.MTTR > 0))
}

// Validate checks the schedule against a shape without compiling it.
func (s *Schedule) Validate(shape *torus.Shape) error {
	if shape == nil {
		return fmt.Errorf("fault: nil shape")
	}
	if s == nil {
		return nil
	}
	for _, l := range s.Links {
		if !shape.ValidLink(l) {
			return fmt.Errorf("fault: link %d is not a valid link of the %v", l, shape)
		}
	}
	for _, u := range s.Nodes {
		if !shape.Valid(u) {
			return fmt.Errorf("fault: node %d is not a node of the %v", u, shape)
		}
	}
	if s.RandomLinks < 0 {
		return fmt.Errorf("fault: negative RandomLinks %d", s.RandomLinks)
	}
	if s.RandomLinks > shape.Links() {
		return fmt.Errorf("fault: RandomLinks %d exceeds the %d links of the %v",
			s.RandomLinks, shape.Links(), shape)
	}
	if math.IsNaN(s.MTBF) || math.IsInf(s.MTBF, 0) || math.IsNaN(s.MTTR) || math.IsInf(s.MTTR, 0) {
		return fmt.Errorf("fault: MTBF/MTTR must be finite, got %g/%g", s.MTBF, s.MTTR)
	}
	if s.MTBF < 0 || s.MTTR < 0 {
		return fmt.Errorf("fault: negative MTBF/MTTR %g/%g", s.MTBF, s.MTTR)
	}
	if (s.MTBF > 0) != (s.MTTR > 0) {
		return fmt.Errorf("fault: transient faults need both MTBF and MTTR, got %g/%g", s.MTBF, s.MTTR)
	}
	if s.MTBF > 0 && s.MTBF < 1 {
		return fmt.Errorf("fault: MTBF %g is below one slot", s.MTBF)
	}
	if s.MTTR > 0 && s.MTTR < 1 {
		return fmt.Errorf("fault: MTTR %g is below one slot", s.MTTR)
	}
	return nil
}

// String renders the schedule in the CLI syntax understood by
// internal/cli.ParseFaults ("" for the empty schedule).
func (s *Schedule) String() string {
	if s.Empty() {
		return ""
	}
	var parts []string
	if s.RandomLinks > 0 {
		parts = append(parts, fmt.Sprintf("perm:%d", s.RandomLinks))
	}
	for _, l := range s.Links {
		parts = append(parts, fmt.Sprintf("link:%d", l))
	}
	for _, u := range s.Nodes {
		parts = append(parts, fmt.Sprintf("node:%d", u))
	}
	if s.MTBF > 0 {
		parts = append(parts, fmt.Sprintf("trans:%g/%g", s.MTBF, s.MTTR))
	}
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed:%d", s.Seed))
	}
	return strings.Join(parts, ",")
}

// transState is the lazily advanced up/down timeline of one link. The state
// holds until slot `until` (exclusive); the per-link RNG draws the next
// holding time at each transition, so the timeline depends only on
// (Schedule.Seed, link) and never on the query pattern.
type transState struct {
	rng   rand.PCG
	until int64
	up    bool
}

// Compiled is a schedule resolved against a shape, ready for the engine's
// per-slot queries. Queries for one link must use non-decreasing slots (the
// engine's simulated clock only moves forward); different links are
// independent. A Compiled is not safe for concurrent use.
type Compiled struct {
	shape *torus.Shape
	perm  []uint64 // bitmap over link slots: permanently failed
	trans []transState
	mtbfP float64 // per-slot failure probability 1/MTBF
	mttrP float64 // per-slot repair probability 1/MTTR
	seed  uint64

	permanentLinks int
}

// Compile resolves the schedule for a shape. The result replays the exact
// same fault timeline on every run.
func (s *Schedule) Compile(shape *torus.Shape) (*Compiled, error) {
	if err := s.Validate(shape); err != nil {
		return nil, err
	}
	if s == nil {
		s = &Schedule{}
	}
	c := &Compiled{shape: shape, seed: s.Seed}
	slots := shape.LinkSlots()
	c.perm = make([]uint64, (slots+63)/64)
	for _, l := range s.Links {
		c.markPermanent(l)
	}
	for _, u := range s.Nodes {
		c.failNode(u)
	}
	if s.RandomLinks > 0 {
		c.failRandom(s.RandomLinks)
	}
	if s.MTBF > 0 && s.MTTR > 0 {
		c.mtbfP = 1 / s.MTBF
		c.mttrP = 1 / s.MTTR
		c.trans = make([]transState, slots)
		for l := range c.trans {
			c.trans[l].rng = *rand.NewPCG(s.Seed^0xfa011fa011, uint64(l)*0x9e3779b97f4a7c15+1)
			c.trans[l].up = true
			c.trans[l].until = geometric(rand.New(&c.trans[l].rng), c.mtbfP)
		}
	}
	return c, nil
}

func (c *Compiled) markPermanent(l torus.LinkID) {
	if c.perm[uint(l)>>6]&(1<<(uint(l)&63)) == 0 {
		c.perm[uint(l)>>6] |= 1 << (uint(l) & 63)
		c.permanentLinks++
	}
}

// failNode marks every link into and out of u as permanently failed.
func (c *Compiled) failNode(u torus.Node) {
	s := c.shape
	for i := 0; i < s.Dims(); i++ {
		dirs := []torus.Dir{torus.Plus}
		if s.DirsInDim(i) == 2 {
			dirs = append(dirs, torus.Minus)
		}
		for _, d := range dirs {
			c.markPermanent(s.Link(u, i, d)) // outgoing
			// The incoming link along (i, d) is owned by the neighbor in
			// direction d and points back at u: its own d-opposite link for
			// rings of length >= 3, its (only) Plus link on a 2-ring.
			nb := s.Neighbor(u, i, d)
			back := torus.Minus
			if d == torus.Minus || s.DirsInDim(i) == 1 {
				back = torus.Plus
			}
			c.markPermanent(s.Link(nb, i, back))
		}
	}
}

// failRandom marks n distinct uniformly chosen valid links as permanently
// failed, on top of any already marked (those do not count toward n).
func (c *Compiled) failRandom(n int) {
	s := c.shape
	alive := make([]torus.LinkID, 0, s.Links())
	for l := 0; l < s.LinkSlots(); l++ {
		id := torus.LinkID(l)
		if s.ValidLink(id) && !c.Permanent(id) {
			alive = append(alive, id)
		}
	}
	if n > len(alive) {
		n = len(alive)
	}
	rng := rand.New(rand.NewPCG(c.seed^0x5eed0f1a7, 0x7e57ab1e))
	// Partial Fisher-Yates: the first n entries are a uniform sample.
	for i := 0; i < n; i++ {
		j := i + rng.IntN(len(alive)-i)
		alive[i], alive[j] = alive[j], alive[i]
		c.markPermanent(alive[i])
	}
}

// PermanentLinks returns how many distinct links are permanently failed.
func (c *Compiled) PermanentLinks() int { return c.permanentLinks }

// Permanent reports whether link l is permanently failed.
func (c *Compiled) Permanent(l torus.LinkID) bool {
	return c.perm[uint(l)>>6]&(1<<(uint(l)&63)) != 0
}

// advance walks the transient timeline of link l forward until it covers
// slot.
func (c *Compiled) advance(t *transState, slot int64) {
	rng := rand.New(&t.rng)
	for t.until <= slot {
		if t.up {
			t.up = false
			t.until += geometric(rng, c.mttrP)
		} else {
			t.up = true
			t.until += geometric(rng, c.mtbfP)
		}
	}
}

// Down reports whether link l is failed during slot. Per link, slots must be
// non-decreasing across calls.
func (c *Compiled) Down(l torus.LinkID, slot int64) bool {
	if c.Permanent(l) {
		return true
	}
	if c.trans == nil {
		return false
	}
	t := &c.trans[l]
	c.advance(t, slot)
	return !t.up
}

// DownUntil reports whether link l is failed during slot and, if so, the
// first slot at which it is up again (-1 when the failure is permanent).
// Per link, slots must be non-decreasing across calls.
func (c *Compiled) DownUntil(l torus.LinkID, slot int64) (down bool, until int64) {
	if c.Permanent(l) {
		return true, -1
	}
	if c.trans == nil {
		return false, 0
	}
	t := &c.trans[l]
	c.advance(t, slot)
	if t.up {
		return false, 0
	}
	return true, t.until
}

// geometric draws a holding time with mean 1/p (p in (0, 1]) by inversion:
// 1 + floor(ln(U) / ln(1-p)) with U uniform on (0, 1].
func geometric(rng *rand.Rand, p float64) int64 {
	if p >= 1 {
		return 1
	}
	u := 1 - rng.Float64() // (0, 1]
	d := int64(math.Log(u)/math.Log(1-p)) + 1
	if d < 1 {
		d = 1
	}
	return d
}

// Describe summarizes the compiled schedule for logs and manifests.
func (c *Compiled) Describe() string {
	var parts []string
	if c.permanentLinks > 0 {
		parts = append(parts, fmt.Sprintf("%d permanent link failures", c.permanentLinks))
	}
	if c.trans != nil {
		parts = append(parts, fmt.Sprintf("transient MTBF %.0f / MTTR %.0f", 1/c.mtbfP, 1/c.mttrP))
	}
	if len(parts) == 0 {
		return "no faults"
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}
