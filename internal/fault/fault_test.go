package fault

import (
	"math"
	"strings"
	"testing"

	"prioritystar/internal/torus"
)

func TestEmpty(t *testing.T) {
	var nilSched *Schedule
	if !nilSched.Empty() {
		t.Error("nil schedule should be empty")
	}
	if !(&Schedule{Seed: 9}).Empty() {
		t.Error("seed-only schedule should be empty")
	}
	cases := []Schedule{
		{Links: []torus.LinkID{3}},
		{Nodes: []torus.Node{0}},
		{RandomLinks: 1},
		{MTBF: 100, MTTR: 10},
	}
	for i, s := range cases {
		if s.Empty() {
			t.Errorf("case %d: schedule %+v should not be empty", i, s)
		}
	}
	// MTBF without MTTR does not enable transients (and fails validation).
	if !(&Schedule{MTBF: 100}).Empty() {
		t.Error("half-configured transient schedule should count as empty")
	}
}

func TestValidateRejectsBadSchedules(t *testing.T) {
	s := torus.MustNew(4, 4)
	cases := []struct {
		sched Schedule
		want  string
	}{
		{Schedule{Links: []torus.LinkID{-1}}, "not a valid link"},
		{Schedule{Links: []torus.LinkID{torus.LinkID(s.LinkSlots())}}, "not a valid link"},
		{Schedule{Nodes: []torus.Node{99}}, "not a node"},
		{Schedule{RandomLinks: -2}, "negative RandomLinks"},
		{Schedule{RandomLinks: s.Links() + 1}, "exceeds"},
		{Schedule{MTBF: math.NaN(), MTTR: 5}, "finite"},
		{Schedule{MTBF: math.Inf(1), MTTR: 5}, "finite"},
		{Schedule{MTBF: -3, MTTR: 5}, "negative"},
		{Schedule{MTBF: 100}, "both MTBF and MTTR"},
		{Schedule{MTTR: 100}, "both MTBF and MTTR"},
		{Schedule{MTBF: 0.5, MTTR: 5}, "below one slot"},
	}
	for i, c := range cases {
		err := c.sched.Validate(s)
		if err == nil {
			t.Errorf("case %d: schedule %+v validated", i, c.sched)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: error %q does not mention %q", i, err, c.want)
		}
	}
	if err := (&Schedule{}).Validate(nil); err == nil {
		t.Error("nil shape should be rejected")
	}
}

func TestPermanentLinksAndNodes(t *testing.T) {
	s := torus.MustNew(4, 4)
	c, err := (&Schedule{Links: []torus.LinkID{s.Link(5, 0, torus.Plus)}, Nodes: []torus.Node{9}}).Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Permanent(s.Link(5, 0, torus.Plus)) {
		t.Error("explicit link not failed")
	}
	// Every link into and out of node 9 must be down.
	for i := 0; i < s.Dims(); i++ {
		for _, d := range []torus.Dir{torus.Plus, torus.Minus} {
			out := s.Link(9, i, d)
			if !c.Permanent(out) {
				t.Errorf("outgoing link %d of failed node not failed", out)
			}
		}
	}
	in := 0
	for l := 0; l < s.LinkSlots(); l++ {
		id := torus.LinkID(l)
		if s.ValidLink(id) && s.LinkDst(id) == 9 && !c.Permanent(id) {
			t.Errorf("incoming link %d of failed node not failed", id)
		}
		if s.ValidLink(id) && s.LinkDst(id) == 9 {
			in++
		}
	}
	if in != s.Degree() {
		t.Fatalf("expected %d incoming links, found %d", s.Degree(), in)
	}
	down, until := c.DownUntil(s.Link(9, 0, torus.Plus), 100)
	if !down || until != -1 {
		t.Errorf("permanent link: DownUntil = (%t, %d), want (true, -1)", down, until)
	}
}

// TestNodeFailureOnHypercube exercises the 2-ring special case: each
// dimension has a single link per node and the incoming link is the
// neighbor's Plus link.
func TestNodeFailureOnHypercube(t *testing.T) {
	s := torus.MustNew(2, 2, 2)
	c, err := (&Schedule{Nodes: []torus.Node{3}}).Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !c.Permanent(s.Link(3, i, torus.Plus)) {
			t.Errorf("dim %d outgoing link survives", i)
		}
		nb := s.Neighbor(3, i, torus.Plus)
		if !c.Permanent(s.Link(nb, i, torus.Plus)) {
			t.Errorf("dim %d incoming link survives", i)
		}
	}
	if c.PermanentLinks() != 6 {
		t.Errorf("PermanentLinks = %d, want 6", c.PermanentLinks())
	}
}

func TestRandomLinksDeterministicAndDistinct(t *testing.T) {
	s := torus.MustNew(4, 4)
	sched := &Schedule{Seed: 11, RandomLinks: 7}
	a, err := sched.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sched.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.PermanentLinks() != 7 || b.PermanentLinks() != 7 {
		t.Fatalf("want 7 failed links, got %d and %d", a.PermanentLinks(), b.PermanentLinks())
	}
	for l := 0; l < s.LinkSlots(); l++ {
		id := torus.LinkID(l)
		if a.Permanent(id) != b.Permanent(id) {
			t.Fatalf("same seed chose different links (link %d)", id)
		}
		if a.Permanent(id) && !s.ValidLink(id) {
			t.Fatalf("invalid link slot %d chosen", id)
		}
	}
	other, err := (&Schedule{Seed: 12, RandomLinks: 7}).Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for l := 0; l < s.LinkSlots(); l++ {
		if a.Permanent(torus.LinkID(l)) != other.Permanent(torus.LinkID(l)) {
			same = false
		}
	}
	if same {
		t.Error("different seeds chose the same 7 links (suspicious)")
	}
}

// TestTransientTimelineDeterministic verifies that the up/down timeline of a
// link depends only on (seed, link), not on the query pattern: querying every
// slot and querying sparsely must agree wherever both observe.
func TestTransientTimelineDeterministic(t *testing.T) {
	s := torus.MustNew(4, 4)
	sched := &Schedule{Seed: 7, MTBF: 40, MTTR: 8}
	dense, err := sched.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := sched.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	l := s.Link(2, 1, torus.Minus)
	denseStates := make([]bool, 2000)
	for slot := int64(0); slot < 2000; slot++ {
		denseStates[slot] = dense.Down(l, slot)
	}
	for slot := int64(0); slot < 2000; slot += 37 {
		if got := sparse.Down(l, slot); got != denseStates[slot] {
			t.Fatalf("slot %d: sparse=%t dense=%t", slot, got, denseStates[slot])
		}
	}
	// The link must actually transition at this MTBF/MTTR over 2000 slots.
	downs := 0
	for _, d := range denseStates {
		if d {
			downs++
		}
	}
	if downs == 0 || downs == len(denseStates) {
		t.Errorf("link never transitioned (down %d/2000 slots)", downs)
	}
}

func TestDownUntilConsistent(t *testing.T) {
	s := torus.MustNew(4, 4)
	c, err := (&Schedule{Seed: 3, MTBF: 30, MTTR: 6}).Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	probe, err := (&Schedule{Seed: 3, MTBF: 30, MTTR: 6}).Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	l := s.Link(0, 0, torus.Plus)
	for slot := int64(0); slot < 3000; slot++ {
		down, until := c.DownUntil(l, slot)
		if !down {
			continue
		}
		if until <= slot {
			t.Fatalf("slot %d: recovery slot %d not in the future", slot, until)
		}
		if probe.Down(l, until) {
			t.Fatalf("slot %d: link still down at promised recovery slot %d", slot, until)
		}
		slot = until // probe may only move forward
	}
}

func TestStringRoundsTrip(t *testing.T) {
	sched := &Schedule{Seed: 5, RandomLinks: 3, Links: []torus.LinkID{2}, Nodes: []torus.Node{1}, MTBF: 100, MTTR: 10}
	str := sched.String()
	for _, want := range []string{"perm:3", "link:2", "node:1", "trans:100/10", "seed:5"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}
	if (&Schedule{}).String() != "" {
		t.Error("empty schedule should render as empty string")
	}
}

func TestCompileEmptySchedules(t *testing.T) {
	s := torus.MustNew(2, 2)
	var nilSched *Schedule
	c, err := nilSched.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if c.Permanent(0) || c.Down(0, 5) {
		t.Error("empty schedule reports faults")
	}
	if c.Describe() != "no faults" {
		t.Errorf("Describe = %q", c.Describe())
	}
}
