package balance

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"prioritystar/internal/torus"
)

func TestDimOrder(t *testing.T) {
	cases := []struct {
		d, ending int
		want      []int
	}{
		{3, 2, []int{0, 1, 2}},
		{3, 0, []int{1, 2, 0}},
		{3, 1, []int{2, 0, 1}},
		{1, 0, []int{0}},
		{4, 1, []int{2, 3, 0, 1}},
	}
	for _, c := range cases {
		got := DimOrder(c.d, c.ending)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("DimOrder(%d, %d) = %v, want %v", c.d, c.ending, got, c.want)
				break
			}
		}
		if got[len(got)-1] != c.ending {
			t.Errorf("DimOrder(%d, %d): ending dimension must come last", c.d, c.ending)
		}
	}
}

func TestDimOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DimOrder with out-of-range ending should panic")
		}
	}()
	DimOrder(3, 3)
}

func TestCoeffHandValues4x8(t *testing.T) {
	// 4x8 torus, paper Eq. (1) computed by hand.
	s := torus.MustNew(4, 8)
	cases := []struct{ i, l, want int }{
		{1, 0, 7},  // ending 0: order (1,0); dim 1 first: n2-1 = 7
		{0, 0, 24}, // dim 0 second: (4-1)*8 = 24
		{0, 1, 3},  // ending 1: order (0,1); dim 0 first: 3
		{1, 1, 28}, // dim 1 second: 7*4 = 28
	}
	for _, c := range cases {
		if got := Coeff(s, c.i, c.l); got != c.want {
			t.Errorf("Coeff(%d, %d) = %d, want %d", c.i, c.l, got, c.want)
		}
	}
}

func TestCoeffHandValues4x4x8(t *testing.T) {
	s := torus.MustNew(4, 4, 8)
	// ending = 2 => order (0,1,2): a = 3, 3*4=12, 7*16=112.
	if Coeff(s, 0, 2) != 3 || Coeff(s, 1, 2) != 12 || Coeff(s, 2, 2) != 112 {
		t.Errorf("ending 2: got %d %d %d", Coeff(s, 0, 2), Coeff(s, 1, 2), Coeff(s, 2, 2))
	}
	// ending = 0 => order (1,2,0): a1=3, a2=7*4=28, a0=3*32=96.
	if Coeff(s, 1, 0) != 3 || Coeff(s, 2, 0) != 28 || Coeff(s, 0, 0) != 96 {
		t.Errorf("ending 0: got %d %d %d", Coeff(s, 1, 0), Coeff(s, 2, 0), Coeff(s, 0, 0))
	}
}

func TestCoeffsMatchesCoeff(t *testing.T) {
	s := torus.MustNew(3, 5, 2, 4)
	m := Coeffs(s)
	for i := 0; i < s.Dims(); i++ {
		for l := 0; l < s.Dims(); l++ {
			if m.At(i, l) != float64(Coeff(s, i, l)) {
				t.Errorf("Coeffs[%d][%d] = %g, want %d", i, l, m.At(i, l), Coeff(s, i, l))
			}
		}
	}
}

// TestCoeffColumnSums verifies the paper's Eq. (3): every ending dimension
// generates exactly N-1 transmissions in total.
func TestCoeffColumnSums(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		d := 1 + rng.IntN(4)
		dims := make([]int, d)
		for i := range dims {
			dims[i] = 2 + rng.IntN(7)
		}
		s := torus.MustNew(dims...)
		for l := 0; l < d; l++ {
			sum := 0
			for i := 0; i < d; i++ {
				sum += Coeff(s, i, l)
			}
			if sum != s.Size()-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBroadcastOnlySymmetric(t *testing.T) {
	for _, dims := range [][]int{{8, 8}, {5, 5, 5}, {2, 2, 2, 2}} {
		s := torus.MustNew(dims...)
		v, err := BroadcastOnly(s)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if !v.Feasible {
			t.Errorf("%v: symmetric vector should be feasible", dims)
		}
		want := 1 / float64(s.Dims())
		for l, x := range v.X {
			if math.Abs(x-want) > 1e-9 {
				t.Errorf("%v: x[%d] = %g, want %g", dims, l, x, want)
			}
		}
	}
}

func TestBroadcastOnly4x8HandSolution(t *testing.T) {
	// Hand-solved Eq. (2) for the 4x8 torus:
	// 24 x0 + 3 x1 = 15.5; 7 x0 + 28 x1 = 15.5
	// => x0 = 387.5/651, x1 = 263.5/651.
	s := torus.MustNew(4, 8)
	v, err := BroadcastOnly(s)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{387.5 / 651, 263.5 / 651}
	for i := range want {
		if math.Abs(v.X[i]-want[i]) > 1e-9 {
			t.Errorf("x[%d] = %.9f, want %.9f", i, v.X[i], want[i])
		}
	}
	if !v.Feasible {
		t.Error("4x8 broadcast vector should be feasible")
	}
}

func TestBroadcastOnlySumsToOne(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		d := 1 + rng.IntN(4)
		dims := make([]int, d)
		for i := range dims {
			dims[i] = 2 + rng.IntN(7)
		}
		s := torus.MustNew(dims...)
		v, err := BroadcastOnly(s)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, x := range v.X {
			sum += x
		}
		return math.Abs(sum-1) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBroadcastOnlyBalancesLoads: the defining property of Eq. (2) — the
// predicted per-link utilization is identical on every dimension.
func TestBroadcastOnlyBalancesLoads(t *testing.T) {
	for _, dims := range [][]int{{4, 8}, {4, 4, 8}, {3, 5, 7}, {2, 8}, {6, 2, 4}} {
		s := torus.MustNew(dims...)
		v, err := BroadcastOnly(s)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if !v.Feasible {
			t.Fatalf("%v: expected feasible broadcast-only vector", dims)
		}
		util := PredictedDimUtilization(s, v.X, 1, 0, ExactDistance)
		for i := 1; i < len(util); i++ {
			if math.Abs(util[i]-util[0]) > 1e-6*util[0] {
				t.Errorf("%v: dim %d utilization %g != dim 0 %g", dims, i, util[i], util[0])
			}
		}
	}
}

func TestHeterogeneousBalancesLoads(t *testing.T) {
	s := torus.MustNew(4, 4, 8)
	// 50/50 transmission split: lambdaB*(N-1) = lambdaR*D_ave.
	lambdaB := 1.0
	lambdaR := lambdaB * float64(s.Size()-1) / TotalDistance(s, ExactDistance)
	v, err := Heterogeneous(s, lambdaB, lambdaR, ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Feasible {
		t.Fatal("4x4x8 50/50 should be feasible")
	}
	util := PredictedDimUtilization(s, v.X, lambdaB, lambdaR, ExactDistance)
	for i := 1; i < len(util); i++ {
		if math.Abs(util[i]-util[0]) > 1e-6*util[0] {
			t.Errorf("dim %d utilization %g != dim 0 %g", i, util[i], util[0])
		}
	}
	// Balanced vector achieves maximum throughput factor 1.
	if mt := MaxThroughput(s, v.X, lambdaB, lambdaR, ExactDistance); math.Abs(mt-1) > 1e-6 {
		t.Errorf("balanced MaxThroughput = %g, want 1", mt)
	}
}

// TestSeparateBalancingLosesThroughput reproduces the paper's Section 1
// example: in a torus with n_1 = ... = n_{d-1} = n_d/2 and a 50/50
// unicast/broadcast transmission split, balancing broadcast separately
// (ignoring unicast) caps the throughput factor well below 1, approaching
// 2/3 as d grows.
func TestSeparateBalancingLosesThroughput(t *testing.T) {
	cases := []struct {
		dims      []int
		lo, hi    float64 // expected separate-balancing MaxThroughput window
		jointWant float64 // minimum joint MaxThroughput (clamping may cost a little)
	}{
		{[]int{4, 4, 8}, 0.78, 0.82, 0.999},
		{[]int{4, 4, 4, 4, 8}, 0.72, 0.78, 0.99},
		// Trends toward the paper's quoted ~0.67 limit as d grows.
		{[]int{4, 4, 4, 4, 4, 4, 4, 8}, 0.68, 0.74, 0.95},
	}
	for _, c := range cases {
		s := torus.MustNew(c.dims...)
		lambdaB := 1.0
		lambdaR := lambdaB * float64(s.Size()-1) / TotalDistance(s, ExactDistance)
		sep, err := BroadcastOnly(s)
		if err != nil {
			t.Fatalf("%v: %v", c.dims, err)
		}
		mt := MaxThroughput(s, sep.X, lambdaB, lambdaR, ExactDistance)
		if mt < c.lo || mt > c.hi {
			t.Errorf("%v: separate-balancing MaxThroughput = %g, want in [%g, %g]", c.dims, mt, c.lo, c.hi)
		}
		// The jointly balanced vector restores MaxThroughput ~= 1 (for
		// larger d the exact solution leaves the simplex and is clamped,
		// costing a few percent — the paper's "most situations" caveat).
		joint, err := Heterogeneous(s, lambdaB, lambdaR, ExactDistance)
		if err != nil {
			t.Fatalf("%v: %v", c.dims, err)
		}
		if mtj := MaxThroughput(s, joint.X, lambdaB, lambdaR, ExactDistance); mtj < c.jointWant {
			t.Errorf("%v: joint MaxThroughput = %g, want >= %g", c.dims, mtj, c.jointWant)
		}
	}
}

func TestHeterogeneousInfeasibleClamps(t *testing.T) {
	// Very asymmetric 2-D torus with dominant unicast traffic: Section 4
	// says the solution becomes x0 > 1, x1 < 0 and should be replaced by
	// (1, 0).
	s := torus.MustNew(4, 32)
	v, err := Heterogeneous(s, 0.001, 10, ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	if v.Feasible {
		t.Fatal("expected infeasible solution")
	}
	if math.Abs(v.X[0]-1) > 1e-9 || math.Abs(v.X[1]) > 1e-9 {
		t.Errorf("clamped vector = %v, want [1 0]", v.X)
	}
}

func TestHeterogeneousZeroBroadcast(t *testing.T) {
	s := torus.MustNew(4, 8)
	v, err := Heterogeneous(s, 0, 1, ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Feasible || math.Abs(v.X[0]-0.5) > 1e-12 {
		t.Errorf("zero-broadcast vector = %+v, want uniform", v)
	}
}

func TestHeterogeneousNegativeRates(t *testing.T) {
	s := torus.MustNew(4, 8)
	if _, err := Heterogeneous(s, -1, 0, ExactDistance); err == nil {
		t.Error("negative lambdaB should fail")
	}
	if _, err := Heterogeneous(s, 1, -1, ExactDistance); err == nil {
		t.Error("negative lambdaR should fail")
	}
}

func TestHeterogeneousFeasibleBalancesRandomShapes(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 41))
		d := 1 + rng.IntN(3)
		dims := make([]int, d)
		for i := range dims {
			dims[i] = 2 + rng.IntN(7)
		}
		s := torus.MustNew(dims...)
		lambdaB := 0.001 + rng.Float64()*0.01
		lambdaR := rng.Float64() * lambdaB * float64(s.Size())
		v, err := Heterogeneous(s, lambdaB, lambdaR, ExactDistance)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, x := range v.X {
			if x < -1e-9 || x > 1+1e-9 {
				return false // clamped vectors must stay in the simplex
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-6 {
			return false
		}
		if !v.Feasible {
			return true // clamped: balance not guaranteed
		}
		util := PredictedDimUtilization(s, v.X, lambdaB, lambdaR, ExactDistance)
		for i := 1; i < len(util); i++ {
			if math.Abs(util[i]-util[0]) > 1e-6*(util[0]+1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClampSimplex(t *testing.T) {
	cases := []struct {
		in, want []float64
	}{
		{[]float64{1.3, -0.3}, []float64{1, 0}},
		{[]float64{0.5, 0.5}, []float64{0.5, 0.5}},
		{[]float64{-1, -2, 6}, []float64{0, 0, 1}},
		{[]float64{-1, -1}, []float64{0.5, 0.5}}, // degenerate: uniform
		{[]float64{2, 2}, []float64{0.5, 0.5}},
	}
	for _, c := range cases {
		got := ClampSimplex(c.in)
		for i := range c.want {
			if math.Abs(got[i]-c.want[i]) > 1e-12 {
				t.Errorf("ClampSimplex(%v) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestClampSimplexAlwaysValid(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		out := ClampSimplex(raw)
		sum := 0.0
		for _, v := range out {
			if v < 0 || v > 1+1e-9 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUniform(t *testing.T) {
	v := Uniform(4)
	if !v.Feasible || len(v.X) != 4 {
		t.Fatal("Uniform(4) malformed")
	}
	for _, x := range v.X {
		if x != 0.25 {
			t.Errorf("Uniform entry = %g", x)
		}
	}
}

func TestDistanceModels(t *testing.T) {
	s := torus.MustNew(8, 8)
	if got := DimDistance(s, 0, PaperFloorDistance); got != 2 {
		t.Errorf("floor model = %g, want 2", got)
	}
	exact := DimDistance(s, 0, ExactDistance)
	want := 64.0 * 16 / (8 * 63) // N * rdsum / (n * (N-1))
	if math.Abs(exact-want) > 1e-12 {
		t.Errorf("exact model = %g, want %g", exact, want)
	}
	if got := TotalDistance(s, PaperFloorDistance); got != 4 {
		t.Errorf("TotalDistance floor = %g, want 4", got)
	}
}

func TestPredictedDimUtilizationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong-length vector should panic")
		}
	}()
	PredictedDimUtilization(torus.MustNew(4, 4), []float64{1}, 1, 0, ExactDistance)
}

func TestMaxThroughputZeroLoad(t *testing.T) {
	s := torus.MustNew(4, 4)
	if mt := MaxThroughput(s, []float64{0.5, 0.5}, 0, 0, ExactDistance); !math.IsInf(mt, 1) {
		t.Errorf("zero-load MaxThroughput = %g, want +Inf", mt)
	}
}

// TestHypercubeVectorUniform: the 2-ary d-cube (hypercube) is symmetric, so
// Eq. (2) must give the uniform vector even with the single-link 2-ring
// handling.
func TestHypercubeVectorUniform(t *testing.T) {
	s, err := torus.Hypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	v, err := BroadcastOnly(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range v.X {
		if math.Abs(x-1.0/6) > 1e-9 {
			t.Errorf("hypercube vector = %v, want uniform", v.X)
		}
	}
}

func TestClampTiny(t *testing.T) {
	x := []float64{-1e-12, 0.5, 1 + 1e-12}
	clampTiny(x)
	if x[0] != 0 || x[1] != 0.5 || x[2] != 1 {
		t.Errorf("clampTiny = %v", x)
	}
}

// TestCoeffMixedTwoRings: Eq. (1) with 2-ring dimensions (hypercube-like
// factors) still sums to N-1 per column and matches the tree enumeration
// invariants used elsewhere.
func TestCoeffMixedTwoRings(t *testing.T) {
	s := torus.MustNew(2, 5, 2)
	for l := 0; l < 3; l++ {
		sum := 0
		for i := 0; i < 3; i++ {
			sum += Coeff(s, i, l)
		}
		if sum != s.Size()-1 {
			t.Errorf("ending %d: column sum %d, want %d", l, sum, s.Size()-1)
		}
	}
	// ending 2 => order (0,1,2): a = 1, 4*2 = 8, 1*10 = 10.
	if Coeff(s, 0, 2) != 1 || Coeff(s, 1, 2) != 8 || Coeff(s, 2, 2) != 10 {
		t.Errorf("2-ring coefficients: %d %d %d",
			Coeff(s, 0, 2), Coeff(s, 1, 2), Coeff(s, 2, 2))
	}
}
