package balance

import (
	"math"
	"math/rand/v2"
	"testing"

	"prioritystar/internal/torus"
)

// checkSimplex asserts v is a probability vector over the shape's
// dimensions: nonnegative entries summing to 1.
func checkSimplex(t *testing.T, dims []int, v Vector) {
	t.Helper()
	if len(v.X) != len(dims) {
		t.Fatalf("%v: vector has %d entries", dims, len(v.X))
	}
	sum := 0.0
	for i, x := range v.X {
		if x < 0 || x > 1 {
			t.Errorf("%v: x[%d] = %v outside [0,1]", dims, i, x)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("%v: entries sum to %v", dims, sum)
	}
}

// TestBroadcastOnlyVectorProperties solves Eq. (2) on randomized shapes and
// checks the simplex invariants plus the symmetric-torus closed form: on an
// n-ary d-cube every ending dimension is equally likely, so x = 1/d.
func TestBroadcastOnlyVectorProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	for trial := 0; trial < 100; trial++ {
		d := 1 + int(rng.UintN(4))
		dims := make([]int, d)
		for i := range dims {
			dims[i] = 2 + int(rng.UintN(8)) // ring sizes 2..9
		}
		s := torus.MustNew(dims...)
		v, err := BroadcastOnly(s)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		checkSimplex(t, dims, v)
	}

	// Symmetric n-ary d-cubes: exact uniform solution, always feasible.
	for _, nd := range [][2]int{{2, 1}, {3, 2}, {8, 2}, {4, 3}, {2, 5}, {5, 4}} {
		n, d := nd[0], nd[1]
		s, err := torus.NAryDCube(n, d)
		if err != nil {
			t.Fatal(err)
		}
		v, err := BroadcastOnly(s)
		if err != nil {
			t.Fatalf("%d-ary %d-cube: %v", n, d, err)
		}
		if !v.Feasible {
			t.Errorf("%d-ary %d-cube: symmetric solution reported infeasible", n, d)
		}
		for i, x := range v.X {
			if math.Abs(x-1/float64(d)) > 1e-9 {
				t.Errorf("%d-ary %d-cube: x[%d] = %v, want %v", n, d, i, x, 1/float64(d))
			}
		}
	}
}

// TestHeterogeneousVectorProperties: Eq. (4) solutions are probability
// vectors for randomized shapes and traffic mixes, under both distance
// models, and clamping on infeasible instances still lands on the simplex.
func TestHeterogeneousVectorProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	for trial := 0; trial < 100; trial++ {
		d := 1 + int(rng.UintN(4))
		dims := make([]int, d)
		for i := range dims {
			dims[i] = 2 + int(rng.UintN(8))
		}
		s := torus.MustNew(dims...)
		lambdaB := rng.Float64() * 0.05
		lambdaR := rng.Float64() * 0.5
		if lambdaB == 0 && lambdaR == 0 {
			lambdaB = 0.01
		}
		model := ExactDistance
		if trial%2 == 1 {
			model = PaperFloorDistance
		}
		v, err := Heterogeneous(s, lambdaB, lambdaR, model)
		if err != nil {
			t.Fatalf("%v lB=%v lR=%v: %v", dims, lambdaB, lambdaR, err)
		}
		checkSimplex(t, dims, v)

		// On symmetric shapes the heterogeneous solution is uniform too.
		sym := true
		for _, n := range dims {
			if n != dims[0] {
				sym = false
			}
		}
		if sym {
			for i, x := range v.X {
				if math.Abs(x-1/float64(d)) > 1e-9 {
					t.Errorf("%v: symmetric x[%d] = %v, want %v", dims, i, x, 1/float64(d))
				}
			}
		}
	}
}
