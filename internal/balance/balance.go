// Package balance computes the STAR ending-dimension probability vectors
// that equalize link loads, reproducing Eq. (1), Eq. (2), and Eq. (4) of the
// paper.
//
// A broadcast task with ending dimension l covers the torus dimensions in
// the rotated order l+1, l+2, ..., d-1, 0, 1, ..., l (0-indexed) and
// performs a_{i,l} transmissions on dimension-i links, where a_{i,l} is the
// paper's Eq. (1): (n_i - 1) times the product of the ring lengths of the
// dimensions covered before i. Choosing ending dimension l with probability
// x_l, where x solves the paper's linear systems, makes the expected load
// identical on every directed link.
//
// Generalization: the paper's Eq. (2) target of (N-1)/d transmissions per
// dimension assumes every dimension contributes the same number of links
// (two directed links per node). Dimensions of length 2 contribute only one
// link per node (so that a 2-ary d-cube is the binary hypercube), so this
// package balances per-link load instead: dimension i is assigned the
// fraction dirs_i / degree of the total transmissions, which reduces to the
// paper's 1/d for shapes without 2-rings.
package balance

import (
	"fmt"
	"math"

	"prioritystar/internal/linsolve"
	"prioritystar/internal/torus"
)

// DistanceModel selects how the expected per-dimension unicast distance is
// computed when balancing heterogeneous traffic (Eq. 4).
type DistanceModel int

const (
	// ExactDistance uses the exact expectation of the ring distance for
	// destinations uniform over the other N-1 nodes. This makes the
	// measured loads match the predictions exactly.
	ExactDistance DistanceModel = iota
	// PaperFloorDistance uses the paper's floor(n_i/4) approximation from
	// Section 4.
	PaperFloorDistance
)

// DimDistance returns the expected number of dimension-i transmissions per
// unicast task under the given model.
func DimDistance(s *torus.Shape, i int, m DistanceModel) float64 {
	if m == PaperFloorDistance {
		return float64(s.PaperDimDistance(i))
	}
	return s.AvgDimDistance(i)
}

// TotalDistance returns the expected unicast path length under the model
// (the paper's D_ave, or its floor approximation).
func TotalDistance(s *torus.Shape, m DistanceModel) float64 {
	total := 0.0
	for i := 0; i < s.Dims(); i++ {
		total += DimDistance(s, i, m)
	}
	return total
}

// DimOrder returns the dimension traversal order of a STAR broadcast with
// the given ending dimension: ending+1, ending+2, ..., wrapping around, with
// the ending dimension last.
func DimOrder(d, ending int) []int {
	if ending < 0 || ending >= d {
		panic(fmt.Sprintf("balance: ending dimension %d out of range [0,%d)", ending, d))
	}
	order := make([]int, d)
	for p := 0; p < d; p++ {
		order[p] = (ending + 1 + p) % d
	}
	return order
}

// Coeff returns a_{i,l} (paper Eq. 1): the number of transmissions a single
// STAR broadcast with ending dimension l performs on dimension-i links.
func Coeff(s *torus.Shape, i, l int) int {
	product := 1
	for _, j := range DimOrder(s.Dims(), l) {
		if j == i {
			return (s.Dim(i) - 1) * product
		}
		product *= s.Dim(j)
	}
	panic("unreachable: DimOrder covers every dimension")
}

// Coeffs returns the full d x d coefficient matrix A with A[i][l] = a_{i,l}.
func Coeffs(s *torus.Shape) *linsolve.Matrix {
	d := s.Dims()
	m := linsolve.NewMatrix(d, d)
	for l := 0; l < d; l++ {
		product := 1
		for _, i := range DimOrder(d, l) {
			m.Set(i, l, float64((s.Dim(i)-1)*product))
			product *= s.Dim(i)
		}
	}
	return m
}

// Vector is an ending-dimension probability assignment together with
// feasibility information.
type Vector struct {
	// X[l] is the probability of choosing l as the ending dimension.
	X []float64
	// Feasible reports whether the unclamped solution of the balance
	// system was a legitimate probability vector (all entries in [0,1]).
	// When false, X holds the clamped/renormalized vector the paper
	// prescribes for infeasible cases (Section 4) and the link loads are
	// only approximately balanced.
	Feasible bool
}

// Uniform returns the uniform vector x_l = 1/d, the solution for symmetric
// tori and the paper's model of schemes that ignore load imbalance.
func Uniform(d int) Vector {
	x := make([]float64, d)
	for i := range x {
		x[i] = 1 / float64(d)
	}
	return Vector{X: x, Feasible: true}
}

// dimShare returns the fraction of total transmissions dimension i should
// carry for per-link balance: dirs_i / degree.
func dimShare(s *torus.Shape, i int) float64 {
	return float64(s.DirsInDim(i)) / float64(s.Degree())
}

const feasEps = 1e-9

func checkFeasible(x []float64) bool {
	for _, v := range x {
		if v < -feasEps || v > 1+feasEps {
			return false
		}
	}
	return true
}

// BroadcastOnly solves the paper's Eq. (2): the ending-dimension
// probabilities that balance a pure random-broadcasting workload. For a
// symmetric torus the result is the uniform vector.
func BroadcastOnly(s *torus.Shape) (Vector, error) {
	return Heterogeneous(s, 1, 0, ExactDistance)
}

// Heterogeneous solves the paper's Eq. (4): the ending-dimension
// probabilities that balance combined random-broadcast (rate lambdaB) and
// random-unicast (rate lambdaR) traffic. Only the ratio lambdaR/lambdaB
// matters. If lambdaB is zero the broadcast vector is irrelevant and the
// uniform vector is returned.
//
// If the solved vector is not a legitimate probability vector, it is
// clamped to the simplex as Section 4 prescribes (e.g. (x1,x2) with x1 > 1,
// x2 < 0 becomes (1,0)) and Feasible is false.
func Heterogeneous(s *torus.Shape, lambdaB, lambdaR float64, m DistanceModel) (Vector, error) {
	d := s.Dims()
	if lambdaB < 0 || lambdaR < 0 {
		return Vector{}, fmt.Errorf("balance: negative rates (%g, %g)", lambdaB, lambdaR)
	}
	if lambdaB == 0 {
		return Uniform(d), nil
	}
	ratio := lambdaR / lambdaB

	total := float64(s.Size() - 1) // broadcast transmissions per task
	sumU := 0.0
	u := make([]float64, d)
	for i := 0; i < d; i++ {
		u[i] = DimDistance(s, i, m)
		sumU += u[i]
	}
	// Per-dimension targets: share of all transmissions proportional to the
	// dimension's link count, minus the unicast contribution, divided by
	// lambdaB (paper Eq. 4 rearranged).
	b := make([]float64, d)
	for i := 0; i < d; i++ {
		b[i] = (total+ratio*sumU)*dimShare(s, i) - ratio*u[i]
	}
	a := Coeffs(s)
	x, err := linsolve.Solve(a, b)
	if err != nil {
		return Vector{}, fmt.Errorf("balance: solving Eq. 4 for %v: %w", s, err)
	}
	if res, err := linsolve.Residual(a, x, b); err != nil || res > 1e-6*(total+1) {
		return Vector{}, fmt.Errorf("balance: ill-conditioned system for %v (residual %g, %v)", s, res, err)
	}
	if checkFeasible(x) {
		clampTiny(x)
		return Vector{X: x, Feasible: true}, nil
	}
	return Vector{X: ClampSimplex(x), Feasible: false}, nil
}

// clampTiny snaps slightly-out-of-range entries produced by floating-point
// error onto [0, 1].
func clampTiny(x []float64) {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		} else if v > 1 {
			x[i] = 1
		}
	}
}

// ClampSimplex projects x onto the probability simplex by zeroing negative
// entries and rescaling until every entry lies in [0, 1] and the entries sum
// to 1. This implements the paper's Section 4 fallback for infeasible
// solutions.
func ClampSimplex(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	// Pre-scale enormous inputs so the normalization sum cannot overflow.
	maxAbs := 0.0
	for _, v := range out {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs > 1e100 {
		for i := range out {
			out[i] /= maxAbs
		}
	}
	for iter := 0; iter < len(x)+2; iter++ {
		sum := 0.0
		again := false
		for i, v := range out {
			if v < 0 {
				out[i] = 0
				v = 0
			}
			sum += v
		}
		if sum == 0 {
			// Degenerate input; fall back to uniform.
			for i := range out {
				out[i] = 1 / float64(len(out))
			}
			return out
		}
		for i := range out {
			out[i] /= sum
			if out[i] < 0 {
				again = true
			}
		}
		if !again {
			break
		}
	}
	return out
}

// PredictedDimUtilization returns the expected utilization of each
// dimension's links under ending-dimension vector x and the given traffic
// rates: (lambdaB * sum_l x_l a_{i,l} + lambdaR * u_i) / dirs_i.
func PredictedDimUtilization(s *torus.Shape, x []float64, lambdaB, lambdaR float64, m DistanceModel) []float64 {
	d := s.Dims()
	if len(x) != d {
		panic(fmt.Sprintf("balance: vector length %d != dims %d", len(x), d))
	}
	util := make([]float64, d)
	for i := 0; i < d; i++ {
		load := 0.0
		for l := 0; l < d; l++ {
			load += x[l] * float64(Coeff(s, i, l))
		}
		util[i] = (lambdaB*load + lambdaR*DimDistance(s, i, m)) / float64(s.DirsInDim(i))
	}
	return util
}

// MaxUtilization returns the maximum predicted link utilization, the
// quantity that bounds the achievable throughput factor: the workload is
// stable only while MaxUtilization < 1.
func MaxUtilization(s *torus.Shape, x []float64, lambdaB, lambdaR float64, m DistanceModel) float64 {
	max := 0.0
	for _, v := range PredictedDimUtilization(s, x, lambdaB, lambdaR, m) {
		if v > max {
			max = v
		}
	}
	return max
}

// MaxThroughput returns the maximum throughput factor achievable with
// vector x: the throughput factor at which the most loaded link saturates.
// A perfectly balanced vector yields 1; the paper's Section 1 example
// (separate balancing in a torus with one double-length dimension) yields
// about 2/3 for large d.
func MaxThroughput(s *torus.Shape, x []float64, lambdaB, lambdaR float64, m DistanceModel) float64 {
	maxU := MaxUtilization(s, x, lambdaB, lambdaR, m)
	if maxU == 0 {
		return math.Inf(1)
	}
	// Throughput factor of the offered load.
	rho := (lambdaB*float64(s.Size()-1) + lambdaR*TotalDistance(s, m)) / float64(s.Degree())
	return rho / maxU
}
