// Package finite is a finite-buffer store-and-forward engine with virtual
// channels and credit backpressure. It exists to validate the deadlock
// dimension of the paper's Section 3.1, which the main simulator (unbounded
// queues, where deadlock is impossible) cannot exercise: wraparound rings
// with finite buffers deadlock under minimal routing unless a second
// virtual channel splits the cyclic buffer dependency at a dateline — the
// same VC1/VC2 construction the SDC broadcast algorithm prescribes.
//
// The engine routes unicast packets dimension-ordered along shortest ring
// paths. Each directed link has, per virtual channel, a receive buffer of
// Capacity packets; a transmission starts only when the link is idle and a
// credit (free slot) is available in the target buffer. The dateline rule
// assigns VC 0 to a packet entering a dimension and switches it to VC 1
// when its hop crosses the ring's wraparound edge; since minimal paths
// cross at most once and dimension transitions strictly increase the
// dimension index, the buffer-class dependency graph is acyclic and the
// 2-VC configuration is deadlock-free. With a single VC the dependency
// cycle around a ring is intact and the engine detects deadlock (no
// forward progress while packets remain).
package finite

import (
	"fmt"
	"math/rand/v2"

	"prioritystar/internal/core"
	"prioritystar/internal/queue"
	"prioritystar/internal/stats"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// Flow is a preloaded unicast demand injected at slot 0.
type Flow struct {
	Src, Dst torus.Node
	// TieMask overrides the random tie-breaking (bit per dimension).
	TieMask uint32
}

// Config describes one finite-buffer run.
type Config struct {
	Shape *torus.Shape
	// VCs is the number of virtual channels per link (1 or 2).
	VCs int
	// Capacity is the per-(link, VC) receive-buffer size in packets.
	Capacity int
	// LambdaR is the per-node Poisson unicast arrival rate.
	LambdaR float64
	// Preload is injected at slot 0 before any Poisson traffic.
	Preload []Flow
	Seed    uint64
	// Slots is the simulation horizon.
	Slots int64
	// StopInjection stops Poisson arrivals after this slot (0 = never),
	// letting drain tests verify that the network empties.
	StopInjection int64
	// DetectWindow flags deadlock after this many consecutive slots
	// without any transmission or delivery while packets remain queued
	// (default 512).
	DetectWindow int64
}

func (c *Config) validate() error {
	if c.Shape == nil {
		return fmt.Errorf("finite: nil shape")
	}
	if c.VCs != 1 && c.VCs != 2 {
		return fmt.Errorf("finite: VCs must be 1 or 2, got %d", c.VCs)
	}
	if c.Capacity < 1 {
		return fmt.Errorf("finite: Capacity must be >= 1, got %d", c.Capacity)
	}
	if c.Slots <= 0 {
		return fmt.Errorf("finite: Slots must be positive")
	}
	if c.LambdaR < 0 {
		return fmt.Errorf("finite: negative arrival rate")
	}
	return nil
}

// Result reports a finite-buffer run.
type Result struct {
	Injected  int64
	Delivered int64
	Delay     stats.Welford // end-to-end delays of delivered packets
	// Deadlocked is true when no progress was made for DetectWindow slots
	// while packets remained; DeadlockSlot is the slot of the last
	// progress event.
	Deadlocked   bool
	DeadlockSlot int64
	// Remaining counts packets still in the network or source queues at
	// the end of the run.
	Remaining int64
}

// packet is one unicast packet in the finite-buffer network.
type packet struct {
	birth    int64
	dest     torus.Node
	tieMask  uint32
	heldLink torus.LinkID // buffer the packet occupies (-1 = source queue)
	heldVC   int8
	nextVC   int8 // VC (and buffer) of its next hop
	dim      int8 // dimension of the next hop
}

type arrival struct {
	link torus.LinkID
	vc   int8
	pkt  packet
}

type engine struct {
	cfg Config
	s   *torus.Shape
	rng *rand.Rand
	res *Result

	occupancy [][2]int             // per link slot, per VC
	busy      []bool               // link transmitting this slot
	outq      []queue.FIFO[packet] // per (link slot * VCs + vc)
	arrivals  []arrival            // packets in flight, landing next slot
	next      []arrival
	inFlight  int64
	queued    int64
	lastMove  int64
}

// Run executes one finite-buffer simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.DetectWindow == 0 {
		cfg.DetectWindow = 512
	}
	s := cfg.Shape
	e := &engine{
		cfg:       cfg,
		s:         s,
		rng:       rand.New(rand.NewPCG(cfg.Seed, 0xf171e)),
		res:       &Result{},
		occupancy: make([][2]int, s.LinkSlots()),
		busy:      make([]bool, s.LinkSlots()),
		outq:      make([]queue.FIFO[packet], s.LinkSlots()*cfg.VCs),
	}
	for _, f := range cfg.Preload {
		e.inject(0, f.Src, f.Dst, f.TieMask)
	}
	for t := int64(0); t < cfg.Slots; t++ {
		e.deliver(t)
		if cfg.LambdaR > 0 && (cfg.StopInjection == 0 || t < cfg.StopInjection) {
			for i := traffic.Poisson(e.rng, cfg.LambdaR*float64(s.Size())); i > 0; i-- {
				src := torus.Node(e.rng.IntN(s.Size()))
				e.inject(t, src, traffic.UniformDest(e.rng, s, src), core.SampleTieMask(e.rng, s.Dims()))
			}
		}
		e.service(t)
		if e.queued+e.inFlight == 0 {
			e.lastMove = t
			continue
		}
		if e.inFlight == 0 && t-e.lastMove >= cfg.DetectWindow {
			e.res.Deadlocked = true
			e.res.DeadlockSlot = e.lastMove
			break
		}
	}
	e.res.Remaining = e.queued + e.inFlight
	return e.res, nil
}

// routeVC computes the next hop of pkt from node u and the buffer class it
// will occupy there, applying the dateline rule.
func (e *engine) route(u torus.Node, pkt *packet) (link torus.LinkID, done bool) {
	dim, dir, done := core.UnicastNextHop(e.s, u, pkt.dest, pkt.tieMask)
	if done {
		return 0, true
	}
	vc := int8(0)
	if int8(dim) == pkt.dim {
		vc = pkt.nextVC // stays on its current ring VC...
	}
	if e.cfg.VCs > 1 && crosses(e.s, u, dim, dir) {
		vc = 1
	}
	if e.cfg.VCs == 1 {
		vc = 0
	}
	pkt.dim = int8(dim)
	pkt.nextVC = vc
	return e.s.Link(u, dim, dir), false
}

// crosses reports whether the hop from u along dim in direction dir
// traverses the ring's wraparound edge (the dateline).
func crosses(s *torus.Shape, u torus.Node, dim int, dir torus.Dir) bool {
	c := s.Coord(u, dim)
	if dir == torus.Plus {
		return c == s.Dim(dim)-1
	}
	return c == 0
}

// inject places a new packet into the source's output queue (source queues
// are outside the network and unbounded, the standard injection model).
func (e *engine) inject(t int64, src, dst torus.Node, tieMask uint32) {
	if src == dst {
		return
	}
	pkt := packet{birth: t, dest: dst, tieMask: tieMask, heldLink: -1, heldVC: -1, dim: -1}
	link, done := e.route(src, &pkt)
	if done {
		return
	}
	e.enqueue(link, pkt)
	e.res.Injected++
}

func (e *engine) enqueue(link torus.LinkID, pkt packet) {
	e.outq[int(link)*e.cfg.VCs+int(pkt.nextVC)].Push(pkt)
	e.queued++
}

// deliver processes last slot's arrivals: frees the buffers the packets
// held, consumes packets at their destinations, and requeues the rest.
func (e *engine) deliver(t int64) {
	e.arrivals, e.next = e.next, e.arrivals[:0]
	for i := range e.arrivals {
		a := &e.arrivals[i]
		e.inFlight--
		e.busy[a.link] = false
		pkt := a.pkt
		if pkt.heldLink >= 0 {
			e.occupancy[pkt.heldLink][pkt.heldVC]--
		}
		node := e.s.LinkDst(a.link)
		if node == pkt.dest {
			e.occupancy[a.link][a.vc]-- // ejection frees the buffer at once
			e.res.Delivered++
			e.res.Delay.Add(float64(t - pkt.birth))
			e.lastMove = t
			continue
		}
		pkt.heldLink = a.link
		pkt.heldVC = a.vc
		link, _ := e.route(node, &pkt)
		e.enqueue(link, pkt)
	}
	e.arrivals = e.arrivals[:0]
}

// service starts transmissions: for every idle link, the first VC queue (in
// round-robin starting from the slot parity) whose head has a credit in the
// target buffer transmits one packet.
func (e *engine) service(t int64) {
	vcs := e.cfg.VCs
	for l := 0; l < e.s.LinkSlots(); l++ {
		if e.busy[l] {
			continue
		}
		start := int(t) % vcs
		for k := 0; k < vcs; k++ {
			vc := (start + k) % vcs
			q := &e.outq[l*vcs+vc]
			if q.Len() == 0 {
				continue
			}
			if e.occupancy[l][vc] >= e.cfg.Capacity {
				continue // no credit on this VC
			}
			pkt, _ := q.Pop()
			e.queued--
			e.occupancy[l][vc]++ // reserve the receive buffer
			e.busy[l] = true
			e.inFlight++
			e.next = append(e.next, arrival{link: torus.LinkID(l), vc: int8(vc), pkt: pkt})
			e.lastMove = t
			break
		}
	}
}
