package finite

import (
	"testing"

	"prioritystar/internal/torus"
)

func TestConfigValidation(t *testing.T) {
	s := torus.MustNew(4, 4)
	good := Config{Shape: s, VCs: 2, Capacity: 2, Slots: 100}
	muts := []func(*Config){
		func(c *Config) { c.Shape = nil },
		func(c *Config) { c.VCs = 0 },
		func(c *Config) { c.VCs = 3 },
		func(c *Config) { c.Capacity = 0 },
		func(c *Config) { c.Slots = 0 },
		func(c *Config) { c.LambdaR = -1 },
	}
	for i, mut := range muts {
		c := good
		mut(&c)
		if _, err := Run(c); err == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}

// TestDeterministicRingDeadlock constructs the classic store-and-forward
// deadlock: on a 4-ring with capacity-1 buffers and a single VC, four
// packets each destined two hops clockwise fill every buffer and block each
// other in a cycle. With two VCs and the dateline rule, the same workload
// completes.
func TestDeterministicRingDeadlock(t *testing.T) {
	s := torus.MustNew(4)
	preload := []Flow{}
	for i := 0; i < 4; i++ {
		preload = append(preload, Flow{
			Src: torus.Node(i), Dst: torus.Node((i + 2) % 4), TieMask: 0, // all clockwise
		})
	}
	oneVC, err := Run(Config{Shape: s, VCs: 1, Capacity: 1, Preload: preload, Slots: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !oneVC.Deadlocked {
		t.Fatalf("1 VC should deadlock: %+v", oneVC)
	}
	if oneVC.Delivered != 0 {
		t.Errorf("deadlocked run delivered %d packets", oneVC.Delivered)
	}

	twoVC, err := Run(Config{Shape: s, VCs: 2, Capacity: 1, Preload: preload, Slots: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if twoVC.Deadlocked {
		t.Fatal("2 VCs must not deadlock")
	}
	if twoVC.Delivered != 4 || twoVC.Remaining != 0 {
		t.Errorf("2 VCs: delivered %d, remaining %d; want 4, 0", twoVC.Delivered, twoVC.Remaining)
	}
}

// TestRandomLoadOneVCDeadlocks: sustained random traffic through tiny
// buffers on a ring deadlocks with one VC for most seeds.
func TestRandomLoadOneVCDeadlocks(t *testing.T) {
	s := torus.MustNew(6)
	deadlocks := 0
	const seeds = 8
	for seed := uint64(1); seed <= seeds; seed++ {
		res, err := Run(Config{
			Shape: s, VCs: 1, Capacity: 1, LambdaR: 0.4, Seed: seed, Slots: 20000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked {
			deadlocks++
		}
	}
	if deadlocks < seeds/2 {
		t.Errorf("only %d/%d seeds deadlocked with 1 VC; expected most", deadlocks, seeds)
	}
}

// TestRandomLoadTwoVCsNeverDeadlock: the dateline construction keeps the
// network deadlock-free and fully drains after injection stops.
func TestRandomLoadTwoVCsNeverDeadlock(t *testing.T) {
	for _, dims := range [][]int{{6}, {4, 4}, {4, 6}} {
		s := torus.MustNew(dims...)
		for seed := uint64(1); seed <= 4; seed++ {
			res, err := Run(Config{
				Shape: s, VCs: 2, Capacity: 1, LambdaR: 0.4, Seed: seed,
				Slots: 30000, StopInjection: 20000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Deadlocked {
				t.Fatalf("%v seed %d: 2 VCs deadlocked at slot %d", dims, seed, res.DeadlockSlot)
			}
			if res.Remaining != 0 {
				t.Errorf("%v seed %d: %d packets stuck after drain", dims, seed, res.Remaining)
			}
			if res.Delivered != res.Injected {
				t.Errorf("%v seed %d: delivered %d != injected %d", dims, seed, res.Delivered, res.Injected)
			}
		}
	}
}

// TestDelaysSaneUnderBackpressure: with ample buffers and light load the
// finite engine's delays approach the unconstrained shortest-path values.
func TestDelaysSaneUnderBackpressure(t *testing.T) {
	s := torus.MustNew(8, 8)
	res, err := Run(Config{
		Shape: s, VCs: 2, Capacity: 8, LambdaR: 0.02, Seed: 9,
		Slots: 20000, StopInjection: 15000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked || res.Remaining != 0 {
		t.Fatalf("light load should drain cleanly: %+v", res)
	}
	want := s.AvgDistance()
	if got := res.Delay.Mean(); got < want-0.3 || got > want+1.0 {
		t.Errorf("light-load delay %g, want ~%g", got, want)
	}
}

// TestCapacityRelievesBlocking: larger buffers reduce average delay at
// moderate load (backpressure is doing something measurable).
func TestCapacityRelievesBlocking(t *testing.T) {
	s := torus.MustNew(6, 6)
	run := func(cap int) float64 {
		res, err := Run(Config{
			Shape: s, VCs: 2, Capacity: cap, LambdaR: 0.3, Seed: 4,
			Slots: 20000, StopInjection: 15000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked {
			t.Fatalf("capacity %d deadlocked", cap)
		}
		return res.Delay.Mean()
	}
	tight := run(1)
	roomy := run(16)
	if roomy >= tight {
		t.Errorf("capacity 16 delay %g should beat capacity 1 delay %g", roomy, tight)
	}
}

// TestSelfDestinationIgnored: preloading a self-flow is a no-op.
func TestSelfDestinationIgnored(t *testing.T) {
	s := torus.MustNew(4, 4)
	res, err := Run(Config{
		Shape: s, VCs: 2, Capacity: 1, Slots: 100,
		Preload: []Flow{{Src: 3, Dst: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != 0 {
		t.Errorf("self flow should not inject, got %d", res.Injected)
	}
}

func TestCrosses(t *testing.T) {
	s := torus.MustNew(5, 5)
	if !crosses(s, s.Node([]int{4, 0}), 0, torus.Plus) {
		t.Error("hop 4->0 in + direction crosses")
	}
	if crosses(s, s.Node([]int{3, 0}), 0, torus.Plus) {
		t.Error("hop 3->4 does not cross")
	}
	if !crosses(s, s.Node([]int{0, 2}), 0, torus.Minus) {
		t.Error("hop 0->4 in - direction crosses")
	}
	if crosses(s, s.Node([]int{1, 2}), 0, torus.Minus) {
		t.Error("hop 1->0 does not cross")
	}
}
