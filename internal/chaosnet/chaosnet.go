// Package chaosnet is a deterministic, seedable fault-injecting transport
// for the cluster wire protocol: an http.RoundTripper that imposes scripted
// latency distributions, request/response drops, one-way partitions,
// slow-trickle bodies, and corrupt or truncated responses on outbound HTTP
// calls, plus an in-front TCP proxy (proxy.go) for subprocess tests where
// the faulted peer lives in another process.
//
// The paper's routing scheme earns its guarantees by routing around
// degraded torus links; chaosnet is how we degrade the fleet's links on
// purpose, repeatably, so the dispatch layer (internal/cluster) can prove
// it reroutes the same way. Every random draw comes from one seeded
// generator behind a mutex, so a fixed seed plus a fixed request sequence
// replays the same fault sequence — a failing chaos run is reproducible by
// its seed.
//
// Faults are scripted per destination host and mutated at runtime:
//
//	tr := chaosnet.New(42, nil)
//	tr.Set(workerAddr, chaosnet.Faults{Latency: 50 * time.Millisecond, Jitter: 20 * time.Millisecond})
//	tr.Partition(workerAddr)          // hard two-way cut
//	tr.Set(workerAddr, chaosnet.Faults{DropResponse: 1}) // one-way: work done, result lost
//	tr.Heal(workerAddr)
//
// A Faults value with Times > 0 expires after that many faulted requests —
// the hook for "exactly one truncated response, then healthy".
package chaosnet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Faults scripts what happens to requests toward one host (or to every
// host, via Transport.SetAll). Probabilities are in [0, 1]; 0 and 1 make
// the fault deterministic regardless of seed.
type Faults struct {
	// Latency delays the request before it is sent; Jitter adds a uniform
	// [0, Jitter) random extra, drawn from the transport's seeded source.
	Latency time.Duration
	Jitter  time.Duration
	// DropRequest is the probability the request is lost before reaching
	// the server (connection-level failure; the server never sees it).
	DropRequest float64
	// DropResponse is the probability the request reaches the server and is
	// fully processed, but the response is lost on the way back — the
	// one-way partition that makes duplicate-discard load-bearing: the work
	// happened, the caller cannot know.
	DropResponse float64
	// Corrupt is the probability the response body is returned with a run
	// of bytes flipped — parseable framing, garbage payload.
	Corrupt float64
	// Truncate is the probability the response body is cut at half length
	// and the read errors with io.ErrUnexpectedEOF, like a torn connection.
	Truncate float64
	// TrickleBPS, when > 0, throttles the response body to roughly this
	// many bytes per second (a slow-trickle link).
	TrickleBPS int
	// Times, when > 0, bounds how many requests this script faults; after
	// that many faulted requests the host behaves healthily. 0 is
	// unlimited.
	Times int
}

// partitioned is the script Partition installs: every request dropped.
var partitioned = Faults{DropRequest: 1}

// hostFaults is one host's mutable script.
type hostFaults struct {
	f    Faults
	used int // requests faulted so far, against f.Times
}

// Transport is the fault-injecting http.RoundTripper. The zero value is
// not usable; build one with New.
type Transport struct {
	base http.RoundTripper

	mu    sync.Mutex
	rnd   *rand.Rand
	hosts map[string]*hostFaults
	all   *hostFaults

	// counters, for tests and logs
	dropped   int64
	corrupted int64
	truncated int64
	delayed   int64
}

// New builds a Transport over base (http.DefaultTransport when nil) with a
// seeded random source. The same seed and request sequence replay the same
// fault decisions.
func New(seed int64, base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		base:  base,
		rnd:   rand.New(rand.NewSource(seed)),
		hosts: make(map[string]*hostFaults),
	}
}

// Set installs (replaces) the fault script for one host ("host:port", as it
// appears in request URLs).
func (t *Transport) Set(host string, f Faults) {
	t.mu.Lock()
	t.hosts[host] = &hostFaults{f: f}
	t.mu.Unlock()
}

// SetAll installs a default script applied to hosts without their own.
func (t *Transport) SetAll(f Faults) {
	t.mu.Lock()
	t.all = &hostFaults{f: f}
	t.mu.Unlock()
}

// Partition hard-cuts one host both ways: every request toward it fails at
// the connection level.
func (t *Transport) Partition(host string) { t.Set(host, partitioned) }

// Heal removes the fault script for one host.
func (t *Transport) Heal(host string) {
	t.mu.Lock()
	delete(t.hosts, host)
	t.mu.Unlock()
}

// HealAll removes every script, host-specific and default.
func (t *Transport) HealAll() {
	t.mu.Lock()
	t.hosts = make(map[string]*hostFaults)
	t.all = nil
	t.mu.Unlock()
}

// Dropped reports how many requests or responses have been dropped.
func (t *Transport) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// verdict is the set of fault decisions for one request, drawn up front
// under the lock so the unlocked slow path (sleeping, reading bodies) never
// touches the shared generator.
type verdict struct {
	delay        time.Duration
	dropRequest  bool
	dropResponse bool
	corrupt      bool
	truncate     bool
	trickleBPS   int
	corruptAt    int // seeded corruption offset factor
}

// decide draws one request's verdict from the host's script.
func (t *Transport) decide(host string) (verdict, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	hf := t.hosts[host]
	if hf == nil {
		hf = t.all
	}
	if hf == nil {
		return verdict{}, false
	}
	f := hf.f
	if f.Times > 0 && hf.used >= f.Times {
		return verdict{}, false
	}
	v := verdict{
		delay:      f.Latency,
		trickleBPS: f.TrickleBPS,
		corruptAt:  t.rnd.Intn(1 << 16),
	}
	if f.Jitter > 0 {
		v.delay += time.Duration(t.rnd.Int63n(int64(f.Jitter)))
	}
	v.dropRequest = chance(t.rnd, f.DropRequest)
	// Draw every decision unconditionally so the consumed random sequence —
	// and therefore every later decision — does not depend on which faults
	// happen to fire.
	v.dropResponse = chance(t.rnd, f.DropResponse)
	v.corrupt = chance(t.rnd, f.Corrupt)
	v.truncate = chance(t.rnd, f.Truncate)
	faulted := v.delay > 0 || v.dropRequest || v.dropResponse || v.corrupt || v.truncate || v.trickleBPS > 0
	if faulted {
		hf.used++
	}
	return v, faulted
}

// chance draws a biased coin; p <= 0 never fires, p >= 1 always fires,
// without consuming a random number at the endpoints (determinism at the
// 0/1 endpoints must not depend on draw order).
func chance(rnd *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rnd.Float64() < p
}

// DropError is the connection-level error injected for dropped requests
// and responses; errors.As-able so tests can tell injected faults from real
// ones.
type DropError struct {
	Host string
	// Phase is "request" (never reached the server) or "response" (the
	// server processed it; the answer was lost).
	Phase string
}

// Error implements error.
func (e *DropError) Error() string {
	return fmt.Sprintf("chaosnet: %s to %s dropped", e.Phase, e.Host)
}

// RoundTrip applies the host's script: delay, drop, forward, then mangle
// the response body as scripted.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	v, faulted := t.decide(host)
	if !faulted {
		return t.base.RoundTrip(req)
	}
	if v.delay > 0 {
		t.mu.Lock()
		t.delayed++
		t.mu.Unlock()
		select {
		case <-time.After(v.delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if v.dropRequest {
		if req.Body != nil {
			req.Body.Close()
		}
		t.mu.Lock()
		t.dropped++
		t.mu.Unlock()
		return nil, &DropError{Host: host, Phase: "request"}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if v.dropResponse {
		// The server did the work; the caller will never know. Draining the
		// body first keeps the keep-alive connection reusable, exactly like
		// a response lost above the transport.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.mu.Lock()
		t.dropped++
		t.mu.Unlock()
		return nil, &DropError{Host: host, Phase: "response"}
	}
	if v.corrupt || v.truncate {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		switch {
		case v.truncate:
			t.mu.Lock()
			t.truncated++
			t.mu.Unlock()
			// Half the body, then the read error a torn connection produces.
			// ContentLength keeps promising the full response so even
			// length-checking readers see the tear.
			resp.Body = io.NopCloser(io.MultiReader(
				bytes.NewReader(body[:len(body)/2]),
				errReader{io.ErrUnexpectedEOF},
			))
		case v.corrupt:
			t.mu.Lock()
			t.corrupted++
			t.mu.Unlock()
			if len(body) > 0 {
				start := v.corruptAt % len(body)
				for i := 0; i < 8 && start+i < len(body); i++ {
					body[start+i] ^= 0xA5
				}
			}
			resp.Body = io.NopCloser(bytes.NewReader(body))
		}
		return resp, nil
	}
	if v.trickleBPS > 0 {
		resp.Body = &trickleReader{r: resp.Body, bps: v.trickleBPS, ctx: req.Context()}
	}
	return resp, nil
}

// errReader fails every Read with its error.
type errReader struct{ err error }

func (e errReader) Read([]byte) (int, error) { return 0, e.err }

// trickleReader throttles reads to roughly bps bytes per second in small
// chunks, aborting when the request context dies (a trickling body must not
// outlive its caller).
type trickleReader struct {
	r   io.ReadCloser
	bps int
	ctx context.Context
}

func (t *trickleReader) Read(p []byte) (int, error) {
	if err := t.ctx.Err(); err != nil {
		return 0, err
	}
	chunk := t.bps / 10 // ~10 chunks/second
	if chunk < 1 {
		chunk = 1
	}
	if len(p) > chunk {
		p = p[:chunk]
	}
	n, err := t.r.Read(p)
	if n > 0 {
		delay := time.Duration(float64(n) / float64(t.bps) * float64(time.Second))
		select {
		case <-time.After(delay):
		case <-t.ctx.Done():
			return n, t.ctx.Err()
		}
	}
	return n, err
}

func (t *trickleReader) Close() error { return t.r.Close() }
