package chaosnet

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testServer(t *testing.T, body string) (*httptest.Server, string, *int64) {
	t.Helper()
	var hits int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt64(&hits, 1)
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	u, err := url.Parse(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return srv, u.Host, &hits
}

func get(t *testing.T, tr *Transport, url string) (string, error) {
	t.Helper()
	client := &http.Client{Transport: tr}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func TestHealthyPassThrough(t *testing.T) {
	srv, _, hits := testServer(t, "hello")
	tr := New(1, nil)
	body, err := get(t, tr, srv.URL)
	if err != nil || body != "hello" {
		t.Fatalf("body=%q err=%v", body, err)
	}
	if *hits != 1 {
		t.Fatalf("hits=%d", *hits)
	}
}

func TestPartitionDropsBeforeServer(t *testing.T) {
	srv, host, hits := testServer(t, "hello")
	tr := New(1, nil)
	tr.Partition(host)
	_, err := get(t, tr, srv.URL)
	var de *DropError
	if !errors.As(err, &de) || de.Phase != "request" {
		t.Fatalf("want request DropError, got %v", err)
	}
	if n := atomic.LoadInt64(hits); n != 0 {
		t.Fatalf("server saw %d requests through a partition", n)
	}
	tr.Heal(host)
	if body, err := get(t, tr, srv.URL); err != nil || body != "hello" {
		t.Fatalf("after heal: body=%q err=%v", body, err)
	}
}

func TestDropResponseReachesServer(t *testing.T) {
	srv, host, hits := testServer(t, "hello")
	tr := New(1, nil)
	tr.Set(host, Faults{DropResponse: 1})
	_, err := get(t, tr, srv.URL)
	var de *DropError
	if !errors.As(err, &de) || de.Phase != "response" {
		t.Fatalf("want response DropError, got %v", err)
	}
	if n := atomic.LoadInt64(hits); n != 1 {
		t.Fatalf("one-way partition: server hits=%d, want 1", n)
	}
}

func TestTruncateHalvesBodyWithTornRead(t *testing.T) {
	full := strings.Repeat("x", 4096)
	srv, host, _ := testServer(t, full)
	tr := New(1, nil)
	tr.Set(host, Faults{Truncate: 1})
	body, err := get(t, tr, srv.URL)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
	if len(body) >= len(full) {
		t.Fatalf("body not truncated: %d bytes", len(body))
	}
}

func TestCorruptKeepsLengthChangesBytes(t *testing.T) {
	full := strings.Repeat("y", 4096)
	srv, host, _ := testServer(t, full)
	tr := New(1, nil)
	tr.Set(host, Faults{Corrupt: 1})
	body, err := get(t, tr, srv.URL)
	if err != nil {
		t.Fatalf("corrupt read should succeed: %v", err)
	}
	if len(body) != len(full) {
		t.Fatalf("corrupt changed length: %d vs %d", len(body), len(full))
	}
	if body == full {
		t.Fatal("body unchanged")
	}
}

func TestTimesBoundsFaults(t *testing.T) {
	srv, host, _ := testServer(t, "hello")
	tr := New(1, nil)
	tr.Set(host, Faults{DropRequest: 1, Times: 2})
	for i := 0; i < 2; i++ {
		if _, err := get(t, tr, srv.URL); err == nil {
			t.Fatalf("request %d should drop", i)
		}
	}
	if body, err := get(t, tr, srv.URL); err != nil || body != "hello" {
		t.Fatalf("after Times exhausted: body=%q err=%v", body, err)
	}
}

func TestLatencyHonorsContext(t *testing.T) {
	srv, host, _ := testServer(t, "hello")
	tr := New(1, nil)
	tr.Set(host, Faults{Latency: 10 * time.Second})
	client := &http.Client{Transport: tr, Timeout: 100 * time.Millisecond}
	start := time.Now()
	_, err := client.Get(srv.URL)
	if err == nil {
		t.Fatal("want timeout error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("latency ignored context: %v", elapsed)
	}
}

func TestDeterministicAcrossSeeds(t *testing.T) {
	srv, host, _ := testServer(t, "hello")
	outcomes := func(seed int64) []bool {
		tr := New(seed, nil)
		tr.Set(host, Faults{DropRequest: 0.5})
		var out []bool
		for i := 0; i < 32; i++ {
			_, err := get(t, tr, srv.URL)
			out = append(out, err == nil)
		}
		return out
	}
	a, b := outcomes(7), outcomes(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
}

func TestTrickleSlowsBody(t *testing.T) {
	srv, host, _ := testServer(t, strings.Repeat("z", 512))
	tr := New(1, nil)
	tr.Set(host, Faults{TrickleBPS: 1024})
	start := time.Now()
	body, err := get(t, tr, srv.URL)
	if err != nil || len(body) != 512 {
		t.Fatalf("body=%d err=%v", len(body), err)
	}
	// 512 bytes at 1 KiB/s should take roughly half a second.
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Fatalf("trickle too fast: %v", elapsed)
	}
}

func TestProxyRelaysAndPartitions(t *testing.T) {
	srv, host, hits := testServer(t, "hello")
	_ = srv
	px, err := NewProxy(host)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	client := &http.Client{Timeout: 2 * time.Second}
	urlVia := "http://" + px.Addr() + "/"

	resp, err := client.Get(urlVia)
	if err != nil {
		t.Fatalf("through proxy: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "hello" {
		t.Fatalf("body=%q", b)
	}

	addrBefore := px.Addr()
	px.Partition()
	if _, err := client.Get(urlVia); err == nil {
		t.Fatal("request succeeded through a partition")
	}
	hitsDuring := atomic.LoadInt64(hits)

	px.Heal()
	if px.Addr() != addrBefore {
		t.Fatalf("proxy address changed across partition: %s -> %s", addrBefore, px.Addr())
	}
	// Fresh client: the old one may hold a connection pool entry that died.
	client2 := &http.Client{Timeout: 2 * time.Second}
	resp2, err := client2.Get(urlVia)
	if err != nil {
		t.Fatalf("after heal: %v", err)
	}
	b2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if string(b2) != "hello" {
		t.Fatalf("after heal body=%q", b2)
	}
	if atomic.LoadInt64(hits) <= hitsDuring {
		t.Fatal("no request reached server after heal")
	}
}

func TestProxyPartitionKillsLiveConns(t *testing.T) {
	// A server that writes slowly so the connection is mid-flight when cut.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		for i := 0; i < 100; i++ {
			io.WriteString(w, strings.Repeat("a", 128))
			w.(http.Flusher).Flush()
			time.Sleep(20 * time.Millisecond)
		}
	}))
	defer srv.Close()
	u, _ := url.Parse(srv.URL)

	px, err := NewProxy(u.Host)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get("http://" + px.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	go func() {
		time.Sleep(100 * time.Millisecond)
		px.Partition()
	}()
	start := time.Now()
	_, err = io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("read survived a partition")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("partition did not sever live conn promptly: %v", elapsed)
	}
}
