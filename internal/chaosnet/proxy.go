package chaosnet

import (
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is a TCP relay placed in front of a real listener so subprocess
// tests can partition a peer they do not share an address space with: the
// coordinator dials the proxy's address instead of the worker's, and the
// test cuts or heals the link from outside both processes.
//
// Partitioning never closes the listening socket — the port must survive a
// Heal, because the peers have already exchanged the proxied address and a
// new port would be a different failure (address change) than the one under
// test (link cut). While partitioned, new connections are accepted and
// immediately closed (a RST-like refusal) and existing relays are severed.
type Proxy struct {
	target string
	ln     net.Listener

	mu          sync.Mutex
	partitioned bool
	delay       time.Duration
	conns       map[net.Conn]struct{}
	closed      bool
}

// NewProxy starts a relay on an ephemeral localhost port toward target
// ("host:port").
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target: target,
		ln:     ln,
		conns:  make(map[net.Conn]struct{}),
	}
	go p.acceptLoop()
	return p, nil
}

// Addr is the address peers should dial instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Partition severs the link: existing relayed connections are killed and
// new ones are refused, while the listening port stays reserved for Heal.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	for c := range p.conns {
		c.Close()
	}
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
}

// Heal restores the link on the same port.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.mu.Unlock()
}

// SetDelay imposes a fixed per-connection setup latency (0 to clear).
func (p *Proxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// Close shuts the proxy down for good.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
	p.ln.Close()
}

func (p *Proxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed || p.partitioned {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		delay := p.delay
		p.mu.Unlock()
		go p.relay(conn, delay)
	}
}

func (p *Proxy) relay(client net.Conn, delay time.Duration) {
	if delay > 0 {
		time.Sleep(delay)
	}
	server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		client.Close()
		return
	}
	p.mu.Lock()
	if p.closed || p.partitioned {
		p.mu.Unlock()
		client.Close()
		server.Close()
		return
	}
	p.conns[client] = struct{}{}
	p.conns[server] = struct{}{}
	p.mu.Unlock()

	done := make(chan struct{}, 2)
	go pipe(server, client, done)
	go pipe(client, server, done)
	<-done
	<-done

	p.mu.Lock()
	delete(p.conns, client)
	delete(p.conns, server)
	p.mu.Unlock()
	client.Close()
	server.Close()
}

func pipe(dst, src net.Conn, done chan<- struct{}) {
	io.Copy(dst, src)
	// Half-close toward dst so the peer sees EOF even while the other
	// direction is still draining.
	if tc, ok := dst.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	done <- struct{}{}
}
