package cli

import (
	"strings"
	"testing"

	"prioritystar/internal/sweep"
)

func TestParseShape(t *testing.T) {
	dims, err := ParseShape("4x4x8")
	if err != nil || len(dims) != 3 || dims[0] != 4 || dims[2] != 8 {
		t.Errorf("ParseShape(4x4x8) = %v, %v", dims, err)
	}
	dims, err = ParseShape("16X16") // case-insensitive
	if err != nil || len(dims) != 2 || dims[0] != 16 {
		t.Errorf("ParseShape(16X16) = %v, %v", dims, err)
	}
	if _, err := ParseShape("4xbad"); err == nil {
		t.Error("bad dimension should fail")
	}
	if _, err := ParseShape(""); err == nil {
		t.Error("empty shape should fail")
	}
	dims, err = ParseShape(" 8 x 8 ")
	if err != nil || dims[0] != 8 {
		t.Errorf("whitespace shape = %v, %v", dims, err)
	}
}

func TestParseLength(t *testing.T) {
	d, err := ParseLength("fixed:3")
	if err != nil || d.Mean() != 3 {
		t.Errorf("fixed:3 = %v, %v", d, err)
	}
	d, err = ParseLength("geom:4.5")
	if err != nil || d.Mean() != 4.5 {
		t.Errorf("geom:4.5 = %v, %v", d, err)
	}
	for _, bad := range []string{"fixed", "fixed:0", "fixed:x", "geom:0.5", "geom:x", "weird:3"} {
		if _, err := ParseLength(bad); err == nil {
			t.Errorf("ParseLength(%q) should fail", bad)
		}
	}
}

func TestParseRhos(t *testing.T) {
	rhos, err := ParseRhos("0.1, 0.5 ,0.9")
	if err != nil || len(rhos) != 3 || rhos[1] != 0.5 {
		t.Errorf("ParseRhos = %v, %v", rhos, err)
	}
	if _, err := ParseRhos("0.1,huh"); err == nil {
		t.Error("bad rho should fail")
	}
	if _, err := ParseRhos("-0.5"); err == nil {
		t.Error("negative rho should fail")
	}
}

func TestParseScale(t *testing.T) {
	for name, want := range map[string]sweep.Scale{
		"quick": sweep.Quick, "Standard": sweep.Standard, "FULL": sweep.Full,
	} {
		got, err := ParseScale(name)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("unknown scale should fail")
	}
}

func TestParseFaults(t *testing.T) {
	if s, err := ParseFaults(""); err != nil || s != nil {
		t.Errorf("empty faults = %v, %v; want nil schedule", s, err)
	}
	s, err := ParseFaults("perm:2, link:7 ,node:3,trans:500/50,seed:42")
	if err != nil {
		t.Fatal(err)
	}
	if s.RandomLinks != 2 || len(s.Links) != 1 || s.Links[0] != 7 ||
		len(s.Nodes) != 1 || s.Nodes[0] != 3 ||
		s.MTBF != 500 || s.MTTR != 50 || s.Seed != 42 {
		t.Errorf("parsed schedule = %+v", s)
	}
	// ParseFaults inverts Schedule.String.
	back, err := ParseFaults(s.String())
	if err != nil || back.String() != s.String() {
		t.Errorf("round trip: %q -> %q (%v)", s.String(), back.String(), err)
	}
	for _, bad := range []string{
		"perm", "perm:0", "perm:x",
		"link:-1", "link:x",
		"node:-2", "node:x",
		"trans:500", "trans:0/50", "trans:500/0", "trans:x/50",
		"seed:x", "seed:-1",
		"blah:1",
	} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) should fail", bad)
		}
	}
}

func TestSchemeByName(t *testing.T) {
	spec, err := SchemeByName("priority-star")
	if err != nil || spec.Name != sweep.PrioritySTARSpec.Name {
		t.Errorf("SchemeByName = %+v, %v", spec, err)
	}
	if _, err := SchemeByName("nope"); err == nil {
		t.Error("unknown scheme should fail")
	}
	names := SchemeNames()
	for name := range Schemes {
		if !strings.Contains(names, name) {
			t.Errorf("SchemeNames missing %q", name)
		}
	}
	// Sorted output.
	if !strings.HasPrefix(names, "dim-order") {
		t.Errorf("SchemeNames not sorted: %q", names)
	}
}
