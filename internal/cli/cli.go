// Package cli holds the argument-parsing helpers shared by the command-line
// tools (starsim, figures, balance).
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"prioritystar/internal/fault"
	"prioritystar/internal/sweep"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// Schemes maps CLI names to the predefined scheme specifications.
var Schemes = map[string]sweep.SchemeSpec{
	"priority-star":   sweep.PrioritySTARSpec,
	"priority-star-3": sweep.PrioritySTAR3Spec,
	"fcfs-direct":     sweep.FCFSDirectSpec,
	"dim-order":       sweep.DimOrderSpec,
	"separate-fcfs":   sweep.SeparateSpec,
	"separate-prio":   sweep.SeparatePrioSpec,
}

// SchemeNames returns the known scheme names, comma separated, for usage
// strings.
func SchemeNames() string {
	names := make([]string, 0, len(Schemes))
	for n := range Schemes {
		names = append(names, n)
	}
	// Stable order for usage text.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}

// SchemeByName resolves a CLI scheme name.
func SchemeByName(name string) (sweep.SchemeSpec, error) {
	spec, ok := Schemes[name]
	if !ok {
		return sweep.SchemeSpec{}, fmt.Errorf("unknown scheme %q (known: %s)", name, SchemeNames())
	}
	return spec, nil
}

// ParseShape parses "4x4x8" into dimension lengths.
func ParseShape(s string) ([]int, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad shape %q: %v", s, err)
		}
		dims = append(dims, n)
	}
	return dims, nil
}

// ParseLength parses "fixed:N" or "geom:MEAN" into a length distribution.
func ParseLength(s string) (traffic.LengthDist, error) {
	kind, arg, ok := strings.Cut(s, ":")
	if !ok {
		return traffic.LengthDist{}, fmt.Errorf("bad length %q: want fixed:N or geom:MEAN", s)
	}
	switch kind {
	case "fixed":
		n, err := strconv.Atoi(arg)
		if err != nil || n < 1 {
			return traffic.LengthDist{}, fmt.Errorf("bad fixed length %q", arg)
		}
		return traffic.FixedLength(n), nil
	case "geom":
		mean, err := strconv.ParseFloat(arg, 64)
		if err != nil || mean < 1 {
			return traffic.LengthDist{}, fmt.Errorf("bad geometric mean %q", arg)
		}
		return traffic.GeometricLength(mean), nil
	default:
		return traffic.LengthDist{}, fmt.Errorf("unknown length kind %q (want fixed or geom)", kind)
	}
}

// ParseRhos parses a comma-separated throughput-factor grid.
func ParseRhos(s string) ([]float64, error) {
	var rhos []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rho %q: %v", p, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("negative rho %g", v)
		}
		rhos = append(rhos, v)
	}
	return rhos, nil
}

// ParseFaults parses a fault-schedule description, the inverse of
// fault.Schedule.String. The syntax is a comma-separated list of clauses:
//
//	perm:N          N random links fail permanently (chosen by the seed)
//	link:ID         link ID fails permanently
//	node:ID         node ID fails permanently (all its incident links)
//	trans:MTBF/MTTR transient faults on every link, geometric up/down means
//	seed:S          seed for random selection and transient timelines
//
// An empty string yields a nil schedule (no faults).
func ParseFaults(s string) (*fault.Schedule, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	sched := &fault.Schedule{}
	for _, clause := range strings.Split(s, ",") {
		kind, arg, ok := strings.Cut(strings.TrimSpace(clause), ":")
		if !ok {
			return nil, fmt.Errorf("bad fault clause %q: want kind:value", clause)
		}
		switch kind {
		case "perm":
			n, err := strconv.Atoi(arg)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad perm count %q", arg)
			}
			sched.RandomLinks += n
		case "link":
			id, err := strconv.Atoi(arg)
			if err != nil || id < 0 {
				return nil, fmt.Errorf("bad link id %q", arg)
			}
			sched.Links = append(sched.Links, torus.LinkID(id))
		case "node":
			id, err := strconv.Atoi(arg)
			if err != nil || id < 0 {
				return nil, fmt.Errorf("bad node id %q", arg)
			}
			sched.Nodes = append(sched.Nodes, torus.Node(id))
		case "trans":
			mtbf, mttr, ok := strings.Cut(arg, "/")
			if !ok {
				return nil, fmt.Errorf("bad transient spec %q: want MTBF/MTTR", arg)
			}
			b, err := strconv.ParseFloat(mtbf, 64)
			if err != nil || b <= 0 {
				return nil, fmt.Errorf("bad MTBF %q", mtbf)
			}
			r, err := strconv.ParseFloat(mttr, 64)
			if err != nil || r <= 0 {
				return nil, fmt.Errorf("bad MTTR %q", mttr)
			}
			sched.MTBF, sched.MTTR = b, r
		case "seed":
			v, err := strconv.ParseUint(arg, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad fault seed %q", arg)
			}
			sched.Seed = v
		default:
			return nil, fmt.Errorf("unknown fault clause %q (want perm, link, node, trans, or seed)", kind)
		}
	}
	return sched, nil
}

// ParseScale parses a predefined-experiment scale name.
func ParseScale(s string) (sweep.Scale, error) {
	switch strings.ToLower(s) {
	case "quick":
		return sweep.Quick, nil
	case "standard":
		return sweep.Standard, nil
	case "full":
		return sweep.Full, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want quick, standard, or full)", s)
	}
}
