package cli

import (
	"flag"
	"fmt"

	"prioritystar/internal/balance"
	"prioritystar/internal/sweep"
)

// Workload collects the flags that describe one experiment workload — the
// part of the command line shared by starsim (which runs it locally) and
// psctl (which submits it to a starsimd daemon). Register installs the
// flags; Experiment resolves them into a sweep.Experiment.
type Workload struct {
	Shape   string
	Scheme  string
	Rho     float64
	Sweep   string
	Frac    float64
	Len     string
	Seed    uint64
	Warmup  int64
	Measure int64
	Drain   int64
	Reps    int
	Floor   bool
	Exec    string
}

// Register installs the workload flags on fs with starsim's defaults.
func (w *Workload) Register(fs *flag.FlagSet) {
	fs.StringVar(&w.Shape, "shape", "8x8", "torus shape, e.g. 8x8 or 4x4x8")
	fs.StringVar(&w.Scheme, "scheme", "priority-star", "routing scheme: "+SchemeNames())
	fs.Float64Var(&w.Rho, "rho", 0.8, "throughput factor for a single run")
	fs.StringVar(&w.Sweep, "sweep", "", "comma-separated rho grid (overrides -rho)")
	fs.Float64Var(&w.Frac, "frac", 1, "fraction of transmission load from broadcasts")
	fs.StringVar(&w.Len, "len", "fixed:1", "packet lengths: fixed:N or geom:MEAN")
	fs.Uint64Var(&w.Seed, "seed", 1, "base RNG seed")
	fs.Int64Var(&w.Warmup, "warmup", 3000, "warm-up slots")
	fs.Int64Var(&w.Measure, "measure", 10000, "measurement slots")
	fs.Int64Var(&w.Drain, "drain", 4000, "drain slots")
	fs.IntVar(&w.Reps, "reps", 3, "replications per sweep point")
	fs.BoolVar(&w.Floor, "floor", false, "use the paper's floor(n/4) distance model")
	fs.StringVar(&w.Exec, "exec", "batched", "replication dispatch: batched or sequential (bit-identical results)")
}

// Experiment resolves the flags into an experiment with the given labels.
func (w *Workload) Experiment(id, title string) (*sweep.Experiment, error) {
	dims, err := ParseShape(w.Shape)
	if err != nil {
		return nil, err
	}
	schemeSpec, err := SchemeByName(w.Scheme)
	if err != nil {
		return nil, err
	}
	length, err := ParseLength(w.Len)
	if err != nil {
		return nil, err
	}
	rhos := []float64{w.Rho}
	if w.Sweep != "" {
		if rhos, err = ParseRhos(w.Sweep); err != nil {
			return nil, err
		}
	}
	model := balance.ExactDistance
	if w.Floor {
		model = balance.PaperFloorDistance
	}
	exec := sweep.ExecBatched
	switch w.Exec {
	case "", "batched":
	case "sequential":
		exec = sweep.ExecSequential
	default:
		return nil, fmt.Errorf("unknown -exec mode %q (want batched or sequential)", w.Exec)
	}
	if title == "" {
		title = fmt.Sprintf("%s on %s", w.Scheme, w.Shape)
	}
	return &sweep.Experiment{
		ID: id, Title: title,
		Dims: dims, Rhos: rhos, BroadcastFrac: w.Frac,
		Schemes: []sweep.SchemeSpec{schemeSpec},
		Length:  length, Model: model,
		Warmup: w.Warmup, Measure: w.Measure, Drain: w.Drain,
		Reps: w.Reps, BaseSeed: w.Seed,
		Execution: exec,
	}, nil
}
