package surrogate

// The interpolation index: every exact result the daemon has ever computed,
// keyed by experiment family and scheme, as sorted per-rho anchors. The
// index is fed from two directions — live sweep results as jobs finish
// (AddExact) and the cache journal's raw result documents at daemon start
// (AddResult) — and read by the evaluator, which interpolates residuals
// between bracketing anchors.
//
// A family is everything about an experiment except its rho grid (and the
// label/serving fields that never affect results): two cached results
// belong to the same family exactly when a sweep point of one could have
// appeared in the other. The key is the canonical spec document with those
// fields blanked, so it inherits the fingerprint machinery's normalization
// guarantees.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"prioritystar/internal/spec"
	"prioritystar/internal/sweep"
)

// Metric indexes the delay metrics the surrogate answers.
type Metric int

// The answered metrics, in result-document order.
const (
	MReception Metric = iota
	MBroadcast
	MUnicast
	MHighWait
	MLowWait

	numMetrics
)

// metricNames are the result-document field names, in Metric order.
var metricNames = [numMetrics]string{"reception", "broadcast", "unicast", "highWait", "lowWait"}

// String names the metric.
func (m Metric) String() string {
	if m < 0 || m >= numMetrics {
		return fmt.Sprintf("metric(%d)", int(m))
	}
	return metricNames[m]
}

// values holds one number per metric; NaN marks "not measured" (a cell with
// no unicast traffic has no unicast delay).
type values [numMetrics]float64

// anchor is one exact (rho -> measurements) cell of a cached result.
type anchor struct {
	rho float64
	val values // across-replication means
	ci  values // 95% confidence half-widths; NaN when the document predates them
}

// Index holds the anchors, grouped by family key then scheme name.
type Index struct {
	mu       sync.RWMutex
	families map[string]map[string][]anchor // family -> scheme -> anchors sorted by rho
	anchors  int
	results  int
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{families: make(map[string]map[string][]anchor)}
}

// FamilyKey returns the experiment's interpolation-family key: the
// canonical spec document with the rho grid and every non-result field
// (labels, execution, serving mode) blanked.
func FamilyKey(e *sweep.Experiment) string {
	return familyKeyDoc(spec.FromSweep(e))
}

// familyKeyDoc blanks and marshals a spec document into a family key.
func familyKeyDoc(doc *spec.Experiment) string {
	d := *doc
	d.ID, d.Title, d.Notes, d.Execution, d.Mode = "", "", "", "", ""
	d.ApproxTol = 0
	d.Rhos = nil
	b, err := json.Marshal(&d)
	if err != nil {
		// Marshalling a spec document cannot fail (plain data, no cycles);
		// an empty key would alias every broken doc together, so make the
		// impossible loud instead.
		panic(fmt.Sprintf("surrogate: family key encoding: %v", err))
	}
	return string(b)
}

// Anchors reports how many (family, scheme, rho) anchors are indexed.
func (ix *Index) Anchors() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.anchors
}

// Results reports how many result documents fed the index.
func (ix *Index) Results() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.results
}

// insert adds one anchor under (family, scheme), keeping the slice sorted
// by rho. Like the result cache, the first write wins: re-adding the same
// (family, scheme, rho) is a no-op, so reloading a journal never flaps the
// surrogate's answers.
func (ix *Index) insert(family, scheme string, a anchor) {
	schemes := ix.families[family]
	if schemes == nil {
		schemes = make(map[string][]anchor)
		ix.families[family] = schemes
	}
	as := schemes[scheme]
	i := sort.Search(len(as), func(i int) bool { return as[i].rho >= a.rho })
	if i < len(as) && as[i].rho == a.rho {
		return
	}
	as = append(as, anchor{})
	copy(as[i+1:], as[i:])
	as[i] = a
	schemes[scheme] = as
	ix.anchors++
}

// lookup returns the anchors for (family, scheme), sorted by rho.
func (ix *Index) lookup(family, scheme string) []anchor {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.families[family][scheme]
}

// AddExact indexes a completed sweep result. Cells with failed or diverged
// replications are skipped: their aggregates are not trustworthy anchors.
func (ix *Index) AddExact(res *sweep.Result) {
	if res == nil || res.Exp == nil {
		return
	}
	family := FamilyKey(res.Exp)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.results++
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.FailedReps > 0 || p.DivergedReps > 0 {
				continue
			}
			a := anchor{rho: p.Rho}
			sums := [numMetrics]interface {
				Mean() float64
				HalfWidth95() float64
			}{&p.Reception, &p.Broadcast, &p.Unicast, &p.HighWait, &p.LowWait}
			for m, sum := range sums {
				a.val[m] = sum.Mean()
				a.ci[m] = sum.HalfWidth95()
			}
			ix.insert(family, s.Scheme.Name, a)
		}
	}
}

// resultDoc mirrors the slice of the serve layer's result document the
// index needs. Decoding is deliberately lenient about extra fields (the
// serving layer owns the full schema) but strict about the parts the
// anchors are built from.
type resultDoc struct {
	Spec   *spec.Experiment `json:"spec"`
	Series []struct {
		Scheme string `json:"scheme"`
		Points []struct {
			Rho          float64  `json:"rho"`
			Reception    *float64 `json:"reception"`
			Broadcast    *float64 `json:"broadcast"`
			Unicast      *float64 `json:"unicast"`
			HighWait     *float64 `json:"highWait"`
			LowWait      *float64 `json:"lowWait"`
			ReceptionCI  *float64 `json:"receptionCI"`
			BroadcastCI  *float64 `json:"broadcastCI"`
			UnicastCI    *float64 `json:"unicastCI"`
			HighWaitCI   *float64 `json:"highWaitCI"`
			LowWaitCI    *float64 `json:"lowWaitCI"`
			DivergedReps int      `json:"divergedReps"`
			FailedReps   int      `json:"failedReps"`
		} `json:"points"`
	} `json:"series"`
	// Approx guards against feeding a surrogate answer back into the
	// index: only exact simulation results may anchor interpolation.
	Approx bool `json:"approx"`
}

// fv converts an optional JSON number (null for NaN) to a float.
func fv(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

// AddResult indexes one raw result document (the cache journal's stored
// bytes). It never panics on malformed input — FuzzSurrogateTable holds it
// to that — and returns an error for documents that cannot anchor
// interpolation (approximate results, missing spec, no finite points).
func (ix *Index) AddResult(raw []byte) error {
	var doc resultDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("surrogate: decoding result document: %w", err)
	}
	if doc.Approx {
		return errors.New("surrogate: refusing to index an approximate result as an anchor")
	}
	if doc.Spec == nil {
		return errors.New("surrogate: result document has no spec")
	}
	// Normalize through the sweep form so a family key always compares in
	// canonical spelling, whatever form the stored spec used.
	exp, err := doc.Spec.ToSweep()
	if err != nil {
		return fmt.Errorf("surrogate: result document spec: %w", err)
	}
	family := FamilyKey(exp)
	added := 0
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, s := range doc.Series {
		for _, p := range s.Points {
			if p.FailedReps > 0 || p.DivergedReps > 0 {
				continue
			}
			if math.IsNaN(p.Rho) || math.IsInf(p.Rho, 0) {
				continue
			}
			a := anchor{
				rho: p.Rho,
				val: values{fv(p.Reception), fv(p.Broadcast), fv(p.Unicast), fv(p.HighWait), fv(p.LowWait)},
				ci:  values{fv(p.ReceptionCI), fv(p.BroadcastCI), fv(p.UnicastCI), fv(p.HighWaitCI), fv(p.LowWaitCI)},
			}
			finite := false
			for _, v := range a.val {
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					finite = true
					break
				}
			}
			if !finite {
				continue
			}
			ix.insert(family, s.Scheme, a)
			added++
		}
	}
	if added == 0 {
		return errors.New("surrogate: result document carries no usable anchors")
	}
	ix.results++
	return nil
}
