package surrogate

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"prioritystar/internal/spec"
	"prioritystar/internal/sweep"
	"prioritystar/internal/torus"
)

// exp builds an experiment from spec JSON; extra is spliced in after the id.
func exp(t testing.TB, rhos string, extra string) *sweep.Experiment {
	t.Helper()
	js := fmt.Sprintf(`{
		"id": "fam", %s
		"dims": [4, 4], "rhos": [%s], "broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}],
		"warmup": 50, "measure": 400, "drain": 100, "reps": 2, "seed": 11
	}`, extra, rhos)
	e, err := spec.Decode([]byte(js))
	if err != nil {
		t.Fatalf("spec: %v\n%s", err, js)
	}
	return e
}

func TestFamilyKeyGroupsRhoGrids(t *testing.T) {
	base := FamilyKey(exp(t, "0.2, 0.4", ""))
	same := []*sweep.Experiment{
		exp(t, "0.3", ""),                                    // different rho grid
		exp(t, "0.2, 0.4", `"title": "renamed",`),            // labels
		exp(t, "0.3", `"mode": "approx", "approxTol": 0.5,`), // serving mode
		exp(t, "0.2, 0.4", `"execution": "sequential",`),     // dispatch
	}
	for i, e := range same {
		if FamilyKey(e) != base {
			t.Errorf("variant %d left the family", i)
		}
	}
	diff := []*sweep.Experiment{
		exp(t, "0.3", `"notes": "",`), // placeholder replaced below
	}
	diff[0].Dims = []int{8, 8}
	d2 := exp(t, "0.3", "")
	d2.BaseSeed++
	d3 := exp(t, "0.3", "")
	d3.Measure++
	diff = append(diff, d2, d3)
	for i, e := range diff {
		if FamilyKey(e) == base {
			t.Errorf("mutation %d should change the family", i)
		}
	}
}

func TestEligible(t *testing.T) {
	if err := Eligible(exp(t, "0.3", "")); err != nil {
		t.Fatalf("plain experiment should be eligible: %v", err)
	}
	// A wall-clock timeout (set on every daemon job) must not disqualify.
	timed := exp(t, "0.3", "")
	timed.Guard.Timeout = 1e9
	if err := Eligible(timed); err != nil {
		t.Errorf("guard timeout should stay eligible: %v", err)
	}

	bad := map[string]*sweep.Experiment{
		"faults":     exp(t, "0.3", `"faults": "perm:1,seed:3",`),
		"guard":      exp(t, "0.3", `"guard": {"divergeBacklog": 1000},`),
		"maxBacklog": exp(t, "0.3", `"maxBacklog": 5000,`),
		"rho zero":   exp(t, "0.0", ""),
		"rho one":    exp(t, "1.0", ""),
		"rho above":  exp(t, "1.2", ""),
		"nil":        nil,
	}
	empty := exp(t, "0.3", "")
	empty.Rhos = nil
	bad["no rhos"] = empty
	noSchemes := exp(t, "0.3", "")
	noSchemes.Schemes = nil
	bad["no schemes"] = noSchemes
	for name, e := range bad {
		if err := Eligible(e); err == nil {
			t.Errorf("%s: should be ineligible", name)
		}
	}
}

// seedIndex inserts synthetic anchors lying exactly on base(rho) + off,
// with confidence half-width ci on every metric.
func seedIndex(t *testing.T, ix *Index, e *sweep.Experiment, rhos []float64, off, ci float64) {
	t.Helper()
	shape := torus.MustNew(e.Dims...)
	family := FamilyKey(e)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, rho := range rhos {
		a := anchor{rho: rho}
		b := base(shape, rho)
		for m := range a.val {
			a.val[m] = b[m] + off
			a.ci[m] = ci
		}
		ix.insert(family, e.Schemes[0].Name, a)
	}
}

func TestAnchorHitReturnsExactValues(t *testing.T) {
	ix := NewIndex()
	e := exp(t, "0.3", "")
	seedIndex(t, ix, e, []float64{0.2, 0.3, 0.4}, 1.5, 0.01)
	ev, err := New(ix).Evaluate(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Series) != 1 || len(ev.Series[0].Points) != 1 {
		t.Fatalf("unexpected evaluation shape: %+v", ev)
	}
	p := ev.Series[0].Points[0]
	if p.Source != "anchor" || p.Lo != 0.3 || p.Hi != 0.3 {
		t.Errorf("expected anchor hit, got %+v", p)
	}
	want := base(torus.MustNew(4, 4), 0.3)[MReception] + 1.5
	if math.Abs(p.Val[MReception]-want) > 1e-12 {
		t.Errorf("anchor value %g, want %g", p.Val[MReception], want)
	}
	if p.Bound[MReception] != 0.01 {
		t.Errorf("anchor bound %g, want the anchor CI", p.Bound[MReception])
	}
}

func TestInterpolationRecoversConstantResidual(t *testing.T) {
	// Anchors offset from the analytic curve by a constant: the residual
	// lerp must reproduce base+off exactly at any rho between them, and the
	// bound collapses to the anchors' statistical uncertainty.
	ix := NewIndex()
	e := exp(t, "0.3", "")
	seedIndex(t, ix, e, []float64{0.2, 0.4}, 2.25, 0.02)
	ev, err := New(ix).Evaluate(e)
	if err != nil {
		t.Fatal(err)
	}
	p := ev.Series[0].Points[0]
	if p.Source != "interp" || p.Lo != 0.2 || p.Hi != 0.4 {
		t.Fatalf("expected interpolation from [0.2,0.4], got %+v", p)
	}
	shape := torus.MustNew(4, 4)
	for m := Metric(0); m < numMetrics; m++ {
		want := base(shape, 0.3)[m] + 2.25
		if math.Abs(p.Val[m]-want) > 1e-9 {
			t.Errorf("%s: got %g want %g", m, p.Val[m], want)
		}
		if math.Abs(p.Bound[m]-0.04) > 1e-9 {
			t.Errorf("%s: bound %g want 0.04", m, p.Bound[m])
		}
	}
}

func TestEvaluateFallbacks(t *testing.T) {
	e := exp(t, "0.3", "")
	t.Run("empty index", func(t *testing.T) {
		if _, err := New(NewIndex()).Evaluate(e); err == nil {
			t.Error("empty index should fall back")
		}
	})
	t.Run("extrapolation", func(t *testing.T) {
		ix := NewIndex()
		seedIndex(t, ix, e, []float64{0.4, 0.6}, 0, 0)
		if _, err := New(ix).Evaluate(e); err == nil {
			t.Error("rho below all anchors should fall back")
		}
		high := exp(t, "0.7", "")
		if _, err := New(ix).Evaluate(high); err == nil {
			t.Error("rho above all anchors should fall back")
		}
	})
	t.Run("gap too wide", func(t *testing.T) {
		ix := NewIndex()
		seedIndex(t, ix, e, []float64{0.1, 0.8}, 0, 0)
		if _, err := New(ix).Evaluate(e); err == nil {
			t.Error("0.7-wide anchor gap should fall back")
		}
	})
	t.Run("tolerance too tight", func(t *testing.T) {
		// Anchors with different residuals: the spread shows up in the
		// bound and a tight tolerance rejects it.
		ix := NewIndex()
		shape := torus.MustNew(4, 4)
		family := FamilyKey(e)
		for i, rho := range []float64{0.2, 0.4} {
			a := anchor{rho: rho}
			for m := range a.val {
				a.val[m] = base(shape, rho)[m] + float64(i)*3 // residuals 0 and 3
			}
			ix.insert(family, e.Schemes[0].Name, a)
		}
		tight := exp(t, "0.3", `"mode": "approx", "approxTol": 0.01,`)
		if _, err := New(ix).Evaluate(tight); err == nil {
			t.Error("3-wide residual spread should exceed tol 0.01")
		}
		loose := exp(t, "0.3", `"mode": "approx", "approxTol": 2,`)
		if _, err := New(ix).Evaluate(loose); err != nil {
			t.Errorf("tol 2 should accept: %v", err)
		}
	})
	t.Run("unknown ci", func(t *testing.T) {
		// An anchor hit whose reception CI is unknown cannot certify any
		// tolerance.
		ix := NewIndex()
		family := FamilyKey(e)
		a := anchor{rho: 0.3}
		for m := range a.val {
			a.val[m] = 5
			a.ci[m] = math.NaN()
		}
		ix.insert(family, e.Schemes[0].Name, a)
		if _, err := New(ix).Evaluate(e); err == nil {
			t.Error("NaN reception CI should fall back")
		}
	})
}

// sampleDoc is a hand-built exact result document in the serving layer's
// schema, matching the 4x4 priority-star family of exp().
func sampleDoc(t testing.TB, e *sweep.Experiment, rho float64) string {
	t.Helper()
	doc := spec.FromSweep(e)
	doc.Rhos = []float64{rho}
	js, err := specJSON(doc)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf(`{
		"fingerprint": "ps1-test", "engine": "test",
		"spec": %s,
		"series": [{"scheme": "priority-STAR", "points": [
			{"rho": %g, "reception": 3.5, "broadcast": 4.5, "unicast": null,
			 "highWait": 0.2, "lowWait": 0.4,
			 "receptionCI": 0.05, "broadcastCI": 0.06, "unicastCI": null,
			 "highWaitCI": 0.01, "lowWaitCI": 0.02,
			 "generatedBroadcasts": 100, "incompleteBroadcasts": 0}
		]}]
	}`, js, rho)
}

func TestAddResultIndexesCachedDocuments(t *testing.T) {
	ix := NewIndex()
	e := exp(t, "0.3", "")
	if err := ix.AddResult([]byte(sampleDoc(t, e, 0.3))); err != nil {
		t.Fatal(err)
	}
	if ix.Anchors() != 1 || ix.Results() != 1 {
		t.Fatalf("anchors=%d results=%d, want 1/1", ix.Anchors(), ix.Results())
	}
	as := ix.lookup(FamilyKey(e), "priority-STAR")
	if len(as) != 1 || as[0].rho != 0.3 || as[0].val[MReception] != 3.5 {
		t.Fatalf("anchor wrong: %+v", as)
	}
	if !math.IsNaN(as[0].val[MUnicast]) {
		t.Error("null unicast should decode to NaN")
	}
	// Re-adding the same document must not duplicate the anchor.
	if err := ix.AddResult([]byte(sampleDoc(t, e, 0.3))); err != nil {
		t.Fatal(err)
	}
	if ix.Anchors() != 1 {
		t.Errorf("duplicate insert grew anchors to %d", ix.Anchors())
	}

	bad := []string{
		`{not json`,
		`{"series": []}`,                      // no spec
		`{"spec": {"id": "x"}, "series": []}`, // no points
		`{"approx": true, "spec": {"id": "x"}, "series": []}`, // surrogate output
	}
	for i, b := range bad {
		if err := ix.AddResult([]byte(b)); err == nil {
			t.Errorf("bad doc %d accepted", i)
		}
	}
}

func TestEncodeMarksApproxAndRefusesReindex(t *testing.T) {
	ix := NewIndex()
	e := exp(t, "0.3", "")
	seedIndex(t, ix, e, []float64{0.2, 0.4}, 1, 0.01)
	ev, err := New(ix).Evaluate(e)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ev.Encode("ps1-test", "test-engine")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"approx":true`) {
		t.Errorf("approx marker missing: %s", b)
	}
	if !strings.Contains(string(b), `"source":"interp"`) {
		t.Errorf("source missing: %s", b)
	}
	if err := ix.AddResult(b); err == nil {
		t.Error("surrogate output fed back as an anchor")
	}
}

// TestDifferentialAccuracy is the package's accuracy contract, end to end
// against the real engine: anchor two exact simulations, ask the surrogate
// for a point between them, then run the truth simulation at that point and
// check the answer lies within its stated bound (plus the truth's own
// statistical uncertainty). Also checks the refusal side: with a tolerance
// tighter than the stated bound the surrogate must decline rather than
// shave its estimate.
func TestDifferentialAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	anchors := exp(t, "0.2, 0.4", "")
	anchorRes, err := anchors.Run()
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex()
	ix.AddExact(anchorRes)
	if ix.Anchors() != 2 {
		t.Fatalf("indexed %d anchors, want 2", ix.Anchors())
	}

	query := exp(t, "0.3", `"mode": "approx", "approxTol": 2,`)
	ev, err := New(ix).Evaluate(query)
	if err != nil {
		t.Fatalf("surrogate declined a generous tolerance: %v", err)
	}
	p := ev.Series[0].Points[0]

	truthExp := exp(t, "0.3", "")
	truthRes, err := truthExp.Run()
	if err != nil {
		t.Fatal(err)
	}
	truth := truthRes.Series[0].Points[0]
	sums := [numMetrics]interface {
		Mean() float64
		HalfWidth95() float64
	}{&truth.Reception, &truth.Broadcast, &truth.Unicast, &truth.HighWait, &truth.LowWait}
	for m := Metric(0); m < numMetrics; m++ {
		want, ci := sums[m].Mean(), sums[m].HalfWidth95()
		got, bound := p.Val[m], p.Bound[m]
		if math.IsNaN(want) || math.IsNaN(got) {
			if math.IsNaN(want) != math.IsNaN(got) {
				t.Errorf("%s: availability mismatch: surrogate %g, truth %g", m, got, want)
			}
			continue
		}
		if math.IsNaN(bound) || math.IsInf(bound, 0) {
			t.Errorf("%s: no finite bound for a finite answer", m)
			continue
		}
		if diff := math.Abs(got - want); diff > bound+ci {
			t.Errorf("%s: |%g - %g| = %g exceeds stated bound %g + truth CI %g",
				m, got, want, diff, bound, ci)
		}
	}

	// The refusal contract: tighter than the stated bound, the surrogate
	// must route to simulation instead of answering.
	rel := p.Bound[MReception] / math.Max(math.Abs(p.Val[MReception]), 1)
	if rel > 0 {
		tight := exp(t, "0.3", fmt.Sprintf(`"mode": "approx", "approxTol": %g,`, rel/2))
		if _, err := New(ix).Evaluate(tight); err == nil {
			t.Error("surrogate answered below its own stated bound")
		}
	}
}

// specJSON marshals a spec document for embedding in a test fixture.
func specJSON(doc *spec.Experiment) ([]byte, error) {
	return json.Marshal(doc)
}
