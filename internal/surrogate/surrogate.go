// Package surrogate answers sweep submissions without running the
// simulator. It combines the closed-form Section 2/3.2 model
// (internal/analysis) with interpolation over the daemon's cache of exact
// results: the analytic curves supply the shape of each metric in rho, and
// cached exact points supply per-family corrections (residuals) that pin
// the curve to what the event-driven engine actually measures.
//
// Every answer carries an explicit error bound — the residual spread
// between the bracketing anchors plus their confidence half-widths — and
// an evaluation succeeds only if the bound on the reception delay fits the
// caller's tolerance at every (scheme, rho) point. Anything else is an
// error, and the serving layer falls back to a real simulation. The
// surrogate is therefore safe by construction: it refuses rather than
// guesses, and what it returns is either an exact cached value or an
// interpolation whose stated bound the differential tests hold it to.
package surrogate

import (
	"errors"
	"fmt"
	"math"

	"prioritystar/internal/analysis"
	"prioritystar/internal/sweep"
	"prioritystar/internal/torus"
)

// Defaults for Surrogate knobs left zero.
const (
	// DefaultTol is the relative reception-delay error tolerance used when
	// neither the experiment nor the Surrogate sets one.
	DefaultTol = 0.05
	// DefaultMaxGap is the widest rho interval between cached anchors the
	// surrogate will interpolate across. Beyond it the analytic curve has
	// too much room to drift from the measured one for the residual bound
	// to stay honest.
	DefaultMaxGap = 0.25
)

// Surrogate evaluates approximate answers against an anchor index.
type Surrogate struct {
	ix *Index
	// Tol is the default relative error tolerance (0 means DefaultTol).
	Tol float64
	// MaxGap is the widest anchor bracket to interpolate across (0 means
	// DefaultMaxGap).
	MaxGap float64
}

// New returns a Surrogate reading anchors from ix.
func New(ix *Index) *Surrogate { return &Surrogate{ix: ix} }

// Eligible reports whether the experiment is one the analytic model covers
// at all. Ill-posed approximate requests — fault schedules, watchdog-
// terminated regimes, backlog truncation, loads outside the model's open
// (0,1) interval — fail here with an error meant for a 400 response, not a
// simulation fallback: no amount of cached data makes the closed-form
// curves apply to them.
func Eligible(e *sweep.Experiment) error {
	if e == nil {
		return errors.New("surrogate: nil experiment")
	}
	if _, err := torus.New(e.Dims...); err != nil {
		return fmt.Errorf("surrogate: %v", err)
	}
	if e.Faults != nil {
		return errors.New("surrogate: fault schedules have no closed-form model; submit in exact mode")
	}
	// Timeout is a wall-clock brake (the daemon sets it on every job); the
	// other guard fields deliberately terminate diverging runs and so change
	// what a result means.
	g := e.Guard
	if g.DivergeBacklog != 0 || g.GrowthWindow != 0 || g.GrowthRuns != 0 || g.GrowthSlack != 0 {
		return errors.New("surrogate: guard-terminated regimes cannot be answered analytically; submit in exact mode")
	}
	if e.MaxBacklog != 0 {
		return errors.New("surrogate: backlog-truncated runs cannot be answered analytically; submit in exact mode")
	}
	if len(e.Schemes) == 0 {
		return errors.New("surrogate: no schemes")
	}
	if len(e.Rhos) == 0 {
		return errors.New("surrogate: no rho points")
	}
	for _, rho := range e.Rhos {
		if !(rho > 0 && rho < 1) {
			return fmt.Errorf("surrogate: rho %g outside the model's open (0,1) interval", rho)
		}
	}
	return nil
}

// Point is one answered (scheme, rho) cell: per-metric values with their
// uncertainty bounds and the anchors they came from.
type Point struct {
	Rho    float64
	Val    values // per-metric answers; NaN where the anchors had no data
	Bound  values // per-metric error bounds; NaN where unknowable
	Source string // "anchor" (exact cache hit) or "interp"
	// Lo and Hi are the bracketing anchor rhos (equal on an anchor hit).
	Lo, Hi float64
}

// Value returns the point's answer for one metric (NaN if unavailable).
func (p *Point) Value(m Metric) float64 { return p.Val[m] }

// ErrBound returns the point's error bound for one metric.
func (p *Point) ErrBound(m Metric) float64 { return p.Bound[m] }

// Series is one scheme's answered curve.
type Series struct {
	Scheme string
	Points []Point
}

// Evaluation is a complete surrogate answer for an experiment.
type Evaluation struct {
	Exp    *sweep.Experiment
	Tol    float64 // the tolerance the answer was gated against
	Series []Series
}

// tolerance resolves the effective tolerance for an experiment.
func (sg *Surrogate) tolerance(e *sweep.Experiment) float64 {
	if e.ApproxTol > 0 {
		return e.ApproxTol
	}
	if sg.Tol > 0 {
		return sg.Tol
	}
	return DefaultTol
}

func (sg *Surrogate) maxGap() float64 {
	if sg.MaxGap > 0 {
		return sg.MaxGap
	}
	return DefaultMaxGap
}

// base returns the analytic curve values at rho: the closed-form model the
// residuals correct. The exact level does not matter for accuracy — any
// rho-dependence the curve misses shows up in the residual spread and
// therefore in the bound — but the better the shape, the tighter the
// bounds, so each metric uses its own Section 2/3.2 form.
func base(s *torus.Shape, rho float64) values {
	v := values{}
	v[MReception] = analysis.ReceptionLowerBound(s, rho)
	v[MBroadcast] = analysis.BroadcastLowerBound(s, rho)
	v[MUnicast] = analysis.UnicastLowerBound(s, rho)
	// High-priority packets are the < 1/n fraction in their final
	// dimension; the paper's G/D/1 bound uses the arity, so take the
	// smallest ring as the conservative n.
	n := s.Dim(0)
	for i := 1; i < s.Dims(); i++ {
		n = min(n, s.Dim(i))
	}
	v[MHighWait] = analysis.HighPriorityWaitBound(rho, n)
	v[MLowWait] = analysis.MD1Wait(rho)
	return v
}

// Evaluate answers the whole experiment or nothing: every (scheme, rho)
// cell must resolve to an anchor hit or an in-tolerance interpolation,
// otherwise the error says which cell failed and why and the caller should
// run the real simulation. Eligible(e) is assumed to have passed.
func (sg *Surrogate) Evaluate(e *sweep.Experiment) (*Evaluation, error) {
	shape, err := torus.New(e.Dims...)
	if err != nil {
		return nil, fmt.Errorf("surrogate: %v", err)
	}
	ev := &Evaluation{Exp: e, Tol: sg.tolerance(e)}
	family := FamilyKey(e)
	for _, sch := range e.Schemes {
		anchors := sg.ix.lookup(family, sch.Name)
		ser := Series{Scheme: sch.Name}
		for _, rho := range e.Rhos {
			p, err := sg.point(shape, anchors, rho, ev.Tol)
			if err != nil {
				return nil, fmt.Errorf("surrogate: %s at rho %g: %w", sch.Name, rho, err)
			}
			ser.Points = append(ser.Points, p)
		}
		ev.Series = append(ev.Series, ser)
	}
	return ev, nil
}

// point answers one (scheme, rho) cell from the scheme's sorted anchors.
func (sg *Surrogate) point(shape *torus.Shape, anchors []anchor, rho, tol float64) (Point, error) {
	if len(anchors) == 0 {
		return Point{}, errors.New("no cached exact results for this experiment family")
	}
	// Exact anchor: return the cached measurement with its own CI as the
	// bound — the surrogate's answer is then the simulator's answer.
	for _, a := range anchors {
		if a.rho == rho {
			p := Point{Rho: rho, Val: a.val, Bound: a.ci, Source: "anchor", Lo: a.rho, Hi: a.rho}
			return p, checkTol(p, tol)
		}
	}
	// Otherwise interpolate between the bracketing anchors. No
	// extrapolation: the residual bound only covers the interval between
	// anchors it has seen both ends of.
	i := 0
	for i < len(anchors) && anchors[i].rho < rho {
		i++
	}
	if i == 0 || i == len(anchors) {
		return Point{}, fmt.Errorf("rho outside the cached anchor range [%g, %g]",
			anchors[0].rho, anchors[len(anchors)-1].rho)
	}
	lo, hi := anchors[i-1], anchors[i]
	if gap := hi.rho - lo.rho; gap > sg.maxGap() {
		return Point{}, fmt.Errorf("anchor gap %g around rho %g exceeds %g", gap, rho, sg.maxGap())
	}
	t := (rho - lo.rho) / (hi.rho - lo.rho)
	bv, b0, b1 := base(shape, rho), base(shape, lo.rho), base(shape, hi.rho)
	p := Point{Rho: rho, Source: "interp", Lo: lo.rho, Hi: hi.rho}
	for m := Metric(0); m < numMetrics; m++ {
		r0 := lo.val[m] - b0[m]
		r1 := hi.val[m] - b1[m]
		// approx = analytic shape + linearly interpolated residual. The
		// bound charges the full residual spread — the worst the true
		// residual can deviate from the lerp if it is monotone between the
		// anchors — plus both anchors' own statistical uncertainty.
		p.Val[m] = bv[m] + r0 + t*(r1-r0)
		p.Bound[m] = math.Abs(r1-r0) + lo.ci[m] + hi.ci[m]
	}
	return p, checkTol(p, tol)
}

// checkTol gates the answer on its reception-delay bound: the headline
// metric must be provably within tol (relative, floored at 1 slot of
// absolute error) or the caller falls back to simulation. Other metrics
// keep their bounds in the answer but do not gate — a cell with no unicast
// traffic, say, has nothing to bound.
func checkTol(p Point, tol float64) error {
	val, bound := p.Val[MReception], p.Bound[MReception]
	if math.IsNaN(val) || math.IsInf(val, 0) {
		return errors.New("no finite reception-delay answer")
	}
	if math.IsNaN(bound) || math.IsInf(bound, 0) {
		return errors.New("reception-delay error bound unknown")
	}
	if limit := tol * math.Max(math.Abs(val), 1); bound > limit {
		return fmt.Errorf("reception-delay error bound %.4g exceeds tolerance %.4g (tol %g)",
			bound, limit, tol)
	}
	return nil
}
