package surrogate

import (
	"testing"
)

// FuzzSurrogateTable throws arbitrary bytes at the anchor-table loader.
// The daemon feeds AddResult every document in its cache journal at boot,
// so a corrupt or adversarial journal entry must degrade to an error, never
// a panic, and whatever does get indexed must keep the table's invariants:
// anchors sorted strictly by rho, counts consistent, and evaluation over
// the resulting table total (returns or errors, never panics).
func FuzzSurrogateTable(f *testing.F) {
	e := exp(f, "0.3", "")
	f.Add([]byte(`{not json`))
	f.Add([]byte(`{"spec": {"id": "x"}, "series": []}`))
	f.Add([]byte(`{"approx": true}`))
	f.Add([]byte(`{"spec": {"id": "x", "dims": [4,4]}, "series": [{"scheme": "s", "points": [{"rho": 0.5, "reception": 1}]}]}`))
	f.Add([]byte(`{"spec": {}, "series": [{"scheme": "", "points": [{"rho": 1e308, "reception": -1e308, "receptionCI": 0}]}]}`))
	f.Add([]byte(sampleDoc(f, e, 0.25)))
	f.Fuzz(func(t *testing.T, raw []byte) {
		ix := NewIndex()
		err := ix.AddResult(raw)
		if err != nil && ix.Anchors() != 0 {
			// AddResult holds the lock for the whole document, but a failed
			// document may still have inserted anchors before discovering it
			// is unusable only when it added none — "no usable anchors" is
			// the only post-insert error, so err implies an empty table.
			t.Fatalf("error %v yet %d anchors indexed", err, ix.Anchors())
		}
		ix.mu.RLock()
		total := 0
		for _, schemes := range ix.families {
			for _, as := range schemes {
				total += len(as)
				for i := 1; i < len(as); i++ {
					if !(as[i-1].rho < as[i].rho) {
						t.Fatalf("anchors out of order: %g then %g", as[i-1].rho, as[i].rho)
					}
				}
			}
		}
		if total != ix.anchors {
			t.Fatalf("anchor count %d, table holds %d", ix.anchors, total)
		}
		ix.mu.RUnlock()
		// Evaluation over whatever was indexed must be total.
		sg := New(ix)
		if ev, err := sg.Evaluate(e); err == nil {
			if len(ev.Series) != len(e.Schemes) {
				t.Fatalf("evaluation shape: %d series for %d schemes", len(ev.Series), len(e.Schemes))
			}
			if _, err := ev.Encode("ps1-fuzz", "fuzz"); err != nil {
				t.Fatalf("encode: %v", err)
			}
		}
	})
}
