package surrogate

// The approximate result document: what the daemon returns for a
// surrogate-answered job. It mirrors the serving layer's exact result
// document — same field names, same null-for-NaN convention — so clients
// parse both with one decoder, but it is unmistakably marked: "approx":
// true at the top, a per-point source ("anchor" or "interp"), the anchor
// bracket each point was interpolated from, and error-bound fields where
// the exact document has confidence half-widths. The top-level marker also
// stops the document from ever feeding the anchor index (AddResult refuses
// approx documents), so surrogate answers cannot compound.

import (
	"encoding/json"
	"fmt"
	"math"

	"prioritystar/internal/spec"
)

// optFloat maps non-finite values to JSON null, matching the exact result
// document's encoding of unmeasured cells.
type optFloat float64

// MarshalJSON implements json.Marshaler.
func (f optFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// PointDoc is one answered (scheme, rho) cell.
type PointDoc struct {
	Rho       float64  `json:"rho"`
	Reception optFloat `json:"reception"`
	Broadcast optFloat `json:"broadcast"`
	Unicast   optFloat `json:"unicast"`
	HighWait  optFloat `json:"highWait"`
	LowWait   optFloat `json:"lowWait"`
	// The *CI fields carry the surrogate's error bounds in the slots where
	// the exact document reports confidence half-widths.
	ReceptionCI optFloat `json:"receptionCI"`
	BroadcastCI optFloat `json:"broadcastCI"`
	UnicastCI   optFloat `json:"unicastCI"`
	HighWaitCI  optFloat `json:"highWaitCI"`
	LowWaitCI   optFloat `json:"lowWaitCI"`
	// Source says how the point was answered: "anchor" (an exact cached
	// measurement) or "interp" (residual interpolation between AnchorLo and
	// AnchorHi).
	Source   string  `json:"source"`
	AnchorLo float64 `json:"anchorLo"`
	AnchorHi float64 `json:"anchorHi"`
}

// SeriesDoc is one scheme's answered curve.
type SeriesDoc struct {
	Scheme string     `json:"scheme"`
	Points []PointDoc `json:"points"`
}

// Doc is the complete approximate result payload.
type Doc struct {
	Fingerprint string           `json:"fingerprint"`
	Engine      string           `json:"engine"`
	Approx      bool             `json:"approx"` // always true
	Tol         float64          `json:"tol"`
	Spec        *spec.Experiment `json:"spec"`
	Series      []SeriesDoc      `json:"series"`
}

// Encode flattens the evaluation into the approximate result document.
func (ev *Evaluation) Encode(fingerprint, engine string) ([]byte, error) {
	doc := Doc{
		Fingerprint: fingerprint,
		Engine:      engine,
		Approx:      true,
		Tol:         ev.Tol,
		Spec:        spec.FromSweep(ev.Exp),
	}
	for _, s := range ev.Series {
		sd := SeriesDoc{Scheme: s.Scheme}
		for _, p := range s.Points {
			sd.Points = append(sd.Points, PointDoc{
				Rho:         p.Rho,
				Reception:   optFloat(p.Val[MReception]),
				Broadcast:   optFloat(p.Val[MBroadcast]),
				Unicast:     optFloat(p.Val[MUnicast]),
				HighWait:    optFloat(p.Val[MHighWait]),
				LowWait:     optFloat(p.Val[MLowWait]),
				ReceptionCI: optFloat(p.Bound[MReception]),
				BroadcastCI: optFloat(p.Bound[MBroadcast]),
				UnicastCI:   optFloat(p.Bound[MUnicast]),
				HighWaitCI:  optFloat(p.Bound[MHighWait]),
				LowWaitCI:   optFloat(p.Bound[MLowWait]),
				Source:      p.Source,
				AnchorLo:    p.Lo,
				AnchorHi:    p.Hi,
			})
		}
		doc.Series = append(doc.Series, sd)
	}
	b, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("surrogate: encoding approx result: %w", err)
	}
	return b, nil
}
