// Package mdqueue is a standalone slotted single-server queue simulator
// used to validate the queueing formulas behind the paper's Section 3.2
// analysis: the G/D/1 waiting time W = V/(2 rho (1-rho)) - 1/2, its M/D/1
// specialization, the smallness of the high-priority wait when the
// high-priority load is a 1/n fraction, and Kleinrock's conservation law
// for non-preemptive priority disciplines with equal service times.
//
// The model matches the network simulator's per-link service: time is
// slotted, the server starts at most one unit-service packet per slot, and
// arrivals during slot t are eligible for service in slot t.
package mdqueue

import (
	"fmt"
	"math/rand/v2"

	"prioritystar/internal/queue"
	"prioritystar/internal/stats"
	"prioritystar/internal/traffic"
)

// Config describes one queue simulation.
type Config struct {
	// Lambda is the Poisson arrival rate (packets per slot) of each class;
	// its length (1..8) fixes the number of priority classes, class 0
	// highest. The total must stay below 1 for stability.
	Lambda []float64
	// Batch, when > 1, draws each Poisson arrival as a batch of this size
	// (a burstier G/D/1 arrival process with variance Batch * rho).
	Batch int
	Seed  uint64
	// Warmup and Measure are in slots.
	Warmup, Measure int64
}

func (c *Config) validate() error {
	if len(c.Lambda) == 0 || len(c.Lambda) > 8 {
		return fmt.Errorf("mdqueue: need 1..8 classes, got %d", len(c.Lambda))
	}
	total := 0.0
	for _, l := range c.Lambda {
		if l < 0 {
			return fmt.Errorf("mdqueue: negative rate %g", l)
		}
		total += l
	}
	if c.Batch < 0 {
		return fmt.Errorf("mdqueue: negative batch")
	}
	if total*float64(max(1, c.Batch)) >= 1 {
		return fmt.Errorf("mdqueue: offered load %g >= 1 is unstable", total*float64(max(1, c.Batch)))
	}
	if c.Measure <= 0 {
		return fmt.Errorf("mdqueue: Measure must be positive")
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Result reports per-class and aggregate waiting times.
type Result struct {
	// Wait[c] is the queueing delay (slots between arrival and service
	// start) of class c.
	Wait []stats.Welford
	// All aggregates every class.
	All stats.Welford
	// Served counts packets that entered service in the window.
	Served int64
}

type item struct {
	arrived int64
}

// Run simulates the queue and returns waiting-time statistics.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	batch := max(1, cfg.Batch)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x9d1))
	q := queue.NewMultiClass[item](len(cfg.Lambda))
	res := &Result{Wait: make([]stats.Welford, len(cfg.Lambda))}
	horizon := cfg.Warmup + cfg.Measure
	for t := int64(0); t < horizon; t++ {
		// Arrivals first: a packet arriving in slot t may start service in
		// slot t, mirroring the network engine's ordering.
		for c, l := range cfg.Lambda {
			for i := traffic.Poisson(rng, l); i > 0; i-- {
				for b := 0; b < batch; b++ {
					q.Push(c, item{arrived: t})
				}
			}
		}
		// Unit service: one packet per slot.
		if it, c, ok := q.Pop(); ok {
			if t >= cfg.Warmup {
				w := float64(t - it.arrived)
				res.Wait[c].Add(w)
				res.All.Add(w)
				res.Served++
			}
		}
	}
	return res, nil
}
