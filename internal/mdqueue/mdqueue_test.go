package mdqueue

import (
	"math"
	"testing"

	"prioritystar/internal/analysis"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Lambda: nil, Measure: 10},
		{Lambda: []float64{0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1}, Measure: 10},
		{Lambda: []float64{-0.1}, Measure: 10},
		{Lambda: []float64{0.5}, Measure: 0},
		{Lambda: []float64{1.1}, Measure: 10},           // unstable
		{Lambda: []float64{0.4}, Batch: 3, Measure: 10}, // batch load 1.2
		{Lambda: []float64{0.4}, Batch: -1, Measure: 10},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

// TestMD1WaitMatchesFormula: simulated single-class Poisson/deterministic
// waits match the paper's W = rho/(2(1-rho)) across loads.
func TestMD1WaitMatchesFormula(t *testing.T) {
	for _, rho := range []float64{0.2, 0.5, 0.8, 0.9} {
		res, err := Run(Config{
			Lambda: []float64{rho}, Seed: 7, Warmup: 20000, Measure: 800000,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := analysis.MD1Wait(rho)
		got := res.All.Mean()
		if math.Abs(got-want) > 0.05*want+0.03 {
			t.Errorf("rho=%g: simulated wait %.4f, formula %.4f", rho, got, want)
		}
	}
}

// TestGD1BatchWaitMatchesFormula: batch arrivals have variance
// V = batch * rho, so W = V/(2 rho (1-rho)) - 1/2 = batch/(2(1-rho)) - 1/2.
func TestGD1BatchWaitMatchesFormula(t *testing.T) {
	const batch = 4
	for _, rho := range []float64{0.4, 0.8} {
		res, err := Run(Config{
			Lambda: []float64{rho / batch}, Batch: batch,
			Seed: 8, Warmup: 20000, Measure: 800000,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := analysis.GD1Wait(rho, batch*rho)
		got := res.All.Mean()
		if math.Abs(got-want) > 0.06*want+0.05 {
			t.Errorf("rho=%g batch=%d: simulated wait %.4f, formula %.4f", rho, batch, got, want)
		}
	}
}

// TestHighPriorityWaitSmall reproduces the Section 3.2 structure: when the
// high-priority class carries a 1/n fraction of a rho = 0.9 load (n = 8),
// its wait is O(1/n) while the low-priority class absorbs the queueing.
func TestHighPriorityWaitSmall(t *testing.T) {
	const rho, n = 0.9, 8.0
	res, err := Run(Config{
		Lambda: []float64{rho / n, rho * (n - 1) / n},
		Seed:   9, Warmup: 20000, Measure: 800000,
	})
	if err != nil {
		t.Fatal(err)
	}
	high := res.Wait[0].Mean()
	low := res.Wait[1].Mean()
	bound := analysis.HighPriorityWaitBound(rho, int(n))
	// The bound treats the high class in isolation; head-of-line blocking
	// by an in-service low packet adds at most one residual slot fraction.
	if high > bound+1.0 {
		t.Errorf("high-priority wait %.4f far above isolated bound %.4f", high, bound)
	}
	if high > 1.0 {
		t.Errorf("high-priority wait %.4f should be O(1) small", high)
	}
	if low < 3 {
		t.Errorf("low-priority wait %.4f should carry the rho=0.9 queueing", low)
	}
}

// TestConservationLaw: with identical total arrivals and unit service, the
// aggregate mean wait is the same under FCFS and under a 2-class priority
// discipline (Kleinrock's conservation law, the paper's Section 3.2
// argument that priorities redistribute rather than create waiting).
func TestConservationLaw(t *testing.T) {
	const rho = 0.8
	fcfs, err := Run(Config{Lambda: []float64{rho}, Seed: 10, Warmup: 20000, Measure: 600000})
	if err != nil {
		t.Fatal(err)
	}
	prio, err := Run(Config{Lambda: []float64{rho / 4, 3 * rho / 4}, Seed: 10, Warmup: 20000, Measure: 600000})
	if err != nil {
		t.Fatal(err)
	}
	a, b := fcfs.All.Mean(), prio.All.Mean()
	if math.Abs(a-b) > 0.06*a+0.03 {
		t.Errorf("conservation violated: FCFS %.4f vs priority aggregate %.4f", a, b)
	}
	// And the priority classes are strictly ordered.
	if prio.Wait[0].Mean() >= prio.Wait[1].Mean() {
		t.Error("class 0 should wait less than class 1")
	}
}

// TestZeroLoadClassesServed: classes with zero rate record nothing.
func TestZeroLoadClassesServed(t *testing.T) {
	res, err := Run(Config{Lambda: []float64{0, 0.3}, Seed: 2, Warmup: 100, Measure: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wait[0].Count() != 0 {
		t.Error("empty class should record no waits")
	}
	if res.Wait[1].Count() == 0 || res.Served == 0 {
		t.Error("loaded class should be served")
	}
}
