package serve

// Tests for the surrogate fast path and predictive admission. The central
// acceptance check: an approx-mode submission in a cached neighborhood
// completes with ZERO additional simulation runs, asserted via the daemon's
// sim_runs counter.

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// famSpec is a sweep in a fixed family; rhos and extra fields vary per
// call, everything else (and so the interpolation family) stays put.
func famSpec(rhos string, extra string) []byte {
	return []byte(fmt.Sprintf(`{
		"id": "t-approx", %s
		"dims": [4, 4], "rhos": [%s],
		"broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}],
		"warmup": 50, "measure": 400, "drain": 100,
		"reps": 2, "seed": 11
	}`, extra, rhos))
}

// runExact submits a spec and waits for a real (non-cached) completion.
func runExact(t *testing.T, c *Client, spec []byte) JobStatus {
	t.Helper()
	ctx := context.Background()
	st, err := c.SubmitJSON(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached || st.Approx {
		t.Fatalf("anchor submission answered without running: %+v", st)
	}
	final, err := c.Watch(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("anchor job ended %q (err %q)", final.State, final.Error)
	}
	return *final
}

func TestApproxAnsweredWithZeroSimulationRuns(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2, QueueCap: 4})
	ctx := context.Background()

	// Anchor the family with one exact sweep at rho 0.2 and 0.4.
	runExact(t, c, famSpec("0.2, 0.4", ""))
	m := s.Metrics()
	simsBefore := m.Counter("sim_runs")
	if simsBefore != 1 {
		t.Fatalf("sim_runs = %d after the anchor sweep, want 1", simsBefore)
	}

	// An approx submission between the anchors must come back terminal,
	// marked approx, without any simulation having run.
	st, err := c.SubmitJSON(ctx, famSpec("0.3", `"mode": "approx", "approxTol": 2,`))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || !st.Approx || st.Cached {
		t.Fatalf("approx submission not surrogate-answered: %+v", st)
	}
	if got := m.Counter("sim_runs"); got != simsBefore {
		t.Errorf("surrogate answer ran a simulation: sim_runs %d -> %d", simsBefore, got)
	}
	if got := m.Counter("surrogate_hits"); got != 1 {
		t.Errorf("surrogate_hits = %d, want 1", got)
	}
	if got := m.Counter("jobs_queued"); got != 1 {
		t.Errorf("jobs_queued = %d, want 1 (only the anchor sweep)", got)
	}

	// The result document is the approximate schema: marked, sourced, with
	// error bounds in the CI slots.
	body, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"approx":true`, `"source":"interp"`, `"anchorLo":0.2`, `"anchorHi":0.4`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("approx result missing %s:\n%s", want, body)
		}
	}

	// An exact submission of the same spec is NOT answered by the cache or
	// the surrogate: approximations are never cached, so exact stays exact.
	st2, err := c.SubmitJSON(ctx, famSpec("0.3", ""))
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached || st2.Approx {
		t.Fatalf("exact submission answered from the approx result: %+v", st2)
	}
	if _, err := c.Watch(ctx, st2.ID, nil); err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("sim_runs"); got != simsBefore+1 {
		t.Errorf("exact follow-up: sim_runs = %d, want %d", got, simsBefore+1)
	}
}

func TestApproxFallsBackToSimulation(t *testing.T) {
	// No anchors at all: the surrogate must decline and the job run for
	// real, landing in the cache like any exact submission.
	s, c := newTestServer(t, Config{Workers: 2, QueueCap: 4})
	ctx := context.Background()
	st, err := c.SubmitJSON(ctx, famSpec("0.3", `"mode": "approx",`))
	if err != nil {
		t.Fatal(err)
	}
	if st.Approx || st.Cached {
		t.Fatalf("submission with an empty index answered without running: %+v", st)
	}
	final, err := c.Watch(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("fallback job ended %q (err %q)", final.State, final.Error)
	}
	m := s.Metrics()
	if got := m.Counter("surrogate_fallbacks"); got != 1 {
		t.Errorf("surrogate_fallbacks = %d, want 1", got)
	}
	if got := m.Counter("sim_runs"); got != 1 {
		t.Errorf("sim_runs = %d, want 1", got)
	}
	body, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), `"approx":true`) {
		t.Errorf("fallback produced an approx document:\n%s", body)
	}
}

// TestApproxIllPosedRejected pins the satellite contract: approx requests
// the analytic model cannot cover at all — fault schedules, guard-
// terminated regimes, saturated loads — are a clear 400 at admission, not a
// silent fallback to simulation.
func TestApproxIllPosedRejected(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	ctx := context.Background()
	cases := map[string]string{
		"faults":     `"mode": "approx", "faults": "perm:1,seed:3",`,
		"guard":      `"mode": "approx", "guard": {"divergeBacklog": 1000},`,
		"maxBacklog": `"mode": "approx", "maxBacklog": 5000,`,
	}
	rejected := 0
	for name, extra := range cases {
		_, err := c.SubmitJSON(ctx, famSpec("0.3", extra))
		ae, ok := err.(*apiError)
		if !ok || ae.Code != 400 {
			t.Errorf("%s: want HTTP 400, got %v", name, err)
			continue
		}
		if !strings.Contains(ae.Msg, "exact mode") {
			t.Errorf("%s: error should point at exact mode: %q", name, ae.Msg)
		}
		rejected++
	}
	// Saturated rho is ineligible too (the closed-form model diverges).
	if _, err := c.SubmitJSON(ctx, famSpec("1.0", `"mode": "approx",`)); err == nil {
		t.Error("rho 1.0 in approx mode accepted")
	} else if ae, ok := err.(*apiError); !ok || ae.Code != 400 {
		t.Errorf("rho 1.0: want HTTP 400, got %v", err)
	}
	m := s.Metrics()
	if got := m.Counter("submits_rejected_badspec"); got != int64(rejected)+1 {
		t.Errorf("submits_rejected_badspec = %d, want %d", got, rejected+1)
	}
	// The same specs WITHOUT approx mode are perfectly valid jobs.
	st, err := c.SubmitJSON(ctx, famSpec("0.3", `"faults": "perm:1,seed:3",`))
	if err != nil {
		t.Fatalf("exact-mode faulted spec rejected: %v", err)
	}
	if _, err := c.Watch(ctx, st.ID, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApproxIndexWarmsFromCacheJournal(t *testing.T) {
	// Anchors computed by a previous daemon process serve approx answers
	// after a restart: the index rebuilds from the cache journal.
	dir := t.TempDir()
	cachePath := filepath.Join(dir, "cache.jsonl")

	s1, c1 := newTestServer(t, Config{Workers: 2, QueueCap: 4, CachePath: cachePath})
	runExact(t, c1, famSpec("0.2, 0.4", ""))
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2, c2 := newTestServer(t, Config{Workers: 2, QueueCap: 4, CachePath: cachePath})
	st, err := c2.SubmitJSON(context.Background(), famSpec("0.3", `"mode": "approx", "approxTol": 2,`))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || !st.Approx {
		t.Fatalf("restarted daemon did not surrogate-answer: %+v", st)
	}
	m := s2.Metrics()
	if got := m.Counter("sim_runs"); got != 0 {
		t.Errorf("restarted daemon ran %d simulation(s) for an approx hit", got)
	}
	if got := m.Counter("surrogate_hits"); got != 1 {
		t.Errorf("surrogate_hits = %d, want 1", got)
	}
}

func TestNoApproxDisablesSurrogate(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2, QueueCap: 4, NoApprox: true})
	ctx := context.Background()
	runExact(t, c, famSpec("0.2, 0.4", ""))
	st, err := c.SubmitJSON(ctx, famSpec("0.3", `"mode": "approx", "approxTol": 2,`))
	if err != nil {
		t.Fatal(err)
	}
	if st.Approx {
		t.Fatalf("NoApprox daemon surrogate-answered: %+v", st)
	}
	final, err := c.Watch(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Approx {
		t.Fatalf("NoApprox job ended %+v", final)
	}
	if got := s.Metrics().Counter("surrogate_hits"); got != 0 {
		t.Errorf("surrogate_hits = %d under NoApprox", got)
	}
	// With NoApprox even an ill-posed approx spec runs (mode is ignored).
	st2, err := c.SubmitJSON(ctx, famSpec("0.3", `"mode": "approx", "faults": "perm:1,seed:3",`))
	if err != nil {
		t.Fatalf("NoApprox should ignore approx eligibility: %v", err)
	}
	if _, err := c.Watch(ctx, st2.ID, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForecastAdmissionColdStartAccepts(t *testing.T) {
	// Predictive shedding must never refuse work on a cold or lightly
	// loaded daemon (the forecaster's half-cap floor guard).
	s, c := newTestServer(t, Config{Workers: 2, QueueCap: 8, ForecastAdmission: true})
	ctx := context.Background()
	for seed := 0; seed < 3; seed++ {
		st, err := c.SubmitJSON(ctx, fastSpec(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := c.Watch(ctx, st.ID, nil); err != nil {
			t.Fatal(err)
		}
	}
	m := s.Metrics()
	if got := m.Counter("forecast_shed"); got != 0 {
		t.Errorf("forecast_shed = %d on an idle daemon", got)
	}
	if got := m.Counter("jobs_done"); got != 3 {
		t.Errorf("jobs_done = %d, want 3", got)
	}
	// The forecast gauges surface on /metrics.
	snap, err := c.MetricsSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"forecast_depth", "forecast_arrival_rate", "forecast_completion_rate", "surrogate_anchors"} {
		if _, ok := snap.Gauges[g]; !ok {
			t.Errorf("gauge %s missing from /metrics", g)
		}
	}
}
