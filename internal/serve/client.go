package serve

// Client is the HTTP client for a starsimd daemon; psctl is a thin wrapper
// around it and the façade re-exports it for library embedding.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"prioritystar/internal/obs"
	"prioritystar/internal/spec"
)

// Client talks to one daemon.
type Client struct {
	// Base is the daemon's URL root, e.g. "http://127.0.0.1:7077".
	Base string
	// HTTP is the underlying client; http.DefaultClient when nil.
	HTTP *http.Client
}

// NewClient builds a client for addr, which may be a bare host:port or a
// full http:// URL.
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{Base: strings.TrimRight(addr, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError is a non-2xx response, keeping the status code inspectable.
type apiError struct {
	Code int
	Msg  string
}

// Error implements error.
func (e *apiError) Error() string {
	return fmt.Sprintf("daemon: %s (HTTP %d)", e.Msg, e.Code)
}

// IsQueueFull reports whether err is the daemon's 429 backpressure signal.
func IsQueueFull(err error) bool {
	ae, ok := err.(*apiError)
	return ok && ae.Code == http.StatusTooManyRequests
}

// do runs one request and decodes a JSON response into out (when non-nil).
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var ed errorDoc
		if json.Unmarshal(data, &ed) == nil && ed.Error != "" {
			return &apiError{Code: resp.StatusCode, Msg: ed.Error}
		}
		return &apiError{Code: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// SubmitJSON submits a raw spec document.
func (c *Client) SubmitJSON(ctx context.Context, specJSON []byte) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", bytes.NewReader(specJSON), &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Submit marshals and submits a spec experiment.
func (c *Client) Submit(ctx context.Context, e *spec.Experiment) (*JobStatus, error) {
	b, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	return c.SubmitJSON(ctx, b)
}

// Get fetches one job's status.
func (c *Client) Get(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// List fetches every job's status in submission order.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Cancel requests cancellation of a job (best effort).
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Result fetches a finished job's result document, verbatim bytes. A job
// that is still running yields an error telling the caller to wait.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return data, nil
	case http.StatusAccepted:
		return nil, &apiError{Code: resp.StatusCode, Msg: "job still running"}
	default:
		return nil, &apiError{Code: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	}
}

// Metrics fetches the daemon's metric snapshot.
func (c *Client) Metrics(ctx context.Context) (obs.Snapshot, error) {
	var s obs.Snapshot
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &s)
	return s, err
}

// Watch follows a job to completion over the SSE stream, invoking onEvent
// (when non-nil) for every status update including the terminal one, and
// returns the terminal status. If the stream breaks it falls back to
// polling, so Watch survives daemons behind buffering proxies.
func (c *Client) Watch(ctx context.Context, id string, onEvent func(JobStatus)) (*JobStatus, error) {
	st, err := c.watchSSE(ctx, id, onEvent)
	if err == nil {
		return st, nil
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return c.poll(ctx, id, onEvent)
}

// watchSSE consumes /events until a terminal status arrives.
func (c *Client) watchSSE(ctx context.Context, id string, onEvent func(JobStatus)) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return nil, &apiError{Code: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var st JobStatus
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
			return nil, fmt.Errorf("daemon: bad SSE payload: %w", err)
		}
		if onEvent != nil {
			onEvent(st)
		}
		if st.Terminal() {
			return &st, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("daemon: SSE stream ended before the job finished")
}

// poll falls back to GET polling until the job is terminal.
func (c *Client) poll(ctx context.Context, id string, onEvent func(JobStatus)) (*JobStatus, error) {
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		if onEvent != nil {
			onEvent(*st)
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-tick.C:
		}
	}
}
