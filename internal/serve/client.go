package serve

// Client is the HTTP client for a starsimd daemon; psctl is a thin wrapper
// around it and the façade re-exports it for library embedding. It is
// self-healing: unary calls retry transport errors and retryable status
// codes (429/502/503/504) under a capped, fully-jittered exponential
// backoff that honors Retry-After, and the SSE watch reconnects with
// Last-Event-ID so a daemon restart mid-stream is invisible to the caller.
// Submissions are idempotent on the daemon side (content-addressed by
// spec.Fingerprint), which is what makes blind resubmission safe.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"prioritystar/internal/obs"
	"prioritystar/internal/spec"
)

// RetryPolicy shapes the client's self-healing behavior. The zero value
// disables retries entirely; NewClient installs DefaultRetryPolicy.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first try (so a
	// call makes at most MaxRetries+1 requests). 0 disables retries.
	MaxRetries int
	// BaseDelay scales the backoff: the delay before retry n is a random
	// fraction ("full jitter") of min(MaxDelay, BaseDelay<<n).
	BaseDelay time.Duration
	// MaxDelay caps both the jittered backoff and a server-sent
	// Retry-After hint.
	MaxDelay time.Duration

	// rnd and sleep are test seams; nil means math/rand and a real timer.
	rnd   func() float64
	sleep func(ctx context.Context, d time.Duration) error
}

// DefaultRetryPolicy is the policy NewClient installs: 4 retries, 100ms
// base, 5s cap — a daemon restart of a few seconds is ridden out, a daemon
// that is truly gone fails in under half a minute.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second}
}

// delay computes the backoff before re-attempt retry (0-based). A
// Retry-After of ra seconds (ra >= 0 when present) takes precedence,
// capped at MaxDelay; otherwise full jitter over the exponential curve.
func (p RetryPolicy) delay(retry int, ra int) time.Duration {
	if ra >= 0 {
		d := time.Duration(ra) * time.Second
		if p.MaxDelay > 0 && d > p.MaxDelay {
			d = p.MaxDelay
		}
		return d
	}
	ceil := p.BaseDelay << retry
	if ceil <= 0 || (p.MaxDelay > 0 && ceil > p.MaxDelay) {
		ceil = p.MaxDelay
	}
	rnd := p.rnd
	if rnd == nil {
		rnd = rand.Float64
	}
	return time.Duration(rnd() * float64(ceil))
}

// wait sleeps for d or until ctx is done.
func (p RetryPolicy) wait(ctx context.Context, d time.Duration) error {
	if p.sleep != nil {
		return p.sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Client talks to one daemon.
type Client struct {
	// Base is the daemon's URL root, e.g. "http://127.0.0.1:7077".
	Base string
	// HTTP is the underlying client; http.DefaultClient when nil.
	HTTP *http.Client
	// Retry governs transparent retries; the zero value disables them.
	Retry RetryPolicy
	// Metrics, when non-nil, counts client_retries and
	// client_reconnects for observability.
	Metrics *obs.MetricSet
}

// NewClient builds a client for addr, which may be a bare host:port or a
// full http:// URL, with DefaultRetryPolicy installed.
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{Base: strings.TrimRight(addr, "/"), Retry: DefaultRetryPolicy()}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) count(name string) {
	if c.Metrics != nil {
		c.Metrics.Add(name, 1)
	}
}

// apiError is a non-2xx response, keeping the status code inspectable.
type apiError struct {
	Code int
	Msg  string
}

// Error implements error.
func (e *apiError) Error() string {
	return fmt.Sprintf("daemon: %s (HTTP %d)", e.Msg, e.Code)
}

// IsQueueFull reports whether err is the daemon's 429 backpressure signal.
func IsQueueFull(err error) bool {
	ae, ok := err.(*apiError)
	return ok && ae.Code == http.StatusTooManyRequests
}

// retryableStatus reports whether a status code signals a transient
// condition worth re-attempting: backpressure (429), a proxy hiccup (502),
// a draining or restarting daemon (503), or a gateway timeout (504).
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfterSeconds parses an integer-seconds Retry-After header; -1 when
// absent or unparseable.
func retryAfterSeconds(h http.Header) int {
	v := strings.TrimSpace(h.Get("Retry-After"))
	if v == "" {
		return -1
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// roundTrip runs one request to completion under the retry policy,
// re-sending body verbatim on each attempt, and returns the final status
// code and response bytes. Transport errors and retryable status codes
// consume retry budget; when the budget runs out the last error (or the
// last response) is surfaced so callers can still inspect it — notably
// IsQueueFull on a final 429.
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	var lastErr error
	for retry := 0; ; retry++ {
		var rdr io.Reader
		if body != nil {
			rdr = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rdr)
		if err != nil {
			return 0, nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		ra := -1
		resp, err := c.httpClient().Do(req)
		if err == nil {
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil {
				if !retryableStatus(resp.StatusCode) || retry >= c.Retry.MaxRetries {
					return resp.StatusCode, data, nil
				}
				ra = retryAfterSeconds(resp.Header)
				lastErr = &apiError{Code: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
			} else {
				lastErr = rerr
			}
		} else {
			lastErr = err
		}
		if ctx.Err() != nil {
			return 0, nil, ctx.Err()
		}
		if retry >= c.Retry.MaxRetries {
			return 0, nil, lastErr
		}
		c.count("client_retries")
		if err := c.Retry.wait(ctx, c.Retry.delay(retry, ra)); err != nil {
			return 0, nil, err
		}
	}
}

// do runs one request under the retry policy and decodes a JSON response
// into out (when non-nil).
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	code, data, err := c.roundTrip(ctx, method, path, body)
	if err != nil {
		return err
	}
	if code >= 400 {
		var ed errorDoc
		if json.Unmarshal(data, &ed) == nil && ed.Error != "" {
			return &apiError{Code: code, Msg: ed.Error}
		}
		return &apiError{Code: code, Msg: strings.TrimSpace(string(data))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// SubmitJSON submits a raw spec document. Resubmitting after an ambiguous
// failure is safe: the daemon deduplicates on the spec fingerprint, so a
// retried submit lands on the already-accepted job (or its cached result)
// instead of running the sweep twice.
func (c *Client) SubmitJSON(ctx context.Context, specJSON []byte) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", specJSON, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Submit marshals and submits a spec experiment.
func (c *Client) Submit(ctx context.Context, e *spec.Experiment) (*JobStatus, error) {
	b, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	return c.SubmitJSON(ctx, b)
}

// Get fetches one job's status.
func (c *Client) Get(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// List fetches every job's status in submission order.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Cancel requests cancellation of a job (best effort).
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Result fetches a finished job's result document, verbatim bytes. A job
// that is still running yields an error telling the caller to wait.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	code, data, err := c.roundTrip(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	switch code {
	case http.StatusOK:
		return data, nil
	case http.StatusAccepted:
		return nil, &apiError{Code: code, Msg: "job still running"}
	default:
		return nil, &apiError{Code: code, Msg: strings.TrimSpace(string(data))}
	}
}

// Metrics fetches the daemon's metric snapshot.
func (c *Client) MetricsSnapshot(ctx context.Context) (obs.Snapshot, error) {
	var s obs.Snapshot
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &s)
	return s, err
}

// Watch follows a job to completion, invoking onEvent (when non-nil) for
// every status update including the terminal one, and returns the terminal
// status. The SSE stream reconnects with Last-Event-ID when it breaks — a
// daemon restart mid-watch costs at most a duplicated snapshot — and each
// delivered event refills the retry budget, so only consecutive failures
// count. When the budget is spent it degrades to polling, so Watch also
// survives daemons behind buffering proxies.
func (c *Client) Watch(ctx context.Context, id string, onEvent func(JobStatus)) (*JobStatus, error) {
	lastID := ""
	for failures := 0; failures <= c.Retry.MaxRetries; {
		st, progressed, err := c.watchSSE(ctx, id, &lastID, onEvent)
		if err == nil {
			return st, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if progressed {
			failures = 0 // the stream worked; only count consecutive breaks
		}
		failures++
		if failures > c.Retry.MaxRetries {
			break
		}
		c.count("client_reconnects")
		if werr := c.Retry.wait(ctx, c.Retry.delay(failures-1, -1)); werr != nil {
			return nil, werr
		}
	}
	return c.poll(ctx, id, onEvent)
}

// watchSSE consumes /events until a terminal status arrives, tracking the
// last seen SSE event ID in *lastID (sent back as Last-Event-ID on
// reconnects). progressed reports whether any event was delivered before
// the error.
func (c *Client) watchSSE(ctx context.Context, id string, lastID *string, onEvent func(JobStatus)) (st *JobStatus, progressed bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, false, err
	}
	if *lastID != "" {
		req.Header.Set("Last-Event-ID", *lastID)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return nil, false, &apiError{Code: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if id, ok := strings.CutPrefix(line, "id: "); ok {
			*lastID = id
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev JobStatus
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return nil, progressed, fmt.Errorf("daemon: bad SSE payload: %w", err)
		}
		progressed = true
		if onEvent != nil {
			onEvent(ev)
		}
		if ev.Terminal() {
			return &ev, true, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, progressed, err
	}
	return nil, progressed, fmt.Errorf("daemon: SSE stream ended before the job finished")
}

// poll falls back to GET polling until the job is terminal.
func (c *Client) poll(ctx context.Context, id string, onEvent func(JobStatus)) (*JobStatus, error) {
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		if onEvent != nil {
			onEvent(*st)
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-tick.C:
		}
	}
}
