package serve

// The content-addressed result cache: fingerprint -> result bytes. Backed
// by the same JSONL journal machinery as the sweep checkpoints
// (internal/journal): a header line carrying the engine version, then one
// record per cached result, flushed as it is written. A restarted daemon
// replays the file leniently — a corrupt or torn record is skipped and
// logged while every readable record around it keeps serving — so one bad
// sector never discards the rest of the history. A cache written by a
// different engine version is ignored and rewritten rather than replayed,
// because its results no longer correspond to what the current engine
// would compute.

import (
	"encoding/json"
	"errors"
	"sync"
	"time"

	"prioritystar/internal/journal"
)

// cacheMagic identifies result-cache journals.
const cacheMagic = "pscache1"

// cacheRecord is one persisted result.
type cacheRecord struct {
	Key     string          `json:"key"`
	Created string          `json:"created"` // RFC 3339, informational only
	Result  json.RawMessage `json:"result"`
}

// cache is the in-memory index plus its append-only journal. A nil journal
// (no path configured) keeps the cache memory-only.
type cache struct {
	mu      sync.Mutex
	path    string
	entries map[string][]byte
	jnl     *journal.Writer
	skipped int // corrupt records skipped at load
}

// openCache loads (or creates) the cache journal at path. An empty path
// yields a memory-only cache. Corrupt records are skipped individually
// (logged via logf) rather than discarding everything after them.
func openCache(path, engine string, logf func(string, ...any)) (*cache, error) {
	c := &cache{path: path, entries: make(map[string][]byte)}
	if path == "" {
		return c, nil
	}
	validLen, found, skipped, err := journal.LoadLenient(path, cacheMagic, engine, func(line []byte) error {
		var rec cacheRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return err // skipped: corrupt record or torn tail
		}
		if rec.Key == "" || len(rec.Result) == 0 {
			return errors.New("serve: cache record missing key or result")
		}
		c.entries[rec.Key] = rec.Result
		return nil
	})
	var fpErr *journal.ErrFingerprint
	if errors.As(err, &fpErr) {
		// A cache from another engine version: its results are stale by
		// definition. Start over.
		found = false
	} else if err != nil {
		return nil, err
	}
	c.skipped = skipped
	if skipped > 0 && logf != nil {
		logf("serve: result cache %s: skipped %d corrupt record(s), kept %d", path, skipped, len(c.entries))
	}
	if found {
		c.jnl, err = journal.OpenAppend(path, validLen)
	} else {
		c.jnl, err = journal.Create(path, cacheMagic, engine)
	}
	if err != nil {
		return nil, err
	}
	return c, nil
}

// get returns the cached result bytes for key.
func (c *cache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.entries[key]
	return b, ok
}

// put stores result under key and appends it to the journal. Storing an
// already-present key is a no-op: the first result wins, keeping cache
// reads byte-stable over the daemon's lifetime.
func (c *cache) put(key string, result []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return nil
	}
	c.entries[key] = result
	if c.jnl == nil {
		return nil
	}
	return c.jnl.Append(cacheRecord{
		Key:     key,
		Created: time.Now().UTC().Format(time.RFC3339),
		Result:  json.RawMessage(result),
	})
}

// len reports the number of cached results.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// close flushes and closes the journal.
func (c *cache) close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jnl == nil {
		return nil
	}
	err := c.jnl.Close()
	c.jnl = nil
	return err
}
