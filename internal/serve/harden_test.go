package serve

// Pin tests for the HTTP server hardening knobs: ReadHeaderTimeout must
// drop a slow-loris client that dribbles its headers, while the deliberate
// absence of a WriteTimeout (plus IdleTimeout applying only between
// requests) must leave a long-lived SSE watch stream intact even when it
// outlives every configured timeout. These exist so a future "tidy-up" that
// adds WriteTimeout or drops ReadHeaderTimeout fails loudly.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startHardenedServer boots a real listener (httptest.Server manages its
// own http.Server, which would bypass the daemon's timeout wiring).
func startHardenedServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, addr
}

// TestSlowHeaderClientDropped: a connection that sends half a request line
// and stalls is cut off once ReadHeaderTimeout elapses, instead of pinning
// a connection goroutine forever.
func TestSlowHeaderClientDropped(t *testing.T) {
	_, addr := startHardenedServer(t, Config{
		Workers: 1, QueueCap: 2,
		ReadHeaderTimeout: 200 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET /healthz HTT"); err != nil {
		t.Fatal(err)
	}
	// Never finish the request line. Once ReadHeaderTimeout elapses the
	// server terminates the connection (net/http may write a 400 on its way
	// out); without the timeout it would hold the connection open
	// indefinitely and this read would hit its own deadline instead.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	_, err = io.ReadAll(conn)
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("server never closed the slow-header connection (waited %v)", time.Since(start))
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("slow-header connection lingered %v; want closure shortly after the 200ms ReadHeaderTimeout", elapsed)
	}
}

// TestSSEWatchSurvivesIdleTimeout: an SSE stream that stays silent longer
// than IdleTimeout (and longer than ReadHeaderTimeout) still delivers the
// terminal event. IdleTimeout only reaps keep-alive connections between
// requests, and no WriteTimeout is configured — this test pins both.
func TestSSEWatchSurvivesIdleTimeout(t *testing.T) {
	_, addr := startHardenedServer(t, Config{
		Workers: 1, QueueCap: 4,
		ReadHeaderTimeout: 150 * time.Millisecond,
		IdleTimeout:       150 * time.Millisecond,
	})
	c := NewClient("http://" + addr)
	ctx := context.Background()

	// A job long enough that the watch stream is open well past IdleTimeout.
	st, err := c.SubmitJSON(ctx, mediumSpec(41))
	if err != nil {
		t.Fatal(err)
	}
	stream, err := http.Get(fmt.Sprintf("http://%s/v1/jobs/%s/events", addr, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("events endpoint answered %d", stream.StatusCode)
	}
	start := time.Now()
	sawTerminal := false
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, `"state": "done"`) || strings.Contains(line, `"state":"done"`) {
			sawTerminal = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("SSE stream was severed: %v (after %v)", err, time.Since(start))
	}
	if !sawTerminal {
		t.Fatal("SSE stream ended without delivering the terminal event")
	}
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond {
		// The stream must actually have outlived the timeouts for the pin
		// to mean anything; mediumSpec takes well over 300ms on one worker.
		t.Fatalf("stream only lived %v — too short to exercise IdleTimeout", elapsed)
	}
}
