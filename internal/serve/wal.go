package serve

// The job write-ahead log: the daemon's crash-recovery record, built on the
// shared JSONL journal machinery (internal/journal, "psjobs1" header). Every
// accepted job appends its canonical spec; every attempt start and every
// terminal transition appends a marker. On restart the WAL is replayed:
// jobs that never reached a terminal record are re-enqueued under their
// original IDs (so a client watching across the restart keeps its handle)
// and their sweeps resume from fingerprint-keyed checkpoint journals, so a
// SIGKILL loses at most the replication in flight — never a whole job and
// never already-simulated points. Attempt markers survive crashes, so a
// poison job that kills the process repeatedly runs out of retry budget
// across restarts and lands in quarantine instead of crash-looping the
// recovery path.
//
// The WAL is compacted on every replay: terminal jobs' records are dropped
// and the pending ones are rewritten (via a temp file + rename, so a crash
// mid-compaction keeps the old WAL), which bounds the file to the set of
// unfinished jobs. Appends fsync (journal.Writer.SetSync): an acknowledged
// accept survives power loss, not just a killed process.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"prioritystar/internal/journal"
)

// walMagic identifies job WAL journals.
const walMagic = "psjobs1"

// WAL record operations. The terminal ops are spelled exactly like the job
// states they record.
const (
	walOpAccept  = "accept"
	walOpAttempt = "attempt"
)

// walRecord is one WAL line.
type walRecord struct {
	Op          string          `json:"op"`
	ID          string          `json:"id"`
	Fingerprint string          `json:"fp,omitempty"`
	Spec        json.RawMessage `json:"spec,omitempty"` // canonical spec JSON (accept only)
	Attempt     int             `json:"attempt,omitempty"`
	Error       string          `json:"error,omitempty"`
	Time        string          `json:"time,omitempty"`
}

// walTerminal reports whether op records a terminal state.
func walTerminalOp(op string) bool {
	switch op {
	case StateDone, StateFailed, StateCanceled, StateQuarantined:
		return true
	}
	return false
}

// wal serializes appends from the submit path and every worker.
type wal struct {
	mu sync.Mutex
	w  *journal.Writer
}

func (w *wal) append(rec walRecord) error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.w == nil {
		return nil
	}
	return w.w.Append(rec)
}

func (w *wal) close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.w == nil {
		return nil
	}
	err := w.w.Close()
	w.w = nil
	return err
}

// walJob is a job reconstructed from the WAL that never reached a terminal
// record — the unit of crash recovery.
type walJob struct {
	id       string
	fp       string
	spec     json.RawMessage
	attempts int // attempts started before the crash
}

// openWAL replays the WAL at path (tolerating interior corruption and a
// torn tail), compacts it down to its pending jobs, and returns an
// fsync-on-append writer positioned after the compacted records. pending
// holds the unfinished jobs in acceptance order; maxSeq is the largest
// numeric job-ID suffix seen, so freshly submitted jobs never collide with
// recovered ones; skipped counts corrupt records dropped by the lenient
// load (surfaced as the journal_records_skipped metric). A WAL written by a
// different engine version is discarded: its fingerprints no longer name
// what this engine would compute.
func openWAL(path, engine string, logf func(string, ...any)) (w *wal, pending []walJob, maxSeq, skipped int, err error) {
	byID := make(map[string]*walJob)
	var order []string
	terminal := make(map[string]bool)
	_, found, skipped, err := journal.LoadLenient(path, walMagic, engine, func(line []byte) error {
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return err
		}
		if rec.ID == "" {
			return fmt.Errorf("serve: WAL record without id")
		}
		if n, ok := jobSeq(rec.ID); ok && n > maxSeq {
			maxSeq = n
		}
		switch {
		case rec.Op == walOpAccept:
			j := &walJob{id: rec.ID, fp: rec.Fingerprint, spec: rec.Spec, attempts: rec.Attempt}
			if _, dup := byID[rec.ID]; !dup {
				order = append(order, rec.ID)
			}
			byID[rec.ID] = j
		case rec.Op == walOpAttempt:
			if j, ok := byID[rec.ID]; ok && rec.Attempt > j.attempts {
				j.attempts = rec.Attempt
			}
		case walTerminalOp(rec.Op):
			terminal[rec.ID] = true
		default:
			return fmt.Errorf("serve: unknown WAL op %q", rec.Op)
		}
		return nil
	})
	var fpErr *journal.ErrFingerprint
	if errors.As(err, &fpErr) {
		if logf != nil {
			logf("serve: job WAL %s was written by engine %q; starting fresh", path, fpErr.Got)
		}
		found = false
		err = nil
	}
	if err != nil {
		return nil, nil, 0, 0, err
	}
	if skipped > 0 && logf != nil {
		logf("serve: job WAL %s: skipped %d corrupt record(s)", path, skipped)
	}
	if found {
		for _, id := range order {
			if !terminal[id] {
				pending = append(pending, *byID[id])
			}
		}
	}

	// Compact: rewrite just the pending accepts (attempt counts folded in)
	// through a temp file so a crash mid-compaction keeps the old WAL.
	tmp := path + ".tmp"
	jw, err := journal.Create(tmp, walMagic, engine)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	for _, pj := range pending {
		if err := jw.Append(walRecord{
			Op: walOpAccept, ID: pj.id, Fingerprint: pj.fp,
			Spec: pj.spec, Attempt: pj.attempts,
		}); err != nil {
			jw.Close()
			return nil, nil, 0, 0, err
		}
	}
	if err := jw.Close(); err != nil {
		return nil, nil, 0, 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, nil, 0, 0, fmt.Errorf("serve: compacting job WAL: %w", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	jw, err = journal.OpenAppend(path, fi.Size())
	if err != nil {
		return nil, nil, 0, 0, err
	}
	jw.SetSync(true) // accepted jobs are promises: survive power loss
	return &wal{w: jw}, pending, maxSeq, skipped, nil
}

// jobSeq extracts the numeric suffix of a "j%06d" job ID.
func jobSeq(id string) (int, bool) {
	s := strings.TrimPrefix(id, "j")
	if s == id {
		return 0, false
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
