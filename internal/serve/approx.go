package serve

// Surrogate serving and predictive admission: the daemon-side glue around
// internal/surrogate and internal/forecast.
//
// An approx-mode submission ("mode": "approx" in the spec) is answered by
// the analytic surrogate when it can certify the requested tolerance from
// the closed-form model plus the cache of exact results — a terminal "done"
// job with zero simulation runs — and falls back to the normal queue when
// it cannot. The anchor index is rebuilt from the cache journal at boot and
// fed live as exact jobs finish, so the fast path gets better the longer
// the daemon runs.
//
// The forecaster watches the queue: submissions and completions feed EWMA
// rate estimators and a trend model of the queue depth. Its outputs drive
// the Retry-After hint on 429 responses (how long until the backlog is
// half-drained, instead of a fixed guess) and — when Config.ForecastAdmission
// is set — predictive shedding: refusing work the forecast says will
// overflow the queue within the horizon, before it is already full.

import (
	"time"

	"prioritystar/internal/forecast"
	"prioritystar/internal/surrogate"
	"prioritystar/internal/sweep"
)

// each visits every cached entry; used to rebuild the anchor index at boot.
func (c *cache) each(fn func(key string, body []byte)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, b := range c.entries {
		fn(k, b)
	}
}

// initApprox builds the manager's surrogate and forecaster from the config
// and the freshly loaded cache. Called from newManager before any worker
// starts.
func (m *manager) initApprox() {
	ix := surrogate.NewIndex()
	fed := 0
	m.cache.each(func(key string, body []byte) {
		// Errors are expected for documents without usable anchors (partial
		// results, foreign schemas); the cache stays authoritative, the index
		// is an accelerator.
		if err := ix.AddResult(body); err == nil {
			fed++
		}
	})
	if fed > 0 {
		m.logf("serve: surrogate index warmed from %d cached result(s), %d anchor(s)", fed, ix.Anchors())
	}
	m.sur = surrogate.New(ix)
	m.sur.Tol = m.cfg.ApproxTol
	m.ix = ix
	m.fc = forecast.New(forecast.Config{})
}

// trySurrogate attempts to answer an approx-mode submission without
// simulating. Returns the terminal status and true on success; the caller
// holds m.mu.
func (m *manager) trySurrogate(exp *sweep.Experiment) (JobStatus, bool) {
	ev, err := m.sur.Evaluate(exp)
	if err != nil {
		m.cfg.Metrics.Add("surrogate_fallbacks", 1)
		m.logf("serve: surrogate fallback for %s: %v", exp.Fingerprint, err)
		return JobStatus{}, false
	}
	body, err := ev.Encode(exp.Fingerprint, m.cfg.engine)
	if err != nil {
		m.cfg.Metrics.Add("surrogate_fallbacks", 1)
		m.logf("serve: surrogate fallback for %s: %v", exp.Fingerprint, err)
		return JobStatus{}, false
	}
	m.cfg.Metrics.Add("surrogate_hits", 1)
	// A terminal pseudo-job like a cache hit, but marked Approx and NOT
	// cached: the cache holds only exact results (the surrogate must never
	// anchor on its own answers), and an exact submission of the same spec
	// still runs the real simulation.
	j := m.newJobLocked(exp.Fingerprint, nil)
	j.result = body
	j.status.State = StateDone
	j.status.Approx = true
	j.status.FinishedAt = j.status.SubmittedAt
	return j.status, true
}

// observeQueue feeds the forecaster the instantaneous queue depth; called
// on every submission so the trend model tracks pressure between scrapes.
func (m *manager) observeQueue() { m.fc.ObserveDepth(len(m.queue)) }

// forecastShed reports whether predictive admission should refuse a new
// job now: opt-in via Config.ForecastAdmission, and only when the depth
// forecast says the queue will overflow within the horizon.
func (m *manager) forecastShed() bool {
	return m.cfg.ForecastAdmission && m.fc.Overloaded(m.cfg.QueueCap)
}

// retryAfterHint is the 429 Retry-After value: the forecaster's estimate of
// when the backlog will have drained to half capacity, floored at the
// configured static hint.
func (m *manager) retryAfterHint() time.Duration {
	return m.fc.RetryAfter(m.cfg.QueueCap, m.cfg.RetryAfter)
}
