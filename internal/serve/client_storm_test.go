package serve

// Sustained 429-storm coverage for the client retry policy: a daemon that
// pushes back for a long stretch must see capped, bounded backoff from the
// client — exact Retry-After obedience, full-jitter ceilings that never
// exceed MaxDelay, and a shift that saturates instead of overflowing at
// deep retry counts. All timing goes through the policy's injectable rnd
// and sleep seams: no test here ever really sleeps.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"prioritystar/internal/obs"
)

// storm429Server answers 429 for the first n requests (with the scripted
// Retry-After headers, "" meaning none), then succeeds.
func storm429Server(t *testing.T, retryAfter []string, calls *atomic.Int32) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(calls.Add(1))
		if n <= len(retryAfter) {
			if ra := retryAfter[n-1]; ra != "" {
				w.Header().Set("Retry-After", ra)
			}
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"id":"j1","state":"queued","fingerprint":"f","done":0,"total":1}`))
	}))
	t.Cleanup(hs.Close)
	return hs
}

// TestStormRetryAfterHonoredExactly scripts a storm whose Retry-After
// headers ramp 1s, 3s, 7s, 9999s: the client must sleep exactly the header
// value while it fits under MaxDelay and exactly MaxDelay beyond it —
// never the jitter curve, never more than the cap.
func TestStormRetryAfterHonoredExactly(t *testing.T) {
	var calls atomic.Int32
	hs := storm429Server(t, []string{"1", "3", "7", "9999"}, &calls)

	var slept []time.Duration
	c := retryClient(hs.URL, 6, &slept)
	st, err := c.SubmitJSON(context.Background(), []byte(`{}`))
	if err != nil {
		t.Fatalf("submit after storm: %v", err)
	}
	if st.ID != "j1" {
		t.Fatalf("wrong response after storm: %+v", st)
	}
	// MaxDelay is 5s in retryClient: 7s and 9999s must both clamp to it.
	want := []time.Duration{time.Second, 3 * time.Second, 5 * time.Second, 5 * time.Second}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (full sequence %v)", i, slept[i], want[i], slept)
		}
	}
	if got := calls.Load(); got != 5 {
		t.Fatalf("server saw %d requests, want 5", got)
	}
}

// TestStormMalformedRetryAfterFallsBackToJitter: garbage and negative
// Retry-After headers are ignored, so the delay is the jitter ceiling
// (rnd pinned at 1.0), not zero and not a parse panic.
func TestStormMalformedRetryAfterFallsBackToJitter(t *testing.T) {
	var calls atomic.Int32
	hs := storm429Server(t, []string{"soon", "-4", "1.5"}, &calls)

	var slept []time.Duration
	c := retryClient(hs.URL, 5, &slept)
	if _, err := c.SubmitJSON(context.Background(), []byte(`{}`)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want jitter ceiling %v", i, slept[i], want[i])
		}
	}
}

// TestStormSustainedBackoffCappedAndOverflowSafe drives a 40-retry storm
// with no Retry-After: every delay must equal min(BaseDelay<<n, MaxDelay)
// with rnd pinned to 1.0. Past n≈36 the shift overflows int64 — the policy
// must saturate at MaxDelay, not go negative or wrap to tiny sleeps.
func TestStormSustainedBackoffCappedAndOverflowSafe(t *testing.T) {
	const retries = 40
	headers := make([]string, retries+1) // one more 429 than the budget
	var calls atomic.Int32
	hs := storm429Server(t, headers, &calls)

	var slept []time.Duration
	c := retryClient(hs.URL, retries, &slept)
	c.Metrics = &obs.MetricSet{}
	_, err := c.SubmitJSON(context.Background(), []byte(`{}`))
	if !IsQueueFull(err) {
		t.Fatalf("err = %v, want the final 429 surfaced as queue-full", err)
	}
	if got := calls.Load(); got != retries+1 {
		t.Fatalf("server saw %d requests, want MaxRetries+1 = %d", got, retries+1)
	}
	if len(slept) != retries {
		t.Fatalf("recorded %d sleeps, want %d", len(slept), retries)
	}
	base, cap_ := 100*time.Millisecond, 5*time.Second
	for n, d := range slept {
		want := cap_
		if ceil := base << n; ceil > 0 && ceil < cap_ {
			want = ceil
		}
		if d != want {
			t.Fatalf("sleep %d = %v, want min(BaseDelay<<%d, MaxDelay) = %v", n, d, n, want)
		}
		if d < 0 || d > cap_ {
			t.Fatalf("sleep %d = %v escaped [0, MaxDelay]", n, d)
		}
	}
	if got := c.Metrics.Counter("client_retries"); got != retries {
		t.Fatalf("client_retries = %d, want %d", got, retries)
	}
}

// TestStormFullJitterBoundsUnderRealRand re-runs the deep-retry curve with
// the real jitter source many times: every sampled delay stays within
// [0, min(BaseDelay<<n, MaxDelay)] even where the shift overflows.
func TestStormFullJitterBoundsUnderRealRand(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second}
	for retry := 0; retry < 64; retry++ {
		ceil := p.BaseDelay << retry
		if ceil <= 0 || ceil > p.MaxDelay {
			ceil = p.MaxDelay
		}
		for i := 0; i < 200; i++ {
			if d := p.delay(retry, -1); d < 0 || d > ceil {
				t.Fatalf("delay(retry=%d) = %v outside [0, %v]", retry, d, ceil)
			}
		}
	}
}

// TestStormRecoveryMidway: a storm that breaks halfway through the budget
// leaves the remaining budget untouched — the next call starts a fresh
// retry count instead of inheriting the storm's.
func TestStormRecoveryMidway(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Every odd-numbered request 429s; every even one succeeds: two
		// consecutive calls each need exactly one retry.
		if calls.Add(1)%2 == 1 {
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		fmt.Fprintf(w, `{"id":"j%d","state":"queued","fingerprint":"f","done":0,"total":1}`, calls.Load())
	}))
	t.Cleanup(hs.Close)

	var slept []time.Duration
	c := retryClient(hs.URL, 3, &slept)
	for call := 0; call < 2; call++ {
		if _, err := c.SubmitJSON(context.Background(), []byte(`{}`)); err != nil {
			t.Fatalf("call %d: %v", call, err)
		}
	}
	// Both calls backed off once from retry 0: 100ms each, not 100ms+200ms.
	want := []time.Duration{100 * time.Millisecond, 100 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("slept %v, want %v (retry count must reset per call)", slept, want)
	}
}
