// Package serve is the simulation-as-a-service layer: a long-lived HTTP
// daemon (cmd/starsimd) that accepts experiment specs as jobs, runs them on
// a bounded worker pool with FIFO queueing and explicit backpressure, and
// answers repeated submissions from a content-addressed result cache keyed
// by spec.Fingerprint — identical requests are balanced across workers and
// served from steady-state (cached) results instead of recomputed.
//
// API surface (all JSON):
//
//	POST   /v1/jobs            submit a spec; 200 cached / 202 accepted /
//	                           400 bad spec / 429 queue full (Retry-After) /
//	                           503 draining
//	GET    /v1/jobs            list jobs in submission order
//	GET    /v1/jobs/{id}        one job's status
//	GET    /v1/jobs/{id}/result the result document (202 while running)
//	GET    /v1/jobs/{id}/events SSE status stream (progress + terminal)
//	DELETE /v1/jobs/{id}        cancel (best effort)
//	GET    /metrics            obs.MetricSet snapshot
//	GET    /healthz            liveness
//	GET    /readyz             readiness (503 while draining)
//
// Graceful drain: Shutdown (SIGTERM in starsimd) stops intake, finishes
// every accepted job, persists the cache, then returns.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"time"

	"prioritystar/internal/obs"
	"prioritystar/internal/sim"
	"prioritystar/internal/spec"
	"prioritystar/internal/surrogate"
	"prioritystar/internal/sweep"
)

// Config tunes the daemon.
type Config struct {
	// Addr is the listen address; ":0" picks a free port (see Server.Addr).
	Addr string
	// Workers bounds concurrently running jobs. Default 2.
	Workers int
	// QueueCap bounds queued-but-unstarted jobs; a full queue answers 429.
	// Default 16.
	QueueCap int
	// SlotsPerJob caps each job's internal sweep parallelism
	// (sweep.Experiment.Workers); 0 keeps the sweep default (GOMAXPROCS).
	SlotsPerJob int
	// CachePath persists the result cache as a JSONL journal; empty keeps
	// it in memory only.
	CachePath string
	// WALPath persists the job write-ahead log; empty disables crash
	// recovery (jobs in flight when the process dies are lost). With a WAL,
	// a restarted daemon re-enqueues unfinished jobs under their original
	// IDs and resumes their sweeps from checkpoints kept in the WALPath+".d"
	// directory.
	WALPath string
	// RetryBudget is how many times a failing job is retried before it is
	// quarantined. 0 means the default (2); negative disables retries, and
	// exhausted jobs then fail instead of quarantining.
	RetryBudget int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt. Default 250ms.
	RetryBackoff time.Duration
	// JobTimeout arms a wall-clock guard on jobs that do not set their own;
	// 0 leaves them unguarded.
	JobTimeout time.Duration
	// RetryAfter is the floor of the hint sent with 429 responses; the
	// actual hint scales with the forecast queue-drain time. Default 1s.
	RetryAfter time.Duration
	// ApproxTol is the default relative error tolerance for approx-mode
	// submissions whose spec does not set its own (0: the surrogate
	// package default, 5%).
	ApproxTol float64
	// NoApprox disables the surrogate fast path: approx-mode submissions
	// are executed exactly, as if they had not asked.
	NoApprox bool
	// ForecastAdmission enables predictive shedding: submissions that
	// would enqueue are refused with 429 when the queue-depth forecast
	// says the queue will overflow within the horizon, instead of waiting
	// for it to actually fill.
	ForecastAdmission bool
	// ReadHeaderTimeout bounds how long a connection may dribble its request
	// headers before being dropped (slow-loris defense). Default 5s.
	ReadHeaderTimeout time.Duration
	// IdleTimeout closes keep-alive connections idle between requests.
	// Default 2m. There is deliberately no WriteTimeout: it would apply to
	// the whole response lifetime and kill long-lived SSE watches.
	IdleTimeout time.Duration
	// RunJob, when non-nil, replaces sweep.Experiment.Run as the execution
	// engine for accepted jobs. The cluster coordinator plugs in here to
	// scatter each job across a worker fleet; everything around the hook
	// (queueing, retries, WAL, checkpoints, the result cache) is unchanged,
	// and the hook must honor the experiment's Checkpoint/Resume fields so
	// crash recovery keeps working. It must be deterministic: the returned
	// Result must encode to the same bytes Run would produce.
	RunJob func(*sweep.Experiment) (*sweep.Result, error)
	// Degraded, when non-nil, reports that the execution engine is in a
	// degraded state (the cluster coordinator running sub-jobs locally
	// because no worker is reachable). /healthz answers "degraded" instead
	// of "ok" — still 200, because the daemon is alive and completing jobs;
	// an operator's alerting keys on the body, a load balancer keeps
	// routing.
	Degraded func() bool
	// Metrics receives the daemon's counters and gauges; a fresh set is
	// allocated when nil.
	Metrics *obs.MetricSet
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)

	// engine is the version folded into cache keys; fixed to
	// sim.EngineVersion, overridable only by tests.
	engine string
}

// Server is a running (or startable) daemon.
type Server struct {
	cfg Config
	mgr *manager
	mux *http.ServeMux

	ln   net.Listener
	http *http.Server
}

// New validates the config, loads the cache, and starts the worker pool.
// The HTTP listener starts on Start; Handler is usable immediately.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	switch {
	case cfg.RetryBudget == 0:
		cfg.RetryBudget = 2
	case cfg.RetryBudget < 0:
		cfg.RetryBudget = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
	if cfg.ReadHeaderTimeout <= 0 {
		cfg.ReadHeaderTimeout = 5 * time.Second
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &obs.MetricSet{}
	}
	if cfg.engine == "" {
		cfg.engine = sim.EngineVersion
	}
	c, err := openCache(cfg.CachePath, cfg.engine, cfg.Logf)
	if err != nil {
		return nil, fmt.Errorf("serve: opening result cache: %w", err)
	}
	var (
		w          *wal
		ckptDir    string
		pending    []walJob
		maxSeq     int
		walSkipped int
	)
	if cfg.WALPath != "" {
		w, pending, maxSeq, walSkipped, err = openWAL(cfg.WALPath, cfg.engine, cfg.Logf)
		if err != nil {
			return nil, fmt.Errorf("serve: opening job WAL: %w", err)
		}
		ckptDir = cfg.WALPath + ".d"
		if err := os.MkdirAll(ckptDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: creating checkpoint dir: %w", err)
		}
	}
	// Corrupt journal records are skipped (leniently) at load so one bad
	// sector never discards a cache or WAL — but silent decay is an operator
	// problem, so the skip count is a first-class metric, not just a log
	// line. Registered even at zero so fleet dashboards can alarm on it.
	cfg.Metrics.Add("journal_records_skipped", int64(c.skipped+walSkipped))
	// Surrogate and forecast counters exist from boot (at zero) so the load
	// harness and dashboards can read them unconditionally.
	cfg.Metrics.Add("surrogate_hits", 0)
	cfg.Metrics.Add("surrogate_fallbacks", 0)
	cfg.Metrics.Add("forecast_shed", 0)
	s := &Server{cfg: cfg, mgr: newManager(cfg, c, w, ckptDir, pending, maxSeq)}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.instrument("submit", s.handleSubmit))
	s.mux.HandleFunc("GET /v1/jobs", s.instrument("list", s.handleList))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("status", s.handleGet))
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.instrument("result", s.handleResult))
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("events", s.handleEvents))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("cancel", s.handleCancel))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.cfg.Degraded != nil && s.cfg.Degraded() {
			fmt.Fprintln(w, "degraded")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	return s, nil
}

// instrument wraps a handler with a server-side latency histogram,
// http_<name>_us. For the SSE endpoint the recorded value is the stream's
// lifetime, not a per-request service time. The load harness (cmd/psload)
// cross-checks its client-observed latencies against these histograms.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	metric := "http_" + name + "_us"
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		s.cfg.Metrics.Observe(metric, time.Since(start).Microseconds())
	}
}

// Handler returns the daemon's HTTP handler, for embedding in an existing
// server or for tests.
func (s *Server) Handler() http.Handler { return s.mux }

// HandleFunc mounts an extra route on the daemon's mux — the hook the
// cluster layer uses to add its coordinator/worker endpoints to the same
// listener. Must be called before Start (ServeMux registration is not
// synchronized with serving).
func (s *Server) HandleFunc(pattern string, h func(http.ResponseWriter, *http.Request)) {
	s.mux.HandleFunc(pattern, h)
}

// Start binds the listen address and serves in the background until
// Shutdown. It returns the bound address (useful with ":0").
func (s *Server) Start() (string, error) {
	addr := s.cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:7077"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: %w", err)
	}
	s.ln = ln
	// ReadHeaderTimeout drops slow-loris connections; IdleTimeout reaps
	// idle keep-alives. No WriteTimeout: it would cover the entire response
	// and sever long-lived SSE watch streams.
	s.http = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
	}
	go s.http.Serve(ln)
	if s.cfg.Logf != nil {
		s.cfg.Logf("serve: listening on %s", ln.Addr())
	}
	return ln.Addr().String(), nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains the daemon: intake stops (submissions get 503), every
// accepted job — running and queued — completes and lands in the cache,
// the cache journal is closed, and the HTTP server stops. If ctx expires
// first, in-flight job contexts are canceled so their simulations stop at
// the next poll, and Shutdown returns ctx's error after they unwind.
func (s *Server) Shutdown(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.mgr.drain()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mgr.abort()
		<-done
	}
	if cerr := s.mgr.cache.close(); cerr != nil && err == nil {
		err = cerr
	}
	if werr := s.mgr.wal.close(); werr != nil && err == nil {
		err = werr
	}
	if s.http != nil {
		hctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		if herr := s.http.Shutdown(hctx); herr != nil && err == nil {
			err = herr
		}
	}
	return err
}

// Job returns a job's current status (for embedding and tests).
func (s *Server) Job(id string) (JobStatus, bool) {
	j, ok := s.mgr.get(id)
	if !ok {
		return JobStatus{}, false
	}
	return j.snapshot(), true
}

// Jobs returns every job's status in submission order.
func (s *Server) Jobs() []JobStatus { return s.mgr.list() }

// Metrics returns the daemon's metric set.
func (s *Server) Metrics() *obs.MetricSet { return s.cfg.Metrics }

// Submit enqueues (or answers from cache) a decoded experiment; the
// library-embedding twin of POST /v1/jobs. The experiment is fingerprinted
// here if the caller has not stamped it.
func (s *Server) Submit(e *spec.Experiment) (JobStatus, error) {
	exp, err := e.ToSweep()
	if err != nil {
		return JobStatus{}, err
	}
	if err := spec.Stamp(exp); err != nil {
		return JobStatus{}, err
	}
	if err := exp.Validate(); err != nil {
		return JobStatus{}, err
	}
	if s.cfg.NoApprox {
		exp.Approx = false
	}
	// Ill-posed approximate requests fail loudly at admission (the HTTP
	// layer maps this to 400): a fault schedule or a guard-terminated
	// regime has no closed-form model, so "approximately" answering one is
	// a category error, not a fallback case.
	if exp.Approx {
		if err := surrogate.Eligible(exp); err != nil {
			return JobStatus{}, err
		}
	}
	return s.mgr.submit(exp)
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// errorDoc is the JSON error body.
type errorDoc struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Admission accounting: every submission lands in exactly one of
	// submits_total = accepted (jobs_queued) + cache_hits + jobs_deduped +
	// surrogate_hits + rejected. The load harness cross-checks its
	// client-side view against these counters after a run.
	s.cfg.Metrics.Add("submits_total", 1)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var e spec.Experiment
	if err := dec.Decode(&e); err != nil {
		s.cfg.Metrics.Add("submits_rejected_badspec", 1)
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("decoding spec: %v", err)})
		return
	}
	st, err := s.Submit(&e)
	switch {
	case err == nil:
	case err == errQueueFull:
		s.cfg.Metrics.Add("submits_rejected_429", 1)
		// The hint tracks the forecast drain time of the backlog rather
		// than a fixed constant, so clients back off proportionally to how
		// overloaded the daemon actually is.
		hint := s.mgr.retryAfterHint()
		w.Header().Set("Retry-After", strconv.Itoa(int((hint+time.Second-1)/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, errorDoc{Error: err.Error()})
		return
	case err == errDraining:
		s.cfg.Metrics.Add("submits_rejected_draining", 1)
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: err.Error()})
		return
	default:
		s.cfg.Metrics.Add("submits_rejected_badspec", 1)
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	code := http.StatusAccepted
	if st.Cached {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: s.mgr.list()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown job"})
		return
	}
	st := j.snapshot()
	if !st.Terminal() {
		writeJSON(w, http.StatusAccepted, st) // not ready yet; poll again
		return
	}
	j.mu.Lock()
	body := j.result
	j.mu.Unlock()
	if st.State != StateDone || body == nil {
		writeJSON(w, http.StatusConflict, st)
		return
	}
	// The cached bytes verbatim: byte-identical across hits and restarts.
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Fingerprint", st.Fingerprint)
	w.Write(body)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorDoc{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	// Last-Event-ID (set by reconnecting clients): suppress re-sending the
	// snapshot the client already has, but only for an ID minted by this
	// process — IDs carry a boot prefix, so a restart invalidates them and
	// the client gets a fresh snapshot.
	lastID := r.Header.Get("Last-Event-ID")
	ch := j.subscribe()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			id := s.mgr.eventID(ev.seq)
			if id == lastID && !ev.st.Terminal() {
				continue // exact duplicate of the pre-reconnect snapshot
			}
			b, _ := json.Marshal(ev.st)
			fmt.Fprintf(w, "id: %s\nevent: status\ndata: %s\n\n", id, b)
			fl.Flush()
			if ev.st.Terminal() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.mgr.cancelJob(id) {
		writeJSON(w, http.StatusNotFound, errorDoc{Error: "unknown job"})
		return
	}
	j, _ := s.mgr.get(id)
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.cfg.Metrics
	m.Set("queue_depth", float64(s.mgr.queueDepth()))
	m.Set("cache_entries", float64(s.mgr.cache.len()))
	m.Set("inflight", float64(s.mgr.inflight()))
	m.Set("surrogate_anchors", float64(s.mgr.ix.Anchors()))
	for k, v := range s.mgr.fc.Snapshot() {
		m.Set(k, v)
	}
	writeJSON(w, http.StatusOK, m.Snapshot())
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	s.mgr.mu.Lock()
	draining := s.mgr.draining
	s.mgr.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: "draining"})
		return
	}
	fmt.Fprintln(w, "ok")
}
