package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"prioritystar/internal/obs"
	"prioritystar/internal/spec"
)

// fastSpec is a sub-second sweep; seed varies the fingerprint.
func fastSpec(seed int) []byte {
	return []byte(fmt.Sprintf(`{
		"id": "t-fast", "dims": [4, 4], "rhos": [0.3],
		"broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}],
		"warmup": 50, "measure": 400, "drain": 100,
		"reps": 2, "seed": %d
	}`, seed))
}

// mediumSpec runs for a few hundred milliseconds — long enough for a test
// to observe the running state and per-replication progress events.
func mediumSpec(seed int) []byte {
	return []byte(fmt.Sprintf(`{
		"id": "t-medium", "dims": [8, 8], "rhos": [0.3],
		"broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}],
		"warmup": 100, "measure": 20000, "drain": 100,
		"reps": 4, "seed": %d
	}`, seed))
}

// slowSpec runs for a few seconds on one worker slot.
func slowSpec(seed int) []byte {
	return []byte(fmt.Sprintf(`{
		"id": "t-slow", "dims": [8, 8], "rhos": [0.8],
		"broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}],
		"warmup": 100, "measure": 300000, "drain": 100,
		"reps": 1, "seed": %d
	}`, seed))
}

// newTestServer wires a server to an httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, NewClient(hs.URL)
}

// waitState polls until the job reaches state (or any terminal state when
// terminal is wanted).
func waitState(t *testing.T, c *Client, id, state string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Get(context.Background(), id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if st.State == state {
			return *st
		}
		if st.Terminal() {
			t.Fatalf("job %s ended in %q (err %q) while waiting for %q", id, st.State, st.Error, state)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, state)
	return JobStatus{}
}

// TestEndToEndCacheHitByteIdentical is the acceptance-criteria walk:
// submit -> stream to completion -> re-submit the same spec -> the second
// response comes from the cache, byte-identical, with the hit counter
// bumped and no second simulation executed.
func TestEndToEndCacheHitByteIdentical(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2, QueueCap: 4})
	ctx := context.Background()

	st, err := c.SubmitJSON(ctx, mediumSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached || st.Deduped {
		t.Fatalf("first submission flagged cached/deduped: %+v", st)
	}

	// Follow the SSE stream to completion; expect per-replication progress.
	var events []JobStatus
	final, err := c.Watch(ctx, st.ID, func(ev JobStatus) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("job ended %q (err %q)", final.State, final.Error)
	}
	if len(events) < 2 {
		t.Fatalf("SSE stream delivered %d events, want >= 2 (progress + terminal)", len(events))
	}
	if final.Done != final.Total || final.Total != 4 {
		t.Fatalf("progress = %d/%d, want 4/4", final.Done, final.Total)
	}
	body1, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Re-submit the identical spec (different id label to prove labels are
	// not part of the content address would be a different test; here the
	// bytes are literally the same).
	st2, err := c.SubmitJSON(ctx, mediumSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.State != StateDone {
		t.Fatalf("second submission not served from cache: %+v", st2)
	}
	if st2.ID == st.ID {
		t.Fatalf("cache hit reused the original job id")
	}
	if st2.Fingerprint != st.Fingerprint {
		t.Fatalf("fingerprint moved: %s -> %s", st.Fingerprint, st2.Fingerprint)
	}
	body2, err := c.Result(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cache hit is not byte-identical:\n%s\n%s", body1, body2)
	}

	m := s.Metrics()
	if got := m.Counter("cache_hits"); got != 1 {
		t.Errorf("cache_hits = %d, want 1", got)
	}
	if got := m.Counter("sim_runs"); got != 1 {
		t.Errorf("sim_runs = %d, want 1 (the cache hit must not re-simulate)", got)
	}
	snap, err := c.MetricsSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["cache_hits"] != 1 {
		t.Errorf("/metrics cache_hits = %d, want 1", snap.Counters["cache_hits"])
	}
}

// TestConcurrentDuplicatesRunOnce: many simultaneous submissions of one
// spec must coalesce onto a single simulation (single-flight), whether each
// landed on the in-flight job or, late, on the cache.
func TestConcurrentDuplicatesRunOnce(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2, QueueCap: 8})
	ctx := context.Background()

	const n = 8
	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.SubmitJSON(ctx, fastSpec(2))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for _, id := range ids {
		if st, err := c.Watch(ctx, id, nil); err != nil || st.State != StateDone {
			t.Fatalf("job %s: %v %+v", id, err, st)
		}
	}
	if got := s.Metrics().Counter("sim_runs"); got != 1 {
		t.Fatalf("sim_runs = %d, want exactly 1 for %d duplicate submissions", got, n)
	}
}

// TestQueueFullBackpressure: with one worker busy and a one-slot queue, a
// third distinct job must be refused with 429 and a Retry-After hint.
func TestQueueFullBackpressure(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, QueueCap: 1, SlotsPerJob: 1})
	c.Retry = RetryPolicy{} // the 429 must surface, not be retried away
	ctx := context.Background()

	a, err := c.SubmitJSON(ctx, slowSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, a.ID, StateRunning) // worker occupied, queue empty

	b, err := c.SubmitJSON(ctx, slowSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	if b.State != StateQueued {
		t.Fatalf("second job state = %q, want queued", b.State)
	}

	// Queue now full: the next distinct submission must bounce.
	resp, err := http.Post(c.Base+"/v1/jobs", "application/json", bytes.NewReader(slowSpec(12)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}
	if _, err := c.SubmitJSON(ctx, slowSpec(12)); !IsQueueFull(err) {
		t.Fatalf("client error = %v, want queue-full", err)
	}

	// A duplicate of the running job must still coalesce, not bounce.
	dup, err := c.SubmitJSON(ctx, slowSpec(10))
	if err != nil || !dup.Deduped || dup.ID != a.ID {
		t.Fatalf("duplicate of running job: %+v, %v", dup, err)
	}

	// Clean up without burning CPU on the slow sims.
	if _, err := c.Cancel(ctx, a.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, b.ID); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDrainsAndCachePersists: Shutdown (the SIGTERM path in
// starsimd) must finish in-flight jobs, persist their results, and a
// restarted daemon on the same cache file must answer the same spec from
// cache, byte-identically.
func TestShutdownDrainsAndCachePersists(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "cache.jsonl")
	metrics := &obs.MetricSet{}
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 4, CachePath: cachePath, Metrics: metrics})
	ctx := context.Background()

	st, err := c.SubmitJSON(ctx, fastSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	// Shutdown races the tiny job: whether it is queued or running, drain
	// must complete it, not drop it.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	got, ok := s.Job(st.ID)
	if !ok || got.State != StateDone {
		t.Fatalf("after drain job = %+v, want done", got)
	}
	body1 := jobResult(t, s, st.ID)

	// Submissions after drain must be refused.
	if _, err := s.Submit(mustSpec(t, fastSpec(4))); err != errDraining {
		t.Fatalf("submit while draining = %v, want errDraining", err)
	}

	// "Restart": a fresh daemon over the same cache journal.
	s2, c2 := newTestServer(t, Config{Workers: 1, QueueCap: 4, CachePath: cachePath})
	st2, err := c2.SubmitJSON(ctx, fastSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Fatalf("restarted daemon missed its persisted cache: %+v", st2)
	}
	body2, err := c2.Result(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("result changed across restart:\n%s\n%s", body1, body2)
	}
	if got := s2.Metrics().Counter("sim_runs"); got != 0 {
		t.Fatalf("restarted daemon simulated %d times, want 0", got)
	}
	if err := s2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDrainWhileRunning pins the "SIGTERM drains in-flight jobs" half: a
// job observed running when Shutdown starts is completed, not killed.
func TestDrainWhileRunning(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	ctx := context.Background()
	st, err := c.SubmitJSON(ctx, mediumSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, st.ID, StateRunning)
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Job(st.ID); got.State != StateDone {
		t.Fatalf("drained job state = %q, want done", got.State)
	}
}

// TestBadSpecRejected: malformed and invalid specs answer 400 without
// touching the queue.
func TestBadSpecRejected(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	ctx := context.Background()
	for name, body := range map[string]string{
		"not json":      `{"dims": [4,4`,
		"unknown field": `{"dims": [4,4], "bogus": 1}`,
		"no schemes":    `{"id": "x", "dims": [4,4], "rhos": [0.3], "reps": 1, "measure": 100, "schemes": []}`,
		"bad scheme":    `{"id": "x", "dims": [4,4], "rhos": [0.3], "reps": 1, "measure": 100, "schemes": [{"name": "nope"}]}`,
	} {
		_, err := c.SubmitJSON(ctx, []byte(body))
		ae, ok := err.(*apiError)
		if !ok || ae.Code != http.StatusBadRequest {
			t.Errorf("%s: err = %v, want HTTP 400", name, err)
		}
	}
	if got := s.Metrics().Counter("jobs_queued"); got != 0 {
		t.Fatalf("bad specs enqueued %d jobs", got)
	}
}

// TestUnknownJob404 covers the status, result, events, and cancel routes.
func TestUnknownJob404(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := c.Get(ctx, "nope"); err == nil {
		t.Fatal("Get unknown job succeeded")
	}
	if _, err := c.Result(ctx, "nope"); err == nil {
		t.Fatal("Result unknown job succeeded")
	}
	if _, err := c.Cancel(ctx, "nope"); err == nil {
		t.Fatal("Cancel unknown job succeeded")
	}
}

// TestStartBindsAndServes exercises the real listener path (Start/Addr)
// plus healthz/readyz.
func TestStartBindsAndServes(t *testing.T) {
	s, err := New(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() != addr {
		t.Fatalf("Addr() = %q, want %q", s.Addr(), addr)
	}
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// jobResult digs a finished job's bytes out of the server.
func jobResult(t *testing.T, s *Server, id string) []byte {
	t.Helper()
	j, ok := s.mgr.get(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil {
		t.Fatalf("job %s has no result", id)
	}
	return j.result
}

// mustSpec decodes raw spec JSON.
func mustSpec(t *testing.T, b []byte) *spec.Experiment {
	t.Helper()
	var e spec.Experiment
	if err := json.Unmarshal(b, &e); err != nil {
		t.Fatal(err)
	}
	return &e
}
