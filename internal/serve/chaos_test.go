package serve

// Chaos coverage for the durability layer, in-process: WAL replay and
// re-enqueue, quarantine of poison jobs (live and across simulated
// crashes), torn WAL tails, and lenient cache loading. The companion
// subprocess suite in cmd/starsimd kills a real daemon with SIGKILL; these
// tests fabricate the on-disk state a crash leaves behind and pin the
// recovery semantics precisely.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"prioritystar/internal/journal"
	"prioritystar/internal/sim"
)

// poisonSpec fails inside the sweep on every attempt: it asks for more
// random link faults than a 4x4 torus has links, which fault validation
// rejects at run time (not at submit time, where only syntax is checked).
func poisonSpec(seed int) []byte {
	return []byte(fmt.Sprintf(`{
		"id": "t-poison", "dims": [4, 4], "rhos": [0.3],
		"broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}],
		"warmup": 10, "measure": 100, "drain": 10,
		"reps": 1, "seed": %d,
		"faults": "perm:999"
	}`, seed))
}

// writeWAL fabricates the WAL a crashed daemon would leave behind.
func writeWAL(t *testing.T, path string, recs []walRecord) {
	t.Helper()
	w, err := journal.Create(path, walMagic, sim.EngineVersion)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALRecoveryReenqueues: jobs accepted by a crashed daemon come back
// under their original IDs, run to completion, and land in the cache; a
// job whose terminal record made it into the WAL stays terminal and is not
// re-run.
func TestWALRecoveryReenqueues(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "jobs.wal")
	writeWAL(t, walPath, []walRecord{
		{Op: walOpAccept, ID: "j000004", Spec: fastSpec(40)},
		{Op: walOpAccept, ID: "j000007", Spec: fastSpec(41)},
		{Op: walOpAttempt, ID: "j000007", Attempt: 1},
		{Op: walOpAccept, ID: "j000009", Spec: fastSpec(42)},
		{Op: StateCanceled, ID: "j000009"}, // terminal before the crash
	})

	s, c := newTestServer(t, Config{Workers: 2, QueueCap: 4, WALPath: walPath})
	ctx := context.Background()

	for _, id := range []string{"j000004", "j000007"} {
		st, err := c.Watch(ctx, id, nil)
		if err != nil {
			t.Fatalf("watch recovered job %s: %v", id, err)
		}
		if st.State != StateDone {
			t.Fatalf("recovered job %s ended %q (err %q)", id, st.State, st.Error)
		}
	}
	if _, ok := s.Job("j000009"); ok {
		t.Fatal("terminal WAL job was resurrected")
	}
	if got := s.Metrics().Counter("jobs_recovered"); got != 2 {
		t.Fatalf("jobs_recovered = %d, want 2", got)
	}
	// The crashed job's attempt marker survived: its first post-recovery
	// attempt is number 2.
	st, _ := s.Job("j000007")
	if st.Attempt != 2 {
		t.Fatalf("recovered job attempt = %d, want 2 (one before the crash)", st.Attempt)
	}
	// A fresh submission must not collide with recovered IDs.
	fresh, err := c.SubmitJSON(ctx, fastSpec(43))
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID <= "j000009" {
		t.Fatalf("fresh job id %s not past recovered ids", fresh.ID)
	}
	if _, err := c.Watch(ctx, fresh.ID, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestWALRecoveryServesFromCache: a crash that hit between the cache
// append and the WAL terminal record must complete the job from the cache
// on recovery, not re-simulate it.
func TestWALRecoveryServesFromCache(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "jobs.wal")
	cachePath := filepath.Join(dir, "cache.jsonl")

	// Run the job once to get its real result into a cache journal.
	s1, c1 := newTestServer(t, Config{Workers: 1, CachePath: cachePath})
	st, err := c1.SubmitJSON(context.Background(), fastSpec(50))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Watch(context.Background(), st.ID, nil); err != nil {
		t.Fatal(err)
	}
	body1 := jobResult(t, s1, st.ID)
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	writeWAL(t, walPath, []walRecord{{Op: walOpAccept, ID: "j000002", Spec: fastSpec(50)}})
	s2, c2 := newTestServer(t, Config{Workers: 1, WALPath: walPath, CachePath: cachePath})
	got, ok := s2.Job("j000002")
	if !ok || got.State != StateDone || !got.Cached {
		t.Fatalf("recovered job = %+v, want done from cache", got)
	}
	body2, err := c2.Result(context.Background(), "j000002")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("recovered cache result differs from the original run")
	}
	if got := s2.Metrics().Counter("sim_runs"); got != 0 {
		t.Fatalf("recovery re-simulated %d times, want 0", got)
	}
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestWALQuarantineOnRecovery: a job whose WAL shows its retry budget
// already spent (it kept crashing the daemon) is quarantined at startup
// instead of re-enqueued — the crash-loop breaker.
func TestWALQuarantineOnRecovery(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "jobs.wal")
	writeWAL(t, walPath, []walRecord{
		{Op: walOpAccept, ID: "j000001", Spec: fastSpec(60)},
		{Op: walOpAttempt, ID: "j000001", Attempt: 1},
		{Op: walOpAttempt, ID: "j000001", Attempt: 2},
		{Op: walOpAttempt, ID: "j000001", Attempt: 3},
	})
	// RetryBudget 2 (the default): 3 attempts = budget spent.
	s, _ := newTestServer(t, Config{Workers: 1, WALPath: walPath})
	st, ok := s.Job("j000001")
	if !ok || st.State != StateQuarantined {
		t.Fatalf("job = %+v, want quarantined on recovery", st)
	}
	if got := s.Metrics().Counter("jobs_quarantined"); got != 1 {
		t.Fatalf("jobs_quarantined = %d, want 1", got)
	}
	if got := s.Metrics().Counter("sim_runs"); got != 0 {
		t.Fatalf("quarantined job simulated %d times, want 0", got)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestPoisonJobQuarantinedLive: a job that fails every attempt burns its
// retry budget (with backoff) and lands in quarantine, visible in the list
// and the metrics; a job with retries disabled fails outright.
func TestPoisonJobQuarantinedLive(t *testing.T) {
	s, c := newTestServer(t, Config{
		Workers: 1, QueueCap: 4,
		RetryBudget: 1, RetryBackoff: time.Millisecond,
	})
	ctx := context.Background()

	st, err := c.SubmitJSON(ctx, poisonSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Watch(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateQuarantined {
		t.Fatalf("poison job ended %q, want quarantined", final.State)
	}
	if final.Attempt != 2 {
		t.Fatalf("poison job attempts = %d, want 2 (budget 1 retry)", final.Attempt)
	}
	if final.Error == "" {
		t.Fatal("quarantined job lost its error")
	}
	if got := s.Metrics().Counter("jobs_quarantined"); got != 1 {
		t.Fatalf("jobs_quarantined = %d, want 1", got)
	}
	if got := s.Metrics().Counter("job_retries"); got != 1 {
		t.Fatalf("job_retries = %d, want 1", got)
	}
	// Quarantine must not wedge the worker: a good job still runs.
	ok, err := c.SubmitJSON(ctx, fastSpec(61))
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := c.Watch(ctx, ok.ID, nil); err != nil || fin.State != StateDone {
		t.Fatalf("job after quarantine: %v %+v", err, fin)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestPoisonJobFailsWithRetriesDisabled: RetryBudget < 0 restores plain
// single-attempt failure semantics.
func TestPoisonJobFailsWithRetriesDisabled(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, RetryBudget: -1})
	ctx := context.Background()
	st, err := c.SubmitJSON(ctx, poisonSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Watch(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed || final.Attempt != 1 {
		t.Fatalf("job = %+v, want failed on attempt 1", final)
	}
	if got := s.Metrics().Counter("jobs_quarantined"); got != 0 {
		t.Fatalf("jobs_quarantined = %d, want 0 with retries disabled", got)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestTornWALTailRecovered: a WAL whose final record was torn by the crash
// still recovers every intact record.
func TestTornWALTailRecovered(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "jobs.wal")
	writeWAL(t, walPath, []walRecord{
		{Op: walOpAccept, ID: "j000001", Spec: fastSpec(70)},
		{Op: walOpAccept, ID: "j000002", Spec: fastSpec(71)},
	})
	b, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s, c := newTestServer(t, Config{Workers: 2, WALPath: walPath})
	if st, err := c.Watch(context.Background(), "j000001", nil); err != nil || st.State != StateDone {
		t.Fatalf("intact WAL job: %v %+v", err, st)
	}
	if _, ok := s.Job("j000002"); ok {
		t.Fatal("torn WAL record produced a job")
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestWALEngineMismatchStartsFresh: a WAL from a different engine version
// is discarded (its fingerprints name different computations), not
// replayed and not fatal.
func TestWALEngineMismatchStartsFresh(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "jobs.wal")
	w, err := journal.Create(walPath, walMagic, "some-other-engine")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRecord{Op: walOpAccept, ID: "j000001", Spec: fastSpec(80)}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	s, _ := newTestServer(t, Config{Workers: 1, WALPath: walPath})
	if _, ok := s.Job("j000001"); ok {
		t.Fatal("stale-engine WAL job was resurrected")
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestCacheSkipsCorruptRecords: one corrupt line in the cache journal is
// skipped and logged; every record around it keeps serving.
func TestCacheSkipsCorruptRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	w, err := journal.Create(path, cacheMagic, sim.EngineVersion)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(cacheRecord{Key: "ps1-aaa", Result: json.RawMessage(`{"a":1}`)})
	w.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("garbage{{{\n")
	f.Close()
	w2, err := journal.OpenAppend(path, fileSizeOf(t, path))
	if err != nil {
		t.Fatal(err)
	}
	w2.Append(cacheRecord{Key: "ps1-bbb", Result: json.RawMessage(`{"b":2}`)})
	w2.Close()

	var logged []string
	c, err := openCache(path, sim.EngineVersion, func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	if _, ok := c.get("ps1-aaa"); !ok {
		t.Fatal("record before the corruption was lost")
	}
	if _, ok := c.get("ps1-bbb"); !ok {
		t.Fatal("record after the corruption was lost")
	}
	if c.skipped != 1 {
		t.Fatalf("skipped = %d, want 1", c.skipped)
	}
	if len(logged) == 0 {
		t.Fatal("corrupt cache record was not logged")
	}
	// Appending after the lenient load must not clobber the good records.
	if err := c.put("ps1-ccc", []byte(`{"c":3}`)); err != nil {
		t.Fatal(err)
	}
	c.close()
	c2, err := openCache(path, sim.EngineVersion, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.close()
	if c2.len() != 3 {
		t.Fatalf("reloaded cache has %d entries, want 3", c2.len())
	}
}

// TestSkippedRecordsSurfaceAsMetric: lenient journal loads count their
// dropped records into the journal_records_skipped counter so operators can
// alarm on silent cache/WAL decay instead of grepping logs. The counter is
// registered even when zero.
func TestSkippedRecordsSurfaceAsMetric(t *testing.T) {
	dir := t.TempDir()
	cachePath := filepath.Join(dir, "cache.jsonl")
	walPath := filepath.Join(dir, "wal.jsonl")

	// A cache journal with one good and one corrupt record.
	w, err := journal.Create(cachePath, cacheMagic, sim.EngineVersion)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(cacheRecord{Key: "ps1-aaa", Result: json.RawMessage(`{"a":1}`)})
	w.Close()
	f, err := os.OpenFile(cachePath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("garbage{{{\n")
	f.Close()
	w2, err := journal.OpenAppend(cachePath, fileSizeOf(t, cachePath))
	if err != nil {
		t.Fatal(err)
	}
	w2.Append(cacheRecord{Key: "ps1-bbb", Result: json.RawMessage(`{"b":2}`)})
	w2.Close()

	// A WAL with one interior corrupt line between valid records.
	jw, err := journal.Create(walPath, walMagic, sim.EngineVersion)
	if err != nil {
		t.Fatal(err)
	}
	jw.Append(walRecord{Op: walOpAccept, ID: "j000001", Fingerprint: "ps1-x", Spec: json.RawMessage(`{}`)})
	jw.Close()
	f, err = os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("%%%not json%%%\n")
	f.Close()
	jw2, err := journal.OpenAppend(walPath, fileSizeOf(t, walPath))
	if err != nil {
		t.Fatal(err)
	}
	jw2.Append(walRecord{Op: StateCanceled, ID: "j000001"})
	jw2.Close()

	s, _ := newTestServer(t, Config{Workers: 1, CachePath: cachePath, WALPath: walPath})
	defer s.Shutdown(context.Background())
	snap := s.Metrics().Snapshot()
	if got := snap.Counters["journal_records_skipped"]; got != 2 {
		t.Fatalf("journal_records_skipped = %d, want 2 (one cache + one WAL)", got)
	}

	// And on pristine journals the counter still exists, at zero.
	dir2 := t.TempDir()
	s2, _ := newTestServer(t, Config{
		Workers:   1,
		CachePath: filepath.Join(dir2, "cache.jsonl"),
		WALPath:   filepath.Join(dir2, "wal.jsonl"),
	})
	defer s2.Shutdown(context.Background())
	snap2 := s2.Metrics().Snapshot()
	if got, ok := snap2.Counters["journal_records_skipped"]; !ok || got != 0 {
		t.Fatalf("journal_records_skipped = %d (present %t), want 0 and registered", got, ok)
	}
}

func fileSizeOf(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}
