package serve

// RetryPolicy coverage: the jittered backoff math, Retry-After precedence,
// budget exhaustion surfacing the last error, context cancellation, and
// transport-error recovery — the "self-healing client" half of the
// durability story, pinned against scripted HTTP servers.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// retryClient builds a client for url with a deterministic policy: rnd
// pinned to 1.0 (delays hit the jitter ceiling exactly) and sleeps recorded
// instead of slept.
func retryClient(url string, retries int, slept *[]time.Duration) *Client {
	c := NewClient(url)
	c.Retry = RetryPolicy{
		MaxRetries: retries,
		BaseDelay:  100 * time.Millisecond,
		MaxDelay:   5 * time.Second,
		rnd:        func() float64 { return 1.0 },
		sleep: func(ctx context.Context, d time.Duration) error {
			*slept = append(*slept, d)
			return ctx.Err()
		},
	}
	return c
}

// TestRetryEventuallySucceeds: transient 503s are retried away and the call
// succeeds, with one jittered backoff per failure.
func TestRetryEventuallySucceeds(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"restarting"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"jobs":[]}`))
	}))
	defer hs.Close()

	var slept []time.Duration
	c := retryClient(hs.URL, 4, &slept)
	if _, err := c.List(context.Background()); err != nil {
		t.Fatalf("List: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
	// rnd pinned to 1.0: delays are exactly BaseDelay<<n.
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("backoff delays = %v, want %v", slept, want)
	}
}

// TestRetryHonorsRetryAfter: a server-sent Retry-After overrides the
// jittered backoff, capped at MaxDelay.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "2")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
		case 2:
			w.Header().Set("Retry-After", "3600") // must be capped at MaxDelay
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
		default:
			w.Write([]byte(`{"jobs":[]}`))
		}
	}))
	defer hs.Close()

	var slept []time.Duration
	c := retryClient(hs.URL, 4, &slept)
	if _, err := c.List(context.Background()); err != nil {
		t.Fatalf("List: %v", err)
	}
	want := []time.Duration{2 * time.Second, 5 * time.Second}
	if len(slept) != 2 || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("Retry-After delays = %v, want %v", slept, want)
	}
}

// TestRetryJitterBounds: with a real rnd every delay must land in
// [0, min(MaxDelay, BaseDelay<<n)].
func TestRetryJitterBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	for retry := 0; retry < 10; retry++ {
		ceil := min(p.BaseDelay<<retry, p.MaxDelay)
		for i := 0; i < 100; i++ {
			if d := p.delay(retry, -1); d < 0 || d > ceil {
				t.Fatalf("delay(retry=%d) = %v, outside [0, %v]", retry, d, ceil)
			}
		}
	}
}

// TestRetryBudgetExhaustionSurfacesLastError: when every attempt fails, the
// final error is the last response — still recognizable by IsQueueFull —
// and exactly MaxRetries+1 requests were made.
func TestRetryBudgetExhaustionSurfacesLastError(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer hs.Close()

	var slept []time.Duration
	c := retryClient(hs.URL, 2, &slept)
	_, err := c.SubmitJSON(context.Background(), []byte(`{}`))
	if !IsQueueFull(err) {
		t.Fatalf("err = %v, want the final 429 surfaced as queue-full", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want MaxRetries+1 = 3", got)
	}
}

// TestRetryStopsOnContextCancel: a canceled context ends the retry loop
// immediately with ctx.Err(), not after the budget drains.
func TestRetryStopsOnContextCancel(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"nope"}`, http.StatusServiceUnavailable)
	}))
	defer hs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := NewClient(hs.URL)
	c.Retry = RetryPolicy{
		MaxRetries: 100,
		BaseDelay:  time.Millisecond,
		MaxDelay:   time.Millisecond,
		sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // cancel during the first backoff
			return ctx.Err()
		},
	}
	_, err := c.List(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests after cancel, want 1", got)
	}
}

// TestRetryTransportErrors: a connection torn down mid-response is retried
// like a 5xx, so a daemon restart between request and response heals.
func TestRetryTransportErrors(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			panic(http.ErrAbortHandler) // slam the connection shut
		}
		w.Write([]byte(`{"jobs":[]}`))
	}))
	defer hs.Close()

	var slept []time.Duration
	c := retryClient(hs.URL, 2, &slept)
	if _, err := c.List(context.Background()); err != nil {
		t.Fatalf("List after transport error: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
}

// TestZeroRetryPolicyDisablesRetries: the zero value makes exactly one
// request, preserving pre-retry behavior for tests and impatient callers.
func TestZeroRetryPolicyDisablesRetries(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"nope"}`, http.StatusServiceUnavailable)
	}))
	defer hs.Close()

	c := NewClient(hs.URL)
	c.Retry = RetryPolicy{}
	if _, err := c.List(context.Background()); err == nil {
		t.Fatal("List succeeded against a 503-only server")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}
