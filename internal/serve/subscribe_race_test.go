package serve

// Regression test for a pub/sub race the load harness exposed: subscribe()
// used to deliver the initial snapshot after releasing the job lock, so a
// concurrent terminal update() could close the just-registered channel
// while the snapshot send was in flight — a data race and, in the worst
// interleaving, a send on a closed channel. Run under -race (the chaos
// target matches this file via "Race").

import (
	"sync"
	"testing"
)

// TestSubscribeRacesTerminalUpdate hammers the exact interleaving: many
// goroutines subscribe to a job while another drives it to a terminal
// state. Every subscriber must see its snapshot first and the stream must
// end with a closed channel after a terminal event — never a panic, never
// a torn send.
func TestSubscribeRacesTerminalUpdate(t *testing.T) {
	const rounds, subscribers = 200, 8
	for round := 0; round < rounds; round++ {
		j := &job{id: "race", status: JobStatus{ID: "race", State: StateRunning}}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < subscribers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				ch := j.subscribe()
				first := true
				var last statusEvent
				for ev := range ch {
					if first && ev.st.State != StateRunning && !ev.st.Terminal() {
						t.Errorf("first event in state %q, want running or terminal", ev.st.State)
					}
					first = false
					last = ev
				}
				if first {
					t.Error("channel closed before the snapshot was delivered")
				}
				if !last.st.Terminal() {
					t.Errorf("stream ended on non-terminal state %q", last.st.State)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			j.update(func(st *JobStatus) { st.Done = 1; st.Total = 1 })
			j.update(func(st *JobStatus) { st.State = StateDone })
		}()
		close(start)
		wg.Wait()
	}
}
