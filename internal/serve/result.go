package serve

// The result document: the byte-exact payload a job stores in the
// content-addressed cache and GET /v1/jobs/{id}/result returns. It is a
// deterministic flattening of sweep.Result — struct marshalling fixes the
// key order and replications aggregate in (scheme, rho, rep) index order —
// so running the same fingerprint twice produces the same bytes, and a
// cache hit is indistinguishable from a fresh run.

import (
	"encoding/json"
	"math"

	"prioritystar/internal/spec"
	"prioritystar/internal/sweep"
)

// nullFloat maps non-finite values to JSON null (encoding/json rejects NaN
// and the infinities; a drained cell's mean can be NaN).
type nullFloat float64

// MarshalJSON implements json.Marshaler.
func (f nullFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// PointDoc is one (scheme, rho) cell of a result document.
type PointDoc struct {
	Rho        float64     `json:"rho"`
	Reception  nullFloat   `json:"reception"`
	Broadcast  nullFloat   `json:"broadcast"`
	Unicast    nullFloat   `json:"unicast"`
	HighWait   nullFloat   `json:"highWait"`
	LowWait    nullFloat   `json:"lowWait"`
	AvgUtil    nullFloat   `json:"avgUtil"`
	MaxDimUtil nullFloat   `json:"maxDimUtil"`
	DimUtil    []nullFloat `json:"dimUtil,omitempty"`
	// ReceptionCI is the 95% confidence half-width of the reception mean.
	// The remaining CIs cover the other delay metrics; the surrogate index
	// folds them into its interpolation error bounds.
	ReceptionCI nullFloat `json:"receptionCI"`
	BroadcastCI nullFloat `json:"broadcastCI"`
	UnicastCI   nullFloat `json:"unicastCI"`
	HighWaitCI  nullFloat `json:"highWaitCI"`
	LowWaitCI   nullFloat `json:"lowWaitCI"`

	GeneratedBroadcasts  int64  `json:"generatedBroadcasts"`
	IncompleteBroadcasts int64  `json:"incompleteBroadcasts"`
	UnstableReps         int    `json:"unstableReps,omitempty"`
	DivergedReps         int    `json:"divergedReps,omitempty"`
	FailedReps           int    `json:"failedReps,omitempty"`
	Error                string `json:"error,omitempty"`
}

// SeriesDoc is one scheme's curve.
type SeriesDoc struct {
	Scheme string     `json:"scheme"`
	Points []PointDoc `json:"points"`
}

// ResultDoc is the complete result payload for one job.
type ResultDoc struct {
	Fingerprint string           `json:"fingerprint"`
	Engine      string           `json:"engine"`
	Spec        *spec.Experiment `json:"spec"`
	Series      []SeriesDoc      `json:"series"`
	// Partial is true when any cell had failed or diverged replications —
	// the same condition that makes starsim exit non-zero.
	Partial bool `json:"partial,omitempty"`
}

// encodeResult flattens a completed sweep into the canonical result bytes.
func encodeResult(fingerprint, engine string, res *sweep.Result) ([]byte, error) {
	doc := ResultDoc{
		Fingerprint: fingerprint,
		Engine:      engine,
		Spec:        spec.FromSweep(res.Exp),
	}
	for _, s := range res.Series {
		sd := SeriesDoc{Scheme: s.Scheme.Name}
		for _, p := range s.Points {
			pd := PointDoc{
				Rho:         p.Rho,
				Reception:   nullFloat(p.Reception.Mean()),
				Broadcast:   nullFloat(p.Broadcast.Mean()),
				Unicast:     nullFloat(p.Unicast.Mean()),
				HighWait:    nullFloat(p.HighWait.Mean()),
				LowWait:     nullFloat(p.LowWait.Mean()),
				AvgUtil:     nullFloat(p.AvgUtil.Mean()),
				MaxDimUtil:  nullFloat(p.MaxDimUtil.Mean()),
				ReceptionCI: nullFloat(p.Reception.HalfWidth95()),
				BroadcastCI: nullFloat(p.Broadcast.HalfWidth95()),
				UnicastCI:   nullFloat(p.Unicast.HalfWidth95()),
				HighWaitCI:  nullFloat(p.HighWait.HalfWidth95()),
				LowWaitCI:   nullFloat(p.LowWait.HalfWidth95()),

				GeneratedBroadcasts:  p.GeneratedBroadcasts,
				IncompleteBroadcasts: p.IncompleteBroadcasts,
				UnstableReps:         p.UnstableReps,
				DivergedReps:         p.DivergedReps,
				FailedReps:           p.FailedReps,
				Error:                p.Error,
			}
			for i := range p.DimUtil {
				pd.DimUtil = append(pd.DimUtil, nullFloat(p.DimUtil[i].Mean()))
			}
			if p.FailedReps > 0 || p.DivergedReps > 0 {
				doc.Partial = true
			}
			sd.Points = append(sd.Points, pd)
		}
		doc.Series = append(doc.Series, sd)
	}
	// No trailing newline: these bytes are embedded as a json.RawMessage in
	// the cache journal, whose round-trip compacts whitespace — the bytes
	// must survive persist/reload unchanged for cache hits to stay
	// byte-identical across restarts.
	return json.Marshal(doc)
}
