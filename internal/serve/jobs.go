package serve

// The job manager: a bounded FIFO queue feeding a fixed pool of workers,
// with single-flight deduplication on the spec fingerprint. Submitting a
// spec whose fingerprint is cached completes instantly from the cache;
// submitting one that is already queued or running returns the in-flight
// job instead of enqueueing a second simulation; everything else joins the
// queue or — when the queue is full — is refused with errQueueFull so the
// HTTP layer can answer 429 with a Retry-After hint.
//
// Failure handling: each job has a retry budget. A failing attempt backs
// off exponentially and re-runs (resuming from its checkpoint journal when
// the WAL is enabled); a job that exhausts the budget moves to the
// quarantined terminal state instead of crash-looping. Every accepted spec,
// attempt start, and terminal transition is journaled to the WAL so a
// killed daemon recovers its unfinished jobs on restart.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"prioritystar/internal/forecast"
	"prioritystar/internal/spec"
	"prioritystar/internal/surrogate"
	"prioritystar/internal/sweep"
)

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
	// StateQuarantined marks a job that failed on every attempt of its
	// retry budget (or kept crashing the daemon): terminal, kept visible so
	// operators can inspect it, and never retried again.
	StateQuarantined = "quarantined"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	errQueueFull = errors.New("serve: job queue is full")
	errDraining  = errors.New("serve: daemon is draining")
)

// JobStatus is the wire form of a job's state, returned by the submit,
// get, and list endpoints and streamed over SSE.
type JobStatus struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Fingerprint string `json:"fingerprint"`
	// Cached marks a submission answered from the result cache without
	// running anything; Deduped marks one coalesced onto an in-flight job;
	// Approx marks one answered by the analytic surrogate (also without
	// running anything — the result document carries explicit error bounds).
	Cached  bool `json:"cached,omitempty"`
	Deduped bool `json:"deduped,omitempty"`
	Approx  bool `json:"approx,omitempty"`
	// Done/Total track replication progress while running.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Attempt is the 1-based attempt number (greater than 1 after retries;
	// counts attempts in earlier daemon processes for recovered jobs).
	Attempt int `json:"attempt,omitempty"`
	// ResumedReps counts replications replayed from the checkpoint journal
	// instead of re-simulated, on the attempt that finished the job.
	ResumedReps int `json:"resumedReps,omitempty"`
	// SlotsPerSec is the executed job's simulation throughput (total
	// simulated slots across replications over wall-clock run time).
	SlotsPerSec float64 `json:"slotsPerSec,omitempty"`
	Partial     bool    `json:"partial,omitempty"`
	Error       string  `json:"error,omitempty"`

	SubmittedAt string `json:"submittedAt,omitempty"`
	StartedAt   string `json:"startedAt,omitempty"`
	FinishedAt  string `json:"finishedAt,omitempty"`
}

// Terminal reports whether the state is final.
func (s *JobStatus) Terminal() bool {
	return s.State == StateDone || s.State == StateFailed ||
		s.State == StateCanceled || s.State == StateQuarantined
}

// statusEvent pairs a status snapshot with its per-job sequence number;
// the SSE layer renders the sequence as the event ID so a reconnecting
// client (Last-Event-ID) can suppress the duplicate snapshot.
type statusEvent struct {
	seq int
	st  JobStatus
}

// job is the server-side record of one submission.
type job struct {
	id          string
	fingerprint string
	exp         *sweep.Experiment
	specJSON    []byte // canonical spec document, journaled on accept
	cancel      context.CancelFunc

	mu      sync.Mutex
	attempt int // attempts started, including in crashed daemon processes
	seq     int // status updates so far; SSE event IDs
	status  JobStatus
	result  []byte
	subs    []chan statusEvent
}

// snapshot returns a copy of the current status.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// update mutates the status under the job lock and notifies every
// subscriber. Notification is best-effort per event: a slow subscriber
// misses intermediate progress but always receives the terminal state
// because terminal updates close the channel after a final send.
func (j *job) update(fn func(*JobStatus)) {
	j.mu.Lock()
	fn(&j.status)
	j.seq++
	ev := statusEvent{seq: j.seq, st: j.status}
	subs := j.subs
	if ev.st.Terminal() {
		j.subs = nil
	}
	j.mu.Unlock()
	for _, ch := range subs {
		if ev.st.Terminal() {
			// The terminal state must arrive: make room by dropping the
			// oldest undelivered progress event if the buffer is full.
			for delivered := false; !delivered; {
				select {
				case ch <- ev:
					delivered = true
				default:
					select {
					case <-ch:
					default:
					}
				}
			}
			close(ch)
			continue
		}
		select {
		case ch <- ev:
		default: // slow subscriber: skip this progress event
		}
	}
}

// subscribe registers a status channel. The current status is delivered
// first; if the job is already terminal the channel is closed immediately
// after. The channel has room for the terminal send even when the
// subscriber is not draining progress events.
func (j *job) subscribe() <-chan statusEvent {
	ch := make(chan statusEvent, 16)
	j.mu.Lock()
	ev := statusEvent{seq: j.seq, st: j.status}
	terminal := ev.st.Terminal()
	// Deliver the snapshot before the channel becomes visible to update():
	// it is private and buffered here, so the send cannot block — and once
	// registered, a concurrent terminal update may close it at any time.
	ch <- ev
	if !terminal {
		j.subs = append(j.subs, ch)
	}
	j.mu.Unlock()
	if terminal {
		close(ch)
	}
	return ch
}

// manager owns the queue, the workers, the single-flight table, the WAL,
// and the cache.
type manager struct {
	cfg     Config
	cache   *cache
	wal     *wal   // nil when crash recovery is disabled
	ckptDir string // per-job sweep checkpoints; "" when WAL disabled
	bootID  string // namespaces SSE event IDs across daemon restarts

	mu       sync.Mutex
	draining bool
	seq      int
	jobs     map[string]*job
	order    []string        // submission order, for listing
	active   map[string]*job // fingerprint -> queued/running job

	queue   chan *job
	wg      sync.WaitGroup
	baseCtx context.Context
	stop    context.CancelFunc

	// Surrogate serving and predictive admission (see approx.go). The index
	// and forecaster are mutated under their own locks, not m.mu.
	sur *surrogate.Surrogate
	ix  *surrogate.Index
	fc  *forecast.Forecaster
}

// newManager builds the manager, re-enqueues the jobs recovered from the
// WAL, and starts its workers. maxSeq seeds the job-ID counter past every
// ID the WAL has ever handed out.
func newManager(cfg Config, c *cache, w *wal, ckptDir string, recovered []walJob, maxSeq int) *manager {
	m := &manager{
		cfg:     cfg,
		cache:   c,
		wal:     w,
		ckptDir: ckptDir,
		bootID:  fmt.Sprintf("b%x", time.Now().UnixNano()),
		jobs:    make(map[string]*job),
		active:  make(map[string]*job),
		// Recovered jobs must all fit regardless of the configured cap:
		// they were accepted by a previous process and may not be refused.
		queue: make(chan *job, cfg.QueueCap+len(recovered)),
		seq:   maxSeq,
	}
	m.baseCtx, m.stop = context.WithCancel(context.Background())
	m.initApprox()
	m.recover(recovered)
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// maxAttempts is the total number of attempts a job may consume.
func (m *manager) maxAttempts() int { return m.cfg.RetryBudget + 1 }

// recover re-registers the WAL's unfinished jobs before the workers start:
// a cached fingerprint completes instantly, an exhausted retry budget
// quarantines (the crash-loop breaker), everything else re-enqueues under
// its original ID with its sweep checkpoint ready to resume.
func (m *manager) recover(recovered []walJob) {
	for _, wj := range recovered {
		exp, err := spec.Decode(wj.spec)
		if err == nil {
			err = spec.Stamp(exp)
		}
		if err != nil {
			m.logf("serve: dropping unrecoverable WAL job %s: %v", wj.id, err)
			continue
		}
		if wj.fp != "" && exp.Fingerprint != wj.fp {
			// The spec hashes differently now (it was journaled by an older
			// build with the same engine version): trust the fresh hash.
			m.logf("serve: WAL job %s fingerprint moved %s -> %s", wj.id, wj.fp, exp.Fingerprint)
		}
		j := &job{
			id:          wj.id,
			fingerprint: exp.Fingerprint,
			exp:         exp,
			specJSON:    wj.spec,
			attempt:     wj.attempts,
			status: JobStatus{
				ID:          wj.id,
				State:       StateQueued,
				Fingerprint: exp.Fingerprint,
				Attempt:     wj.attempts,
				Total:       len(exp.Schemes) * len(exp.Rhos) * exp.Reps,
				SubmittedAt: now(),
			},
		}
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)

		// The result may already be cached: the crash hit between the cache
		// append and the WAL's terminal record.
		if body, ok := m.cache.get(j.fingerprint); ok {
			j.result = body
			j.update(func(s *JobStatus) {
				s.State = StateDone
				s.Cached = true
				s.FinishedAt = now()
			})
			m.walTerminal(j)
			m.cfg.Metrics.Add("jobs_recovered", 1)
			continue
		}
		// A job whose attempts are exhausted kept failing (or kept killing
		// the daemon): quarantine instead of crash-looping the recovery.
		if j.attempt >= m.maxAttempts() {
			j.update(func(s *JobStatus) {
				s.State = StateQuarantined
				s.Error = fmt.Sprintf("serve: job did not survive %d attempt(s); quarantined on recovery", j.attempt)
				s.FinishedAt = now()
			})
			m.walTerminal(j)
			m.cfg.Metrics.Add("jobs_quarantined", 1)
			continue
		}
		m.active[j.fingerprint] = j
		m.queue <- j
		m.cfg.Metrics.Add("jobs_recovered", 1)
		m.cfg.Metrics.Add("jobs_queued", 1)
	}
}

// logf forwards to the configured logger.
func (m *manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// now returns the wall-clock timestamp format used in statuses.
func now() string { return time.Now().UTC().Format(time.RFC3339) }

// submit resolves one submission: cache hit, single-flight dedup, or a new
// queued job. The returned status tells the caller which happened.
func (m *manager) submit(exp *sweep.Experiment) (JobStatus, error) {
	fp := exp.Fingerprint
	if fp == "" {
		return JobStatus{}, fmt.Errorf("serve: experiment has no fingerprint")
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return JobStatus{}, errDraining
	}
	m.observeQueue()

	// Content-addressed hit: answer from the cache without running.
	if body, ok := m.cache.get(fp); ok {
		m.cfg.Metrics.Add("cache_hits", 1)
		j := m.newJobLocked(fp, nil)
		j.result = body
		j.status.State = StateDone
		j.status.Cached = true
		j.status.FinishedAt = j.status.SubmittedAt
		return j.status, nil
	}
	m.cfg.Metrics.Add("cache_misses", 1)

	// Single-flight: coalesce onto the identical in-flight job.
	if running, ok := m.active[fp]; ok {
		m.cfg.Metrics.Add("jobs_deduped", 1)
		st := running.snapshot()
		st.Deduped = true
		return st, nil
	}

	// Approx mode: let the analytic surrogate answer without simulating.
	// After the cache and dedup checks so an exact result (present or in
	// flight) always wins over an approximation of it.
	if exp.Approx && !m.cfg.NoApprox {
		if st, ok := m.trySurrogate(exp); ok {
			return st, nil
		}
	}

	// Predictive shed: refuse work the depth forecast says will overflow
	// the queue within the horizon. Only real enqueues are shed — cached,
	// deduped, and surrogate answers consume no queue slot.
	if m.forecastShed() {
		m.cfg.Metrics.Add("forecast_shed", 1)
		return JobStatus{}, errQueueFull
	}

	j := m.newJobLocked(fp, exp)
	// Copy the status before the job becomes visible to a worker: once it
	// is on the queue a worker may mutate it concurrently.
	st := j.status
	select {
	case m.queue <- j:
	default:
		// Queue full: drop the job record and push back.
		delete(m.jobs, j.id)
		m.order = m.order[:len(m.order)-1]
		return JobStatus{}, errQueueFull
	}
	m.active[fp] = j
	m.cfg.Metrics.Add("jobs_queued", 1)
	m.fc.ObserveArrival()
	// High-watermark of the queue: pressure that spikes and drains between
	// /metrics scrapes (an overload burst) stays visible to the harness.
	m.cfg.Metrics.SetMax("queue_depth_peak", float64(len(m.queue)))

	// Journal the acceptance: after this line a crash cannot lose the job.
	if m.wal != nil {
		canon, err := spec.Canonical(exp)
		if err == nil {
			j.specJSON = canon
			err = m.wal.append(walRecord{
				Op: walOpAccept, ID: j.id, Fingerprint: fp,
				Spec: canon, Time: st.SubmittedAt,
			})
		}
		if err != nil {
			m.logf("serve: journaling job %s: %v", j.id, err)
		}
	}
	return st, nil
}

// newJobLocked allocates a job record; the caller holds m.mu.
func (m *manager) newJobLocked(fp string, exp *sweep.Experiment) *job {
	m.seq++
	j := &job{
		id:          fmt.Sprintf("j%06d", m.seq),
		fingerprint: fp,
		exp:         exp,
		status: JobStatus{
			State:       StateQueued,
			Fingerprint: fp,
			SubmittedAt: now(),
		},
	}
	j.status.ID = j.id
	if exp != nil {
		j.status.Total = len(exp.Schemes) * len(exp.Rhos) * exp.Reps
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	return j
}

// get returns a job by ID.
func (m *manager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// list returns every job's status in submission order.
func (m *manager) list() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.get(id); ok {
			out = append(out, j.snapshot())
		}
	}
	return out
}

// cancelJob cancels a queued or running job (best effort: a queued job is
// canceled when a worker picks it up and finds its context dead).
func (m *manager) cancelJob(id string) bool {
	j, ok := m.get(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	cancel := j.cancel
	queued := j.status.State == StateQueued
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	} else if queued {
		// Not started yet: mark so the worker skips it. The update closure
		// re-checks the state under the job lock, so a worker that started
		// the job in the meantime wins and keeps running.
		canceled := false
		j.update(func(s *JobStatus) {
			if s.State == StateQueued {
				s.State = StateCanceled
				s.FinishedAt = now()
				canceled = true
			}
		})
		if canceled {
			m.walTerminal(j)
			m.cfg.Metrics.Add("jobs_canceled", 1)
			m.finish(j)
		}
	}
	return true
}

// queueDepth reports the number of queued-but-unstarted jobs.
func (m *manager) queueDepth() int { return len(m.queue) }

// inflight counts jobs not yet in a terminal state (queued, running, or
// between retry attempts).
func (m *manager) inflight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, j := range m.jobs {
		if st := j.snapshot(); !st.Terminal() {
			n++
		}
	}
	return n
}

// worker drains the queue until drain() closes it.
func (m *manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.run(j)
	}
}

// eventID renders a per-job sequence number as an SSE event ID. The boot
// prefix makes IDs from different daemon processes incomparable, so a
// client reconnecting across a restart never has its events suppressed by
// a stale Last-Event-ID.
func (m *manager) eventID(seq int) string { return fmt.Sprintf("%s-%d", m.bootID, seq) }

// ckptPath is the fingerprint-keyed sweep checkpoint journal for a job
// ("" when the WAL — and with it durable execution — is disabled).
func (m *manager) ckptPath(fingerprint string) string {
	if m.ckptDir == "" {
		return ""
	}
	return filepath.Join(m.ckptDir, fingerprint+".jsonl")
}

// backoff is the delay before the retry following a failed attempt
// (1-based): RetryBackoff doubling per attempt, capped at a minute.
func (m *manager) backoff(attempt int) time.Duration {
	d := m.cfg.RetryBackoff
	for i := 1; i < attempt && d < time.Minute; i++ {
		d *= 2
	}
	return min(d, time.Minute)
}

// runJobSafe executes the sweep — through cfg.RunJob when the cluster
// coordinator (or a test) has plugged one in, locally otherwise —
// converting a panic into an error so a poisoned job burns a retry instead
// of the whole daemon.
func (m *manager) runJobSafe(exp *sweep.Experiment) (res *sweep.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: job panicked: %v", r)
		}
	}()
	if m.cfg.RunJob != nil {
		return m.cfg.RunJob(exp)
	}
	return exp.Run()
}

// attemptVerdict is runAttempt's outcome.
type attemptVerdict int

const (
	attemptTerminal attemptVerdict = iota // job reached a terminal state
	attemptRetry                          // failed with budget remaining
)

// run executes one job to a terminal state: attempts separated by
// exponential backoff until success, cancellation, or an exhausted retry
// budget (quarantine). The worker slot is held throughout so drain() still
// means "every accepted job terminated".
func (m *manager) run(j *job) {
	for {
		if m.runAttempt(j) == attemptTerminal {
			m.finish(j)
			return
		}
		m.cfg.Metrics.Add("job_retries", 1)
		select {
		case <-time.After(m.backoff(j.attempt)):
		case <-m.baseCtx.Done():
			// Aborted mid-backoff (drain deadline): the job dies canceled.
			j.update(func(s *JobStatus) {
				if !s.Terminal() {
					s.State = StateCanceled
					s.FinishedAt = now()
				}
			})
			m.walTerminal(j)
			m.cfg.Metrics.Add("jobs_canceled", 1)
			m.finish(j)
			return
		}
	}
}

// runAttempt executes one attempt of one job.
func (m *manager) runAttempt(j *job) attemptVerdict {
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()

	// Atomically claim the job; a cancel that won the race leaves it
	// terminal and the worker just moves on.
	started, first := false, false
	j.update(func(s *JobStatus) {
		if s.State == StateQueued {
			s.State = StateRunning
			if s.StartedAt == "" {
				s.StartedAt = now()
				first = true // first attempt in this process
			}
			j.attempt++
			s.Attempt = j.attempt
			started = true
		}
	})
	if !started {
		return attemptTerminal
	}
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	if first {
		m.cfg.Metrics.Add("jobs_started", 1)
	}
	if err := m.wal.append(walRecord{Op: walOpAttempt, ID: j.id, Attempt: j.attempt, Time: now()}); err != nil {
		m.logf("serve: journaling attempt for %s: %v", j.id, err)
	}

	exp := j.exp
	exp.Context = ctx
	exp.Progress = func(done, total int) {
		j.update(func(s *JobStatus) { s.Done, s.Total = done, total })
	}
	if m.cfg.SlotsPerJob > 0 {
		exp.Workers = m.cfg.SlotsPerJob
	}
	if m.cfg.JobTimeout > 0 && exp.Guard.Timeout == 0 {
		exp.Guard.Timeout = m.cfg.JobTimeout
	}
	if p := m.ckptPath(j.fingerprint); p != "" {
		// Fingerprint-keyed checkpoint, resumed on every attempt: points
		// simulated before a crash or failure are never re-run.
		exp.Checkpoint = p
		exp.Resume = true
	}

	start := time.Now()
	res, err := m.runJobSafe(exp)
	elapsed := time.Since(start)

	if err == nil {
		var encErr error
		if body, e := encodeResult(j.fingerprint, m.cfg.engine, res); e != nil {
			encErr = e
		} else {
			if cerr := m.cache.put(j.fingerprint, body); cerr != nil {
				m.logf("serve: persisting result %s: %v", j.fingerprint, cerr)
			}
			totalSlots := (exp.Warmup + exp.Measure + exp.Drain) *
				int64(len(exp.Schemes)*len(exp.Rhos)*exp.Reps)
			sps := float64(totalSlots) / elapsed.Seconds()
			partial := false
			for _, s := range res.Series {
				for _, p := range s.Points {
					if p.FailedReps > 0 || p.DivergedReps > 0 {
						partial = true
					}
				}
			}
			j.mu.Lock()
			j.result = body
			j.mu.Unlock()
			j.update(func(s *JobStatus) {
				s.State = StateDone
				s.SlotsPerSec = sps
				s.Partial = partial
				s.ResumedReps = res.ResumedReps
				s.Error = ""
				s.FinishedAt = now()
			})
			m.walTerminal(j)
			// The fresh exact result becomes interpolation anchors for
			// future approx submissions in its family.
			m.ix.AddExact(res)
			m.cfg.Metrics.Add("sim_runs", 1)
			m.cfg.Metrics.Add("jobs_done", 1)
			m.cfg.Metrics.Add("slots_simulated", totalSlots)
			m.cfg.Metrics.Set("last_job_slots_per_sec", sps)
			if p := exp.Checkpoint; p != "" {
				os.Remove(p) // the cache owns the result now
			}
			return attemptTerminal
		}
		err = encErr
	}

	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.update(func(s *JobStatus) {
			s.State = StateCanceled
			s.Error = err.Error()
			s.FinishedAt = now()
		})
		m.walTerminal(j)
		m.cfg.Metrics.Add("jobs_canceled", 1)
		return attemptTerminal
	case j.attempt >= m.maxAttempts():
		state := StateFailed // no retry budget configured: plain failure
		if m.cfg.RetryBudget > 0 {
			state = StateQuarantined
		}
		j.update(func(s *JobStatus) {
			s.State = state
			s.Error = err.Error()
			s.FinishedAt = now()
		})
		m.walTerminal(j)
		if state == StateQuarantined {
			m.cfg.Metrics.Add("jobs_quarantined", 1)
		} else {
			m.cfg.Metrics.Add("jobs_failed", 1)
		}
		return attemptTerminal
	default:
		// Budget remains: back to queued (error visible) and let run()
		// re-attempt after the backoff. The stale cancel func is cleared so
		// a DELETE during the backoff cancels via the queued path.
		m.logf("serve: job %s attempt %d failed (%v); retrying", j.id, j.attempt, err)
		j.mu.Lock()
		j.cancel = nil
		j.mu.Unlock()
		j.update(func(s *JobStatus) {
			if s.State == StateRunning {
				s.State = StateQueued
				s.Error = err.Error()
			}
		})
		return attemptRetry
	}
}

// walTerminal journals a job's terminal transition (no-op for cache-hit
// pseudo-jobs, which were never journaled as accepted).
func (m *manager) walTerminal(j *job) {
	if m.wal == nil || j.exp == nil {
		return
	}
	st := j.snapshot()
	if err := m.wal.append(walRecord{
		Op: st.State, ID: j.id, Attempt: st.Attempt,
		Error: st.Error, Time: st.FinishedAt,
	}); err != nil {
		m.logf("serve: journaling %s of %s: %v", st.State, j.id, err)
	}
}

// finish retires the job from the single-flight table and counts it as a
// completion for the queue forecaster (every accepted job passes through
// here exactly once, whatever its terminal state).
func (m *manager) finish(j *job) {
	m.mu.Lock()
	if m.active[j.fingerprint] == j {
		delete(m.active, j.fingerprint)
	}
	m.mu.Unlock()
	m.fc.ObserveCompletion()
}

// drain stops intake and waits for every accepted job — running and queued
// — to finish, then releases the workers. Submissions after drain starts
// get errDraining.
func (m *manager) drain() {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.draining = true
	m.mu.Unlock()
	close(m.queue)
	m.wg.Wait()
}

// abort cancels every in-flight job context (used when a drain deadline
// expires).
func (m *manager) abort() { m.stop() }
