package serve

// The job manager: a bounded FIFO queue feeding a fixed pool of workers,
// with single-flight deduplication on the spec fingerprint. Submitting a
// spec whose fingerprint is cached completes instantly from the cache;
// submitting one that is already queued or running returns the in-flight
// job instead of enqueueing a second simulation; everything else joins the
// queue or — when the queue is full — is refused with errQueueFull so the
// HTTP layer can answer 429 with a Retry-After hint.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"prioritystar/internal/sweep"
)

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	errQueueFull = errors.New("serve: job queue is full")
	errDraining  = errors.New("serve: daemon is draining")
)

// JobStatus is the wire form of a job's state, returned by the submit,
// get, and list endpoints and streamed over SSE.
type JobStatus struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Fingerprint string `json:"fingerprint"`
	// Cached marks a submission answered from the result cache without
	// running anything; Deduped marks one coalesced onto an in-flight job.
	Cached  bool `json:"cached,omitempty"`
	Deduped bool `json:"deduped,omitempty"`
	// Done/Total track replication progress while running.
	Done  int `json:"done"`
	Total int `json:"total"`
	// SlotsPerSec is the executed job's simulation throughput (total
	// simulated slots across replications over wall-clock run time).
	SlotsPerSec float64 `json:"slotsPerSec,omitempty"`
	Partial     bool    `json:"partial,omitempty"`
	Error       string  `json:"error,omitempty"`

	SubmittedAt string `json:"submittedAt,omitempty"`
	StartedAt   string `json:"startedAt,omitempty"`
	FinishedAt  string `json:"finishedAt,omitempty"`
}

// Terminal reports whether the state is final.
func (s *JobStatus) Terminal() bool {
	return s.State == StateDone || s.State == StateFailed || s.State == StateCanceled
}

// job is the server-side record of one submission.
type job struct {
	id          string
	fingerprint string
	exp         *sweep.Experiment
	cancel      context.CancelFunc

	mu     sync.Mutex
	status JobStatus
	result []byte
	subs   []chan JobStatus
}

// snapshot returns a copy of the current status.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// update mutates the status under the job lock and notifies every
// subscriber. Notification is best-effort per event: a slow subscriber
// misses intermediate progress but always receives the terminal state
// because terminal updates close the channel after a final send.
func (j *job) update(fn func(*JobStatus)) {
	j.mu.Lock()
	fn(&j.status)
	st := j.status
	subs := j.subs
	if st.Terminal() {
		j.subs = nil
	}
	j.mu.Unlock()
	for _, ch := range subs {
		if st.Terminal() {
			// The terminal state must arrive: make room by dropping the
			// oldest undelivered progress event if the buffer is full.
			for delivered := false; !delivered; {
				select {
				case ch <- st:
					delivered = true
				default:
					select {
					case <-ch:
					default:
					}
				}
			}
			close(ch)
			continue
		}
		select {
		case ch <- st:
		default: // slow subscriber: skip this progress event
		}
	}
}

// subscribe registers a status channel. The current status is delivered
// first; if the job is already terminal the channel is closed immediately
// after. The channel has room for the terminal send even when the
// subscriber is not draining progress events.
func (j *job) subscribe() <-chan JobStatus {
	ch := make(chan JobStatus, 16)
	j.mu.Lock()
	st := j.status
	terminal := st.Terminal()
	if !terminal {
		j.subs = append(j.subs, ch)
	}
	j.mu.Unlock()
	ch <- st
	if terminal {
		close(ch)
	}
	return ch
}

// manager owns the queue, the workers, the single-flight table, and the
// cache.
type manager struct {
	cfg   Config
	cache *cache

	mu       sync.Mutex
	draining bool
	seq      int
	jobs     map[string]*job
	order    []string        // submission order, for listing
	active   map[string]*job // fingerprint -> queued/running job

	queue   chan *job
	wg      sync.WaitGroup
	baseCtx context.Context
	stop    context.CancelFunc
}

// newManager builds the manager and starts its workers.
func newManager(cfg Config, c *cache) *manager {
	m := &manager{
		cfg:    cfg,
		cache:  c,
		jobs:   make(map[string]*job),
		active: make(map[string]*job),
		queue:  make(chan *job, cfg.QueueCap),
	}
	m.baseCtx, m.stop = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// now returns the wall-clock timestamp format used in statuses.
func now() string { return time.Now().UTC().Format(time.RFC3339) }

// submit resolves one submission: cache hit, single-flight dedup, or a new
// queued job. The returned status tells the caller which happened.
func (m *manager) submit(exp *sweep.Experiment) (JobStatus, error) {
	fp := exp.Fingerprint
	if fp == "" {
		return JobStatus{}, fmt.Errorf("serve: experiment has no fingerprint")
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return JobStatus{}, errDraining
	}

	// Content-addressed hit: answer from the cache without running.
	if body, ok := m.cache.get(fp); ok {
		m.cfg.Metrics.Add("cache_hits", 1)
		j := m.newJobLocked(fp, nil)
		j.result = body
		j.status.State = StateDone
		j.status.Cached = true
		j.status.FinishedAt = j.status.SubmittedAt
		return j.status, nil
	}
	m.cfg.Metrics.Add("cache_misses", 1)

	// Single-flight: coalesce onto the identical in-flight job.
	if running, ok := m.active[fp]; ok {
		m.cfg.Metrics.Add("jobs_deduped", 1)
		st := running.snapshot()
		st.Deduped = true
		return st, nil
	}

	j := m.newJobLocked(fp, exp)
	// Copy the status before the job becomes visible to a worker: once it
	// is on the queue a worker may mutate it concurrently.
	st := j.status
	select {
	case m.queue <- j:
	default:
		// Queue full: drop the job record and push back.
		delete(m.jobs, j.id)
		m.order = m.order[:len(m.order)-1]
		return JobStatus{}, errQueueFull
	}
	m.active[fp] = j
	m.cfg.Metrics.Add("jobs_queued", 1)
	return st, nil
}

// newJobLocked allocates a job record; the caller holds m.mu.
func (m *manager) newJobLocked(fp string, exp *sweep.Experiment) *job {
	m.seq++
	j := &job{
		id:          fmt.Sprintf("j%06d", m.seq),
		fingerprint: fp,
		exp:         exp,
		status: JobStatus{
			State:       StateQueued,
			Fingerprint: fp,
			SubmittedAt: now(),
		},
	}
	j.status.ID = j.id
	if exp != nil {
		j.status.Total = len(exp.Schemes) * len(exp.Rhos) * exp.Reps
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	return j
}

// get returns a job by ID.
func (m *manager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// list returns every job's status in submission order.
func (m *manager) list() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.get(id); ok {
			out = append(out, j.snapshot())
		}
	}
	return out
}

// cancelJob cancels a queued or running job (best effort: a queued job is
// canceled when a worker picks it up and finds its context dead).
func (m *manager) cancelJob(id string) bool {
	j, ok := m.get(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	cancel := j.cancel
	queued := j.status.State == StateQueued
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	} else if queued {
		// Not started yet: mark so the worker skips it. The update closure
		// re-checks the state under the job lock, so a worker that started
		// the job in the meantime wins and keeps running.
		canceled := false
		j.update(func(s *JobStatus) {
			if s.State == StateQueued {
				s.State = StateCanceled
				s.FinishedAt = now()
				canceled = true
			}
		})
		if canceled {
			m.finish(j)
		}
	}
	return true
}

// queueDepth reports the number of queued-but-unstarted jobs.
func (m *manager) queueDepth() int { return len(m.queue) }

// worker drains the queue until drain() closes it.
func (m *manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.run(j)
	}
}

// run executes one job end to end.
func (m *manager) run(j *job) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()

	// Atomically claim the job; a cancel that won the race leaves it
	// terminal and the worker just moves on.
	started := false
	j.update(func(s *JobStatus) {
		if s.State == StateQueued {
			s.State = StateRunning
			s.StartedAt = now()
			started = true
		}
	})
	if !started {
		return
	}
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	m.cfg.Metrics.Add("jobs_started", 1)

	exp := j.exp
	exp.Context = ctx
	exp.Progress = func(done, total int) {
		j.update(func(s *JobStatus) { s.Done, s.Total = done, total })
	}
	if m.cfg.SlotsPerJob > 0 {
		exp.Workers = m.cfg.SlotsPerJob
	}
	if m.cfg.JobTimeout > 0 && exp.Guard.Timeout == 0 {
		exp.Guard.Timeout = m.cfg.JobTimeout
	}

	start := time.Now()
	res, err := exp.Run()
	elapsed := time.Since(start)

	switch {
	case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		j.update(func(s *JobStatus) {
			s.State = StateCanceled
			s.Error = err.Error()
			s.FinishedAt = now()
		})
		m.cfg.Metrics.Add("jobs_canceled", 1)
	case err != nil:
		j.update(func(s *JobStatus) {
			s.State = StateFailed
			s.Error = err.Error()
			s.FinishedAt = now()
		})
		m.cfg.Metrics.Add("jobs_failed", 1)
	default:
		body, encErr := encodeResult(j.fingerprint, m.cfg.engine, res)
		if encErr != nil {
			j.update(func(s *JobStatus) {
				s.State = StateFailed
				s.Error = encErr.Error()
				s.FinishedAt = now()
			})
			m.cfg.Metrics.Add("jobs_failed", 1)
			break
		}
		if cerr := m.cache.put(j.fingerprint, body); cerr != nil && m.cfg.Logf != nil {
			m.cfg.Logf("serve: persisting result %s: %v", j.fingerprint, cerr)
		}
		totalSlots := (exp.Warmup + exp.Measure + exp.Drain) *
			int64(len(exp.Schemes)*len(exp.Rhos)*exp.Reps)
		sps := float64(totalSlots) / elapsed.Seconds()
		partial := false
		for _, s := range res.Series {
			for _, p := range s.Points {
				if p.FailedReps > 0 || p.DivergedReps > 0 {
					partial = true
				}
			}
		}
		j.mu.Lock()
		j.result = body
		j.mu.Unlock()
		j.update(func(s *JobStatus) {
			s.State = StateDone
			s.SlotsPerSec = sps
			s.Partial = partial
			s.FinishedAt = now()
		})
		m.cfg.Metrics.Add("sim_runs", 1)
		m.cfg.Metrics.Add("jobs_done", 1)
		m.cfg.Metrics.Add("slots_simulated", totalSlots)
		m.cfg.Metrics.Set("last_job_slots_per_sec", sps)
	}
	m.finish(j)
}

// finish retires the job from the single-flight table.
func (m *manager) finish(j *job) {
	m.mu.Lock()
	if m.active[j.fingerprint] == j {
		delete(m.active, j.fingerprint)
	}
	m.mu.Unlock()
}

// drain stops intake and waits for every accepted job — running and queued
// — to finish, then releases the workers. Submissions after drain starts
// get errDraining.
func (m *manager) drain() {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.draining = true
	m.mu.Unlock()
	close(m.queue)
	m.wg.Wait()
}

// abort cancels every in-flight job context (used when a drain deadline
// expires).
func (m *manager) abort() { m.stop() }
