package static

import (
	"testing"

	"prioritystar/internal/balance"
	"prioritystar/internal/core"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

func scheme(t *testing.T, s *torus.Shape) *core.Scheme {
	t.Helper()
	sch, err := core.PrioritySTAR(s, traffic.Rates{LambdaB: 1}, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func TestTaskStrings(t *testing.T) {
	if SingleBroadcast.String() == "" || MultinodeBroadcast.String() == "" ||
		TotalExchange.String() == "" || Task(9).String() == "" {
		t.Error("task names must be nonempty")
	}
}

func TestLowerBounds(t *testing.T) {
	s := torus.MustNew(8, 8) // N=64, degree=4, diameter=8
	if lb := LowerBound(s, SingleBroadcast); lb != 8 {
		t.Errorf("single broadcast bound = %d, want diameter 8", lb)
	}
	// MNB: ceil(63/4) = 16 > diameter.
	if lb := LowerBound(s, MultinodeBroadcast); lb != 16 {
		t.Errorf("MNB bound = %d, want 16", lb)
	}
	// TE: 64*63*D_ave/256 ~ 64*63*4.06/256 ~ 64 slots.
	lb := LowerBound(s, TotalExchange)
	if lb < 60 || lb > 70 {
		t.Errorf("TE bound = %d, want ~64", lb)
	}
}

func TestLowerBoundDiameterDominates(t *testing.T) {
	// Long skinny ring: diameter dominates the MNB bandwidth bound.
	s := torus.MustNew(16)
	if lb := LowerBound(s, MultinodeBroadcast); lb != 8 {
		t.Errorf("ring MNB bound = %d, want diameter 8", lb)
	}
}

// TestSingleBroadcastMakespanIsDiameter: with an empty network the
// nonidling STAR broadcast completes in exactly diameter slots (no two tree
// edges share a link).
func TestSingleBroadcastMakespanIsDiameter(t *testing.T) {
	for _, dims := range [][]int{{8, 8}, {4, 4, 8}, {5, 5}} {
		s := torus.MustNew(dims...)
		res, err := Run(s, scheme(t, s), SingleBroadcast, 3)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if res.Makespan != int64(s.Diameter()) {
			t.Errorf("%v: makespan %d, want diameter %d", dims, res.Makespan, s.Diameter())
		}
		if res.Efficiency != 1 {
			t.Errorf("%v: efficiency %g, want 1", dims, res.Efficiency)
		}
	}
}

// TestMNBWithinConstantOfBound: balanced STAR trees complete the multinode
// broadcast within a small constant factor of the bandwidth bound.
func TestMNBWithinConstantOfBound(t *testing.T) {
	for _, dims := range [][]int{{8, 8}, {4, 8}} {
		s := torus.MustNew(dims...)
		res, err := Run(s, scheme(t, s), MultinodeBroadcast, 4)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if res.Makespan < res.LowerBound {
			t.Errorf("%v: makespan %d below bound %d", dims, res.Makespan, res.LowerBound)
		}
		if res.Efficiency < 0.35 {
			t.Errorf("%v: MNB efficiency %.2f too low (makespan %d, bound %d)",
				dims, res.Efficiency, res.Makespan, res.LowerBound)
		}
	}
}

// TestTotalExchangeWithinConstantOfBound: shortest-path routing with
// randomized tie-breaking completes TE near the per-link bandwidth bound.
func TestTotalExchangeWithinConstantOfBound(t *testing.T) {
	s := torus.MustNew(8, 8)
	res, err := Run(s, scheme(t, s), TotalExchange, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < res.LowerBound {
		t.Errorf("makespan %d below bound %d", res.Makespan, res.LowerBound)
	}
	if res.Efficiency < 0.35 {
		t.Errorf("TE efficiency %.2f too low (makespan %d, bound %d)",
			res.Efficiency, res.Makespan, res.LowerBound)
	}
}

// TestMNBBalancedBeatsDimOrder: on an asymmetric torus the balanced trees
// finish the MNB sooner than fixed dimension-ordered trees, the static-task
// echo of the throughput result.
func TestMNBBalancedBeatsDimOrder(t *testing.T) {
	s := torus.MustNew(4, 8)
	star := scheme(t, s)
	dimOrder, err := core.DimOrderFCFS(s)
	if err != nil {
		t.Fatal(err)
	}
	resStar, err := Run(s, star, MultinodeBroadcast, 6)
	if err != nil {
		t.Fatal(err)
	}
	resDim, err := Run(s, dimOrder, MultinodeBroadcast, 6)
	if err != nil {
		t.Fatal(err)
	}
	if resStar.Makespan >= resDim.Makespan {
		t.Errorf("balanced MNB makespan %d should beat dim-order %d",
			resStar.Makespan, resDim.Makespan)
	}
}

func TestRunUnknownTask(t *testing.T) {
	s := torus.MustNew(4, 4)
	if _, err := Run(s, scheme(t, s), Task(42), 1); err == nil {
		t.Error("unknown task should error")
	}
}
