// Package static evaluates the classical *static* communication tasks the
// paper's introduction contrasts with the dynamic environment: a single
// broadcast, the multinode broadcast (MNB, every node broadcasts one
// packet), and total exchange (TE, every node sends a distinct packet to
// every other node). Tasks are injected as an impulse at slot 0 into the
// dynamic simulator and run to completion; the makespan is compared against
// the standard transmission/bandwidth lower bounds.
//
// These measurements show that the STAR machinery is also an efficient
// one-shot schedule: balanced trees keep the MNB and TE makespans within a
// small constant of the per-link bandwidth bounds.
package static

import (
	"fmt"

	"prioritystar/internal/core"
	"prioritystar/internal/sim"
	"prioritystar/internal/torus"
)

// Task identifies a static communication task.
type Task int

// The static tasks of the paper's introduction.
const (
	// SingleBroadcast: one node broadcasts one packet.
	SingleBroadcast Task = iota
	// MultinodeBroadcast: every node broadcasts one packet (MNB).
	MultinodeBroadcast
	// TotalExchange: every node sends a personalized packet to every other
	// node (TE).
	TotalExchange
)

// String names the task.
func (t Task) String() string {
	switch t {
	case SingleBroadcast:
		return "single broadcast"
	case MultinodeBroadcast:
		return "multinode broadcast"
	case TotalExchange:
		return "total exchange"
	default:
		return fmt.Sprintf("task(%d)", int(t))
	}
}

// LowerBound returns the classical makespan lower bound in slots: the
// network diameter (a packet must reach the farthest node) and the
// bandwidth bound (packets that must cross a node boundary divided by the
// links available), whichever is larger.
func LowerBound(s *torus.Shape, t Task) int64 {
	diameter := int64(s.Diameter())
	var bandwidth int64
	n := int64(s.Size())
	degree := int64(s.Degree())
	switch t {
	case SingleBroadcast:
		bandwidth = 0 // one packet; the diameter dominates
	case MultinodeBroadcast:
		// Every node must receive N-1 packets over its incoming links.
		bandwidth = ceilDiv(n-1, degree)
	case TotalExchange:
		// Average-case per-link load: N(N-1) packets travelling D_ave hops
		// over L links; for a (vertex-transitive) torus this is also the
		// per-node ejection bound (N-1 arrivals over degree links).
		total := float64(n) * float64(n-1) * s.AvgDistance()
		bandwidth = int64(total / float64(s.Links()))
		if eject := ceilDiv(n-1, degree); eject > bandwidth {
			bandwidth = eject
		}
	}
	if bandwidth > diameter {
		return bandwidth
	}
	return diameter
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// Result holds a static task's measured completion.
type Result struct {
	Task       Task
	Makespan   int64   // slots until the last delivery
	LowerBound int64   // classical bound for the same task
	Efficiency float64 // LowerBound / Makespan, in (0, 1]
}

// Run executes the task on shape s using the given scheme (priority STAR's
// balanced trees unless specified otherwise) and measures the makespan. The
// horizon caps the run; an error is returned if the task does not complete.
func Run(s *torus.Shape, sch *core.Scheme, t Task, seed uint64) (*Result, error) {
	lb := LowerBound(s, t)
	horizon := 16*lb + 64
	cfg := sim.Config{
		Shape: s, Scheme: sch, Seed: seed,
		Warmup: 0, Measure: horizon, Drain: 0,
	}
	switch t {
	case SingleBroadcast:
		cfg.SingleBroadcast = true
	case MultinodeBroadcast:
		cfg.ImpulseBroadcasts = 1
	case TotalExchange:
		cfg.ImpulseTotalExchange = true
	default:
		return nil, fmt.Errorf("static: unknown task %v", t)
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	var makespan int64
	switch t {
	case TotalExchange:
		if res.IncompleteUnicasts > 0 {
			return nil, fmt.Errorf("static: %v incomplete (%d packets undelivered at horizon %d)",
				t, res.IncompleteUnicasts, horizon)
		}
		makespan = int64(res.Unicast.Max())
	default:
		if res.IncompleteBroadcasts > 0 {
			return nil, fmt.Errorf("static: %v incomplete (%d tasks unfinished at horizon %d)",
				t, res.IncompleteBroadcasts, horizon)
		}
		makespan = int64(res.Broadcast.Max())
	}
	out := &Result{Task: t, Makespan: makespan, LowerBound: lb}
	if makespan > 0 {
		out.Efficiency = float64(lb) / float64(makespan)
	}
	return out, nil
}
