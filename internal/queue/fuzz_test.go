package queue

import (
	"math/rand/v2"
	"testing"
)

// applyOps drives a FIFO and a naive slice model through the same operation
// sequence, checking they agree after every step. Each byte of ops encodes
// one operation; the low bits select among Push, PushSlot, Pop, PopRef,
// Peek, and (rarely) Reset, and the byte value doubles as the pushed
// payload, so any byte string is a valid program.
func applyOps(t *testing.T, ops []byte) {
	t.Helper()
	var q FIFO[int]
	var model []int
	seq := 0 // distinct payloads expose ordering bugs byte values can't

	check := func(op string, i int) {
		if q.Len() != len(model) {
			t.Fatalf("op %d (%s): Len %d, model %d", i, op, q.Len(), len(model))
		}
		if c := q.Cap(); c != 0 && (c&(c-1)) != 0 {
			t.Fatalf("op %d (%s): cap %d not a power of two", i, op, c)
		}
		if c := q.Cap(); c < q.Len() {
			t.Fatalf("op %d (%s): cap %d below len %d", i, op, c, q.Len())
		}
		if head, ok := q.Peek(); ok != (len(model) > 0) {
			t.Fatalf("op %d (%s): Peek ok=%t with %d modeled elements", i, op, ok, len(model))
		} else if ok && head != model[0] {
			t.Fatalf("op %d (%s): Peek %d, model head %d", i, op, head, model[0])
		}
	}

	for i, b := range ops {
		switch b % 8 {
		case 0, 1: // Push with a unique payload
			seq++
			q.Push(seq)
			model = append(model, seq)
			check("Push", i)
		case 2: // PushSlot fill-in-place
			seq++
			*q.PushSlot() = seq
			model = append(model, seq)
			check("PushSlot", i)
		case 3, 4: // Pop
			v, ok := q.Pop()
			if ok != (len(model) > 0) {
				t.Fatalf("op %d: Pop ok=%t with %d modeled elements", i, ok, len(model))
			}
			if ok {
				if v != model[0] {
					t.Fatalf("op %d: Pop %d, model head %d", i, v, model[0])
				}
				model = model[1:]
			}
			check("Pop", i)
		case 5, 6: // PopRef
			p, ok := q.PopRef()
			if ok != (len(model) > 0) {
				t.Fatalf("op %d: PopRef ok=%t with %d modeled elements", i, ok, len(model))
			}
			if ok {
				if *p != model[0] {
					t.Fatalf("op %d: PopRef %d, model head %d", i, *p, model[0])
				}
				model = model[1:]
			}
			check("PopRef", i)
		case 7:
			if b < 16 { // rare: full Reset
				q.Reset()
				model = model[:0]
				check("Reset", i)
				break
			}
			// Usually just an extra Push so programs stay mostly full.
			seq++
			q.Push(seq)
			model = append(model, seq)
			check("Push", i)
		}
	}

	// Drain and compare the full remaining order.
	for j := 0; len(model) > 0; j++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatalf("drain %d: queue empty with %d modeled elements left", j, len(model))
		}
		if v != model[0] {
			t.Fatalf("drain %d: got %d, model %d", j, v, model[0])
		}
		model = model[1:]
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue nonempty after model drained")
	}
}

// FuzzFIFO differential-checks the ring buffer against a naive slice model:
// identical results for every Push/PushSlot/Pop/PopRef/Peek/Reset program,
// with the capacity always zero or a power of two. The wrap arithmetic
// (head+n)&(len(buf)-1) only works under that invariant, so this is the
// test that guards it.
func FuzzFIFO(f *testing.F) {
	// Seeds cover the interesting regimes: empty-queue pops, a growth
	// cascade, wraparound after interleaved push/pop, and resets.
	f.Add([]byte{})
	f.Add([]byte{3, 5, 3, 5})                         // pops on empty
	f.Add([]byte{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2}) // pure growth past cap 8
	f.Add([]byte{0, 0, 0, 3, 3, 0, 0, 5, 5, 0, 0, 3, 0, 3, 0, 3}) // wrap head around
	f.Add([]byte{0, 1, 2, 7, 0, 1, 2, 15, 0, 3})                  // resets mid-stream
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 3, 3, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // grow while wrapped
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 1<<12 {
			ops = ops[:1<<12]
		}
		applyOps(t, ops)
	})
}

// TestFIFODifferentialRandomOps runs the fuzz harness on random programs
// under plain `go test`, so CI exercises the differential check without a
// fuzzing engine.
func TestFIFODifferentialRandomOps(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 200; trial++ {
		n := 1 + int(rng.UintN(512))
		ops := make([]byte, n)
		for i := range ops {
			ops[i] = byte(rng.UintN(256))
		}
		applyOps(t, ops)
	}
}
