package queue

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestFIFOEmpty(t *testing.T) {
	var q FIFO[int]
	if q.Len() != 0 {
		t.Error("zero FIFO should be empty")
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty should fail")
	}
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty should fail")
	}
}

func TestFIFOOrder(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	if v, ok := q.Peek(); !ok || v != 0 {
		t.Fatalf("Peek = %d, %v", v, ok)
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = %d, %v", i, v, ok)
		}
	}
	if q.Len() != 0 {
		t.Error("drained FIFO should be empty")
	}
}

func TestFIFOWraparoundGrowth(t *testing.T) {
	// Interleave pushes and pops so head moves, then force growth while
	// wrapped.
	var q FIFO[int]
	next := 0
	for i := 0; i < 6; i++ {
		q.Push(next)
		next++
	}
	for i := 0; i < 4; i++ {
		q.Pop()
	}
	for i := 0; i < 20; i++ { // triggers grow with head > 0
		q.Push(next)
		next++
	}
	want := 4
	for q.Len() > 0 {
		v, _ := q.Pop()
		if v != want {
			t.Fatalf("after wraparound growth: got %d, want %d", v, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d items, expected %d", want-4, next-4)
	}
}

func TestFIFOInterleavedMatchesSlice(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		var q FIFO[int]
		var ref []int
		for op := 0; op < 500; op++ {
			if rng.IntN(2) == 0 || len(ref) == 0 {
				v := rng.Int()
				q.Push(v)
				ref = append(ref, v)
			} else {
				got, ok := q.Pop()
				if !ok || got != ref[0] {
					return false
				}
				ref = ref[1:]
			}
			if q.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMultiClassPriorityOrder(t *testing.T) {
	m := NewMultiClass[string](3)
	m.Push(2, "low1")
	m.Push(0, "high1")
	m.Push(1, "mid1")
	m.Push(0, "high2")
	m.Push(2, "low2")

	if m.Len() != 5 {
		t.Fatalf("Len = %d", m.Len())
	}
	if m.LenClass(0) != 2 || m.LenClass(1) != 1 || m.LenClass(2) != 2 {
		t.Fatal("per-class lengths wrong")
	}
	want := []struct {
		v string
		c int
	}{
		{"high1", 0}, {"high2", 0}, {"mid1", 1}, {"low1", 2}, {"low2", 2},
	}
	for i, w := range want {
		if v, c, ok := m.Peek(); !ok || v != w.v || c != w.c {
			t.Fatalf("Peek #%d = %q class %d", i, v, c)
		}
		v, c, ok := m.Pop()
		if !ok || v != w.v || c != w.c {
			t.Fatalf("Pop #%d = %q class %d, want %q class %d", i, v, c, w.v, w.c)
		}
	}
	if _, _, ok := m.Pop(); ok {
		t.Error("Pop on drained MultiClass should fail")
	}
	if _, _, ok := m.Peek(); ok {
		t.Error("Peek on drained MultiClass should fail")
	}
}

func TestMultiClassFIFOWithinClass(t *testing.T) {
	m := NewMultiClass[int](2)
	for i := 0; i < 50; i++ {
		m.Push(1, i)
	}
	for i := 0; i < 50; i++ {
		v, c, ok := m.Pop()
		if !ok || c != 1 || v != i {
			t.Fatalf("Pop = %d class %d", v, c)
		}
	}
}

func TestMultiClassHighPreemptsQueueOrder(t *testing.T) {
	// A later high-priority arrival is served before earlier low-priority
	// ones — the essence of the priority STAR discipline.
	m := NewMultiClass[int](2)
	m.Push(1, 100)
	m.Push(1, 101)
	m.Push(0, 1)
	if v, _, _ := m.Pop(); v != 1 {
		t.Errorf("high-priority arrival should be served first, got %d", v)
	}
	if v, _, _ := m.Pop(); v != 100 {
		t.Errorf("then FIFO low priority, got %d", v)
	}
}

func TestMultiClassClasses(t *testing.T) {
	if NewMultiClass[int](3).Classes() != 3 {
		t.Error("Classes() wrong")
	}
}

func TestNewMultiClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMultiClass(0) should panic")
		}
	}()
	NewMultiClass[int](0)
}

func TestMultiClassLenTracksTotal(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		m := NewMultiClass[int](3)
		count := 0
		for op := 0; op < 300; op++ {
			if rng.IntN(2) == 0 || count == 0 {
				m.Push(rng.IntN(3), op)
				count++
			} else {
				if _, _, ok := m.Pop(); !ok {
					return false
				}
				count--
			}
			if m.Len() != count {
				return false
			}
			sum := 0
			for c := 0; c < 3; c++ {
				sum += m.LenClass(c)
			}
			if sum != count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFIFOCapacityPowerOfTwo(t *testing.T) {
	var q FIFO[int]
	if q.Cap() != 0 {
		t.Fatalf("zero FIFO Cap = %d", q.Cap())
	}
	for i := 0; i < 1000; i++ {
		q.Push(i)
		if c := q.Cap(); c&(c-1) != 0 || c == 0 {
			t.Fatalf("after %d pushes: Cap = %d, not a power of two", i+1, c)
		}
	}
}

func TestFIFOResetKeepsCapacity(t *testing.T) {
	var q FIFO[int]
	// Move head off zero so Reset must handle a wrapped buffer.
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	for i := 0; i < 37; i++ {
		q.Pop()
	}
	c := q.Cap()
	if c == 0 {
		t.Fatal("expected a grown buffer")
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len after Reset = %d", q.Len())
	}
	if q.Cap() != c {
		t.Fatalf("Cap after Reset = %d, want %d (backing array should be kept)", q.Cap(), c)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop after Reset should fail")
	}
	// Refill within capacity: no growth, order intact.
	for i := 0; i < c; i++ {
		q.Push(i)
	}
	if q.Cap() != c {
		t.Fatalf("refill within capacity grew the buffer: %d -> %d", c, q.Cap())
	}
	for i := 0; i < c; i++ {
		if v, ok := q.Pop(); !ok || v != i {
			t.Fatalf("Pop #%d after Reset = %d, %v", i, v, ok)
		}
	}
}

func TestFIFOResetReleasesReferences(t *testing.T) {
	var q FIFO[*int]
	for i := 0; i < 16; i++ {
		v := i
		q.Push(&v)
	}
	q.Reset()
	for i := 0; i < q.Cap(); i++ {
		if q.buf[i] != nil {
			t.Fatalf("buf[%d] still holds a reference after Reset", i)
		}
	}
}

func TestMultiClassResetKeepsClassCapacity(t *testing.T) {
	m := NewMultiClass[int](3)
	for i := 0; i < 200; i++ {
		m.Push(i%3, i)
	}
	caps := make([]int, 3)
	for c := range caps {
		caps[c] = m.classes[c].Cap()
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("Len after Reset = %d", m.Len())
	}
	for c := 0; c < 3; c++ {
		if m.LenClass(c) != 0 {
			t.Fatalf("class %d not empty after Reset", c)
		}
		if m.classes[c].Cap() != caps[c] {
			t.Fatalf("class %d capacity changed across Reset: %d -> %d", c, caps[c], m.classes[c].Cap())
		}
	}
	if _, _, ok := m.Pop(); ok {
		t.Fatal("Pop after Reset should fail")
	}
	m.Push(1, 42)
	if v, c, ok := m.Pop(); !ok || v != 42 || c != 1 {
		t.Fatalf("Push/Pop after Reset = %d class %d, %v", v, c, ok)
	}
}

// TestFIFORefVariantsMatchValueAPI drives a FIFO through a mixed
// PushSlot/PopRef workload mirrored against a value-API FIFO and a plain
// slice model: the in-place variants must observe the exact same sequence.
func TestFIFORefVariantsMatchValueAPI(t *testing.T) {
	var ref, val FIFO[int]
	var model []int
	next := 0
	for step := 0; step < 400; step++ {
		if step%7 < 4 { // push-biased so the ring grows and wraps
			*ref.PushSlot() = next
			val.Push(next)
			model = append(model, next)
			next++
			continue
		}
		rv, rok := ref.PopRef()
		vv, vok := val.Pop()
		if rok != vok {
			t.Fatalf("step %d: PopRef ok=%v, Pop ok=%v", step, rok, vok)
		}
		if !rok {
			if len(model) != 0 {
				t.Fatalf("step %d: queues empty but model has %d", step, len(model))
			}
			continue
		}
		if *rv != vv || vv != model[0] {
			t.Fatalf("step %d: PopRef=%d Pop=%d model=%d", step, *rv, vv, model[0])
		}
		model = model[1:]
	}
	if ref.Len() != val.Len() || ref.Len() != len(model) {
		t.Fatalf("final lengths diverged: ref=%d val=%d model=%d", ref.Len(), val.Len(), len(model))
	}
}

// TestMultiClassPushSlotPopRef checks priority order and class bookkeeping
// through the in-place API, including a PopRef on a fully empty queue.
func TestMultiClassPushSlotPopRef(t *testing.T) {
	m := NewMultiClass[string](3)
	if v, c, ok := m.PopRef(); ok || v != nil || c != -1 {
		t.Fatalf("PopRef on empty = %v, %d, %v", v, c, ok)
	}
	*m.PushSlot(2) = "low"
	*m.PushSlot(0) = "high"
	*m.PushSlot(1) = "mid"
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	want := []struct {
		v string
		c int
	}{{"high", 0}, {"mid", 1}, {"low", 2}}
	for i, w := range want {
		v, c, ok := m.PopRef()
		if !ok || *v != w.v || c != w.c {
			t.Fatalf("PopRef %d = %q class %d ok=%v, want %q class %d", i, *v, c, ok, w.v, w.c)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("Len after draining = %d", m.Len())
	}
}
