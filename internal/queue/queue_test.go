package queue

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestFIFOEmpty(t *testing.T) {
	var q FIFO[int]
	if q.Len() != 0 {
		t.Error("zero FIFO should be empty")
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty should fail")
	}
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty should fail")
	}
}

func TestFIFOOrder(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	if v, ok := q.Peek(); !ok || v != 0 {
		t.Fatalf("Peek = %d, %v", v, ok)
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = %d, %v", i, v, ok)
		}
	}
	if q.Len() != 0 {
		t.Error("drained FIFO should be empty")
	}
}

func TestFIFOWraparoundGrowth(t *testing.T) {
	// Interleave pushes and pops so head moves, then force growth while
	// wrapped.
	var q FIFO[int]
	next := 0
	for i := 0; i < 6; i++ {
		q.Push(next)
		next++
	}
	for i := 0; i < 4; i++ {
		q.Pop()
	}
	for i := 0; i < 20; i++ { // triggers grow with head > 0
		q.Push(next)
		next++
	}
	want := 4
	for q.Len() > 0 {
		v, _ := q.Pop()
		if v != want {
			t.Fatalf("after wraparound growth: got %d, want %d", v, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d items, expected %d", want-4, next-4)
	}
}

func TestFIFOInterleavedMatchesSlice(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		var q FIFO[int]
		var ref []int
		for op := 0; op < 500; op++ {
			if rng.IntN(2) == 0 || len(ref) == 0 {
				v := rng.Int()
				q.Push(v)
				ref = append(ref, v)
			} else {
				got, ok := q.Pop()
				if !ok || got != ref[0] {
					return false
				}
				ref = ref[1:]
			}
			if q.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMultiClassPriorityOrder(t *testing.T) {
	m := NewMultiClass[string](3)
	m.Push(2, "low1")
	m.Push(0, "high1")
	m.Push(1, "mid1")
	m.Push(0, "high2")
	m.Push(2, "low2")

	if m.Len() != 5 {
		t.Fatalf("Len = %d", m.Len())
	}
	if m.LenClass(0) != 2 || m.LenClass(1) != 1 || m.LenClass(2) != 2 {
		t.Fatal("per-class lengths wrong")
	}
	want := []struct {
		v string
		c int
	}{
		{"high1", 0}, {"high2", 0}, {"mid1", 1}, {"low1", 2}, {"low2", 2},
	}
	for i, w := range want {
		if v, c, ok := m.Peek(); !ok || v != w.v || c != w.c {
			t.Fatalf("Peek #%d = %q class %d", i, v, c)
		}
		v, c, ok := m.Pop()
		if !ok || v != w.v || c != w.c {
			t.Fatalf("Pop #%d = %q class %d, want %q class %d", i, v, c, w.v, w.c)
		}
	}
	if _, _, ok := m.Pop(); ok {
		t.Error("Pop on drained MultiClass should fail")
	}
	if _, _, ok := m.Peek(); ok {
		t.Error("Peek on drained MultiClass should fail")
	}
}

func TestMultiClassFIFOWithinClass(t *testing.T) {
	m := NewMultiClass[int](2)
	for i := 0; i < 50; i++ {
		m.Push(1, i)
	}
	for i := 0; i < 50; i++ {
		v, c, ok := m.Pop()
		if !ok || c != 1 || v != i {
			t.Fatalf("Pop = %d class %d", v, c)
		}
	}
}

func TestMultiClassHighPreemptsQueueOrder(t *testing.T) {
	// A later high-priority arrival is served before earlier low-priority
	// ones — the essence of the priority STAR discipline.
	m := NewMultiClass[int](2)
	m.Push(1, 100)
	m.Push(1, 101)
	m.Push(0, 1)
	if v, _, _ := m.Pop(); v != 1 {
		t.Errorf("high-priority arrival should be served first, got %d", v)
	}
	if v, _, _ := m.Pop(); v != 100 {
		t.Errorf("then FIFO low priority, got %d", v)
	}
}

func TestMultiClassClasses(t *testing.T) {
	if NewMultiClass[int](3).Classes() != 3 {
		t.Error("Classes() wrong")
	}
}

func TestNewMultiClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMultiClass(0) should panic")
		}
	}()
	NewMultiClass[int](0)
}

func TestMultiClassLenTracksTotal(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		m := NewMultiClass[int](3)
		count := 0
		for op := 0; op < 300; op++ {
			if rng.IntN(2) == 0 || count == 0 {
				m.Push(rng.IntN(3), op)
				count++
			} else {
				if _, _, ok := m.Pop(); !ok {
					return false
				}
				count--
			}
			if m.Len() != count {
				return false
			}
			sum := 0
			for c := 0; c < 3; c++ {
				sum += m.LenClass(c)
			}
			if sum != count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
