// Package queue implements the output-queue discipline of the simulated
// routers: an unbounded FIFO ring buffer per priority class, served
// head-of-line with lower class numbers first (class 0 is the highest
// priority). Within a class, service is strictly first-come first-served,
// which is what the paper's conservation-law argument requires.
package queue

import "fmt"

// FIFO is an unbounded first-in first-out queue backed by a growable
// circular buffer. The zero value is ready to use.
type FIFO[T any] struct {
	buf  []T
	head int
	n    int
}

// Len returns the number of queued elements.
func (q *FIFO[T]) Len() int { return q.n }

// Push appends v to the tail.
func (q *FIFO[T]) Push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
}

func (q *FIFO[T]) grow() {
	newCap := len(q.buf) * 2
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]T, newCap)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}

// Pop removes and returns the head element. The second result is false if
// the queue is empty.
func (q *FIFO[T]) Pop() (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero // release references for GC
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return v, true
}

// Peek returns the head element without removing it.
func (q *FIFO[T]) Peek() (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	return q.buf[q.head], true
}

// MultiClass is a set of FIFO queues indexed by priority class; Pop serves
// the lowest-numbered nonempty class (head-of-line priority, non-preemptive
// — in the simulator a packet in transmission is never interrupted).
type MultiClass[T any] struct {
	classes []FIFO[T]
	total   int
}

// NewMultiClass creates a queue with the given number of priority classes.
func NewMultiClass[T any](classes int) *MultiClass[T] {
	if classes <= 0 {
		panic(fmt.Sprintf("queue: need at least one class, got %d", classes))
	}
	return &MultiClass[T]{classes: make([]FIFO[T], classes)}
}

// Classes returns the number of priority classes.
func (m *MultiClass[T]) Classes() int { return len(m.classes) }

// Len returns the total number of queued elements across all classes.
func (m *MultiClass[T]) Len() int { return m.total }

// LenClass returns the number of elements queued in class c.
func (m *MultiClass[T]) LenClass(c int) int { return m.classes[c].Len() }

// Push enqueues v in priority class c (0 = highest priority).
func (m *MultiClass[T]) Push(c int, v T) {
	m.classes[c].Push(v)
	m.total++
}

// Pop dequeues the head of the highest-priority nonempty class, returning
// the element and its class.
func (m *MultiClass[T]) Pop() (T, int, bool) {
	for c := range m.classes {
		if v, ok := m.classes[c].Pop(); ok {
			m.total--
			return v, c, true
		}
	}
	var zero T
	return zero, -1, false
}

// Peek returns the element Pop would return, without removing it.
func (m *MultiClass[T]) Peek() (T, int, bool) {
	for c := range m.classes {
		if v, ok := m.classes[c].Peek(); ok {
			return v, c, true
		}
	}
	var zero T
	return zero, -1, false
}
