// Package queue implements the output-queue discipline of the simulated
// routers: an unbounded FIFO ring buffer per priority class, served
// head-of-line with lower class numbers first (class 0 is the highest
// priority). Within a class, service is strictly first-come first-served,
// which is what the paper's conservation-law argument requires.
package queue

import "fmt"

// FIFO is an unbounded first-in first-out queue backed by a growable
// circular buffer. The backing array always has a power-of-two capacity so
// ring positions are computed with a bitmask instead of a division. The
// zero value is ready to use.
type FIFO[T any] struct {
	buf  []T
	head int
	n    int
}

// Len returns the number of queued elements.
func (q *FIFO[T]) Len() int { return q.n }

// Cap returns the capacity of the backing array (0 or a power of two).
func (q *FIFO[T]) Cap() int { return len(q.buf) }

// Push appends v to the tail.
func (q *FIFO[T]) Push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
}

// PushSlot appends an element slot to the tail and returns a pointer to
// it for the caller to fill in place, saving a copy of T. The slot holds
// stale contents (it is not zeroed); the caller must assign every field.
// The pointer is valid only until the next Push, PushSlot, or Reset.
func (q *FIFO[T]) PushSlot() *T {
	if q.n == len(q.buf) {
		q.grow()
	}
	v := &q.buf[(q.head+q.n)&(len(q.buf)-1)]
	q.n++
	return v
}

func (q *FIFO[T]) grow() {
	newCap := len(q.buf) * 2 // doubling keeps the capacity a power of two
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]T, newCap)
	if q.head+q.n <= len(q.buf) {
		copy(buf, q.buf[q.head:q.head+q.n])
	} else {
		p := copy(buf, q.buf[q.head:])
		copy(buf[p:], q.buf[:q.head+q.n-len(q.buf)])
	}
	q.buf = buf
	q.head = 0
}

// Pop removes and returns the head element. The second result is false if
// the queue is empty.
func (q *FIFO[T]) Pop() (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero // release references for GC
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v, true
}

// PopRef removes the head element and returns a pointer to its slot in
// the backing array, avoiding a copy. The slot is not cleared: the pointer
// is valid only until the next Push, Reset, or PopRef-followed-by-Push on
// this queue, and popped slots keep their old contents. It is intended for
// hot paths moving plain value types; element types holding references
// should use Pop, which zeroes the slot for the garbage collector.
func (q *FIFO[T]) PopRef() (*T, bool) {
	if q.n == 0 {
		return nil, false
	}
	v := &q.buf[q.head]
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v, true
}

// Peek returns the head element without removing it.
func (q *FIFO[T]) Peek() (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	return q.buf[q.head], true
}

// Reset drops all queued elements but keeps the backing array, so a queue
// that is cleared and refilled repeatedly (e.g. across simulation runs)
// reaches its steady-state capacity once and never reallocates. Dropped
// elements are zeroed to release references for GC.
func (q *FIFO[T]) Reset() {
	var zero T
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		q.buf[(q.head+i)&mask] = zero
	}
	q.head, q.n = 0, 0
}

// MultiClass is a set of FIFO queues indexed by priority class; Pop serves
// the lowest-numbered nonempty class (head-of-line priority, non-preemptive
// — in the simulator a packet in transmission is never interrupted).
type MultiClass[T any] struct {
	classes []FIFO[T]
	total   int
}

// NewMultiClass creates a queue with the given number of priority classes.
func NewMultiClass[T any](classes int) *MultiClass[T] {
	if classes <= 0 {
		panic(fmt.Sprintf("queue: need at least one class, got %d", classes))
	}
	return &MultiClass[T]{classes: make([]FIFO[T], classes)}
}

// Classes returns the number of priority classes.
func (m *MultiClass[T]) Classes() int { return len(m.classes) }

// Len returns the total number of queued elements across all classes.
func (m *MultiClass[T]) Len() int { return m.total }

// LenClass returns the number of elements queued in class c.
func (m *MultiClass[T]) LenClass(c int) int { return m.classes[c].Len() }

// Push enqueues v in priority class c (0 = highest priority).
func (m *MultiClass[T]) Push(c int, v T) {
	m.classes[c].Push(v)
	m.total++
}

// PushSlot appends a slot to class c's tail and returns a pointer for the
// caller to fill in place (see FIFO.PushSlot for the contract).
func (m *MultiClass[T]) PushSlot(c int) *T {
	m.total++
	return m.classes[c].PushSlot()
}

// Pop dequeues the head of the highest-priority nonempty class, returning
// the element and its class.
func (m *MultiClass[T]) Pop() (T, int, bool) {
	for c := range m.classes {
		if v, ok := m.classes[c].Pop(); ok {
			m.total--
			return v, c, true
		}
	}
	var zero T
	return zero, -1, false
}

// PopRef is Pop without the copy: it dequeues the head of the
// highest-priority nonempty class and returns a pointer into that class's
// backing array. See FIFO.PopRef for the pointer's validity rules.
func (m *MultiClass[T]) PopRef() (*T, int, bool) {
	for c := range m.classes {
		if v, ok := m.classes[c].PopRef(); ok {
			m.total--
			return v, c, true
		}
	}
	return nil, -1, false
}

// Peek returns the element Pop would return, without removing it.
func (m *MultiClass[T]) Peek() (T, int, bool) {
	for c := range m.classes {
		if v, ok := m.classes[c].Peek(); ok {
			return v, c, true
		}
	}
	var zero T
	return zero, -1, false
}

// Reset empties every class while keeping each class's backing array for
// reuse (see FIFO.Reset).
func (m *MultiClass[T]) Reset() {
	for c := range m.classes {
		m.classes[c].Reset()
	}
	m.total = 0
}
