package queue

import "testing"

func BenchmarkFIFOPushPop(b *testing.B) {
	var q FIFO[int]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		if i&7 == 7 { // drain in bursts to exercise wraparound
			for j := 0; j < 8; j++ {
				q.Pop()
			}
		}
	}
}

func BenchmarkMultiClassPushPop(b *testing.B) {
	m := NewMultiClass[int](3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Push(i%3, i)
		if i&3 == 3 {
			for j := 0; j < 4; j++ {
				m.Pop()
			}
		}
	}
}

func BenchmarkMultiClassPopEmptyHighClasses(b *testing.B) {
	// Worst case for Pop: the only traffic is in the lowest class.
	m := NewMultiClass[int](3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Push(2, i)
		m.Pop()
	}
}
