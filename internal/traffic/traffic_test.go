package traffic

import (
	"math"
	"math/rand/v2"
	"testing"

	"prioritystar/internal/balance"
	"prioritystar/internal/torus"
)

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for _, mean := range []float64{0.1, 1, 5, 30, 400} {
		const n = 20000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := float64(Poisson(rng, mean))
			sum += x
			sumSq += x * x
		}
		gotMean := sum / n
		gotVar := sumSq/n - gotMean*gotMean
		tol := 5 * math.Sqrt(mean/n) * math.Max(1, math.Sqrt(2*mean)) // loose CLT bound
		if math.Abs(gotMean-mean) > 5*math.Sqrt(mean/n)+0.01 {
			t.Errorf("mean %g: sample mean %g", mean, gotMean)
		}
		if math.Abs(gotVar-mean) > tol+0.05*mean+0.05 {
			t.Errorf("mean %g: sample variance %g (tol %g)", mean, gotVar, tol)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 100; i++ {
		if Poisson(rng, 0) != 0 {
			t.Fatal("Poisson(0) must be 0")
		}
	}
}

func TestPoissonNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative mean should panic")
		}
	}()
	Poisson(rand.New(rand.NewPCG(1, 1)), -1)
}

func TestFixedLength(t *testing.T) {
	d := FixedLength(3)
	rng := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 10; i++ {
		if d.Sample(rng) != 3 {
			t.Fatal("fixed length should always be 3")
		}
	}
	if d.Mean() != 3 || d.Kind() != KindFixed {
		t.Error("fixed dist metadata wrong")
	}
}

func TestUnitLengthAndZeroValue(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	if UnitLength().Sample(rng) != 1 || UnitLength().Mean() != 1 {
		t.Error("UnitLength should be constant 1")
	}
	var zero LengthDist
	if zero.Sample(rng) != 1 || zero.Mean() != 1 {
		t.Error("zero-value LengthDist should behave as unit length")
	}
}

func TestFixedLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FixedLength(0) should panic")
		}
	}()
	FixedLength(0)
}

func TestGeometricLength(t *testing.T) {
	d := GeometricLength(4)
	rng := rand.New(rand.NewPCG(4, 4))
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		l := d.Sample(rng)
		if l < 1 {
			t.Fatal("geometric length below 1")
		}
		sum += float64(l)
	}
	got := sum / n
	if math.Abs(got-4) > 0.1 {
		t.Errorf("geometric sample mean = %g, want 4", got)
	}
	if d.Kind() != KindGeometric {
		t.Error("kind wrong")
	}
}

func TestGeometricMeanOne(t *testing.T) {
	d := GeometricLength(1)
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 100; i++ {
		if d.Sample(rng) != 1 {
			t.Fatal("geometric with mean 1 is constant 1")
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GeometricLength(0.5) should panic")
		}
	}()
	GeometricLength(0.5)
}

func TestUniformDestNeverSelf(t *testing.T) {
	s := torus.MustNew(4, 4)
	rng := rand.New(rand.NewPCG(6, 6))
	counts := make([]int, s.Size())
	src := torus.Node(5)
	const n = 16000
	for i := 0; i < n; i++ {
		v := UniformDest(rng, s, src)
		if v == src {
			t.Fatal("UniformDest returned the source")
		}
		if !s.Valid(v) {
			t.Fatal("UniformDest out of range")
		}
		counts[v]++
	}
	// Chi-square-ish sanity: every other node gets roughly n/(N-1).
	want := float64(n) / float64(s.Size()-1)
	for v, c := range counts {
		if torus.Node(v) == src {
			continue
		}
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("node %d: count %d, want ~%g", v, c, want)
		}
	}
}

func TestRhoRoundTrip(t *testing.T) {
	s := torus.MustNew(4, 4, 8)
	for _, frac := range []float64{0, 0.25, 0.5, 1} {
		for _, rho := range []float64{0.1, 0.5, 0.9} {
			r, err := RatesForRho(s, rho, frac, 1, balance.ExactDistance)
			if err != nil {
				t.Fatalf("frac %g rho %g: %v", frac, rho, err)
			}
			if got := r.Rho(s, 1, balance.ExactDistance); math.Abs(got-rho) > 1e-12 {
				t.Errorf("frac %g: round-trip rho = %g, want %g", frac, got, rho)
			}
		}
	}
}

func TestRhoSplitsLoad(t *testing.T) {
	s := torus.MustNew(8, 8)
	r, err := RatesForRho(s, 0.8, 0.5, 1, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	// Each component contributes exactly half of rho.
	b := Rates{LambdaB: r.LambdaB}
	u := Rates{LambdaR: r.LambdaR}
	if math.Abs(b.Rho(s, 1, balance.ExactDistance)-0.4) > 1e-12 {
		t.Errorf("broadcast share = %g", b.Rho(s, 1, balance.ExactDistance))
	}
	if math.Abs(u.Rho(s, 1, balance.ExactDistance)-0.4) > 1e-12 {
		t.Errorf("unicast share = %g", u.Rho(s, 1, balance.ExactDistance))
	}
}

func TestRhoScalesWithLength(t *testing.T) {
	s := torus.MustNew(8, 8)
	r, err := RatesForRho(s, 0.6, 1, 4, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Rho(s, 4, balance.ExactDistance); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("rho with length 4 = %g", got)
	}
	// Same rates with unit length carry 4x less load.
	if got := r.Rho(s, 1, balance.ExactDistance); math.Abs(got-0.15) > 1e-12 {
		t.Errorf("rho with length 1 = %g, want 0.15", got)
	}
}

func TestRatesForRhoErrors(t *testing.T) {
	s := torus.MustNew(8, 8)
	if _, err := RatesForRho(s, -0.1, 1, 1, balance.ExactDistance); err == nil {
		t.Error("negative rho should fail")
	}
	if _, err := RatesForRho(s, 0.5, 1.5, 1, balance.ExactDistance); err == nil {
		t.Error("broadcastFrac > 1 should fail")
	}
	if _, err := RatesForRho(s, 0.5, 0.5, 0, balance.ExactDistance); err == nil {
		t.Error("zero mean length should fail")
	}
	// 2x2 torus has floor(n/4) = 0 distances: unicast load cannot be
	// expressed under the paper's floor model.
	tiny := torus.MustNew(2, 2)
	if _, err := RatesForRho(tiny, 0.5, 0, 1, balance.PaperFloorDistance); err == nil {
		t.Error("zero paper-distance unicast workload should fail")
	}
}

func TestPaperFloorRhoUsesFloorDistance(t *testing.T) {
	// 8x8 torus: floor model D_ave = 4, exact = 2*64*16/(8*63) ~ 4.063.
	s := torus.MustNew(8, 8)
	r := Rates{LambdaR: 1}
	floor := r.Rho(s, 1, balance.PaperFloorDistance)
	exact := r.Rho(s, 1, balance.ExactDistance)
	if math.Abs(floor-1) > 1e-12 { // 1 * 4 / 4
		t.Errorf("floor rho = %g, want 1", floor)
	}
	if exact <= floor {
		t.Errorf("exact rho %g should exceed floor rho %g on 8x8", exact, floor)
	}
}
