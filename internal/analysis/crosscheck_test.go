package analysis

// Differential crosscheck of the closed-form Section 2/3.2 curves against
// the event-driven engine — the foundation the serving layer's surrogate
// (internal/surrogate) interpolates from. Table-driven over torus shapes
// and loads: the measured delays must respect the oblivious lower bounds
// (up to replication noise) while staying within a constant-factor corridor
// of them, so the analytic base curves are neither violated nor wildly
// loose anywhere in the surrogate's operating range.

import (
	"fmt"
	"testing"

	"prioritystar/internal/balance"
	"prioritystar/internal/spec"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// xcheckSpec is a broadcast-only priority-STAR sweep on one shape/rho cell,
// sized for test time: 2 replications are enough for a corridor check.
func xcheckSpec(dims string, rho float64) []byte {
	return []byte(fmt.Sprintf(`{
		"id": "t-xcheck", "dims": [%s], "rhos": [%g],
		"broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}],
		"warmup": 300, "measure": 2000, "drain": 300,
		"reps": 2, "seed": 31
	}`, dims, rho))
}

func TestLowerBoundsCrosscheckEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation crosscheck")
	}
	cases := []struct {
		dims  string
		shape *torus.Shape
	}{
		{"4, 4", torus.MustNew(4, 4)},
		{"8, 8", torus.MustNew(8, 8)},
		{"2, 4", torus.MustNew(2, 4)}, // a 2-ring dimension: degree 3, not 2d
	}
	rhos := []float64{0.2, 0.5, 0.8}
	for _, tc := range cases {
		for _, rho := range rhos {
			t.Run(fmt.Sprintf("%s@%g", tc.shape, rho), func(t *testing.T) {
				exp, err := spec.Decode(xcheckSpec(tc.dims, rho))
				if err != nil {
					t.Fatal(err)
				}
				res, err := exp.Run()
				if err != nil {
					t.Fatal(err)
				}
				p := res.Series[0].Points[0]
				if p.FailedReps > 0 || p.DivergedReps > 0 {
					t.Fatalf("cell did not complete cleanly: %d failed, %d diverged",
						p.FailedReps, p.DivergedReps)
				}

				// The oblivious bounds: no scheme may beat them, and
				// priority-STAR should stay within a constant factor — the
				// corridor the surrogate's fallback logic relies on. The
				// random-intermediate-node routing roughly doubles path
				// lengths and the bounds ignore tree contention, hence the
				// wide but load-independent factor.
				const corridor = 4.0
				checks := []struct {
					name  string
					mean  float64
					slack float64 // one-sided statistical slack below the bound
					bound float64
				}{
					{"reception", p.Reception.Mean(), p.Reception.HalfWidth95(), ReceptionLowerBound(tc.shape, rho)},
					{"broadcast", p.Broadcast.Mean(), p.Broadcast.HalfWidth95(), BroadcastLowerBound(tc.shape, rho)},
				}
				for _, c := range checks {
					if c.mean+c.slack < c.bound {
						t.Errorf("%s: measured %.3f (±%.3f) beats the oblivious lower bound %.3f",
							c.name, c.mean, c.slack, c.bound)
					}
					if c.mean > c.bound*corridor {
						t.Errorf("%s: measured %.3f is over %gx the lower bound %.3f — the analytic curve is uselessly loose here",
							c.name, c.mean, corridor, c.bound)
					}
				}

				// Section 3.2: the high-priority wait is a G/D/1 queue loaded
				// at rho/n, so it must stay o(1) — far below the low-priority
				// wait the M/D/1 term models — at every load in the table.
				minDim := tc.shape.Dim(0)
				for i := 1; i < tc.shape.Dims(); i++ {
					if d := tc.shape.Dim(i); d < minDim {
						minDim = d
					}
				}
				hiBound := HighPriorityWaitBound(rho, minDim)
				if hi := p.HighWait.Mean(); hi > hiBound*corridor+0.25 {
					t.Errorf("highWait: measured %.3f vs Section 3.2 bound %.3f", hi, hiBound)
				}
			})
		}
	}
}

// TestPaperTorusRhoMatchesTrafficRho pins the degree caveat documented on
// PaperTorusRho: with the paper's floor(n/4) distance model the closed form
// agrees exactly with traffic.Rates.Rho on shapes whose dimensions all have
// two links per node, and overstates the load by Degree/(2d) on shapes with
// a 2-ring dimension (where a node has one link in that dimension, not two).
func TestPaperTorusRhoMatchesTrafficRho(t *testing.T) {
	shapes := []*torus.Shape{
		torus.MustNew(4, 4),
		torus.MustNew(8, 8),
		torus.MustNew(3, 5),
		torus.MustNew(4, 4, 8),
		torus.MustNew(2, 4), // the caveat case
		torus.MustNew(2, 2, 6),
	}
	for _, s := range shapes {
		for _, rho := range []float64{0.2, 0.5, 0.8} {
			rates, err := traffic.RatesForRho(s, rho, 0.5, 1, balance.PaperFloorDistance)
			if err != nil {
				t.Fatal(err)
			}
			paper := PaperTorusRho(s, rates.LambdaB, rates.LambdaR)
			ratio := float64(s.Degree()) / float64(2*s.Dims())
			want := rho * ratio
			if !almost(paper, want, 1e-9) {
				t.Errorf("%s rho=%g: PaperTorusRho = %g, want rho*Degree/(2d) = %g", s, rho, paper, want)
			}
			if s.Degree() == 2*s.Dims() && !almost(paper, rho, 1e-9) {
				t.Errorf("%s: all dims >= 3 but PaperTorusRho %g != traffic rho %g", s, paper, rho)
			}
		}
	}
}
