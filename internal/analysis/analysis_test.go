package analysis

import (
	"math"
	"testing"

	"prioritystar/internal/balance"
	"prioritystar/internal/core"
	"prioritystar/internal/sim"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestHypercubeRho(t *testing.T) {
	// d=3: rho = lambdaB*7/3 + lambdaR*(1/2 + 1/14).
	got := HypercubeRho(3, 0.3, 0.7)
	want := 0.3*7.0/3 + 0.7*(0.5+1.0/14)
	if !almost(got, want, 1e-12) {
		t.Errorf("HypercubeRho = %g, want %g", got, want)
	}
	// Broadcast-only unit check: lambdaB = d/(2^d-1) gives rho = 1.
	if !almost(HypercubeRho(5, 5.0/31, 0), 1, 1e-12) {
		t.Error("hypercube saturation rate wrong")
	}
}

func TestMeshBroadcastRho(t *testing.T) {
	// n=4: rho = lambdaB * 15 / 3.
	if !almost(MeshBroadcastRho(4, 0.2), 1, 1e-12) {
		t.Errorf("MeshBroadcastRho = %g", MeshBroadcastRho(4, 0.2))
	}
	if MeshMaxBroadcastThroughput != 0.5 {
		t.Error("mesh max throughput constant wrong")
	}
	// Exact corner bound: n/(2(n-1)), decreasing toward 0.5.
	if got := MeshMaxBroadcastThroughputExact(2); got != 1 {
		t.Errorf("2x2 mesh bound = %g, want 1", got)
	}
	prev := 1.0
	for _, n := range []int{3, 4, 8, 64} {
		got := MeshMaxBroadcastThroughputExact(n)
		if got >= prev || got < 0.5 {
			t.Errorf("mesh bound n=%d: %g not decreasing toward 0.5", n, got)
		}
		prev = got
	}
	if MeshMaxBroadcastThroughputExact(1000) > 0.501 {
		t.Error("mesh bound should approach 0.5")
	}
}

func TestPaperTorusRho(t *testing.T) {
	// 8x8 torus: rho = lambdaB*63/4 + lambdaR*4/4.
	got := PaperTorusRho(torus.MustNew(8, 8), 0.04, 0.1)
	want := 0.04*63/4 + 0.1*1
	if !almost(got, want, 1e-12) {
		t.Errorf("PaperTorusRho = %g, want %g", got, want)
	}
}

func TestGD1AndMD1Wait(t *testing.T) {
	if GD1Wait(0, 1) != 0 {
		t.Error("zero load should have zero wait")
	}
	if !math.IsInf(GD1Wait(1, 1), 1) || !math.IsInf(MD1Wait(1.2), 1) {
		t.Error("saturated queue should have infinite wait")
	}
	// Poisson arrivals: V = rho reduces G/D/1 to M/D/1.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		want := rho / (2 * (1 - rho))
		if !almost(MD1Wait(rho), want, 1e-12) {
			t.Errorf("MD1Wait(%g) = %g, want %g", rho, MD1Wait(rho), want)
		}
		if !almost(GD1Wait(rho, rho), MD1Wait(rho), 1e-12) {
			t.Error("GD1Wait(rho, rho) must equal MD1Wait(rho)")
		}
	}
	// M/D/1 wait diverges as rho -> 1.
	if MD1Wait(0.99) < 40 {
		t.Error("near-saturation wait should be large")
	}
}

func TestHighPriorityWaitBound(t *testing.T) {
	// rho=0.9, n=8: rhoH = 0.1125 -> W_H ~ 0.0634 slots: o(1).
	w := HighPriorityWaitBound(0.9, 8)
	if w > 0.1 {
		t.Errorf("high-priority bound = %g, want < 0.1", w)
	}
	// Larger n shrinks it further (the O(1/n) claim).
	if HighPriorityWaitBound(0.9, 16) >= w {
		t.Error("bound should decrease with n")
	}
}

func TestLowerBoundsMonotone(t *testing.T) {
	s := torus.MustNew(8, 8)
	prev := 0.0
	for _, rho := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		lb := ReceptionLowerBound(s, rho)
		if lb <= prev {
			t.Errorf("reception bound not increasing at rho=%g", rho)
		}
		prev = lb
		if BroadcastLowerBound(s, rho) < lb {
			t.Error("broadcast bound must dominate reception bound")
		}
		if UnicastLowerBound(s, rho) != lb {
			t.Error("unicast and reception bounds share the same form")
		}
	}
	// At rho -> 0 the bounds reduce to distance/diameter.
	if !almost(ReceptionLowerBound(s, 0), s.AvgDistance(), 1e-12) {
		t.Error("rho=0 reception bound should equal average distance")
	}
	if !almost(BroadcastLowerBound(s, 0), 8, 1e-12) {
		t.Error("rho=0 broadcast bound should equal diameter")
	}
}

func TestConcurrency(t *testing.T) {
	if Concurrency(0.01, 100, 50) != 50 {
		t.Errorf("Concurrency = %g, want 50", Concurrency(0.01, 100, 50))
	}
}

func TestSeparateBalancingLimitApproachesTwoThirds(t *testing.T) {
	prev := 1.0
	for _, d := range []int{2, 3, 5, 8} {
		mt, err := SeparateBalancingLimit(4, d)
		if err != nil {
			t.Fatal(err)
		}
		if mt >= prev {
			t.Errorf("d=%d: limit %g should decrease with d (prev %g)", d, mt, prev)
		}
		if mt < AsymptoticSeparateLimit-1e-9 {
			t.Errorf("d=%d: limit %g fell below the asymptote 2/3", d, mt)
		}
		prev = mt
	}
	// d=8 should already be within 10% of 2/3.
	mt, _ := SeparateBalancingLimit(4, 8)
	if mt > AsymptoticSeparateLimit*1.1 {
		t.Errorf("d=8 limit %g not yet near 2/3", mt)
	}
	if _, err := SeparateBalancingLimit(4, 1); err == nil {
		t.Error("d=1 should error")
	}
}

// TestMD1MatchesSimulatedQueueWait cross-checks the queueing model against
// the simulator: for balanced broadcast-only FCFS traffic the per-link
// arrival process is approximately Poisson, so the measured queue wait
// should be near MD1Wait(rho).
func TestMD1MatchesSimulatedQueueWait(t *testing.T) {
	s := torus.MustNew(8, 8)
	rho := 0.5
	rates, err := traffic.RatesForRho(s, rho, 1, 1, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := core.STARFCFS(s, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Shape: s, Scheme: sch, Rates: rates, Seed: 7,
		Warmup: 2000, Measure: 10000, Drain: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.QueueWait[0].Mean()
	want := MD1Wait(rho) // 0.5 slots
	// Broadcast tree arrivals are burstier than Poisson (a delivery can
	// spawn several copies at once), so allow a factor-2 corridor.
	if got < want*0.5 || got > want*2.5 {
		t.Errorf("simulated FCFS wait %g vs M/D/1 %g: outside corridor", got, want)
	}
}
