// Package analysis collects the closed-form results of the paper's
// Section 2 and Section 3.2: throughput-factor formulas for hypercubes,
// meshes and tori, the G/D/1 waiting-time expression behind the priority
// STAR delay analysis, the oblivious lower-bound curves the figures are
// compared against, and Little's-law task-concurrency estimates (Fig. 8's
// caption).
//
// All delays are expressed in slots (the transmission time of a unit
// packet), matching the simulator.
package analysis

import (
	"fmt"
	"math"

	"prioritystar/internal/balance"
	"prioritystar/internal/torus"
)

// HypercubeRho returns the Section 2 throughput factor of a d-dimensional
// hypercube carrying broadcast rate lambdaB and unicast rate lambdaR per
// node:
//
//	rho = lambdaB*(2^d-1)/d + lambdaR*(1/2 + 1/(2*(2^d-1))).
func HypercubeRho(d int, lambdaB, lambdaR float64) float64 {
	n := math.Pow(2, float64(d))
	return lambdaB*(n-1)/float64(d) + lambdaR*(0.5+1/(2*(n-1)))
}

// MeshBroadcastRho returns the Section 2 throughput factor of an n x n mesh
// (no wraparound) carrying only broadcast traffic:
//
//	rho = lambdaB*(n^2-1)/(4-4/n).
func MeshBroadcastRho(n int, lambdaB float64) float64 {
	return lambdaB * (float64(n)*float64(n) - 1) / (4 - 4/float64(n))
}

// MeshMaxBroadcastThroughput is the Section 2 observation that corner nodes
// of a mesh have only two incident links, capping any broadcast scheme's
// maximum throughput factor at 0.5.
const MeshMaxBroadcastThroughput = 0.5

// MeshMaxBroadcastThroughputExact is the finite-n version of the corner
// bound for an n x n mesh: a corner must receive all N-1 packets over its 2
// incoming links while rho normalizes by the average degree 4 - 4/n, so no
// scheme can exceed n/(2(n-1)), which tends to the 0.5 of the paper's text.
func MeshMaxBroadcastThroughputExact(n int) float64 {
	return float64(n) / (2 * float64(n-1))
}

// PaperTorusRho returns the Section 4 throughput factor of a torus using
// the paper's floor(n_i/4) average-distance convention:
//
//	rho = lambdaB*(N-1)/(2d) + lambdaR*sum(floor(n_i/4))/(2d).
//
// Note the paper assumes every dimension has two links per node; for shapes
// with 2-ring dimensions use traffic.Rates.Rho, which divides by the true
// degree.
func PaperTorusRho(s *torus.Shape, lambdaB, lambdaR float64) float64 {
	twoD := 2 * float64(s.Dims())
	return lambdaB*float64(s.Size()-1)/twoD +
		lambdaR*balance.TotalDistance(s, balance.PaperFloorDistance)/twoD
}

// GD1Wait returns the average waiting time of the paper's G/D/1 queue with
// unit service, load rho and arrival-count variance v per slot:
//
//	W = v/(2*rho*(1-rho)) - 1/2.
//
// It returns +Inf at or beyond saturation.
func GD1Wait(rho, v float64) float64 {
	if rho <= 0 {
		return 0
	}
	if rho >= 1 {
		return math.Inf(1)
	}
	return v/(2*rho*(1-rho)) - 0.5
}

// MD1Wait is GD1Wait specialized to Poisson arrivals (variance = rho):
//
//	W = rho/(2*(1-rho)),
//
// the classical M/D/1 mean wait in service-time units.
func MD1Wait(rho float64) float64 {
	return GD1Wait(rho, rho)
}

// HighPriorityWaitBound returns the Section 3.2 bound on the mean wait of
// high-priority packets in an n-ary d-cube: a G/D/1 queue whose load is the
// high-priority fraction rhoH < 1/n of the total, giving O(1/n) wait.
func HighPriorityWaitBound(rho float64, n int) float64 {
	rhoH := rho / float64(n)
	return MD1Wait(rhoH)
}

// ReceptionLowerBound returns the Omega(d + 1/(1-rho)) oblivious lower
// bound on the average reception delay for random broadcasting in shape s
// (the Stamoulis-Tsitsiklis bound extended to tori in Section 2),
// instantiated as the uncontended average tree depth plus an M/D/1 queueing
// term. Measured curves must lie above it.
func ReceptionLowerBound(s *torus.Shape, rho float64) float64 {
	return s.AvgDistance() + MD1Wait(rho)
}

// BroadcastLowerBound is the corresponding bound for the average broadcast
// delay: no scheme can complete a broadcast before its copies reach the
// farthest node.
func BroadcastLowerBound(s *torus.Shape, rho float64) float64 {
	return float64(s.Diameter()) + MD1Wait(rho)
}

// UnicastLowerBound is the Section 2 bound for random 1-1 routing: average
// shortest-path distance plus queueing.
func UnicastLowerBound(s *torus.Shape, rho float64) float64 {
	return s.AvgDistance() + MD1Wait(rho)
}

// Concurrency applies Little's law: the expected number of tasks in flight
// network-wide when each of the N nodes generates ratePerNode tasks per
// slot and a task lives avgDelay slots.
func Concurrency(ratePerNode float64, n int, avgDelay float64) float64 {
	return ratePerNode * float64(n) * avgDelay
}

// SeparateBalancingLimit returns the maximum throughput factor of the
// paper's Section 1 example computed exactly: a torus with n_1 = ... =
// n_{d-1} = n and n_d = 2n, a 50/50 broadcast/unicast transmission split,
// broadcast balanced in isolation (Eq. 2) while unicast follows shortest
// paths. As d grows this approaches the paper's quoted ~0.67.
func SeparateBalancingLimit(n, d int) (float64, error) {
	if d < 2 {
		return 0, fmt.Errorf("analysis: need d >= 2, got %d", d)
	}
	dims := make([]int, d)
	for i := range dims {
		dims[i] = n
	}
	dims[d-1] = 2 * n
	s, err := torus.New(dims...)
	if err != nil {
		return 0, err
	}
	lambdaB := 1.0
	lambdaR := lambdaB * float64(s.Size()-1) / balance.TotalDistance(s, balance.ExactDistance)
	v, err := balance.BroadcastOnly(s)
	if err != nil {
		return 0, err
	}
	return balance.MaxThroughput(s, v.X, lambdaB, lambdaR, balance.ExactDistance), nil
}

// AsymptoticSeparateLimit is the d -> infinity value of
// SeparateBalancingLimit: with the long dimension carrying twice the
// average unicast load, max utilization is 1.5x the average, capping the
// throughput factor at 2/3 — the paper's "about 0.67".
const AsymptoticSeparateLimit = 2.0 / 3.0
