package obs_test

import (
	"bytes"
	"io"
	"testing"

	"prioritystar/internal/obs"
)

// fuzzSeedTrace builds a small, valid trace touching every opcode so the
// fuzzer starts from structurally meaningful bytes.
func fuzzSeedTrace(tb testing.TB) []byte {
	tb.Helper()
	m := obs.NewManifest([]int{4, 4}, "priority-STAR", 7, 0.01, 0.02, 10, 100, 20)
	var buf bytes.Buffer
	tw, err := obs.NewTraceWriter(&buf, m)
	if err != nil {
		tb.Fatal(err)
	}
	tw.Spawn(0, true, true)
	tw.Enqueue(0, 3, 0, 1, 2)
	tw.Service(1, 3, 0, 1, 4, 1)
	tw.Deliver(2, 5, true, false, 2)
	tw.Fault(2, 9, true, 15)
	tw.Fault(3, 10, false, 0)
	tw.Deliver(3, 6, true, true, 3)
	tw.SlotEnd(3, 1)
	if err := tw.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzTraceReader feeds arbitrary bytes to the trace decoder. The decoder
// must return an error for malformed input — never panic, hang, or allocate
// unboundedly. The seed corpus covers the clean trace, truncations at every
// interesting boundary, and single-bit flips; `go test` runs all seeds even
// without -fuzz.
func FuzzTraceReader(f *testing.F) {
	seed := fuzzSeedTrace(f)
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte("not a trace at all"))
	f.Add(seed[:len(seed)/2])         // truncated mid-stream
	f.Add(seed[:12])                  // truncated inside the header
	f.Add(append([]byte{}, seed[:len(seed)-1]...)) // last byte missing

	// Bit-flip a spread of positions: header magic, manifest, opcodes, fields.
	for _, pos := range []int{0, 4, 10, len(seed) / 2, len(seed) - 3} {
		if pos < 0 || pos >= len(seed) {
			continue
		}
		flipped := append([]byte{}, seed...)
		flipped[pos] ^= 0x40
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := obs.NewTraceReader(bytes.NewReader(data))
		if err != nil {
			return // malformed header: rejected cleanly
		}
		// Decode until clean EOF or a decode error; bound the event count so
		// a decoder bug that loops without consuming input still fails fast.
		for i := 0; i < 1<<20; i++ {
			_, err := tr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // corruption surfaced as an error, as required
			}
		}
		t.Fatalf("decoded over %d events from %d bytes without EOF", 1<<20, len(data))
	})
}

// FuzzSummarize replays arbitrary bytes through the higher-level summary
// path, which additionally aggregates per-dimension counters.
func FuzzSummarize(f *testing.F) {
	seed := fuzzSeedTrace(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-2])
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := obs.NewTraceReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		s, err := obs.Summarize(tr)
		if err != nil {
			return
		}
		if len(s.DimServices) > 1<<11 {
			t.Fatalf("summary grew %d dimension counters", len(s.DimServices))
		}
	})
}

// TestTraceReaderRejectsCorruption pins the specific corruption classes the
// fuzz targets explore, so regressions fail with a readable message even in
// non-fuzz CI runs.
func TestTraceReaderRejectsCorruption(t *testing.T) {
	seed := fuzzSeedTrace(t)

	t.Run("truncated-record", func(t *testing.T) {
		tr, err := obs.NewTraceReader(bytes.NewReader(seed[:len(seed)-1]))
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := tr.Next(); err != nil {
				if err == io.EOF {
					t.Fatal("truncated trace ended cleanly")
				}
				return
			}
		}
	})

	t.Run("unknown-opcode", func(t *testing.T) {
		bad := append([]byte{}, seed...)
		bad = append(bad, 0xee, 0x00)
		tr, err := obs.NewTraceReader(bytes.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		for {
			ev, err := tr.Next()
			if err == io.EOF {
				t.Fatal("unknown opcode not rejected")
			}
			if err != nil {
				return
			}
			_ = ev
		}
	})

	t.Run("absurd-dimension", func(t *testing.T) {
		var buf bytes.Buffer
		tw, err := obs.NewTraceWriter(&buf, obs.NewManifest([]int{4}, "x", 1, 0, 0, 0, 1, 0))
		if err != nil {
			t.Fatal(err)
		}
		tw.Service(0, 0, 1<<30, 0, 1, 0)
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		tr, err := obs.NewTraceReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Next(); err == nil {
			t.Fatal("dimension 2^30 decoded without error")
		}
	})
}
