package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestMetricSetBasics(t *testing.T) {
	var m MetricSet
	m.Add("jobs", 1)
	m.Add("jobs", 2)
	m.Set("depth", 4)
	if got := m.Counter("jobs"); got != 3 {
		t.Fatalf("Counter = %d, want 3", got)
	}
	if got := m.Gauge("depth"); got != 4 {
		t.Fatalf("Gauge = %g, want 4", got)
	}
	if got := m.Counter("absent"); got != 0 {
		t.Fatalf("absent counter = %d", got)
	}
	c, g := m.Names()
	if len(c) != 1 || c[0] != "jobs" || len(g) != 1 || g[0] != "depth" {
		t.Fatalf("Names = %v %v", c, g)
	}
}

func TestMetricSetJSONDeterministic(t *testing.T) {
	var m MetricSet
	m.Add("b", 2)
	m.Add("a", 1)
	m.Set("z", 1.5)
	b1, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(&m)
	if string(b1) != string(b2) {
		t.Fatalf("marshal unstable: %s vs %s", b1, b2)
	}
	var s Snapshot
	if err := json.Unmarshal(b1, &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["a"] != 1 || s.Counters["b"] != 2 || s.Gauges["z"] != 1.5 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestMetricSetObserveQuantiles(t *testing.T) {
	var m MetricSet
	for v := int64(1); v <= 1000; v++ {
		m.Observe("lat_us", v)
	}
	s := m.Snapshot()
	h, ok := s.Histograms["lat_us"]
	if !ok {
		t.Fatal("snapshot lost the histogram")
	}
	if h.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", h.Count)
	}
	// Log buckets answer quantiles within one power of two: the true p50 is
	// 500, so the reported upper bound must be in [500, 1023].
	if q := h.Quantile(0.5); q < 500 || q > 1023 {
		t.Fatalf("p50 = %d, want in [500, 1023]", q)
	}
	if q := h.Quantile(1); q < 1000 || q > 1023 {
		t.Fatalf("p100 = %d, want in [1000, 1023]", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.99); q != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", q)
	}
}

// TestSnapshotMergeSumsHistograms pins the psctl metrics fix: when the
// client and the daemon both carry a histogram under the same key, Merge
// must sum them bucket-wise — not drop one side — while counters still add
// and gauges still overwrite.
func TestSnapshotMergeSumsHistograms(t *testing.T) {
	var server, client MetricSet
	for i := 0; i < 10; i++ {
		server.Observe("http_submit_us", 100) // bucket 7: [64, 128)
	}
	for i := 0; i < 5; i++ {
		client.Observe("http_submit_us", 1000) // bucket 10: [512, 1024)
	}
	client.Observe("client_only_us", 3)
	server.Add("jobs", 2)
	client.Add("jobs", 1)
	server.Set("depth", 7)
	client.Set("depth", 1)

	snap := server.Snapshot()
	snap.Merge(client.Snapshot())

	h := snap.Histograms["http_submit_us"]
	if h.Count != 15 {
		t.Fatalf("merged count = %d, want 10+5", h.Count)
	}
	if len(h.Buckets) != 11 || h.Buckets[7] != 10 || h.Buckets[10] != 5 {
		t.Fatalf("merged buckets = %v, want 10 at bucket 7 and 5 at bucket 10", h.Buckets)
	}
	// The merged distribution answers quantiles spanning both sides: p50
	// lands in the server's bucket, p99 in the client's.
	if q := h.Quantile(0.5); q != 127 {
		t.Fatalf("merged p50 = %d, want 127", q)
	}
	if q := h.Quantile(0.99); q != 1023 {
		t.Fatalf("merged p99 = %d, want 1023", q)
	}
	if got := snap.Histograms["client_only_us"].Count; got != 1 {
		t.Fatalf("client-only histogram lost: count = %d", got)
	}
	if snap.Counters["jobs"] != 3 {
		t.Fatalf("counters = %v, want jobs summed to 3", snap.Counters)
	}
	if snap.Gauges["depth"] != 1 {
		t.Fatalf("gauges = %v, want depth overwritten to 1", snap.Gauges)
	}
	// Merging into an empty snapshot must deep-copy, not alias.
	var empty Snapshot
	empty.Merge(snap)
	if empty.Histograms["http_submit_us"].Count != 15 {
		t.Fatalf("merge into empty snapshot = %+v", empty.Histograms)
	}
}

func TestMetricSetConcurrent(t *testing.T) {
	var m MetricSet
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Add("n", 1)
				m.Set("g", float64(j))
				m.SetMax("peak", float64(j))
				m.Observe("h", int64(j))
				_ = m.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("n"); got != 8000 {
		t.Fatalf("Counter = %d, want 8000", got)
	}
}
