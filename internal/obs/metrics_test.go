package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestMetricSetBasics(t *testing.T) {
	var m MetricSet
	m.Add("jobs", 1)
	m.Add("jobs", 2)
	m.Set("depth", 4)
	if got := m.Counter("jobs"); got != 3 {
		t.Fatalf("Counter = %d, want 3", got)
	}
	if got := m.Gauge("depth"); got != 4 {
		t.Fatalf("Gauge = %g, want 4", got)
	}
	if got := m.Counter("absent"); got != 0 {
		t.Fatalf("absent counter = %d", got)
	}
	c, g := m.Names()
	if len(c) != 1 || c[0] != "jobs" || len(g) != 1 || g[0] != "depth" {
		t.Fatalf("Names = %v %v", c, g)
	}
}

func TestMetricSetJSONDeterministic(t *testing.T) {
	var m MetricSet
	m.Add("b", 2)
	m.Add("a", 1)
	m.Set("z", 1.5)
	b1, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(&m)
	if string(b1) != string(b2) {
		t.Fatalf("marshal unstable: %s vs %s", b1, b2)
	}
	var s Snapshot
	if err := json.Unmarshal(b1, &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["a"] != 1 || s.Counters["b"] != 2 || s.Gauges["z"] != 1.5 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestMetricSetConcurrent(t *testing.T) {
	var m MetricSet
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Add("n", 1)
				m.Set("g", float64(j))
				_ = m.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("n"); got != 8000 {
		t.Fatalf("Counter = %d, want 8000", got)
	}
}
