package obs_test

import (
	"bytes"
	"io"
	"testing"

	"prioritystar/internal/balance"
	"prioritystar/internal/core"
	"prioritystar/internal/obs"
	"prioritystar/internal/sim"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// recordTrace runs one simulation with a trace writer and a counter probe
// attached and returns the encoded trace plus the live counters.
func recordTrace(t *testing.T, dims []int, rho float64, seed uint64) ([]byte, *obs.Counters, obs.Manifest) {
	t.Helper()
	s := torus.MustNew(dims...)
	rates, err := traffic.RatesForRho(s, rho, 0.7, 1, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := core.PrioritySTAR(s, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewManifest(dims, "priority-STAR", seed, rates.LambdaB, rates.LambdaR, 100, 900, 300)
	m.Rho = rho
	var buf bytes.Buffer
	tw, err := obs.NewTraceWriter(&buf, m)
	if err != nil {
		t.Fatal(err)
	}
	cnt := &obs.Counters{}
	if _, err := sim.Run(sim.Config{
		Shape: s, Scheme: sch, Rates: rates, Seed: seed,
		Warmup: 100, Measure: 900, Drain: 300,
		Probe: obs.Multi{tw, cnt},
	}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), cnt, m
}

// TestTraceReplayMatchesLiveRun: replaying a recorded trace must reproduce
// the live run's event counts exactly — the cmd/trace contract.
func TestTraceReplayMatchesLiveRun(t *testing.T) {
	data, cnt, m := recordTrace(t, []int{4, 8}, 0.7, 17)

	r, err := obs.NewTraceReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Manifest(); got.Scheme != m.Scheme || got.Seed != m.Seed || got.Rho != m.Rho {
		t.Errorf("embedded manifest mismatch: %+v", got)
	}
	sum, err := obs.Summarize(r)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Delivers != cnt.Delivers || sum.Finals != cnt.Finals || sum.Broadcasts != cnt.Bcasts {
		t.Errorf("replayed deliveries (%d/%d/%d) != live (%d/%d/%d)",
			sum.Delivers, sum.Finals, sum.Broadcasts, cnt.Delivers, cnt.Finals, cnt.Bcasts)
	}
	if sum.Enqueues != cnt.Enqueues || sum.Services != cnt.Services ||
		sum.Spawns != cnt.Spawns || sum.Slots != cnt.Slots {
		t.Errorf("replayed counts diverged from live run:\n%+v\n%+v", sum, cnt)
	}
	if sum.MaxBacklog != cnt.MaxQueued {
		t.Errorf("replayed max backlog %d, live %d", sum.MaxBacklog, cnt.MaxQueued)
	}
	if sum.LastSlot != 100+900+300-1 {
		t.Errorf("last slot %d, want %d", sum.LastSlot, 100+900+300-1)
	}
	var dimTotal int64
	for _, n := range sum.DimServices {
		dimTotal += n
	}
	if len(sum.DimServices) != 2 || dimTotal != sum.Services {
		t.Errorf("per-dimension services %v don't cover %d services", sum.DimServices, sum.Services)
	}
}

// TestTraceEventFields: decoded events carry sane field values in order.
func TestTraceEventFields(t *testing.T) {
	data, _, _ := recordTrace(t, []int{4, 4}, 0.5, 23)
	r, err := obs.NewTraceReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	s := torus.MustNew(4, 4)
	last := int64(0)
	n := 0
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		if ev.Slot < last {
			t.Fatalf("slot went backwards: %d after %d", ev.Slot, last)
		}
		last = ev.Slot
		switch ev.Type {
		case obs.EvEnqueue:
			if !s.ValidLink(ev.Link) || ev.Depth < 1 {
				t.Fatalf("bad enqueue %+v", ev)
			}
		case obs.EvService:
			if !s.ValidLink(ev.Link) || ev.Length < 1 || ev.Wait < 0 {
				t.Fatalf("bad service %+v", ev)
			}
			if ev.Dim != s.LinkDim(ev.Link) {
				t.Fatalf("service dim %d, link dim %d", ev.Dim, s.LinkDim(ev.Link))
			}
		case obs.EvDeliver:
			if int(ev.Node) >= s.Size() || ev.Delay < 1 {
				t.Fatalf("bad deliver %+v", ev)
			}
			if ev.Broadcast && !ev.Final {
				t.Fatalf("broadcast copy not final: %+v", ev)
			}
		case obs.EvSpawn, obs.EvSlotEnd:
			// no per-field invariants beyond slot monotonicity
		default:
			t.Fatalf("unknown event type %v", ev.Type)
		}
	}
	if n == 0 {
		t.Fatal("empty trace")
	}
}

// TestTraceTruncationDetected: a trace cut mid-record must fail with a
// decode error, not silently succeed.
func TestTraceTruncationDetected(t *testing.T) {
	data, _, _ := recordTrace(t, []int{4, 4}, 0.5, 29)
	r, err := obs.NewTraceReader(bytes.NewReader(data[:len(data)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.Summarize(r); err == nil {
		t.Error("truncated trace summarized without error")
	}
}

// TestTraceRejectsGarbage: a non-trace file must be rejected at open.
func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := obs.NewTraceReader(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Error("garbage accepted as trace")
	}
	if _, err := obs.NewTraceReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted as trace")
	}
}
