package obs

// MetricSet is the process-level counterpart of the per-run probes: a named
// bag of monotonic counters and point-in-time gauges that long-lived
// components (the starsimd daemon's queue, worker pool, and result cache)
// mutate concurrently and expose over /metrics. Unlike Probe
// implementations it is safe for concurrent use; unlike the per-run
// counters it survives across runs.

import (
	"encoding/json"
	"math"
	"sort"
	"sync"

	"prioritystar/internal/stats"
)

// MetricSet holds named counters, gauges, and histograms. The zero value is
// ready to use.
type MetricSet struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*stats.LogHistogram
}

// Add increments counter name by delta (creating it at zero first).
func (m *MetricSet) Add(name string, delta int64) {
	m.mu.Lock()
	if m.counters == nil {
		m.counters = make(map[string]int64)
	}
	m.counters[name] += delta
	m.mu.Unlock()
}

// Counter returns counter name (zero when never touched).
func (m *MetricSet) Counter(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Set stores gauge name.
func (m *MetricSet) Set(name string, v float64) {
	m.mu.Lock()
	if m.gauges == nil {
		m.gauges = make(map[string]float64)
	}
	m.gauges[name] = v
	m.mu.Unlock()
}

// Gauge returns gauge name (zero when never set).
func (m *MetricSet) Gauge(name string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

// SetMax raises gauge name to v if v is larger (creating it at v). The
// daemon tracks high-watermarks (queue_depth_peak) with it so a load
// harness can see pressure that came and went between /metrics scrapes.
func (m *MetricSet) SetMax(name string, v float64) {
	m.mu.Lock()
	if m.gauges == nil {
		m.gauges = make(map[string]float64)
	}
	if cur, ok := m.gauges[name]; !ok || v > cur {
		m.gauges[name] = v
	}
	m.mu.Unlock()
}

// Observe records one observation into histogram name (creating it empty
// first). Histograms are power-of-two log buckets (stats.LogHistogram):
// cheap enough for per-request latency recording and mergeable across
// processes bucket-wise.
func (m *MetricSet) Observe(name string, v int64) {
	m.mu.Lock()
	if m.hists == nil {
		m.hists = make(map[string]*stats.LogHistogram)
	}
	h := m.hists[name]
	if h == nil {
		h = &stats.LogHistogram{}
		m.hists[name] = h
	}
	h.Add(v)
	m.mu.Unlock()
}

// HistogramSnapshot is the wire form of one histogram: total observation
// count plus per-bucket counts trimmed after the last occupied bucket.
// Bucket 0 holds zeros and bucket k (k >= 1) covers [2^(k-1), 2^k), exactly
// as in stats.LogHistogram, so two snapshots merge by element-wise adding
// Buckets.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1): the
// inclusive upper edge of the first bucket whose cumulative count reaches q.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	q = math.Min(math.Max(q, 0), 1)
	target := int64(math.Ceil(q * float64(h.Count)))
	if target < 1 {
		target = 1
	}
	seen := int64(0)
	for i, c := range h.Buckets {
		seen += c
		if seen >= target {
			if i == 0 {
				return 0
			}
			if i >= 63 {
				return math.MaxInt64
			}
			return 1<<i - 1
		}
	}
	return math.MaxInt64
}

// merge adds o's buckets into h element-wise, extending h as needed.
func (h *HistogramSnapshot) merge(o HistogramSnapshot) {
	if len(o.Buckets) > len(h.Buckets) {
		grown := make([]int64, len(o.Buckets))
		copy(grown, h.Buckets)
		h.Buckets = grown
	}
	for i, c := range o.Buckets {
		h.Buckets[i] += c
	}
	h.Count += o.Count
}

// Snapshot is a consistent copy of every metric, rendered with sorted keys
// so two identical states marshal to identical bytes.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current metric values under one lock acquisition.
func (m *MetricSet) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(m.counters)),
		Gauges:   make(map[string]float64, len(m.gauges)),
	}
	for k, v := range m.counters {
		s.Counters[k] = v
	}
	for k, v := range m.gauges {
		s.Gauges[k] = v
	}
	if len(m.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(m.hists))
		for k, h := range m.hists {
			s.Histograms[k] = HistogramSnapshot{Count: h.Count(), Buckets: h.Counts()}
		}
	}
	return s
}

// Merge folds o into s: counters add, gauges in o overwrite, histograms sum
// bucket-wise (a colliding key is two views of the same distribution — e.g.
// a client and a daemon both timing http_submit_us — so the merged
// histogram holds both ends' observations, never just one). psctl uses it
// to fold its client-side metrics into the daemon's snapshot before
// printing, so one document shows both ends of the connection.
func (s *Snapshot) Merge(o Snapshot) {
	if s.Counters == nil && len(o.Counters) > 0 {
		s.Counters = make(map[string]int64, len(o.Counters))
	}
	for k, v := range o.Counters {
		s.Counters[k] += v
	}
	if s.Gauges == nil && len(o.Gauges) > 0 {
		s.Gauges = make(map[string]float64, len(o.Gauges))
	}
	for k, v := range o.Gauges {
		s.Gauges[k] = v
	}
	if s.Histograms == nil && len(o.Histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(o.Histograms))
	}
	for k, v := range o.Histograms {
		h := s.Histograms[k]
		h.merge(v)
		s.Histograms[k] = h
	}
}

// MarshalJSON implements json.Marshaler with deterministic key order
// (encoding/json already sorts map keys; this is a consistent snapshot).
func (m *MetricSet) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.Snapshot())
}

// Names returns the sorted counter and gauge names, for tests and text
// renderings.
func (m *MetricSet) Names() (counters, gauges []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k := range m.counters {
		counters = append(counters, k)
	}
	for k := range m.gauges {
		gauges = append(gauges, k)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	return counters, gauges
}
