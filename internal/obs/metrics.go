package obs

// MetricSet is the process-level counterpart of the per-run probes: a named
// bag of monotonic counters and point-in-time gauges that long-lived
// components (the starsimd daemon's queue, worker pool, and result cache)
// mutate concurrently and expose over /metrics. Unlike Probe
// implementations it is safe for concurrent use; unlike the per-run
// counters it survives across runs.

import (
	"encoding/json"
	"sort"
	"sync"
)

// MetricSet holds named counters and gauges. The zero value is ready to
// use.
type MetricSet struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
}

// Add increments counter name by delta (creating it at zero first).
func (m *MetricSet) Add(name string, delta int64) {
	m.mu.Lock()
	if m.counters == nil {
		m.counters = make(map[string]int64)
	}
	m.counters[name] += delta
	m.mu.Unlock()
}

// Counter returns counter name (zero when never touched).
func (m *MetricSet) Counter(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Set stores gauge name.
func (m *MetricSet) Set(name string, v float64) {
	m.mu.Lock()
	if m.gauges == nil {
		m.gauges = make(map[string]float64)
	}
	m.gauges[name] = v
	m.mu.Unlock()
}

// Gauge returns gauge name (zero when never set).
func (m *MetricSet) Gauge(name string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

// Snapshot is a consistent copy of every metric, rendered with sorted keys
// so two identical states marshal to identical bytes.
type Snapshot struct {
	Counters map[string]int64   `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
}

// Snapshot copies the current metric values under one lock acquisition.
func (m *MetricSet) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(m.counters)),
		Gauges:   make(map[string]float64, len(m.gauges)),
	}
	for k, v := range m.counters {
		s.Counters[k] = v
	}
	for k, v := range m.gauges {
		s.Gauges[k] = v
	}
	return s
}

// Merge folds o into s: counters add, gauges in o overwrite. psctl uses it
// to fold its client-side counters (retries) into the daemon's snapshot
// before printing, so one document shows both ends of the connection.
func (s *Snapshot) Merge(o Snapshot) {
	if s.Counters == nil && len(o.Counters) > 0 {
		s.Counters = make(map[string]int64, len(o.Counters))
	}
	for k, v := range o.Counters {
		s.Counters[k] += v
	}
	if s.Gauges == nil && len(o.Gauges) > 0 {
		s.Gauges = make(map[string]float64, len(o.Gauges))
	}
	for k, v := range o.Gauges {
		s.Gauges[k] = v
	}
}

// MarshalJSON implements json.Marshaler with deterministic key order
// (encoding/json already sorts map keys; this is a consistent snapshot).
func (m *MetricSet) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.Snapshot())
}

// Names returns the sorted counter and gauge names, for tests and text
// renderings.
func (m *MetricSet) Names() (counters, gauges []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k := range m.counters {
		counters = append(counters, k)
	}
	for k := range m.gauges {
		gauges = append(gauges, k)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	return counters, gauges
}
