package obs_test

import (
	"math"
	"testing"

	"prioritystar/internal/balance"
	"prioritystar/internal/core"
	"prioritystar/internal/obs"
	"prioritystar/internal/sim"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// instrumentedRun executes one simulation with the given probe attached and
// returns the engine's own result for cross-checking.
func instrumentedRun(t *testing.T, dims []int, rho, frac float64, seed uint64,
	warmup, measure, drain int64, p obs.Probe) (*sim.Result, *torus.Shape) {
	t.Helper()
	s := torus.MustNew(dims...)
	rates, err := traffic.RatesForRho(s, rho, frac, 1, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := core.PrioritySTAR(s, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Shape: s, Scheme: sch, Rates: rates, Seed: seed,
		Warmup: warmup, Measure: measure, Drain: drain,
		Probe: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, s
}

// TestCountersConsistency: the event stream must be internally consistent —
// every service follows an enqueue, every delivery follows a service, and
// the slot count equals the simulated horizon.
func TestCountersConsistency(t *testing.T) {
	c := &obs.Counters{}
	warmup, measure, drain := int64(200), int64(1500), int64(500)
	res, _ := instrumentedRun(t, []int{4, 8}, 0.7, 0.6, 5, warmup, measure, drain, c)

	if c.Slots != warmup+measure+drain {
		t.Errorf("slots %d, horizon %d", c.Slots, warmup+measure+drain)
	}
	if c.Enqueues == 0 || c.Services == 0 || c.Delivers == 0 || c.Spawns == 0 {
		t.Fatalf("empty counters: %+v", c)
	}
	// Every transmission was enqueued first, and every delivery is a
	// completed transmission.
	if c.Services > c.Enqueues {
		t.Errorf("services %d > enqueues %d", c.Services, c.Enqueues)
	}
	if c.Delivers > c.Services {
		t.Errorf("delivers %d > services %d", c.Delivers, c.Services)
	}
	if c.Measured != res.GeneratedBroadcasts+res.GeneratedUnicasts {
		t.Errorf("measured spawns %d, result generated %d",
			c.Measured, res.GeneratedBroadcasts+res.GeneratedUnicasts)
	}
	if c.MaxQueued > res.MaxBacklog {
		t.Errorf("probe max backlog %d > engine max %d", c.MaxQueued, res.MaxBacklog)
	}
}

// TestLinkLoadMatchesEngineUtilization: the probe's per-dimension and
// average utilization must be bit-identical to the engine's own Result
// fields — both integrate the same busy slots over the same window.
func TestLinkLoadMatchesEngineUtilization(t *testing.T) {
	for _, dims := range [][]int{{8, 8}, {4, 8}, {3, 4, 5}} {
		load := obs.NewLinkLoad(torus.MustNew(dims...), 300, 2000)
		res, s := instrumentedRun(t, dims, 0.8, 0.7, 9, 300, 2000, 400, load)
		got := load.DimUtilization()
		if len(got) != s.Dims() {
			t.Fatalf("%v: %d dims reported, want %d", dims, len(got), s.Dims())
		}
		for i := range got {
			if got[i] != res.DimUtilization[i] {
				t.Errorf("%v dim %d: probe %v, engine %v", dims, i, got[i], res.DimUtilization[i])
			}
		}
		if load.AvgUtilization() != res.AvgUtilization {
			t.Errorf("%v: probe avg %v, engine %v", dims, load.AvgUtilization(), res.AvgUtilization)
		}
		rep := load.Report()
		var services, links int64
		for _, r := range rep {
			services += r.Services
			links += r.Links
		}
		if links != int64(s.Links()) {
			t.Errorf("%v: report covers %d links, shape has %d", dims, links, s.Links())
		}
		if services == 0 {
			t.Errorf("%v: no services recorded in window", dims)
		}
	}
}

// TestLinkLoadPerLinkAveragesToDim: per-link utilizations must average to
// the dimension utilization they roll up into.
func TestLinkLoadPerLinkAveragesToDim(t *testing.T) {
	s := torus.MustNew(4, 4)
	load := obs.NewLinkLoad(s, 100, 1000)
	_, _ = instrumentedRun(t, []int{4, 4}, 0.6, 1, 3, 100, 1000, 200, load)
	dim := load.DimUtilization()
	sums := make([]float64, s.Dims())
	counts := make([]int64, s.Dims())
	for l := 0; l < s.LinkSlots(); l++ {
		id := torus.LinkID(l)
		if !s.ValidLink(id) {
			continue
		}
		sums[s.LinkDim(id)] += load.LinkUtilization(id)
		counts[s.LinkDim(id)]++
	}
	for i := range sums {
		avg := sums[i] / float64(counts[i])
		if math.Abs(avg-dim[i]) > 1e-12 {
			t.Errorf("dim %d: per-link average %v, dim utilization %v", i, avg, dim[i])
		}
	}
}

// TestOccupancyAndShare: the occupancy histograms sample once per slot, and
// the service shares cover every service with high priority served no worse
// than low (head-of-line priority).
func TestOccupancyAndShare(t *testing.T) {
	std := obs.NewStandard(torus.MustNew(4, 8), 200, 2000)
	_, _ = instrumentedRun(t, []int{4, 8}, 0.8, 0.6, 7, 200, 2000, 400, std)

	if got, want := std.Occ.Backlog.Count(), std.Count.Slots; got != want {
		t.Errorf("backlog samples %d, slots %d", got, want)
	}
	if got, want := std.Occ.Depth.Count(), std.Count.Enqueues; got != want {
		t.Errorf("depth samples %d, enqueues %d", got, want)
	}
	if std.Occ.Depth.Max() != std.Count.MaxDepth {
		t.Errorf("depth max %d, counter max %d", std.Occ.Depth.Max(), std.Count.MaxDepth)
	}

	shares := std.Share.Shares()
	if len(shares) < 2 {
		t.Fatalf("priority STAR uses 2 classes, shares %v", shares)
	}
	var served int64
	total := 0.0
	for _, cs := range shares {
		served += cs.Served
		total += cs.Share
	}
	if served != std.Count.Services {
		t.Errorf("shares cover %d services, counter %d", served, std.Count.Services)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %v", total)
	}
	// Class 0 (broadcast-continuation, high priority) must wait less on
	// average than the lowest class under load.
	if shares[0].WaitMean >= shares[len(shares)-1].WaitMean {
		t.Errorf("high-priority wait %.3f not below low-priority wait %.3f",
			shares[0].WaitMean, shares[len(shares)-1].WaitMean)
	}
}

// TestMultiFansOut: Multi must deliver every event to every probe.
func TestMultiFansOut(t *testing.T) {
	a, b := &obs.Counters{}, &obs.Counters{}
	_, _ = instrumentedRun(t, []int{4, 4}, 0.5, 1, 11, 50, 400, 100, obs.Multi{a, b})
	if *a != *b {
		t.Errorf("fanned-out counters diverged:\n%+v\n%+v", *a, *b)
	}
	if a.Slots == 0 {
		t.Error("no events delivered through Multi")
	}
}

// TestStandardReport: the assembled metrics report is complete.
func TestStandardReport(t *testing.T) {
	std := obs.NewStandard(torus.MustNew(4, 4), 100, 800)
	_, _ = instrumentedRun(t, []int{4, 4}, 0.6, 0.5, 13, 100, 800, 200, std)
	m := obs.NewManifest([]int{4, 4}, "priority-STAR", 13, 0.1, 0.2, 100, 800, 200)
	rep := std.Report(m)
	if rep.Manifest.Schema != obs.ManifestSchema {
		t.Errorf("schema %q", rep.Manifest.Schema)
	}
	if len(rep.DimLoad) != 2 || len(rep.Shares) == 0 {
		t.Fatalf("incomplete report: %+v", rep)
	}
	if rep.Backlog.Count == 0 || rep.QueueDepth.Count == 0 || rep.Counters.Services == 0 {
		t.Errorf("empty report sections: %+v", rep)
	}
}

// TestManifestRoundtrip: Save/LoadManifest preserve every field.
func TestManifestRoundtrip(t *testing.T) {
	m := obs.NewManifest([]int{4, 4, 8}, "priority-STAR-3", 42, 0.01, 0.02, 500, 3000, 1000)
	m.Rho = 0.8
	m.Length = "geom:4"
	m.CreatedAt = "2026-08-06T00:00:00Z"
	path := t.TempDir() + "/run.json"
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := obs.LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheme != m.Scheme || got.Seed != m.Seed || got.Rho != m.Rho ||
		got.Length != m.Length || len(got.Dims) != 3 || got.Measure != m.Measure {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, m)
	}
	if obs.ManifestPath("x/y.trace") != "x/y.trace.manifest.json" {
		t.Errorf("manifest path %q", obs.ManifestPath("x/y.trace"))
	}
}
