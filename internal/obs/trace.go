package obs

// Binary event traces. A trace file is:
//
//	magic "PSOBS1\n"
//	uvarint manifest length, manifest JSON
//	records...
//
// Each record is an opcode byte, a uvarint slot delta (slots are
// non-decreasing across the event stream, so deltas stay tiny), and a fixed
// opcode-specific list of uvarint fields. Deliver and Spawn pack their
// booleans into a single flags field. The format is append-only and
// self-describing enough for cmd/trace to replay any recorded run without
// the code that produced it.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"prioritystar/internal/torus"
)

// TraceMagic opens every trace file.
const TraceMagic = "PSOBS1\n"

// EventType discriminates trace records.
type EventType uint8

// Trace record opcodes.
const (
	EvEnqueue EventType = iota + 1
	EvService
	EvDeliver
	EvSpawn
	EvSlotEnd
	EvFault
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EvEnqueue:
		return "enqueue"
	case EvService:
		return "service"
	case EvDeliver:
		return "deliver"
	case EvSpawn:
		return "spawn"
	case EvSlotEnd:
		return "slot-end"
	case EvFault:
		return "fault"
	default:
		return fmt.Sprintf("event(%d)", uint8(t))
	}
}

// Flag bits for Deliver and Spawn records.
const (
	flagBroadcast = 1 << iota
	flagFinal
	flagMeasured
)

// Event is one decoded trace record. Only the fields relevant to Type are
// populated.
type Event struct {
	Type EventType
	Slot int64

	// Enqueue and Service.
	Link  torus.LinkID
	Dim   int
	Class int
	Depth int // Enqueue only

	// Service.
	Length int32
	Wait   int64

	// Deliver.
	Node      torus.Node
	Broadcast bool
	Final     bool
	Delay     int64

	// Spawn.
	Measured bool

	// SlotEnd.
	Backlog int64

	// Fault (Link is shared with Enqueue/Service).
	Permanent bool
	Lost      int64
}

// TraceWriter is a Probe that streams every engine event to a binary trace.
// Writes are buffered; call Flush before closing the underlying writer and
// check Err for any deferred write error.
type TraceWriter struct {
	w        *bufio.Writer
	lastSlot int64
	events   int64
	err      error
	buf      [binary.MaxVarintLen64]byte
}

// NewTraceWriter writes the trace header (magic plus embedded manifest) and
// returns a writer ready to record events.
func NewTraceWriter(w io.Writer, m Manifest) (*TraceWriter, error) {
	t := &TraceWriter{w: bufio.NewWriterSize(w, 1<<16)}
	mjson, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("obs: encoding trace manifest: %w", err)
	}
	if _, err := t.w.WriteString(TraceMagic); err != nil {
		return nil, err
	}
	t.uvarint(uint64(len(mjson)))
	if _, err := t.w.Write(mjson); err != nil {
		return nil, err
	}
	if t.err != nil {
		return nil, t.err
	}
	return t, nil
}

func (t *TraceWriter) uvarint(v uint64) {
	if t.err != nil {
		return
	}
	n := binary.PutUvarint(t.buf[:], v)
	if _, err := t.w.Write(t.buf[:n]); err != nil {
		t.err = err
	}
}

func (t *TraceWriter) begin(op EventType, slot int64) {
	if t.err != nil {
		return
	}
	if err := t.w.WriteByte(byte(op)); err != nil {
		t.err = err
		return
	}
	t.uvarint(uint64(slot - t.lastSlot))
	t.lastSlot = slot
	t.events++
}

// Enqueue implements Probe.
func (t *TraceWriter) Enqueue(slot int64, link torus.LinkID, dim, class, depth int) {
	t.begin(EvEnqueue, slot)
	t.uvarint(uint64(link))
	t.uvarint(uint64(dim))
	t.uvarint(uint64(class))
	t.uvarint(uint64(depth))
}

// Service implements Probe.
func (t *TraceWriter) Service(slot int64, link torus.LinkID, dim, class int, length int32, wait int64) {
	t.begin(EvService, slot)
	t.uvarint(uint64(link))
	t.uvarint(uint64(dim))
	t.uvarint(uint64(class))
	t.uvarint(uint64(length))
	t.uvarint(uint64(wait))
}

// Deliver implements Probe.
func (t *TraceWriter) Deliver(slot int64, node torus.Node, broadcast, final bool, delay int64) {
	t.begin(EvDeliver, slot)
	t.uvarint(uint64(node))
	flags := uint64(0)
	if broadcast {
		flags |= flagBroadcast
	}
	if final {
		flags |= flagFinal
	}
	t.uvarint(flags)
	t.uvarint(uint64(delay))
}

// Spawn implements Probe.
func (t *TraceWriter) Spawn(slot int64, broadcast, measured bool) {
	t.begin(EvSpawn, slot)
	flags := uint64(0)
	if broadcast {
		flags |= flagBroadcast
	}
	if measured {
		flags |= flagMeasured
	}
	t.uvarint(flags)
}

// SlotEnd implements Probe.
func (t *TraceWriter) SlotEnd(slot int64, backlog int64) {
	t.begin(EvSlotEnd, slot)
	t.uvarint(uint64(backlog))
}

// Fault implements Probe.
func (t *TraceWriter) Fault(slot int64, link torus.LinkID, permanent bool, lost int64) {
	t.begin(EvFault, slot)
	t.uvarint(uint64(link))
	p := uint64(0)
	if permanent {
		p = 1
	}
	t.uvarint(p)
	t.uvarint(uint64(lost))
}

// Events returns the number of records written so far.
func (t *TraceWriter) Events() int64 { return t.events }

// Flush drains the internal buffer to the underlying writer.
func (t *TraceWriter) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Err returns the first write error, if any.
func (t *TraceWriter) Err() error { return t.err }

// maxTraceDims bounds the dimension field of decoded records. Real tori
// have a handful of dimensions; anything larger is corruption, and rejecting
// it here keeps Summarize's per-dimension slice from ballooning on a
// malformed trace.
const maxTraceDims = 1 << 10

// TraceReader decodes a trace file sequentially.
type TraceReader struct {
	r        *bufio.Reader
	m        Manifest
	lastSlot int64
}

// NewTraceReader validates the header and decodes the embedded manifest.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	t := &TraceReader{r: bufio.NewReaderSize(r, 1<<16)}
	magic := make([]byte, len(TraceMagic))
	if _, err := io.ReadFull(t.r, magic); err != nil {
		return nil, fmt.Errorf("obs: reading trace magic: %w", err)
	}
	if string(magic) != TraceMagic {
		return nil, fmt.Errorf("obs: not a trace file (magic %q)", magic)
	}
	mlen, err := binary.ReadUvarint(t.r)
	if err != nil {
		return nil, fmt.Errorf("obs: reading manifest length: %w", err)
	}
	if mlen > 1<<20 {
		return nil, fmt.Errorf("obs: unreasonable manifest length %d", mlen)
	}
	mjson := make([]byte, mlen)
	if _, err := io.ReadFull(t.r, mjson); err != nil {
		return nil, fmt.Errorf("obs: reading manifest: %w", err)
	}
	if err := json.Unmarshal(mjson, &t.m); err != nil {
		return nil, fmt.Errorf("obs: parsing trace manifest: %w", err)
	}
	return t, nil
}

// Manifest returns the manifest embedded in the trace header.
func (t *TraceReader) Manifest() Manifest { return t.m }

func (t *TraceReader) field() (uint64, error) {
	v, err := binary.ReadUvarint(t.r)
	if err == io.EOF {
		// EOF inside a record is corruption, not a clean end.
		return 0, io.ErrUnexpectedEOF
	}
	return v, err
}

// Next decodes the next record. It returns io.EOF at a clean end of trace
// and io.ErrUnexpectedEOF for a record cut short.
func (t *TraceReader) Next() (Event, error) {
	op, err := t.r.ReadByte()
	if err != nil {
		return Event{}, err // io.EOF here is the clean end
	}
	delta, err := t.field()
	if err != nil {
		return Event{}, err
	}
	t.lastSlot += int64(delta)
	ev := Event{Type: EventType(op), Slot: t.lastSlot}
	read := func(dst *uint64) bool {
		if err != nil {
			return false
		}
		*dst, err = t.field()
		return err == nil
	}
	var a, b, c, d, e uint64
	switch ev.Type {
	case EvEnqueue:
		if read(&a) && read(&b) && read(&c) && read(&d) {
			if b >= maxTraceDims {
				return Event{}, fmt.Errorf("obs: corrupt trace: dimension %d at slot %d", b, ev.Slot)
			}
			ev.Link = torus.LinkID(a)
			ev.Dim = int(b)
			ev.Class = int(c)
			ev.Depth = int(d)
		}
	case EvService:
		if read(&a) && read(&b) && read(&c) && read(&d) && read(&e) {
			if b >= maxTraceDims {
				return Event{}, fmt.Errorf("obs: corrupt trace: dimension %d at slot %d", b, ev.Slot)
			}
			ev.Link = torus.LinkID(a)
			ev.Dim = int(b)
			ev.Class = int(c)
			ev.Length = int32(d)
			ev.Wait = int64(e)
		}
	case EvDeliver:
		if read(&a) && read(&b) && read(&c) {
			ev.Node = torus.Node(a)
			ev.Broadcast = b&flagBroadcast != 0
			ev.Final = b&flagFinal != 0
			ev.Delay = int64(c)
		}
	case EvSpawn:
		if read(&a) {
			ev.Broadcast = a&flagBroadcast != 0
			ev.Measured = a&flagMeasured != 0
		}
	case EvSlotEnd:
		if read(&a) {
			ev.Backlog = int64(a)
		}
	case EvFault:
		if read(&a) && read(&b) && read(&c) {
			ev.Link = torus.LinkID(a)
			ev.Permanent = b != 0
			ev.Lost = int64(c)
		}
	default:
		return Event{}, fmt.Errorf("obs: unknown trace opcode %d at slot %d", op, ev.Slot)
	}
	if err != nil {
		return Event{}, err
	}
	return ev, nil
}

// TraceSummary is what replaying a trace yields: event counts and the load
// aggregates recomputable from the stream alone.
type TraceSummary struct {
	Events      int64   `json:"events"`
	Enqueues    int64   `json:"enqueues"`
	Services    int64   `json:"services"`
	Delivers    int64   `json:"delivers"`
	Finals      int64   `json:"finals"`
	Broadcasts  int64   `json:"broadcasts"`
	Spawns      int64   `json:"spawns"`
	Slots       int64   `json:"slots"`
	Faults      int64   `json:"faults"`
	LostCopies  int64   `json:"lost_copies"`
	LastSlot    int64   `json:"last_slot"`
	MaxBacklog  int64   `json:"max_backlog"`
	DimServices []int64 `json:"dim_services"`
}

// Summarize replays the remaining records of a trace into a summary.
func Summarize(r *TraceReader) (TraceSummary, error) {
	var s TraceSummary
	s.DimServices = make([]int64, len(r.Manifest().Dims))
	for {
		ev, err := r.Next()
		if err == io.EOF {
			return s, nil
		}
		if err != nil {
			return s, err
		}
		s.Events++
		s.LastSlot = ev.Slot
		switch ev.Type {
		case EvEnqueue:
			s.Enqueues++
		case EvService:
			s.Services++
			for ev.Dim >= len(s.DimServices) {
				s.DimServices = append(s.DimServices, 0)
			}
			s.DimServices[ev.Dim]++
		case EvDeliver:
			s.Delivers++
			if ev.Final {
				s.Finals++
			}
			if ev.Broadcast {
				s.Broadcasts++
			}
		case EvSpawn:
			s.Spawns++
		case EvSlotEnd:
			s.Slots++
			if ev.Backlog > s.MaxBacklog {
				s.MaxBacklog = ev.Backlog
			}
		case EvFault:
			s.Faults++
			s.LostCopies += ev.Lost
		}
	}
}
