package obs

// Run manifests: every metrics or trace file is written alongside a small
// JSON document pinning the exact run that produced it — topology, scheme,
// seed, rates, horizon, and the git revision of the build — so results stay
// reproducible after the tree moves on.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
)

// ManifestSchema identifies the manifest document version.
const ManifestSchema = "prioritystar-obs/v1"

// Manifest pins the run that produced a metrics or trace file.
type Manifest struct {
	Schema    string  `json:"schema"`
	CreatedAt string  `json:"created_at,omitempty"` // RFC 3339, set by the caller
	GitRev    string  `json:"git_rev,omitempty"`
	GoVersion string  `json:"go_version,omitempty"`
	Dims      []int   `json:"dims"`
	Scheme    string  `json:"scheme"`
	Seed      uint64  `json:"seed"`
	LambdaB   float64 `json:"lambda_b"`
	LambdaR   float64 `json:"lambda_r"`
	Rho       float64 `json:"rho,omitempty"`
	Length    string  `json:"length,omitempty"` // fixed:N | geom:MEAN
	Warmup    int64   `json:"warmup"`
	Measure   int64   `json:"measure"`
	Drain     int64   `json:"drain"`
}

// NewManifest fills a manifest with the run parameters plus the build's
// go version and git revision (when the binary embeds VCS info).
func NewManifest(dims []int, scheme string, seed uint64, lambdaB, lambdaR float64,
	warmup, measure, drain int64) Manifest {
	return Manifest{
		Schema:    ManifestSchema,
		GitRev:    GitRevision(),
		GoVersion: runtime.Version(),
		Dims:      dims,
		Scheme:    scheme,
		Seed:      seed,
		LambdaB:   lambdaB,
		LambdaR:   lambdaR,
		Warmup:    warmup,
		Measure:   measure,
		Drain:     drain,
	}
}

// GitRevision returns the VCS revision embedded in the running binary
// ("" when built without VCS stamping, e.g. under `go test`).
func GitRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" && dirty {
		rev += "+dirty"
	}
	return rev
}

// ManifestPath returns the sidecar manifest path for a data file.
func ManifestPath(dataPath string) string { return dataPath + ".manifest.json" }

// Save writes the manifest as indented JSON.
func (m Manifest) Save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding manifest: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadManifest reads a manifest written by Save.
func LoadManifest(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("obs: parsing %s: %w", path, err)
	}
	return m, nil
}
