// Package obs is the simulator's observability layer. The engine in
// internal/sim accepts an optional Probe and invokes it at the six
// hot-path event sites:
//
//   - Enqueue: a packet joined a link's output queue;
//   - Service: a link started transmitting a packet;
//   - Deliver: a packet finished crossing a link (a broadcast copy
//     reaching a node, or a unicast hop/final delivery);
//   - Spawn: a new broadcast or unicast task was generated;
//   - SlotEnd: a simulated slot completed, with the total backlog;
//   - Fault: a failed link blocked service or severed a broadcast
//     subtree (only fires when a fault schedule is active).
//
// When no probe is attached the engine pays exactly one nil comparison per
// site, and attaching a probe never changes the simulated trajectory: the
// engine passes values out but a probe cannot reach back into engine state
// or the RNG (guarded by the determinism tests in internal/sim). Concrete
// probes in this package measure the quantities the paper's Section 3
// analysis reasons about — per-dimension link load (Eq. 2's equal-load
// prediction), queue-depth dynamics, and priority service shares — and
// TraceWriter records the full event stream to a compact binary trace that
// cmd/trace replays.
package obs

import (
	"prioritystar/internal/stats"
	"prioritystar/internal/torus"
)

// Probe receives engine events. Implementations must be cheap: every method
// runs on the simulator hot path. A probe observes one run at a time; none
// of the probes in this package are safe for concurrent use.
type Probe interface {
	// Enqueue fires after a packet joins the class-class output queue of
	// link. dim is the link's torus dimension and depth the queue's total
	// length after the push.
	Enqueue(slot int64, link torus.LinkID, dim, class, depth int)
	// Service fires when link starts transmitting a packet: its priority
	// class, its length in slots, and the time it waited in the output
	// queue.
	Service(slot int64, link torus.LinkID, dim, class int, length int32, wait int64)
	// Deliver fires when a packet finishes crossing a link into node.
	// broadcast marks broadcast copies (final is then always true); for
	// unicast packets final marks arrival at the destination. delay is the
	// time since the task was generated.
	Deliver(slot int64, node torus.Node, broadcast, final bool, delay int64)
	// Spawn fires once per generated task; measured marks tasks born inside
	// the measurement window.
	Spawn(slot int64, broadcast, measured bool)
	// SlotEnd fires at the end of every simulated slot with the number of
	// packets queued across all links (excluding in-flight transmissions).
	SlotEnd(slot int64, backlog int64)
	// Fault fires when a failed link affects the run: a service attempt
	// found the link down (lost == 0), or a broadcast copy would have
	// crossed a permanently failed link and its subtree of lost deliveries
	// was dropped (lost > 0). permanent distinguishes permanent failures
	// from transient ones. Never fires on fault-free runs.
	Fault(slot int64, link torus.LinkID, permanent bool, lost int64)
}

// Base is a Probe whose every method is a no-op. Embed it to implement only
// the events a probe cares about.
type Base struct{}

// Enqueue implements Probe.
func (Base) Enqueue(int64, torus.LinkID, int, int, int) {}

// Service implements Probe.
func (Base) Service(int64, torus.LinkID, int, int, int32, int64) {}

// Deliver implements Probe.
func (Base) Deliver(int64, torus.Node, bool, bool, int64) {}

// Spawn implements Probe.
func (Base) Spawn(int64, bool, bool) {}

// SlotEnd implements Probe.
func (Base) SlotEnd(int64, int64) {}

// Fault implements Probe.
func (Base) Fault(int64, torus.LinkID, bool, int64) {}

// Multi fans every event out to a list of probes, in order.
type Multi []Probe

// Enqueue implements Probe.
func (m Multi) Enqueue(slot int64, link torus.LinkID, dim, class, depth int) {
	for _, p := range m {
		p.Enqueue(slot, link, dim, class, depth)
	}
}

// Service implements Probe.
func (m Multi) Service(slot int64, link torus.LinkID, dim, class int, length int32, wait int64) {
	for _, p := range m {
		p.Service(slot, link, dim, class, length, wait)
	}
}

// Deliver implements Probe.
func (m Multi) Deliver(slot int64, node torus.Node, broadcast, final bool, delay int64) {
	for _, p := range m {
		p.Deliver(slot, node, broadcast, final, delay)
	}
}

// Spawn implements Probe.
func (m Multi) Spawn(slot int64, broadcast, measured bool) {
	for _, p := range m {
		p.Spawn(slot, broadcast, measured)
	}
}

// SlotEnd implements Probe.
func (m Multi) SlotEnd(slot int64, backlog int64) {
	for _, p := range m {
		p.SlotEnd(slot, backlog)
	}
}

// Fault implements Probe.
func (m Multi) Fault(slot int64, link torus.LinkID, permanent bool, lost int64) {
	for _, p := range m {
		p.Fault(slot, link, permanent, lost)
	}
}

// Counters counts every event kind; the cheapest possible full-coverage
// probe, used by overhead benchmarks and trace replay verification.
type Counters struct {
	Enqueues  int64 `json:"enqueues"`   // Enqueue events
	Services  int64 `json:"services"`   // Service events
	Delivers  int64 `json:"delivers"`   // Deliver events (every copy and hop)
	Finals    int64 `json:"finals"`     // Deliver events with final == true
	Bcasts    int64 `json:"broadcasts"` // Deliver events with broadcast == true
	Spawns    int64 `json:"spawns"`     // Spawn events
	Measured  int64 `json:"measured"`   // Spawn events with measured == true
	Slots     int64 `json:"slots"`      // SlotEnd events
	MaxDepth  int64 `json:"max_depth"`  // deepest single output queue seen at enqueue
	MaxQueued int64 `json:"max_queued"` // largest end-of-slot backlog seen
	Faults    int64 `json:"faults"`     // Fault events
	LostCopies int64 `json:"lost_copies"` // broadcast deliveries severed by permanent faults
}

// Enqueue implements Probe.
func (c *Counters) Enqueue(_ int64, _ torus.LinkID, _, _, depth int) {
	c.Enqueues++
	if int64(depth) > c.MaxDepth {
		c.MaxDepth = int64(depth)
	}
}

// Service implements Probe.
func (c *Counters) Service(int64, torus.LinkID, int, int, int32, int64) { c.Services++ }

// Deliver implements Probe.
func (c *Counters) Deliver(_ int64, _ torus.Node, broadcast, final bool, _ int64) {
	c.Delivers++
	if final {
		c.Finals++
	}
	if broadcast {
		c.Bcasts++
	}
}

// Spawn implements Probe.
func (c *Counters) Spawn(_ int64, _, measured bool) {
	c.Spawns++
	if measured {
		c.Measured++
	}
}

// SlotEnd implements Probe.
func (c *Counters) SlotEnd(_ int64, backlog int64) {
	c.Slots++
	if backlog > c.MaxQueued {
		c.MaxQueued = backlog
	}
}

// Fault implements Probe.
func (c *Counters) Fault(_ int64, _ torus.LinkID, _ bool, lost int64) {
	c.Faults++
	c.LostCopies += lost
}

// LinkLoad accumulates per-link busy slots and per-dimension service counts
// over a measurement window — the quantities the paper's balance equations
// predict. Its utilization arithmetic mirrors the engine's own
// (Result.DimUtilization), so a probe-measured dimension utilization is
// bit-identical to the engine's report for the same window.
type LinkLoad struct {
	Base
	wStart, wEnd int64
	measure      int64
	busy         []int64 // busy slots within the window, per link slot
	dimBusy      []int64
	dimServices  []int64 // services started inside the window, per dimension
	dimLinks     []int64
	links        int
}

// NewLinkLoad creates a link-load probe for shape s measuring the window
// [warmup, warmup+measure).
func NewLinkLoad(s *torus.Shape, warmup, measure int64) *LinkLoad {
	d := s.Dims()
	p := &LinkLoad{
		wStart: warmup, wEnd: warmup + measure, measure: measure,
		busy:    make([]int64, s.LinkSlots()),
		dimBusy: make([]int64, d), dimServices: make([]int64, d),
		dimLinks: make([]int64, d),
		links:    s.Links(),
	}
	for i := 0; i < d; i++ {
		p.dimLinks[i] = int64(s.Size() * s.DirsInDim(i))
	}
	return p
}

// overlap returns the length of [a,b) ∩ [lo,hi).
func overlap(a, b, lo, hi int64) int64 {
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	if b <= a {
		return 0
	}
	return b - a
}

// Service implements Probe.
func (p *LinkLoad) Service(slot int64, link torus.LinkID, dim, _ int, length int32, _ int64) {
	in := overlap(slot, slot+int64(length), p.wStart, p.wEnd)
	p.busy[link] += in
	p.dimBusy[dim] += in
	if slot >= p.wStart && slot < p.wEnd {
		p.dimServices[dim]++
	}
}

// DimUtilization returns the average utilization of each dimension's links
// over the window, matching the engine's Result.DimUtilization.
func (p *LinkLoad) DimUtilization() []float64 {
	out := make([]float64, len(p.dimBusy))
	for i, b := range p.dimBusy {
		if p.dimLinks[i] > 0 {
			out[i] = float64(b) / (float64(p.measure) * float64(p.dimLinks[i]))
		}
	}
	return out
}

// AvgUtilization returns the average utilization across every link.
func (p *LinkLoad) AvgUtilization() float64 {
	total := int64(0)
	for _, b := range p.dimBusy {
		total += b
	}
	return float64(total) / (float64(p.measure) * float64(p.links))
}

// LinkUtilization returns one link's busy fraction over the window.
func (p *LinkLoad) LinkUtilization(l torus.LinkID) float64 {
	return float64(p.busy[l]) / float64(p.measure)
}

// DimLoad is one dimension's row of a link-load report.
type DimLoad struct {
	Dim         int     `json:"dim"`
	Links       int64   `json:"links"`
	Services    int64   `json:"services"`
	Utilization float64 `json:"utilization"`
}

// Report returns the per-dimension load table.
func (p *LinkLoad) Report() []DimLoad {
	util := p.DimUtilization()
	out := make([]DimLoad, len(util))
	for i := range out {
		out[i] = DimLoad{Dim: i, Links: p.dimLinks[i], Services: p.dimServices[i], Utilization: util[i]}
	}
	return out
}

// Occupancy samples queue-depth dynamics: the total backlog once per slot
// and the destination queue's depth at every enqueue.
type Occupancy struct {
	Base
	// Backlog is the end-of-slot total of queued packets (one sample per
	// simulated slot).
	Backlog stats.LogHistogram
	// Depth is the length of the receiving output queue after each push.
	Depth stats.LogHistogram
}

// Enqueue implements Probe.
func (p *Occupancy) Enqueue(_ int64, _ torus.LinkID, _, _, depth int) {
	p.Depth.Add(int64(depth))
}

// SlotEnd implements Probe.
func (p *Occupancy) SlotEnd(_ int64, backlog int64) {
	p.Backlog.Add(backlog)
}

// ServiceShare tallies how link service time is split between priority
// classes: packets served, busy slots, and queue-wait statistics per class.
type ServiceShare struct {
	Base
	served []int64
	busy   []int64
	wait   []stats.Welford
}

// Service implements Probe.
func (p *ServiceShare) Service(_ int64, _ torus.LinkID, _, class int, length int32, wait int64) {
	for class >= len(p.served) {
		p.served = append(p.served, 0)
		p.busy = append(p.busy, 0)
		p.wait = append(p.wait, stats.Welford{})
	}
	p.served[class]++
	p.busy[class] += int64(length)
	p.wait[class].Add(float64(wait))
}

// ClassShare is one priority class's slice of the service effort.
type ClassShare struct {
	Class     int     `json:"class"`
	Served    int64   `json:"served"`
	BusySlots int64   `json:"busy_slots"`
	Share     float64 `json:"share"` // fraction of all busy slots
	WaitMean  float64 `json:"wait_mean"`
	WaitMax   float64 `json:"wait_max"`
}

// Shares returns the per-class service breakdown, ordered by class.
func (p *ServiceShare) Shares() []ClassShare {
	total := int64(0)
	for _, b := range p.busy {
		total += b
	}
	out := make([]ClassShare, len(p.served))
	for c := range out {
		out[c] = ClassShare{
			Class: c, Served: p.served[c], BusySlots: p.busy[c],
			WaitMean: p.wait[c].Mean(), WaitMax: p.wait[c].Max(),
		}
		if total > 0 {
			out[c].Share = float64(p.busy[c]) / float64(total)
		}
	}
	return out
}

// Standard bundles the standard metric probes — link load, occupancy,
// service share, and event counters — behind a single Probe with direct
// dispatch (no Multi indirection on the hot path).
type Standard struct {
	Load  *LinkLoad
	Occ   *Occupancy
	Share *ServiceShare
	Count *Counters
}

// NewStandard creates the standard probe bundle for shape s and the
// measurement window [warmup, warmup+measure).
func NewStandard(s *torus.Shape, warmup, measure int64) *Standard {
	return &Standard{
		Load:  NewLinkLoad(s, warmup, measure),
		Occ:   &Occupancy{},
		Share: &ServiceShare{},
		Count: &Counters{},
	}
}

// Enqueue implements Probe.
func (p *Standard) Enqueue(slot int64, link torus.LinkID, dim, class, depth int) {
	p.Occ.Enqueue(slot, link, dim, class, depth)
	p.Count.Enqueue(slot, link, dim, class, depth)
}

// Service implements Probe.
func (p *Standard) Service(slot int64, link torus.LinkID, dim, class int, length int32, wait int64) {
	p.Load.Service(slot, link, dim, class, length, wait)
	p.Share.Service(slot, link, dim, class, length, wait)
	p.Count.Service(slot, link, dim, class, length, wait)
}

// Deliver implements Probe.
func (p *Standard) Deliver(slot int64, node torus.Node, broadcast, final bool, delay int64) {
	p.Count.Deliver(slot, node, broadcast, final, delay)
}

// Spawn implements Probe.
func (p *Standard) Spawn(slot int64, broadcast, measured bool) {
	p.Count.Spawn(slot, broadcast, measured)
}

// SlotEnd implements Probe.
func (p *Standard) SlotEnd(slot int64, backlog int64) {
	p.Occ.SlotEnd(slot, backlog)
	p.Count.SlotEnd(slot, backlog)
}

// Fault implements Probe.
func (p *Standard) Fault(slot int64, link torus.LinkID, permanent bool, lost int64) {
	p.Count.Fault(slot, link, permanent, lost)
}

// HistSummary condenses a LogHistogram for JSON reports.
type HistSummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// SummarizeLog extracts the headline numbers of a LogHistogram.
func SummarizeLog(h *stats.LogHistogram) HistSummary {
	return HistSummary{
		Count: h.Count(), Mean: h.Mean(),
		P50: h.Quantile(0.5), P90: h.Quantile(0.9), P99: h.Quantile(0.99),
		Max: h.Max(),
	}
}

// MetricsReport is the JSON document `starsim -metrics-json` emits: the run
// manifest plus everything the standard probe bundle measured. Result is
// filled by the caller with the engine's own aggregates (delay means,
// utilization) so the two measurement paths can be cross-checked.
type MetricsReport struct {
	Manifest   Manifest           `json:"manifest"`
	DimLoad    []DimLoad          `json:"dim_load"`
	Backlog    HistSummary        `json:"backlog_per_slot"`
	QueueDepth HistSummary        `json:"queue_depth_on_enqueue"`
	Shares     []ClassShare       `json:"service_share"`
	Counters   *Counters          `json:"counters"`
	Result     map[string]float64 `json:"result,omitempty"`
}

// Report assembles the bundle's measurements into a MetricsReport.
func (p *Standard) Report(m Manifest) *MetricsReport {
	return &MetricsReport{
		Manifest:   m,
		DimLoad:    p.Load.Report(),
		Backlog:    SummarizeLog(&p.Occ.Backlog),
		QueueDepth: SummarizeLog(&p.Occ.Depth),
		Shares:     p.Share.Shares(),
		Counters:   p.Count,
	}
}
