package loadgen

// Sketch is an HDR-style streaming quantile sketch for latencies, used by
// the load harness to record per-endpoint service times without keeping
// raw samples. Values (microseconds) below 64 land in exact linear
// buckets; above that each power-of-two octave is split into 32
// sub-buckets, bounding the relative quantile error at 1/32 (~3.1%)
// across the full int64 range. Add is a few integer operations and
// allocation-free after the first observation, so a fleet of hundreds of
// clients can record every request; per-worker sketches merge exactly
// (bucket-wise) at the end of a run.
//
// The JSON form is versioned and validated on decode: BENCH_serve.json
// embeds sketches so future tooling can recompute any quantile from a
// committed trajectory, and a corrupt or truncated file must fail cleanly
// (see FuzzSketchDecode).

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"time"
)

const (
	sketchLinearMax = 64 // values < 64 are exact
	sketchSubBits   = 5  // 32 sub-buckets per octave above that
	// sketchBuckets covers every nonnegative int64: 64 linear buckets plus
	// 32 sub-buckets for each of the 58 octaves [2^6, 2^63].
	sketchBuckets = sketchLinearMax + (63-sketchSubBits)*(1<<sketchSubBits)
	// sketchVersion is the JSON codec version; decoding rejects others.
	sketchVersion = 1
)

// Sketch accumulates nonnegative int64 observations. The zero value is
// ready to use; negative observations are clamped to zero.
type Sketch struct {
	counts []int64 // nil until the first Add; always sketchBuckets long after
	count  int64
	sum    int64
	min    int64
	max    int64
}

// sketchIndex maps a value to its bucket.
func sketchIndex(v int64) int {
	if v < sketchLinearMax {
		return int(v)
	}
	// v >= 64 has bit length >= 7; exp counts octaves above [64, 128).
	exp := bits.Len64(uint64(v)) - 7
	sub := int(uint64(v)>>(exp+1)) - (1 << sketchSubBits)
	return sketchLinearMax + exp<<sketchSubBits + sub
}

// sketchUpper returns the largest value bucket idx can hold.
func sketchUpper(idx int) int64 {
	if idx < sketchLinearMax {
		return int64(idx)
	}
	exp := (idx - sketchLinearMax) >> sketchSubBits
	sub := (idx - sketchLinearMax) & (1<<sketchSubBits - 1)
	hi := (int64(1<<sketchSubBits+sub+1) << (exp + 1)) - 1
	if hi < 0 { // the top octave saturates int64
		return math.MaxInt64
	}
	return hi
}

// Add records one observation.
func (s *Sketch) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if s.counts == nil {
		s.counts = make([]int64, sketchBuckets)
	}
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	s.counts[sketchIndex(v)]++
}

// AddDuration records a duration in microseconds, the harness's unit.
func (s *Sketch) AddDuration(d time.Duration) { s.Add(d.Microseconds()) }

// Count returns the number of observations.
func (s *Sketch) Count() int64 { return s.count }

// Mean returns the exact mean (0 when empty).
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.count)
}

// Min returns the smallest observation (0 when empty).
func (s *Sketch) Min() int64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Sketch) Max() int64 { return s.max }

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1),
// accurate to one sub-bucket (exact below 64, within ~3.1% above).
func (s *Sketch) Quantile(q float64) int64 {
	if s.count == 0 {
		return 0
	}
	q = math.Min(math.Max(q, 0), 1)
	target := int64(math.Ceil(q * float64(s.count)))
	if target < 1 {
		target = 1
	}
	seen := int64(0)
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen >= target {
			u := sketchUpper(i)
			if u > s.max {
				u = s.max // never report past the true maximum
			}
			return u
		}
	}
	return s.max
}

// Merge folds o into s bucket-wise. Merging then querying is identical to
// having recorded every observation into one sketch.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.count == 0 {
		return
	}
	if s.counts == nil {
		s.counts = make([]int64, sketchBuckets)
	}
	for i, c := range o.counts {
		s.counts[i] += c
	}
	if s.count == 0 || o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.count += o.count
	s.sum += o.sum
}

// sketchJSON is the compact wire form: occupied buckets as [index, count]
// pairs in ascending index order.
type sketchJSON struct {
	V       int        `json:"v"`
	Count   int64      `json:"count"`
	Sum     int64      `json:"sum"`
	Min     int64      `json:"min"`
	Max     int64      `json:"max"`
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (s *Sketch) MarshalJSON() ([]byte, error) {
	out := sketchJSON{V: sketchVersion, Count: s.count, Sum: s.sum, Min: s.min, Max: s.max}
	for i, c := range s.counts {
		if c != 0 {
			out.Buckets = append(out.Buckets, [2]int64{int64(i), c})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler with full validation: version,
// bucket ordering and range, count consistency, and min/max sanity. A
// sketch from a corrupt or hand-doctored trajectory decodes to an error,
// never to a panic or a silently wrong distribution.
func (s *Sketch) UnmarshalJSON(data []byte) error {
	var in sketchJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("loadgen: decoding sketch: %w", err)
	}
	if in.V != sketchVersion {
		return fmt.Errorf("loadgen: unsupported sketch version %d (want %d)", in.V, sketchVersion)
	}
	if in.Count < 0 {
		return fmt.Errorf("loadgen: sketch count %d is negative", in.Count)
	}
	if in.Count == 0 {
		if len(in.Buckets) != 0 {
			return fmt.Errorf("loadgen: empty sketch carries %d buckets", len(in.Buckets))
		}
		*s = Sketch{}
		return nil
	}
	if in.Min < 0 || in.Max < in.Min {
		return fmt.Errorf("loadgen: sketch range [%d, %d] is invalid", in.Min, in.Max)
	}
	counts := make([]int64, sketchBuckets)
	total := int64(0)
	prev := int64(-1)
	for _, b := range in.Buckets {
		idx, c := b[0], b[1]
		if idx <= prev || idx >= sketchBuckets {
			return fmt.Errorf("loadgen: sketch bucket index %d out of order or range", idx)
		}
		if c <= 0 || c > in.Count {
			return fmt.Errorf("loadgen: sketch bucket %d has impossible count %d", idx, c)
		}
		counts[idx] = c
		total += c
		prev = idx
	}
	if total != in.Count {
		return fmt.Errorf("loadgen: sketch buckets sum to %d, header says %d", total, in.Count)
	}
	*s = Sketch{counts: counts, count: in.Count, sum: in.Sum, min: in.Min, max: in.Max}
	return nil
}
