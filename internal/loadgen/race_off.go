//go:build !race

package loadgen

// raceEnabled marks trajectory records produced under the race detector.
const raceEnabled = false
