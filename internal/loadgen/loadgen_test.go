package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"prioritystar/internal/chaosnet"
	"prioritystar/internal/cluster"
	"prioritystar/internal/obs"
	"prioritystar/internal/serve"
)

// TestLoadSmoke is the service-level acceptance run (`make load-smoke`):
// boot a real daemon, drive 200 concurrent clients over the full mixed
// workload for 5 seconds, and require — with no tolerance — that every
// scenario fired (cache hits, dedup coalescing, 429 pushback), that the
// client's observations reconcile exactly with the daemon's admission
// counters, that submit and watch quantiles are non-zero, and that the
// recorded trajectory round-trips through BENCH_serve.json with a
// regression gate that provably fails against a doctored 2x-faster
// baseline.
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke needs a few seconds of sustained load")
	}
	s, err := serve.New(serve.Config{
		Addr:        "127.0.0.1:0",
		Workers:     4,
		QueueCap:    16,
		SlotsPerJob: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("daemon shutdown: %v", err)
		}
	}()

	mix, err := ParseMix("mixed")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		Addr:     addr,
		Clients:  200,
		Duration: 5 * time.Second,
		Mix:      mix,
		Seed:     42,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("report failure: %s", f)
	}

	rec := rep.Record
	for _, key := range []string{KeySubmit, KeyWatch} {
		op, ok := rec.Ops[key]
		if !ok || op.Count == 0 {
			t.Fatalf("no %s measurements recorded", key)
		}
		if op.P50us <= 0 || op.P95us <= 0 || op.P99us <= 0 {
			t.Errorf("%s quantiles not all non-zero: p50 %d, p95 %d, p99 %d",
				key, op.P50us, op.P95us, op.P99us)
		}
	}
	if rec.Rejected429 == 0 {
		t.Error("overload bursts never drew a 429")
	}
	if rec.Deduped == 0 || rec.CacheHits == 0 {
		t.Errorf("dedup/cache-hit scenarios silent: deduped %d, cache hits %d",
			rec.Deduped, rec.CacheHits)
	}
	if rec.Clients != 200 {
		t.Errorf("record says %d clients, want 200", rec.Clients)
	}

	// The record must survive the trajectory codec.
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := AppendRecord(path, rec); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	back := tr.Last()
	if back == nil || back.Ops[KeySubmit].Count != rec.Ops[KeySubmit].Count {
		t.Fatalf("trajectory round trip lost the record: %+v", back)
	}

	// Gate self-test: against its own record the gate passes; against a
	// doctored baseline from a machine 2x faster it must fail.
	if fails := Gate(&rec, back, 0.75); len(fails) != 0 {
		t.Errorf("gate failed against its own record: %v", fails)
	}
	doctored := DoctorBaseline(back, 2)
	fails := Gate(&rec, doctored, 0.75)
	if len(fails) == 0 {
		t.Fatal("gate passed against a 2x-faster doctored baseline")
	}
	if !strings.Contains(strings.Join(fails, "\n"), "throughput") {
		t.Errorf("doctored gate failures never mention throughput: %v", fails)
	}
}

// TestLoadPartitionStorm drives sustained submissions through a
// coordinator whose two workers sit behind chaos proxies, cuts both links
// mid-run, and heals them before the end. The run must stay clean under
// the harness's own reconciliation: every job completes (local degradation
// picks up the partitioned middle), breakers visibly opened, replication
// folding balances exactly (no hedge or degradation double-fold), and the
// coordinator is un-degraded by the time the run ends.
func TestLoadPartitionStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("partition storm needs a few seconds of sustained load")
	}
	metrics := &obs.MetricSet{}
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Heartbeat: 200 * time.Millisecond, LeaseTTL: 30 * time.Second,
		DegradeAfter: 500 * time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: time.Second,
		Metrics: metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	s, err := serve.New(serve.Config{
		Addr: "127.0.0.1:0", Workers: 4, QueueCap: 16, SlotsPerJob: 1,
		Metrics: metrics, RunJob: coord.RunJob, Degraded: coord.Degraded,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.Mount(s)
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("daemon shutdown: %v", err)
		}
	}()

	proxies := make([]*chaosnet.Proxy, 2)
	for i := range proxies {
		w := cluster.NewWorker(cluster.WorkerConfig{Slots: 2, SlotsPerSubjob: 1})
		mux := http.NewServeMux()
		w.Mount(mux)
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		proxy, err := chaosnet.NewProxy(strings.TrimPrefix(srv.URL, "http://"))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(proxy.Close)
		proxies[i] = proxy
		agent := cluster.StartAgent(cluster.AgentConfig{
			Coordinator: addr, Advertise: proxy.Addr(),
			Name: fmt.Sprintf("storm-w%d", i), Slots: 2, Depth: w.Depth,
		})
		t.Cleanup(agent.Stop)
	}

	// Cut both links a second into the run; heal with enough runway left
	// (breaker cooldown + probe) for the fleet to take traffic again.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-time.After(1 * time.Second):
		case <-stop:
			return
		}
		for _, p := range proxies {
			p.Partition()
		}
		select {
		case <-time.After(1500 * time.Millisecond):
		case <-stop:
			return
		}
		for _, p := range proxies {
			p.Heal()
		}
	}()

	mix, err := ParseMix("miss=3,watch=1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		Addr:     addr,
		Clients:  40,
		Duration: 5 * time.Second,
		Mix:      mix,
		Seed:     77,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("report failure: %s", f)
	}
	if rep.ServerDelta["breaker_open_total"] < 1 {
		t.Error("partition never opened a breaker")
	}
	if rep.ServerDelta["subjobs_local"] < 1 {
		t.Error("partitioned fleet never degraded to local execution")
	}
	if rec := rep.Record; rec.ErrorRate > 0 {
		t.Errorf("jobs failed through the storm: error rate %v", rec.ErrorRate)
	}
}

// TestRunRejectsUnreachableDaemon pins the fail-fast path: a dead address
// errors out of setup instead of hanging the fleet.
func TestRunRejectsUnreachableDaemon(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := Run(ctx, Config{Addr: "127.0.0.1:1", Clients: 2, Duration: time.Second})
	if err == nil {
		t.Fatal("Run against a dead daemon succeeded")
	}
	if !strings.Contains(err.Error(), "never became ready") {
		t.Errorf("error = %v, want a readiness failure", err)
	}
}
