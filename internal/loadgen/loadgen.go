// Package loadgen is the service-level load harness: a deterministic,
// seedable fleet of synthetic clients that hammers a live starsimd over a
// weighted workload mix — cache-hit replays, fresh cache-miss specs, dedup
// storms, overload bursts that draw 429s, SSE watches, result fetches, and
// metrics scrapes — while recording per-endpoint latency quantiles in
// streaming sketches. A run produces one trajectory Record (BENCH_serve.json)
// plus scenario assertions and an exact cross-check of the client's view
// against the daemon's own admission counters.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"prioritystar/internal/obs"
	"prioritystar/internal/serve"
)

// Sketch keys in a Record's Ops map.
const (
	KeySubmit         = "submit"          // accepted submissions (hit, miss, dedup, accepted burst)
	KeySubmitRejected = "submit_rejected" // 429-rejected burst submissions, kept out of KeySubmit
	KeyWatch          = "watch"           // time to first SSE event on a fresh job
	KeyResult         = "result"          // result-document fetch
	KeyMetrics        = "metrics"         // /metrics scrape
	KeyApprox         = "approx"          // surrogate-answered approx-mode submissions
)

// Config shapes one load run.
type Config struct {
	// Addr is the daemon address (host:port or http:// URL).
	Addr string
	// Clients is the number of concurrent synthetic clients.
	Clients int
	// Duration is how long the fleet runs after setup.
	Duration time.Duration
	// Mix is the workload mix (see ParseMix).
	Mix Mix
	// Seed makes the fleet deterministic: the same seed, mix, and client
	// count issue the same per-client operation sequences.
	Seed uint64
	// Rate, when > 0, open-loop paces each client at Rate ops/sec with
	// jittered gaps; 0 runs closed-loop (next op as soon as the last ends).
	Rate float64
	// Logf receives progress lines; nil is silent.
	Logf func(string, ...any)
}

// Report is the outcome of a run.
type Report struct {
	// Record is the trajectory record for BENCH_serve.json.
	Record Record
	// Failures are scenario-assertion and cross-check violations; a clean
	// run has none.
	Failures []string
	// ServerDelta is the change in the daemon's counters over the run.
	ServerDelta map[string]int64
}

// recorder is one worker's private measurement state, merged after the run
// so the hot path never shares memory between clients.
type recorder struct {
	sketches map[string]*Sketch
	errs     map[string]int64
	cached   int64 // responses flagged Cached
	deduped  int64 // responses flagged Deduped
	approx   int64 // responses flagged Approx (surrogate-answered)
	rejected int64 // terminal 429s (overload bursts doing their job)
	watchBad int64 // watches that ended in a non-done terminal state
}

func newRecorder() *recorder {
	return &recorder{sketches: map[string]*Sketch{}, errs: map[string]int64{}}
}

func (r *recorder) observe(key string, d time.Duration) {
	s := r.sketches[key]
	if s == nil {
		s = &Sketch{}
		r.sketches[key] = s
	}
	s.AddDuration(d)
}

func (r *recorder) merge(o *recorder) {
	for k, s := range o.sketches {
		if r.sketches[k] == nil {
			r.sketches[k] = &Sketch{}
		}
		r.sketches[k].Merge(s)
	}
	for k, n := range o.errs {
		r.errs[k] += n
	}
	r.cached += o.cached
	r.deduped += o.deduped
	r.approx += o.approx
	r.rejected += o.rejected
	r.watchBad += o.watchBad
}

// fleet is the shared run state.
type fleet struct {
	cfg     Config
	client  *serve.Client // retrying client, shared by all workers
	noRetry *serve.Client // zero-retry client for overload bursts
	metrics *obs.MetricSet

	hitPool   [][]byte // specs whose results are cached during setup
	hitIDs    []string // finished job IDs for result fetches
	stormGen  atomic.Uint64
	uniqueSeq atomic.Uint64
}

// logf forwards to the configured logger.
func (f *fleet) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// specJSON renders one synthetic experiment spec. All load specs are tiny
// 4x4 sweeps (sub-second even under the race detector); family namespaces
// the seed so op classes never collide on a fingerprint by accident.
func specJSON(family string, seed uint64) []byte {
	return []byte(fmt.Sprintf(`{
		"id": "load-%s", "dims": [4, 4], "rhos": [0.3],
		"broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}],
		"warmup": 50, "measure": 400, "drain": 100,
		"reps": 2, "seed": %d
	}`, family, seed))
}

// stormSpec runs for a few hundred milliseconds so concurrent identical
// submissions have a real in-flight window to coalesce into.
func stormSpec(gen uint64) []byte {
	return []byte(fmt.Sprintf(`{
		"id": "load-storm", "dims": [8, 8], "rhos": [0.3],
		"broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}],
		"warmup": 100, "measure": 12000, "drain": 100,
		"reps": 2, "seed": %d
	}`, gen))
}

// burstSpec sits between the few-millisecond fast specs and the storm
// spec: heavy enough (tens of milliseconds) that overlapping volleys outrun
// the queue's drain rate and draw 429s, light enough that the backlog
// clears in well under a second and the daemon never collapses.
func burstSpec(seed uint64) []byte {
	return []byte(fmt.Sprintf(`{
		"id": "load-burst", "dims": [4, 4], "rhos": [0.3],
		"broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}],
		"warmup": 50, "measure": 3000, "drain": 100,
		"reps": 2, "seed": %d
	}`, seed))
}

// approxRhos are the query loads approx ops draw from: strictly inside the
// anchor interval seeded during setup, so a well-behaved daemon answers
// every one from the surrogate.
var approxRhos = []string{"0.25", "0.3", "0.35"}

// approxSpec renders a spec in the pre-anchored approx family. Everything
// except the rho grid and the serving mode matches approxAnchorSpec — the
// family key includes the seed, so it is fixed per run, not per draw.
func (f *fleet) approxSpec(rhos, mode string) []byte {
	return []byte(fmt.Sprintf(`{
		"id": "load-approx", %s "dims": [4, 4], "rhos": [%s],
		"broadcastFrac": 1,
		"schemes": [{"name": "priority-star"}],
		"warmup": 50, "measure": 400, "drain": 100,
		"reps": 2, "seed": %d
	}`, mode, rhos, f.cfg.Seed<<8|0x77))
}

// nextUnique returns a seed no other op class or earlier draw has used.
func (f *fleet) nextUnique() uint64 {
	return f.cfg.Seed<<20 | f.uniqueSeq.Add(1)
}

// WaitReady polls the daemon until it answers /metrics or ctx expires.
func WaitReady(ctx context.Context, c *serve.Client) error {
	for {
		probe, cancel := context.WithTimeout(ctx, time.Second)
		_, err := c.MetricsSnapshot(probe)
		cancel()
		if err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("loadgen: daemon at %s never became ready: %w", c.Base, err)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Run executes one load run against a live daemon and returns its report.
// The daemon must be dedicated to the harness for the duration: the
// cross-check compares client-observed admissions to the server's counter
// deltas exactly, so concurrent third-party traffic shows up as a failure.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 200
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix, _ = ParseMix("mixed")
	}

	f := &fleet{cfg: cfg, metrics: &obs.MetricSet{}}
	// One tuned transport for the whole fleet: hundreds of clients reusing
	// keep-alive connections, not hundreds of dials per second.
	tr := &http.Transport{
		MaxIdleConns:        cfg.Clients * 2,
		MaxIdleConnsPerHost: cfg.Clients * 2,
		IdleConnTimeout:     30 * time.Second,
	}
	defer tr.CloseIdleConnections()
	httpc := &http.Client{Transport: tr}
	f.client = serve.NewClient(cfg.Addr)
	f.client.HTTP = httpc
	f.client.Metrics = f.metrics
	// A deeper, faster retry budget than the interactive default: the fleet
	// deliberately drives the daemon into sustained 429 pushback, and a
	// synthetic client that gives up after a few attempts would turn an
	// overloaded-but-correct daemon into a wall of spurious errors.
	f.client.Retry = serve.RetryPolicy{
		MaxRetries: 8,
		BaseDelay:  50 * time.Millisecond,
		MaxDelay:   2 * time.Second,
	}
	f.noRetry = serve.NewClient(cfg.Addr)
	f.noRetry.HTTP = httpc

	if err := WaitReady(ctx, f.client); err != nil {
		return nil, err
	}
	if err := f.setup(ctx); err != nil {
		return nil, err
	}

	before, err := f.client.MetricsSnapshot(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: pre-run metrics snapshot: %w", err)
	}

	f.logf("loadgen: %d clients, %s mix, %s, seed %d", cfg.Clients, cfg.Mix, cfg.Duration, cfg.Seed)
	start := time.Now()
	deadline := start.Add(cfg.Duration)

	recs := make([]*recorder, cfg.Clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		rec := newRecorder()
		recs[i] = rec
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			f.workerLoop(ctx, deadline, worker, rec)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := f.client.MetricsSnapshot(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: post-run metrics snapshot: %w", err)
	}

	merged := newRecorder()
	for _, r := range recs {
		merged.merge(r)
	}
	rep := &Report{
		Record:      f.buildRecord(merged, elapsed),
		ServerDelta: counterDelta(before, after),
	}
	rep.Failures = append(rep.Failures, f.assert(merged, rep.ServerDelta, after)...)
	return rep, nil
}

// setup warms the daemon: a small pool of specs is submitted and run to
// completion so cache-hit replays and result fetches have something to hit.
func (f *fleet) setup(ctx context.Context) error {
	const poolSize = 3
	setupCtx, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	for i := 0; i < poolSize; i++ {
		sj := specJSON("hit", f.cfg.Seed<<8|uint64(i))
		st, err := f.client.SubmitJSON(setupCtx, sj)
		if err != nil {
			return fmt.Errorf("loadgen: seeding hit pool: %w", err)
		}
		final, err := f.client.Watch(setupCtx, st.ID, nil)
		if err != nil {
			return fmt.Errorf("loadgen: waiting for hit-pool job %s: %w", st.ID, err)
		}
		if final.State != serve.StateDone {
			return fmt.Errorf("loadgen: hit-pool job %s ended %q: %s", st.ID, final.State, final.Error)
		}
		f.hitPool = append(f.hitPool, sj)
		f.hitIDs = append(f.hitIDs, st.ID)
	}
	f.logf("loadgen: hit pool warmed (%d cached specs)", poolSize)
	if f.cfg.Mix.Has(OpApprox) {
		// Anchor the approx family with one exact sweep bracketing every
		// query rho, so approx ops hit the surrogate instead of falling
		// back to simulation.
		st, err := f.client.SubmitJSON(setupCtx, f.approxSpec("0.2, 0.4", ""))
		if err != nil {
			return fmt.Errorf("loadgen: seeding approx anchors: %w", err)
		}
		final, err := f.client.Watch(setupCtx, st.ID, nil)
		if err != nil {
			return fmt.Errorf("loadgen: waiting for approx-anchor job %s: %w", st.ID, err)
		}
		if final.State != serve.StateDone {
			return fmt.Errorf("loadgen: approx-anchor job %s ended %q: %s", st.ID, final.State, final.Error)
		}
		f.logf("loadgen: approx family anchored (rhos 0.2, 0.4)")
	}
	return nil
}

// workerLoop is one synthetic client: draw an op from the mix, run it,
// record it, optionally pace, until the run deadline. The deadline gates
// starting an op, not finishing one — a started request always runs to
// completion so the client's observation count matches the daemon's
// counters exactly (a request torn at the deadline would be counted by the
// server but discarded by the client).
func (f *fleet) workerLoop(ctx context.Context, deadline time.Time, worker int, rec *recorder) {
	// splitmix-style seed spread: workers get decorrelated streams while the
	// whole fleet stays a pure function of (Seed, Clients, Mix).
	rng := rand.New(rand.NewSource(int64(f.cfg.Seed) ^ (int64(worker)+1)*-0x61c8864680b583eb))
	for ctx.Err() == nil && time.Now().Before(deadline) {
		f.runOp(ctx, deadline, f.cfg.Mix.pick(rng), rng, rec)
		if f.cfg.Rate > 0 {
			gap := time.Duration(float64(time.Second) / f.cfg.Rate * (0.5 + rng.Float64()))
			select {
			case <-ctx.Done():
			case <-time.After(gap):
			}
		}
	}
}

// runOp executes one operation, recording its latency unless the run
// deadline interrupted it mid-flight (a torn measurement is noise, not
// signal, and a deadline-canceled call is not a service error).
func (f *fleet) runOp(ctx context.Context, deadline time.Time, op Op, rng *rand.Rand, rec *recorder) {
	switch op {
	case OpSubmitHit:
		f.submitOne(ctx, rec, f.hitPool[rng.Intn(len(f.hitPool))])
	case OpSubmitMiss:
		f.submitOne(ctx, rec, specJSON("miss", f.nextUnique()))
	case OpSubmitDedup:
		f.submitStorm(ctx, rec)
	case OpOverloadBurst:
		f.burst(ctx, deadline, rec)
	case OpWatch:
		f.watch(ctx, rec)
	case OpResult:
		start := time.Now()
		_, err := f.client.Result(ctx, f.hitIDs[rng.Intn(len(f.hitIDs))])
		f.finish(ctx, rec, KeyResult, start, err)
	case OpMetrics:
		start := time.Now()
		_, err := f.client.MetricsSnapshot(ctx)
		f.finish(ctx, rec, KeyMetrics, start, err)
	case OpApprox:
		sj := f.approxSpec(approxRhos[rng.Intn(len(approxRhos))], `"mode": "approx", "approxTol": 2,`)
		start := time.Now()
		st, err := f.client.SubmitJSON(ctx, sj)
		f.finish(ctx, rec, KeyApprox, start, err)
		if err == nil && st.Approx {
			rec.approx++
		}
	}
}

// finish records one measurement or error under key.
func (f *fleet) finish(ctx context.Context, rec *recorder, key string, start time.Time, err error) {
	if err != nil {
		if ctx.Err() == nil {
			rec.errs[key]++
		}
		return
	}
	rec.observe(key, time.Since(start))
}

// submitOne submits a spec on the retrying client and records the admission
// latency plus the response's cached/deduped classification.
func (f *fleet) submitOne(ctx context.Context, rec *recorder, sj []byte) *serve.JobStatus {
	start := time.Now()
	st, err := f.client.SubmitJSON(ctx, sj)
	f.finish(ctx, rec, KeySubmit, start, err)
	if err != nil {
		return nil
	}
	if st.Cached {
		rec.cached++
	}
	if st.Deduped {
		rec.deduped++
	}
	return st
}

// submitStorm submits the current storm-generation spec. Every client in a
// dedup draw sends the identical spec, so concurrent submissions coalesce
// onto one in-flight job; once that job finishes (the response comes back
// Cached) the generation advances and the storm re-forms on a fresh spec.
func (f *fleet) submitStorm(ctx context.Context, rec *recorder) {
	gen := f.stormGen.Load()
	st := f.submitOne(ctx, rec, stormSpec(f.cfg.Seed<<16|gen))
	if st != nil && st.Cached {
		f.stormGen.CompareAndSwap(gen, gen+1)
	}
}

// burst fires a thundering-herd volley of fresh submissions with retries
// disabled: all volley members launch concurrently, spiking the admission
// queue in one instant instead of trickling in at the round-trip rate.
// Part of the volley lands (recorded as submits) and the rest draws 429s
// (recorded under KeySubmitRejected — rejection is the expected outcome,
// not an error, and keeping it out of KeySubmit stops fast 429s from
// flattering the accepted-path quantiles).
func (f *fleet) burst(ctx context.Context, deadline time.Time, rec *recorder) {
	const volley = 10
	if ctx.Err() != nil || !time.Now().Before(deadline) {
		return
	}
	type shot struct {
		d        time.Duration
		st       *serve.JobStatus
		err      error
		rejected bool
	}
	shots := make([]shot, volley)
	var wg sync.WaitGroup
	for i := 0; i < volley; i++ {
		sj := burstSpec(f.nextUnique())
		wg.Add(1)
		go func(s *shot) {
			defer wg.Done()
			start := time.Now()
			st, err := f.noRetry.SubmitJSON(ctx, sj)
			s.d = time.Since(start)
			s.st, s.err = st, err
			s.rejected = err != nil && serve.IsQueueFull(err)
		}(&shots[i])
	}
	wg.Wait()
	for i := range shots {
		s := &shots[i]
		switch {
		case s.err == nil:
			rec.observe(KeySubmit, s.d)
			if s.st.Cached {
				rec.cached++
			}
			if s.st.Deduped {
				rec.deduped++
			}
		case s.rejected:
			rec.rejected++
			rec.observe(KeySubmitRejected, s.d)
		case ctx.Err() == nil:
			rec.errs[KeySubmit]++
		}
	}
}

// watch submits a fresh spec and follows its SSE stream to the terminal
// event; the recorded latency is time-to-first-event — the responsiveness
// a dashboard user actually feels.
func (f *fleet) watch(ctx context.Context, rec *recorder) {
	st, err := f.client.SubmitJSON(ctx, specJSON("watch", f.nextUnique()))
	if err != nil {
		if ctx.Err() == nil {
			rec.errs[KeyWatch]++
		}
		return
	}
	start := time.Now()
	first := false
	final, err := f.client.Watch(ctx, st.ID, func(serve.JobStatus) {
		if !first {
			first = true
			rec.observe(KeyWatch, time.Since(start))
		}
	})
	if err != nil {
		if ctx.Err() == nil {
			rec.errs[KeyWatch]++
		}
		return
	}
	if final.State != serve.StateDone {
		rec.watchBad++
	}
}

// buildRecord condenses the merged measurements into a trajectory record.
func (f *fleet) buildRecord(rec *recorder, elapsed time.Duration) Record {
	clientSnap := f.metrics.Snapshot()
	r := Record{
		Time:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Clients:     f.cfg.Clients,
		DurationSec: elapsed.Seconds(),
		Seed:        f.cfg.Seed,
		Mix:         f.cfg.Mix.String(),
		Race:        raceEnabled,
		Ops:         map[string]OpRecord{},
		Rejected429: rec.rejected,
		Deduped:     rec.deduped,
		CacheHits:   rec.cached,
		ApproxHits:  rec.approx,
		Retries:     clientSnap.Counters["client_retries"],
		Reconnects:  clientSnap.Counters["client_reconnects"],
	}
	var totalOps, totalErrs int64
	for key, s := range rec.sketches {
		r.Ops[key] = OpRecord{
			Count:  s.Count(),
			Errors: rec.errs[key],
			P50us:  s.Quantile(0.50),
			P95us:  s.Quantile(0.95),
			P99us:  s.Quantile(0.99),
			MaxUs:  s.Max(),
			MeanUs: s.Mean(),
			Sketch: s,
		}
		totalOps += s.Count()
	}
	for key, n := range rec.errs {
		if _, ok := r.Ops[key]; !ok {
			r.Ops[key] = OpRecord{Errors: n}
		}
		totalErrs += n
	}
	r.TotalOps = totalOps
	if elapsed > 0 {
		r.ThroughputOps = float64(totalOps) / elapsed.Seconds()
	}
	if totalOps+totalErrs > 0 {
		r.ErrorRate = float64(totalErrs) / float64(totalOps+totalErrs)
	}
	return r
}

// counterDelta subtracts before-counters from after-counters.
func counterDelta(before, after obs.Snapshot) map[string]int64 {
	out := make(map[string]int64, len(after.Counters))
	for k, v := range after.Counters {
		if d := v - before.Counters[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// assert checks the scenario invariants and cross-checks the client's view
// against the daemon's admission counters. The exact checks lean on the
// retry client's semantics: a cached or deduped response reaches the client
// exactly once per successful submission, and retried 429s never produce
// one, so the daemon's cache_hits and jobs_deduped deltas must equal the
// client-side observations to the unit.
func (f *fleet) assert(rec *recorder, delta map[string]int64, after obs.Snapshot) []string {
	var fail []string
	mix := f.cfg.Mix

	if mix.Has(OpSubmitHit) && rec.cached == 0 {
		fail = append(fail, "scenario: hit weight > 0 but no cache-hit responses observed")
	}
	if mix.Has(OpSubmitDedup) && rec.deduped == 0 {
		fail = append(fail, "scenario: dedup weight > 0 but no submissions coalesced")
	}
	if mix.Has(OpOverloadBurst) && rec.rejected == 0 {
		fail = append(fail, "scenario: burst weight > 0 but the daemon never pushed back with 429")
	}
	if mix.Has(OpApprox) && rec.approx == 0 {
		fail = append(fail, "scenario: approx weight > 0 but no submissions were surrogate-answered")
	}
	needQuantiles := []string{}
	if mix.Has(OpSubmitHit) || mix.Has(OpSubmitMiss) || mix.Has(OpSubmitDedup) {
		needQuantiles = append(needQuantiles, KeySubmit)
	}
	if mix.Has(OpWatch) {
		needQuantiles = append(needQuantiles, KeyWatch)
	}
	rcd := f.buildRecordOpsView(rec)
	for _, key := range needQuantiles {
		op, ok := rcd[key]
		if !ok || op.Count == 0 || op.P50us <= 0 || op.P95us <= 0 || op.P99us <= 0 {
			fail = append(fail, fmt.Sprintf("scenario: %s quantiles are zero or missing", key))
		}
	}
	if rec.watchBad > 0 {
		fail = append(fail, fmt.Sprintf("scenario: %d watched jobs ended in a non-done state", rec.watchBad))
	}

	// Cross-checks against the daemon's own counters.
	if got, want := delta["cache_hits"], rec.cached; got != want {
		fail = append(fail, fmt.Sprintf("cross-check: daemon cache_hits moved %d, clients observed %d", got, want))
	}
	if got, want := delta["jobs_deduped"], rec.deduped; got != want {
		fail = append(fail, fmt.Sprintf("cross-check: daemon jobs_deduped moved %d, clients observed %d", got, want))
	}
	if got, want := delta["submits_rejected_429"], rec.rejected; got < want {
		fail = append(fail, fmt.Sprintf("cross-check: daemon counted %d 429s, clients saw %d terminal rejections", got, want))
	}
	if got, want := delta["surrogate_hits"], rec.approx; got != want {
		fail = append(fail, fmt.Sprintf("cross-check: daemon surrogate_hits moved %d, clients observed %d", got, want))
	}
	// Admission conservation: every submission the daemon counted was
	// queued, answered from cache or surrogate, coalesced, or rejected — no
	// silent drops.
	accounted := delta["jobs_queued"] + delta["cache_hits"] + delta["jobs_deduped"] + delta["surrogate_hits"] +
		delta["submits_rejected_429"] + delta["submits_rejected_badspec"] + delta["submits_rejected_draining"]
	if got := delta["submits_total"]; got != accounted {
		fail = append(fail, fmt.Sprintf("cross-check: daemon took %d submissions but accounted for %d", got, accounted))
	}
	// Fleet reconciliation, active whenever the daemon is a coordinator
	// (its counters register at zero on boot). Folding must balance to the
	// replication: a hedged dispatch that double-folds its losing duplicate,
	// or a local degradation run racing a late worker result past the
	// duplicate discard, shows up here as folded != expected.
	if _, isFleet := after.Counters["cluster_reps_expected"]; isFleet {
		if folded, expected := delta["cluster_reps_folded"], delta["cluster_reps_expected"]; folded != expected {
			fail = append(fail, fmt.Sprintf("fleet: %d replications folded for %d expected (hedging or degradation double-fold)", folded, expected))
		}
		if hedges, wins := after.Counters["chaos_hedges_total"], after.Counters["hedge_wins"]; wins > hedges {
			fail = append(fail, fmt.Sprintf("fleet: %d hedge wins out of %d hedges launched", wins, hedges))
		}
		if got := after.Gauges["fleet_degraded"]; got != 0 {
			fail = append(fail, fmt.Sprintf("fleet: fleet_degraded gauge is %v at end of run — coordinator never healed (breaker_open_total %d)",
				got, after.Counters["breaker_open_total"]))
		}
	}
	sort.Strings(fail)
	return fail
}

// buildRecordOpsView is the quantile view assert needs without duplicating
// buildRecord's bookkeeping.
func (f *fleet) buildRecordOpsView(rec *recorder) map[string]OpRecord {
	out := map[string]OpRecord{}
	for key, s := range rec.sketches {
		out[key] = OpRecord{Count: s.Count(), P50us: s.Quantile(0.5), P95us: s.Quantile(0.95), P99us: s.Quantile(0.99)}
	}
	return out
}
