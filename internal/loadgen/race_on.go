//go:build race

package loadgen

// raceEnabled marks trajectory records produced under the race detector,
// whose ~10x slowdown makes their latencies incomparable with plain runs.
const raceEnabled = true
