package loadgen

// Workload mixes: what a synthetic client does next. Each virtual client
// draws its next operation from a weighted mix with its own seeded RNG, so
// two runs with the same seed, mix, and client count issue the same
// operation sequences (wall-clock effects — how many ops fit in the
// duration, which submissions win races — naturally still vary).

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Op is one operation class a synthetic client can perform.
type Op int

const (
	// OpSubmitHit replays a spec whose result is already cached: the
	// daemon's steady-state fast path (content-addressed cache hit).
	OpSubmitHit Op = iota
	// OpSubmitMiss submits a fresh spec nobody has run: full admission,
	// queue, and simulation path.
	OpSubmitMiss
	// OpSubmitDedup submits one of a small set of in-flight "storm" specs:
	// concurrent identical submissions that must coalesce onto one job.
	OpSubmitDedup
	// OpOverloadBurst fires a back-to-back volley of fresh submissions with
	// no retry, deliberately overrunning the admission queue to draw 429s.
	OpOverloadBurst
	// OpWatch submits a fresh fast spec and follows it over SSE to the
	// terminal event; the recorded latency is time-to-first-event.
	OpWatch
	// OpResult fetches the result document of a known-finished job.
	OpResult
	// OpMetrics scrapes /metrics.
	OpMetrics
	// OpApprox submits an approx-mode spec inside a pre-anchored family:
	// the surrogate fast path, answered without simulation. Appended at the
	// end of the enum so the positional weight arrays of recorded
	// trajectories keep their meaning.
	OpApprox

	numOps
)

// opNames are the mix-string and report keys, in Op order.
var opNames = [numOps]string{
	"hit", "miss", "dedup", "burst", "watch", "result", "metrics", "approx",
}

// String returns the op's mix-string key.
func (o Op) String() string {
	if o < 0 || o >= numOps {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// Mix is a weighted distribution over operation classes.
type Mix struct {
	Name    string
	Weights [numOps]int
}

// namedMixes are the built-in workload profiles. "mixed" is the default
// and the one BENCH_serve.json trajectories are recorded with: every
// service path — cache hit, fresh miss, dedup storm, overload burst, SSE
// watch, result fetch, metrics scrape — exercised in one run.
var namedMixes = []Mix{
	{Name: "mixed", Weights: [numOps]int{5, 2, 2, 1, 2, 2, 1, 2}},
	{Name: "cache-hit", Weights: [numOps]int{10, 0, 0, 0, 0, 2, 1, 0}},
	{Name: "cache-miss", Weights: [numOps]int{0, 8, 0, 0, 2, 0, 1, 0}},
	{Name: "dedup-storm", Weights: [numOps]int{1, 0, 8, 0, 1, 0, 1, 0}},
	{Name: "overload", Weights: [numOps]int{2, 0, 0, 6, 0, 0, 1, 0}},
	{Name: "watch-heavy", Weights: [numOps]int{2, 0, 0, 0, 6, 1, 1, 0}},
	{Name: "approx-heavy", Weights: [numOps]int{2, 0, 0, 0, 1, 1, 1, 8}},
}

// MixNames returns the built-in mix names for help texts.
func MixNames() []string {
	out := make([]string, len(namedMixes))
	for i, m := range namedMixes {
		out[i] = m.Name
	}
	sort.Strings(out)
	return out
}

// ParseMix resolves a mix: a built-in name ("mixed", "overload", ...) or an
// explicit weight list "hit=5,miss=2,dedup=2,burst=1,watch=2,result=2,
// metrics=1" (omitted classes get weight 0).
func ParseMix(s string) (Mix, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		s = "mixed"
	}
	if !strings.Contains(s, "=") {
		for _, m := range namedMixes {
			if m.Name == s {
				return m, nil
			}
		}
		return Mix{}, fmt.Errorf("loadgen: unknown mix %q (have %s, or pass hit=N,miss=N,...)",
			s, strings.Join(MixNames(), ", "))
	}
	m := Mix{Name: s}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Mix{}, fmt.Errorf("loadgen: bad mix term %q (want class=weight)", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n < 0 {
			return Mix{}, fmt.Errorf("loadgen: bad mix weight %q for %q", val, key)
		}
		found := false
		for op, name := range opNames {
			if name == strings.TrimSpace(key) {
				m.Weights[op] = n
				found = true
				break
			}
		}
		if !found {
			return Mix{}, fmt.Errorf("loadgen: unknown op class %q (have %s)",
				key, strings.Join(opNames[:], ", "))
		}
	}
	if m.total() == 0 {
		return Mix{}, fmt.Errorf("loadgen: mix %q has zero total weight", s)
	}
	return m, nil
}

// total sums the weights.
func (m Mix) total() int {
	t := 0
	for _, w := range m.Weights {
		t += w
	}
	return t
}

// Has reports whether the mix can ever draw op.
func (m Mix) Has(op Op) bool { return m.Weights[op] > 0 }

// pick draws one operation.
func (m Mix) pick(rng *rand.Rand) Op {
	n := rng.Intn(m.total())
	for op, w := range m.Weights {
		if n < w {
			return Op(op)
		}
		n -= w
	}
	return OpMetrics // unreachable: total() > 0
}

// String renders the mix for reports: its name for built-ins, the explicit
// weights otherwise.
func (m Mix) String() string {
	if m.Name != "" {
		return m.Name
	}
	var parts []string
	for op, w := range m.Weights {
		if w > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", opNames[op], w))
		}
	}
	return strings.Join(parts, ",")
}
