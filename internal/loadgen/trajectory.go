package loadgen

// BENCH_serve.json is the service-level performance trajectory: one
// JSON-lines file whose first line is a versioned header and every later
// line one load-harness run, appended over time so the latency/throughput
// history of the service layer is tracked the same way BENCH_sim.json
// tracks the engine. The reader is strict — unknown schema versions,
// interior corruption, and torn tails are typed errors, never panics (see
// FuzzTrajectoryReader) — while AppendRecord is lenient the way the
// daemon's journals are: a tail torn by a killed psload is trimmed before
// the new record is written.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// TrajectorySchema is the accepted (and written) header schema.
const TrajectorySchema = "prioritystar-serve/v1"

// ErrTornTail marks a trajectory whose final record was cut mid-write:
// the bytes up to it are intact, the tail is not a complete JSON line.
var ErrTornTail = errors.New("loadgen: trajectory has a torn final record")

// FormatError locates a trajectory parse failure. Use errors.Is to test
// for ErrTornTail through it.
type FormatError struct {
	Line int // 1-based line number
	Err  error
}

// Error implements error.
func (e *FormatError) Error() string {
	return fmt.Sprintf("loadgen: trajectory line %d: %v", e.Line, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *FormatError) Unwrap() error { return e.Err }

// OpRecord is one operation class's measurements in a trajectory record.
// The headline quantiles are denormalized for human diffing; Sketch holds
// the full distribution so any quantile can be recomputed later.
type OpRecord struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors,omitempty"`
	P50us  int64   `json:"p50_us"`
	P95us  int64   `json:"p95_us"`
	P99us  int64   `json:"p99_us"`
	MaxUs  int64   `json:"max_us"`
	MeanUs float64 `json:"mean_us"`
	Sketch *Sketch `json:"sketch,omitempty"`
}

// Record is one load-harness run.
type Record struct {
	Time        string  `json:"time"`
	GoVersion   string  `json:"go_version"`
	GOOS        string  `json:"goos"`
	GOARCH      string  `json:"goarch"`
	Clients     int     `json:"clients"`
	DurationSec float64 `json:"duration_sec"`
	Seed        uint64  `json:"seed"`
	Mix         string  `json:"mix"`
	Race        bool    `json:"race,omitempty"`
	// Workers counts the fleet worker daemons behind the target daemon
	// (psload -boot -workers N); 0 is a single-node run.
	Workers int `json:"workers,omitempty"`

	// Ops maps endpoint keys ("submit", "watch", "result", "metrics",
	// "submit_rejected") to their latency records.
	Ops map[string]OpRecord `json:"ops"`

	ThroughputOps float64 `json:"throughput_ops_per_sec"`
	TotalOps      int64   `json:"total_ops"`
	ErrorRate     float64 `json:"error_rate"`
	Rejected429   int64   `json:"rejected_429"`
	Deduped       int64   `json:"deduped"`
	CacheHits     int64   `json:"cache_hits"`
	ApproxHits    int64   `json:"approx_hits,omitempty"`
	Retries       int64   `json:"client_retries"`
	Reconnects    int64   `json:"client_reconnects"`
}

// trajectoryHeader is the first line of the file.
type trajectoryHeader struct {
	Schema string `json:"schema"`
}

// Trajectory is a decoded BENCH_serve.json.
type Trajectory struct {
	Records []Record
}

// Last returns the most recent record, or nil for an empty trajectory.
func (t *Trajectory) Last() *Record {
	if len(t.Records) == 0 {
		return nil
	}
	return &t.Records[len(t.Records)-1]
}

// ParseTrajectory decodes a trajectory document. intact is the byte length
// of the valid prefix (header plus complete records); on ErrTornTail a
// caller may truncate to intact and keep appending.
func ParseTrajectory(data []byte) (t *Trajectory, intact int, err error) {
	if len(data) == 0 {
		return nil, 0, &FormatError{Line: 1, Err: errors.New("empty file (no header)")}
	}
	t = &Trajectory{}
	line := 0
	sawHeader := false
	for off := 0; off < len(data); {
		line++
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// No terminating newline: a write was cut mid-line.
			return t, off, &FormatError{Line: line, Err: ErrTornTail}
		}
		raw := data[off : off+nl]
		end := off + nl + 1
		if len(bytes.TrimSpace(raw)) == 0 {
			off = end
			continue
		}
		if !sawHeader {
			// The first non-blank line must be the header.
			var h trajectoryHeader
			dec := json.NewDecoder(bytes.NewReader(raw))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&h); err != nil {
				return nil, 0, &FormatError{Line: line, Err: fmt.Errorf("bad header: %w", err)}
			}
			if h.Schema != TrajectorySchema {
				return nil, 0, &FormatError{Line: line,
					Err: fmt.Errorf("unknown schema %q (want %q)", h.Schema, TrajectorySchema)}
			}
			sawHeader = true
			off = end
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			if end >= len(data) {
				// The last line: corruption here is a torn tail.
				return t, off, &FormatError{Line: line, Err: fmt.Errorf("%w: %v", ErrTornTail, err)}
			}
			return nil, 0, &FormatError{Line: line, Err: err}
		}
		if err := rec.validate(); err != nil {
			return nil, 0, &FormatError{Line: line, Err: err}
		}
		t.Records = append(t.Records, rec)
		off = end
	}
	if !sawHeader {
		return nil, 0, &FormatError{Line: 1, Err: errors.New("no header line")}
	}
	return t, len(data), nil
}

// validate rejects records that cannot describe a real run.
func (r *Record) validate() error {
	if r.DurationSec < 0 || r.Clients < 0 {
		return fmt.Errorf("negative duration (%g) or clients (%d)", r.DurationSec, r.Clients)
	}
	if r.TotalOps < 0 || r.ThroughputOps < 0 {
		return fmt.Errorf("negative ops (%d) or throughput (%g)", r.TotalOps, r.ThroughputOps)
	}
	for name, op := range r.Ops {
		// Count tallies successful measurements, Errors failed attempts;
		// under heavy overload Errors can legitimately exceed Count.
		if op.Count < 0 || op.Errors < 0 {
			return fmt.Errorf("op %q has negative counts (%d ops, %d errors)", name, op.Count, op.Errors)
		}
		if op.P50us < 0 || op.P95us < op.P50us || op.P99us < op.P95us || op.MaxUs < op.P99us {
			return fmt.Errorf("op %q has non-monotone quantiles (%d/%d/%d/max %d)",
				name, op.P50us, op.P95us, op.P99us, op.MaxUs)
		}
		if op.Sketch != nil && op.Sketch.Count() != op.Count {
			return fmt.Errorf("op %q sketch counts %d observations, record says %d",
				name, op.Sketch.Count(), op.Count)
		}
	}
	return nil
}

// ReadTrajectory loads and strictly parses a trajectory file.
func ReadTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, _, err := ParseTrajectory(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// AppendRecord appends one run to the trajectory at path, creating the
// file (with its header) when absent. A torn tail from an interrupted
// earlier append is trimmed; any other corruption is surfaced instead of
// silently extended.
func AppendRecord(path string, rec Record) error {
	if err := rec.validate(); err != nil {
		return fmt.Errorf("loadgen: refusing to append invalid record: %w", err)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist), err == nil && len(bytes.TrimSpace(data)) == 0:
		header, _ := json.Marshal(trajectoryHeader{Schema: TrajectorySchema})
		out := append(append(header, '\n'), append(line, '\n')...)
		return os.WriteFile(path, out, 0o644)
	case err != nil:
		return err
	}
	if _, intact, perr := ParseTrajectory(data); perr != nil {
		if !errors.Is(perr, ErrTornTail) {
			return perr
		}
		data = data[:intact] // drop the torn tail, keep every intact record
	}
	if len(bytes.TrimSpace(data)) == 0 {
		// Even the header was torn: start the file over.
		header, _ := json.Marshal(trajectoryHeader{Schema: TrajectorySchema})
		data = append(header, '\n')
	}
	out := append(append([]byte(nil), data...), append(line, '\n')...)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// sloOps are the op classes whose latency quantiles the gate judges. The
// ancillary ops (result fetches, metrics scrapes) are light and rare, so
// their tail quantiles swing ~2x between identical back-to-back runs on a
// saturated box — they stay in the trajectory for human inspection but
// cannot fail the gate.
var sloOps = map[string]bool{KeySubmit: true, KeyWatch: true}

// Gate compares a fresh run against a committed baseline record: a
// regression is an SLO op class present in both (with enough samples to
// make quantiles meaningful) whose p95 or p99 latency exceeds the baseline
// by more than tol (fractional, e.g. 0.75 allows 1.75x), or throughput
// falling more than tol below the baseline. Returned strings describe
// each failure; empty means the gate passed.
func Gate(fresh, baseline *Record, tol float64) []string {
	const minSamples = 20
	var failures []string
	check := func(name, metric string, got, limit, base int64) {
		if got > limit {
			failures = append(failures, fmt.Sprintf(
				"%s %s: %dus is %.0f%% over baseline %dus (tolerance %.0f%%)",
				name, metric, got, 100*(float64(got)/float64(base)-1), base, 100*tol))
		}
	}
	for name, b := range baseline.Ops {
		f, ok := fresh.Ops[name]
		if !ok || !sloOps[name] || b.Count < minSamples || f.Count < minSamples {
			continue
		}
		// Floor tiny baselines at 1ms: sub-millisecond quantiles on a loaded
		// box gate on noise, not regressions.
		floor := func(v int64) int64 { return max(v, 1000) }
		check(name, "p95", f.P95us, int64(float64(floor(b.P95us))*(1+tol)), floor(b.P95us))
		check(name, "p99", f.P99us, int64(float64(floor(b.P99us))*(1+tol)), floor(b.P99us))
	}
	if baseline.ThroughputOps > 0 && fresh.ThroughputOps < baseline.ThroughputOps/(1+tol) {
		failures = append(failures, fmt.Sprintf(
			"throughput: %.0f ops/s is %.0f%% below baseline %.0f (tolerance %.0f%%)",
			fresh.ThroughputOps, 100*(1-fresh.ThroughputOps/baseline.ThroughputOps),
			baseline.ThroughputOps, 100*tol))
	}
	return failures
}

// DoctorBaseline scales a record's latencies down (and throughput up) by
// factor, fabricating a baseline from a machine factor-times faster. The
// harness's self-test feeds a doctored baseline to Gate to prove the gate
// actually fails when the service regresses.
func DoctorBaseline(r *Record, factor float64) *Record {
	if factor <= 0 {
		factor = 1
	}
	out := *r
	out.Ops = make(map[string]OpRecord, len(r.Ops))
	for name, op := range r.Ops {
		op.P50us = int64(float64(op.P50us) / factor)
		op.P95us = int64(float64(op.P95us) / factor)
		op.P99us = int64(float64(op.P99us) / factor)
		op.MaxUs = int64(float64(op.MaxUs) / factor)
		op.MeanUs /= factor
		op.Sketch = nil // quantiles no longer match any real distribution
		out.Ops[name] = op
	}
	out.ThroughputOps *= factor
	return &out
}
