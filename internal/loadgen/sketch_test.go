package loadgen

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestSketchExactBelowLinearMax pins the exact-linear region: every value
// below 64 is its own bucket, so quantiles there are exact.
func TestSketchExactBelowLinearMax(t *testing.T) {
	var s Sketch
	for v := int64(0); v < sketchLinearMax; v++ {
		s.Add(v)
	}
	if got := s.Quantile(0.5); got != 31 {
		t.Errorf("p50 of 0..63 = %d, want 31", got)
	}
	if got := s.Quantile(1); got != 63 {
		t.Errorf("p100 = %d, want 63", got)
	}
	if got := s.Quantile(0); got != 0 {
		t.Errorf("p0 = %d, want 0", got)
	}
}

// TestSketchRelativeError checks the design bound: above the linear region
// a quantile overshoots the true value by at most one sub-bucket (~1/32).
func TestSketchRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var s Sketch
	var raw []int64
	for i := 0; i < 20000; i++ {
		// Log-uniform over [1us, ~100s]: spans the latencies a run can see.
		v := int64(math.Exp(rng.Float64() * math.Log(1e8)))
		raw = append(raw, v)
		s.Add(v)
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		idx := int(math.Ceil(q*float64(len(raw)))) - 1
		exact := raw[idx]
		got := s.Quantile(q)
		if got < exact {
			t.Errorf("q%.3f = %d undershoots exact %d", q, got, exact)
		}
		// One sub-bucket of slack: upper bound within (1 + 2/32) of exact.
		if limit := float64(exact) * (1 + 2.0/(1<<sketchSubBits)); float64(got) > limit && exact >= sketchLinearMax {
			t.Errorf("q%.3f = %d exceeds %d by more than a sub-bucket (limit %.0f)", q, got, exact, limit)
		}
	}
	if s.Count() != int64(len(raw)) {
		t.Errorf("count = %d, want %d", s.Count(), len(raw))
	}
	if s.Max() != raw[len(raw)-1] || s.Min() != raw[0] {
		t.Errorf("min/max = %d/%d, want %d/%d", s.Min(), s.Max(), raw[0], raw[len(raw)-1])
	}
}

// TestSketchBucketBoundaries walks the index/upper-bound pair over the
// whole range: indices are monotone, uppers are consistent with indexing.
func TestSketchBucketBoundaries(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 63, 64, 65, 95, 127, 128, 1000, 1 << 20, 1 << 40, math.MaxInt64} {
		idx := sketchIndex(v)
		if idx < prev {
			t.Fatalf("index(%d) = %d < previous %d: not monotone", v, idx, prev)
		}
		if idx >= sketchBuckets {
			t.Fatalf("index(%d) = %d out of range %d", v, idx, sketchBuckets)
		}
		if up := sketchUpper(idx); up < v {
			t.Errorf("upper(index(%d)) = %d < value", v, up)
		}
		prev = idx
	}
}

// TestSketchMergeMatchesUnion pins that merging per-worker sketches is
// indistinguishable from recording everything into one.
func TestSketchMergeMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, union Sketch
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1 << 22))
		union.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.Count() != union.Count() || a.Min() != union.Min() || a.Max() != union.Max() {
		t.Fatalf("merged count/min/max = %d/%d/%d, union %d/%d/%d",
			a.Count(), a.Min(), a.Max(), union.Count(), union.Min(), union.Max())
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.95, 0.99} {
		if got, want := a.Quantile(q), union.Quantile(q); got != want {
			t.Errorf("q%.2f: merged %d, union %d", q, got, want)
		}
	}
}

// TestSketchJSONRoundTrip pins the codec: encode, decode, identical
// quantiles and moments.
func TestSketchJSONRoundTrip(t *testing.T) {
	var s Sketch
	for _, d := range []time.Duration{120 * time.Microsecond, 3 * time.Millisecond, 900 * time.Millisecond, 4 * time.Second} {
		for i := 0; i < 10; i++ {
			s.AddDuration(d)
		}
	}
	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var back Sketch
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != s.Count() || back.Mean() != s.Mean() || back.Min() != s.Min() || back.Max() != s.Max() {
		t.Fatalf("round trip changed moments: %+v vs %+v", back, s)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := back.Quantile(q), s.Quantile(q); got != want {
			t.Errorf("q%.2f: decoded %d, original %d", q, got, want)
		}
	}
}

// TestSketchDecodeRejectsCorruption enumerates the validation rules: each
// doctored document must produce an error, never a panic or silent accept.
func TestSketchDecodeRejectsCorruption(t *testing.T) {
	cases := map[string]string{
		"wrong version":      `{"v":2,"count":1,"sum":5,"min":5,"max":5,"buckets":[[5,1]]}`,
		"negative count":     `{"v":1,"count":-3,"sum":0,"min":0,"max":0}`,
		"empty with buckets": `{"v":1,"count":0,"sum":0,"min":0,"max":0,"buckets":[[1,1]]}`,
		"max below min":      `{"v":1,"count":1,"sum":5,"min":9,"max":5,"buckets":[[5,1]]}`,
		"bucket out of range": `{"v":1,"count":1,"sum":5,"min":5,"max":5,"buckets":[[99999,1]]}`,
		"buckets unordered":  `{"v":1,"count":2,"sum":10,"min":3,"max":7,"buckets":[[7,1],[3,1]]}`,
		"count mismatch":     `{"v":1,"count":5,"sum":10,"min":3,"max":7,"buckets":[[3,1],[7,1]]}`,
		"zero bucket count":  `{"v":1,"count":1,"sum":5,"min":5,"max":5,"buckets":[[5,0],[6,1]]}`,
		"not json":           `{"v":1,`,
	}
	for name, doc := range cases {
		var s Sketch
		if err := json.Unmarshal([]byte(doc), &s); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// FuzzSketchDecode hammers the sketch decoder with arbitrary bytes: it must
// never panic, and anything it accepts must round-trip consistently.
func FuzzSketchDecode(f *testing.F) {
	f.Add([]byte(`{"v":1,"count":2,"sum":10,"min":3,"max":7,"buckets":[[3,1],[7,1]]}`))
	f.Add([]byte(`{"v":1,"count":0,"sum":0,"min":0,"max":0}`))
	f.Add([]byte(`{"v":2}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Sketch
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		// Accepted: the sketch must be internally consistent.
		if s.Count() < 0 {
			t.Fatalf("accepted sketch with negative count: %q", data)
		}
		if s.Count() > 0 && (s.Min() < 0 || s.Max() < s.Min()) {
			t.Fatalf("accepted sketch with bad range [%d,%d]: %q", s.Min(), s.Max(), data)
		}
		_ = s.Quantile(0.5)
		_ = s.Quantile(0.99)
		out, err := json.Marshal(&s)
		if err != nil {
			t.Fatalf("re-encoding accepted sketch: %v", err)
		}
		var back Sketch
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("accepted sketch did not round-trip: %v (%s)", err, out)
		}
		if back.Count() != s.Count() || back.Quantile(0.95) != s.Quantile(0.95) {
			t.Fatalf("round trip changed sketch: %s", out)
		}
	})
}

// TestParseMix covers named mixes, explicit weights, and rejects.
func TestParseMix(t *testing.T) {
	for _, name := range MixNames() {
		m, err := ParseMix(name)
		if err != nil {
			t.Errorf("built-in %q: %v", name, err)
		}
		if m.total() == 0 {
			t.Errorf("built-in %q has zero weight", name)
		}
	}
	m, err := ParseMix("hit=3,watch=1")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Has(OpSubmitHit) || !m.Has(OpWatch) || m.Has(OpOverloadBurst) {
		t.Errorf("explicit mix wrong: %+v", m)
	}
	for _, bad := range []string{"nope", "hit=x", "zork=3", "hit=0,miss=0", "hit"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
	if def, err := ParseMix(""); err != nil || def.Name != "mixed" {
		t.Errorf("empty mix = %+v, %v; want the mixed default", def, err)
	}
}

// TestMixPickDeterministic pins fleet determinism at the draw level: the
// same seed yields the same operation sequence.
func TestMixPickDeterministic(t *testing.T) {
	m, _ := ParseMix("mixed")
	draw := func() []Op {
		rng := rand.New(rand.NewSource(99))
		out := make([]Op, 200)
		for i := range out {
			out[i] = m.pick(rng)
		}
		return out
	}
	a, b := draw(), draw()
	counts := map[Op]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
		counts[a[i]]++
	}
	for op := Op(0); op < numOps; op++ {
		if m.Has(op) && counts[op] == 0 {
			t.Errorf("op %v never drawn in 200 picks despite weight %d", op, m.Weights[op])
		}
	}
	if strings.Contains(m.String(), "=") {
		t.Errorf("named mix renders as %q, want its name", m.String())
	}
}
