package loadgen

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleRecord builds a minimal valid run record.
func sampleRecord(p95 int64) Record {
	var sk Sketch
	for i := int64(0); i < 50; i++ {
		sk.Add(p95)
	}
	return Record{
		Time: "2026-08-08T00:00:00Z", GoVersion: "go1.24", GOOS: "linux", GOARCH: "amd64",
		Clients: 10, DurationSec: 5, Seed: 1, Mix: "mixed",
		Ops: map[string]OpRecord{
			KeySubmit: {Count: 50, P50us: p95, P95us: p95, P99us: p95, MaxUs: p95,
				MeanUs: float64(p95), Sketch: &sk},
		},
		ThroughputOps: 100, TotalOps: 50,
	}
}

// TestTrajectoryAppendAndRead pins the append-then-read cycle: header
// written once, records accumulate, Last returns the newest.
func TestTrajectoryAppendAndRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := AppendRecord(path, sampleRecord(2000)); err != nil {
		t.Fatal(err)
	}
	if err := AppendRecord(path, sampleRecord(3000)); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(tr.Records))
	}
	if got := tr.Last().Ops[KeySubmit].P95us; got != 3000 {
		t.Errorf("last p95 = %d, want 3000", got)
	}
	data, _ := os.ReadFile(path)
	if n := strings.Count(string(data), TrajectorySchema); n != 1 {
		t.Errorf("header appears %d times, want 1", n)
	}
}

// TestTrajectoryTornTailTrimmedOnAppend: a psload killed mid-append leaves
// a torn final line; the strict reader flags it, the next append heals it.
func TestTrajectoryTornTailTrimmedOnAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := AppendRecord(path, sampleRecord(2000)); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"time":"2026-08-08","clients":3,"ops":{"su`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Strict read reports the torn tail as a typed error.
	_, err = ReadTrajectory(path)
	if !errors.Is(err, ErrTornTail) {
		t.Fatalf("read of torn file = %v, want ErrTornTail", err)
	}
	var fe *FormatError
	if !errors.As(err, &fe) || fe.Line != 3 {
		t.Fatalf("error = %#v, want *FormatError at line 3", err)
	}

	// Append trims the tear and keeps every intact record.
	if err := AppendRecord(path, sampleRecord(4000)); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2 || tr.Last().Ops[KeySubmit].P95us != 4000 {
		t.Fatalf("healed trajectory = %d records, last p95 %d; want 2 records, 4000",
			len(tr.Records), tr.Last().Ops[KeySubmit].P95us)
	}
}

// TestTrajectoryRejectsBadDocuments enumerates reader rejections: wrong
// schema, interior corruption, impossible records — all typed errors.
func TestTrajectoryRejectsBadDocuments(t *testing.T) {
	header := `{"schema":"` + TrajectorySchema + `"}` + "\n"
	rec, _ := json.Marshal(sampleRecord(2000))
	cases := map[string]string{
		"empty":             "",
		"v-next schema":     `{"schema":"prioritystar-serve/v2"}` + "\n",
		"header not json":   "BENCH\n",
		"header extra keys": `{"schema":"` + TrajectorySchema + `","x":1}` + "\n",
		"interior garbage":  header + "not json\n" + string(rec) + "\n",
		"negative clients":  header + `{"clients":-1,"ops":{}}` + "\n",
		"non-monotone quantiles": header +
			`{"clients":1,"duration_sec":1,"ops":{"submit":{"count":50,"p50_us":90,"p95_us":10,"p99_us":95,"max_us":99}}}` + "\n",
		"sketch/count mismatch": header +
			`{"clients":1,"duration_sec":1,"ops":{"submit":{"count":3,"p50_us":1,"p95_us":1,"p99_us":1,"max_us":1,` +
			`"sketch":{"v":1,"count":2,"sum":2,"min":1,"max":1,"buckets":[[1,2]]}}}}` + "\n",
	}
	for name, doc := range cases {
		if _, _, err := ParseTrajectory([]byte(doc)); err == nil {
			t.Errorf("%s: parsed without error", name)
		} else if !errors.As(err, new(*FormatError)) {
			t.Errorf("%s: error %v is not a *FormatError", name, err)
		}
	}
	// AppendRecord refuses to extend a corrupt (non-torn) file.
	path := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(path, []byte("BENCH\n"), 0o644)
	if err := AppendRecord(path, sampleRecord(2000)); err == nil {
		t.Error("AppendRecord extended a corrupt file")
	}
}

// TestGate pins the regression gate: within tolerance passes, a doctored
// 2x-faster baseline fails on quantiles and throughput, small samples and
// sub-millisecond baselines are ignored.
func TestGate(t *testing.T) {
	base := sampleRecord(100000) // 100ms p95/p99
	fresh := sampleRecord(120000)
	if fails := Gate(&fresh, &base, 0.75); len(fails) != 0 {
		t.Errorf("20%% slower failed a 75%% gate: %v", fails)
	}

	doctored := DoctorBaseline(&fresh, 2)
	fails := Gate(&fresh, doctored, 0.75)
	if len(fails) == 0 {
		t.Fatal("gate passed against a 2x-faster doctored baseline")
	}
	text := strings.Join(fails, "\n")
	for _, want := range []string{"p95", "p99", "throughput"} {
		if !strings.Contains(text, want) {
			t.Errorf("gate failures missing %q:\n%s", want, text)
		}
	}

	// Sub-millisecond baselines are floored: 500us -> 900us is noise.
	tiny, slower := sampleRecord(500), sampleRecord(900)
	slower.ThroughputOps = tiny.ThroughputOps
	if fails := Gate(&slower, &tiny, 0.75); len(fails) != 0 {
		t.Errorf("sub-millisecond jitter tripped the gate: %v", fails)
	}

	// Non-SLO ops (metrics scrapes, result fetches) never gate: their tail
	// quantiles swing ~2x between identical runs on a loaded box.
	noisyBase, noisyFresh := sampleRecord(100000), sampleRecord(100000)
	noisyBase.Ops[KeyMetrics] = OpRecord{Count: 100, P50us: 100000, P95us: 100000, P99us: 100000, MaxUs: 100000}
	noisyFresh.Ops[KeyMetrics] = OpRecord{Count: 100, P50us: 900000, P95us: 900000, P99us: 900000, MaxUs: 900000}
	if fails := Gate(&noisyFresh, &noisyBase, 0.75); len(fails) != 0 {
		t.Errorf("an ancillary op tripped the gate: %v", fails)
	}

	// Too few samples: no verdict.
	small := sampleRecord(100000)
	op := small.Ops[KeySubmit]
	op.Count = 3
	op.Sketch = nil
	small.Ops[KeySubmit] = op
	fresh2 := sampleRecord(900000)
	fresh2.ThroughputOps = small.ThroughputOps
	if fails := Gate(&fresh2, &small, 0.75); len(fails) != 0 {
		t.Errorf("gate judged a 3-sample baseline: %v", fails)
	}
}

// FuzzTrajectoryReader hammers the strict reader: arbitrary bytes must
// yield a clean parse or a typed error — never a panic — and ErrTornTail
// must always come with a usable intact-prefix length.
func FuzzTrajectoryReader(f *testing.F) {
	header := `{"schema":"` + TrajectorySchema + `"}` + "\n"
	rec, _ := json.Marshal(sampleRecord(2000))
	f.Add([]byte(header))
	f.Add([]byte(header + string(rec) + "\n"))
	f.Add([]byte(header + string(rec))) // torn: no trailing newline
	f.Add([]byte(`{"schema":"prioritystar-serve/v9"}` + "\n"))
	f.Add([]byte("\xff\xfe"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, intact, err := ParseTrajectory(data)
		if err == nil {
			if intact != len(data) {
				t.Fatalf("clean parse but intact %d != len %d", intact, len(data))
			}
			return
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("error %v is not a *FormatError", err)
		}
		if errors.Is(err, ErrTornTail) {
			if intact < 0 || intact > len(data) {
				t.Fatalf("torn tail with intact %d outside [0,%d]", intact, len(data))
			}
			// The intact prefix must itself parse (or be empty).
			if intact > 0 {
				if _, _, err2 := ParseTrajectory(data[:intact]); err2 != nil {
					t.Fatalf("intact prefix does not parse: %v", err2)
				}
			}
			_ = tr
		}
	})
}
