package sim

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"prioritystar/internal/core"
	"prioritystar/internal/fault"
	"prioritystar/internal/obs"
	"prioritystar/internal/torus"
)

// TestNodeFailureLossAccounting fails one node and checks the broadcast
// bookkeeping closes exactly: every one of the size-1 copies of each
// measured task is either delivered or counted in LostCopies, tasks complete
// as degraded, and reachability reflects the loss.
func TestNodeFailureLossAccounting(t *testing.T) {
	cfg := detCase(t, []int{4, 4}, 0.3, 1, core.TwoLevel, 1, 21)
	cfg.Drain = 2000 // every surviving copy must land before the horizon
	cfg.Faults = &fault.Schedule{Nodes: []torus.Node{5}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LostCopies == 0 {
		t.Fatal("node failure lost no broadcast copies")
	}
	total := res.GeneratedBroadcasts * int64(cfg.Shape.Size()-1)
	if got := res.Reception.Count() + res.LostCopies; got != total {
		t.Errorf("delivered %d + lost %d = %d copies, want %d",
			res.Reception.Count(), res.LostCopies, got, total)
	}
	if res.IncompleteBroadcasts != 0 {
		t.Errorf("%d tasks still open: lost subtrees not credited to remaining", res.IncompleteBroadcasts)
	}
	if res.DegradedTasks != res.GeneratedBroadcasts {
		t.Errorf("DegradedTasks = %d, want %d (the failed node can never receive)",
			res.DegradedTasks, res.GeneratedBroadcasts)
	}
	if res.Broadcast.Count() != 0 {
		t.Errorf("%d degraded tasks recorded a broadcast delay", res.Broadcast.Count())
	}
	if n := res.Reachability.Count(); n != res.GeneratedBroadcasts {
		t.Errorf("Reachability has %d samples, want %d", n, res.GeneratedBroadcasts)
	}
	if m := res.Reachability.Mean(); !(m > 0 && m < 1) {
		t.Errorf("Reachability mean = %v, want in (0, 1)", m)
	}
}

// TestSingleBroadcastSubtreeLoss checks the closed-form subtree size on a
// single impulse broadcast: reachable + lost must cover all 15 other nodes
// of a 4x4 torus with a failed node.
func TestSingleBroadcastSubtreeLoss(t *testing.T) {
	cfg := detCase(t, []int{4, 4}, 0, 1, core.TwoLevel, 1, 3)
	cfg.SingleBroadcast = true
	cfg.Warmup, cfg.Measure, cfg.Drain = 0, 10, 500
	cfg.Faults = &fault.Schedule{Nodes: []torus.Node{10}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Reception.Count() + res.LostCopies; got != 15 {
		t.Errorf("delivered %d + lost %d = %d, want 15", res.Reception.Count(), res.LostCopies, got)
	}
	if res.LostCopies < 1 {
		t.Errorf("LostCopies = %d, want >= 1 (the failed node itself)", res.LostCopies)
	}
}

// TestUnicastAdaptiveReroute kills one link under unicast-only traffic and
// checks the minimal-adaptive fallback still delivers: with two profitable
// dimensions most packets route around the dead link, so the completion rate
// stays close to the fault-free run instead of collapsing.
func TestUnicastAdaptiveReroute(t *testing.T) {
	base := detCase(t, []int{4, 4}, 0.4, 0, core.TwoLevel, 1, 31)
	base.Drain = 2000
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if clean.IncompleteUnicasts != 0 {
		t.Fatalf("fault-free run left %d unicasts undelivered", clean.IncompleteUnicasts)
	}

	s := base.Shape
	faulted := base
	faulted.Faults = &fault.Schedule{Links: []torus.LinkID{s.Link(0, 0, torus.Plus)}}
	res, err := Run(faulted)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unicast.Count() == 0 {
		t.Fatal("no unicasts delivered at all under a single link failure")
	}
	// Only packets whose sole remaining profitable hop is the dead link
	// wait forever; everything else reroutes.
	undelivered := float64(res.IncompleteUnicasts)
	if undelivered > 0.1*float64(res.GeneratedUnicasts) {
		t.Errorf("%d of %d unicasts undelivered; adaptive rerouting not working",
			res.IncompleteUnicasts, res.GeneratedUnicasts)
	}
	if res.Unicast.Count()+res.IncompleteUnicasts != res.GeneratedUnicasts {
		t.Errorf("unicast accounting leak: %d delivered + %d incomplete != %d generated",
			res.Unicast.Count(), res.IncompleteUnicasts, res.GeneratedUnicasts)
	}
}

// TestTransientFaultsDelayButDeliver runs with transient faults only: no
// copy may be dropped (transient outages delay, never sever), every task
// must finish given a long drain, and delays must exceed the fault-free run.
func TestTransientFaultsDelayButDeliver(t *testing.T) {
	base := detCase(t, []int{4, 4}, 0.3, 0.5, core.TwoLevel, 1, 41)
	base.Drain = 4000
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	faulted := base
	faulted.Faults = &fault.Schedule{Seed: 7, MTBF: 200, MTTR: 20}
	res, err := Run(faulted)
	if err != nil {
		t.Fatal(err)
	}
	if res.LostCopies != 0 || res.DegradedTasks != 0 {
		t.Errorf("transient faults lost %d copies, degraded %d tasks; want none",
			res.LostCopies, res.DegradedTasks)
	}
	if res.IncompleteBroadcasts != 0 || res.IncompleteUnicasts != 0 {
		t.Errorf("transient run left %d broadcasts and %d unicasts unfinished",
			res.IncompleteBroadcasts, res.IncompleteUnicasts)
	}
	if res.Reception.Mean() <= clean.Reception.Mean() {
		t.Errorf("transient faults did not increase reception delay: %v <= %v",
			res.Reception.Mean(), clean.Reception.Mean())
	}
	if m := res.Reachability.Mean(); m != 1 {
		t.Errorf("Reachability mean = %v, want exactly 1", m)
	}
}

// TestFaultedRunsDeterministic: same config, same faults, same trajectory.
func TestFaultedRunsDeterministic(t *testing.T) {
	cfg := detCase(t, []int{4, 5}, 0.4, 0.5, core.ThreeLevel, 1, 51)
	cfg.Faults = &fault.Schedule{Seed: 5, RandomLinks: 2, MTBF: 300, MTTR: 30}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical faulted configs diverged:\n%+v\n%+v", a, b)
	}
}

// TestFaultProbeObservesWithoutPerturbing attaches counters to a faulted run
// and checks (a) fault events are observed with lost-copy totals matching
// the Result, and (b) the probe does not change the trajectory.
func TestFaultProbeObservesWithoutPerturbing(t *testing.T) {
	cfg := detCase(t, []int{4, 4}, 0.3, 1, core.TwoLevel, 1, 61)
	cfg.Drain = 2000
	cfg.Faults = &fault.Schedule{Nodes: []torus.Node{3}, Seed: 2, MTBF: 250, MTTR: 25}
	bare, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	probed := cfg
	counters := &obs.Counters{}
	probed.Probe = counters
	res, err := Run(probed)
	if err != nil {
		t.Fatal(err)
	}
	if counters.Faults == 0 {
		t.Error("probe saw no fault events on a faulted run")
	}
	if counters.LostCopies < res.LostCopies {
		t.Errorf("probe saw %d lost copies, result reports %d (probe also sees unmeasured drops)",
			counters.LostCopies, res.LostCopies)
	}
	if goldenFingerprint(bare) != goldenFingerprint(res) {
		t.Errorf("attaching a probe changed a faulted run:\n%s\n%s",
			goldenFingerprint(bare), goldenFingerprint(res))
	}
}

// TestWatchdogDiverged drives the scheme at rho = 1.2: the watchdog must cut
// the run short with StatusDiverged long before the 200k-slot horizon, and
// Stable must report false.
func TestWatchdogDiverged(t *testing.T) {
	cfg := detCase(t, []int{8, 8}, 1.2, 1, core.TwoLevel, 1, 71)
	cfg.Warmup, cfg.Measure, cfg.Drain = 0, 200_000, 0
	cfg.Guard = DefaultGuard(cfg.Shape)
	start := time.Now()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusDiverged {
		t.Fatalf("status = %v, want diverged (backlog end %d)", res.Status, res.BacklogEnd)
	}
	if res.Truncated {
		t.Error("watchdog termination must not masquerade as MaxBacklog truncation")
	}
	if res.Stable(cfg.Shape) {
		t.Error("diverged run reports Stable() == true")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("watchdog took %v to fire; should terminate in seconds", elapsed)
	}
}

// TestWatchdogSilentOnStableRun arms the watchdog at a moderate load and
// checks it never fires.
func TestWatchdogSilentOnStableRun(t *testing.T) {
	cfg := detCase(t, []int{8, 8}, 0.7, 1, core.TwoLevel, 1, 72)
	cfg.Guard = DefaultGuard(cfg.Shape)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOK {
		t.Errorf("stable run ended with status %v", res.Status)
	}
	if !res.Stable(cfg.Shape) {
		t.Error("stable run reports Stable() == false")
	}
}

// TestGrowthWatchdogWithoutBacklogBound exercises the sustained-growth check
// alone (no absolute bound) at an unstable load.
func TestGrowthWatchdogWithoutBacklogBound(t *testing.T) {
	cfg := detCase(t, []int{8, 8}, 1.3, 1, core.TwoLevel, 1, 73)
	cfg.Warmup, cfg.Measure, cfg.Drain = 0, 200_000, 0
	cfg.Guard = Guard{GrowthWindow: 200}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusDiverged {
		t.Errorf("status = %v, want diverged via sustained growth", res.Status)
	}
}

// TestRunTimeout bounds the wall clock so tightly the run cannot finish.
func TestRunTimeout(t *testing.T) {
	cfg := detCase(t, []int{8, 8}, 0.9, 1, core.TwoLevel, 1, 81)
	cfg.Measure = 50_000_000 // far more work than a nanosecond allows
	cfg.Guard.Timeout = time.Nanosecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusTimeout {
		t.Errorf("status = %v, want timeout", res.Status)
	}
	if res.Stable(cfg.Shape) {
		t.Error("timed-out run reports Stable() == true")
	}
}

// TestContextCancellation: a cancelled context aborts the run with its error.
func TestContextCancellation(t *testing.T) {
	cfg := detCase(t, []int{8, 8}, 0.9, 1, core.TwoLevel, 1, 82)
	cfg.Measure = 50_000_000
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg.Context = ctx
	res, err := Run(cfg)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled run returned a result")
	}
}

// TestRunnerReuseAfterFaultedRun interleaves faulted, guarded, and plain
// runs on one Runner and checks the plain run still matches a fresh one.
func TestRunnerReuseAfterFaultedRun(t *testing.T) {
	var r Runner
	faulted := detCase(t, []int{4, 4}, 0.4, 0.5, core.TwoLevel, 1, 91)
	faulted.Faults = &fault.Schedule{Seed: 1, RandomLinks: 3, MTBF: 100, MTTR: 10}
	if _, err := r.Run(faulted); err != nil {
		t.Fatal(err)
	}
	diverging := detCase(t, []int{4, 4}, 1.3, 1, core.TwoLevel, 1, 92)
	diverging.Guard = DefaultGuard(diverging.Shape)
	if res, err := r.Run(diverging); err != nil || res.Status != StatusDiverged {
		t.Fatalf("diverging run: res.Status=%v err=%v", res.Status, err)
	}
	plain := detCase(t, []int{4, 4}, 0.5, 0.5, core.TwoLevel, 1, 93)
	reused, err := r.Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if goldenFingerprint(reused) != goldenFingerprint(fresh) {
		t.Errorf("runner state leaked from faulted into plain run:\n%s\n%s",
			goldenFingerprint(reused), goldenFingerprint(fresh))
	}
}

// TestValidateRejections covers the hardened Config.Validate error paths.
func TestValidateRejections(t *testing.T) {
	good := detCase(t, []int{4, 4}, 0.5, 0.5, core.TwoLevel, 1, 1)
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"nan lambda", func(c *Config) { c.Rates.LambdaB = nan() }, "finite"},
		{"inf lambda", func(c *Config) { c.Rates.LambdaR = inf() }, "finite"},
		{"negative lambda", func(c *Config) { c.Rates.LambdaR = -1 }, "negative arrival"},
		{"zero-dim shape", func(c *Config) { c.Shape = &torus.Shape{} }, "no dimensions"},
		{"zero measure", func(c *Config) { c.Measure = 0 }, "Measure must be positive"},
		{"negative warmup", func(c *Config) { c.Warmup = -1 }, "negative Warmup"},
		{"negative guard", func(c *Config) { c.Guard.DivergeBacklog = -5 }, "Guard"},
		{"bad faults", func(c *Config) { c.Faults = &fault.Schedule{RandomLinks: -1} }, "RandomLinks"},
	}
	for _, tc := range cases {
		cfg := good
		tc.mutate(&cfg)
		_, err := Run(cfg)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }
