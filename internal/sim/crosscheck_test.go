package sim

import (
	"math"
	"testing"

	"prioritystar/internal/balance"
	"prioritystar/internal/core"
	"prioritystar/internal/obs"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// TestSimMatchesTreeEnumeration cross-checks the two implementations of the
// STAR broadcast: the static tree enumerator (core.BroadcastTree) and the
// dynamic engine. A single uncontended broadcast must deliver each node's
// copy after exactly the tree depth the enumerator predicts, per ending
// dimension.
func TestSimMatchesTreeEnumeration(t *testing.T) {
	s := torus.MustNew(4, 5)
	for ending := 0; ending < s.Dims(); ending++ {
		// Force the ending dimension with a point-mass scheme: FixedEnding
		// always picks d-1, so relabel via a custom vector is not exposed;
		// instead verify against the enumerator for the sampled ending of
		// a deterministic single-broadcast run.
		sch, err := core.PrioritySTAR(s, traffic.Rates{LambdaB: 1}, balance.ExactDistance)
		if err != nil {
			t.Fatal(err)
		}
		// Record per-node delivery slots.
		got := make(map[torus.Node]int64)
		res, err := Run(Config{
			Shape: s, Scheme: sch, Seed: uint64(ending + 100), Measure: 200,
			SingleBroadcast: true, SingleBroadcastSource: 7,
			OnDeliver: func(ev DeliverEvent) {
				if ev.Broadcast {
					got[ev.Node] = ev.Slot
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Broadcast.Count() != 1 {
			t.Fatal("single broadcast did not complete")
		}
		// Depth must equal distance for every node (randomized ring splits
		// change which side serves ties, not path lengths).
		for v := torus.Node(0); int(v) < s.Size(); v++ {
			if v == 7 {
				continue
			}
			want := int64(s.Distance(7, v))
			if got[v] != want {
				t.Errorf("ending-run %d node %d: delivered at %d, distance %d", ending, v, got[v], want)
			}
		}
	}
}

// TestSimTransmissionCountsMatchEq1: under a fixed-ending scheme on an
// otherwise idle network, the number of deliveries observed per dimension
// equals Eq. (1)'s a_{i,l} coefficients.
func TestSimTransmissionCountsMatchEq1(t *testing.T) {
	s := torus.MustNew(3, 4, 5)
	sch, err := core.DimOrderFCFS(s) // ending dimension d-1 deterministically
	if err != nil {
		t.Fatal(err)
	}
	ending := s.Dims() - 1
	counts := make([]int64, s.Dims())
	prev := make(map[torus.Node]bool)
	_, err = Run(Config{
		Shape: s, Scheme: sch, Seed: 9, Measure: 300,
		SingleBroadcast: true, SingleBroadcastSource: 0,
		OnDeliver: func(ev DeliverEvent) {
			if !ev.Broadcast || prev[ev.Node] {
				return
			}
			prev[ev.Node] = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Derive per-dimension delivery counts from the enumerated tree (the
	// engine used the same forwarding rule; the observer confirmed one
	// delivery per node above).
	tree := core.BroadcastTree(sch, 0, ending, nil)
	for v := range tree {
		if tree[v].Dim >= 0 {
			counts[tree[v].Dim]++
		}
	}
	for i := 0; i < s.Dims(); i++ {
		if counts[i] != int64(balance.Coeff(s, i, ending)) {
			t.Errorf("dim %d: %d transmissions, Eq. (1) predicts %d", i, counts[i], balance.Coeff(s, i, ending))
		}
	}
	if len(prev) != s.Size()-1 {
		t.Errorf("engine delivered to %d nodes, want %d", len(prev), s.Size()-1)
	}
}

// TestEngineUtilizationMatchesBalancePrediction: measured per-dimension
// utilization equals balance.PredictedDimUtilization for an asymmetric
// shape under a deliberately unbalanced (uniform) vector.
func TestEngineUtilizationMatchesBalancePrediction(t *testing.T) {
	s := torus.MustNew(4, 8)
	rho := 0.5
	rates, err := traffic.RatesForRho(s, rho, 1, 1, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := core.NewScheme(s, core.FCFS, core.UniformRotation, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Shape: s, Scheme: sch, Rates: rates, Seed: 11,
		Warmup: 1000, Measure: 12000, Drain: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := balance.PredictedDimUtilization(s, balance.Uniform(s.Dims()).X, rates.LambdaB, rates.LambdaR, balance.ExactDistance)
	for i := range want {
		if math.Abs(res.DimUtilization[i]-want[i]) > 0.03 {
			t.Errorf("dim %d: measured %0.4f, predicted %0.4f", i, res.DimUtilization[i], want[i])
		}
	}
}

// TestProbeDimLoadMatchesEq2: the observability layer's independently
// accumulated per-dimension link utilization must (a) agree bit-for-bit
// with the engine's own Result.DimUtilization, and (b) on a symmetric
// torus under the balanced STAR scheme, match Eq. (2)'s prediction that
// every dimension carries the same load, equal to rho.
func TestProbeDimLoadMatchesEq2(t *testing.T) {
	s := torus.MustNew(6, 6)
	rho := 0.6
	rates, err := traffic.RatesForRho(s, rho, 1, 1, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := core.PrioritySTAR(s, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	warmup, measure := int64(1000), int64(12000)
	load := obs.NewLinkLoad(s, warmup, measure)
	res, err := Run(Config{Shape: s, Scheme: sch, Rates: rates, Seed: 13,
		Warmup: warmup, Measure: measure, Probe: load})
	if err != nil {
		t.Fatal(err)
	}
	got := load.DimUtilization()
	want := balance.PredictedDimUtilization(s, balance.Uniform(s.Dims()).X,
		rates.LambdaB, rates.LambdaR, balance.ExactDistance)
	for i := range got {
		if got[i] != res.DimUtilization[i] {
			t.Errorf("dim %d: probe %v, engine %v", i, got[i], res.DimUtilization[i])
		}
		// Eq. (2) on a symmetric torus: balanced load, each dimension at rho.
		if math.Abs(got[i]-want[i]) > 0.03 {
			t.Errorf("dim %d: measured %0.4f, Eq. (2) predicts %0.4f", i, got[i], want[i])
		}
		if math.Abs(got[i]-rho) > 0.03 {
			t.Errorf("dim %d: measured %0.4f, rho is %0.4f", i, got[i], rho)
		}
	}
	// Balance itself: the spread between dimensions stays within noise.
	if spread := math.Abs(got[0] - got[1]); spread > 0.02 {
		t.Errorf("per-dimension spread %0.4f on a symmetric torus", spread)
	}
}
