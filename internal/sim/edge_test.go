package sim

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"prioritystar/internal/balance"
	"prioritystar/internal/core"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// TestTwoNodeNetwork: the smallest valid torus (a single 2-ring) still
// routes broadcasts and unicasts correctly.
func TestTwoNodeNetwork(t *testing.T) {
	s := torus.MustNew(2)
	rates := traffic.Rates{LambdaB: 0.2, LambdaR: 0.2}
	sch, err := core.PrioritySTAR(s, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Shape: s, Scheme: sch, Rates: rates, Seed: 1, Warmup: 100, Measure: 2000, Drain: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reception.Count() == 0 || res.Unicast.Count() == 0 {
		t.Fatal("2-node network should deliver traffic")
	}
	// Every delivery is exactly one hop at low load; queueing can add.
	if res.Reception.Min() != 1 || res.Unicast.Min() != 1 {
		t.Errorf("minimum delays = %g/%g, want 1/1", res.Reception.Min(), res.Unicast.Min())
	}
}

// TestThreeLevelBroadcastOnly: with no unicast traffic the medium class is
// simply unused; the discipline must not misbehave.
func TestThreeLevelBroadcastOnly(t *testing.T) {
	s := torus.MustNew(4, 4)
	rates, err := traffic.RatesForRho(s, 0.6, 1, 1, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := core.PrioritySTAR3(s, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Shape: s, Scheme: sch, Rates: rates, Seed: 2, Warmup: 500, Measure: 3000, Drain: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueWait[1].Count() != 0 {
		t.Error("medium class should be empty without unicast traffic")
	}
	if res.QueueWait[0].Count() == 0 || res.QueueWait[2].Count() == 0 {
		t.Error("high and low classes should both carry broadcast traffic")
	}
}

// TestSeparateBalancingUnstableWhereJointStable is the Section 1/4 claim as
// a direct assertion on a fast 4x8 torus: at rho = 0.9 with a 50/50 mix,
// Eq. 2-only balancing (predicted max ~0.857) is unstable while Eq. 4
// balancing is stable.
func TestSeparateBalancingUnstableWhereJointStable(t *testing.T) {
	s := torus.MustNew(4, 8)
	rates, err := traffic.RatesForRho(s, 0.9, 0.5, 1, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sepVec, err := balance.BroadcastOnly(s)
	if err != nil {
		t.Fatal(err)
	}
	if mt := balance.MaxThroughput(s, sepVec.X, rates.LambdaB, rates.LambdaR, balance.ExactDistance); mt > 0.88 {
		t.Fatalf("predicted separate max throughput %g; test premise broken", mt)
	}

	sepRates := rates
	sepRates.LambdaR = 0
	sepScheme, err := core.NewScheme(s, core.TwoLevel, core.BalancedRotation, sepRates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	jointScheme, err := core.PrioritySTAR(s, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Shape: s, Rates: rates, Seed: 3, Warmup: 1500, Measure: 9000, Drain: 0}
	cfg.Scheme = sepScheme
	sep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scheme = jointScheme
	joint, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sep.Stable(s) {
		t.Errorf("separate balancing should be unstable at rho=0.9 (slope %g)", sep.BacklogSlope)
	}
	if !joint.Stable(s) {
		t.Errorf("joint balancing should be stable at rho=0.9 (slope %g)", joint.BacklogSlope)
	}
	// The overloaded dimension is visible in the utilizations.
	if sep.MaxDimUtilization < 0.97 {
		t.Errorf("separate max dim utilization %g, want saturated", sep.MaxDimUtilization)
	}
	if joint.MaxDimUtilization > 0.95 {
		t.Errorf("joint max dim utilization %g, want ~rho", joint.MaxDimUtilization)
	}
}

// TestReceptionDelayTracksLowerBoundAcrossRho: the measured curve stays
// above the oblivious bound but within a small factor while stable — the
// asymptotic-optimality claim in testable form.
func TestReceptionDelayTracksLowerBoundAcrossRho(t *testing.T) {
	s := torus.MustNew(8, 8)
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		rates, err := traffic.RatesForRho(s, rho, 1, 1, balance.ExactDistance)
		if err != nil {
			t.Fatal(err)
		}
		sch, err := core.PrioritySTAR(s, rates, balance.ExactDistance)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Shape: s, Scheme: sch, Rates: rates, Seed: 4, Warmup: 1000, Measure: 5000, Drain: 2000})
		if err != nil {
			t.Fatal(err)
		}
		bound := s.AvgDistance() + rho/(2*(1-rho))
		got := res.Reception.Mean()
		if got < bound-0.05 {
			t.Errorf("rho=%g: delay %g below bound %g", rho, got, bound)
		}
		if got > 3*bound {
			t.Errorf("rho=%g: delay %g more than 3x bound %g", rho, got, bound)
		}
	}
}

// TestFixedLengthScalesDelays: doubling the packet length roughly doubles
// low-load delays and preserves utilization at fixed rho.
func TestFixedLengthScalesDelays(t *testing.T) {
	s := torus.MustNew(4, 4)
	run := func(length int) *Result {
		dist := traffic.FixedLength(length)
		rates, err := traffic.RatesForRho(s, 0.3, 1, dist.Mean(), balance.ExactDistance)
		if err != nil {
			t.Fatal(err)
		}
		sch, err := core.PrioritySTAR(s, rates, balance.ExactDistance)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Shape: s, Scheme: sch, Rates: rates, Length: dist, Seed: 5,
			Warmup: 1000, Measure: 5000, Drain: 2000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	two := run(2)
	ratio := two.Reception.Mean() / one.Reception.Mean()
	if ratio < 1.7 || ratio > 2.4 {
		t.Errorf("length-2 delay ratio %g, want ~2", ratio)
	}
	if math.Abs(one.AvgUtilization-two.AvgUtilization) > 0.05 {
		t.Errorf("utilization changed with length: %g vs %g", one.AvgUtilization, two.AvgUtilization)
	}
}

// TestQueueWaitWindowOnly: waits are only recorded during the measurement
// window.
func TestQueueWaitWindowOnly(t *testing.T) {
	s := torus.MustNew(4, 4)
	rates, err := traffic.RatesForRho(s, 0.5, 1, 1, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := core.STARFCFS(s, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	short, err := Run(Config{Shape: s, Scheme: sch, Rates: rates, Seed: 6, Warmup: 2000, Measure: 10, Drain: 0})
	if err != nil {
		t.Fatal(err)
	}
	// With a 10-slot window on a 64-link 4x4 torus at rho=0.5 the service
	// count is bounded by slots * links.
	if short.QueueWait[0].Count() > 10*int64(s.Links()) {
		t.Errorf("recorded %d waits in a 10-slot window", short.QueueWait[0].Count())
	}
}

// TestImpulseWorkloads exercises the static-task injection paths directly:
// single broadcast, per-node broadcasts, and total exchange.
func TestImpulseWorkloads(t *testing.T) {
	s := torus.MustNew(4, 4)
	sch, err := core.PrioritySTAR(s, traffic.Rates{LambdaB: 1}, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(Config{Shape: s, Scheme: sch, Seed: 1, Measure: 500,
		SingleBroadcast: true, SingleBroadcastSource: 5})
	if err != nil {
		t.Fatal(err)
	}
	if single.GeneratedBroadcasts != 1 || single.Broadcast.Count() != 1 {
		t.Errorf("single broadcast: generated %d, completed %d",
			single.GeneratedBroadcasts, single.Broadcast.Count())
	}
	if single.Broadcast.Max() != float64(s.Diameter()) {
		t.Errorf("single broadcast makespan %g, want %d", single.Broadcast.Max(), s.Diameter())
	}

	mnb, err := Run(Config{Shape: s, Scheme: sch, Seed: 2, Measure: 2000, ImpulseBroadcasts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mnb.GeneratedBroadcasts != int64(2*s.Size()) {
		t.Errorf("MNB x2 generated %d tasks, want %d", mnb.GeneratedBroadcasts, 2*s.Size())
	}
	if mnb.IncompleteBroadcasts != 0 {
		t.Errorf("MNB x2 left %d incomplete", mnb.IncompleteBroadcasts)
	}

	te, err := Run(Config{Shape: s, Scheme: sch, Seed: 3, Measure: 3000, ImpulseTotalExchange: true})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(s.Size()) * int64(s.Size()-1)
	if te.GeneratedUnicasts != want {
		t.Errorf("TE generated %d unicasts, want %d", te.GeneratedUnicasts, want)
	}
	if te.IncompleteUnicasts != 0 {
		t.Errorf("TE left %d undelivered", te.IncompleteUnicasts)
	}
}

// TestOversizedPacketsClamped: service times beyond the timing wheel are
// clamped and counted.
func TestOversizedPacketsClamped(t *testing.T) {
	s := torus.MustNew(2, 2)
	length := traffic.FixedLength(100000)
	sch, err := core.PrioritySTAR(s, traffic.Rates{LambdaB: 1}, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Shape: s, Scheme: sch, Length: length, Seed: 4,
		Measure: 20000, SingleBroadcast: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ClampedLengths == 0 {
		t.Error("oversized packet lengths should be clamped and counted")
	}
}

// TestQuickRandomConfigurations is a property smoke test: for random small
// shapes, traffic mixes, and loads, the engine's bookkeeping invariants
// hold — completed + incomplete tasks equal generated, reception counts
// are bounded by (N-1) per task, link utilization never exceeds 1, and the
// minimum delay is at least one slot.
func TestQuickRandomConfigurations(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x510))
		d := 1 + rng.IntN(3)
		dims := make([]int, d)
		for i := range dims {
			dims[i] = 2 + rng.IntN(4)
		}
		s := torus.MustNew(dims...)
		frac := []float64{0, 0.5, 1}[rng.IntN(3)]
		rho := 0.2 + 0.5*rng.Float64()
		rates, err := traffic.RatesForRho(s, rho, frac, 1, balance.ExactDistance)
		if err != nil {
			return false
		}
		disc := []core.Discipline{core.FCFS, core.TwoLevel, core.ThreeLevel}[rng.IntN(3)]
		sch, err := core.NewScheme(s, disc, core.BalancedRotation, rates, balance.ExactDistance)
		if err != nil {
			return false
		}
		res, err := Run(Config{Shape: s, Scheme: sch, Rates: rates, Seed: seed,
			Warmup: 200, Measure: 1500, Drain: 800})
		if err != nil {
			return false
		}
		if res.Broadcast.Count()+res.IncompleteBroadcasts != res.GeneratedBroadcasts {
			return false
		}
		n := int64(s.Size() - 1)
		if res.Reception.Count() > res.GeneratedBroadcasts*n {
			return false
		}
		if res.Reception.Count() > 0 && res.Reception.Min() < 1 {
			return false
		}
		if res.Unicast.Count() > 0 && res.Unicast.Min() < 1 {
			return false
		}
		for _, u := range res.DimUtilization {
			if u > 1.0001 {
				return false
			}
		}
		return res.AvgUtilization <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
